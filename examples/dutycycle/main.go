// Dutycycle: the paper's Section 6 power-management sketch, both ways.
//
// A 120-sensor field runs three configurations of radio duty cycling side
// by side: always awake, sleep-aware (members announce their naps and the
// FDS excuses them), and naive (members just go silent — the hazard the
// paper warns about: "sleep mode may cause false detections"). A real crash
// is injected in each run so detection quality is measured alongside the
// energy bill.
//
// Run:
//
//	go run ./examples/dutycycle
package main

import (
	"fmt"

	"clusterfds/internal/cluster"
	"clusterfds/internal/scenario"
	"clusterfds/internal/sleep"
	"clusterfds/internal/trace"
)

const (
	nodes     = 120
	fieldSide = 420.0
	lossProb  = 0.05
	epochs    = 16
)

type outcome struct {
	name        string
	energy      float64
	aware       int
	operational int
	falsePairs  int
	detections  int
	sleepMsgs   int64
}

func run(name string, withSleep, announce bool) outcome {
	tr := trace.NewMemory(trace.TypeDetect)
	cfg := scenario.Config{
		Seed: 77, Nodes: nodes, FieldSide: fieldSide, LossProb: lossProb, Trace: tr,
	}
	if withSleep {
		scfg := sleep.DefaultConfig(cluster.DefaultTiming())
		scfg.Announce = announce
		cfg.Sleep = &scfg
	}
	w := scenario.Build(cfg)
	timing := w.Config().Timing
	victim := w.CrashRandomAt(timing.EpochStart(5)+timing.Interval/2, 1)[0]
	w.RunEpochs(epochs)

	aware, operational := w.Completeness(victim)
	return outcome{
		name:        name,
		energy:      w.TotalEnergySpent(),
		aware:       aware,
		operational: operational,
		falsePairs:  len(w.FalseSuspicions()),
		detections:  tr.Count(trace.TypeDetect),
		sleepMsgs:   w.MessageCounts()["tx:sleep-notice"],
	}
}

func main() {
	fmt.Printf("== radio duty cycling, three ways (%d sensors, p=%.2f, %d intervals) ==\n\n",
		nodes, lossProb, epochs)
	fmt.Printf("%-16s %12s %14s %12s %12s %12s\n",
		"mode", "energy", "crash known", "false pairs", "detections", "notices")

	results := []outcome{
		run("always-awake", false, false),
		run("announced", true, true),
		run("naive", true, false),
	}
	for _, r := range results {
		fmt.Printf("%-16s %12.0f %9d/%-4d %12d %12d %12d\n",
			r.name, r.energy, r.aware, r.operational, r.falsePairs, r.detections, r.sleepMsgs)
	}

	base := results[0]
	fmt.Printf("\nannounced sleeping: %.1f%% energy vs always-awake, same detection quality\n",
		100*results[1].energy/base.energy)
	fmt.Printf("naive sleeping:     %.1f%% energy — the false-detection churn the paper\n",
		100*results[2].energy/base.energy)
	fmt.Println("  warns about costs far more than the radio saves (each false detection")
	fmt.Println("  triggers a report flood, a rescission flood, and re-subscription traffic)")
}
