// Sensorfield: an air-dropped sensor network with gradual attrition and
// replenishment — the paper's motivating deployment (Section 1: sensor
// fields supporting crisis management must keep "the operation team updated
// on the network's health" so capacity can be replenished before it is
// exhausted).
//
// 300 sensors operate for 30 heartbeat intervals while hosts die at a
// steady rate. A (simulated) base station watches one host's failure view;
// when the believed-operational population drops below a threshold, it
// "air-drops" replacement sensors, which the open-ended cluster-formation
// algorithm (feature F4) admits automatically.
//
// Run:
//
//	go run ./examples/sensorfield
package main

import (
	"fmt"
	"math"

	"clusterfds/internal/geo"
	"clusterfds/internal/scenario"
	"clusterfds/internal/wire"
)

const (
	initialSensors = 300
	fieldSide      = 600.0
	lossProb       = 0.1
	missionEpochs  = 30
	attritionPer   = 2   // crashes per epoch
	capacityFloor  = 270 // replenish below this believed population
	replenishBatch = 12
)

func main() {
	fmt.Println("== air-dropped sensor field with attrition & replenishment ==")
	w := scenario.Build(scenario.Config{
		Seed:      7,
		Nodes:     initialSensors,
		FieldSide: fieldSide,
		LossProb:  lossProb,
		// Each sensor measures a synthetic temperature field; the readings
		// ride the FDS digests (Section 6's message sharing) and the
		// clusterheads assemble the global picture in-network.
		AggregateSampler: func(id wire.NodeID, e wire.Epoch) (float64, bool) {
			return 15 + 10*math.Sin(float64(e)/5) + float64(id%7), true
		},
	})
	timing := w.Config().Timing
	field := geo.NewRect(fieldSide, fieldSide)

	// Attrition: crash a couple of sensors every epoch from epoch 3 on.
	for e := 3; e < missionEpochs; e++ {
		w.CrashRandomAt(timing.EpochStart(wire.Epoch(e))+timing.Interval/3, attritionPer)
	}

	deployed := initialSensors
	replenishments := 0
	for e := 1; e <= missionEpochs; e++ {
		w.RunEpochs(e)

		// The base station reads the health picture from any operational
		// host — the FDS's completeness property makes them agree.
		ops := w.Operational()
		if len(ops) == 0 {
			fmt.Println("field dead")
			return
		}
		station := ops[0]
		believedFailed := len(w.Detector(station).KnownFailed())
		believedAlive := deployed - believedFailed

		if e%5 == 0 || believedAlive < capacityFloor {
			actualAlive := len(ops)
			fmt.Printf("epoch %2d: station %v believes %d/%d alive (actual %d)\n",
				e, station, believedAlive, deployed, actualAlive)
			// The station also reads the in-network aggregate from the
			// nearest clusterhead.
			for _, id := range ops {
				if w.Cluster(id).View().IsCH {
					if g, clusters := w.Aggregate(id).Global(wire.Epoch(e - 1)); g.Count > 0 {
						fmt.Printf("          field temperature (from %d clusters, %d sensors): %s\n",
							clusters, g.Count, g)
					}
					break
				}
			}
		}

		// Maintenance rule (paper Section 2.1): deploy replacements when
		// believed capacity drops below the floor.
		if believedAlive < capacityFloor {
			fmt.Printf("epoch %2d: capacity %d below floor %d -> air-dropping %d sensors\n",
				e, believedAlive, capacityFloor, replenishBatch)
			for i := 0; i < replenishBatch; i++ {
				pos := geo.UniformInRect(w.Kernel.Rand(), field)
				w.DeployAt(timing.EpochStart(wire.Epoch(e))+timing.Interval*3/4, pos)
			}
			deployed += replenishBatch
			replenishments++
		}
	}

	// Final accounting.
	ops := w.Operational()
	station := ops[0]
	c := w.Census()
	fmt.Printf("\nmission complete after %d epochs:\n", missionEpochs)
	fmt.Printf("  deployed %d sensors total (%d replenishment drops)\n", deployed, replenishments)
	fmt.Printf("  %d operational; station believes %d failed\n",
		len(ops), len(w.Detector(station).KnownFailed()))
	fmt.Printf("  clusters: %d CHs, %d members (%d gateways), %d unadmitted\n",
		c.Clusterheads, c.Members, c.Gateways, c.Unmarked)
	if fs := w.FalseSuspicions(); len(fs) > 0 {
		fmt.Printf("  false suspicions outstanding: %d\n", len(fs))
	} else {
		fmt.Println("  no false suspicions outstanding")
	}
	fmt.Printf("  energy: %.0f units total\n", w.TotalEnergySpent())
}
