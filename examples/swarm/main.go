// Swarm: a micro-UAV swarm losing its clusterheads under heavy message
// loss — the stress case for the deputy-clusterhead machinery.
//
// The paper's CH-failure rule lets the highest-ranked deputy clusterhead
// detect a dead CH (no heartbeat, no digest, no digest evidence, no health
// update) and take over at the end of fds.R-3; if the first deputy is dead
// too, the second steps up one round later. This example crashes every
// clusterhead simultaneously at p = 0.3 and watches the takeover cascade
// and the re-formed hierarchy.
//
// Run:
//
//	go run ./examples/swarm
package main

import (
	"fmt"
	"strings"

	"clusterfds/internal/analysis"
	"clusterfds/internal/scenario"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

func main() {
	fmt.Println("== UAV swarm: decapitation strike on every clusterhead (p = 0.3) ==")
	tr := trace.NewMemory(trace.TypeTakeover, trace.TypeDetect, trace.TypeFalseDetect)
	w := scenario.Build(scenario.Config{
		Seed:      21,
		Nodes:     150,
		FieldSide: 500,
		LossProb:  0.3,
		Trace:     tr,
	})
	timing := w.Config().Timing

	w.RunEpochs(3)
	before := w.Census()
	fmt.Printf("after formation: %d clusters, %d members, %d gateways\n",
		before.Clusterheads, before.Members, before.Gateways)

	// Find and schedule the simultaneous loss of every clusterhead.
	var chs []wire.NodeID
	for _, id := range w.NodeIDs() {
		if w.Cluster(id).View().IsCH {
			chs = append(chs, id)
		}
	}
	fmt.Printf("crashing all %d clusterheads at once: %v\n\n", len(chs), chs)
	for _, ch := range chs {
		w.CrashAt(timing.EpochStart(3)+timing.Interval/2, ch)
	}

	for e := 4; e <= 14; e++ {
		w.RunEpochs(e)
		c := w.Census()
		fmt.Printf("epoch %2d: %2d CHs, %3d members, %2d unadmitted, takeovers: %d, false suspicions: %d\n",
			e, c.Clusterheads, c.Members, c.Unmarked, tr.Count(trace.TypeTakeover), len(w.FalseSuspicions()))
	}

	// Every surviving host must know about every dead clusterhead.
	fmt.Println("\ndissemination of the clusterhead failures:")
	for _, ch := range chs {
		aware, operational := w.Completeness(ch)
		fmt.Printf("  %v: %d/%d operational hosts aware\n", ch, aware, operational)
	}

	conflicts, selfListed := 0, 0
	for _, e := range tr.OfType(trace.TypeFalseDetect) {
		if strings.HasPrefix(e.Detail, "takeover by") {
			conflicts++
		} else {
			selfListed++
		}
	}
	fmt.Printf("\ntakeover events: %d; detections: %d\n", tr.Count(trace.TypeTakeover), tr.Count(trace.TypeDetect))
	fmt.Printf("conflicting takeovers (operational CH deposed): %d; rescinded self-accusations: %d\n",
		conflicts, selfListed)
	fmt.Printf("false suspicions outstanding: %d (churn, not permanent: rescind propagation\n", len(w.FalseSuspicions()))
	fmt.Printf("  withdraws them; at ~9-member clusters and p=0.3 the paper's own formula\n")
	fmt.Printf("  predicts P(false detection) ≈ %.3f per member-epoch — density is the cure)\n",
		analysis.FalseDetection(9, 0.3))
}
