// Gossipcompare: the paper's scalability argument, measured.
//
// Section 3 claims the two-tier cluster architecture disseminates
// system-wide information "far more efficiently than with flat flooding",
// and the related-work section positions the FDS against gossip-style
// detectors. This example runs the same field, the same crash, and the same
// wall of virtual time under all three stacks and compares message volume,
// bytes, energy, detection quality, and latency.
//
// Run:
//
//	go run ./examples/gossipcompare
package main

import (
	"fmt"
	"time"

	"clusterfds/internal/scenario"
	"clusterfds/internal/stats"
)

const (
	nodes     = 250
	fieldSide = 800.0
	lossProb  = 0.1
	epochs    = 10
)

type result struct {
	stack       scenario.Stack
	txTotal     int64
	txBytes     int64
	energy      float64
	aware       int
	operational int
	meanLat     float64
	maxLat      float64
}

func run(stack scenario.Stack) result {
	w := scenario.Build(scenario.Config{
		Seed:      99,
		Nodes:     nodes,
		FieldSide: fieldSide,
		LossProb:  lossProb,
		Stack:     stack,
		// Baselines get the same period as the FDS's heartbeat interval,
		// so every stack pays for the same number of "rounds".
	})
	timing := w.Config().Timing
	victim := w.CrashRandomAt(timing.EpochStart(4)+timing.Interval/2, 1)[0]
	w.RunEpochs(epochs)

	r := result{stack: stack}
	counts := w.MessageCounts()
	for k, v := range counts {
		if len(k) > 3 && k[:3] == "tx:" {
			r.txTotal += v
		}
	}
	r.txBytes = counts["tx-bytes"]
	r.energy = w.TotalEnergySpent()
	r.aware, r.operational = w.Completeness(victim)
	lat := stats.NewSummary(false)
	for _, l := range w.DetectionLatencies(victim) {
		lat.Add(time.Duration(l).Seconds())
	}
	r.meanLat, r.maxLat = lat.Mean(), lat.Max()
	return r
}

func main() {
	fmt.Printf("== detector stack comparison: %d nodes, %.0fm field, p=%.2f, %d intervals ==\n\n",
		nodes, fieldSide, lossProb, epochs)
	fmt.Printf("%-12s %12s %14s %12s %12s %10s %8s\n",
		"stack", "tx msgs", "tx bytes", "energy", "aware", "mean lat", "max lat")

	var base result
	for _, stack := range []scenario.Stack{scenario.StackClusterFDS, scenario.StackGossip, scenario.StackFlood} {
		r := run(stack)
		if stack == scenario.StackClusterFDS {
			base = r
		}
		fmt.Printf("%-12v %12d %14d %12.0f %7d/%-4d %9.1fs %7.1fs\n",
			r.stack, r.txTotal, r.txBytes, r.energy, r.aware, r.operational, r.meanLat, r.maxLat)
	}

	fmt.Println("\nrelative to the cluster-based FDS:")
	for _, stack := range []scenario.Stack{scenario.StackGossip, scenario.StackFlood} {
		r := run(stack)
		fmt.Printf("  %-8v sends %5.1fx the messages, %5.1fx the bytes, spends %5.1fx the energy\n",
			r.stack,
			ratio(r.txTotal, base.txTotal),
			ratio(r.txBytes, base.txBytes),
			r.energy/base.energy)
	}
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
