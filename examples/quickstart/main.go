// Quickstart: the smallest end-to-end use of the cluster-based failure
// detection service.
//
// A 200-host field self-organizes into clusters; one host crashes; the FDS
// detects the failure locally (three-round heartbeat/digest/update
// protocol) and the failure report spreads across the cluster backbone
// until every operational host knows.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"clusterfds/internal/scenario"
	"clusterfds/internal/wire"
)

func main() {
	fmt.Println("== cluster-based FDS quickstart ==")
	fmt.Println("deploying 200 hosts over a 700x700 m field, R = 100 m, p = 0.1 ...")

	w := scenario.Build(scenario.Config{
		Seed:      42,
		Nodes:     200,
		FieldSide: 700,
		LossProb:  0.1,
	})
	timing := w.Config().Timing

	// Let the clusters form (feature F4: the algorithm iterates every
	// heartbeat interval until everyone is admitted).
	w.RunEpochs(4)
	c := w.Census()
	fmt.Printf("after 4 heartbeat intervals: %d clusters, %d members (%d gateways), %d unadmitted\n",
		c.Clusterheads, c.Members, c.Gateways, c.Unmarked)

	// Crash one host between FDS executions (the paper's fail-stop model).
	victim := w.CrashRandomAt(timing.EpochStart(4)+timing.Interval/2, 1)[0]
	fmt.Printf("\ncrashing %v mid-epoch 4 ...\n", victim)

	// One epoch later the victim's cluster detects it; a couple more and
	// the report has flooded the backbone.
	for epoch := 5; epoch <= 8; epoch++ {
		w.RunEpochs(epoch + 1)
		aware, operational := w.Completeness(victim)
		fmt.Printf("end of epoch %d: %3d/%3d operational hosts know %v failed\n",
			epoch, aware, operational, victim)
	}

	aware, operational := w.Completeness(victim)
	if aware == operational {
		fmt.Printf("\ncompleteness reached: every operational host knows.\n")
	}
	lats := w.DetectionLatencies(victim)
	if len(lats) > 0 {
		fmt.Printf("first detection %.1fs after the crash; last host learned after %.1fs\n",
			time.Duration(lats[0]).Seconds(), time.Duration(lats[len(lats)-1]).Seconds())
	}
	if fs := w.FalseSuspicions(); len(fs) == 0 {
		fmt.Println("accuracy held: no operational host is suspected")
	} else {
		fmt.Printf("false suspicions: %v\n", fs)
	}

	// Peek at one host's failure view through the public query surface.
	var anyObserver wire.NodeID
	for _, id := range w.Operational() {
		if id != victim {
			anyObserver = id
			break
		}
	}
	fmt.Printf("\nhost %v's failure view: %v\n", anyObserver, w.Detector(anyObserver).KnownFailed())
}
