// Package transport defines the sans-I/O boundary of the protocol stack.
//
// The failure detection service, the cluster-formation algorithm, and the
// inter-cluster forwarder are pure message-driven state machines: they
// consume delivered messages and timer firings, and they produce sends and
// new timers. Everything impure — where time comes from, where randomness
// comes from, and how bytes move between hosts — enters through the three
// interfaces declared here:
//
//	Clock      schedules callbacks on a virtual timeline (sim.Kernel, or a
//	           kernel paced against the wall clock by a live driver).
//	Rand       is a seeded randomness source (*rand.Rand satisfies it).
//	Transport  carries encoded messages between hosts.
//
// The simulated radio medium (internal/radio) is one Transport backend; the
// in-process Mesh and the UDP/channel links in this package are the others.
// All of them move the same internal/wire bytes, so a protocol binary-level
// conformance harness (internal/conformance) can assert that the state
// machines behave identically regardless of which backend feeds them. The
// fdslint walltime analyzer polices this boundary mechanically: inside the
// deterministic packages the only legal clock is a Clock and the only legal
// randomness is a seeded Rand.
package transport

import (
	"math/rand"

	"clusterfds/internal/geo"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// Clock is the scheduling surface the protocol core runs on: a readable
// virtual now plus cancellable one-shot timers. *sim.Kernel implements it.
// Implementations must run callbacks one at a time (the protocol core is
// lock-free by construction) and in (time, schedule-order) order.
type Clock interface {
	// Now returns the current virtual time.
	Now() sim.Time
	// Schedule runs fn after the given delay and returns a cancellable
	// handle. Negative delays fire at the current instant.
	Schedule(delay sim.Time, fn sim.Handler) sim.Timer
	// At runs fn at the given absolute virtual time, which must not be in
	// the past.
	At(at sim.Time, fn sim.Handler) sim.Timer
}

// Rand is the randomness surface of the protocol core. It is the subset of
// *rand.Rand the stack draws from; every implementation must be explicitly
// seeded so a run is a pure function of (scenario, seed) — the walltime
// analyzer forbids the global math/rand source in the deterministic
// packages.
type Rand interface {
	Int63n(n int64) int64
	Intn(n int) int
	Float64() float64
	Perm(n int) []int
	Shuffle(n int, swap func(i, j int))
}

// Runtime is what a host binds to: a clock plus the seeded random source the
// clock's timeline was built with. *sim.Kernel implements it directly, both
// under the simulator and under a live driver that paces a kernel against
// the wall clock.
type Runtime interface {
	Clock
	// Rand returns the runtime's deterministic random source.
	Rand() *rand.Rand
}

// ArgClock is an optional Clock extension: closure-free scheduling of a
// long-lived handler with a per-event argument. Hosts probe for it once at
// construction and use it to run crash-guarded timers through pooled records
// instead of a fresh closure per timer. *sim.Kernel implements it.
type ArgClock interface {
	// ScheduleArg runs fn(arg) after the given delay, ordered exactly like
	// Schedule.
	ScheduleArg(delay sim.Time, fn sim.ArgHandler, arg any) sim.Timer
}

// BatchClock is an optional Clock extension: same-instant callbacks are
// coalesced into one kernel event that runs them in registration order (see
// sim.Kernel.AtBatched for the exact ordering contract). Protocol phase
// schedules use it so an epoch boundary costs one event, not one per host.
type BatchClock interface {
	// AtBatched runs fn(arg) at the absolute time at; no cancellation handle
	// is returned, so callbacks must guard themselves.
	AtBatched(at sim.Time, fn sim.ArgHandler, arg any)
}

// Compile-time checks: the simulation kernel is a Runtime with both optional
// scheduling extensions, and *rand.Rand is a Rand.
var (
	_ Runtime    = (*sim.Kernel)(nil)
	_ ArgClock   = (*sim.Kernel)(nil)
	_ BatchClock = (*sim.Kernel)(nil)
	_ Rand       = (*rand.Rand)(nil)
)

// Receiver is the surface a host exposes to a transport.
type Receiver interface {
	// ID returns the host's globally unique NID.
	ID() wire.NodeID
	// Pos returns the host's current location. Transports without geometry
	// (Mesh, LinkTransport) ignore it.
	Pos() geo.Point
	// Operational reports whether the host can currently send and receive
	// (false once crashed — the fail-stop model — or radio-asleep).
	Operational() bool
	// Deliver hands a received message to the host. The message may be
	// backed by the transport's decode scratch and is valid only for the
	// duration of the call; receivers that keep any part of it must copy.
	Deliver(m wire.Message, from wire.NodeID)
}

// Transport carries messages between hosts. It is the full surface
// node.Host needs from the network layer; *radio.Medium, *Mesh's per-node
// ports, and *LinkTransport implement it.
//
// Implementations are driven from Clock callbacks and must not be assumed
// safe for concurrent use; in live mode the driver serializes everything
// onto one goroutine.
type Transport interface {
	// Attach registers a host with the transport. Attaching two hosts with
	// the same NID is a configuration error and panics.
	Attach(r Receiver)
	// Send transmits m on behalf of from. Per the promiscuous model the
	// message is offered to every reachable host; delivery is best-effort.
	Send(from wire.NodeID, m wire.Message)
	// Energy returns the host's available energy budget (the peer-forwarding
	// backoff consults it). Transports without an energy model return a
	// constant.
	Energy(id wire.NodeID) float64
	// Neighbors returns the hosts currently reachable from the given point,
	// excluding exclude.
	Neighbors(at geo.Point, exclude wire.NodeID) []wire.NodeID
	// UpdatePos tells the transport a host moved from old to its current
	// Pos. Transports without geometry ignore it.
	UpdatePos(id wire.NodeID, old geo.Point)
}

// Packet is one received datagram: the sender's NID and the encoded
// message bytes (internal/wire format, no framing).
type Packet struct {
	From    wire.NodeID
	Payload []byte
}

// Broadcaster is the outbound half of a link: it offers one encoded message
// to every peer. The payload is owned by the caller and valid only for the
// duration of the call; implementations that retain it must copy.
type Broadcaster interface {
	Broadcast(from wire.NodeID, payload []byte) error
}

// Link is a full-duplex best-effort broadcast link for a live node: UDP on
// localhost (UDPLink) or an in-process channel mesh (ChanMesh). Inbound
// packets surface on Packets; the payload of a received Packet is owned by
// the receiver until the next channel receive.
type Link interface {
	Broadcaster
	// Packets returns the inbound datagram stream. The channel is closed
	// when the link is closed.
	Packets() <-chan Packet
	// Close tears the link down and closes the packet channel.
	Close() error
}
