package transport

import (
	"fmt"

	"clusterfds/internal/geo"
	"clusterfds/internal/sim"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

// MeshParams configures the in-process mesh.
type MeshParams struct {
	// LossProb is the independent per-receiver loss probability, as in the
	// radio medium.
	LossProb float64
	// MinDelay and MaxDelay bound the uniform delivery delay.
	MinDelay, MaxDelay sim.Time
	// DupProb is the probability that a surviving delivery is duplicated
	// (a second copy with its own delay draw), modeling datagram duplication
	// a real UDP path can exhibit. Zero (the default, and the conformance
	// setting) draws no randomness at all, preserving draw-order parity with
	// the radio medium.
	DupProb float64
	// Energy is the per-host energy model; both backends share Meter so the
	// energy-biased forwarding backoff behaves identically.
	Energy EnergyParams
}

// DefaultMeshParams returns mesh parameters matching radio.Defaults: the
// same delay bounds and energy model, with the given loss probability and
// no duplication.
func DefaultMeshParams(lossProb float64) MeshParams {
	return MeshParams{
		LossProb: lossProb,
		MinDelay: 1e6,  // 1 ms
		MaxDelay: 12e6, // 12 ms
		Energy:   DefaultEnergy(),
	}
}

// meshMember is one attached host, with its private decode scratch.
type meshMember struct {
	id      wire.NodeID
	r       Receiver
	scratch *wire.DecodeScratch
}

// Mesh is the second deterministic Transport backend: a fully connected
// in-process packet mesh with no geometry. Every transmission is encoded to
// wire bytes once and offered to every other member in join order; each
// delivery is independently lost, delayed, and (optionally) duplicated, then
// decoded at reception time into the receiver's own scratch — the same
// encode-once/decode-per-receiver byte path as the radio medium, through a
// completely separate implementation.
//
// The per-receiver randomness draw sequence deliberately mirrors
// radio.Medium.Send (one Float64 loss draw always; one Int63n delay draw iff
// MaxDelay > MinDelay; duplication draws only when DupProb > 0), so a run on
// a mesh with DupProb = 0 consumes the kernel's random stream exactly as the
// equivalent single-cell radio run does. The differential conformance suite
// (internal/conformance) relies on this to assert trace-for-trace equality.
type Mesh struct {
	rt     Runtime
	params MeshParams
	sink   trace.Sink

	members []meshMember // join order; delivery iteration order
	index   map[wire.NodeID]int

	linkLoss map[[2]wire.NodeID]float64
	silenced map[wire.NodeID]bool

	meter   *Meter
	tracing bool
}

// MeshOption customizes a Mesh.
type MeshOption func(*Mesh)

// WithMeshTrace attaches a trace sink to the mesh.
func WithMeshTrace(s trace.Sink) MeshOption {
	return func(m *Mesh) { m.sink = s }
}

// NewMesh creates a mesh on the given runtime.
func NewMesh(rt Runtime, params MeshParams, opts ...MeshOption) *Mesh {
	if params.LossProb < 0 || params.LossProb > 1 {
		panic(fmt.Sprintf("transport: mesh loss probability %v outside [0,1]", params.LossProb))
	}
	if params.DupProb < 0 || params.DupProb > 1 {
		panic(fmt.Sprintf("transport: mesh dup probability %v outside [0,1]", params.DupProb))
	}
	if params.MaxDelay < params.MinDelay {
		panic("transport: mesh MaxDelay < MinDelay")
	}
	m := &Mesh{
		rt:       rt,
		params:   params,
		sink:     trace.Nop{},
		index:    make(map[wire.NodeID]int),
		linkLoss: make(map[[2]wire.NodeID]float64),
		silenced: make(map[wire.NodeID]bool),
	}
	m.meter = NewMeter(params.Energy, rt)
	for _, opt := range opts {
		opt(m)
	}
	_, nop := m.sink.(trace.Nop)
	m.tracing = !nop
	return m
}

// Attach implements Transport. Join order is delivery-iteration order, so
// scenarios that want cross-backend parity must attach hosts in the same
// order on both backends.
func (m *Mesh) Attach(r Receiver) {
	id := r.ID()
	if id == wire.NoNode {
		panic("transport: cannot attach node with NID 0")
	}
	if _, dup := m.index[id]; dup {
		panic(fmt.Sprintf("transport: duplicate NID %v", id))
	}
	m.index[id] = len(m.members)
	m.members = append(m.members, meshMember{id: id, r: r, scratch: wire.NewDecodeScratch()})
	m.meter.Track(id)
}

// SetLinkLoss overrides the loss probability on the directed link from ->
// to. Pass a negative probability to remove the override.
func (m *Mesh) SetLinkLoss(from, to wire.NodeID, p float64) {
	key := [2]wire.NodeID{from, to}
	if p < 0 {
		delete(m.linkLoss, key)
		return
	}
	if p > 1 {
		p = 1
	}
	m.linkLoss[key] = p
}

// Silence makes every transmission from id vanish (on=true) or restores
// normal behaviour (on=false).
func (m *Mesh) Silence(id wire.NodeID, on bool) {
	if on {
		m.silenced[id] = true
	} else {
		delete(m.silenced, id)
	}
}

// Send implements Transport. See the type comment for the draw-order
// contract with radio.Medium.Send.
func (m *Mesh) Send(from wire.NodeID, msg wire.Message) {
	si, ok := m.index[from]
	if !ok || !m.members[si].r.Operational() {
		return
	}
	size := msg.WireSize()
	m.meter.ChargeTx(from, size)
	if m.tracing {
		m.sink.Emit(trace.Event{
			At: m.rt.Now(), Type: trace.TypeSend, Node: uint32(from),
			Detail: msg.Kind().String(),
		})
	}
	if m.silenced[from] {
		return
	}
	// Encode once; every delivery of this transmission decodes the shared
	// bytes into its receiver's own scratch at reception time.
	buf := wire.Encode(msg)
	rng := m.rt.Rand()
	for i := range m.members {
		if m.members[i].id == from {
			continue
		}
		mem := &m.members[i]
		loss := m.params.LossProb
		if override, ok := m.linkLoss[[2]wire.NodeID{from, mem.id}]; ok {
			loss = override
		}
		if rng.Float64() < loss {
			if m.tracing {
				m.sink.Emit(trace.Event{
					At: m.rt.Now(), Type: trace.TypeDrop, Node: uint32(mem.id),
					Detail: fmt.Sprintf("%s from %v", msg.Kind(), from),
				})
			}
			continue
		}
		m.scheduleDelivery(mem, from, buf, size)
		if m.params.DupProb > 0 && rng.Float64() < m.params.DupProb {
			m.scheduleDelivery(mem, from, buf, size)
		}
	}
}

// scheduleDelivery draws the delivery delay for one receiver (consuming one
// Int63n iff the delay window is non-degenerate, as the radio does) and
// schedules the reception.
func (m *Mesh) scheduleDelivery(mem *meshMember, from wire.NodeID, buf []byte, size int) {
	rng := m.rt.Rand()
	delay := m.params.MinDelay
	if span := m.params.MaxDelay - m.params.MinDelay; span > 0 {
		delay += sim.Time(rng.Int63n(int64(span) + 1))
	}
	m.rt.Schedule(delay, func() { m.deliver(mem, from, buf, size) })
}

// deliver completes one reception: charge, decode into the receiver's
// scratch, trace, dispatch. The decoded message is valid only during the
// Deliver call.
func (m *Mesh) deliver(mem *meshMember, from wire.NodeID, buf []byte, size int) {
	if !mem.r.Operational() {
		return
	}
	m.meter.ChargeRx(mem.id, size)
	decoded, err := wire.DecodeInto(mem.scratch, buf)
	if err != nil {
		// The mesh never corrupts messages; a decode failure is a codec bug.
		panic(fmt.Sprintf("transport: mesh decode for delivery: %v", err))
	}
	if m.tracing {
		m.sink.Emit(trace.Event{
			At: m.rt.Now(), Type: trace.TypeDeliver, Node: uint32(mem.id),
			Detail: fmt.Sprintf("%s from %v", decoded.Kind(), from),
		})
	}
	mem.r.Deliver(decoded, from)
}

// Energy implements Transport via the shared meter.
func (m *Mesh) Energy(id wire.NodeID) float64 { return m.meter.Energy(id) }

// Meter returns the mesh's energy meter.
func (m *Mesh) Meter() *Meter { return m.meter }

// Neighbors implements Transport: every operational member except exclude,
// in join order (the mesh has no geometry — everyone is in range).
func (m *Mesh) Neighbors(at geo.Point, exclude wire.NodeID) []wire.NodeID {
	var out []wire.NodeID
	for i := range m.members {
		if m.members[i].id == exclude || !m.members[i].r.Operational() {
			continue
		}
		out = append(out, m.members[i].id)
	}
	return out
}

// UpdatePos implements Transport; the mesh has no geometry.
func (m *Mesh) UpdatePos(id wire.NodeID, old geo.Point) {}

var _ Transport = (*Mesh)(nil)
