package transport

import (
	"math"
	"sort"

	"clusterfds/internal/wire"
)

// EnergyParams parameterizes the per-host energy model in abstract energy
// units (paper Section 2.1: hosts spend energy per transmission and per
// received byte, and harvest it back from solar cells).
type EnergyParams struct {
	// TxBaseCost is the fixed cost of keying the radio for one transmission.
	TxBaseCost float64
	// TxByteCost and RxByteCost are the per-byte costs of sending and
	// receiving.
	TxByteCost, RxByteCost float64
	// HarvestRate is energy units gained per second of virtual time.
	HarvestRate float64
	// InitialEnergy is each host's starting budget.
	InitialEnergy float64
}

// DefaultEnergy returns the energy model used throughout the experiments
// (identical to radio.Defaults).
func DefaultEnergy() EnergyParams {
	return EnergyParams{
		TxBaseCost:    10,
		TxByteCost:    0.5,
		RxByteCost:    0.2,
		HarvestRate:   5,
		InitialEnergy: 100000,
	}
}

// meterCell tracks one host's cumulative spend; available energy is computed
// lazily from the harvest rate and the clock.
type meterCell struct {
	spent float64
}

// Meter is the shared per-host energy meter. Both transport backends (the
// simulated radio medium and the in-process mesh) delegate to it, so the
// floating-point arithmetic — and therefore the energy-biased peer-forwarding
// backoff in fds — is bit-identical regardless of backend.
//
// Charging an untracked host is a no-op, mirroring the historical radio
// behaviour for unattached NIDs.
type Meter struct {
	params EnergyParams
	clock  Clock
	cells  map[wire.NodeID]*meterCell
}

// NewMeter creates a meter reading virtual time from clock.
func NewMeter(p EnergyParams, clock Clock) *Meter {
	return &Meter{params: p, clock: clock, cells: make(map[wire.NodeID]*meterCell)}
}

// Track starts metering the given host (zero spend). Tracking an
// already-tracked host is a no-op.
func (m *Meter) Track(id wire.NodeID) {
	if _, ok := m.cells[id]; !ok {
		m.cells[id] = &meterCell{}
	}
}

// ChargeTx debits transmission energy: the base keying cost plus the
// per-byte cost.
func (m *Meter) ChargeTx(id wire.NodeID, bytes int) {
	if c := m.cells[id]; c != nil {
		c.spent += m.params.TxBaseCost + m.params.TxByteCost*float64(bytes)
	}
}

// ChargeRx debits reception energy.
func (m *Meter) ChargeRx(id wire.NodeID, bytes int) {
	if c := m.cells[id]; c != nil {
		c.spent += m.params.RxByteCost * float64(bytes)
	}
}

// Energy returns the host's available energy: initial budget plus harvest
// minus spend, floored at zero. Untracked hosts have zero energy.
func (m *Meter) Energy(id wire.NodeID) float64 {
	c, ok := m.cells[id]
	if !ok {
		return 0
	}
	harvested := m.params.HarvestRate * m.clock.Now().Seconds()
	return math.Max(0, m.params.InitialEnergy+harvested-c.spent)
}

// Spent returns the host's cumulative energy expenditure.
func (m *Meter) Spent(id wire.NodeID) float64 {
	if c, ok := m.cells[id]; ok {
		return c.spent
	}
	return 0
}

// TotalSpent sums expenditure over all tracked hosts in NID order, so the
// floating-point total is identical across runs.
func (m *Meter) TotalSpent() float64 {
	ids := make([]wire.NodeID, 0, len(m.cells))
	for id := range m.cells {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var t float64
	for _, id := range ids {
		t += m.cells[id].spent
	}
	return t
}
