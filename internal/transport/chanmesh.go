package transport

import (
	"fmt"
	"sync"

	"clusterfds/internal/wire"
)

// chanLinkBuffer is the inbound queue depth of one ChanMesh port. Deep
// enough that a cooperative test draining between virtual steps never
// drops; a full queue drops like a full socket buffer would.
const chanLinkBuffer = 1024

// ChanMesh is a thread-safe in-process broadcast hub: every joined port's
// Broadcast is copied into every other port's inbound channel. It is the
// test stand-in for N UDP sockets on localhost — daemon tests run whole
// multi-node clusters in one process, with no real sockets and no wall
// time, and can model a vanished node by simply leaving the mesh.
//
// Delivery is best-effort: a port whose inbound queue is full drops the
// datagram, exactly as a saturated socket buffer would.
type ChanMesh struct {
	mu    sync.Mutex
	ports []*ChanLink // join order; closed ports are compacted out
}

// NewChanMesh creates an empty mesh.
func NewChanMesh() *ChanMesh { return &ChanMesh{} }

// Join adds a port for the given NID and returns its link.
func (cm *ChanMesh) Join(id wire.NodeID) *ChanLink {
	if id == wire.NoNode {
		panic("transport: cannot join mesh with NID 0")
	}
	cm.mu.Lock()
	defer cm.mu.Unlock()
	for _, p := range cm.ports {
		if p.id == id {
			panic(fmt.Sprintf("transport: duplicate mesh NID %v", id))
		}
	}
	link := &ChanLink{mesh: cm, id: id, in: make(chan Packet, chanLinkBuffer)}
	cm.ports = append(cm.ports, link)
	return link
}

// leave removes a port. Called by ChanLink.Close.
func (cm *ChanMesh) leave(link *ChanLink) {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	for i, p := range cm.ports {
		if p == link {
			cm.ports = append(cm.ports[:i], cm.ports[i+1:]...)
			return
		}
	}
}

// broadcast copies payload to every port except the sender's own.
func (cm *ChanMesh) broadcast(sender *ChanLink, from wire.NodeID, payload []byte) {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	for _, p := range cm.ports {
		if p == sender {
			continue
		}
		// Per-receiver copy: a received Packet's payload is owned by its
		// receiver and must not alias the sender's reused encode buffer or
		// another receiver's copy.
		cp := append([]byte(nil), payload...)
		select {
		case p.in <- Packet{From: from, Payload: cp}:
		default:
			// Queue full: drop, like a saturated socket buffer.
		}
	}
}

// ChanLink is one port on a ChanMesh. It implements Link.
type ChanLink struct {
	mesh *ChanMesh
	id   wire.NodeID
	in   chan Packet

	closeOnce sync.Once
}

// ID returns the port's NID.
func (l *ChanLink) ID() wire.NodeID { return l.id }

// Broadcast implements Broadcaster.
func (l *ChanLink) Broadcast(from wire.NodeID, payload []byte) error {
	l.mesh.broadcast(l, from, payload)
	return nil
}

// Packets implements Link.
func (l *ChanLink) Packets() <-chan Packet { return l.in }

// Close implements Link: the port leaves the mesh and its packet channel is
// closed (after any queued datagrams are discarded by the receiver).
func (l *ChanLink) Close() error {
	l.closeOnce.Do(func() {
		l.mesh.leave(l)
		close(l.in)
	})
	return nil
}

var _ Link = (*ChanLink)(nil)
