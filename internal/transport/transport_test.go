package transport

import (
	"testing"
	"time"

	"clusterfds/internal/geo"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// stubReceiver is a minimal Receiver recording deliveries.
type stubReceiver struct {
	id   wire.NodeID
	down bool
	got  []wire.Message
	from []wire.NodeID
}

func (r *stubReceiver) ID() wire.NodeID   { return r.id }
func (r *stubReceiver) Pos() geo.Point    { return geo.Point{} }
func (r *stubReceiver) Operational() bool { return !r.down }
func (r *stubReceiver) Deliver(m wire.Message, from wire.NodeID) {
	r.got = append(r.got, wire.Clone(m))
	r.from = append(r.from, from)
}

func TestFakeWallAdvanceFiresDueWaiters(t *testing.T) {
	w := NewFakeWall()
	if w.Elapsed() != 0 {
		t.Fatalf("fresh fake wall at %v, want 0", w.Elapsed())
	}
	a := w.After(10 * time.Millisecond)
	b := w.After(30 * time.Millisecond)
	closed := func(ch <-chan struct{}) bool {
		select {
		case <-ch:
			return true
		default:
			return false
		}
	}
	if closed(a) || closed(b) {
		t.Fatal("waiters fired before any Advance")
	}
	w.Advance(10 * time.Millisecond)
	if !closed(a) {
		t.Error("10ms waiter did not fire at +10ms")
	}
	if closed(b) {
		t.Error("30ms waiter fired early")
	}
	w.Advance(25 * time.Millisecond)
	if !closed(b) {
		t.Error("30ms waiter did not fire at +35ms")
	}
	if w.Elapsed() != 35*time.Millisecond {
		t.Errorf("Elapsed = %v, want 35ms", w.Elapsed())
	}
}

func TestFakeWallNonPositiveDelayIsClosed(t *testing.T) {
	w := NewFakeWall()
	for _, d := range []sim.Time{0, -time.Second} {
		select {
		case <-w.After(d):
		default:
			t.Errorf("After(%v) not immediately closed", d)
		}
	}
}

func TestChanMeshBroadcastReachesAllOthers(t *testing.T) {
	cm := NewChanMesh()
	l1 := cm.Join(1)
	l2 := cm.Join(2)
	l3 := cm.Join(3)
	if err := l1.Broadcast(1, []byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	for _, l := range []*ChanLink{l2, l3} {
		select {
		case p := <-l.Packets():
			if p.From != 1 || len(p.Payload) != 2 || p.Payload[0] != 0xAA {
				t.Errorf("port %v got %+v", l.ID(), p)
			}
		default:
			t.Errorf("port %v got nothing", l.ID())
		}
	}
	select {
	case p := <-l1.Packets():
		t.Errorf("sender received its own broadcast: %+v", p)
	default:
	}
}

func TestChanMeshPayloadsDoNotAlias(t *testing.T) {
	cm := NewChanMesh()
	l1 := cm.Join(1)
	l2 := cm.Join(2)
	buf := []byte{1, 2, 3}
	if err := l1.Broadcast(1, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // sender reuses its buffer immediately
	p := <-l2.Packets()
	if p.Payload[0] != 1 {
		t.Error("received payload aliases the sender's reused buffer")
	}
}

func TestChanMeshLeaveStopsDelivery(t *testing.T) {
	cm := NewChanMesh()
	l1 := cm.Join(1)
	l2 := cm.Join(2)
	l2.Close()
	if err := l1.Broadcast(1, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-l2.Packets(); ok {
		t.Error("closed port still receives datagrams")
	}
	// Double close is safe.
	l2.Close()
}

func TestChanMeshDropsWhenQueueFull(t *testing.T) {
	cm := NewChanMesh()
	l1 := cm.Join(1)
	l2 := cm.Join(2)
	for i := 0; i < chanLinkBuffer+10; i++ {
		if err := l1.Broadcast(1, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	for {
		select {
		case <-l2.Packets():
			n++
			continue
		default:
		}
		break
	}
	if n != chanLinkBuffer {
		t.Errorf("queued %d packets, want exactly the buffer depth %d", n, chanLinkBuffer)
	}
}

func TestLinkTransportRoundTrip(t *testing.T) {
	k := sim.New(1)
	cm := NewChanMesh()
	la := cm.Join(1)
	lb := cm.Join(2)
	ta := NewLinkTransport(k, la, DefaultEnergy(), []wire.NodeID{2})
	tb := NewLinkTransport(k, lb, DefaultEnergy(), []wire.NodeID{1})
	ra := &stubReceiver{id: 1}
	rb := &stubReceiver{id: 2}
	ta.Attach(ra)
	tb.Attach(rb)

	msg := &wire.Heartbeat{NID: 1, Epoch: 3}
	ta.Send(1, msg)
	p := <-lb.Packets()
	if err := tb.Inject(p); err != nil {
		t.Fatalf("inject: %v", err)
	}
	if len(rb.got) != 1 {
		t.Fatalf("receiver got %d messages, want 1", len(rb.got))
	}
	hb, ok := rb.got[0].(*wire.Heartbeat)
	if !ok || hb.NID != 1 || hb.Epoch != 3 {
		t.Errorf("delivered %#v, want heartbeat{1,3}", rb.got[0])
	}
	if rb.from[0] != 1 {
		t.Errorf("delivered from %v, want 1", rb.from[0])
	}
	// Energy was charged on both ends.
	if ta.Energy(1) >= DefaultEnergy().InitialEnergy {
		t.Error("sender was not charged tx energy")
	}
	if tb.Energy(2) >= DefaultEnergy().InitialEnergy {
		t.Error("receiver was not charged rx energy")
	}
}

func TestLinkTransportRejectsHostileDatagrams(t *testing.T) {
	k := sim.New(1)
	cm := NewChanMesh()
	l := cm.Join(1)
	lt := NewLinkTransport(k, l, DefaultEnergy(), nil)
	r := &stubReceiver{id: 1}
	lt.Attach(r)

	cases := []Packet{
		{From: 2, Payload: []byte{}},                             // empty
		{From: 2, Payload: []byte{0xFF, 1, 2, 3}},                // unknown kind
		{From: 2, Payload: []byte{0}},                            // truncated
		{From: 0, Payload: wire.Encode(&wire.Heartbeat{NID: 9})}, // NID 0
		{From: 1, Payload: wire.Encode(&wire.Heartbeat{NID: 1})}, // reflection
	}
	for i, p := range cases {
		if err := lt.Inject(p); err == nil {
			t.Errorf("case %d: hostile datagram accepted", i)
		}
	}
	if len(r.got) != 0 {
		t.Errorf("hostile datagrams reached the protocol stack: %d deliveries", len(r.got))
	}
	if lt.BadDatagrams() != int64(len(cases)) {
		t.Errorf("BadDatagrams = %d, want %d", lt.BadDatagrams(), len(cases))
	}
}

func TestLinkTransportGatesOnOperational(t *testing.T) {
	k := sim.New(1)
	cm := NewChanMesh()
	la := cm.Join(1)
	lb := cm.Join(2)
	ta := NewLinkTransport(k, la, DefaultEnergy(), []wire.NodeID{2})
	ra := &stubReceiver{id: 1, down: true}
	ta.Attach(ra)

	// Down host sends nothing.
	ta.Send(1, &wire.Heartbeat{NID: 1})
	select {
	case <-lb.Packets():
		t.Error("non-operational host transmitted")
	default:
	}
	// Down host receives nothing (and that is not an error).
	if err := ta.Inject(Packet{From: 2, Payload: wire.Encode(&wire.Heartbeat{NID: 2})}); err != nil {
		t.Errorf("inject to down host errored: %v", err)
	}
	if len(ra.got) != 0 {
		t.Error("non-operational host received a delivery")
	}
	// Sends from a foreign NID are ignored.
	ta.Send(7, &wire.Heartbeat{NID: 7})
	select {
	case <-lb.Packets():
		t.Error("transport sent on behalf of a foreign NID")
	default:
	}
}

func TestLinkTransportNeighborsIsRoster(t *testing.T) {
	k := sim.New(1)
	cm := NewChanMesh()
	lt := NewLinkTransport(k, cm.Join(1), DefaultEnergy(), []wire.NodeID{2, 3, 4})
	got := lt.Neighbors(geo.Point{}, 3)
	want := []wire.NodeID{2, 4}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Neighbors = %v, want %v", got, want)
	}
}

func TestUDPLinkRoundTrip(t *testing.T) {
	la, err := NewUDPLink(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Skipf("cannot bind UDP in this environment: %v", err)
	}
	defer la.Close()
	lb, err := NewUDPLink(2, "127.0.0.1:0", []string{la.LocalAddr().String()})
	if err != nil {
		t.Skipf("cannot bind UDP in this environment: %v", err)
	}
	defer lb.Close()

	payload := wire.Encode(&wire.Heartbeat{NID: 2, Epoch: 5})
	if err := lb.Broadcast(2, payload); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-la.Packets():
		if p.From != 2 {
			t.Errorf("From = %v, want 2", p.From)
		}
		m, err := wire.Decode(p.Payload)
		if err != nil {
			t.Fatalf("payload does not decode: %v", err)
		}
		if hb := m.(*wire.Heartbeat); hb.NID != 2 || hb.Epoch != 5 {
			t.Errorf("decoded %+v, want heartbeat{2,5}", hb)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("datagram never arrived")
	}
}

func TestUDPLinkCloseClosesPackets(t *testing.T) {
	l, err := NewUDPLink(1, "127.0.0.1:0", nil)
	if err != nil {
		t.Skipf("cannot bind UDP in this environment: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-l.Packets():
		if ok {
			t.Error("packet received after close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("packet channel never closed")
	}
	// Double close is safe.
	l.Close()
}

func TestMeterMatchesRadioArithmetic(t *testing.T) {
	k := sim.New(1)
	p := DefaultEnergy()
	m := NewMeter(p, k)
	m.Track(1)
	if got := m.Energy(1); got != p.InitialEnergy {
		t.Fatalf("fresh meter energy %v, want %v", got, p.InitialEnergy)
	}
	m.ChargeTx(1, 100)
	m.ChargeRx(1, 40)
	wantSpent := p.TxBaseCost + p.TxByteCost*100 + p.RxByteCost*40
	if got := m.Spent(1); got != wantSpent {
		t.Errorf("Spent = %v, want %v", got, wantSpent)
	}
	// Charging an untracked host is a no-op; its energy reads zero.
	m.ChargeTx(9, 1000)
	if m.Spent(9) != 0 || m.Energy(9) != 0 {
		t.Error("untracked host has nonzero meter state")
	}
	m.Track(2)
	m.ChargeTx(2, 10)
	if got, want := m.TotalSpent(), wantSpent+p.TxBaseCost+p.TxByteCost*10; got != want {
		t.Errorf("TotalSpent = %v, want %v", got, want)
	}
}

func TestMeshAttachRejectsBadIDs(t *testing.T) {
	k := sim.New(1)
	m := NewMesh(k, DefaultMeshParams(0))
	m.Attach(&stubReceiver{id: 1})
	mustPanic(t, "NID 0", func() { m.Attach(&stubReceiver{id: 0}) })
	mustPanic(t, "duplicate", func() { m.Attach(&stubReceiver{id: 1}) })
}

func TestMeshDeliversWithDelayBounds(t *testing.T) {
	k := sim.New(3)
	params := DefaultMeshParams(0)
	m := NewMesh(k, params)
	a := &stubReceiver{id: 1}
	b := &stubReceiver{id: 2}
	m.Attach(a)
	m.Attach(b)
	m.Send(1, &wire.Heartbeat{NID: 1, Epoch: 1})
	if len(b.got) != 0 {
		t.Fatal("delivery before any time passed")
	}
	k.RunUntil(params.MaxDelay)
	if len(b.got) != 1 {
		t.Fatalf("got %d deliveries within MaxDelay, want 1", len(b.got))
	}
	if len(a.got) != 0 {
		t.Error("sender heard its own transmission")
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("no panic for %s", what)
		}
	}()
	fn()
}
