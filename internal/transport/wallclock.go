package transport

import (
	"sync"

	"clusterfds/internal/sim"
)

// WallClock is the daemon driver's view of real time: how much of it has
// passed since the daemon started, and a way to be woken after a delay. The
// production implementation (in cmd/fdsd, outside the deterministic
// packages, where the walltime analyzer permits time.*) wraps the system
// clock; tests use FakeWall so nothing ever sleeps on wall time.
//
// The protocol core itself never sees a WallClock — the daemon uses it only
// to decide when to advance its virtual-time kernel, so the core stays a
// pure function of (messages, seed).
type WallClock interface {
	// Elapsed returns how much wall time has passed since the epoch of the
	// clock (daemon start).
	Elapsed() sim.Time
	// After returns a channel that is closed once the given delay has
	// passed. Non-positive delays return an already-closed channel.
	After(d sim.Time) <-chan struct{}
}

// closedChan is the shared already-closed channel returned for non-positive
// delays.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// wallWaiter is one pending After call.
type wallWaiter struct {
	at sim.Time
	ch chan struct{}
}

// FakeWall is a manually advanced WallClock for tests: Elapsed returns
// exactly what Advance has accumulated, and After channels fire only when
// Advance crosses their deadline. Safe for concurrent use — the daemon's
// Run loop waits on it from one goroutine while the test advances it from
// another.
type FakeWall struct {
	mu      sync.Mutex
	now     sim.Time
	waiters []wallWaiter
}

// NewFakeWall returns a fake wall clock at elapsed time zero.
func NewFakeWall() *FakeWall { return &FakeWall{} }

// Elapsed implements WallClock.
func (w *FakeWall) Elapsed() sim.Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.now
}

// After implements WallClock.
func (w *FakeWall) After(d sim.Time) <-chan struct{} {
	w.mu.Lock()
	defer w.mu.Unlock()
	if d <= 0 {
		return closedChan
	}
	ch := make(chan struct{})
	w.waiters = append(w.waiters, wallWaiter{at: w.now + d, ch: ch})
	return ch
}

// Advance moves the clock forward by d and fires every waiter whose
// deadline has been reached. Advancing by a non-positive duration only
// fires already-due waiters.
func (w *FakeWall) Advance(d sim.Time) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if d > 0 {
		w.now += d
	}
	kept := w.waiters[:0]
	for _, wt := range w.waiters {
		if wt.at <= w.now {
			close(wt.ch)
		} else {
			kept = append(kept, wt)
		}
	}
	w.waiters = kept
}
