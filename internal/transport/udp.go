package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"clusterfds/internal/wire"
)

// udpFrameHeader is the datagram framing: a 4-byte little-endian sender NID
// prefix, then the wire-encoded message. UDP source addresses are not
// identities (NAT, multi-homing), so the sender says who it is; the protocol
// stack treats the claim like any other untrusted field — the FDS tolerates
// lying nodes no worse than lossy ones, and undecodable payloads are
// rejected by LinkTransport.Inject.
const udpFrameHeader = 4

// udpReadBuffer comfortably exceeds the largest wire message.
const udpReadBuffer = 64 * 1024

// udpQueueDepth is the inbound packet queue depth; the reader drops (like
// the kernel socket buffer would) rather than block when the daemon's event
// loop falls behind.
const udpQueueDepth = 1024

// UDPLink is a Link over UDP datagrams: one socket, a static peer list, and
// a reader goroutine that surfaces inbound frames on Packets. It is the
// live-deployment backend behind cmd/fdsd.
type UDPLink struct {
	id    wire.NodeID
	conn  *net.UDPConn
	peers []*net.UDPAddr

	packets chan Packet
	txMu    sync.Mutex
	txBuf   []byte

	closeOnce sync.Once
}

// NewUDPLink binds listen (e.g. "127.0.0.1:9001") and returns a link that
// broadcasts to the given peer addresses. The reader goroutine runs until
// Close.
func NewUDPLink(id wire.NodeID, listen string, peerAddrs []string) (*UDPLink, error) {
	if id == wire.NoNode {
		return nil, fmt.Errorf("transport: udp link needs a nonzero NID")
	}
	laddr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve listen %q: %w", listen, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", listen, err)
	}
	l := &UDPLink{
		id:      id,
		conn:    conn,
		packets: make(chan Packet, udpQueueDepth),
	}
	for _, a := range peerAddrs {
		addr, err := net.ResolveUDPAddr("udp", a)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("transport: resolve peer %q: %w", a, err)
		}
		l.peers = append(l.peers, addr)
	}
	go l.readLoop()
	return l, nil
}

// LocalAddr returns the bound socket address (useful with ":0" listens).
func (l *UDPLink) LocalAddr() net.Addr { return l.conn.LocalAddr() }

// readLoop pumps datagrams from the socket into the packet channel until
// the socket is closed. Runs in its own goroutine; ReadFromUDP is the only
// blocking point and Close unblocks it.
func (l *UDPLink) readLoop() {
	defer close(l.packets)
	buf := make([]byte, udpReadBuffer)
	for {
		n, _, err := l.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed socket (or fatal error): the link is done
		}
		if n < udpFrameHeader {
			continue // runt frame: not even a sender NID
		}
		from := wire.NodeID(binary.LittleEndian.Uint32(buf[:udpFrameHeader]))
		payload := append([]byte(nil), buf[udpFrameHeader:n]...)
		select {
		case l.packets <- Packet{From: from, Payload: payload}:
		default:
			// Queue full: drop, as the kernel would.
		}
	}
}

// Broadcast implements Broadcaster: frame the payload and send one datagram
// to every peer. Send errors to individual peers are ignored — UDP is
// best-effort and a down peer is indistinguishable from a lossy link.
func (l *UDPLink) Broadcast(from wire.NodeID, payload []byte) error {
	l.txMu.Lock()
	defer l.txMu.Unlock()
	l.txBuf = l.txBuf[:0]
	l.txBuf = binary.LittleEndian.AppendUint32(l.txBuf, uint32(from))
	l.txBuf = append(l.txBuf, payload...)
	for _, addr := range l.peers {
		_, _ = l.conn.WriteToUDP(l.txBuf, addr)
	}
	return nil
}

// Packets implements Link.
func (l *UDPLink) Packets() <-chan Packet { return l.packets }

// Close implements Link: closing the socket unblocks the reader, which
// closes the packet channel.
func (l *UDPLink) Close() error {
	var err error
	l.closeOnce.Do(func() { err = l.conn.Close() })
	return err
}

var _ Link = (*UDPLink)(nil)
