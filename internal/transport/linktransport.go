package transport

import (
	"fmt"

	"clusterfds/internal/geo"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

// LinkTransport adapts a Link (UDP socket, in-process channel mesh) into the
// Transport surface a single host binds to. Where the radio medium and the
// Mesh carry every host of a run, a LinkTransport carries exactly one — the
// local daemon's — and treats everything beyond the Broadcast call as
// another process.
//
// Outbound: Send encodes the message into a reused buffer and broadcasts the
// wire bytes. Inbound: the daemon's event loop drains Link.Packets and calls
// Inject, which decodes into the transport's own scratch and delivers to the
// local host. A live socket receives attacker-controlled bytes, so Inject
// returns decode errors instead of panicking; the wire fuzz targets pin that
// the decoder itself never panics or overreads on hostile input.
//
// LinkTransport is not safe for concurrent use: the daemon serializes
// Send (from protocol callbacks) and Inject (from its receive loop) onto one
// goroutine.
type LinkTransport struct {
	clock Clock
	bc    Broadcaster
	sink  trace.Sink

	self    Receiver
	peers   []wire.NodeID
	meter   *Meter
	scratch *wire.DecodeScratch
	txBuf   []byte
	tracing bool

	rxBad int64
}

// LinkOption customizes a LinkTransport.
type LinkOption func(*LinkTransport)

// WithLinkTrace attaches a trace sink to the transport.
func WithLinkTrace(s trace.Sink) LinkOption {
	return func(lt *LinkTransport) { lt.sink = s }
}

// NewLinkTransport creates a transport for one host over bc. peers is the
// static roster of remote NIDs expected on the link (the live stand-in for
// the radio neighborhood); it is copied.
func NewLinkTransport(clock Clock, bc Broadcaster, energy EnergyParams, peers []wire.NodeID, opts ...LinkOption) *LinkTransport {
	lt := &LinkTransport{
		clock:   clock,
		bc:      bc,
		sink:    trace.Nop{},
		peers:   append([]wire.NodeID(nil), peers...),
		scratch: wire.NewDecodeScratch(),
	}
	lt.meter = NewMeter(energy, clock)
	for _, opt := range opts {
		opt(lt)
	}
	_, nop := lt.sink.(trace.Nop)
	lt.tracing = !nop
	return lt
}

// Attach implements Transport. A LinkTransport carries exactly one host;
// attaching a second panics.
func (lt *LinkTransport) Attach(r Receiver) {
	if r.ID() == wire.NoNode {
		panic("transport: cannot attach node with NID 0")
	}
	if lt.self != nil {
		panic(fmt.Sprintf("transport: LinkTransport already carries %v; cannot attach %v", lt.self.ID(), r.ID()))
	}
	lt.self = r
	lt.meter.Track(r.ID())
}

// Send implements Transport: encode and broadcast on behalf of the local
// host. Sends from anyone but the attached host, or while the host is not
// operational, transmit nothing.
func (lt *LinkTransport) Send(from wire.NodeID, msg wire.Message) {
	if lt.self == nil || from != lt.self.ID() || !lt.self.Operational() {
		return
	}
	size := msg.WireSize()
	lt.meter.ChargeTx(from, size)
	if lt.tracing {
		lt.sink.Emit(trace.Event{
			At: lt.clock.Now(), Type: trace.TypeSend, Node: uint32(from),
			Detail: msg.Kind().String(),
		})
	}
	lt.txBuf = wire.EncodeAppend(lt.txBuf[:0], msg)
	// Best-effort, like the radio: a failed broadcast is a lost datagram.
	_ = lt.bc.Broadcast(from, lt.txBuf)
}

// Inject decodes one received datagram and delivers it to the local host.
// Malformed payloads are counted and reported, never fatal: a UDP socket is
// an open port. The decoded message is valid only during the Deliver call.
func (lt *LinkTransport) Inject(p Packet) error {
	if lt.self == nil || !lt.self.Operational() {
		return nil
	}
	if p.From == wire.NoNode || p.From == lt.self.ID() {
		// NID 0 is unassigned and a datagram claiming to be from ourselves
		// is a reflection; both are hostile or misconfigured.
		lt.rxBad++
		return fmt.Errorf("transport: datagram with invalid sender %v", p.From)
	}
	decoded, err := wire.DecodeInto(lt.scratch, p.Payload)
	if err != nil {
		lt.rxBad++
		return fmt.Errorf("transport: undecodable datagram from %v: %w", p.From, err)
	}
	lt.meter.ChargeRx(lt.self.ID(), len(p.Payload))
	if lt.tracing {
		lt.sink.Emit(trace.Event{
			At: lt.clock.Now(), Type: trace.TypeDeliver, Node: uint32(lt.self.ID()),
			Detail: fmt.Sprintf("%s from %v", decoded.Kind(), p.From),
		})
	}
	lt.self.Deliver(decoded, p.From)
	return nil
}

// BadDatagrams returns how many inbound datagrams were rejected as
// malformed or mis-addressed.
func (lt *LinkTransport) BadDatagrams() int64 { return lt.rxBad }

// Energy implements Transport via the transport's meter. Only the local
// host is tracked; remote hosts report zero (the protocol stack only ever
// asks about its own budget).
func (lt *LinkTransport) Energy(id wire.NodeID) float64 { return lt.meter.Energy(id) }

// Neighbors implements Transport: the configured peer roster minus exclude.
// A link has no geometry, so the roster plays the role of the radio
// neighborhood.
func (lt *LinkTransport) Neighbors(at geo.Point, exclude wire.NodeID) []wire.NodeID {
	var out []wire.NodeID
	for _, id := range lt.peers {
		if id != exclude {
			out = append(out, id)
		}
	}
	return out
}

// UpdatePos implements Transport; a link has no geometry.
func (lt *LinkTransport) UpdatePos(id wire.NodeID, old geo.Point) {}

var _ Transport = (*LinkTransport)(nil)
