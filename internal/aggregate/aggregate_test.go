package aggregate

import (
	"math"
	"testing"

	"clusterfds/internal/cluster"
	"clusterfds/internal/fds"
	"clusterfds/internal/geo"
	"clusterfds/internal/intercluster"
	"clusterfds/internal/node"
	"clusterfds/internal/radio"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

func TestStat(t *testing.T) {
	var s Stat
	if s.Mean() != 0 {
		t.Error("empty mean should be 0")
	}
	for _, v := range []float64{3, -1, 7} {
		s.Add(v)
	}
	if s.Count != 3 || s.Sum != 9 || s.Min != -1 || s.Max != 7 {
		t.Errorf("stat = %+v", s)
	}
	if s.Mean() != 3 {
		t.Errorf("mean = %v", s.Mean())
	}

	var o Stat
	o.Add(100)
	s.Combine(o)
	if s.Count != 4 || s.Max != 100 {
		t.Errorf("combined = %+v", s)
	}
	var empty Stat
	s.Combine(empty)
	if s.Count != 4 {
		t.Error("combining empty changed the stat")
	}
	empty.Combine(s)
	if empty.Count != 4 {
		t.Error("combine into empty failed")
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

// world bundles a full stack plus aggregation.
type world struct {
	kernel *sim.Kernel
	medium *radio.Medium
	hosts  []*node.Host
	aggs   []*Protocol
	timing cluster.Timing
}

// buildWorld places hosts; each host's reading is a fixed function of its
// NID: reading(i) = float64(i), so expected aggregates are exact.
func buildWorld(t *testing.T, seed int64, lossProb float64, positions []geo.Point) *world {
	t.Helper()
	k := sim.New(seed)
	m := radio.New(k, radio.Defaults(lossProb))
	w := &world{kernel: k, medium: m, timing: cluster.DefaultTiming()}
	for i, pos := range positions {
		id := wire.NodeID(i + 1)
		h := node.New(k, m, id, pos)
		cl := cluster.New(cluster.DefaultConfig())
		f := fds.New(fds.DefaultConfig(w.timing), cl)
		fw := intercluster.New(intercluster.DefaultConfig(w.timing), cl, f)
		sampler := func(id wire.NodeID) Sampler {
			return func(e wire.Epoch) (float64, bool) { return float64(id), true }
		}(id)
		ag := New(DefaultConfig(w.timing), cl, f, sampler)
		h.Use(cl)
		h.Use(f)
		h.Use(fw)
		h.Use(ag)
		w.hosts = append(w.hosts, h)
		w.aggs = append(w.aggs, ag)
		h.Boot()
	}
	return w
}

// chain is the three-cluster topology from the intercluster tests.
func chain() []geo.Point {
	return []geo.Point{
		{X: 0, Y: 0}, {X: 150, Y: 0}, {X: 300, Y: 0},
		{X: -20, Y: 10}, {X: -20, Y: -10},
		{X: 75, Y: 0}, {X: 225, Y: 0},
		{X: 20, Y: 30}, {X: 20, Y: -30},
		{X: 180, Y: 30}, {X: 180, Y: -30},
		{X: 300, Y: 30}, {X: 300, Y: -30},
	}
}

func TestClusterPartialExact(t *testing.T) {
	// Single clique cluster: the partial must cover every member exactly.
	pts := []geo.Point{{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 0, Y: 30}, {X: -30, Y: 0}, {X: 0, Y: -30}}
	w := buildWorld(t, 1, 0, pts)
	w.kernel.RunUntil(w.timing.EpochStart(3))

	// Epoch 2 was a settled FDS epoch; readings are NIDs 1..5.
	s, ok := w.aggs[0].ClusterPartial(2)
	if !ok {
		t.Fatal("CH has no cluster partial")
	}
	if s.Count != 5 || s.Sum != 15 || s.Min != 1 || s.Max != 5 {
		t.Errorf("partial = %+v, want n=5 sum=15 min=1 max=5", s)
	}
	if math.Abs(s.Mean()-3) > 1e-12 {
		t.Errorf("mean = %v, want 3", s.Mean())
	}
}

func TestGlobalAggregateAcrossClusters(t *testing.T) {
	w := buildWorld(t, 2, 0, chain())
	w.kernel.RunUntil(w.timing.EpochStart(4))

	// Every clusterhead must assemble the full global picture for a
	// settled epoch: 13 readings, sum 1+2+...+13 = 91.
	for _, chIdx := range []int{0, 1, 2} {
		g, clusters := w.aggs[chIdx].Global(2)
		if clusters != 3 {
			t.Errorf("CH %d combined %d cluster partials, want 3", chIdx+1, clusters)
		}
		if g.Count != 13 || g.Sum != 91 || g.Min != 1 || g.Max != 13 {
			t.Errorf("CH %d global = %+v, want n=13 sum=91 min=1 max=13", chIdx+1, g)
		}
	}
	// Origins are the three clusterheads.
	origins := w.aggs[0].Origins(2)
	if len(origins) != 3 || origins[0] != 1 || origins[1] != 2 || origins[2] != 3 {
		t.Errorf("origins = %v", origins)
	}
}

func TestCrashedMemberLeavesAggregate(t *testing.T) {
	pts := []geo.Point{{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 0, Y: 30}, {X: -30, Y: 0}, {X: 0, Y: -30}}
	w := buildWorld(t, 3, 0, pts)
	w.kernel.At(w.timing.EpochStart(2)+w.timing.Interval/2, func() { w.hosts[4].Crash() })
	w.kernel.RunUntil(w.timing.EpochStart(5))

	s, ok := w.aggs[0].ClusterPartial(3)
	if !ok {
		t.Fatal("no partial for the post-crash epoch")
	}
	if s.Count != 4 || s.Sum != 10 || s.Max != 4 {
		t.Errorf("partial after crash = %+v, want n=4 sum=10 max=4", s)
	}
}

func TestAggregationZeroExtraIntraClusterMessages(t *testing.T) {
	// The readings ride the FDS digests: aggregation adds exactly ONE
	// transmission per cluster per epoch (the CH's partial) in a single
	// isolated cluster.
	pts := []geo.Point{{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 0, Y: 30}}
	w := buildWorld(t, 4, 0, pts)
	w.kernel.RunUntil(w.timing.EpochStart(5))
	sent := w.medium.Sent(wire.KindAggregate)
	// Epochs 1..4 had a formed cluster: at most one partial each (epoch 0
	// is formation; its digest round still yields a partial once marked).
	if sent < 3 || sent > 5 {
		t.Errorf("aggregate transmissions = %d, want one per settled epoch (3..5)", sent)
	}
}

func TestAggregationUnderLoss(t *testing.T) {
	// Aggregation relays are deliberately one-shot (a lost partial costs
	// one epoch of staleness), so under loss the right expectation is
	// "assembles fully in SOME recent epoch", not "every epoch".
	w := buildWorld(t, 5, 0.1, chain())
	w.kernel.RunUntil(w.timing.EpochStart(8))
	best := 0
	for e := wire.Epoch(3); e <= 6; e++ {
		if _, clusters := w.aggs[0].Global(e); clusters > best {
			best = clusters
		}
	}
	if best < 3 {
		t.Errorf("no epoch in 3..6 assembled all 3 clusters at p=0.1 (best %d)", best)
	}
}

func TestPartialsPruned(t *testing.T) {
	pts := []geo.Point{{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 0, Y: 30}}
	w := buildWorld(t, 6, 0, pts)
	w.kernel.RunUntil(w.timing.EpochStart(12))
	if _, ok := w.aggs[0].ClusterPartial(2); ok {
		t.Error("ancient partial never pruned")
	}
	if _, ok := w.aggs[0].ClusterPartial(10); !ok {
		t.Error("recent partial missing")
	}
}

func TestConfigValidation(t *testing.T) {
	cl := cluster.New(cluster.DefaultConfig())
	f := fds.New(fds.DefaultConfig(cluster.DefaultTiming()), cl)
	sampler := func(wire.Epoch) (float64, bool) { return 0, true }
	for name, fn := range map[string]func(){
		"nil cluster": func() { New(DefaultConfig(cluster.DefaultTiming()), nil, f, sampler) },
		"nil fds":     func() { New(DefaultConfig(cluster.DefaultTiming()), cl, nil, sampler) },
		"nil sampler": func() { New(DefaultConfig(cluster.DefaultTiming()), cl, f, nil) },
		"bad timing":  func() { New(Config{}, cl, f, sampler) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}
