// Package aggregate implements the in-network data aggregation service the
// paper's Section 6 sketches on top of the cluster architecture:
// "coordinated in-network computation for average, maximum, or minimum of
// sensor measurements", with "energy efficiency induced by the message
// sharing between failure detection and data aggregation".
//
// The sharing is literal: each member's sensor reading rides the digest it
// already sends in fds.R-2 (fds.SetReadingSource), so intra-cluster
// aggregation costs zero extra transmissions. At the end of the epoch the
// clusterhead folds the readings it received into a partial aggregate
// {count, sum, min, max} and broadcasts it once; gateway candidates forward
// partials across the backbone exactly as they forward failure reports
// (one-shot, loss-tolerated — aggregation is periodic, so a lost partial
// merely ages one epoch). Every clusterhead can then answer global
// min/max/mean queries from the partials it has collected.
//
// Failure awareness comes for free: a crashed member sends no digest, so
// its reading silently leaves the aggregate the same epoch the FDS detects
// it — the coupling the paper calls "further improvement of failure
// detection accuracy resulting from the sharing of the algorithms for
// reliable aggregation".
package aggregate

import (
	"fmt"
	"math"
	"sort"

	"clusterfds/internal/cluster"
	"clusterfds/internal/fds"
	"clusterfds/internal/node"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// Sampler produces this host's sensor reading for an epoch. Returning
// ok=false skips the epoch (sensor warming up, invalid measurement, …).
type Sampler func(epoch wire.Epoch) (value float64, ok bool)

// Stat is a combinable aggregate of readings.
type Stat struct {
	Count uint32
	Sum   float64
	Min   float64
	Max   float64
}

// Add folds a single reading into the stat.
func (s *Stat) Add(v float64) {
	if s.Count == 0 {
		s.Min, s.Max = v, v
	} else {
		s.Min = math.Min(s.Min, v)
		s.Max = math.Max(s.Max, v)
	}
	s.Count++
	s.Sum += v
}

// Combine merges another partial into the stat.
func (s *Stat) Combine(o Stat) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 {
		*s = o
		return
	}
	s.Count += o.Count
	s.Sum += o.Sum
	s.Min = math.Min(s.Min, o.Min)
	s.Max = math.Max(s.Max, o.Max)
}

// Mean returns the average reading (0 when empty).
func (s Stat) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// String renders the stat for logs.
func (s Stat) String() string {
	return fmt.Sprintf("n=%d mean=%.3f min=%.3f max=%.3f", s.Count, s.Mean(), s.Min, s.Max)
}

// Config parameterizes the aggregation service.
type Config struct {
	// Timing must match the co-resident cluster/FDS timing.
	Timing cluster.Timing
	// KeepEpochs bounds how many epochs of partials are retained for
	// queries (older entries are pruned).
	KeepEpochs int
}

// DefaultConfig returns the configuration used by the examples.
func DefaultConfig(t cluster.Timing) Config {
	return Config{Timing: t, KeepEpochs: 4}
}

// aggKey identifies one cluster's partial for one epoch.
type aggKey struct {
	origin wire.NodeID
	epoch  wire.Epoch
}

// Protocol is the per-host aggregation service. It must be attached to the
// host AFTER the cluster and FDS protocols.
type Protocol struct {
	cfg     Config
	host    *node.Host
	cluster *cluster.Protocol
	fds     *fds.Protocol
	sampler Sampler

	epoch wire.Epoch

	// CH state: readings gathered from this epoch's digests.
	gathered Stat
	selfRead bool

	// partials holds cluster partials seen (own and flooded), for the
	// retained epochs. forwarded marks (key, this host) transmissions so
	// each host relays a partial at most once; heardTx counts overheard
	// transmissions per key so redundant relays stand down.
	partials  map[aggKey]Stat
	forwarded map[aggKey]bool
	heardTx   map[aggKey]int
}

// New returns an aggregation service wired to the co-resident protocols.
// It registers the sampler as the FDS's digest reading source.
func New(cfg Config, cl *cluster.Protocol, f *fds.Protocol, sampler Sampler) *Protocol {
	if cl == nil || f == nil {
		panic("aggregate: nil cluster or fds protocol")
	}
	if sampler == nil {
		panic("aggregate: nil sampler")
	}
	if !cfg.Timing.Valid() {
		panic("aggregate: invalid timing")
	}
	if cfg.KeepEpochs < 1 {
		cfg.KeepEpochs = 1
	}
	p := &Protocol{
		cfg:       cfg,
		cluster:   cl,
		fds:       f,
		sampler:   sampler,
		partials:  make(map[aggKey]Stat),
		forwarded: make(map[aggKey]bool),
		heardTx:   make(map[aggKey]int),
	}
	f.SetReadingSource(func(e wire.Epoch) (float64, bool) { return sampler(e) })
	return p
}

// Start implements node.Protocol.
func (p *Protocol) Start(h *node.Host) {
	p.host = h
	e := p.cfg.Timing.EpochOf(h.Now())
	if h.Now() > p.cfg.Timing.EpochStart(e) {
		e++
	}
	p.scheduleEpoch(e)
}

func (p *Protocol) scheduleEpoch(e wire.Epoch) {
	at := p.cfg.Timing.EpochStart(e)
	p.host.After(at-p.host.Now(), func() { p.runEpoch(e) })
}

func (p *Protocol) runEpoch(e wire.Epoch) {
	p.epoch = e
	p.gathered = Stat{}
	p.selfRead = false
	p.prune(e)
	p.scheduleEpoch(e + 1)

	// The CH publishes its cluster partial right after the digest round —
	// in the same slot as the health update, one broadcast per cluster.
	t := p.cfg.Timing
	p.host.After(t.R2End()+t.Thop/8, func() { p.publishPartial(e) })
}

// prune drops partials older than the retention window.
func (p *Protocol) prune(now wire.Epoch) {
	for k := range p.partials {
		if uint64(now)-uint64(k.epoch) > uint64(p.cfg.KeepEpochs) {
			delete(p.partials, k)
			delete(p.forwarded, k)
			delete(p.heardTx, k)
		}
	}
}

// publishPartial folds the CH's own reading into the gathered stats and
// broadcasts the cluster partial.
func (p *Protocol) publishPartial(e wire.Epoch) {
	v := p.cluster.View()
	if !v.IsCH {
		return
	}
	if !p.selfRead {
		if val, ok := p.sampler(e); ok {
			p.gathered.Add(val)
			p.selfRead = true
		}
	}
	if p.gathered.Count == 0 {
		return
	}
	k := aggKey{origin: p.host.ID(), epoch: e}
	p.partials[k] = p.gathered
	p.forwarded[k] = true
	p.host.Send(&wire.Aggregate{
		OriginCH: p.host.ID(),
		Epoch:    e,
		Count:    p.gathered.Count,
		Sum:      p.gathered.Sum,
		Min:      p.gathered.Min,
		Max:      p.gathered.Max,
		Sender:   p.host.ID(),
	})
}

// Handle implements node.Protocol.
func (p *Protocol) Handle(h *node.Host, m wire.Message, from wire.NodeID) {
	switch msg := m.(type) {
	case *wire.Digest:
		p.onDigest(msg)
	case *wire.Aggregate:
		p.onAggregate(msg)
	}
}

// onDigest gathers member readings on the clusterhead (zero extra cost:
// the digests are the FDS's own round-2 traffic).
func (p *Protocol) onDigest(m *wire.Digest) {
	if m.Epoch != p.epoch || !m.HasReading {
		return
	}
	v := p.cluster.View()
	if !v.IsCH || m.CH != p.host.ID() {
		return
	}
	p.gathered.Add(m.Reading)
}

// onAggregate absorbs and relays cluster partials: clusterheads rebroadcast
// unseen partials once; gateway candidates forward a clusterhead's
// transmission toward the clusters they bridge, once, after a short jitter
// (no acknowledgments — a lost partial costs one epoch of staleness, which
// periodic aggregation tolerates).
func (p *Protocol) onAggregate(m *wire.Aggregate) {
	k := aggKey{origin: m.OriginCH, epoch: m.Epoch}
	if uint64(p.epoch) > uint64(m.Epoch)+uint64(p.cfg.KeepEpochs) {
		return // too old to matter
	}
	p.heardTx[k]++
	if _, seen := p.partials[k]; !seen {
		p.partials[k] = Stat{Count: m.Count, Sum: m.Sum, Min: m.Min, Max: m.Max}
	}
	if p.forwarded[k] {
		return
	}
	v := p.cluster.View()
	switch {
	case v.IsCH:
		p.forwarded[k] = true
		out := *m
		out.Sender = p.host.ID()
		p.host.Send(&out)
	case v.Marked && (v.IsGW() || len(p.cluster.BorderClusters()) > 0):
		// Forward only transmissions made by a clusterhead we can hear;
		// everything else is another relay's echo.
		if m.Sender != v.CH && !p.hearsCH(m.Sender) {
			return
		}
		p.forwarded[k] = true
		out := *m
		out.Sender = p.host.ID()
		// NID-keyed jitter spreads concurrent relays; a relay that has
		// since overheard enough other transmissions of the same partial
		// stands down (aggregation tolerates the residual loss risk).
		heardAtDecision := p.heardTx[k]
		jitter := sim.Time(uint64(p.host.ID()) * uint64(p.cfg.Timing.Thop) / 3 % uint64(2*p.cfg.Timing.Thop))
		p.host.After(jitter, func() {
			if p.heardTx[k]-heardAtDecision >= 2 {
				return
			}
			p.host.Send(&out)
		})
	}
}

// hearsCH reports whether id is a clusterhead within earshot.
func (p *Protocol) hearsCH(id wire.NodeID) bool {
	for _, ch := range p.cluster.View().OtherCHs {
		if ch == id {
			return true
		}
	}
	return false
}

// --- queries -------------------------------------------------------------------

// ClusterPartial returns this host's cluster partial for the given epoch,
// if known.
func (p *Protocol) ClusterPartial(e wire.Epoch) (Stat, bool) {
	v := p.cluster.View()
	s, ok := p.partials[aggKey{origin: v.CH, epoch: e}]
	return s, ok
}

// Global combines every cluster partial known for the given epoch into the
// network-wide aggregate, and reports how many clusters contributed. Partials
// are folded in sorted-origin order: Sum is a float accumulation, so map
// iteration order would make the low bits of the global vary run to run.
func (p *Protocol) Global(e wire.Epoch) (Stat, int) {
	var total Stat
	origins := p.Origins(e)
	for _, o := range origins {
		total.Combine(p.partials[aggKey{origin: o, epoch: e}])
	}
	return total, len(origins)
}

// Origins returns the clusterheads whose partials are known for the epoch,
// sorted — useful to audit coverage.
func (p *Protocol) Origins(e wire.Epoch) []wire.NodeID {
	var out []wire.NodeID
	for k := range p.partials {
		if k.epoch == e {
			out = append(out, k.origin)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
