package cluster

import (
	"math"
	"time"

	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// Timing fixes the shared schedule of the cluster-formation algorithm and
// the failure detection service. Per the paper, both services execute at the
// epoch of every heartbeat interval φ and every round lasts Thop, the bound
// on one-hop message delay (Sections 2.2 and 4.2). Feature F5 merges the
// first round of both services: the heartbeat diffusion at the start of each
// epoch serves simultaneously as FDS round fds.R-1 and as the formation
// algorithm's neighborhood probe.
//
// Within an epoch, offsets are:
//
//	0·Thop  fds.R-1  heartbeat exchange + formation probe
//	1·Thop  fds.R-2  digest exchange; CH election among unmarked nodes
//	2·Thop  fds.R-3  health-status update; cluster-organization announce
//	3·Thop  end of R-3: DCH takeover decision, gateway registration,
//	        inter-cluster report origination, peer-forwarding requests
//	4·Thop+ peer forwarding and inter-cluster retransmissions drain
type Timing struct {
	// Thop is the per-hop delivery bound, used as the round duration and
	// as the unit of all protocol timeouts.
	Thop sim.Time
	// Interval is φ, the heartbeat interval separating FDS executions.
	// It must be much larger than a handful of Thops so an execution is
	// "a small fraction of φ" as the paper assumes.
	Interval sim.Time
}

// DefaultTiming returns the timing used across the experiments:
// Thop = 20 ms, φ = 10 s.
func DefaultTiming() Timing {
	return Timing{Thop: sim.Time(20 * time.Millisecond), Interval: sim.Time(10 * time.Second)}
}

// Valid reports whether the timing is self-consistent.
func (t Timing) Valid() bool {
	return t.Thop > 0 && t.Interval >= 8*t.Thop
}

// EpochStart returns the virtual time at which epoch e begins. The product
// saturates at the maximum representable instant instead of overflowing:
// uint64(Interval)*uint64(e) wraps for astronomically large epochs, and the
// wrapped value — reinterpreted as a signed sim.Time — could go negative,
// turning "schedule the far future" into "schedule immediately" (a scheduler
// spin). Saturated instants stay monotone and unreachable, which is what
// every caller wants from an epoch that can never arrive.
func (t Timing) EpochStart(e wire.Epoch) sim.Time {
	if e != 0 && uint64(e) > uint64(math.MaxInt64)/uint64(t.Interval) {
		return sim.Time(math.MaxInt64)
	}
	return sim.Time(uint64(t.Interval) * uint64(e))
}

// EpochOf returns the epoch containing the given instant.
func (t Timing) EpochOf(now sim.Time) wire.Epoch {
	if now < 0 {
		return 0
	}
	return wire.Epoch(uint64(now) / uint64(t.Interval))
}

// Round-offset helpers, all relative to the epoch start.

// R1End is the end of the heartbeat-exchange round.
func (t Timing) R1End() sim.Time { return t.Thop }

// R2End is the end of the digest-exchange round.
func (t Timing) R2End() sim.Time { return 2 * t.Thop }

// R3End is the end of the health-update round; the paper's "timeout for
// report receiving" at which peer forwarding and takeover decisions trigger.
func (t Timing) R3End() sim.Time { return 3 * t.Thop }

// JitterSpan is the exclusive upper bound on the per-sender transmission
// jitter drawn at the start of each round: a uniform draw in [0, Thop/4]
// desynchronizes broadcasts so a round's messages do not all collide at one
// instant, while Thop/4 keeps even the latest send + MaxDelay inside the
// round. Every engine (the per-host runtime and the sharded kernel) must
// draw from this same span or their traces diverge.
func (t Timing) JitterSpan() int64 { return int64(t.Thop)/4 + 1 }
