package cluster

import (
	"testing"
	"time"

	"clusterfds/internal/geo"
	"clusterfds/internal/node"
	"clusterfds/internal/radio"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// world bundles a simulated field running only the formation protocol.
type world struct {
	kernel *sim.Kernel
	medium *radio.Medium
	hosts  []*node.Host
	protos []*Protocol
}

// buildWorld places hosts at the given positions with the given loss
// probability and boots them.
func buildWorld(t *testing.T, seed int64, lossProb float64, positions []geo.Point) *world {
	t.Helper()
	k := sim.New(seed)
	params := radio.Defaults(lossProb)
	m := radio.New(k, params)
	w := &world{kernel: k, medium: m}
	for i, pos := range positions {
		h := node.New(k, m, wire.NodeID(i+1), pos)
		p := New(DefaultConfig())
		h.Use(p)
		w.hosts = append(w.hosts, h)
		w.protos = append(w.protos, p)
	}
	for _, h := range w.hosts {
		h.Boot()
	}
	return w
}

// runEpochs advances the world through n full epochs.
func (w *world) runEpochs(n int) {
	timing := DefaultTiming()
	w.kernel.RunUntil(sim.Time(uint64(timing.Interval) * uint64(n)))
}

func TestSingleClusterFormation(t *testing.T) {
	// Five nodes, all mutually in range: one cluster, CH = lowest NID.
	w := buildWorld(t, 1, 0, []geo.Point{
		{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 0, Y: 30}, {X: -30, Y: 0}, {X: 0, Y: -30},
	})
	w.runEpochs(2)

	for i, p := range w.protos {
		v := p.View()
		if !v.Marked {
			t.Fatalf("node %d not marked after 2 epochs", i+1)
		}
		if v.CH != 1 {
			t.Errorf("node %d affiliated with %v, want n1 (lowest NID)", i+1, v.CH)
		}
		if (i == 0) != v.IsCH {
			t.Errorf("node %d IsCH = %v", i+1, v.IsCH)
		}
		if len(v.Members) != 5 {
			t.Errorf("node %d sees %d members, want 5", i+1, len(v.Members))
		}
	}
	// DCHs designated (F2), at most MaxDCH, not including the CH.
	v := w.protos[0].View()
	if len(v.DCHs) == 0 || len(v.DCHs) > DefaultConfig().MaxDCH {
		t.Errorf("DCHs = %v", v.DCHs)
	}
	for _, d := range v.DCHs {
		if d == 1 {
			t.Error("CH listed as its own deputy")
		}
	}
}

func TestTwoClustersWithGateway(t *testing.T) {
	// Two clusters 150 m apart; node 5 in the middle hears both CHs.
	w := buildWorld(t, 2, 0, []geo.Point{
		{X: 0, Y: 0},    // n1: CH of left cluster
		{X: 20, Y: 10},  // n2: left member
		{X: 150, Y: 0},  // n3: CH of right cluster
		{X: 130, Y: 10}, // n4: right member
		{X: 75, Y: 0},   // n5: hears both n1 and n3 -> gateway
	})
	w.runEpochs(3)

	v1, v3, v5 := w.protos[0].View(), w.protos[2].View(), w.protos[4].View()
	if !v1.IsCH || !v3.IsCH {
		t.Fatalf("expected n1 and n3 as CHs; v1=%+v v3=%+v", v1, v3)
	}
	if !v5.Marked {
		t.Fatal("gateway node not admitted")
	}
	if !v5.IsGW() {
		t.Fatalf("n5 should be a gateway candidate; OtherCHs=%v", v5.OtherCHs)
	}
	// F3: exactly one affiliation.
	if v5.CH != 1 && v5.CH != 3 {
		t.Errorf("gateway affiliated with %v", v5.CH)
	}
	// The gateway must not remain a member of both clusters.
	inLeft, inRight := v1.IsMember(5), v3.IsMember(5)
	if inLeft && inRight {
		t.Error("gateway is a member of both clusters (violates F3)")
	}
	if !inLeft && !inRight {
		t.Error("gateway is a member of neither cluster")
	}
	// Both CHs should know each other as neighbors.
	if n := w.protos[0].NeighborCHs(); len(n) != 1 || n[0] != 3 {
		t.Errorf("n1 neighbor CHs = %v, want [n3]", n)
	}
	if n := w.protos[2].NeighborCHs(); len(n) != 1 || n[0] != 1 {
		t.Errorf("n3 neighbor CHs = %v, want [n1]", n)
	}
	// The gateway should rank itself for the pair.
	rank, n, ok := w.protos[4].GWRank(1, 3)
	if !ok || rank != 1 || n != 1 {
		t.Errorf("GWRank = (%d,%d,%v), want (1,1,true)", rank, n, ok)
	}
}

func TestMultipleGatewaysRanked(t *testing.T) {
	// Three nodes bridge the two clusters; candidate ranks must be unique
	// and ordered by NID.
	w := buildWorld(t, 3, 0, []geo.Point{
		{X: 0, Y: 0},    // n1: left CH
		{X: 150, Y: 0},  // n2: right CH... NID 2 < others nearby?
		{X: 75, Y: 0},   // n3: bridge
		{X: 75, Y: 20},  // n4: bridge
		{X: 75, Y: -20}, // n5: bridge
		{X: 20, Y: 0},   // n6: left member
		{X: 130, Y: 0},  // n7: right member
	})
	w.runEpochs(3)

	ranks := map[int]int{}
	for _, i := range []int{2, 3, 4} { // protos for n3..n5
		rank, total, ok := w.protos[i].GWRank(1, 2)
		if !ok {
			t.Fatalf("n%d not a candidate", i+1)
		}
		if total != 3 {
			t.Errorf("n%d sees %d candidates, want 3", i+1, total)
		}
		ranks[rank]++
	}
	for r := 1; r <= 3; r++ {
		if ranks[r] != 1 {
			t.Errorf("rank %d held by %d candidates, want exactly 1 (ranks=%v)", r, ranks[r], ranks)
		}
	}
	// Candidate list visible to the CH, primary first.
	cands := w.protos[0].GatewayCandidates(1, 2)
	if len(cands) != 3 || cands[0] != 3 {
		t.Errorf("candidates = %v, want [n3 n4 n5]", cands)
	}
}

func TestIsolatedNodeStaysUnmarked(t *testing.T) {
	w := buildWorld(t, 4, 0, []geo.Point{
		{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 1000, Y: 1000}, // n3 isolated
	})
	w.runEpochs(3)
	if !w.protos[0].View().Marked || !w.protos[1].View().Marked {
		t.Error("connected nodes should be admitted")
	}
	v3 := w.protos[2].View()
	// An isolated node elects itself CH of a singleton cluster (it hears
	// no one, so it is trivially the lowest unmarked node).
	if !v3.IsCH {
		t.Errorf("isolated node: view=%+v; want self-clusterhead of singleton", v3)
	}
	if len(v3.Members) != 1 {
		t.Errorf("isolated cluster has %d members, want 1", len(v3.Members))
	}
}

func TestLateArrivalSubscribes(t *testing.T) {
	// F4/F5: a host booted after formation is admitted via its unmarked
	// heartbeat being treated as a membership subscription.
	k := sim.New(5)
	m := radio.New(k, radio.Defaults(0))
	positions := []geo.Point{{X: 0, Y: 0}, {X: 30, Y: 0}}
	var protos []*Protocol
	var hosts []*node.Host
	for i, pos := range positions {
		h := node.New(k, m, wire.NodeID(i+1), pos)
		p := New(DefaultConfig())
		h.Use(p)
		hosts = append(hosts, h)
		protos = append(protos, p)
	}
	late := node.New(k, m, 99, geo.Point{X: 0, Y: 40})
	lateProto := New(DefaultConfig())
	late.Use(lateProto)

	for _, h := range hosts {
		h.Boot()
	}
	timing := DefaultTiming()
	// Boot the late host during epoch 2.
	k.At(timing.EpochStart(2), func() { late.Boot() })
	k.RunUntil(timing.EpochStart(5))

	v := lateProto.View()
	if !v.Marked {
		t.Fatal("late arrival never admitted")
	}
	if v.CH != 1 {
		t.Errorf("late arrival affiliated with %v, want n1", v.CH)
	}
	if !protos[0].View().IsMember(99) {
		t.Error("CH does not list the late arrival")
	}
}

func TestFormationUnderMessageLoss(t *testing.T) {
	// With p = 0.3 the open-ended iterations (F4) must still admit every
	// node within a few epochs.
	positions := []geo.Point{
		{X: 0, Y: 0}, {X: 40, Y: 0}, {X: 0, Y: 40}, {X: -40, Y: 0},
		{X: 0, Y: -40}, {X: 30, Y: 30}, {X: -30, Y: 30}, {X: 30, Y: -30},
	}
	w := buildWorld(t, 6, 0.3, positions)
	w.runEpochs(8)
	for i, p := range w.protos {
		if !p.View().Marked {
			t.Errorf("node %d still unmarked after 8 epochs at p=0.3", i+1)
		}
	}
}

func TestEveryMemberWithinRangeOfCH(t *testing.T) {
	// Random 600x600 field, 60 nodes: after formation, every member must
	// be a one-hop neighbor of its CH (the unit-disk cluster property).
	k := sim.New(7)
	m := radio.New(k, radio.Defaults(0))
	pts := geo.PlaceUniformRect(k.Rand(), geo.NewRect(600, 600), 60)
	var protos []*Protocol
	var hosts []*node.Host
	for i, pos := range pts {
		h := node.New(k, m, wire.NodeID(i+1), pos)
		p := New(DefaultConfig())
		h.Use(p)
		hosts = append(hosts, h)
		protos = append(protos, p)
	}
	for _, h := range hosts {
		h.Boot()
	}
	timing := DefaultTiming()
	k.RunUntil(timing.EpochStart(6))

	marked := 0
	for i, p := range protos {
		v := p.View()
		if !v.Marked {
			continue
		}
		marked++
		if v.IsCH {
			continue
		}
		chPos := pts[int(v.CH)-1]
		if !hosts[i].Pos().WithinRange(chPos, 100) {
			t.Errorf("node %d at %v affiliated to CH %v at %v: out of range",
				i+1, hosts[i].Pos(), v.CH, chPos)
		}
	}
	if marked < len(protos) {
		t.Errorf("only %d/%d nodes admitted", marked, len(protos))
	}
}

func TestCHMembershipConsistent(t *testing.T) {
	// For every marked non-CH node, the node's CH must list it as member.
	k := sim.New(8)
	m := radio.New(k, radio.Defaults(0))
	pts := geo.PlaceUniformRect(k.Rand(), geo.NewRect(400, 400), 40)
	var protos []*Protocol
	for i, pos := range pts {
		h := node.New(k, m, wire.NodeID(i+1), pos)
		p := New(DefaultConfig())
		h.Use(p)
		protos = append(protos, p)
		h.Boot()
	}
	timing := DefaultTiming()
	k.RunUntil(timing.EpochStart(6))

	byID := map[wire.NodeID]*Protocol{}
	for i, p := range protos {
		byID[wire.NodeID(i+1)] = p
	}
	for i, p := range protos {
		v := p.View()
		if !v.Marked || v.IsCH {
			continue
		}
		chProto := byID[v.CH]
		if chProto == nil {
			t.Fatalf("node %d has unknown CH %v", i+1, v.CH)
		}
		if !chProto.View().IsMember(wire.NodeID(i + 1)) {
			t.Errorf("CH %v does not list its member n%d", v.CH, i+1)
		}
	}
}

func TestMutators(t *testing.T) {
	p := New(DefaultConfig())
	// Install a static view: CH n1, members n1..n5, DCHs [n2 n3], self n2.
	p.InstallStaticView(1, []wire.NodeID{1, 2, 3, 4, 5}, []wire.NodeID{2, 3}, 2)
	v := p.View()
	if !v.Marked || v.CH != 1 || v.IsCH {
		t.Fatalf("static view wrong: %+v", v)
	}
	if len(v.Members) != 5 {
		t.Fatalf("members = %v", v.Members)
	}

	p.NoteFailed([]wire.NodeID{4})
	if p.View().IsMember(4) {
		t.Error("NoteFailed did not remove the member")
	}

	p.NoteNewCH(1, 2) // we are n2... but InstallStaticView set self via isCH flag only
	v = p.View()
	if v.CH != 2 {
		t.Errorf("NoteNewCH: CH = %v, want 2", v.CH)
	}
	if v.IsMember(1) {
		t.Error("old CH still listed after takeover")
	}

	p.Demote()
	v = p.View()
	if v.Marked || v.CH != wire.NoNode {
		t.Errorf("Demote left state: %+v", v)
	}
}

func TestNoteNewCHIgnoredForForeignCluster(t *testing.T) {
	p := New(DefaultConfig())
	p.InstallStaticView(1, []wire.NodeID{1, 2}, nil, 2)
	p.NoteNewCH(9, 10) // unrelated cluster
	if got := p.View().CH; got != 1 {
		t.Errorf("CH = %v, want 1", got)
	}
}

func TestTimingHelpers(t *testing.T) {
	tm := DefaultTiming()
	if !tm.Valid() {
		t.Fatal("default timing invalid")
	}
	if tm.EpochStart(0) != 0 {
		t.Error("epoch 0 should start at 0")
	}
	if tm.EpochStart(3) != 3*tm.Interval {
		t.Error("EpochStart(3) wrong")
	}
	if tm.EpochOf(tm.Interval+1) != 1 {
		t.Error("EpochOf wrong")
	}
	if tm.EpochOf(-5) != 0 {
		t.Error("EpochOf negative should clamp to 0")
	}
	if tm.R1End() != tm.Thop || tm.R2End() != 2*tm.Thop || tm.R3End() != 3*tm.Thop {
		t.Error("round offsets wrong")
	}
	bad := Timing{Thop: sim.Time(time.Second), Interval: sim.Time(time.Second)}
	if bad.Valid() {
		t.Error("interval < 8*Thop should be invalid")
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid timing should panic")
		}
	}()
	New(Config{Timing: Timing{}})
}

func TestDeterministicFormation(t *testing.T) {
	run := func() []wire.NodeID {
		k := sim.New(99)
		m := radio.New(k, radio.Defaults(0.2))
		pts := geo.PlaceUniformRect(k.Rand(), geo.NewRect(300, 300), 30)
		var protos []*Protocol
		for i, pos := range pts {
			h := node.New(k, m, wire.NodeID(i+1), pos)
			p := New(DefaultConfig())
			h.Use(p)
			protos = append(protos, p)
			h.Boot()
		}
		k.RunUntil(DefaultTiming().EpochStart(4))
		out := make([]wire.NodeID, len(protos))
		for i, p := range protos {
			out[i] = p.View().CH
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("formation not deterministic at node %d: %v vs %v", i+1, a[i], b[i])
		}
	}
}
