package cluster

import (
	"math"
	"testing"
	"time"

	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

func TestTimingRoundOffsets(t *testing.T) {
	tm := DefaultTiming()
	if !tm.Valid() {
		t.Fatal("default timing invalid")
	}
	if tm.R1End() != tm.Thop || tm.R2End() != 2*tm.Thop || tm.R3End() != 3*tm.Thop {
		t.Errorf("round offsets wrong: %v %v %v", tm.R1End(), tm.R2End(), tm.R3End())
	}
}

func TestEpochRoundTrip(t *testing.T) {
	tm := DefaultTiming()
	for _, e := range []wire.Epoch{0, 1, 2, 17, 1000, 1 << 29} {
		if got := tm.EpochOf(tm.EpochStart(e)); got != e {
			t.Errorf("EpochOf(EpochStart(%d)) = %d", e, got)
		}
		// Any instant strictly inside the epoch maps back to it too.
		if got := tm.EpochOf(tm.EpochStart(e) + tm.Interval - 1); got != e {
			t.Errorf("EpochOf(end of %d) = %d", e, got)
		}
	}
	if tm.EpochOf(-5) != 0 {
		t.Error("negative instants must clamp to epoch 0")
	}
}

// TestEpochStartOverflowSaturates is the regression test for the unguarded
// uint64(Interval)*uint64(e) product: with Interval = 10s (1e10 ns), epochs
// beyond ~9.2e8 overflowed int64 and came back NEGATIVE, so a protocol
// scheduling "the next epoch" at a saturated epoch number asked the kernel
// for an instant in the past — an immediate-fire busy loop. The guarded
// product must stay non-negative, monotone, and pinned at the ceiling.
func TestEpochStartOverflowSaturates(t *testing.T) {
	tm := DefaultTiming()
	// Just below the overflow threshold: exact arithmetic.
	safe := wire.Epoch(uint64(math.MaxInt64) / uint64(tm.Interval))
	if got := tm.EpochStart(safe); got < 0 || got != sim.Time(uint64(tm.Interval)*uint64(safe)) {
		t.Errorf("EpochStart(%d) = %v, want exact non-negative product", safe, got)
	}
	// At and beyond the threshold: saturate, never wrap.
	for _, e := range []wire.Epoch{safe + 1, 3_000_000_000, math.MaxUint64} {
		got := tm.EpochStart(e)
		if got < 0 {
			t.Fatalf("EpochStart(%d) = %v, went negative (pre-fix overflow)", e, got)
		}
		if got != sim.Time(math.MaxInt64) {
			t.Errorf("EpochStart(%d) = %v, want saturation at MaxInt64", e, got)
		}
	}
	// Monotone across the boundary.
	if tm.EpochStart(safe) > tm.EpochStart(safe+1) {
		t.Error("EpochStart not monotone across the saturation boundary")
	}
}

func TestEpochStartSmallIntervalNoFalseSaturation(t *testing.T) {
	tm := Timing{Thop: sim.Time(time.Millisecond), Interval: sim.Time(8 * time.Millisecond)}
	if !tm.Valid() {
		t.Fatal("timing should be valid")
	}
	if got := tm.EpochStart(1 << 40); got != sim.Time(uint64(tm.Interval))*(1<<40) {
		t.Errorf("EpochStart(2^40) = %v, spuriously saturated", got)
	}
}
