package cluster

import (
	"math"
	"testing"
	"time"

	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

func TestTimingRoundOffsets(t *testing.T) {
	tm := DefaultTiming()
	if !tm.Valid() {
		t.Fatal("default timing invalid")
	}
	if tm.R1End() != tm.Thop || tm.R2End() != 2*tm.Thop || tm.R3End() != 3*tm.Thop {
		t.Errorf("round offsets wrong: %v %v %v", tm.R1End(), tm.R2End(), tm.R3End())
	}
}

func TestEpochRoundTrip(t *testing.T) {
	tm := DefaultTiming()
	for _, e := range []wire.Epoch{0, 1, 2, 17, 1000, 1 << 29} {
		if got := tm.EpochOf(tm.EpochStart(e)); got != e {
			t.Errorf("EpochOf(EpochStart(%d)) = %d", e, got)
		}
		// Any instant strictly inside the epoch maps back to it too.
		if got := tm.EpochOf(tm.EpochStart(e) + tm.Interval - 1); got != e {
			t.Errorf("EpochOf(end of %d) = %d", e, got)
		}
	}
	if tm.EpochOf(-5) != 0 {
		t.Error("negative instants must clamp to epoch 0")
	}
}

// TestEpochStartOverflowSaturates is the regression test for the unguarded
// uint64(Interval)*uint64(e) product: with Interval = 10s (1e10 ns), epochs
// beyond ~9.2e8 overflowed int64 and came back NEGATIVE, so a protocol
// scheduling "the next epoch" at a saturated epoch number asked the kernel
// for an instant in the past — an immediate-fire busy loop. The guarded
// product must stay non-negative, monotone, and pinned at the ceiling.
func TestEpochStartOverflowSaturates(t *testing.T) {
	tm := DefaultTiming()
	// Just below the overflow threshold: exact arithmetic.
	safe := wire.Epoch(uint64(math.MaxInt64) / uint64(tm.Interval))
	if got := tm.EpochStart(safe); got < 0 || got != sim.Time(uint64(tm.Interval)*uint64(safe)) {
		t.Errorf("EpochStart(%d) = %v, want exact non-negative product", safe, got)
	}
	// At and beyond the threshold: saturate, never wrap.
	for _, e := range []wire.Epoch{safe + 1, 3_000_000_000, math.MaxUint64} {
		got := tm.EpochStart(e)
		if got < 0 {
			t.Fatalf("EpochStart(%d) = %v, went negative (pre-fix overflow)", e, got)
		}
		if got != sim.Time(math.MaxInt64) {
			t.Errorf("EpochStart(%d) = %v, want saturation at MaxInt64", e, got)
		}
	}
	// Monotone across the boundary.
	if tm.EpochStart(safe) > tm.EpochStart(safe+1) {
		t.Error("EpochStart not monotone across the saturation boundary")
	}
}

func TestEpochStartSmallIntervalNoFalseSaturation(t *testing.T) {
	tm := Timing{Thop: sim.Time(time.Millisecond), Interval: sim.Time(8 * time.Millisecond)}
	if !tm.Valid() {
		t.Fatal("timing should be valid")
	}
	if got := tm.EpochStart(1 << 40); got != sim.Time(uint64(tm.Interval))*(1<<40) {
		t.Errorf("EpochStart(2^40) = %v, spuriously saturated", got)
	}
}

// TestEpochStartSaturationTable sweeps the saturation boundary across
// several interval scales: for each timing, the largest epoch whose product
// still fits in int64 must compute exactly, and every epoch past it must pin
// to the ceiling — with the sequence monotone through the boundary.
func TestEpochStartSaturationTable(t *testing.T) {
	cases := []struct {
		name string
		tm   Timing
	}{
		{"default-10s", DefaultTiming()},
		{"tight-8ms", Timing{Thop: sim.Time(time.Millisecond), Interval: sim.Time(8 * time.Millisecond)}},
		{"coarse-1m", Timing{Thop: sim.Time(time.Second), Interval: sim.Time(time.Minute)}},
		{"one-ns", Timing{Thop: 1, Interval: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			threshold := wire.Epoch(uint64(math.MaxInt64) / uint64(tc.tm.Interval))
			subCases := []struct {
				name string
				e    wire.Epoch
				want sim.Time
			}{
				{"zero", 0, 0},
				{"one", 1, tc.tm.Interval},
				{"last-exact", threshold, sim.Time(uint64(tc.tm.Interval) * uint64(threshold))},
				{"first-saturated", threshold + 1, sim.Time(math.MaxInt64)},
				{"deep-saturated", threshold * 2, sim.Time(math.MaxInt64)},
				{"max-epoch", math.MaxUint64, sim.Time(math.MaxInt64)},
			}
			prev := sim.Time(-1)
			for _, sc := range subCases {
				got := tc.tm.EpochStart(sc.e)
				if got != sc.want {
					t.Errorf("%s: EpochStart(%d) = %v, want %v", sc.name, sc.e, got, sc.want)
				}
				if got < 0 {
					t.Errorf("%s: EpochStart(%d) = %v went negative", sc.name, sc.e, got)
				}
				if got < prev {
					t.Errorf("%s: EpochStart not monotone (%v after %v)", sc.name, got, prev)
				}
				prev = got
			}
		})
	}
}
