// Package cluster implements the distributed cluster-formation algorithm of
// Section 3, a lowest-ID variant of the Baker/Ephremides and Gerla/Tsai
// algorithms with the paper's features F1–F5:
//
//	F1: clusters partially overlap, so gateways connect directly to two or
//	    more clusterheads and multiple gateway candidates usually exist;
//	F2: high density is exploited to designate deputy clusterheads (DCHs)
//	    and backup gateways (BGWs);
//	F3: every gateway is affiliated with exactly one cluster;
//	F4: the algorithm has no termination rule — iterations continue every
//	    epoch so newly arriving (or previously missed) hosts are admitted;
//	F5: the first round of each iteration is the epoch's heartbeat
//	    diffusion, shared with the failure detection service.
//
// A cluster is a unit disk centered on its clusterhead: every member is a
// one-hop neighbor of the CH, so any two members are at most two hops apart.
//
// The protocol communicates exclusively through broadcast messages and the
// promiscuous receiving mode; there is no out-of-band state sharing between
// hosts. Within a host, the failure detection service (package fds) calls
// the exported mutators (NoteFailed, TakeOver, NoteNewCH) because a host
// never hears its own transmissions.
package cluster

import (
	"cmp"
	"slices"

	"clusterfds/internal/dense"
	"clusterfds/internal/node"
	"clusterfds/internal/sim"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

// Config parameterizes the formation algorithm.
type Config struct {
	Timing Timing
	// MaxDCH is how many deputy clusterheads a CH designates (feature F2).
	MaxDCH int
	// DeclareBackoffFrac bounds the RCC-style random backoff before a
	// clusterhead declaration, as a fraction of Thop. Random competition
	// resolves concurrent conflicting CH declarations (paper footnote 1).
	DeclareBackoffFrac float64
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{Timing: DefaultTiming(), MaxDCH: 2, DeclareBackoffFrac: 0.5}
}

// View is an immutable snapshot of a host's cluster state.
type View struct {
	// Epoch is the epoch in which the snapshot was taken.
	Epoch wire.Epoch
	// Marked reports whether the host has been admitted to a cluster.
	Marked bool
	// CH is the host's clusterhead (== the host itself for a CH).
	CH wire.NodeID
	// IsCH reports whether the host is currently a clusterhead.
	IsCH bool
	// Members is the sorted cluster membership, including the CH. For the
	// CH it is authoritative; for members it reflects the latest
	// cluster-organization announcement.
	Members []wire.NodeID
	// DCHs lists the deputy clusterheads, highest-ranked first.
	DCHs []wire.NodeID
	// OtherCHs lists foreign clusterheads this host can hear, making it a
	// gateway candidate (sorted). Empty for non-gateways.
	OtherCHs []wire.NodeID
}

// IsMember reports whether id is in the snapshot's membership.
func (v View) IsMember(id wire.NodeID) bool {
	for _, m := range v.Members {
		if m == id {
			return true
		}
	}
	return false
}

// IsGW reports whether the host is a gateway candidate to at least one
// neighboring cluster.
func (v View) IsGW() bool { return len(v.OtherCHs) > 0 }

// pairKey identifies an unordered pair of neighboring clusterheads.
type pairKey struct{ lo, hi wire.NodeID }

func pairOf(a, b wire.NodeID) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{lo: a, hi: b}
}

// Protocol is the per-host cluster-formation state machine. Create one with
// New and attach it to a host before Boot.
type Protocol struct {
	cfg  Config
	host *node.Host

	epoch wire.Epoch

	// Affiliation state.
	marked bool
	isCH   bool
	myCH   wire.NodeID

	// Cluster composition (authoritative on the CH, advisory on members).
	members map[wire.NodeID]bool
	dchs    []wire.NodeID
	gwFlag  map[wire.NodeID]bool // CH: members known to be gateways

	// Foreign clusterheads this host can hear (gateway candidacy), and the
	// epoch in which each was last heard so stale entries age out.
	otherCHs map[wire.NodeID]wire.Epoch

	// borderPeers tracks, per foreign clusterhead, the members of that
	// cluster within earshot (learned from overheard digests). When no
	// single node hears both clusterheads, a border node and one of these
	// peers together form the paper's fallback "distributed gateway": a
	// two-hop relay path between the clusters.
	borderPeers map[wire.NodeID]map[wire.NodeID]wire.Epoch

	// Gateway candidates per neighboring-cluster pair, learned from
	// overheard GWRegister broadcasts. Used for BGW self-ranking and for
	// the CH's primary-gateway choice.
	gwCandidates map[pairKey]map[wire.NodeID]bool

	// CH bookkeeping: neighbor clusterheads and per-member digest coverage.
	// coverage is an exponentially weighted moving average of digest sizes
	// (how much of the cluster a member hears): smoothing keeps the deputy
	// ranking stable under message loss, so every member agrees on who the
	// deputies are — a deputy that does not know it is one means nobody
	// watches the CH. epochCoverage holds the current epoch's raw
	// observations before they are folded in at the announce slot.
	neighborCHs   map[wire.NodeID]wire.Epoch
	coverage      map[wire.NodeID]float64
	epochCoverage map[wire.NodeID]int

	// Per-epoch transient state. The unmarked-heartbeat set is a dense bitset
	// over interned NIDs plus an insertion-order list for iteration: the
	// former map grew fresh buckets every epoch under churn, and every use of
	// the set (minimum check, member-set inserts) is order-independent, so
	// list order cannot affect behavior.
	ids            dense.Interner
	heardUnmarked  dense.Bitset
	heardList      []wire.NodeID
	heardMarked    bool // any marked heartbeat heard this epoch
	heardDeclare   bool // a CHDeclare was heard this epoch
	heardAnnounce  bool // any ClusterAnnounce was heard this epoch
	memberChanged  bool
	declareTimer   sim.Timer
	pendingDeclare bool
	// deferCount counts consecutive epochs in which this unmarked host
	// deferred declaring because an established cluster was within
	// earshot. Bounded so a host covered only by ordinary members (never
	// heard by a CH) still founds its own overlapping cluster.
	deferCount int

	// viewCache memoizes View() between state mutations. Every co-resident
	// protocol calls View() on each delivery (intercluster does it per
	// report), and rebuilding — three fresh sorted slices — was the single
	// largest allocation site in the epoch hot loop. Each mutator that
	// changes view-visible state calls invalidateView; the rebuild carves
	// fresh slices out of the epoch arena so snapshots handed out before a
	// mutation stay immutable (fds holds its View across a whole epoch).
	viewCache View
	viewValid bool

	// arena backs the View snapshot slices. Snapshots are immutable but
	// short-lived — no consumer holds one past the epoch after it was taken
	// (fds re-snapshots every runEpoch, intercluster per delivery) — so the
	// arena recycles generation g's memory at generation g+2 instead of
	// leaving three slices per rebuild to the garbage collector. See
	// DESIGN.md §12 for the ownership rules.
	arena epochArena

	// Persistent phase callbacks and reusable message values: the epoch
	// schedule re-arms the same func values and re-fills the same message
	// structs every epoch (every transport encodes during Send, so a message
	// value is recyclable as soon as Send returns), which keeps the
	// steady-state epoch free of per-timer closures and per-send heap
	// messages.
	epochFn, hbFn, declareFn, announceFn, registerGWFn, declareFireFn func()
	hbMsg                                                             wire.Heartbeat
	annMsg                                                            wire.ClusterAnnounce
	gwMsg                                                             wire.GWRegister
	gwOthers                                                          []wire.NodeID
	rankScratch                                                       []wire.NodeID
	dchSpare                                                          []wire.NodeID
}

// epochArena is a two-generation bump allocator for NodeID slices handed out
// in View snapshots. flip() retires the previous generation and starts a new
// one; memory allocated two flips ago is reused in place. A slice carved from
// the arena therefore stays intact for the epoch of its creation plus the
// next — exactly the lifetime contract of a View snapshot.
type epochArena struct {
	cur, prev []wire.NodeID
}

func (a *epochArena) flip() {
	a.cur, a.prev = a.prev[:0], a.cur
}

// carve appends the accumulated tail [start:] as an immutable slice and
// returns it capped, so later carves cannot append into it.
func (a *epochArena) carve(start int) []wire.NodeID {
	if len(a.cur) == start {
		return nil
	}
	return a.cur[start:len(a.cur):len(a.cur)]
}

// New returns a formation protocol with the given configuration.
func New(cfg Config) *Protocol {
	if !cfg.Timing.Valid() {
		panic("cluster: invalid timing")
	}
	if cfg.MaxDCH < 1 {
		cfg.MaxDCH = 1
	}
	return &Protocol{
		cfg:           cfg,
		members:       make(map[wire.NodeID]bool),
		borderPeers:   make(map[wire.NodeID]map[wire.NodeID]wire.Epoch),
		gwFlag:        make(map[wire.NodeID]bool),
		otherCHs:      make(map[wire.NodeID]wire.Epoch),
		gwCandidates:  make(map[pairKey]map[wire.NodeID]bool),
		neighborCHs:   make(map[wire.NodeID]wire.Epoch),
		coverage:      make(map[wire.NodeID]float64),
		epochCoverage: make(map[wire.NodeID]int),
	}
}

// Timing returns the protocol's timing so co-resident protocols can share
// the epoch schedule.
func (p *Protocol) Timing() Timing { return p.cfg.Timing }

// Start implements node.Protocol: it enters the epoch loop at the next
// epoch boundary. A host booted mid-run (replenishment, F4) waits for the
// next heartbeat interval rather than replaying missed epochs.
func (p *Protocol) Start(h *node.Host) {
	p.host = h
	// One closure per callback per lifetime, re-armed every epoch. The
	// epoch-boundary callback derives its epoch from the clock (it fires at
	// exactly EpochStart(e)); the in-epoch phase callbacks read p.epoch,
	// which runEpoch set when their epoch began.
	p.epochFn = func() { p.runEpoch(p.cfg.Timing.EpochOf(p.host.Now())) }
	p.hbFn = func() {
		p.hbMsg = wire.Heartbeat{NID: p.host.ID(), Epoch: p.epoch, Marked: p.marked}
		p.host.Send(&p.hbMsg)
	}
	p.declareFn = func() { p.maybeDeclare(p.epoch) }
	p.announceFn = func() { p.maybeAnnounce(p.epoch) }
	p.registerGWFn = func() { p.maybeRegisterGW(p.epoch) }
	p.declareFireFn = func() {
		if !p.pendingDeclare || p.marked || p.heardDeclare {
			return
		}
		p.becomeCH(p.epoch)
	}
	e := p.cfg.Timing.EpochOf(h.Now())
	if h.Now() > p.cfg.Timing.EpochStart(e) {
		e++
	}
	p.epoch = e
	p.scheduleEpoch(e)
}

func (p *Protocol) scheduleEpoch(e wire.Epoch) {
	at := p.cfg.Timing.EpochStart(e)
	p.host.AfterBatched(at-p.host.Now(), p.epochFn)
}

// runEpoch executes one iteration of the (never-terminating, F4) formation
// algorithm for this host.
func (p *Protocol) runEpoch(e wire.Epoch) {
	p.epoch = e
	p.arena.flip()     // view snapshots older than one epoch are dead; reuse
	p.invalidateView() // epoch is view-visible, and staleness windows move
	p.heardUnmarked.Clear()
	p.heardList = p.heardList[:0]
	p.heardMarked = false
	p.heardDeclare = false
	p.heardAnnounce = false
	p.pendingDeclare = false
	t := p.cfg.Timing

	// Heartbeat diffusion (feature F5): one heartbeat per host per epoch,
	// jittered within the first quarter of the round so concurrent
	// transmissions are not artificially ordered and every heartbeat still
	// lands within Thop. This single diffusion is simultaneously the
	// formation probe, the membership subscription of unadmitted hosts,
	// and round fds.R-1 of the failure detection service, which observes
	// the same messages.
	jitter := sim.Time(p.host.Rand().Int63n(t.JitterSpan()))
	p.host.After(jitter, p.hbFn)

	if !p.marked {
		// Election decision at the end of the probe round.
		p.host.AfterBatched(t.R1End(), p.declareFn)
	}

	// Announce slot: clusterheads refresh the cluster organization when it
	// changed or when unadmitted hosts are knocking.
	p.host.AfterBatched(t.R2End(), p.announceFn)

	// Gateway registration slot.
	p.host.AfterBatched(t.R3End(), p.registerGWFn)

	p.scheduleEpoch(e + 1)
}

// maybeDeclare runs the lowest-ID qualifying policy: an unmarked host that
// heard no unmarked neighbor with a lower NID during the probe round
// declares itself clusterhead, after an RCC-style random backoff that yields
// to any declaration heard in the meantime.
func (p *Protocol) maybeDeclare(e wire.Epoch) {
	if p.marked || p.heardDeclare {
		return
	}
	if (p.heardAnnounce || p.heardMarked) && p.deferCount < 2 {
		// An established cluster is within earshot; prefer admission by
		// membership subscription (F5) over spawning an overlapping
		// cluster. The deferral is bounded: a host that keeps hearing
		// members but is never admitted (it is outside every CH's range)
		// eventually founds its own cluster, as F4's open end intends.
		p.deferCount++
		return
	}
	for _, id := range p.heardList {
		if id < p.host.ID() {
			return // not the lowest unmarked node in the neighborhood
		}
	}
	backoffMax := int64(float64(p.cfg.Timing.Thop) * p.cfg.DeclareBackoffFrac)
	if backoffMax < 1 {
		backoffMax = 1
	}
	backoff := sim.Time(p.host.Rand().Int63n(backoffMax))
	p.pendingDeclare = true
	p.declareTimer = p.host.After(backoff, p.declareFireFn)
}

// becomeCH turns the host into a clusterhead whose initial membership is
// the set of unmarked neighbors heard this epoch.
func (p *Protocol) becomeCH(e wire.Epoch) {
	p.marked = true
	p.deferCount = 0
	p.isCH = true
	p.myCH = p.host.ID()
	p.invalidateView()
	clear(p.members)
	p.members[p.host.ID()] = true
	for _, id := range p.heardList {
		p.members[id] = true
	}
	p.memberChanged = true
	p.host.Send(&wire.CHDeclare{CH: p.host.ID(), Iteration: uint32(e)})
	p.host.Trace(trace.TypeCHElected, "")
}

// maybeAnnounce broadcasts the cluster-organization announcement from a CH.
// The announcement is refreshed every epoch: it admits subscribing hosts,
// carries the deputy ranking re-derived from this epoch's digest coverage
// (a well-covered deputy keeps the gateways within reach after a takeover —
// the concern behind the paper's DCH reachability study), and repairs any
// member's view that lost an earlier announcement to the channel. A deputy
// that never learns its role means nobody watches the CH, so the refresh is
// what makes CH-failure detection robust under sustained loss.
func (p *Protocol) maybeAnnounce(e wire.Epoch) {
	if !p.isCH {
		return
	}
	for _, id := range p.heardList {
		p.members[id] = true
	}
	p.foldCoverage()
	p.rankDCHs()
	p.invalidateView() // members may have grown; dchs re-ranked
	p.memberChanged = false
	// The reusable announce message aliases live protocol state (the DCH
	// ranking) and message scratch; both are safe because Send encodes
	// before returning.
	p.annMsg = wire.ClusterAnnounce{
		CH:      p.host.ID(),
		Epoch:   e,
		Members: p.appendSortedMembers(p.annMsg.Members[:0]),
		DCHs:    p.dchs,
	}
	p.host.Send(&p.annMsg)
	p.host.Trace(trace.TypeClusterFormed, "")
}

// foldCoverage folds the epoch's raw digest sizes into the smoothed
// per-member coverage (EWMA with decay for members whose digest was lost).
func (p *Protocol) foldCoverage() {
	const alpha = 0.3
	for id := range p.members {
		if id == p.host.ID() {
			continue
		}
		obs := float64(p.epochCoverage[id])
		p.coverage[id] = (1-alpha)*p.coverage[id] + alpha*obs
	}
	clear(p.epochCoverage)
}

// rankDCHs (re)designates the deputy clusterheads: members ranked by
// smoothed digest coverage (how many cluster members they hear — a proxy
// for centrality, which is what makes a deputy able to stand in for the
// CH), with NID as the deterministic tiebreak. Incumbent deputies keep
// their posts unless a challenger's coverage is decisively better
// (hysteresis), so the ranking — and therefore every member's idea of who
// watches the CH — stays stable under channel noise.
func (p *Protocol) rankDCHs() {
	candidates := p.rankScratch[:0]
	for id := range p.members {
		if id != p.host.ID() {
			candidates = append(candidates, id)
		}
	}
	slices.SortFunc(candidates, func(a, b wire.NodeID) int {
		ca, cb := p.coverage[a], p.coverage[b]
		if ca != cb {
			if ca > cb {
				return -1
			}
			return 1
		}
		return cmp.Compare(a, b)
	})
	p.rankScratch = candidates // keep the grown capacity for the next epoch
	if len(candidates) > p.cfg.MaxDCH {
		candidates = candidates[:p.cfg.MaxDCH]
	}
	// Hysteresis: surviving incumbents keep their posts; vacancies are
	// filled by the best challengers; at most one decisive replacement per
	// epoch so all members' views stay convergent. The new ranking is built
	// in the spare buffer and ping-ponged with the live one, so re-ranking
	// never reads the buffer it is writing. Seat counts are tiny (MaxDCH,
	// typically 2), so membership tests are linear scans, not a set.
	const challengeFactor = 1.5
	next := p.dchSpare[:0]
	for _, d := range p.dchs {
		if len(next) < p.cfg.MaxDCH && p.members[d] && d != p.host.ID() && !slices.Contains(next, d) {
			next = append(next, d)
		}
	}
	for _, c := range candidates {
		if len(next) >= p.cfg.MaxDCH {
			break
		}
		if !slices.Contains(next, c) {
			next = append(next, c)
		}
	}
	// The best outsider may displace the weakest seat holder, decisively.
	var challenger wire.NodeID
	for _, c := range candidates {
		if !slices.Contains(next, c) {
			challenger = c
			break
		}
	}
	if challenger != wire.NoNode && len(next) > 0 {
		weakest := 0
		for i := range next {
			if p.coverage[next[i]] < p.coverage[next[weakest]] {
				weakest = i
			}
		}
		if p.coverage[challenger] > challengeFactor*p.coverage[next[weakest]]+1 {
			next[weakest] = challenger
		}
	}
	p.dchSpare = p.dchs
	p.dchs = next
	p.invalidateView()
}

// maybeRegisterGW broadcasts a gateway registration when this host hears
// foreign clusterheads (feature F3: the registration names the single
// affiliated cluster).
func (p *Protocol) maybeRegisterGW(e wire.Epoch) {
	if !p.marked || p.isCH {
		return
	}
	p.gwOthers = p.appendOtherCHs(p.gwOthers[:0], e)
	if len(p.gwOthers) == 0 {
		return
	}
	p.gwMsg = wire.GWRegister{GW: p.host.ID(), AffiliateCH: p.myCH, OtherCHs: p.gwOthers}
	p.host.Send(&p.gwMsg)
	p.host.Trace(trace.TypeGWElected, "")
	// Register ourselves as a candidate for each pair we bridge.
	for _, oc := range p.gwOthers {
		p.addGWCandidate(pairOf(p.myCH, oc), p.host.ID())
	}
}

// appendOtherCHs appends the foreign CHs heard recently (within the last
// few epochs), sorted, to dst. The sort covers only the appended tail, so
// dst may already hold unrelated data.
func (p *Protocol) appendOtherCHs(dst []wire.NodeID, e wire.Epoch) []wire.NodeID {
	const staleAfter = 3 // epochs
	start := len(dst)
	for ch, last := range p.otherCHs {
		if ch == p.myCH {
			delete(p.otherCHs, ch)
			continue
		}
		if uint64(e)-uint64(last) > staleAfter {
			delete(p.otherCHs, ch)
			continue
		}
		dst = append(dst, ch)
	}
	slices.Sort(dst[start:])
	return dst
}

func (p *Protocol) addGWCandidate(key pairKey, id wire.NodeID) {
	set := p.gwCandidates[key]
	if set == nil {
		set = make(map[wire.NodeID]bool)
		p.gwCandidates[key] = set
	}
	set[id] = true
}

// Handle implements node.Protocol.
func (p *Protocol) Handle(h *node.Host, m wire.Message, from wire.NodeID) {
	switch msg := m.(type) {
	case *wire.Heartbeat:
		p.onHeartbeat(msg)
	case *wire.CHDeclare:
		p.onDeclare(msg)
	case *wire.ClusterAnnounce:
		p.onAnnounce(msg)
	case *wire.GWRegister:
		p.onGWRegister(msg)
	case *wire.Digest:
		p.onDigest(msg)
	case *wire.HealthUpdate:
		p.onHealthUpdate(msg)
	}
}

// onHealthUpdate keeps gateway candidacy fresh: a clusterhead transmits a
// health update every epoch, so hearing a foreign CH's update directly
// proves this host is still within its range (announcements alone would go
// stale, since they are only sent when the organization changes).
func (p *Protocol) onHealthUpdate(m *wire.HealthUpdate) {
	if !p.marked || m.From != m.CH || m.CH == p.myCH {
		return
	}
	// Only invalidate the memoized View when the entry actually changes:
	// each foreign CH refreshes at most once per epoch, so the steady state
	// (hearing the same CHs every epoch) rebuilds the view once per epoch
	// instead of once per overheard health update.
	if last, ok := p.otherCHs[m.CH]; !ok || last != p.epoch {
		p.otherCHs[m.CH] = p.epoch
		p.invalidateView()
	}
	if p.isCH {
		p.neighborCHs[m.CH] = p.epoch
	}
}

func (p *Protocol) onHeartbeat(m *wire.Heartbeat) {
	if m.Epoch != p.epoch {
		return
	}
	if m.Marked {
		p.heardMarked = true
	} else if i := p.ids.Index(m.NID); !p.heardUnmarked.Get(i) {
		p.heardUnmarked.Set(i)
		p.heardList = append(p.heardList, m.NID)
	}
}

func (p *Protocol) onDeclare(m *wire.CHDeclare) {
	p.heardDeclare = true
	if p.pendingDeclare {
		// RCC yield: a concurrent declaration wins; join it instead.
		p.pendingDeclare = false
		p.declareTimer.Cancel()
	}
}

func (p *Protocol) onAnnounce(m *wire.ClusterAnnounce) {
	p.heardAnnounce = true
	listed := false
	for _, id := range m.Members {
		if id == p.host.ID() {
			listed = true
			break
		}
	}
	switch {
	case !p.marked && listed:
		// Admission: first announcement listing us wins (F3 — exactly one
		// affiliation).
		p.marked = true
		p.deferCount = 0
		p.isCH = false
		p.myCH = m.CH
		p.setMembersFromAnnounce(m)
	case p.marked && m.CH == p.myCH:
		p.setMembersFromAnnounce(m)
	case p.marked && m.CH != p.myCH:
		// A foreign clusterhead within earshot: we are a gateway
		// candidate between the two clusters.
		if last, ok := p.otherCHs[m.CH]; !ok || last != p.epoch {
			p.otherCHs[m.CH] = p.epoch
			p.invalidateView()
		}
		if p.isCH {
			p.neighborCHs[m.CH] = p.epoch
		}
	}
}

func (p *Protocol) setMembersFromAnnounce(m *wire.ClusterAnnounce) {
	clear(p.members)
	for _, id := range m.Members {
		p.members[id] = true
	}
	p.members[m.CH] = true
	p.dchs = append(p.dchs[:0], m.DCHs...)
	p.invalidateView()
}

func (p *Protocol) onGWRegister(m *wire.GWRegister) {
	// Track candidates for every pair the registrant bridges, so backup
	// gateways can rank themselves without extra coordination messages.
	for _, oc := range m.OtherCHs {
		p.addGWCandidate(pairOf(m.AffiliateCH, oc), m.GW)
	}
	if !p.isCH {
		return
	}
	me := p.host.ID()
	if m.AffiliateCH == me {
		// One of our members serves as a gateway; remember its reach.
		p.gwFlag[m.GW] = true
		for _, oc := range m.OtherCHs {
			p.neighborCHs[oc] = p.epoch
		}
		return
	}
	// The registrant is affiliated elsewhere. If an earlier announcement
	// of ours listed it (simultaneous formation in the overlap), drop it:
	// feature F3 gives each gateway exactly one home cluster.
	for _, oc := range m.OtherCHs {
		if oc == me {
			if p.members[m.GW] {
				delete(p.members, m.GW)
				p.memberChanged = true
				p.invalidateView()
			}
			p.neighborCHs[m.AffiliateCH] = p.epoch
		}
	}
}

func (p *Protocol) onDigest(m *wire.Digest) {
	if m.Epoch != p.epoch {
		return
	}
	// A digest from a foreign cluster identifies a border peer: a member
	// of an adjacent cluster within earshot.
	if p.marked && m.CH != wire.NoNode && m.CH != p.myCH && m.CH != p.host.ID() {
		peers := p.borderPeers[m.CH]
		if peers == nil {
			peers = make(map[wire.NodeID]wire.Epoch)
			p.borderPeers[m.CH] = peers
		}
		peers[m.NID] = p.epoch
	}
	if p.isCH && p.members[m.NID] {
		if m.CH != wire.NoNode && m.CH != p.host.ID() {
			// The digest names a different home cluster: this host was
			// admitted elsewhere (simultaneous formation in the overlap)
			// and only remains in our list because the gateway
			// registration was lost. Drop it — feature F3 gives every
			// host exactly one affiliation — so it cannot be falsely
			// detected or designated deputy here.
			delete(p.members, m.NID)
			delete(p.coverage, m.NID)
			delete(p.epochCoverage, m.NID)
			p.memberChanged = true
			p.invalidateView()
			return
		}
		p.epochCoverage[m.NID] = len(m.Heard)
	}
}

// BorderClusters returns the foreign clusterheads reachable only through a
// border peer (i.e. excluding clusters this host hears directly), sorted.
// Stale entries age out after a few epochs.
func (p *Protocol) BorderClusters() []wire.NodeID {
	return p.AppendBorderClusters(nil)
}

// AppendBorderClusters is BorderClusters appending into dst; only the
// appended tail is sorted.
func (p *Protocol) AppendBorderClusters(dst []wire.NodeID) []wire.NodeID {
	const staleAfter = 3
	start := len(dst)
	for ch, peers := range p.borderPeers {
		for id, last := range peers {
			if uint64(p.epoch)-uint64(last) > staleAfter {
				delete(peers, id)
			}
		}
		if len(peers) == 0 {
			delete(p.borderPeers, ch)
			continue
		}
		if ch == p.myCH {
			continue
		}
		if _, direct := p.otherCHs[ch]; direct {
			continue // a one-hop gateway path exists; prefer it
		}
		dst = append(dst, ch)
	}
	slices.Sort(dst[start:])
	return dst
}

// IsBorderPeer reports whether id is a known member of the foreign cluster
// headed by ch within this host's earshot.
func (p *Protocol) IsBorderPeer(ch, id wire.NodeID) bool {
	_, ok := p.borderPeers[ch][id]
	return ok
}

// --- mutators invoked by the failure detection service --------------------

// NoteFailed removes failed hosts from the cluster composition. The FDS
// calls it on the CH when it detects failures and on members when they
// process a health-status update.
func (p *Protocol) NoteFailed(ids []wire.NodeID) {
	if len(ids) > 0 {
		p.invalidateView()
	}
	for _, id := range ids {
		if p.members[id] {
			delete(p.members, id)
			if p.isCH {
				p.memberChanged = true
			}
		}
		delete(p.coverage, id)
		delete(p.epochCoverage, id)
		delete(p.gwFlag, id)
		for i, d := range p.dchs {
			if d == id {
				p.dchs = append(p.dchs[:i:i], p.dchs[i+1:]...)
				break
			}
		}
	}
}

// Readmit restores a host to the cluster composition after a false
// detection is rescinded (the FDS heard a heartbeat from a host it believed
// failed — impossible under fail-stop unless the detection was false).
func (p *Protocol) Readmit(id wire.NodeID) {
	if !p.isCH || p.members[id] {
		return
	}
	p.members[id] = true
	p.memberChanged = true
	p.invalidateView()
}

// Demote reverts the host to the unmarked state so it re-enters cluster
// formation at the next epoch (feature F4 treats it like a newly arrived
// host). The FDS calls it when a member has been orphaned — no health
// update and no clusterhead heartbeat for several consecutive epochs,
// meaning the CH and every deputy are gone.
func (p *Protocol) Demote() {
	p.marked = false
	p.isCH = false
	p.myCH = wire.NoNode
	clear(p.members)
	p.dchs = p.dchs[:0]
	p.invalidateView()
}

// TakeOver promotes this host (a deputy clusterhead) to clusterhead after
// it detected the CH's failure. The FDS calls it at the end of fds.R-3.
func (p *Protocol) TakeOver() {
	old := p.myCH
	p.isCH = true
	p.myCH = p.host.ID()
	delete(p.members, old)
	p.members[p.host.ID()] = true
	for i, d := range p.dchs {
		if d == p.host.ID() {
			p.dchs = append(p.dchs[:i:i], p.dchs[i+1:]...)
			break
		}
	}
	p.memberChanged = true
	p.invalidateView()
	p.host.Trace(trace.TypeTakeover, old.String())
}

// NoteNewCH records that leadership moved to newCH (a takeover update was
// received). A clusterhead receiving this for its own cluster has been
// falsely detected; it reasserts by scheduling a fresh announcement, which
// is how the (rare) conflicting-reports scenario of Section 4.2 resolves.
func (p *Protocol) NoteNewCH(oldCH, newCH wire.NodeID) {
	if p.isCH && oldCH == p.host.ID() {
		p.memberChanged = true // reassert at the next announce slot
		return
	}
	if !p.marked || p.myCH != oldCH {
		return
	}
	p.myCH = newCH
	delete(p.members, oldCH)
	p.members[newCH] = true
	for i, d := range p.dchs {
		if d == newCH {
			p.dchs = append(p.dchs[:i:i], p.dchs[i+1:]...)
			break
		}
	}
	p.invalidateView()
}

// --- queries ----------------------------------------------------------------

// View returns a snapshot of the host's cluster state. The snapshot is
// memoized: repeated calls between mutations return the same slices, so
// callers must treat Members/DCHs/OtherCHs as read-only (every in-repo
// caller already did — the slices were always meant to be immutable).
func (p *Protocol) View() View {
	// The epoch guard catches direct epoch manipulation (tests, harnesses)
	// that bypasses runEpoch: staleness windows move with the epoch, so a
	// cache built in an earlier epoch can never be served in a later one.
	if !p.viewValid || p.viewCache.Epoch != p.epoch {
		v := View{
			Epoch:  p.epoch,
			Marked: p.marked,
			CH:     p.myCH,
			IsCH:   p.isCH,
		}
		if p.marked {
			start := len(p.arena.cur)
			p.arena.cur = p.appendSortedMembers(p.arena.cur)
			v.Members = p.arena.carve(start)
			start = len(p.arena.cur)
			p.arena.cur = append(p.arena.cur, p.dchs...)
			v.DCHs = p.arena.carve(start)
			start = len(p.arena.cur)
			p.arena.cur = p.appendOtherCHs(p.arena.cur, p.epoch)
			v.OtherCHs = p.arena.carve(start)
		}
		p.viewCache = v
		p.viewValid = true
	}
	return p.viewCache
}

// invalidateView marks the memoized View stale. Call it after any mutation
// of epoch, marked, isCH, myCH, members, dchs, or otherCHs. The next View()
// rebuilds with fresh slices; previously returned snapshots are untouched.
func (p *Protocol) invalidateView() { p.viewValid = false }

// NeighborCHs returns the clusterheads of neighboring clusters known to
// this CH, sorted. Empty for non-CHs.
func (p *Protocol) NeighborCHs() []wire.NodeID {
	return p.AppendNeighborCHs(nil)
}

// AppendNeighborCHs is NeighborCHs appending into dst; only the appended
// tail is sorted.
func (p *Protocol) AppendNeighborCHs(dst []wire.NodeID) []wire.NodeID {
	if !p.isCH {
		return dst
	}
	const staleAfter = 5
	start := len(dst)
	for ch, last := range p.neighborCHs {
		if uint64(p.epoch)-uint64(last) > staleAfter {
			delete(p.neighborCHs, ch)
			continue
		}
		dst = append(dst, ch)
	}
	slices.Sort(dst[start:])
	return dst
}

// GWRank returns this host's rank among the known gateway candidates
// bridging clusters chA and chB (1 = primary gateway, 2 = first backup, …)
// and the total number of candidates. ok is false when the host is not a
// candidate for that pair.
func (p *Protocol) GWRank(chA, chB wire.NodeID) (rank, n int, ok bool) {
	set := p.gwCandidates[pairOf(chA, chB)]
	me := p.host.ID()
	if !set[me] {
		return 0, len(set), false
	}
	// Rank in the sorted candidate list = 1 + the number of smaller NIDs;
	// counting avoids materializing the sorted list.
	rank = 1
	for id := range set {
		if id < me {
			rank++
		}
	}
	return rank, len(set), true
}

// GatewayCandidates returns the known gateway candidates between chA and
// chB, sorted by NID (the primary gateway first).
func (p *Protocol) GatewayCandidates(chA, chB wire.NodeID) []wire.NodeID {
	return p.AppendGatewayCandidates(nil, chA, chB)
}

// AppendGatewayCandidates is GatewayCandidates appending into dst; only the
// appended tail is sorted.
func (p *Protocol) AppendGatewayCandidates(dst []wire.NodeID, chA, chB wire.NodeID) []wire.NodeID {
	set := p.gwCandidates[pairOf(chA, chB)]
	start := len(dst)
	for id := range set {
		dst = append(dst, id)
	}
	slices.Sort(dst[start:])
	return dst
}

// appendSortedMembers appends the sorted membership to dst; only the
// appended tail is sorted.
func (p *Protocol) appendSortedMembers(dst []wire.NodeID) []wire.NodeID {
	start := len(dst)
	for id := range p.members {
		dst = append(dst, id)
	}
	slices.Sort(dst[start:])
	return dst
}

// --- test/scenario support ---------------------------------------------------

// InstallStaticView force-installs a cluster state, bypassing formation.
// The Monte-Carlo harness uses it to study a single FDS execution on a
// known cluster, exactly as the paper's per-cluster analysis does.
func (p *Protocol) InstallStaticView(ch wire.NodeID, members, dchs []wire.NodeID, self wire.NodeID) {
	p.marked = true
	p.myCH = ch
	p.isCH = ch == self
	p.members = make(map[wire.NodeID]bool, len(members))
	for _, id := range members {
		p.members[id] = true
	}
	p.members[ch] = true
	p.dchs = append([]wire.NodeID(nil), dchs...)
	p.invalidateView()
}
