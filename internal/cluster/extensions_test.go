package cluster

import (
	"testing"

	"clusterfds/internal/geo"
	"clusterfds/internal/node"
	"clusterfds/internal/radio"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// handle feeds a message straight into a protocol (unit-level driving).
func handle(p *Protocol, h *node.Host, m wire.Message) {
	p.Handle(h, m, wire.NoNode)
}

// soloHost builds a booted host with only the given protocol attached.
func soloHost(t *testing.T, id wire.NodeID) (*sim.Kernel, *Protocol, *node.Host) {
	t.Helper()
	k := sim.New(int64(id))
	m := radio.New(k, radio.Defaults(0))
	h := node.New(k, m, id, geo.Point{})
	p := New(DefaultConfig())
	h.Use(p)
	h.Boot()
	return k, p, h
}

func TestReadmit(t *testing.T) {
	_, p, _ := soloHost(t, 1)
	p.InstallStaticView(1, []wire.NodeID{1, 2, 3}, nil, 1)
	p.NoteFailed([]wire.NodeID{2})
	if p.View().IsMember(2) {
		t.Fatal("NoteFailed did not remove")
	}
	p.Readmit(2)
	if !p.View().IsMember(2) {
		t.Error("Readmit did not restore the member")
	}
	p.Readmit(2) // idempotent
	if got := len(p.View().Members); got != 3 {
		t.Errorf("members = %d, want 3", got)
	}
}

func TestReadmitOnlyOnCH(t *testing.T) {
	_, p, _ := soloHost(t, 2)
	p.InstallStaticView(1, []wire.NodeID{1, 2, 3}, nil, 2) // ordinary member
	p.NoteFailed([]wire.NodeID{3})
	p.Readmit(3)
	if p.View().IsMember(3) {
		t.Error("non-CH Readmit should be a no-op")
	}
}

func TestBorderPeersFromForeignDigests(t *testing.T) {
	_, p, h := soloHost(t, 5)
	p.InstallStaticView(1, []wire.NodeID{1, 5}, nil, 5)

	// A digest from a member of a foreign cluster (CH 9) makes its sender
	// a border peer toward 9.
	handle(p, h, &wire.Digest{NID: 42, CH: 9, Epoch: p.epoch})
	if got := p.BorderClusters(); len(got) != 1 || got[0] != 9 {
		t.Fatalf("BorderClusters = %v, want [n9]", got)
	}
	if !p.IsBorderPeer(9, 42) {
		t.Error("n42 should be a border peer of cluster 9")
	}
	if p.IsBorderPeer(9, 43) || p.IsBorderPeer(8, 42) {
		t.Error("spurious border peers")
	}
}

func TestBorderClustersExcludeDirectNeighbors(t *testing.T) {
	_, p, h := soloHost(t, 5)
	p.InstallStaticView(1, []wire.NodeID{1, 5}, nil, 5)
	// Hearing CH 9's own update makes it a DIRECT neighbor — the one-hop
	// gateway path is preferred, so 9 must not be a border cluster.
	handle(p, h, &wire.Digest{NID: 42, CH: 9, Epoch: p.epoch})
	handle(p, h, &wire.HealthUpdate{From: 9, CH: 9, Epoch: p.epoch})
	if got := p.BorderClusters(); len(got) != 0 {
		t.Errorf("BorderClusters = %v, want none (direct path exists)", got)
	}
	// And the direct candidacy is visible in the view.
	if got := p.View().OtherCHs; len(got) != 1 || got[0] != 9 {
		t.Errorf("OtherCHs = %v, want [n9]", got)
	}
}

func TestBorderPeersAgeOut(t *testing.T) {
	_, p, h := soloHost(t, 5)
	p.InstallStaticView(1, []wire.NodeID{1, 5}, nil, 5)
	handle(p, h, &wire.Digest{NID: 42, CH: 9, Epoch: p.epoch})
	if len(p.BorderClusters()) != 1 {
		t.Fatal("border peer not recorded")
	}
	p.epoch += 10 // silence for many epochs
	if got := p.BorderClusters(); len(got) != 0 {
		t.Errorf("stale border peers survived: %v", got)
	}
}

func TestDirectCandidacyRefreshedByForeignUpdates(t *testing.T) {
	_, p, h := soloHost(t, 5)
	p.InstallStaticView(1, []wire.NodeID{1, 5}, nil, 5)
	handle(p, h, &wire.HealthUpdate{From: 9, CH: 9, Epoch: p.epoch})
	if got := p.View().OtherCHs; len(got) != 1 {
		t.Fatalf("OtherCHs = %v", got)
	}
	// Keep hearing updates: candidacy must persist across epochs.
	for i := 0; i < 6; i++ {
		p.epoch++
		handle(p, h, &wire.HealthUpdate{From: 9, CH: 9, Epoch: p.epoch})
	}
	if got := p.View().OtherCHs; len(got) != 1 {
		t.Errorf("candidacy decayed despite fresh updates: %v", got)
	}
	// Stop hearing: candidacy ages out.
	p.epoch += 5
	if got := p.View().OtherCHs; len(got) != 0 {
		t.Errorf("candidacy survived silence: %v", got)
	}
}

func TestUpdateFromNonCHDoesNotCreateCandidacy(t *testing.T) {
	_, p, h := soloHost(t, 5)
	p.InstallStaticView(1, []wire.NodeID{1, 5}, nil, 5)
	// A takeover update has From != CH; only genuine CH transmissions
	// (From == CH) prove proximity to a clusterhead.
	handle(p, h, &wire.HealthUpdate{From: 7, CH: 9, Epoch: p.epoch, Takeover: true})
	if got := p.View().OtherCHs; len(got) != 0 {
		t.Errorf("OtherCHs = %v, want none", got)
	}
}

func TestDigestAffiliationCleanup(t *testing.T) {
	_, p, h := soloHost(t, 1)
	p.InstallStaticView(1, []wire.NodeID{1, 2, 3}, nil, 1)
	// Member 3's digest names a different home cluster: drop it (F3).
	handle(p, h, &wire.Digest{NID: 3, CH: 9, Epoch: p.epoch})
	if p.View().IsMember(3) {
		t.Error("foreign-affiliated member not dropped")
	}
	// A digest naming us keeps the member and records coverage.
	handle(p, h, &wire.Digest{NID: 2, CH: 1, Epoch: p.epoch, Heard: []wire.NodeID{1, 3}})
	if !p.View().IsMember(2) {
		t.Error("own member dropped")
	}
}

func TestDCHRankingStability(t *testing.T) {
	_, p, _ := soloHost(t, 1)
	p.InstallStaticView(1, []wire.NodeID{1, 2, 3, 4, 5}, nil, 1)

	// Feed several epochs of digest coverage: n2 consistently hears the
	// most, n3 second.
	feed := func(cov map[wire.NodeID]int) {
		for id, n := range cov {
			heard := make([]wire.NodeID, n)
			for i := range heard {
				heard[i] = wire.NodeID(100 + i)
			}
			p.epochCoverage[id] = len(heard)
		}
		p.foldCoverage()
		p.rankDCHs()
	}
	for i := 0; i < 5; i++ {
		feed(map[wire.NodeID]int{2: 4, 3: 3, 4: 1, 5: 1})
	}
	dchs := p.View().DCHs
	if len(dchs) != 2 || dchs[0] != 2 {
		t.Fatalf("DCHs = %v, want [n2 n3] (coverage order)", dchs)
	}

	// No duplicates, ever (regression: the hysteresis once produced
	// [n109 n109]).
	seen := map[wire.NodeID]bool{}
	for _, d := range dchs {
		if seen[d] {
			t.Fatalf("duplicate deputy in %v", dchs)
		}
		seen[d] = true
	}

	// One noisy epoch must not reshuffle the ranking (hysteresis).
	feed(map[wire.NodeID]int{2: 0, 3: 0, 4: 2, 5: 2})
	if got := p.View().DCHs; len(got) != 2 || got[0] != dchs[0] {
		t.Errorf("one noisy epoch flipped deputies: %v -> %v", dchs, got)
	}

	// A persistently dominant challenger eventually takes a seat.
	for i := 0; i < 12; i++ {
		feed(map[wire.NodeID]int{2: 4, 3: 0, 4: 8, 5: 0})
	}
	got := p.View().DCHs
	found := false
	for _, d := range got {
		if d == 4 {
			found = true
		}
	}
	if !found {
		t.Errorf("dominant challenger never seated: %v", got)
	}
}

func TestRankDCHsDropsFailedIncumbents(t *testing.T) {
	_, p, _ := soloHost(t, 1)
	p.InstallStaticView(1, []wire.NodeID{1, 2, 3, 4}, []wire.NodeID{2, 3}, 1)
	p.NoteFailed([]wire.NodeID{2})
	p.rankDCHs()
	for _, d := range p.View().DCHs {
		if d == 2 {
			t.Error("failed incumbent still a deputy")
		}
	}
	if len(p.View().DCHs) != 2 {
		t.Errorf("vacancy not refilled: %v", p.View().DCHs)
	}
}

func TestAnnounceEveryEpochRepairsStaleViews(t *testing.T) {
	// Full-stack check: a member that loses several announcements still
	// converges because the CH re-announces every epoch.
	k := sim.New(9)
	m := radio.New(k, radio.Defaults(0))
	positions := []geo.Point{{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 0, Y: 30}, {X: -30, Y: 0}}
	var protos []*Protocol
	for i, pos := range positions {
		h := node.New(k, m, wire.NodeID(i+1), pos)
		p := New(DefaultConfig())
		h.Use(p)
		protos = append(protos, p)
		h.Boot()
	}
	timing := DefaultTiming()
	k.RunUntil(timing.EpochStart(2))
	// Sever CH -> n2 for two epochs (n2's view goes stale), then restore.
	m.SetLinkLoss(1, 2, 1.0)
	k.RunUntil(timing.EpochStart(4))
	m.SetLinkLoss(1, 2, -1)
	k.RunUntil(timing.EpochStart(6))
	v1, v2 := protos[0].View(), protos[1].View()
	if len(v1.Members) != len(v2.Members) {
		t.Errorf("views diverged after repair: CH %v vs member %v", v1.Members, v2.Members)
	}
	if len(v2.DCHs) == 0 {
		t.Error("member never relearned the deputy list")
	}
}

func TestGWRankUnknownPair(t *testing.T) {
	_, p, _ := soloHost(t, 7)
	if _, _, ok := p.GWRank(1, 2); ok {
		t.Error("rank reported for a pair with no candidates")
	}
	if got := p.GatewayCandidates(1, 2); len(got) != 0 {
		t.Errorf("candidates = %v, want none", got)
	}
}
