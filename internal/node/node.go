// Package node implements the host runtime: a fail-stop process with a
// position, an energy budget (delegated to the transport's meter), a
// stack of protocols, and crash-aware timers.
//
// Hosts follow the paper's fail-stop model (Section 2.2): a crashed host
// stops sending, receiving, and firing timers, and never recovers. Crashes
// are injected by scenarios, optionally aligned to heartbeat-interval
// epochs to honor the assumption that "a node will not fail during an FDS
// execution".
//
// This runtime allocates one Host object per node and scales comfortably
// to ~10^4 hosts. For larger fields, internal/shard reimplements the FDS
// rounds on struct-of-arrays state with a sharded conservative kernel
// (fdsim -shards N); the two engines share wire sizes, timing, and the
// golden-hash determinism discipline, but not code.
package node

import (
	"fmt"
	"math/rand"

	"clusterfds/internal/geo"
	"clusterfds/internal/sim"
	"clusterfds/internal/trace"
	"clusterfds/internal/transport"
	"clusterfds/internal/wire"
)

// Protocol is a state machine attached to a host. A host dispatches every
// received message to every attached protocol; protocols ignore kinds they
// do not care about. This mirrors the paper's middleware framing: the
// clustering layer, the FDS, and the inter-cluster forwarder are separate
// modules sharing one radio.
type Protocol interface {
	// Start is called once when the host boots.
	Start(h *Host)
	// Handle is called for every message delivered to the host.
	Handle(h *Host, m wire.Message, from wire.NodeID)
}

// Host is one network node. It implements transport.Receiver and is
// transport-agnostic: the same Host (and the same protocol stack above it)
// runs on the simulated radio medium, the deterministic in-process mesh, or
// a live UDP link, because it touches time, randomness, and the network only
// through the transport.Runtime and transport.Transport interfaces.
type Host struct {
	id    wire.NodeID
	pos   geo.Point
	clock transport.Runtime
	net   transport.Transport
	sink  trace.Sink

	protocols []Protocol
	crashed   bool
	started   bool
	// radioOff models sleep-mode duty cycling: the host neither sends nor
	// receives, but its clock (and therefore protocol timers) keeps
	// running — radio sleep, the energy-dominant kind. wakeAt is the
	// current wake deadline (later SleepRadio calls move it).
	radioOff bool
	wakeAt   sim.Time

	// Optional clock extensions, probed once at construction. When present,
	// After/AfterArg run through pooled timer records and one shared
	// ArgHandler instead of allocating a crash-guard closure per timer, and
	// AfterBatched coalesces same-instant phase events.
	argClock   transport.ArgClock
	batchClock transport.BatchClock
	timerFree  []*timerRec
	tracing    bool
}

// timerRec carries one pending host timer through the kernel: the host (for
// the crash guard), plus either a plain callback or an (ArgHandler, arg)
// pair. Records are pooled per host; a canceled timer's record is simply
// dropped when the dead event is collected.
type timerRec struct {
	h   *Host
	fn  func()
	afn sim.ArgHandler
	arg any
}

// fireTimerFn is the one ArgHandler behind every pooled host timer.
var fireTimerFn sim.ArgHandler = func(a any) {
	rec := a.(*timerRec)
	h, fn, afn, arg := rec.h, rec.fn, rec.afn, rec.arg
	rec.fn, rec.afn, rec.arg = nil, nil, nil
	h.timerFree = append(h.timerFree, rec)
	if h.crashed {
		return
	}
	if fn != nil {
		fn()
	} else {
		afn(arg)
	}
}

func (h *Host) takeTimerRec() *timerRec {
	if len(h.timerFree) == 0 {
		// Grow by a block: per-host pending-timer counts rise with report
		// traffic, so one-at-a-time growth would allocate every epoch.
		blk := make([]timerRec, 16)
		for i := range blk {
			blk[i].h = h
			h.timerFree = append(h.timerFree, &blk[i])
		}
	}
	n := len(h.timerFree)
	rec := h.timerFree[n-1]
	h.timerFree[n-1] = nil
	h.timerFree = h.timerFree[:n-1]
	return rec
}

// Option customizes a Host.
type Option func(*Host)

// WithTrace attaches a trace sink to the host.
func WithTrace(s trace.Sink) Option {
	return func(h *Host) { h.sink = s }
}

// New creates a host, attaches it to the transport, and returns it. The
// host does not run protocols until Boot is called, so scenarios can finish
// wiring before any traffic flows. rt is typically a *sim.Kernel (which
// implements transport.Runtime directly); net is any transport backend —
// *radio.Medium, *transport.Mesh, or *transport.LinkTransport.
func New(rt transport.Runtime, net transport.Transport, id wire.NodeID, pos geo.Point, opts ...Option) *Host {
	h := &Host{
		id:    id,
		pos:   pos,
		clock: rt,
		net:   net,
		sink:  trace.Nop{},
	}
	for _, opt := range opts {
		opt(h)
	}
	h.argClock, _ = rt.(transport.ArgClock)
	h.batchClock, _ = rt.(transport.BatchClock)
	_, nop := h.sink.(trace.Nop)
	h.tracing = !nop
	net.Attach(h)
	return h
}

// ID implements transport.Receiver.
func (h *Host) ID() wire.NodeID { return h.id }

// Pos implements transport.Receiver.
func (h *Host) Pos() geo.Point { return h.pos }

// Operational implements transport.Receiver: true until the host crashes. A
// sleeping host is NOT operational for radio purposes — it can neither send
// nor receive — but it has not failed.
func (h *Host) Operational() bool { return !h.crashed && !h.radioOff }

// Deliver implements transport.Receiver by fanning the message out to the
// protocol stack.
func (h *Host) Deliver(m wire.Message, from wire.NodeID) {
	if h.crashed || !h.started || h.radioOff {
		return
	}
	for _, p := range h.protocols {
		p.Handle(h, m, from)
	}
}

// Use attaches a protocol. It panics after Boot: the stack is fixed at
// startup so message dispatch order is deterministic.
func (h *Host) Use(p Protocol) {
	if h.started {
		panic(fmt.Sprintf("node: Use on already-booted host %v", h.id))
	}
	h.protocols = append(h.protocols, p)
}

// Boot starts every attached protocol. It is idempotent.
func (h *Host) Boot() {
	if h.started || h.crashed {
		return
	}
	h.started = true
	for _, p := range h.protocols {
		p.Start(h)
	}
}

// Crash fail-stops the host: it immediately becomes silent and deaf, and
// pending timers never fire. Crashing twice is a no-op.
func (h *Host) Crash() {
	if h.crashed {
		return
	}
	h.crashed = true
	h.sink.Emit(trace.Event{
		At: h.clock.Now(), Type: trace.TypeCrash, Node: uint32(h.id),
	})
}

// Crashed reports whether the host has fail-stopped.
func (h *Host) Crashed() bool { return h.crashed }

// Send transmits m over the transport. Crashed and sleeping hosts transmit
// nothing.
func (h *Host) Send(m wire.Message) {
	if h.crashed || h.radioOff {
		return
	}
	h.net.Send(h.id, m)
}

// SleepRadio turns the radio off until the given absolute virtual time.
// Protocol timers keep firing (their sends are silently dropped), so epoch
// loops survive the nap. Sleeping again extends or shortens the wake time.
func (h *Host) SleepRadio(until sim.Time) {
	if h.crashed || until <= h.Now() {
		return
	}
	h.radioOff = true
	h.wakeAt = until
	h.clock.At(until, func() {
		// Only the timer matching the latest wake deadline wakes the
		// radio; stale timers from superseded naps are no-ops.
		if h.Now() >= h.wakeAt {
			h.radioOff = false
		}
	})
}

// Asleep reports whether the radio is currently off.
func (h *Host) Asleep() bool { return h.radioOff }

// After schedules fn on the kernel; the callback is suppressed if the host
// has crashed by the time it fires (a dead process runs no code). Pass a
// long-lived fn (a stored per-protocol func, not a fresh closure) to keep the
// call allocation-free on kernels with the ArgClock extension.
func (h *Host) After(d sim.Time, fn func()) sim.Timer {
	if h.argClock != nil {
		rec := h.takeTimerRec()
		rec.fn = fn
		return h.argClock.ScheduleArg(d, fireTimerFn, rec)
	}
	return h.clock.Schedule(d, func() {
		if !h.crashed {
			fn()
		}
	})
}

// AfterArg schedules fn(arg) with After's crash-guard semantics. It lets
// protocols thread pooled per-event records through one long-lived handler,
// the same trick sim.Kernel.ScheduleArg enables one layer down.
func (h *Host) AfterArg(d sim.Time, fn sim.ArgHandler, arg any) sim.Timer {
	if h.argClock != nil {
		rec := h.takeTimerRec()
		rec.afn, rec.arg = fn, arg
		return h.argClock.ScheduleArg(d, fireTimerFn, rec)
	}
	return h.clock.Schedule(d, func() {
		if !h.crashed {
			fn(arg)
		}
	})
}

// AfterBatched schedules fn like After but coalesces all callbacks landing
// on the same instant — across every host on the kernel — into one kernel
// event (see sim.Kernel.AtBatched). There is no cancellation handle, so it
// suits the unconditional phase events of the epoch schedule: boundaries and
// round ends, which every host hits at identical offsets.
func (h *Host) AfterBatched(d sim.Time, fn func()) {
	if h.batchClock != nil {
		rec := h.takeTimerRec()
		rec.fn = fn
		h.batchClock.AtBatched(h.clock.Now()+d, fireTimerFn, rec)
		return
	}
	h.After(d, fn)
}

// Now returns the current virtual time.
func (h *Host) Now() sim.Time { return h.clock.Now() }

// Rand returns the runtime's deterministic random source.
func (h *Host) Rand() *rand.Rand { return h.clock.Rand() }

// Energy returns the host's available energy per the transport's meter.
func (h *Host) Energy() float64 { return h.net.Energy(h.id) }

// Neighbors returns the operational hosts currently within radio range.
func (h *Host) Neighbors() []wire.NodeID { return h.net.Neighbors(h.pos, h.id) }

// Trace emits a structured trace event attributed to this host.
func (h *Host) Trace(t trace.EventType, detail string) {
	h.sink.Emit(trace.Event{At: h.clock.Now(), Type: t, Node: uint32(h.id), Detail: detail})
}

// Tracing reports whether a real trace sink is attached. Hot paths consult
// it before building Sprintf detail strings, so benchmark and headless runs
// (Nop sink) pay nothing for tracing they discard.
func (h *Host) Tracing() bool { return h.tracing }

// MoveTo repositions the host and informs the transport. Provided for
// migration extensions; the core experiments keep hosts stationary.
func (h *Host) MoveTo(p geo.Point) {
	old := h.pos
	h.pos = p
	h.net.UpdatePos(h.id, old)
}
