package node

import (
	"testing"
	"time"

	"clusterfds/internal/geo"
	"clusterfds/internal/radio"
	"clusterfds/internal/sim"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

// echoProto replies to every heartbeat with its own, and records traffic.
type echoProto struct {
	started  int
	received []wire.Kind
	echo     bool
}

func (p *echoProto) Start(h *Host) { p.started++ }

func (p *echoProto) Handle(h *Host, m wire.Message, from wire.NodeID) {
	p.received = append(p.received, m.Kind())
	if p.echo && m.Kind() == wire.KindHeartbeat {
		h.Send(&wire.Digest{NID: h.ID(), Heard: []wire.NodeID{from}})
	}
}

func newWorld(t *testing.T, positions []geo.Point) (*sim.Kernel, *radio.Medium, []*Host) {
	t.Helper()
	k := sim.New(1)
	params := radio.Defaults(0)
	params.MinDelay, params.MaxDelay = sim.Time(time.Millisecond), sim.Time(time.Millisecond)
	m := radio.New(k, params)
	hosts := make([]*Host, len(positions))
	for i, pos := range positions {
		hosts[i] = New(k, m, wire.NodeID(i+1), pos)
	}
	return k, m, hosts
}

func TestProtocolDispatch(t *testing.T) {
	k, _, hosts := newWorld(t, []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}})
	p1, p2 := &echoProto{}, &echoProto{echo: true}
	hosts[1].Use(p1)
	hosts[1].Use(p2)
	for _, h := range hosts {
		h.Boot()
	}
	if p1.started != 1 || p2.started != 1 {
		t.Fatal("protocols not started exactly once")
	}
	hosts[0].Send(&wire.Heartbeat{NID: 1})
	k.Run()
	if len(p1.received) != 1 || len(p2.received) != 1 {
		t.Fatalf("both protocols should see the message: %v / %v", p1.received, p2.received)
	}
}

func TestEchoRoundTrip(t *testing.T) {
	k, _, hosts := newWorld(t, []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}})
	sender := &echoProto{}
	responder := &echoProto{echo: true}
	hosts[0].Use(sender)
	hosts[1].Use(responder)
	for _, h := range hosts {
		h.Boot()
	}
	hosts[0].Send(&wire.Heartbeat{NID: 1})
	k.Run()
	if len(sender.received) != 1 || sender.received[0] != wire.KindDigest {
		t.Fatalf("sender received %v, want one digest", sender.received)
	}
}

func TestCrashStopsEverything(t *testing.T) {
	k, _, hosts := newWorld(t, []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}})
	p := &echoProto{}
	hosts[1].Use(p)
	for _, h := range hosts {
		h.Boot()
	}
	timerFired := false
	hosts[1].After(sim.Time(time.Second), func() { timerFired = true })
	hosts[1].Crash()
	if !hosts[1].Crashed() || hosts[1].Operational() {
		t.Fatal("Crashed/Operational inconsistent")
	}
	hosts[0].Send(&wire.Heartbeat{NID: 1})
	hosts[1].Send(&wire.Heartbeat{NID: 2}) // crashed: must be silent
	k.Run()
	if len(p.received) != 0 {
		t.Error("crashed host processed a message")
	}
	if timerFired {
		t.Error("crashed host's timer fired")
	}
	hosts[1].Crash() // idempotent
}

func TestCrashDuringRun(t *testing.T) {
	k, _, hosts := newWorld(t, []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}})
	p := &echoProto{}
	hosts[1].Use(p)
	for _, h := range hosts {
		h.Boot()
	}
	// Send at t=0; crash receiver at t=0.5ms, before the 1ms delivery.
	hosts[0].Send(&wire.Heartbeat{NID: 1})
	k.Schedule(sim.Time(500*time.Microsecond), func() { hosts[1].Crash() })
	k.Run()
	if len(p.received) != 0 {
		t.Error("message delivered to host that crashed in flight")
	}
}

func TestUseAfterBootPanics(t *testing.T) {
	_, _, hosts := newWorld(t, []geo.Point{{X: 0, Y: 0}})
	hosts[0].Boot()
	defer func() {
		if recover() == nil {
			t.Error("Use after Boot should panic")
		}
	}()
	hosts[0].Use(&echoProto{})
}

func TestBootIdempotent(t *testing.T) {
	_, _, hosts := newWorld(t, []geo.Point{{X: 0, Y: 0}})
	p := &echoProto{}
	hosts[0].Use(p)
	hosts[0].Boot()
	hosts[0].Boot()
	if p.started != 1 {
		t.Errorf("started %d times, want 1", p.started)
	}
}

func TestBootAfterCrashIsNoop(t *testing.T) {
	_, _, hosts := newWorld(t, []geo.Point{{X: 0, Y: 0}})
	p := &echoProto{}
	hosts[0].Use(p)
	hosts[0].Crash()
	hosts[0].Boot()
	if p.started != 0 {
		t.Error("crashed host booted protocols")
	}
}

func TestNeighborsAndEnergy(t *testing.T) {
	_, _, hosts := newWorld(t, []geo.Point{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 400, Y: 0}})
	nbrs := hosts[0].Neighbors()
	if len(nbrs) != 1 || nbrs[0] != 2 {
		t.Errorf("Neighbors = %v, want [2]", nbrs)
	}
	if hosts[0].Energy() <= 0 {
		t.Error("fresh host should have positive energy")
	}
}

func TestAfterFiresWhenAlive(t *testing.T) {
	k, _, hosts := newWorld(t, []geo.Point{{X: 0, Y: 0}})
	fired := false
	hosts[0].After(sim.Time(time.Second), func() { fired = true })
	k.Run()
	if !fired {
		t.Error("timer did not fire on live host")
	}
}

func TestMoveTo(t *testing.T) {
	k, m, hosts := newWorld(t, []geo.Point{{X: 0, Y: 0}, {X: 500, Y: 0}})
	if len(hosts[0].Neighbors()) != 0 {
		t.Fatal("hosts should start out of range")
	}
	hosts[1].MoveTo(geo.Point{X: 50, Y: 0})
	if len(hosts[0].Neighbors()) != 1 {
		t.Error("MoveTo did not update the medium's index")
	}
	_ = k
	_ = m
}

func TestTraceOnCrash(t *testing.T) {
	k := sim.New(1)
	mem := trace.NewMemory()
	m := radio.New(k, radio.Defaults(0))
	h := New(k, m, 1, geo.Point{}, WithTrace(mem))
	h.Crash()
	if mem.Count(trace.TypeCrash) != 1 {
		t.Error("crash not traced")
	}
}
