// Package textplot renders simple ASCII charts for terminal output: the
// figure-regeneration tool and the examples use it to show the paper's
// log-scale curves without any plotting dependency.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	X      []float64
	Y      []float64
	Marker byte
}

// Chart is an ASCII chart specification.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// LogY plots log10(y); zero or negative values are clamped to YFloor.
	LogY bool
	// YFloor is the smallest positive value representable when LogY is
	// set (default 1e-30, the paper's lowest axis mark).
	YFloor float64
	// Width and Height are the plot area size in characters (defaults
	// 64x20).
	Width, Height int
	Series        []Series
}

// defaultMarkers cycles when a series has no explicit marker.
var defaultMarkers = []byte{'*', '+', 'o', 'x', '#', '@'}

// Render draws the chart into a string.
func (c Chart) Render() string {
	if c.Width <= 0 {
		c.Width = 64
	}
	if c.Height <= 0 {
		c.Height = 20
	}
	if c.YFloor <= 0 {
		c.YFloor = 1e-30
	}
	if len(c.Series) == 0 {
		return c.Title + "\n(no data)\n"
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	tr := func(y float64) float64 {
		if c.LogY {
			if y < c.YFloor {
				y = c.YFloor
			}
			return math.Log10(y)
		}
		return y
	}
	for _, s := range c.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, tr(s.Y[i]))
			ymax = math.Max(ymax, tr(s.Y[i]))
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, c.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", c.Width))
	}
	for si, s := range c.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for i := range s.X {
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(c.Width-1))
			row := c.Height - 1 - int((tr(s.Y[i])-ymin)/(ymax-ymin)*float64(c.Height-1))
			if col >= 0 && col < c.Width && row >= 0 && row < c.Height {
				grid[row][col] = marker
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yLabelAt := func(row int) string {
		v := ymax - (ymax-ymin)*float64(row)/float64(c.Height-1)
		if c.LogY {
			return fmt.Sprintf("%8.0e", math.Pow(10, v))
		}
		return fmt.Sprintf("%8.3g", v)
	}
	for i, line := range grid {
		label := strings.Repeat(" ", 8)
		if i == 0 || i == c.Height-1 || i == c.Height/2 {
			label = yLabelAt(i)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, line)
	}
	fmt.Fprintf(&b, "%s +%s+\n", strings.Repeat(" ", 8), strings.Repeat("-", c.Width))
	fmt.Fprintf(&b, "%s  %-10.3g%s%10.3g\n", strings.Repeat(" ", 8), xmin,
		strings.Repeat(" ", max(0, c.Width-20)), xmax)
	if c.XLabel != "" {
		fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", 8), c.XLabel)
	}
	var legend []string
	for si, s := range c.Series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		legend = append(legend, fmt.Sprintf("%c %s", marker, s.Name))
	}
	fmt.Fprintf(&b, "%s  legend: %s\n", strings.Repeat(" ", 8), strings.Join(legend, "   "))
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
