package textplot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	c := Chart{
		Title:  "test chart",
		XLabel: "p",
		LogY:   true,
		Series: []Series{
			{Name: "N=50", X: []float64{0.1, 0.2, 0.3}, Y: []float64{1e-2, 1e-4, 1e-6}},
			{Name: "N=100", X: []float64{0.1, 0.2, 0.3}, Y: []float64{1e-8, 1e-12, 1e-16}},
		},
	}
	out := c.Render()
	for _, want := range []string{"test chart", "N=50", "N=100", "legend:", "p"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("markers missing")
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Chart{Title: "empty"}.Render()
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart output: %q", out)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	c := Chart{Series: []Series{{Name: "one", X: []float64{1}, Y: []float64{5}}}}
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Error("single point not plotted")
	}
}

func TestRenderClampsToFloor(t *testing.T) {
	c := Chart{
		LogY:   true,
		YFloor: 1e-10,
		Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}}},
	}
	// Must not panic on zero values under log scale.
	if out := c.Render(); out == "" {
		t.Error("empty render")
	}
}

func TestMarkersCycleAndOverride(t *testing.T) {
	c := Chart{Series: []Series{
		{Name: "a", X: []float64{0}, Y: []float64{0}, Marker: 'Q'},
		{Name: "b", X: []float64{1}, Y: []float64{1}},
	}}
	out := c.Render()
	if !strings.Contains(out, "Q a") {
		t.Error("marker override not used in legend")
	}
}

func TestLinearScale(t *testing.T) {
	c := Chart{
		Series: []Series{{Name: "lin", X: []float64{0, 1, 2}, Y: []float64{0, 50, 100}}},
	}
	out := c.Render()
	if !strings.Contains(out, "100") {
		t.Errorf("y-axis label missing:\n%s", out)
	}
}
