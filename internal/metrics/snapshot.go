package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// HistogramSnapshot is the exported form of a Histogram.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bucket edges.
	Bounds []float64 `json:"bounds"`
	// Buckets holds one count per bound plus a final +Inf bucket.
	Buckets []int64 `json:"buckets"`
	// Count, Sum, Min, Max summarize the raw observations. Min and Max are
	// meaningful only when Count > 0.
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
}

// SeriesSnapshot is the exported form of an epoch Series.
type SeriesSnapshot struct {
	// Epochs[e] is the tally attributed to heartbeat-interval epoch e.
	Epochs []int64 `json:"epochs"`
	// Dropped tallies deltas recorded beyond the series growth bound.
	Dropped int64 `json:"dropped,omitempty"`
}

// Snapshot is a registry's state as plain data. Snapshots merge (Merge)
// and export (WriteJSON, WriteCSV); both operations are deterministic.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Series     map[string]SeriesSnapshot    `json:"series,omitempty"`
}

// Merge folds o into s. Rules, per instrument kind:
//
//   - counters and series add (series element-wise, extending to the longer
//     vector);
//   - gauges add as well — replicated sweeps divide by the replica count
//     for a mean level;
//   - histograms with identical bounds add bucket-wise and combine
//     count/sum/min/max. Merging histograms with different bounds panics:
//     it is a wiring error, not data.
//
// Because every rule is associative and applied per sorted name, merging a
// replica sequence in replica order yields a snapshot that is a pure
// function of the replicas — bit-reproducible at any worker count.
func (s *Snapshot) Merge(o Snapshot) {
	if len(o.Counters) > 0 {
		if s.Counters == nil {
			s.Counters = make(map[string]int64, len(o.Counters))
		}
		for _, name := range sortedKeys(o.Counters) {
			s.Counters[name] += o.Counters[name]
		}
	}
	if len(o.Gauges) > 0 {
		if s.Gauges == nil {
			s.Gauges = make(map[string]float64, len(o.Gauges))
		}
		for _, name := range sortedKeys(o.Gauges) {
			s.Gauges[name] += o.Gauges[name]
		}
	}
	if len(o.Histograms) > 0 {
		if s.Histograms == nil {
			s.Histograms = make(map[string]HistogramSnapshot, len(o.Histograms))
		}
		for _, name := range sortedKeys(o.Histograms) {
			oh := o.Histograms[name]
			h, ok := s.Histograms[name]
			if !ok {
				s.Histograms[name] = HistogramSnapshot{
					Bounds:  append([]float64(nil), oh.Bounds...),
					Buckets: append([]int64(nil), oh.Buckets...),
					Count:   oh.Count,
					Sum:     oh.Sum,
					Min:     oh.Min,
					Max:     oh.Max,
				}
				continue
			}
			if !equalBounds(h.Bounds, oh.Bounds) {
				panic(fmt.Sprintf("metrics: merging histogram %q with mismatched bounds", name))
			}
			for i := range oh.Buckets {
				h.Buckets[i] += oh.Buckets[i]
			}
			switch {
			case h.Count == 0:
				h.Min, h.Max = oh.Min, oh.Max
			case oh.Count > 0:
				h.Min = math.Min(h.Min, oh.Min)
				h.Max = math.Max(h.Max, oh.Max)
			}
			h.Count += oh.Count
			h.Sum += oh.Sum
			s.Histograms[name] = h
		}
	}
	if len(o.Series) > 0 {
		if s.Series == nil {
			s.Series = make(map[string]SeriesSnapshot, len(o.Series))
		}
		for _, name := range sortedKeys(o.Series) {
			os := o.Series[name]
			sr, ok := s.Series[name]
			if !ok {
				s.Series[name] = SeriesSnapshot{
					Epochs:  append([]int64(nil), os.Epochs...),
					Dropped: os.Dropped,
				}
				continue
			}
			if len(os.Epochs) > len(sr.Epochs) {
				grown := make([]int64, len(os.Epochs))
				copy(grown, sr.Epochs)
				sr.Epochs = grown
			}
			for i, v := range os.Epochs {
				sr.Epochs[i] += v
			}
			sr.Dropped += os.Dropped
			s.Series[name] = sr
		}
	}
}

// MergeAll merges the snapshots in slice order (replica order for
// replicated sweeps) into one snapshot.
func MergeAll(snaps []Snapshot) Snapshot {
	var out Snapshot
	for _, s := range snaps {
		out.Merge(s)
	}
	return out
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Equal reports whether two snapshots carry identical data — the
// bit-reproducibility check the worker-count tests use.
func (s Snapshot) Equal(o Snapshot) bool {
	a, errA := json.Marshal(s)
	b, errB := json.Marshal(o)
	return errA == nil && errB == nil && string(a) == string(b)
}

// WriteJSON writes the snapshot as indented JSON. Map keys are emitted in
// sorted order (encoding/json), so equal snapshots produce equal bytes.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes the snapshot as a flat four-column table:
//
//	section,name,key,value
//
// with one row per scalar. Counters and gauges use an empty key;
// histograms emit count/sum/min/max rows followed by one "le:<bound>" row
// per bucket (the final bucket is "le:+Inf"); series emit one "epoch:<e>"
// row per recorded epoch (zeros included — the epoch axis is dense) plus a
// "dropped" row when overflow occurred. Sections appear in the fixed order
// counter, gauge, histogram, series; names sort ascending; keys follow the
// instrument's natural order. Equal snapshots produce equal bytes.
func (s Snapshot) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	write := func(section, name, key, value string) {
		// csv.Writer sticks the first error; checked at Flush.
		_ = cw.Write([]string{section, name, key, value})
	}
	write("section", "name", "key", "value") // header
	for _, name := range sortedKeys(s.Counters) {
		write("counter", name, "", strconv.FormatInt(s.Counters[name], 10))
	}
	for _, name := range sortedKeys(s.Gauges) {
		write("gauge", name, "", formatFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		write("histogram", name, "count", strconv.FormatInt(h.Count, 10))
		write("histogram", name, "sum", formatFloat(h.Sum))
		write("histogram", name, "min", formatFloat(h.Min))
		write("histogram", name, "max", formatFloat(h.Max))
		for i, b := range h.Bounds {
			write("histogram", name, "le:"+formatFloat(b), strconv.FormatInt(h.Buckets[i], 10))
		}
		if n := len(h.Bounds); n < len(h.Buckets) {
			write("histogram", name, "le:+Inf", strconv.FormatInt(h.Buckets[n], 10))
		}
	}
	for _, name := range sortedKeys(s.Series) {
		sr := s.Series[name]
		for e, v := range sr.Epochs {
			write("series", name, "epoch:"+strconv.Itoa(e), strconv.FormatInt(v, 10))
		}
		if sr.Dropped != 0 {
			write("series", name, "dropped", strconv.FormatInt(sr.Dropped, 10))
		}
	}
	cw.Flush()
	return cw.Error()
}

// formatFloat renders floats with the shortest round-trippable
// representation, keeping CSV exports byte-stable.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
