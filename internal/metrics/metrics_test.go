package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tx")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Errorf("counter = %d, want 4", c.Value())
	}
	if r.Counter("tx") != c {
		t.Error("Counter not idempotent")
	}
	g := r.Gauge("level")
	g.Set(2.5)
	g.Set(7)
	if g.Value() != 7 {
		t.Errorf("gauge = %v, want 7 (last write wins)", g.Value())
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(1)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter recorded")
	}
	g := r.Gauge("x")
	g.Set(1)
	if g.Value() != 0 {
		t.Error("nil gauge recorded")
	}
	h := r.Histogram("x", []float64{1})
	h.Observe(0.5)
	if h.Count() != 0 {
		t.Error("nil histogram recorded")
	}
	s := r.Series("x")
	s.Add(3, 1)
	if s.Total() != 0 || s.Len() != 0 {
		t.Error("nil series recorded")
	}
	if !r.Snapshot().Equal(Snapshot{}) {
		t.Error("nil registry snapshot not empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 4, 100} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["lat"]
	want := []int64{2, 1, 1, 1} // le:1 ×2 (0.5 and the inclusive 1), le:2, le:5, +Inf
	for i, w := range want {
		if snap.Buckets[i] != w {
			t.Errorf("bucket %d = %d, want %d (%v)", i, snap.Buckets[i], w, snap.Buckets)
		}
	}
	if snap.Count != 5 || snap.Min != 0.5 || snap.Max != 100 || snap.Sum != 107 {
		t.Errorf("summary wrong: %+v", snap)
	}
}

func TestHistogramBoundsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds did not panic")
		}
	}()
	NewRegistry().Histogram("bad", []float64{1, 1})
}

func TestSeriesGrowthAndOverflow(t *testing.T) {
	r := NewRegistry()
	s := r.Series("detect")
	s.Add(2, 1)
	s.Add(0, 5)
	s.Add(2, 1)
	if s.Len() != 3 || s.Value(0) != 5 || s.Value(1) != 0 || s.Value(2) != 2 {
		t.Errorf("series wrong: len=%d values=%v %v %v", s.Len(), s.Value(0), s.Value(1), s.Value(2))
	}
	// A saturated epoch (e.g. from guarded EpochStart arithmetic) must not
	// allocate a gigantic vector.
	s.Add(1<<40, 7)
	if s.Len() != 3 {
		t.Errorf("overflow epoch grew the series to %d", s.Len())
	}
	if s.Total() != 14 { // 5 + 2 + 7 dropped
		t.Errorf("Total = %d, want 14", s.Total())
	}
	snap := r.Snapshot().Series["detect"]
	if snap.Dropped != 7 {
		t.Errorf("Dropped = %d, want 7", snap.Dropped)
	}
}

func buildSnapshot(seed int64) Snapshot {
	r := NewRegistry()
	r.Counter("tx:heartbeat").Add(10 + seed)
	r.Counter("rx:digest").Add(20)
	r.Gauge("operational").Set(float64(40 + seed))
	h := r.Histogram("latency-s", []float64{0.5, 1, 2})
	h.Observe(0.3)
	h.Observe(float64(seed) + 0.6)
	s := r.Series("detections")
	s.Add(1, 2)
	s.Add(uint64(2+seed), 1)
	return r.Snapshot()
}

func TestMergeRules(t *testing.T) {
	a := buildSnapshot(0)
	b := buildSnapshot(3)
	var m Snapshot
	m.Merge(a)
	m.Merge(b)

	if m.Counters["tx:heartbeat"] != 23 {
		t.Errorf("merged counter = %d, want 23", m.Counters["tx:heartbeat"])
	}
	if m.Gauges["operational"] != 83 {
		t.Errorf("merged gauge = %v, want 83 (sum)", m.Gauges["operational"])
	}
	h := m.Histograms["latency-s"]
	if h.Count != 4 || h.Min != 0.3 || h.Max != 3.6 {
		t.Errorf("merged histogram wrong: %+v", h)
	}
	sr := m.Series["detections"]
	if len(sr.Epochs) != 6 || sr.Epochs[1] != 4 || sr.Epochs[2] != 1 || sr.Epochs[5] != 1 {
		t.Errorf("merged series wrong: %v", sr.Epochs)
	}
}

func TestMergeOrderIndependentForCommutativeData(t *testing.T) {
	// The per-instrument rules are associative AND commutative for integer
	// data, so two orders agree here; float sums rely on replica order,
	// which MergeAll fixes. This test pins the integer half.
	a := buildSnapshot(0)
	b := buildSnapshot(3)
	ab := MergeAll([]Snapshot{a, b})
	ba := MergeAll([]Snapshot{b, a})
	if ab.Counters["tx:heartbeat"] != ba.Counters["tx:heartbeat"] {
		t.Error("counter merge not commutative")
	}
	if !ab.Equal(MergeAll([]Snapshot{a, b})) {
		t.Error("MergeAll not deterministic for identical input order")
	}
}

func TestMergeMismatchedHistogramBoundsPanics(t *testing.T) {
	r1 := NewRegistry()
	r1.Histogram("h", []float64{1}).Observe(0.5)
	r2 := NewRegistry()
	r2.Histogram("h", []float64{2}).Observe(0.5)
	s := r1.Snapshot()
	defer func() {
		if recover() == nil {
			t.Error("mismatched bounds merged silently")
		}
	}()
	s.Merge(r2.Snapshot())
}

func TestWriteJSONDeterministic(t *testing.T) {
	s := buildSnapshot(1)
	var a, b bytes.Buffer
	if err := s.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("JSON export not byte-stable")
	}
	for _, want := range []string{`"tx:heartbeat": 11`, `"counters"`, `"series"`, `"histograms"`} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("JSON missing %q:\n%s", want, a.String())
		}
	}
}

func TestWriteCSVSchema(t *testing.T) {
	s := buildSnapshot(0)
	var buf bytes.Buffer
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "section,name,key,value" {
		t.Errorf("header = %q", lines[0])
	}
	for _, want := range []string{
		"counter,tx:heartbeat,,10",
		"gauge,operational,,40",
		"histogram,latency-s,count,2",
		"histogram,latency-s,le:+Inf,0",
		"series,detections,epoch:0,0", // dense epoch axis: zeros included
		"series,detections,epoch:1,2",
		"series,detections,epoch:2,1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
	var again bytes.Buffer
	_ = s.WriteCSV(&again)
	if again.String() != out {
		t.Error("CSV export not byte-stable")
	}
}

func TestSnapshotEqual(t *testing.T) {
	if !buildSnapshot(2).Equal(buildSnapshot(2)) {
		t.Error("identical snapshots not Equal")
	}
	if buildSnapshot(2).Equal(buildSnapshot(3)) {
		t.Error("different snapshots Equal")
	}
}
