// Package metrics is the observability layer of the simulator: a
// lightweight, mergeable metrics registry that every subsystem (the radio
// medium, the failure detection service, the scenario harness) writes into.
//
// The paper's completeness and accuracy claims (Sections 4-5) are per-epoch
// quantities, so the registry's distinguishing instrument is the
// epoch-bucketed Series: an int64 vector indexed by heartbeat-interval
// epoch. Counters and gauges cover cumulative tallies, and fixed-bucket
// Histograms cover latency distributions (detection latency,
// update-delivery latency).
//
// Design constraints, in order:
//
//  1. Hot-path writes are allocation-free. Instruments are resolved to
//     handles once, at registration time; Counter.Add and
//     Histogram.Observe are a field increment and a bucket scan — no map
//     lookups, no string concatenation, no interface boxing. A nil handle
//     is a valid no-op instrument, so protocol code can emit
//     unconditionally whether or not a registry is attached.
//  2. Snapshots merge deterministically. Replicated experiments produce
//     one Snapshot per replica; merging them in replica order yields a
//     result that is a pure function of the replica set — never of the
//     worker count (see Snapshot.Merge for the per-instrument rules).
//  3. Exports are reproducible byte-for-byte: JSON keys are sorted (the
//     encoding/json map behaviour) and the CSV schema emits sections,
//     names, and bucket/epoch keys in a fixed order.
//
// The registry is not safe for concurrent use; like the simulation kernel
// it assumes single-threaded ownership. Parallel sweeps give each replica
// its own registry and merge the snapshots afterwards.
package metrics

import "sort"

// maxSeriesEpochs bounds how far a Series may grow. Epochs at or beyond
// the bound are ignored (and counted in the series' dropped tally) so a
// corrupted or saturated epoch number cannot allocate unbounded memory.
const maxSeriesEpochs = 1 << 20

// Counter is a monotonic (or at least sum-semantics) int64 tally.
// The nil Counter is a valid no-op instrument.
type Counter struct {
	v int64
}

// Add adds delta to the counter. Safe on a nil receiver.
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v += delta
	}
}

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current tally (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-written float64 level. The nil Gauge is a valid no-op
// instrument. Gauges merge by summation (see Snapshot.Merge); replica
// averages are obtained by dividing by the replica count.
type Gauge struct {
	v float64
}

// Set records the gauge's current level. Safe on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the last written level (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket distribution: bounds are upper bucket edges
// (inclusive), and observations above the last bound land in the implicit
// +Inf bucket. The nil Histogram is a valid no-op instrument.
type Histogram struct {
	bounds  []float64
	buckets []int64 // len(bounds)+1; buckets[len(bounds)] is +Inf
	count   int64
	sum     float64
	min     float64
	max     float64
}

// Observe records one observation. Safe on a nil receiver. The bucket scan
// is linear; bound sets are small (≤ ~16) by convention.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if h.count == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(h.bounds)]++
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Series is an epoch-bucketed int64 time series: index e accumulates the
// deltas attributed to heartbeat-interval epoch e. The nil Series is a
// valid no-op instrument.
type Series struct {
	v       []int64
	dropped int64 // adds beyond maxSeriesEpochs
}

// Add accumulates delta into epoch e, growing the series as needed. Safe
// on a nil receiver. Epochs ≥ maxSeriesEpochs are dropped (tallied in the
// snapshot's Dropped field) so saturated epoch arithmetic cannot exhaust
// memory.
func (s *Series) Add(e uint64, delta int64) {
	if s == nil {
		return
	}
	if e >= maxSeriesEpochs {
		s.dropped += delta
		return
	}
	if need := int(e) + 1; need > len(s.v) {
		if need <= cap(s.v) {
			s.v = s.v[:need]
		} else {
			grown := make([]int64, need, 2*need)
			copy(grown, s.v)
			s.v = grown
		}
	}
	s.v[e] += delta
}

// Value returns the accumulated delta for epoch e (0 when unrecorded or on
// a nil receiver).
func (s *Series) Value(e uint64) int64 {
	if s == nil || e >= uint64(len(s.v)) {
		return 0
	}
	return s.v[e]
}

// Len returns one past the highest recorded epoch (0 on a nil receiver).
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.v)
}

// Total sums the series over all epochs (plus any dropped tail).
func (s *Series) Total() int64 {
	if s == nil {
		return 0
	}
	t := s.dropped
	for _, v := range s.v {
		t += v
	}
	return t
}

// Registry owns a namespace of instruments. The zero value is not usable;
// create one with NewRegistry. A nil *Registry is a valid no-op source:
// every lookup returns a nil handle, and nil handles ignore writes — so
// wiring code can pass an optional registry straight through without
// branching.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	series   map[string]*Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		series:   make(map[string]*Series),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (the no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use. Bounds must be strictly ascending; registering the
// same name twice ignores the second bound set (the first registration
// wins), so independently wired subsystems can share an instrument as long
// as they agree by convention. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if h, ok := r.hists[name]; ok {
		return h
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]int64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// Series returns the named epoch series, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Series(name string) *Series {
	if r == nil {
		return nil
	}
	s, ok := r.series[name]
	if !ok {
		s = &Series{}
		r.series[name] = s
	}
	return s
}

// Snapshot captures the registry's current state as plain data, suitable
// for merging and export. Returns the zero Snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = HistogramSnapshot{
				Bounds:  append([]float64(nil), h.bounds...),
				Buckets: append([]int64(nil), h.buckets...),
				Count:   h.count,
				Sum:     h.sum,
				Min:     h.min,
				Max:     h.max,
			}
		}
	}
	if len(r.series) > 0 {
		s.Series = make(map[string]SeriesSnapshot, len(r.series))
		for name, sr := range r.series {
			s.Series[name] = SeriesSnapshot{
				Epochs:  append([]int64(nil), sr.v...),
				Dropped: sr.dropped,
			}
		}
	}
	return s
}

// sortedKeys returns the keys of a string-keyed map in ascending order —
// the iteration order every deterministic export uses.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
