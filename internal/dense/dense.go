// Package dense provides roster-scoped dense indexing for per-node protocol
// state: an Interner that maps sparse wire.NodeIDs onto small stable integers
// and a word-packed Bitset keyed by those integers.
//
// The failure detection service keeps several per-node evidence sets that are
// rebuilt every epoch (heartbeats heard, digests received, nodes listed alive
// in digests). As map[NodeID]bool those sets dominated the epoch hot loop's
// allocation profile: three fresh maps per host per epoch, plus a bucket
// allocation per insertion. Dense indices turn each set into a handful of
// uint64 words cleared in place — zero steady-state allocation — and turn
// per-node lookaside tables (sleep excusals, forward timers) into flat slices.
//
// Indices are stable for the lifetime of the Interner: once a NodeID is
// interned its index never changes, so state keyed by index survives across
// epochs without remapping. The interner is per-host (roster-scoped): a host
// interns only the IDs it actually hears, so index space stays proportional
// to neighborhood size, not network size.
package dense

import (
	"math/bits"

	"clusterfds/internal/wire"
)

// smallLimit bounds the direct-index fast path: NodeIDs below it are mapped
// through a flat slice (scenarios number hosts 1..N, so this is the only
// path the experiments exercise — including the million-node sharded fields,
// whose hosts are numbered 1..1e6); larger IDs fall back to a map so
// arbitrary 32-bit IDs still work. The slice grows to the largest interned
// ID, so the worst case is 4 MB per interner — and roster-scoped interners
// only ever see their own neighborhood's IDs.
const smallLimit = 1 << 20

// Interner assigns dense, stable uint32 indices to wire.NodeIDs.
// The zero value is ready to use.
type Interner struct {
	small []uint32               // NodeID -> index+1 (0 = unassigned)
	big   map[wire.NodeID]uint32 // same, for NodeIDs >= smallLimit
	rev   []wire.NodeID          // index -> NodeID
}

// Index returns the dense index for id, assigning the next free index if id
// has not been seen before. Indices are assigned consecutively from 0.
func (in *Interner) Index(id wire.NodeID) uint32 {
	if id < smallLimit {
		if int(id) < len(in.small) {
			if v := in.small[id]; v != 0 {
				return v - 1
			}
		} else {
			grown := make([]uint32, nextCap(int(id)+1, len(in.small)))
			copy(grown, in.small)
			in.small = grown
		}
		idx := uint32(len(in.rev))
		in.small[id] = idx + 1
		in.rev = append(in.rev, id)
		return idx
	}
	if v, ok := in.big[id]; ok {
		return v - 1
	}
	if in.big == nil {
		in.big = make(map[wire.NodeID]uint32)
	}
	idx := uint32(len(in.rev))
	in.big[id] = idx + 1
	in.rev = append(in.rev, id)
	return idx
}

// Lookup returns the dense index for id without assigning one.
func (in *Interner) Lookup(id wire.NodeID) (uint32, bool) {
	if id < smallLimit {
		if int(id) < len(in.small) {
			if v := in.small[id]; v != 0 {
				return v - 1, true
			}
		}
		return 0, false
	}
	v, ok := in.big[id]
	if !ok {
		return 0, false
	}
	return v - 1, true
}

// NodeID returns the NodeID interned at index i. It panics if i was never
// assigned, mirroring slice indexing semantics.
func (in *Interner) NodeID(i uint32) wire.NodeID { return in.rev[i] }

// Len returns how many NodeIDs have been interned. Valid indices are
// exactly [0, Len).
func (in *Interner) Len() int { return len(in.rev) }

// nextCap grows geometrically toward need so repeated small-ID growth does
// not reallocate per node during the boot storm.
func nextCap(need, cur int) int {
	c := cur * 2
	if c < 16 {
		c = 16
	}
	if c < need {
		c = need
	}
	return c
}

// Bitset is a word-packed set of dense indices. The zero value is an empty
// set ready to use. It grows on Set and never shrinks; Clear zeroes the
// words in place, so steady-state epochs allocate nothing.
type Bitset struct {
	words []uint64
}

// Set adds index i to the set, growing the word slice if needed.
func (b *Bitset) Set(i uint32) {
	w := int(i >> 6)
	if w >= len(b.words) {
		grown := make([]uint64, nextCap(w+1, len(b.words)))
		copy(grown, b.words)
		b.words = grown
	}
	b.words[w] |= 1 << (i & 63)
}

// Get reports whether index i is in the set. Out-of-range indices are
// simply absent — no growth, no panic.
func (b *Bitset) Get(i uint32) bool {
	w := int(i >> 6)
	return w < len(b.words) && b.words[w]&(1<<(i&63)) != 0
}

// Unset removes index i from the set if present.
func (b *Bitset) Unset(i uint32) {
	if w := int(i >> 6); w < len(b.words) {
		b.words[w] &^= 1 << (i & 63)
	}
}

// Clear empties the set in place, retaining capacity.
func (b *Bitset) Clear() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of indices in the set.
func (b *Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls fn for every index in the set, in ascending index order.
// fn must not mutate the set.
func (b *Bitset) ForEach(fn func(uint32)) {
	for wi, w := range b.words {
		base := uint32(wi) << 6
		for w != 0 {
			fn(base + uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}
