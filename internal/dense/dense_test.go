package dense

import (
	"math/rand"
	"sync"
	"testing"

	"clusterfds/internal/wire"
)

func TestInternerAssignsStableConsecutiveIndices(t *testing.T) {
	var in Interner
	ids := []wire.NodeID{7, 3, 7, 100, 3, 1}
	want := []uint32{0, 1, 0, 2, 1, 3}
	for k, id := range ids {
		if got := in.Index(id); got != want[k] {
			t.Fatalf("Index(%d) call %d = %d, want %d", id, k, got, want[k])
		}
	}
	if in.Len() != 4 {
		t.Fatalf("Len = %d, want 4", in.Len())
	}
	for _, id := range []wire.NodeID{7, 3, 100, 1} {
		i, ok := in.Lookup(id)
		if !ok || in.NodeID(i) != id {
			t.Fatalf("round trip failed for %d: (%d, %v)", id, i, ok)
		}
	}
	if _, ok := in.Lookup(42); ok {
		t.Fatal("Lookup invented an index for an unseen ID")
	}
}

func TestInternerLargeIDsUseMapFallback(t *testing.T) {
	var in Interner
	big := wire.NodeID(1 << 20)
	i1 := in.Index(big)
	i2 := in.Index(5)
	if i1 != 0 || i2 != 1 {
		t.Fatalf("indices = %d, %d; want 0, 1", i1, i2)
	}
	if got := in.Index(big); got != i1 {
		t.Fatalf("big ID not stable: %d then %d", i1, got)
	}
	if j, ok := in.Lookup(big); !ok || j != i1 || in.NodeID(j) != big {
		t.Fatalf("big ID round trip failed: (%d, %v)", j, ok)
	}
}

func TestBitsetBasics(t *testing.T) {
	var b Bitset
	if b.Get(0) || b.Get(1000) || b.Count() != 0 {
		t.Fatal("zero-value bitset not empty")
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(300)
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4", b.Count())
	}
	for _, i := range []uint32{0, 63, 64, 300} {
		if !b.Get(i) {
			t.Fatalf("Get(%d) = false after Set", i)
		}
	}
	if b.Get(1) || b.Get(299) || b.Get(100000) {
		t.Fatal("spurious membership")
	}
	b.Unset(63)
	b.Unset(100000) // out of range: no-op
	if b.Get(63) || b.Count() != 3 {
		t.Fatal("Unset failed")
	}
	var got []uint32
	b.ForEach(func(i uint32) { got = append(got, i) })
	want := []uint32{0, 64, 300}
	if len(got) != len(want) {
		t.Fatalf("ForEach = %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("ForEach = %v, want %v (ascending order)", got, want)
		}
	}
	cap0 := len(b.words)
	b.Clear()
	if b.Count() != 0 || len(b.words) != cap0 {
		t.Fatal("Clear must empty in place, retaining capacity")
	}
}

func TestBitsetMatchesMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var b Bitset
	model := map[uint32]bool{}
	for op := 0; op < 20000; op++ {
		i := uint32(rng.Intn(2000))
		switch rng.Intn(3) {
		case 0:
			b.Set(i)
			model[i] = true
		case 1:
			b.Unset(i)
			delete(model, i)
		case 2:
			if b.Get(i) != model[i] {
				t.Fatalf("op %d: Get(%d) = %v, model %v", op, i, b.Get(i), model[i])
			}
		}
	}
	if b.Count() != len(model) {
		t.Fatalf("Count = %d, model %d", b.Count(), len(model))
	}
	n := 0
	b.ForEach(func(i uint32) {
		if !model[i] {
			t.Fatalf("ForEach yielded %d not in model", i)
		}
		n++
	})
	if n != len(model) {
		t.Fatalf("ForEach yielded %d indices, model %d", n, len(model))
	}
}

func TestBitsetSteadyStateAllocFree(t *testing.T) {
	var b Bitset
	for i := uint32(0); i < 512; i++ {
		b.Set(i)
	}
	allocs := testing.AllocsPerRun(100, func() {
		b.Clear()
		for i := uint32(0); i < 512; i += 3 {
			b.Set(i)
		}
		s := 0
		b.ForEach(func(uint32) { s++ })
		if s == 0 {
			t.Fatal("no bits")
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state epoch cycle allocates %.1f times, want 0", allocs)
	}
}

// TestInternerMillionIDs pins the flat-slice fast path at the million-node
// scale the sharded kernel runs at: hosts numbered 1..1e6 must intern without
// touching the map fallback, and the backing slice must stay within the
// geometric-growth bound (2x the largest ID), not balloon per insertion.
func TestInternerMillionIDs(t *testing.T) {
	const n = 1_000_000
	var in Interner
	for id := wire.NodeID(1); id <= n; id++ {
		if got := in.Index(id); got != uint32(id-1) {
			t.Fatalf("Index(%d) = %d, want %d", id, got, id-1)
		}
	}
	if in.Len() != n {
		t.Fatalf("Len = %d, want %d", in.Len(), n)
	}
	if in.big != nil {
		t.Fatalf("IDs 1..%d spilled into the map fallback (%d entries)", n, len(in.big))
	}
	// Footprint: the small slice holds uint32 words; geometric growth bounds
	// it at twice the largest ID+1 (here 2^21 words = 8 MB), and rev holds
	// exactly one NodeID per interned ID.
	if len(in.small) > 2*(n+1) {
		t.Fatalf("small slice = %d words for max ID %d, want <= %d", len(in.small), n, 2*(n+1))
	}
	if len(in.rev) != n {
		t.Fatalf("rev = %d entries, want %d", len(in.rev), n)
	}
	// Spot-check stability and reverse lookup at the extremes.
	for _, id := range []wire.NodeID{1, 2, n / 2, n - 1, n} {
		i, ok := in.Lookup(id)
		if !ok || i != uint32(id-1) || in.NodeID(i) != id {
			t.Fatalf("round trip failed for %d: (%d, %v)", id, i, ok)
		}
	}
}

// TestBitsetMillionIndices pins Bitset behavior and footprint at 1e6 dense
// indices: ceil(1e6/64) = 15625 words are needed, and geometric growth must
// keep the allocation within 2x of that.
func TestBitsetMillionIndices(t *testing.T) {
	const n = 1_000_000
	var b Bitset
	for i := uint32(0); i < n; i += 7 {
		b.Set(i)
	}
	want := (n + 6) / 7
	if got := b.Count(); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	needWords := (n + 63) / 64
	if len(b.words) < needWords || len(b.words) > 2*needWords {
		t.Fatalf("words = %d, want within [%d, %d]", len(b.words), needWords, 2*needWords)
	}
	if !b.Get(0) || !b.Get(7) || b.Get(1) || b.Get(n+100) {
		t.Fatal("membership wrong at scale")
	}
	last := int64(-1)
	seen := 0
	b.ForEach(func(i uint32) {
		if int64(i) <= last || i%7 != 0 {
			t.Fatalf("ForEach yielded %d after %d", i, last)
		}
		last = int64(i)
		seen++
	})
	if seen != want {
		t.Fatalf("ForEach yielded %d indices, want %d", seen, want)
	}
}

// TestConcurrentReadOnlyAccess exercises the shard kernel's sharing pattern
// under the race detector: after single-threaded construction, many
// goroutines read the same Interner and Bitset concurrently (shards read
// each other's static rosters during window merges, never writing). Any
// hidden mutation in a read path — lazy growth, memoization — would be a
// determinism bug, and -race turns it into a test failure.
func TestConcurrentReadOnlyAccess(t *testing.T) {
	const n = 100_000
	var in Interner
	var b Bitset
	for id := wire.NodeID(1); id <= n; id++ {
		i := in.Index(id)
		if id%3 == 0 {
			b.Set(i)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for id := wire.NodeID(1 + g); id <= n; id += 8 {
				i, ok := in.Lookup(id)
				if !ok || in.NodeID(i) != id {
					t.Errorf("goroutine %d: round trip failed for %d", g, id)
					return
				}
				if got, want := b.Get(i), id%3 == 0; got != want {
					t.Errorf("goroutine %d: Get(%d) = %v, want %v", g, i, got, want)
					return
				}
			}
			if b.Count() != n/3 {
				t.Errorf("goroutine %d: Count = %d, want %d", g, b.Count(), n/3)
			}
		}(g)
	}
	wg.Wait()
}
