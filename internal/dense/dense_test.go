package dense

import (
	"math/rand"
	"testing"

	"clusterfds/internal/wire"
)

func TestInternerAssignsStableConsecutiveIndices(t *testing.T) {
	var in Interner
	ids := []wire.NodeID{7, 3, 7, 100, 3, 1}
	want := []uint32{0, 1, 0, 2, 1, 3}
	for k, id := range ids {
		if got := in.Index(id); got != want[k] {
			t.Fatalf("Index(%d) call %d = %d, want %d", id, k, got, want[k])
		}
	}
	if in.Len() != 4 {
		t.Fatalf("Len = %d, want 4", in.Len())
	}
	for _, id := range []wire.NodeID{7, 3, 100, 1} {
		i, ok := in.Lookup(id)
		if !ok || in.NodeID(i) != id {
			t.Fatalf("round trip failed for %d: (%d, %v)", id, i, ok)
		}
	}
	if _, ok := in.Lookup(42); ok {
		t.Fatal("Lookup invented an index for an unseen ID")
	}
}

func TestInternerLargeIDsUseMapFallback(t *testing.T) {
	var in Interner
	big := wire.NodeID(1 << 20)
	i1 := in.Index(big)
	i2 := in.Index(5)
	if i1 != 0 || i2 != 1 {
		t.Fatalf("indices = %d, %d; want 0, 1", i1, i2)
	}
	if got := in.Index(big); got != i1 {
		t.Fatalf("big ID not stable: %d then %d", i1, got)
	}
	if j, ok := in.Lookup(big); !ok || j != i1 || in.NodeID(j) != big {
		t.Fatalf("big ID round trip failed: (%d, %v)", j, ok)
	}
}

func TestBitsetBasics(t *testing.T) {
	var b Bitset
	if b.Get(0) || b.Get(1000) || b.Count() != 0 {
		t.Fatal("zero-value bitset not empty")
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(300)
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4", b.Count())
	}
	for _, i := range []uint32{0, 63, 64, 300} {
		if !b.Get(i) {
			t.Fatalf("Get(%d) = false after Set", i)
		}
	}
	if b.Get(1) || b.Get(299) || b.Get(100000) {
		t.Fatal("spurious membership")
	}
	b.Unset(63)
	b.Unset(100000) // out of range: no-op
	if b.Get(63) || b.Count() != 3 {
		t.Fatal("Unset failed")
	}
	var got []uint32
	b.ForEach(func(i uint32) { got = append(got, i) })
	want := []uint32{0, 64, 300}
	if len(got) != len(want) {
		t.Fatalf("ForEach = %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("ForEach = %v, want %v (ascending order)", got, want)
		}
	}
	cap0 := len(b.words)
	b.Clear()
	if b.Count() != 0 || len(b.words) != cap0 {
		t.Fatal("Clear must empty in place, retaining capacity")
	}
}

func TestBitsetMatchesMapModel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var b Bitset
	model := map[uint32]bool{}
	for op := 0; op < 20000; op++ {
		i := uint32(rng.Intn(2000))
		switch rng.Intn(3) {
		case 0:
			b.Set(i)
			model[i] = true
		case 1:
			b.Unset(i)
			delete(model, i)
		case 2:
			if b.Get(i) != model[i] {
				t.Fatalf("op %d: Get(%d) = %v, model %v", op, i, b.Get(i), model[i])
			}
		}
	}
	if b.Count() != len(model) {
		t.Fatalf("Count = %d, model %d", b.Count(), len(model))
	}
	n := 0
	b.ForEach(func(i uint32) {
		if !model[i] {
			t.Fatalf("ForEach yielded %d not in model", i)
		}
		n++
	})
	if n != len(model) {
		t.Fatalf("ForEach yielded %d indices, model %d", n, len(model))
	}
}

func TestBitsetSteadyStateAllocFree(t *testing.T) {
	var b Bitset
	for i := uint32(0); i < 512; i++ {
		b.Set(i)
	}
	allocs := testing.AllocsPerRun(100, func() {
		b.Clear()
		for i := uint32(0); i < 512; i += 3 {
			b.Set(i)
		}
		s := 0
		b.ForEach(func(uint32) { s++ })
		if s == 0 {
			t.Fatal("no bits")
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state epoch cycle allocates %.1f times, want 0", allocs)
	}
}
