package par

import (
	"testing"

	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// buildAndRun runs the canonical determinism scenario: 200 hosts, a crash
// wave at epoch 3, eight epochs total.
func buildAndRun(t *testing.T, workers, strips int) (*Engine, string, []wire.NodeID) {
	t.Helper()
	e := Build(Config{
		Seed: 42, Nodes: 200, FieldSide: 700, LossProb: 0.05,
		Strips: strips, Workers: workers, CollectTrace: true,
	})
	e.RunEpochs(3)
	victims := e.CrashRandomAt(e.Now()+sim.Time(1e9), 5)
	e.RunEpochs(5)
	return e, e.TraceHash(), victims
}

// TestWorkerCountInvariance is the engine's core contract: the trace hash,
// the victim picks, and the message tallies are bit-identical at every
// worker count.
func TestWorkerCountInvariance(t *testing.T) {
	e1, h1, v1 := buildAndRun(t, 1, 0)
	for _, workers := range []int{2, 4, 7} {
		e, h, v := buildAndRun(t, workers, 0)
		if h != h1 {
			t.Fatalf("workers=%d trace hash %s != workers=1 hash %s", workers, h, h1)
		}
		if len(v) != len(v1) {
			t.Fatalf("workers=%d victim count %d != %d", workers, len(v), len(v1))
		}
		for i := range v {
			if v[i] != v1[i] {
				t.Fatalf("workers=%d victims %v != %v", workers, v, v1)
			}
		}
		if e.Sends() != e1.Sends() || e.Deliveries() != e1.Deliveries() {
			t.Fatalf("workers=%d tallies (%d,%d) != (%d,%d)",
				workers, e.Sends(), e.Deliveries(), e1.Sends(), e1.Deliveries())
		}
	}
}

// TestCrashesAreDetected checks the stack actually runs: after five epochs,
// most operational hosts know about a wave of crashes.
func TestCrashesAreDetected(t *testing.T) {
	e, _, victims := buildAndRun(t, 4, 0)
	if len(victims) != 5 {
		t.Fatalf("expected 5 victims, got %v", victims)
	}
	total, reached := 0, 0
	for _, v := range victims {
		aware, operational := e.Completeness(v)
		if operational == 0 {
			t.Fatalf("no operational hosts")
		}
		total++
		if aware > operational/2 {
			reached++
		}
	}
	if reached < 3 {
		t.Fatalf("only %d/%d victims detected by a majority", reached, total)
	}
}

// TestStripCountChangesAreExplicit documents that Strips (unlike Workers) is
// part of the configuration: different partitions are different timelines.
func TestStripCountChangesAreExplicit(t *testing.T) {
	_, h1, _ := buildAndRun(t, 2, 2)
	_, h4, _ := buildAndRun(t, 2, 4)
	if h1 == h4 {
		t.Log("note: strip counts 2 and 4 happened to agree; not a failure")
	}
}
