// Package par runs one full-fidelity replica — real node.Host runtimes with
// the production cluster/fds/intercluster protocol stack — across a pool of
// worker threads, putting idle cores to work inside a single simulation
// instead of only across Monte-Carlo replicas.
//
// # Architecture
//
// The field is cut into a FIXED number of vertical strips (a pure function of
// the configuration, never of the worker count). Each strip owns the hosts
// whose x-coordinate falls inside it: their own *sim.Kernel (heap, virtual
// clock), their trace buffer, and their decode scratch. Strip width defaults
// to the radio range, so most traffic — everything within a cluster, and most
// inter-cluster relays — stays strip-local and goes through the strip kernel
// exactly as in the serial engine.
//
// Strips advance in lockstep conservative windows of width W = Radio.MinDelay,
// the lower bound on delivery latency (the same lookahead internal/shard uses
// at million-host scale). An event processed at time t inside window
// (t0, t0+W] can reach another strip only through a radio delivery landing at
// t+delay >= t+W > t0+W-ε — at or after the window's end — so strips process
// a window in parallel with no communication. Cross-strip deliveries are
// batched into per-(src,dst) outboxes and injected at the serial window
// barrier. Between bursts of activity the barrier jumps the window start to
// the earliest pending event over all strips, so the 10-second idle stretch
// between FDS epochs costs one barrier, not ten thousand.
//
// # Determinism at every worker count
//
// Results are a pure function of Config; the Workers field changes wall-clock
// time only. That holds by construction:
//
//   - The strip partition and the window grid are computed serially from the
//     configuration and the strips' (deterministic) event streams.
//   - Every random draw a protocol makes comes from its host's private
//     *rand.Rand, seeded from (Seed, NID) — never from a kernel shared with
//     other hosts. Loss and delay are drawn by the SENDER, from the sender's
//     stream, for every host on the sender's static neighbor roster
//     regardless of the neighbor's aliveness (aliveness is checked at
//     delivery, in the receiver's strip), so stream consumption never depends
//     on remote state.
//   - Cross-strip deliveries are injected at the barrier in sorted
//     (at, src strip, src seq) order, where src seq is the outbox append
//     counter — itself deterministic because strip execution is.
//   - Trace events are buffered per strip and folded strip-by-strip into the
//     hash; workers never touch another strip's buffer.
//
// The topology is static (no mobility, no replenishment) and there is no
// global monitor: completeness is probed serially after the run.
package par

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"clusterfds/internal/cluster"
	"clusterfds/internal/fds"
	"clusterfds/internal/geo"
	"clusterfds/internal/intercluster"
	"clusterfds/internal/node"
	"clusterfds/internal/radio"
	"clusterfds/internal/sim"
	"clusterfds/internal/trace"
	"clusterfds/internal/transport"
	"clusterfds/internal/wire"
)

// Config describes a parallel replica. Results are a pure function of every
// field except Workers.
type Config struct {
	// Seed drives all randomness: placement, per-host streams, crash picks.
	Seed int64
	// Nodes is the host population, numbered 1..Nodes.
	Nodes int
	// FieldSide is the deployment square's edge length in meters.
	FieldSide float64
	// LossProb is the per-receiver loss probability p.
	LossProb float64
	// Timing is the protocol schedule; zero means cluster.DefaultTiming().
	Timing cluster.Timing
	// Strips is the fixed partition count; values < 1 pick
	// max(1, min(16, FieldSide/Range)) — strip width ≈ the radio range.
	Strips int
	// Workers is the pool draining strips inside a window; < 1 means 1. Any
	// value produces bit-identical results.
	Workers int
	// CollectTrace buffers protocol trace events per strip so TraceHash
	// covers them; leave false in benchmarks (hosts then skip building
	// detail strings entirely).
	CollectTrace bool
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 100
	}
	if c.FieldSide <= 0 {
		c.FieldSide = 500
	}
	if !c.Timing.Valid() {
		c.Timing = cluster.DefaultTiming()
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	return c
}

// crossEntry is one cross-strip delivery waiting at the window barrier.
type crossEntry struct {
	at      sim.Time
	src     int32  // source strip, part of the canonical injection key
	seq     uint32 // source strip's outbox append counter
	to      uint32 // receiver host index
	from    wire.NodeID
	payload []byte
}

// strip is one vertical slice of the field with its own kernel and buffers.
// During a window, a strip is touched by exactly one worker; everything in
// here (and every host row the strip owns) is single-threaded by that.
type strip struct {
	k       *sim.Kernel
	out     [][]crossEntry // per destination strip, this window's sends
	seqCtr  uint32
	scratch *wire.DecodeScratch
	events  []trace.Event // protocol trace buffer (CollectTrace)
	sends   uint64
	deliv   uint64
}

// stripSink appends trace events to the owning strip's buffer.
type stripSink struct{ s *strip }

func (ss stripSink) Emit(e trace.Event) { ss.s.events = append(ss.s.events, e) }

// hostRuntime is the per-host transport.Runtime facade: the strip's kernel
// for time and scheduling, a private seeded source for randomness.
type hostRuntime struct {
	k   *sim.Kernel
	rng *rand.Rand
}

func (r *hostRuntime) Now() sim.Time                                 { return r.k.Now() }
func (r *hostRuntime) Schedule(d sim.Time, fn sim.Handler) sim.Timer { return r.k.Schedule(d, fn) }
func (r *hostRuntime) At(at sim.Time, fn sim.Handler) sim.Timer      { return r.k.At(at, fn) }
func (r *hostRuntime) Rand() *rand.Rand                              { return r.rng }
func (r *hostRuntime) ScheduleArg(d sim.Time, fn sim.ArgHandler, a any) sim.Timer {
	return r.k.ScheduleArg(d, fn, a)
}
func (r *hostRuntime) AtBatched(at sim.Time, fn sim.ArgHandler, a any) { r.k.AtBatched(at, fn, a) }

var (
	_ transport.Runtime    = (*hostRuntime)(nil)
	_ transport.ArgClock   = (*hostRuntime)(nil)
	_ transport.BatchClock = (*hostRuntime)(nil)
)

// stripPort is the transport facade handed to the hosts of one strip.
type stripPort struct {
	e *Engine
	s int32
}

func (p *stripPort) Attach(r transport.Receiver)           { p.e.hosts[r.ID()-1] = r.(*node.Host) }
func (p *stripPort) Send(from wire.NodeID, m wire.Message) { p.e.send(p.s, from, m) }
func (p *stripPort) Energy(id wire.NodeID) float64         { return p.e.energyOf(id) }
func (p *stripPort) Neighbors(at geo.Point, exclude wire.NodeID) []wire.NodeID {
	return p.e.neighborsAt(at, exclude)
}
func (p *stripPort) UpdatePos(wire.NodeID, geo.Point) {
	panic("par: static topology — mobility is not supported")
}

// parDelivery is one in-flight strip-local delivery.
type parDelivery struct {
	e       *Engine
	s       int32
	to      uint32
	from    wire.NodeID
	payload []byte
}

// Engine is a built, runnable parallel replica.
type Engine struct {
	cfg    Config
	params radio.Params

	strips  []strip
	stripOf []int32 // host idx -> strip

	hosts []*node.Host
	fdss  []*fds.Protocol
	cls   []*cluster.Protocol
	rngs  []*rand.Rand
	pos   []geo.Point
	spent []float64 // per-host energy expenditure; row owned by its strip

	// Static neighbor CSR in ascending receiver index per sender.
	nbStart []int32
	nbList  []uint32

	crashSched map[wire.NodeID]sim.Time // harness-side crash schedule
	ctrl       *rand.Rand               // control stream for CrashRandom picks

	epochsRun int
	now       sim.Time
}

// deliverLocalFn completes one strip-local delivery: aliveness check at the
// receiver, energy charge, decode into the strip scratch, dispatch.
var deliverLocalFn sim.ArgHandler = func(a any) {
	d := a.(*parDelivery)
	d.e.deliver(d.s, d.to, d.from, d.payload)
}

func (e *Engine) deliver(s int32, to uint32, from wire.NodeID, payload []byte) {
	h := e.hosts[to]
	if h == nil || !h.Operational() {
		return
	}
	e.spent[to] += e.params.RxByteCost * float64(len(payload))
	m, err := wire.DecodeInto(e.strips[s].scratch, payload)
	if err != nil {
		panic(fmt.Sprintf("par: decode on delivery: %v", err))
	}
	e.strips[s].deliv++
	h.Deliver(m, from)
}

// send broadcasts m from host `from` (which lives in strip s). Loss and delay
// are drawn from the sender's stream for every static roster neighbor, in
// ascending receiver order, independent of receiver state.
func (e *Engine) send(s int32, from wire.NodeID, m wire.Message) {
	idx := uint32(from - 1)
	payload := wire.Encode(m)
	e.spent[idx] += e.params.TxBaseCost + e.params.TxByteCost*float64(len(payload))
	st := &e.strips[s]
	st.sends++
	rng := e.rngs[idx]
	span := int64(e.params.MaxDelay - e.params.MinDelay)
	now := st.k.Now()
	for _, nb := range e.nbList[e.nbStart[idx]:e.nbStart[idx+1]] {
		if p := e.params.LossProb; p > 0 && rng.Float64() < p {
			continue
		}
		delay := e.params.MinDelay
		if span > 0 {
			delay += sim.Time(rng.Int63n(span + 1))
		}
		if d := e.stripOf[nb]; d == s {
			st.k.ScheduleArg(delay, deliverLocalFn, &parDelivery{
				e: e, s: s, to: nb, from: from, payload: payload,
			})
		} else {
			st.out[d] = append(st.out[d], crossEntry{
				at: now + delay, src: s, seq: st.seqCtr,
				to: nb, from: from, payload: payload,
			})
			st.seqCtr++
		}
	}
}

// energyOf mirrors the radio medium's budget formula: initial plus harvest
// minus expenditure, floored at zero. Only the owning strip calls it (via the
// host's own protocols), so reading the spent row is race-free.
func (e *Engine) energyOf(id wire.NodeID) float64 {
	idx := id - 1
	t := e.strips[e.stripOf[idx]].k.Now()
	v := e.params.InitialEnergy + e.params.HarvestRate*float64(t)/1e9 - e.spent[idx]
	if v < 0 {
		return 0
	}
	return v
}

// neighborsAt scans the static placement for operational hosts in range of
// at. Provided for transport completeness; the cluster stack never calls it
// on the hot path.
func (e *Engine) neighborsAt(at geo.Point, exclude wire.NodeID) []wire.NodeID {
	var out []wire.NodeID
	r2 := e.params.Range * e.params.Range
	for i, p := range e.pos {
		id := wire.NodeID(i + 1)
		if id == exclude || !e.hosts[i].Operational() {
			continue
		}
		dx, dy := p.X-at.X, p.Y-at.Y
		if dx*dx+dy*dy <= r2 {
			out = append(out, id)
		}
	}
	return out
}

// Build lays out the field, partitions it into strips, and boots every host.
func Build(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	params := radio.Defaults(cfg.LossProb)

	nStrips := cfg.Strips
	if nStrips < 1 {
		nStrips = int(cfg.FieldSide / params.Range)
		if nStrips > 16 {
			nStrips = 16
		}
		if nStrips < 1 {
			nStrips = 1
		}
	}

	n := cfg.Nodes
	e := &Engine{
		cfg:        cfg,
		params:     params,
		strips:     make([]strip, nStrips),
		stripOf:    make([]int32, n),
		hosts:      make([]*node.Host, n),
		fdss:       make([]*fds.Protocol, n),
		cls:        make([]*cluster.Protocol, n),
		rngs:       make([]*rand.Rand, n),
		pos:        make([]geo.Point, n),
		spent:      make([]float64, n),
		crashSched: make(map[wire.NodeID]sim.Time),
		ctrl:       rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D)),
	}
	for s := range e.strips {
		e.strips[s].k = sim.New(cfg.Seed + int64(s) + 1)
		e.strips[s].out = make([][]crossEntry, nStrips)
		e.strips[s].scratch = wire.NewDecodeScratch()
	}

	// Placement: one (x, y) pair per host in NID order from a dedicated
	// source — a pure function of Seed, independent of Strips.
	place := rand.New(rand.NewSource(cfg.Seed))
	stripW := cfg.FieldSide / float64(nStrips)
	for i := 0; i < n; i++ {
		e.pos[i] = geo.Point{X: place.Float64() * cfg.FieldSide, Y: place.Float64() * cfg.FieldSide}
		s := int(e.pos[i].X / stripW)
		if s >= nStrips {
			s = nStrips - 1
		}
		e.stripOf[i] = int32(s)
		e.rngs[i] = rand.New(rand.NewSource(cfg.Seed ^ (int64(i+1) * 0x9E3779B97F4A7C)))
	}

	// Static neighbor CSR: ascending receiver index per sender.
	e.nbStart = make([]int32, n+1)
	r2 := params.Range * params.Range
	inRange := func(a, b int) bool {
		dx, dy := e.pos[a].X-e.pos[b].X, e.pos[a].Y-e.pos[b].Y
		return dx*dx+dy*dy <= r2
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && inRange(i, j) {
				e.nbStart[i+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		e.nbStart[i+1] += e.nbStart[i]
	}
	e.nbList = make([]uint32, e.nbStart[n])
	fill := make([]int32, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && inRange(i, j) {
				e.nbList[e.nbStart[i]+fill[i]] = uint32(j)
				fill[i]++
			}
		}
	}

	// Hosts: the production stack on a per-host runtime facade, booted at
	// time zero exactly like scenario.Build.
	ports := make([]*stripPort, nStrips)
	for s := range ports {
		ports[s] = &stripPort{e: e, s: int32(s)}
	}
	for i := 0; i < n; i++ {
		id := wire.NodeID(i + 1)
		s := e.stripOf[i]
		var sink trace.Sink = trace.Nop{}
		if cfg.CollectTrace {
			sink = stripSink{s: &e.strips[s]}
		}
		rt := &hostRuntime{k: e.strips[s].k, rng: e.rngs[i]}
		h := node.New(rt, ports[s], id, e.pos[i], node.WithTrace(sink))
		cl := cluster.New(cluster.DefaultConfig())
		f := fds.New(fds.DefaultConfig(cfg.Timing), cl)
		fw := intercluster.New(intercluster.DefaultConfig(cfg.Timing), cl, f)
		h.Use(cl)
		h.Use(f)
		h.Use(fw)
		e.cls[i] = cl
		e.fdss[i] = f
		h.Boot()
	}
	return e
}

// CrashAt schedules a fail-stop crash of id at the given absolute time, which
// must not be earlier than the last RunEpochs horizon. Call between runs
// (serial), never concurrently with one.
func (e *Engine) CrashAt(at sim.Time, id wire.NodeID) {
	if id < 1 || int(id) > len(e.hosts) {
		panic(fmt.Sprintf("par: no host %v", id))
	}
	h := e.hosts[id-1]
	e.crashSched[id] = at
	e.strips[e.stripOf[id-1]].k.At(at, func() {
		if !h.Crashed() {
			h.Crash()
		}
	})
}

// CrashRandomAt schedules count crashes of distinct not-yet-scheduled hosts
// at the given time, picked deterministically from the control stream.
func (e *Engine) CrashRandomAt(at sim.Time, count int) []wire.NodeID {
	var candidates []wire.NodeID
	for i := range e.hosts {
		id := wire.NodeID(i + 1)
		if _, done := e.crashSched[id]; !done && !e.hosts[i].Crashed() {
			candidates = append(candidates, id)
		}
	}
	e.ctrl.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if count > len(candidates) {
		count = len(candidates)
	}
	picked := append([]wire.NodeID(nil), candidates[:count]...)
	for _, id := range picked {
		e.CrashAt(at, id)
	}
	sort.Slice(picked, func(i, j int) bool { return picked[i] < picked[j] })
	return picked
}

// RunEpochs advances the replica through n more heartbeat intervals.
func (e *Engine) RunEpochs(n int) {
	e.epochsRun += n
	e.runTo(e.cfg.Timing.EpochStart(wire.Epoch(e.epochsRun)))
}

// runTo is the conservative window loop: jump to the earliest pending event,
// drain one W-wide window across all strips in parallel, merge outboxes at
// the serial barrier, repeat.
func (e *Engine) runTo(deadline sim.Time) {
	w := e.params.MinDelay
	nStrips := len(e.strips)
	nw := e.cfg.Workers
	if nw > nStrips {
		nw = nStrips
	}

	var stripIdx int64
	var tend sim.Time
	drain := func() {
		for {
			i := atomic.AddInt64(&stripIdx, 1) - 1
			if i >= int64(nStrips) {
				return
			}
			e.strips[i].k.RunUntil(tend)
		}
	}

	var start chan sim.Time
	var done chan struct{}
	if nw > 1 {
		start = make(chan sim.Time)
		done = make(chan struct{})
		for i := 0; i < nw-1; i++ {
			go func() {
				for range start {
					drain()
					done <- struct{}{}
				}
			}()
		}
		defer close(start)
	}

	for {
		// Serial barrier: find the earliest pending event anywhere.
		tmin := deadline + 1
		for s := range e.strips {
			if t, ok := e.strips[s].k.NextEventAt(); ok && t < tmin {
				tmin = t
			}
		}
		if tmin > deadline {
			break
		}
		tend = tmin + w
		if tend > deadline {
			tend = deadline
		}

		// Parallel window: every strip advances to tend in isolation.
		atomic.StoreInt64(&stripIdx, 0)
		if nw > 1 {
			for i := 0; i < nw-1; i++ {
				start <- tend
			}
			drain()
			for i := 0; i < nw-1; i++ {
				<-done
			}
		} else {
			drain()
		}

		e.mergeOutboxes()
	}

	// Advance every idle clock to the deadline so the next call resumes
	// from a common now.
	for s := range e.strips {
		e.strips[s].k.RunUntil(deadline)
	}
	e.mergeOutboxes()
	e.now = deadline
}

// mergeOutboxes injects every pending cross-strip delivery into its
// destination kernel in canonical (at, src, seq) order. Serial.
func (e *Engine) mergeOutboxes() {
	for d := range e.strips {
		dst := &e.strips[d]
		var pend []crossEntry
		for s := range e.strips {
			if box := e.strips[s].out[d]; len(box) > 0 {
				pend = append(pend, box...)
				e.strips[s].out[d] = box[:0]
			}
		}
		if len(pend) == 0 {
			continue
		}
		sort.Slice(pend, func(i, j int) bool {
			a, b := pend[i], pend[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.seq < b.seq
		})
		now := dst.k.Now()
		for i := range pend {
			ce := pend[i]
			dst.k.ScheduleArg(ce.at-now, deliverLocalFn, &parDelivery{
				e: e, s: int32(d), to: ce.to, from: ce.from, payload: ce.payload,
			})
		}
	}
}

// Now returns the last barrier time.
func (e *Engine) Now() sim.Time { return e.now }

// Strips returns the fixed partition count.
func (e *Engine) Strips() int { return len(e.strips) }

// Sends returns the fleet-wide transmission count.
func (e *Engine) Sends() uint64 {
	var t uint64
	for s := range e.strips {
		t += e.strips[s].sends
	}
	return t
}

// Deliveries returns the fleet-wide delivery count.
func (e *Engine) Deliveries() uint64 {
	var t uint64
	for s := range e.strips {
		t += e.strips[s].deliv
	}
	return t
}

// Completeness reports, for a crashed subject, how many operational hosts
// currently suspect it and how many operational hosts there are. Serial.
func (e *Engine) Completeness(subject wire.NodeID) (aware, operational int) {
	for i := range e.hosts {
		id := wire.NodeID(i + 1)
		if id == subject || e.hosts[i].Crashed() {
			continue
		}
		operational++
		if e.fdss[i].IsSuspected(subject) {
			aware++
		}
	}
	return aware, operational
}

// TraceHash folds the per-strip trace buffers (strip order, emission order
// within a strip) and every host's final failure knowledge into one hex
// digest — the parallel path's golden fingerprint. Serial.
func (e *Engine) TraceHash() string {
	h := sha256.New()
	var b [8]byte
	for s := range e.strips {
		for _, ev := range e.strips[s].events {
			binary.LittleEndian.PutUint64(b[:], uint64(ev.At))
			h.Write(b[:])
			h.Write([]byte(ev.Type))
			binary.LittleEndian.PutUint64(b[:], uint64(ev.Node))
			h.Write(b[:])
			h.Write([]byte(ev.Detail))
			h.Write([]byte{'\n'})
		}
	}
	for i := range e.hosts {
		for _, f := range e.fdss[i].KnownFailed() {
			binary.LittleEndian.PutUint64(b[:], uint64(i+1)<<32|uint64(f))
			h.Write(b[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
