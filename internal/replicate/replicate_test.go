package replicate

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
)

// TestOrderedResults checks that results land in replica order regardless of
// worker count or chunking.
func TestOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 33} {
		for _, chunk := range []int{0, 1, 7} {
			out, err := RunOpts(Opts{Workers: workers, ChunkSize: chunk}, 100, 42,
				func(i int, _ *rand.Rand) int { return i * i })
			if err != nil {
				t.Fatalf("workers=%d chunk=%d: %v", workers, chunk, err)
			}
			if len(out) != 100 {
				t.Fatalf("workers=%d: got %d results", workers, len(out))
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("workers=%d chunk=%d: out[%d] = %d, want %d", workers, chunk, i, v, i*i)
				}
			}
		}
	}
}

// TestDeterministicRNG checks that each replica's random stream is a pure
// function of (seed, index): identical across worker counts and runs.
func TestDeterministicRNG(t *testing.T) {
	draw := func(workers int) []int64 {
		out, err := RunOpts(Opts{Workers: workers}, 64, 7,
			func(i int, rng *rand.Rand) int64 { return rng.Int63() })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := draw(1)
	for _, workers := range []int{2, 4, 8} {
		par := draw(workers)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: replica %d drew %d, serial drew %d", workers, i, par[i], serial[i])
			}
		}
	}
	// And the stream matches the documented derivation.
	for i := range serial {
		if want := RNG(7, i).Int63(); serial[i] != want {
			t.Fatalf("replica %d drew %d, RNG(7,%d) gives %d", i, serial[i], i, want)
		}
	}
}

// TestSeedDerivation checks the SplitMix64 derivation spreads adjacent
// indices and differing experiment seeds.
func TestSeedDerivation(t *testing.T) {
	seen := make(map[int64]int)
	for i := 0; i < 10000; i++ {
		s := Seed(1, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("Seed(1,%d) == Seed(1,%d) == %d", i, prev, s)
		}
		seen[s] = i
	}
	if Seed(1, 0) == Seed(2, 0) {
		t.Error("different experiment seeds map to the same replica seed")
	}
	if Seed(1, 5) == 1+5 {
		t.Error("derivation is the raw sum; wanted a mixed seed")
	}
}

// TestContextCancel checks that a canceled context stops the run and is
// reported.
func TestContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := RunOpts(Opts{Workers: 4, ChunkSize: 1, Context: ctx}, 1000, 1,
		func(i int, _ *rand.Rand) int {
			if ran.Add(1) == 10 {
				cancel()
			}
			return i
		})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Errorf("all %d replicas ran despite cancellation", n)
	}

	// Pre-canceled context on the serial path.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	out, err := RunOpts(Opts{Workers: 1, Context: ctx2}, 5, 1,
		func(i int, _ *rand.Rand) int { return 1 })
	if err != context.Canceled {
		t.Fatalf("serial err = %v, want context.Canceled", err)
	}
	for _, v := range out {
		if v != 0 {
			t.Error("replica ran under a pre-canceled context")
		}
	}
}

// TestProgress checks the progress callback reaches n and never decreases.
func TestProgress(t *testing.T) {
	for _, workers := range []int{1, 4} {
		last, calls := 0, 0
		_, err := RunOpts(Opts{
			Workers: workers, ChunkSize: 3,
			Progress: func(done, total int) {
				calls++
				if total != 50 {
					t.Fatalf("total = %d, want 50", total)
				}
				if done < last {
					t.Fatalf("progress went backwards: %d after %d", done, last)
				}
				last = done
			},
		}, 50, 1, func(i int, _ *rand.Rand) int { return i })
		if err != nil {
			t.Fatal(err)
		}
		if last != 50 {
			t.Errorf("workers=%d: final progress %d, want 50", workers, last)
		}
		if calls == 0 {
			t.Errorf("workers=%d: progress never called", workers)
		}
	}
}

// TestEdgeCases covers n<=0, workers>n, and the Map helper.
func TestEdgeCases(t *testing.T) {
	if out := Run(0, 1, func(i int, _ *rand.Rand) int { return i }); len(out) != 0 {
		t.Errorf("n=0 returned %d results", len(out))
	}
	out, err := RunOpts(Opts{Workers: 16}, 3, 1, func(i int, _ *rand.Rand) int { return i + 1 })
	if err != nil || len(out) != 3 || out[2] != 3 {
		t.Errorf("workers>n: out=%v err=%v", out, err)
	}
	sq, err := Map(Opts{Workers: 4}, []int{2, 3, 4}, 9,
		func(i int, item int, _ *rand.Rand) int { return item * item })
	if err != nil || len(sq) != 3 || sq[0] != 4 || sq[1] != 9 || sq[2] != 16 {
		t.Errorf("Map: out=%v err=%v", sq, err)
	}
}

// TestPanicPropagates checks that a panicking body surfaces on the caller.
func TestPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("workers=%d: panic did not propagate", workers)
				}
			}()
			Run(20, 1, func(i int, _ *rand.Rand) int {
				if i == 7 {
					panic("boom")
				}
				return i
			})
		}()
	}
}

// BenchmarkRunOverhead measures the engine's per-replica overhead with a
// trivial body (the floor cost of fanning out).
func BenchmarkRunOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(64, int64(i), func(j int, rng *rand.Rand) int64 { return rng.Int63() })
	}
}
