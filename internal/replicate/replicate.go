// Package replicate fans independent, seeded simulation replicas out over a
// worker pool. Every empirical experiment in this repository — the Section 5
// Monte-Carlo cross-validation, the DCH reachability study, the scenario
// sweeps, and cmd/fdsim — repeats the same deterministic kernel thousands of
// times with different seeds; those repetitions share no state, so they
// parallelize perfectly across GOMAXPROCS cores.
//
// Determinism is the design center. Each replica i derives its own random
// stream from (seed, i) alone via a SplitMix64 mix, never from scheduling
// order, and results are collected into slot i of the output slice. A run
// with 8 workers is therefore bit-for-bit identical to a run with 1 worker,
// and to any other run with the same seed — parallelism changes wall-clock
// time, nothing else.
package replicate

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"clusterfds/internal/sim"
)

// Body is one replica: index i in [0, n) and a private random source derived
// deterministically from the experiment seed and i. The body must not share
// mutable state with other replicas; everything it touches should hang off
// the rng (e.g. a sim.Kernel seeded from Seed(seed, i)).
type Body[R any] func(i int, rng *rand.Rand) R

// Opts tunes a run. The zero value is ready to use.
type Opts struct {
	// Workers is the pool size; 0 means runtime.GOMAXPROCS(0). Workers == 1
	// runs the bodies inline on the calling goroutine, which is the exact
	// legacy serial execution (no goroutines, no channels).
	Workers int
	// ChunkSize is how many consecutive replicas a worker claims at a time;
	// 0 picks a size that gives each worker several chunks (amortizing the
	// claim while keeping the tail balanced).
	ChunkSize int
	// Progress, when non-nil, is called after chunks complete with the
	// number of finished replicas and the total. Calls are serialized and
	// done is non-decreasing, but (with several workers) a call may lag the
	// true count momentarily.
	Progress func(done, total int)
	// Context, when non-nil, cancels the run early: workers stop claiming
	// chunks once it is done and RunOpts returns ctx.Err(). Replicas that
	// already ran keep their slots; unstarted slots hold zero values.
	Context context.Context
}

// Seed derives replica i's seed from the experiment seed via sim.SplitMix64
// (Steele et al.'s finalizer — a strong mixer, so adjacent replica indices
// yield uncorrelated seeds). The derivation is a pure function of (seed, i):
// it does not depend on worker count, chunk size, or scheduling, which is
// what makes parallel runs reproducible. internal/shard derives its per-host
// streams from the same primitive.
func Seed(seed int64, i int) int64 {
	return int64(sim.SplitMix64(sim.SplitMix64(uint64(seed)) + uint64(i)))
}

// RNG returns replica i's private random source, seeded with Seed(seed, i).
func RNG(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(Seed(seed, i)))
}

// Run executes n replicas of body over a GOMAXPROCS-sized pool and returns
// their results in replica order. Output is identical to a serial loop
//
//	for i := 0; i < n; i++ { out[i] = body(i, RNG(seed, i)) }
//
// for every worker count. Panics in a body are re-raised on the caller.
func Run[R any](n int, seed int64, body Body[R]) []R {
	out, err := RunOpts(Opts{}, n, seed, body)
	if err != nil {
		// Only a context can produce an error, and Opts{} has none.
		panic("replicate: impossible error without a context: " + err.Error())
	}
	return out
}

// RunOpts is Run with explicit options. It returns the ordered results and,
// if opts.Context was canceled before all replicas ran, the context's error
// (alongside the partial results).
func RunOpts[R any](opts Opts, n int, seed int64, body Body[R]) ([]R, error) {
	if body == nil {
		panic("replicate: nil body")
	}
	if n <= 0 {
		return nil, ctxErr(opts.Context)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}

	out := make([]R, n)

	if workers == 1 {
		// Inline serial path: the legacy execution, byte for byte.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			out[i] = body(i, RNG(seed, i))
			if opts.Progress != nil {
				opts.Progress(i+1, n)
			}
		}
		return out, nil
	}

	chunk := opts.ChunkSize
	if chunk <= 0 {
		// Aim for ~4 chunks per worker so stragglers re-balance, floor 1.
		chunk = n / (workers * 4)
		if chunk < 1 {
			chunk = 1
		}
	}

	var (
		next      atomic.Int64 // next unclaimed replica index
		done      atomic.Int64 // completed replicas, for progress reporting
		prog      sync.Mutex   // serializes Progress callbacks
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	report := func() {
		if opts.Progress == nil {
			return
		}
		prog.Lock()
		opts.Progress(int(done.Load()), n)
		prog.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				if ctx.Err() != nil {
					return
				}
				start := int(next.Add(int64(chunk))) - chunk
				if start >= n {
					return
				}
				end := start + chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					out[i] = body(i, RNG(seed, i))
				}
				done.Add(int64(end - start))
				report()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out, ctxErr(ctx)
}

// ctxErr returns ctx.Err() tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Map is a convenience over Run for sweeping a parameter slice: it runs
// body(i, items[i], rng) for every item, in parallel, preserving order.
func Map[T, R any](opts Opts, items []T, seed int64, body func(i int, item T, rng *rand.Rand) R) ([]R, error) {
	return RunOpts(opts, len(items), seed, func(i int, rng *rand.Rand) R {
		return body(i, items[i], rng)
	})
}
