package radio

import (
	"math"
	"testing"
	"time"

	"clusterfds/internal/geo"
	"clusterfds/internal/sim"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

// stubNode is a minimal Receiver recording deliveries.
type stubNode struct {
	id       wire.NodeID
	pos      geo.Point
	crashed  bool
	received []receivedMsg
}

type receivedMsg struct {
	msg  wire.Message
	from wire.NodeID
	at   sim.Time
}

func (s *stubNode) ID() wire.NodeID   { return s.id }
func (s *stubNode) Pos() geo.Point    { return s.pos }
func (s *stubNode) Operational() bool { return !s.crashed }
func (s *stubNode) Deliver(m wire.Message, from wire.NodeID) {
	// Per the medium's delivery contract the message is backed by this
	// receiver's decode scratch and valid only during the call; a recorder
	// that keeps history must clone.
	s.received = append(s.received, receivedMsg{msg: wire.Clone(m), from: from})
}

// lossless returns params with zero loss and fixed delay for deterministic
// assertions.
func lossless() Params {
	p := Defaults(0)
	p.MinDelay, p.MaxDelay = sim.Time(time.Millisecond), sim.Time(time.Millisecond)
	return p
}

func makeField(t *testing.T, k *sim.Kernel, params Params, positions []geo.Point) (*Medium, []*stubNode) {
	t.Helper()
	m := New(k, params)
	nodes := make([]*stubNode, len(positions))
	for i, pos := range positions {
		nodes[i] = &stubNode{id: wire.NodeID(i + 1), pos: pos}
		m.Attach(nodes[i])
	}
	return m, nodes
}

func TestPromiscuousDelivery(t *testing.T) {
	k := sim.New(1)
	// Node 1 at origin; 2 and 3 in range; 4 out of range.
	m, nodes := makeField(t, k, lossless(), []geo.Point{
		{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 0, Y: 99}, {X: 150, Y: 0},
	})
	m.Send(1, &wire.Heartbeat{NID: 1, Epoch: 1})
	k.Run()

	if len(nodes[0].received) != 0 {
		t.Error("sender received its own message")
	}
	for _, in := range []int{1, 2} {
		if len(nodes[in].received) != 1 {
			t.Errorf("node %d received %d messages, want 1 (promiscuous)", in+1, len(nodes[in].received))
		}
	}
	if len(nodes[3].received) != 0 {
		t.Error("out-of-range node received a message")
	}
	hb, ok := nodes[1].received[0].msg.(*wire.Heartbeat)
	if !ok || hb.NID != 1 || hb.Epoch != 1 {
		t.Errorf("delivered message corrupted: %#v", nodes[1].received[0].msg)
	}
	if nodes[1].received[0].from != 1 {
		t.Errorf("from = %v, want 1", nodes[1].received[0].from)
	}
}

func TestBoundaryExactlyInRange(t *testing.T) {
	k := sim.New(1)
	m, nodes := makeField(t, k, lossless(), []geo.Point{
		{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 100.001, Y: 0},
	})
	m.Send(1, &wire.Heartbeat{NID: 1})
	k.Run()
	if len(nodes[1].received) != 1 {
		t.Error("node exactly at range R should receive")
	}
	if len(nodes[2].received) != 0 {
		t.Error("node just beyond R should not receive")
	}
}

func TestCrashedSenderSilent(t *testing.T) {
	k := sim.New(1)
	m, nodes := makeField(t, k, lossless(), []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}})
	nodes[0].crashed = true
	m.Send(1, &wire.Heartbeat{NID: 1})
	k.Run()
	if len(nodes[1].received) != 0 {
		t.Error("crashed sender transmitted")
	}
	if m.Sent(wire.KindHeartbeat) != 0 {
		t.Error("crashed sender counted as tx")
	}
}

func TestCrashedReceiverDropsAtDelivery(t *testing.T) {
	k := sim.New(1)
	m, nodes := makeField(t, k, lossless(), []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}})
	m.Send(1, &wire.Heartbeat{NID: 1})
	// Crash receiver before the delivery event fires.
	nodes[1].crashed = true
	k.Run()
	if len(nodes[1].received) != 0 {
		t.Error("crashed receiver got a delivery")
	}
}

func TestUnattachedSenderIgnored(t *testing.T) {
	k := sim.New(1)
	m, _ := makeField(t, k, lossless(), []geo.Point{{X: 0, Y: 0}})
	m.Send(999, &wire.Heartbeat{NID: 999}) // must not panic
	k.Run()
}

func TestTotalLossDropsEverything(t *testing.T) {
	params := Defaults(1.0)
	k := sim.New(1)
	m, nodes := makeField(t, k, params, []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}})
	for i := 0; i < 20; i++ {
		m.Send(1, &wire.Heartbeat{NID: 1})
	}
	k.Run()
	if len(nodes[1].received) != 0 {
		t.Error("p=1 should lose every message")
	}
	if m.Dropped() != 20 {
		t.Errorf("Dropped = %d, want 20", m.Dropped())
	}
}

func TestLossRateStatistical(t *testing.T) {
	const p = 0.3
	params := Defaults(p)
	k := sim.New(42)
	m, nodes := makeField(t, k, params, []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}})
	const n = 20000
	for i := 0; i < n; i++ {
		m.Send(1, &wire.Heartbeat{NID: 1})
	}
	k.Run()
	got := 1 - float64(len(nodes[1].received))/n
	if math.Abs(got-p) > 0.02 {
		t.Errorf("empirical loss %v, want ~%v", got, p)
	}
}

func TestPerLinkLossIndependent(t *testing.T) {
	// One sender, two receivers: loss must be drawn independently per
	// receiver, so the probability both miss is ~p^2.
	const p = 0.5
	params := Defaults(p)
	k := sim.New(7)
	m, nodes := makeField(t, k, params, []geo.Point{
		{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10},
	})
	const n = 20000
	for i := 0; i < n; i++ {
		m.Send(1, &wire.Heartbeat{NID: 1, Epoch: wire.Epoch(i)})
	}
	k.Run()
	// Count rounds where both receivers missed epoch i.
	got2 := map[wire.Epoch]int{}
	for _, nd := range nodes[1:] {
		for _, r := range nd.received {
			got2[r.msg.(*wire.Heartbeat).Epoch]++
		}
	}
	bothMissed := 0
	for i := 0; i < n; i++ {
		if got2[wire.Epoch(i)] == 0 {
			bothMissed++
		}
	}
	frac := float64(bothMissed) / n
	if math.Abs(frac-p*p) > 0.02 {
		t.Errorf("P(both miss) = %v, want ~%v", frac, p*p)
	}
}

func TestSetLinkLoss(t *testing.T) {
	k := sim.New(1)
	m, nodes := makeField(t, k, lossless(), []geo.Point{
		{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10},
	})
	m.SetLinkLoss(1, 2, 1.0) // kill link 1->2 only
	for i := 0; i < 10; i++ {
		m.Send(1, &wire.Heartbeat{NID: 1})
	}
	k.Run()
	if len(nodes[1].received) != 0 {
		t.Error("overridden link delivered")
	}
	if len(nodes[2].received) != 10 {
		t.Errorf("untouched link delivered %d, want 10", len(nodes[2].received))
	}
	// Remove the override.
	m.SetLinkLoss(1, 2, -1)
	m.Send(1, &wire.Heartbeat{NID: 1})
	k.Run()
	if len(nodes[1].received) != 1 {
		t.Error("override removal did not restore the link")
	}
}

func TestSilence(t *testing.T) {
	k := sim.New(1)
	m, nodes := makeField(t, k, lossless(), []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}})
	m.Silence(1, true)
	m.Send(1, &wire.Heartbeat{NID: 1})
	k.Run()
	if len(nodes[1].received) != 0 {
		t.Error("silenced host transmitted")
	}
	m.Silence(1, false)
	m.Send(1, &wire.Heartbeat{NID: 1})
	k.Run()
	if len(nodes[1].received) != 1 {
		t.Error("unsilencing did not restore transmission")
	}
}

// TestSilencedSenderCounters pins the silenced-sender accounting order: a
// jammed radio still burns tx energy (the host believes it transmitted),
// but the attempt must NOT appear under tx:<kind>/tx-bytes — message-count
// experiments would otherwise overstate cost — and instead lands in the
// dedicated tx-silenced counters. Regression test for the pre-fix Send,
// which counted tx:<kind> and tx-bytes before the silenced check.
func TestSilencedSenderCounters(t *testing.T) {
	k := sim.New(1)
	m, nodes := makeField(t, k, lossless(), []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}})
	m.Silence(1, true)
	msg := &wire.Heartbeat{NID: 1, Epoch: 1}
	m.Send(1, msg)
	k.Run()

	c := m.Counters()
	if c["tx:heartbeat"] != 0 {
		t.Errorf("silenced send counted under tx:heartbeat = %d, want 0", c["tx:heartbeat"])
	}
	if c["tx-bytes"] != 0 {
		t.Errorf("silenced send counted under tx-bytes = %d, want 0", c["tx-bytes"])
	}
	if c["drop:silenced"] != 1 {
		t.Errorf("drop:silenced = %d, want 1", c["drop:silenced"])
	}
	if c["tx-silenced-msgs"] != 1 || c["tx-silenced-bytes"] != int64(msg.WireSize()) {
		t.Errorf("tx-silenced-msgs=%d tx-silenced-bytes=%d, want 1 and %d",
			c["tx-silenced-msgs"], c["tx-silenced-bytes"], msg.WireSize())
	}
	if m.Sent(wire.KindHeartbeat) != 0 {
		t.Errorf("Sent(heartbeat) = %d, want 0", m.Sent(wire.KindHeartbeat))
	}
	// The jammed radio still spent transmission energy.
	if spent := m.EnergySpent(1); spent <= 0 {
		t.Errorf("silenced sender spent %v energy, want > 0", spent)
	}
	if len(nodes[1].received) != 0 {
		t.Error("silenced host was heard")
	}

	// Unsilenced sends count normally again.
	m.Silence(1, false)
	m.Send(1, msg)
	k.Run()
	if m.Sent(wire.KindHeartbeat) != 1 || m.Received(wire.KindHeartbeat) != 1 {
		t.Errorf("post-unsilence Sent=%d Received=%d, want 1,1",
			m.Sent(wire.KindHeartbeat), m.Received(wire.KindHeartbeat))
	}
}

func TestDelayWithinBounds(t *testing.T) {
	params := Defaults(0)
	k := sim.New(3)
	m, nodes := makeField(t, k, params, []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}})
	var sentAt []sim.Time
	for i := 0; i < 200; i++ {
		at := sim.Time(i) * sim.Time(time.Second)
		k.At(at, func() { m.Send(1, &wire.Heartbeat{NID: 1}) })
		sentAt = append(sentAt, at)
	}
	deliveredAt := make([]sim.Time, 0, 200)
	orig := nodes[1]
	// Wrap Deliver by recording kernel time via closure: use a receiver shim.
	shim := &timeRecorder{stub: orig, k: k, times: &deliveredAt}
	m.nodes[2] = shim
	k.Run()
	if len(deliveredAt) != 200 {
		t.Fatalf("delivered %d, want 200", len(deliveredAt))
	}
	for i, at := range deliveredAt {
		d := at - sentAt[i]
		if d < params.MinDelay || d > params.MaxDelay {
			t.Fatalf("delivery %d delay %v outside [%v, %v]", i, d, params.MinDelay, params.MaxDelay)
		}
	}
}

type timeRecorder struct {
	stub  *stubNode
	k     *sim.Kernel
	times *[]sim.Time
}

func (r *timeRecorder) ID() wire.NodeID   { return r.stub.ID() }
func (r *timeRecorder) Pos() geo.Point    { return r.stub.Pos() }
func (r *timeRecorder) Operational() bool { return r.stub.Operational() }
func (r *timeRecorder) Deliver(m wire.Message, from wire.NodeID) {
	*r.times = append(*r.times, r.k.Now())
	r.stub.Deliver(m, from)
}

func TestNeighbors(t *testing.T) {
	k := sim.New(1)
	m, nodes := makeField(t, k, lossless(), []geo.Point{
		{X: 0, Y: 0}, {X: 99, Y: 0}, {X: 101, Y: 0}, {X: 0, Y: 50}, {X: -70, Y: -70},
	})
	got := m.Neighbors(nodes[0].pos, 1)
	want := map[wire.NodeID]bool{2: true, 4: true, 5: true}
	if len(got) != len(want) {
		t.Fatalf("Neighbors = %v, want IDs %v", got, want)
	}
	for _, id := range got {
		if !want[id] {
			t.Errorf("unexpected neighbor %v", id)
		}
	}
	// Crashed nodes are excluded.
	nodes[3].crashed = true
	if got := m.Neighbors(nodes[0].pos, 1); len(got) != 2 {
		t.Errorf("crashed node still listed: %v", got)
	}
}

func TestEnergyAccounting(t *testing.T) {
	params := lossless()
	params.HarvestRate = 0
	k := sim.New(1)
	m, _ := makeField(t, k, params, []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}})
	hb := &wire.Heartbeat{NID: 1}
	m.Send(1, hb)
	k.Run()
	size := float64(hb.WireSize())
	wantTx := params.TxBaseCost + params.TxByteCost*size
	if got := m.EnergySpent(1); math.Abs(got-wantTx) > 1e-9 {
		t.Errorf("sender spent %v, want %v", got, wantTx)
	}
	wantRx := params.RxByteCost * size
	if got := m.EnergySpent(2); math.Abs(got-wantRx) > 1e-9 {
		t.Errorf("receiver spent %v, want %v", got, wantRx)
	}
	if got := m.TotalEnergySpent(); math.Abs(got-wantTx-wantRx) > 1e-9 {
		t.Errorf("total spent %v, want %v", got, wantTx+wantRx)
	}
	if got := m.Energy(1); math.Abs(got-(params.InitialEnergy-wantTx)) > 1e-9 {
		t.Errorf("Energy(1) = %v", got)
	}
}

func TestEnergyHarvest(t *testing.T) {
	params := lossless()
	params.HarvestRate = 10
	params.InitialEnergy = 100
	k := sim.New(1)
	m, _ := makeField(t, k, params, []geo.Point{{X: 0, Y: 0}})
	k.RunUntil(sim.Time(5 * time.Second))
	if got := m.Energy(1); math.Abs(got-150) > 1e-9 {
		t.Errorf("Energy after 5s harvest = %v, want 150", got)
	}
	if got := m.Energy(999); got != 0 {
		t.Errorf("Energy(unknown) = %v, want 0", got)
	}
}

func TestCounters(t *testing.T) {
	k := sim.New(1)
	m, _ := makeField(t, k, lossless(), []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}})
	m.Send(1, &wire.Heartbeat{NID: 1})
	m.Send(1, &wire.Digest{NID: 1, Heard: []wire.NodeID{2}})
	k.Run()
	c := m.Counters()
	if c["tx:heartbeat"] != 1 || c["tx:digest"] != 1 {
		t.Errorf("tx counters wrong: %v", c)
	}
	if c["rx:heartbeat"] != 1 || c["rx:digest"] != 1 {
		t.Errorf("rx counters wrong: %v", c)
	}
	if c["tx-bytes"] <= 0 {
		t.Error("tx-bytes not counted")
	}
	if m.Sent(wire.KindHeartbeat) != 1 {
		t.Error("Sent(heartbeat) != 1")
	}
}

func TestTraceEvents(t *testing.T) {
	mem := trace.NewMemory()
	params := Defaults(1.0) // always lose
	k := sim.New(1)
	m := New(k, params, WithTrace(mem))
	a := &stubNode{id: 1, pos: geo.Point{X: 0, Y: 0}}
	b := &stubNode{id: 2, pos: geo.Point{X: 10, Y: 0}}
	m.Attach(a)
	m.Attach(b)
	m.Send(1, &wire.Heartbeat{NID: 1})
	k.Run()
	if mem.Count(trace.TypeSend) != 1 {
		t.Error("no send event")
	}
	if mem.Count(trace.TypeDrop) != 1 {
		t.Error("no drop event")
	}
}

func TestAttachValidation(t *testing.T) {
	k := sim.New(1)
	m := New(k, lossless())
	m.Attach(&stubNode{id: 1})
	for _, bad := range []*stubNode{{id: 1}, {id: wire.NoNode}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Attach(%v) should panic", bad.id)
				}
			}()
			m.Attach(bad)
		}()
	}
}

func TestNewValidation(t *testing.T) {
	k := sim.New(1)
	cases := []Params{
		{Range: 0},
		{Range: 100, LossProb: -0.1},
		{Range: 100, LossProb: 1.1},
		{Range: 100, MinDelay: 10, MaxDelay: 5},
	}
	for i, p := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New should panic", i)
				}
			}()
			New(k, p)
		}()
	}
}

func TestGridLargeField(t *testing.T) {
	// 1000 nodes over a 1000x1000 field: Neighbors via the grid must match
	// a brute-force scan.
	k := sim.New(5)
	params := lossless()
	m := New(k, params)
	pts := geo.PlaceUniformRect(k.Rand(), geo.NewRect(1000, 1000), 1000)
	nodes := make([]*stubNode, len(pts))
	for i, p := range pts {
		nodes[i] = &stubNode{id: wire.NodeID(i + 1), pos: p}
		m.Attach(nodes[i])
	}
	for _, probe := range []int{0, 17, 500, 999} {
		at := nodes[probe].pos
		got := map[wire.NodeID]bool{}
		for _, id := range m.Neighbors(at, nodes[probe].id) {
			got[id] = true
		}
		want := map[wire.NodeID]bool{}
		for _, n := range nodes {
			if n.id != nodes[probe].id && at.WithinRange(n.pos, params.Range) {
				want[n.id] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("probe %d: grid found %d neighbors, brute force %d", probe, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("probe %d: missing neighbor %v", probe, id)
			}
		}
	}
}

func TestUpdatePos(t *testing.T) {
	k := sim.New(1)
	m, nodes := makeField(t, k, lossless(), []geo.Point{{X: 0, Y: 0}, {X: 500, Y: 500}})
	if len(m.Neighbors(nodes[0].pos, 1)) != 0 {
		t.Fatal("nodes should start out of range")
	}
	old := nodes[1].pos
	nodes[1].pos = geo.Point{X: 10, Y: 0}
	m.UpdatePos(2, old)
	if len(m.Neighbors(nodes[0].pos, 1)) != 1 {
		t.Error("moved node not found after UpdatePos")
	}
	m.UpdatePos(999, old) // unknown id is a no-op
}

// TestNeighborsAppendMatchesNeighbors checks the scratch-slice variant
// returns exactly what Neighbors returns, reuses the caller's buffer, and
// allocates nothing once the buffer is warm.
func TestNeighborsAppendMatchesNeighbors(t *testing.T) {
	k := sim.New(5)
	m := New(k, Defaults(0))
	center := geo.Point{X: 0, Y: 0}
	nodes := make([]*stubNode, 40)
	for i := range nodes {
		nodes[i] = &stubNode{id: wire.NodeID(i + 1), pos: geo.UniformInDisk(k.Rand(), center, 150)}
		m.Attach(nodes[i])
	}
	nodes[3].crashed = true

	buf := make([]wire.NodeID, 0, 64)
	for _, probe := range []geo.Point{center, {X: 80, Y: -40}, {X: 500, Y: 500}} {
		want := m.Neighbors(probe, 1)
		buf = m.NeighborsAppend(buf[:0], probe, 1)
		if len(want) != len(buf) {
			t.Fatalf("probe %v: Neighbors=%v NeighborsAppend=%v", probe, want, buf)
		}
		for i := range want {
			if want[i] != buf[i] {
				t.Fatalf("probe %v: order diverges: %v vs %v", probe, want, buf)
			}
		}
	}

	allocs := testing.AllocsPerRun(100, func() {
		buf = m.NeighborsAppend(buf[:0], center, 1)
	})
	if allocs != 0 {
		t.Errorf("NeighborsAppend with warm buffer allocates %.1f/op, want 0", allocs)
	}
}

// TestSendScratchIsolation checks that reusing the medium's encode scratch
// across broadcasts cannot corrupt in-flight deliveries: two back-to-back
// sends of different messages must deliver their own payloads.
func TestSendScratchIsolation(t *testing.T) {
	k := sim.New(9)
	m := New(k, lossless()) // fixed delay: deliveries arrive in send order
	a := &stubNode{id: 1, pos: geo.Point{X: 0, Y: 0}}
	b := &stubNode{id: 2, pos: geo.Point{X: 10, Y: 0}}
	m.Attach(a)
	m.Attach(b)

	m.Send(1, &wire.Heartbeat{NID: 1, Epoch: 7})
	m.Send(1, &wire.Digest{NID: 1, CH: 1, Epoch: 7, Heard: []wire.NodeID{1, 2, 3}})
	k.Run()

	if len(b.received) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(b.received))
	}
	hb, ok := b.received[0].msg.(*wire.Heartbeat)
	if !ok || hb.NID != 1 || hb.Epoch != 7 {
		t.Errorf("first delivery corrupted: %+v", b.received[0].msg)
	}
	dg, ok := b.received[1].msg.(*wire.Digest)
	if !ok || dg.NID != 1 || len(dg.Heard) != 3 {
		t.Errorf("second delivery corrupted: %+v", b.received[1].msg)
	}
}
