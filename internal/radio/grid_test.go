package radio

import (
	"math/rand"
	"testing"

	"clusterfds/internal/geo"
	"clusterfds/internal/wire"
)

// TestGridNoEmptyCellLeakUnderMobility pins the fix for the grid.remove leak:
// before the fix, vacating the last occupant of a cell left an empty []NodeID
// slice keyed in g.cells forever, so a long random walk grew the map with one
// dead entry per cell any host ever visited. After the fix the map holds
// exactly the currently occupied cells.
func TestGridNoEmptyCellLeakUnderMobility(t *testing.T) {
	const (
		cell  = 100.0
		nodes = 50
		steps = 4000
		side  = 5000.0 // 50x50 = 2500 cells >> nodes, so walks vacate cells constantly
	)
	g := newGrid(cell)
	rng := rand.New(rand.NewSource(42))

	pos := make([]geo.Point, nodes)
	for i := range pos {
		pos[i] = geo.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
		g.insert(wire.NodeID(i+1), pos[i])
	}

	for s := 0; s < steps; s++ {
		i := rng.Intn(nodes)
		to := geo.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
		g.move(wire.NodeID(i+1), pos[i], to)
		pos[i] = to
	}

	// Ground truth: the set of cells currently occupied by at least one node.
	occupied := make(map[[2]int32]bool)
	for _, p := range pos {
		occupied[g.key(p)] = true
	}

	if got, want := g.liveCells(), len(occupied); got != want {
		t.Errorf("liveCells = %d, want %d occupied cells", got, want)
	}
	// The no-leak invariant: every key in the map is a live cell. Pre-fix this
	// failed with len(g.cells) in the thousands (one per vacated cell).
	if got, want := len(g.cells), len(occupied); got != want {
		t.Errorf("len(g.cells) = %d, want %d: %d leaked empty-cell keys",
			got, want, got-want)
	}

	// Membership must still be exact after the churn: every node findable via
	// forNear at its current position, and total stored IDs == nodes.
	total := 0
	for _, ids := range g.cells {
		total += len(ids)
	}
	if total != nodes {
		t.Errorf("grid stores %d ids, want %d", total, nodes)
	}
	for i, p := range pos {
		found := false
		g.forNear(p, func(id wire.NodeID) {
			if id == wire.NodeID(i+1) {
				found = true
			}
		})
		if !found {
			t.Errorf("node %d not found near its own position after walk", i+1)
		}
	}
}
