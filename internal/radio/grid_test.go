package radio

import (
	"math"
	"math/rand"
	"testing"

	"clusterfds/internal/geo"
	"clusterfds/internal/wire"
)

// TestGridNoEmptyCellLeakUnderMobility pins the fix for the grid.remove leak:
// before the fix, vacating the last occupant of a cell left an empty []NodeID
// slice keyed in g.cells forever, so a long random walk grew the map with one
// dead entry per cell any host ever visited. After the fix the map holds
// exactly the currently occupied cells.
func TestGridNoEmptyCellLeakUnderMobility(t *testing.T) {
	const (
		cell  = 100.0
		nodes = 50
		steps = 4000
		side  = 5000.0 // 50x50 = 2500 cells >> nodes, so walks vacate cells constantly
	)
	g := newGrid(cell)
	rng := rand.New(rand.NewSource(42))

	pos := make([]geo.Point, nodes)
	for i := range pos {
		pos[i] = geo.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
		g.insert(wire.NodeID(i+1), pos[i])
	}

	for s := 0; s < steps; s++ {
		i := rng.Intn(nodes)
		to := geo.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
		g.move(wire.NodeID(i+1), pos[i], to)
		pos[i] = to
	}

	// Ground truth: the set of cells currently occupied by at least one node.
	occupied := make(map[[2]int64]bool)
	for _, p := range pos {
		occupied[g.key(p)] = true
	}

	if got, want := g.liveCells(), len(occupied); got != want {
		t.Errorf("liveCells = %d, want %d occupied cells", got, want)
	}
	// The no-leak invariant: every key in the map is a live cell. Pre-fix this
	// failed with len(g.cells) in the thousands (one per vacated cell).
	if got, want := len(g.cells), len(occupied); got != want {
		t.Errorf("len(g.cells) = %d, want %d: %d leaked empty-cell keys",
			got, want, got-want)
	}

	// Membership must still be exact after the churn: every node findable via
	// forNear at its current position, and total stored IDs == nodes.
	total := 0
	for _, ids := range g.cells {
		total += len(ids)
	}
	if total != nodes {
		t.Errorf("grid stores %d ids, want %d", total, nodes)
	}
	for i, p := range pos {
		found := false
		g.forNear(p, func(id wire.NodeID) {
			if id == wire.NodeID(i+1) {
				found = true
			}
		})
		if !found {
			t.Errorf("node %d not found near its own position after walk", i+1)
		}
	}
}

// TestGridLargeCoordinateRanges pins cell-key arithmetic for the fields the
// sharded kernel runs at — sides of 10^4 m (the 1M-node crash wave) and far
// beyond. Before the int64 fix, key() truncated through int32, which Go
// leaves implementation-defined for out-of-range floats: every coordinate
// past ±2^31 cells collapsed into one cell on amd64, silently colliding.
func TestGridLargeCoordinateRanges(t *testing.T) {
	const cell = 100.0
	for _, side := range []float64{1e4, 1e6, 1e9, 1e12} {
		g := newGrid(cell)
		// Place nodes along the diagonal, one per cell — any key collision
		// would merge two of them into one cell slice.
		const n = 64
		step := side / n
		pts := make([]geo.Point, n)
		for i := 0; i < n; i++ {
			pts[i] = geo.Point{X: float64(i) * step, Y: float64(i) * step}
			g.insert(wire.NodeID(i+1), pts[i])
		}
		if got := len(g.cells); got != n {
			t.Errorf("side %g: %d nodes in distinct cells hash to %d keys (collision)", side, n, got)
		}
		// Each node must be findable near its own position, and the 3x3
		// probe around a point must not drag in far-away nodes.
		for i, p := range pts {
			found, nearby := false, 0
			g.forNear(p, func(id wire.NodeID) {
				nearby++
				if id == wire.NodeID(i+1) {
					found = true
				}
			})
			if !found {
				t.Fatalf("side %g: node %d missing from its own 3x3 block", side, i+1)
			}
			if nearby > 3 { // self plus at most the two diagonal neighbors
				t.Fatalf("side %g: 3x3 block around node %d returned %d nodes", side, i+1, nearby)
			}
		}
	}
}

// TestGridExtremeAndNonFiniteCoordinates checks the saturating edges: keys
// stay deterministic (no implementation-defined conversion) for coordinates
// at float64 extremes, and distinct far-out positions do not collide the way
// the int32 truncation made them.
func TestGridExtremeAndNonFiniteCoordinates(t *testing.T) {
	g := newGrid(100)
	// Two positions that int32 truncation mapped to the same 0x80000000 cell.
	a := geo.Point{X: 1e15, Y: 0}
	b := geo.Point{X: 2e15, Y: 0}
	if g.key(a) == g.key(b) {
		t.Errorf("distinct far-out coordinates collide: key(%v) == key(%v) = %v", a, b, g.key(a))
	}
	// Negative coordinates land in distinct negative cells (floor, not trunc).
	if k := g.key(geo.Point{X: -50, Y: -150}); k != [2]int64{-1, -2} {
		t.Errorf("key(-50,-150) = %v, want [-1 -2]", k)
	}
	// Non-finite inputs get clamped, deterministically, without panicking.
	inf := math.Inf(1)
	nan := math.NaN()
	if k := g.key(geo.Point{X: inf, Y: -inf}); k != [2]int64{math.MaxInt64, math.MinInt64} {
		t.Errorf("key(+Inf,-Inf) = %v, want saturated extremes", k)
	}
	if k := g.key(geo.Point{X: nan, Y: nan}); k != [2]int64{0, 0} {
		t.Errorf("key(NaN,NaN) = %v, want pinned [0 0]", k)
	}
	// Insert/remove round-trips at the extremes must not leak or lose nodes.
	for i, p := range []geo.Point{a, b, {X: inf, Y: inf}, {X: -1e300, Y: 1e300}} {
		g.insert(wire.NodeID(i+1), p)
	}
	if g.liveCells() != 4 {
		t.Errorf("liveCells = %d after 4 extreme inserts, want 4", g.liveCells())
	}
	for i, p := range []geo.Point{a, b, {X: inf, Y: inf}, {X: -1e300, Y: 1e300}} {
		g.remove(wire.NodeID(i+1), p)
	}
	if len(g.cells) != 0 {
		t.Errorf("cells leak after removing extreme nodes: %d keys", len(g.cells))
	}
}
