package radio

import (
	"math"

	"clusterfds/internal/geo"
	"clusterfds/internal/wire"
)

// grid is a uniform spatial hash with cell size equal to the transmission
// range, so all candidates within range of a point live in the 3x3 block of
// cells around it. It keeps Neighbors and Send at O(density) instead of
// O(network size), which matters for the 2000-node scalability runs.
type grid struct {
	cell  float64
	cells map[[2]int64][]wire.NodeID
}

func newGrid(cell float64) *grid {
	return &grid{cell: cell, cells: make(map[[2]int64][]wire.NodeID)}
}

// cellIndex maps one coordinate to its cell index with saturating conversion.
// The old int32 truncation was fine for the 500 m golden field but undefined
// for coordinates past ±2^31 cells: Go leaves out-of-range float→int
// conversion implementation-defined, so on amd64 every far-out coordinate
// collapsed into the same 0x80000000 cell — a silent collision that made the
// 3x3 probe return the whole far field. int64 indices cover any coordinate a
// float64 can express at integer precision, and explicit clamping keeps the
// non-finite edge cases (±Inf from a bad config, NaN from 0/0 motion)
// deterministic instead of implementation-defined.
func cellIndex(v, cell float64) int64 {
	f := math.Floor(v / cell)
	switch {
	case f != f: // NaN: pin to cell 0 rather than UB.
		return 0
	case f >= math.MaxInt64:
		return math.MaxInt64
	case f <= math.MinInt64:
		return math.MinInt64
	}
	return int64(f)
}

func (g *grid) key(p geo.Point) [2]int64 {
	return [2]int64{cellIndex(p.X, g.cell), cellIndex(p.Y, g.cell)}
}

func (g *grid) insert(id wire.NodeID, p geo.Point) {
	k := g.key(p)
	g.cells[k] = append(g.cells[k], id)
}

func (g *grid) remove(id wire.NodeID, p geo.Point) {
	k := g.key(p)
	ids := g.cells[k]
	for i, x := range ids {
		if x == id {
			if len(ids) == 1 {
				// Last occupant: delete the key outright. Keeping an
				// empty slice keyed forever (the pre-fix behavior) made
				// the cell map grow monotonically with every cell any
				// host EVER visited — under mobility a long random walk
				// leaked one map entry (plus slice header) per vacated
				// cell, and appendNear's 3x3 probes kept hashing into
				// an ever-larger table.
				delete(g.cells, k)
				return
			}
			ids[i] = ids[len(ids)-1]
			g.cells[k] = ids[:len(ids)-1]
			return
		}
	}
}

// liveCells returns how many cells currently hold at least one node.
// remove deletes emptied keys, so this equals len(g.cells); tests assert
// the equivalence to pin the no-leak invariant.
func (g *grid) liveCells() int {
	n := 0
	for _, ids := range g.cells {
		if len(ids) > 0 {
			n++
		}
	}
	return n
}

func (g *grid) move(id wire.NodeID, from, to geo.Point) {
	if g.key(from) == g.key(to) {
		return
	}
	g.remove(id, from)
	g.insert(id, to)
}

// forNear invokes fn for every ID in the 3x3 cell block around p. Callers
// still need an exact range check; the grid only prunes.
func (g *grid) forNear(p geo.Point, fn func(wire.NodeID)) {
	c := g.key(p)
	for dx := int64(-1); dx <= 1; dx++ {
		for dy := int64(-1); dy <= 1; dy++ {
			for _, id := range g.cells[[2]int64{c[0] + dx, c[1] + dy}] {
				fn(id)
			}
		}
	}
}

// appendNear appends every ID in the 3x3 cell block around p to dst and
// returns it. The allocation-free counterpart of forNear for hot paths that
// would otherwise pay a closure: candidates come back in the same
// deterministic cell order forNear uses. Callers still need an exact range
// check; the grid only prunes.
func (g *grid) appendNear(dst []wire.NodeID, p geo.Point) []wire.NodeID {
	c := g.key(p)
	for dx := int64(-1); dx <= 1; dx++ {
		for dy := int64(-1); dy <= 1; dy++ {
			dst = append(dst, g.cells[[2]int64{c[0] + dx, c[1] + dy}]...)
		}
	}
	return dst
}
