// Package radio implements the ad hoc wireless medium the paper's analysis
// postulates (Sections 2.2 and 5):
//
//   - unit-disk propagation: every host within transmission range R of a
//     sender may hear a transmission (symmetric links, equal ranges);
//   - promiscuous receiving: a transmission reaches ALL in-range hosts, not
//     only the addressed ones — "send" and "broadcast" coincide;
//   - independent per-receiver Bernoulli loss with probability p;
//   - bounded delivery delay: every successful delivery lands within Thop.
//
// The medium also keeps the bookkeeping the evaluation needs: per-kind
// message and byte counters, drop counts, and a per-host energy meter with
// solar harvest (Section 2.1 assumes hosts harvest energy, which is what
// makes periodic heartbeat diffusion feasible).
package radio

import (
	"fmt"

	"clusterfds/internal/geo"
	"clusterfds/internal/metrics"
	"clusterfds/internal/sim"
	"clusterfds/internal/trace"
	"clusterfds/internal/transport"
	"clusterfds/internal/wire"
)

// Receiver is the surface a host exposes to the medium. It is exactly the
// sans-I/O boundary's receiver contract: the medium is one Transport
// backend among several (see internal/transport).
type Receiver = transport.Receiver

// The medium implements the transport-agnostic network interface.
var _ transport.Transport = (*Medium)(nil)

// Params configures the medium. Zero values are filled in by Defaults.
type Params struct {
	// Range is the transmission range R in meters (paper: 100 m).
	Range float64
	// LossProb is the per-receiver message loss probability p.
	LossProb float64
	// MinDelay and MaxDelay bound the uniform delivery delay; MaxDelay
	// plays the role of Thop, the per-hop bound the round timeouts use.
	MinDelay, MaxDelay sim.Time
	// TxBaseCost, TxByteCost, RxByteCost parameterize the energy model in
	// abstract energy units.
	TxBaseCost, TxByteCost, RxByteCost float64
	// HarvestRate is energy units gained per second of virtual time
	// (solar cells, paper Section 2.1).
	HarvestRate float64
	// InitialEnergy is each host's starting energy budget.
	InitialEnergy float64
}

// Defaults returns the parameter set used throughout the experiments:
// R = 100 m, p as given, Thop = 20 ms.
func Defaults(lossProb float64) Params {
	return Params{
		Range:         100,
		LossProb:      lossProb,
		MinDelay:      1e6,  // 1 ms
		MaxDelay:      12e6, // 12 ms; with <=5 ms send jitter, still < Thop = 20 ms
		TxBaseCost:    10,
		TxByteCost:    0.5,
		RxByteCost:    0.2,
		HarvestRate:   5,
		InitialEnergy: 100000,
	}
}

// Medium is the shared wireless channel. It is not safe for concurrent use;
// like everything else it runs inside the single-threaded kernel.
type Medium struct {
	kernel *sim.Kernel
	params Params
	sink   trace.Sink

	nodes map[wire.NodeID]Receiver
	grid  *grid

	// linkLoss overrides the global loss probability for specific directed
	// links; used by failure-injection tests.
	linkLoss map[[2]wire.NodeID]float64
	// silenced hosts have all their transmissions dropped (radio jamming /
	// partition injection).
	silenced map[wire.NodeID]bool

	// energy delegates to the shared transport meter so the radio backend
	// and the in-process mesh produce bit-identical energy trajectories
	// (the FDS forwarding backoff is energy-biased, so this is a
	// determinism requirement, not a convenience).
	energy *transport.Meter

	// metrics is the counter backend. Per-kind counters resolve through the
	// txCount/rxCount handle arrays so the broadcast hot path performs no
	// map lookups and no allocations; the named handles below are resolved
	// once in New. When no registry is injected with WithMetrics, the
	// medium owns a private one.
	metrics          *metrics.Registry
	txCount, rxCount [256]*metrics.Counter
	txBytes          *metrics.Counter
	dropLoss         *metrics.Counter
	dropSilenced     *metrics.Counter
	dropRxDown       *metrics.Counter
	txSilencedMsgs   *metrics.Counter
	txSilencedBytes  *metrics.Counter

	// tracing is false when sink is the no-op sink, letting the hot paths
	// skip building event detail strings nobody will read.
	tracing bool
	// nearScratch is Send's reusable neighbor-query buffer. The kernel is
	// single-threaded and the buffer is never held across a scheduled
	// callback, so plain reuse is safe.
	nearScratch []wire.NodeID

	// scratch holds one decode workspace per attached receiver. Each
	// delivery decodes the transmission into the receiver's own scratch, so
	// no state is ever shared between hosts (transmission cannot alias
	// memory, paper Section 2.2) and steady-state delivery allocates
	// nothing. The message handed to Deliver is valid only for the duration
	// of the call; receivers that keep any part of it must copy.
	scratch map[wire.NodeID]*wire.DecodeScratch

	// txFree and delFree pool the per-transmission encode buffers and the
	// per-receiver delivery records between broadcasts; deliverFn is the
	// shared ScheduleArg handler, resolved once so scheduling a delivery
	// allocates neither a closure nor an interface box.
	txFree    []*txBuf
	delFree   []*delivery
	deliverFn sim.ArgHandler
}

// txBuf is one transmission's encoded bytes, shared by every in-flight
// delivery of that transmission and returned to the medium's pool when the
// last delivery has run.
type txBuf struct {
	buf  []byte
	refs int
}

// delivery carries one receiver's pending reception through the kernel.
type delivery struct {
	tb   *txBuf
	rcv  Receiver
	to   wire.NodeID
	from wire.NodeID
	rxc  *metrics.Counter
	size int
}

// kind-tagged counter labels, precomputed so Send/deliver do not
// concatenate strings per message.
var txLabel, rxLabel [256]string

func init() {
	for k := 0; k < 256; k++ {
		txLabel[k] = "tx:" + wire.Kind(k).String()
		rxLabel[k] = "rx:" + wire.Kind(k).String()
	}
}

// Option customizes a Medium.
type Option func(*Medium)

// WithTrace attaches a trace sink to the medium.
func WithTrace(s trace.Sink) Option {
	return func(m *Medium) { m.sink = s }
}

// WithMetrics makes the medium record its counters into the given registry
// instead of a private one, so scenarios can export radio, FDS, and
// harness metrics as one snapshot. Passing nil keeps the private registry.
func WithMetrics(r *metrics.Registry) Option {
	return func(m *Medium) {
		if r != nil {
			m.metrics = r
		}
	}
}

// New creates a medium on the given kernel.
func New(kernel *sim.Kernel, params Params, opts ...Option) *Medium {
	if params.Range <= 0 {
		panic("radio: non-positive transmission range")
	}
	if params.LossProb < 0 || params.LossProb > 1 {
		panic(fmt.Sprintf("radio: loss probability %v outside [0,1]", params.LossProb))
	}
	if params.MaxDelay < params.MinDelay {
		panic("radio: MaxDelay < MinDelay")
	}
	m := &Medium{
		kernel:   kernel,
		params:   params,
		sink:     trace.Nop{},
		nodes:    make(map[wire.NodeID]Receiver),
		grid:     newGrid(params.Range),
		linkLoss: make(map[[2]wire.NodeID]float64),
		silenced: make(map[wire.NodeID]bool),
		scratch:  make(map[wire.NodeID]*wire.DecodeScratch),
	}
	m.energy = transport.NewMeter(transport.EnergyParams{
		TxBaseCost:    params.TxBaseCost,
		TxByteCost:    params.TxByteCost,
		RxByteCost:    params.RxByteCost,
		HarvestRate:   params.HarvestRate,
		InitialEnergy: params.InitialEnergy,
	}, kernel)
	m.deliverFn = m.deliverEvent
	for _, opt := range opts {
		opt(m)
	}
	if m.metrics == nil {
		m.metrics = metrics.NewRegistry()
	}
	m.txBytes = m.metrics.Counter("tx-bytes")
	m.dropLoss = m.metrics.Counter("drop:loss")
	m.dropSilenced = m.metrics.Counter("drop:silenced")
	m.dropRxDown = m.metrics.Counter("drop:receiver-down")
	m.txSilencedMsgs = m.metrics.Counter("tx-silenced-msgs")
	m.txSilencedBytes = m.metrics.Counter("tx-silenced-bytes")
	_, nop := m.sink.(trace.Nop)
	m.tracing = !nop
	return m
}

// txCounter resolves the tx counter handle for a kind, registering it on
// first use so snapshots list only kinds that actually flowed.
func (m *Medium) txCounter(k wire.Kind) *metrics.Counter {
	c := m.txCount[k]
	if c == nil {
		c = m.metrics.Counter(txLabel[k])
		m.txCount[k] = c
	}
	return c
}

// rxCounter resolves the rx counter handle for a kind.
func (m *Medium) rxCounter(k wire.Kind) *metrics.Counter {
	c := m.rxCount[k]
	if c == nil {
		c = m.metrics.Counter(rxLabel[k])
		m.rxCount[k] = c
	}
	return c
}

// Params returns the medium's configuration.
func (m *Medium) Params() Params { return m.params }

// Attach registers a host with the medium. Attaching two hosts with the
// same NID is a configuration error and panics.
func (m *Medium) Attach(r Receiver) {
	id := r.ID()
	if id == wire.NoNode {
		panic("radio: cannot attach node with NID 0")
	}
	if _, dup := m.nodes[id]; dup {
		panic(fmt.Sprintf("radio: duplicate NID %v", id))
	}
	m.nodes[id] = r
	m.grid.insert(id, r.Pos())
	m.energy.Track(id)
	m.scratch[id] = wire.NewDecodeScratch()
}

// UpdatePos tells the medium a host moved. (The paper defers migration to
// future work; this exists so scenarios can reposition hosts between
// epochs.)
func (m *Medium) UpdatePos(id wire.NodeID, old geo.Point) {
	r, ok := m.nodes[id]
	if !ok {
		return
	}
	m.grid.move(id, old, r.Pos())
}

// NodeCount returns the number of attached hosts.
func (m *Medium) NodeCount() int { return len(m.nodes) }

// Neighbors returns the NIDs of the operational hosts within range of the
// given point, excluding exclude. The slice is freshly allocated; callers
// on a hot path should prefer NeighborsAppend with a reused buffer.
func (m *Medium) Neighbors(at geo.Point, exclude wire.NodeID) []wire.NodeID {
	return m.NeighborsAppend(nil, at, exclude)
}

// NeighborsAppend appends the NIDs of the operational hosts within range of
// the given point (excluding exclude) to dst and returns it. Passing a
// buffer truncated with dst[:0] makes the query allocation-free once the
// buffer has grown to the neighborhood size. Order is deterministic (grid
// cell order), identical to Neighbors.
func (m *Medium) NeighborsAppend(dst []wire.NodeID, at geo.Point, exclude wire.NodeID) []wire.NodeID {
	m.nearScratch = m.grid.appendNear(m.nearScratch[:0], at)
	for _, id := range m.nearScratch {
		if id == exclude {
			continue
		}
		r := m.nodes[id]
		if r.Operational() && at.WithinRange(r.Pos(), m.params.Range) {
			dst = append(dst, id)
		}
	}
	return dst
}

// SetLinkLoss overrides the loss probability on the directed link from ->
// to. Pass a negative probability to remove the override.
func (m *Medium) SetLinkLoss(from, to wire.NodeID, p float64) {
	key := [2]wire.NodeID{from, to}
	if p < 0 {
		delete(m.linkLoss, key)
		return
	}
	if p > 1 {
		p = 1
	}
	m.linkLoss[key] = p
}

// Silence makes every transmission from id vanish (on=true) or restores
// normal behaviour (on=false). Used by failure-injection tests to model a
// host whose radio fails while the host keeps running.
func (m *Medium) Silence(id wire.NodeID, on bool) {
	if on {
		m.silenced[id] = true
	} else {
		delete(m.silenced, id)
	}
}

// Send transmits m from the given host. Per the promiscuous model the
// message is offered to every in-range operational host; each delivery is
// independently lost with the configured probability and otherwise arrives
// after a uniform delay in [MinDelay, MaxDelay].
//
// Crashed or unattached senders transmit nothing (fail-stop: a crashed host
// is silent). The sender never receives its own transmission.
//
// Counter semantics for a silenced sender (radio jamming / partition
// injection): the host still believes it transmitted, so it is charged the
// full tx energy — a jammed radio burns power — but the attempt is NOT
// counted under tx:<kind>/tx-bytes, because those counters feed the
// message-cost experiments and nobody can hear the send. Silenced attempts
// are tallied separately under tx-silenced-msgs/tx-silenced-bytes (and the
// per-send drop:silenced), so partition studies can still account for them.
func (m *Medium) Send(from wire.NodeID, msg wire.Message) {
	sender, ok := m.nodes[from]
	if !ok || !sender.Operational() {
		return
	}
	size := msg.WireSize()
	m.chargeTx(from, size)
	if m.tracing {
		m.sink.Emit(trace.Event{
			At: m.kernel.Now(), Type: trace.TypeSend, Node: uint32(from),
			Detail: msg.Kind().String(),
		})
	}
	if m.silenced[from] {
		m.dropSilenced.Add(1)
		m.txSilencedMsgs.Add(1)
		m.txSilencedBytes.Add(int64(size))
		return
	}
	m.txCounter(msg.Kind()).Add(1)
	m.txBytes.Add(int64(size))

	// Encode once into a pooled, reference-counted buffer shared by every
	// in-flight delivery of this transmission. Each delivery decodes the
	// bytes at reception time into the receiver's own scratch, so hosts
	// never share message memory and the whole path — encode, schedule,
	// decode, dispatch — reuses pooled storage in steady state.
	tb := m.takeTxBuf()
	tb.buf = wire.EncodeAppend(tb.buf[:0], msg)
	rxc := m.rxCounter(msg.Kind()) // resolved once; deliveries share the handle
	origin := sender.Pos()
	rng := m.kernel.Rand()
	m.nearScratch = m.grid.appendNear(m.nearScratch[:0], origin)
	for _, id := range m.nearScratch {
		if id == from {
			continue
		}
		rcv := m.nodes[id]
		if !origin.WithinRange(rcv.Pos(), m.params.Range) {
			continue
		}
		loss := m.params.LossProb
		if override, ok := m.linkLoss[[2]wire.NodeID{from, id}]; ok {
			loss = override
		}
		if rng.Float64() < loss {
			m.dropLoss.Add(1)
			if m.tracing {
				m.sink.Emit(trace.Event{
					At: m.kernel.Now(), Type: trace.TypeDrop, Node: uint32(id),
					Detail: fmt.Sprintf("%s from %v", msg.Kind(), from),
				})
			}
			continue
		}
		delay := m.params.MinDelay
		if span := m.params.MaxDelay - m.params.MinDelay; span > 0 {
			delay += sim.Time(rng.Int63n(int64(span) + 1))
		}
		d := m.takeDelivery()
		d.tb, d.rcv, d.to, d.from, d.rxc, d.size = tb, rcv, id, from, rxc, size
		tb.refs++
		m.kernel.ScheduleArg(delay, m.deliverFn, d)
	}
	if tb.refs == 0 {
		// Nobody survived the loss draws; recycle the buffer immediately.
		m.txFree = append(m.txFree, tb)
	}
}

// deliverEvent completes one scheduled delivery: charge, count, decode into
// the receiver's scratch, dispatch, and recycle the pooled records. The
// decoded message is valid only during the Deliver call (see Medium.scratch).
func (m *Medium) deliverEvent(arg any) {
	d := arg.(*delivery)
	if d.rcv.Operational() {
		m.chargeRx(d.to, d.size)
		d.rxc.Add(1)
		decoded, err := wire.DecodeInto(m.scratch[d.to], d.tb.buf)
		if err != nil {
			// The medium never corrupts messages (paper Section 2.2);
			// a decode failure is a codec bug.
			panic(fmt.Sprintf("radio: decode for delivery: %v", err))
		}
		if m.tracing {
			m.sink.Emit(trace.Event{
				At: m.kernel.Now(), Type: trace.TypeDeliver, Node: uint32(d.to),
				Detail: fmt.Sprintf("%s from %v", decoded.Kind(), d.from),
			})
		}
		d.rcv.Deliver(decoded, d.from)
	} else {
		m.dropRxDown.Add(1)
	}
	if d.tb.refs--; d.tb.refs == 0 {
		m.txFree = append(m.txFree, d.tb)
	}
	d.tb, d.rcv, d.rxc = nil, nil, nil
	m.delFree = append(m.delFree, d)
}

// takeTxBuf pops a pooled transmission buffer or makes one.
func (m *Medium) takeTxBuf() *txBuf {
	if n := len(m.txFree); n > 0 {
		tb := m.txFree[n-1]
		m.txFree = m.txFree[:n-1]
		return tb
	}
	return &txBuf{}
}

// takeDelivery pops a pooled delivery record. The pool grows by blocks of 64
// records in one allocation so a rising in-flight high-water mark (traffic
// grows as reports accrete) does not cost one allocation per delivery.
func (m *Medium) takeDelivery() *delivery {
	if len(m.delFree) == 0 {
		blk := make([]delivery, 64)
		for i := range blk {
			m.delFree = append(m.delFree, &blk[i])
		}
	}
	n := len(m.delFree)
	d := m.delFree[n-1]
	m.delFree = m.delFree[:n-1]
	return d
}

// chargeTx debits transmission energy.
func (m *Medium) chargeTx(id wire.NodeID, bytes int) { m.energy.ChargeTx(id, bytes) }

// chargeRx debits reception energy.
func (m *Medium) chargeRx(id wire.NodeID, bytes int) { m.energy.ChargeRx(id, bytes) }

// Energy returns the host's available energy: initial budget plus harvest
// minus spend, floored at zero. The peer-forwarding backoff consults this
// (paper Section 4.2: the waiting period is "inversely proportional to the
// node's remaining energy").
func (m *Medium) Energy(id wire.NodeID) float64 { return m.energy.Energy(id) }

// EnergySpent returns the host's cumulative energy expenditure.
func (m *Medium) EnergySpent(id wire.NodeID) float64 { return m.energy.Spent(id) }

// TotalEnergySpent sums expenditure over all hosts — the system-level cost
// measure in the baseline comparisons. Hosts are summed in NID order so the
// floating-point total is identical across runs.
func (m *Medium) TotalEnergySpent() float64 { return m.energy.TotalSpent() }

// Counters returns a snapshot of the medium's tallies (tx/rx per kind,
// bytes, drops). Only nonzero tallies appear, matching the historical
// only-touched-names behaviour.
func (m *Medium) Counters() map[string]int64 {
	out := make(map[string]int64)
	add := func(name string, c *metrics.Counter) {
		if v := c.Value(); v != 0 {
			out[name] = v
		}
	}
	for k := 0; k < 256; k++ {
		add(txLabel[k], m.txCount[k])
		add(rxLabel[k], m.rxCount[k])
	}
	add("tx-bytes", m.txBytes)
	add("drop:loss", m.dropLoss)
	add("drop:silenced", m.dropSilenced)
	add("drop:receiver-down", m.dropRxDown)
	add("tx-silenced-msgs", m.txSilencedMsgs)
	add("tx-silenced-bytes", m.txSilencedBytes)
	return out
}

// Sent returns how many messages of the given kind have been transmitted
// (hearably — silenced attempts are excluded; see Send). Reads go through
// the precomputed per-kind handle, not a string lookup.
func (m *Medium) Sent(k wire.Kind) int64 { return m.txCount[k].Value() }

// Received returns how many deliveries of the given kind have completed.
func (m *Medium) Received(k wire.Kind) int64 { return m.rxCount[k].Value() }

// Dropped returns how many point-to-point deliveries were lost to the
// channel.
func (m *Medium) Dropped() int64 { return m.dropLoss.Value() }

// Metrics returns the registry the medium records into (the injected one,
// or the medium's private registry).
func (m *Medium) Metrics() *metrics.Registry { return m.metrics }
