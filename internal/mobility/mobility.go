// Package mobility adds host migration to the simulation — the extension
// the paper's Section 2.1 defers: "mobile hosts that have localization
// capability and may migrate in the field autonomously (e.g., nano-sat
// swarms) ... as sound clustering algorithms will support cluster and
// routing stability in mobile ad hoc wireless settings, our failure
// detection framework can be extended accordingly to accommodate host
// migration."
//
// The model is the standard random waypoint: each mobile host picks a
// destination uniformly in the field, glides there at its speed in discrete
// steps, pauses, and repeats. No protocol changes are required: a member
// that drifts out of its clusterhead's range stops receiving health
// updates, demotes through the FDS's orphan path, and re-subscribes to
// whatever cluster now covers it (feature F4 treats it as a newly arrived
// host); the cluster protocol's every-epoch announcements and gateway
// re-registration keep the backbone current. What mobility costs is
// accuracy — a fast mover can be falsely detected between de-registration
// and re-subscription — which the tests measure and the rescind mechanism
// repairs.
package mobility

import (
	"math"

	"clusterfds/internal/geo"
	"clusterfds/internal/node"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// Config parameterizes the random-waypoint walker.
type Config struct {
	// Field bounds the waypoints.
	Field geo.Rect
	// Speed is the movement speed in meters per second of virtual time.
	Speed float64
	// Pause is how long the host rests at each waypoint.
	Pause sim.Time
	// Step is the position-update granularity; smaller steps cost more
	// simulation events. Zero means 1 s.
	Step sim.Time
}

// Valid reports whether the configuration is usable.
func (c Config) Valid() bool {
	return c.Field.Area() > 0 && c.Speed > 0
}

// Protocol is the per-host walker. It only moves the host; it neither
// sends nor receives messages.
type Protocol struct {
	cfg  Config
	host *node.Host

	target   geo.Point
	moving   bool
	traveled float64
}

// New returns a random-waypoint walker.
func New(cfg Config) *Protocol {
	if !cfg.Valid() {
		panic("mobility: invalid config")
	}
	if cfg.Step <= 0 {
		cfg.Step = 1e9 // 1 s
	}
	return &Protocol{cfg: cfg}
}

// Start implements node.Protocol.
func (p *Protocol) Start(h *node.Host) {
	p.host = h
	p.pickTarget()
	h.After(p.cfg.Step, p.step)
}

// Handle implements node.Protocol (the walker ignores traffic).
func (p *Protocol) Handle(h *node.Host, m wire.Message, from wire.NodeID) {}

func (p *Protocol) pickTarget() {
	p.target = geo.UniformInRect(p.host.Rand(), p.cfg.Field)
	p.moving = true
}

// step advances toward the target by Speed*Step meters.
func (p *Protocol) step() {
	if !p.moving {
		p.pickTarget()
		p.host.After(p.cfg.Step, p.step)
		return
	}
	pos := p.host.Pos()
	dist := pos.Dist(p.target)
	hop := p.cfg.Speed * p.cfg.Step.Seconds()
	if dist <= hop {
		p.host.MoveTo(p.target)
		p.traveled += dist
		p.moving = false
		p.host.After(p.cfg.Pause+p.cfg.Step, p.step)
		return
	}
	frac := hop / dist
	next := geo.Point{
		X: pos.X + (p.target.X-pos.X)*frac,
		Y: pos.Y + (p.target.Y-pos.Y)*frac,
	}
	// Numerical safety: stay inside the field.
	next.X = math.Min(math.Max(next.X, p.cfg.Field.MinX), p.cfg.Field.MaxX)
	next.Y = math.Min(math.Max(next.Y, p.cfg.Field.MinY), p.cfg.Field.MaxY)
	p.host.MoveTo(next)
	p.traveled += hop
	p.host.After(p.cfg.Step, p.step)
}

// Traveled returns the total distance this host has moved.
func (p *Protocol) Traveled() float64 { return p.traveled }
