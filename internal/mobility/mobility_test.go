package mobility

import (
	"testing"
	"time"

	"clusterfds/internal/cluster"
	"clusterfds/internal/fds"
	"clusterfds/internal/geo"
	"clusterfds/internal/intercluster"
	"clusterfds/internal/node"
	"clusterfds/internal/radio"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

func walkerCfg(side float64, speed float64) Config {
	return Config{
		Field: geo.NewRect(side, side),
		Speed: speed,
		Pause: sim.Time(2 * time.Second),
		Step:  sim.Time(time.Second),
	}
}

func TestWalkerStaysInFieldAndMoves(t *testing.T) {
	k := sim.New(1)
	m := radio.New(k, radio.Defaults(0))
	field := geo.NewRect(300, 300)
	h := node.New(k, m, 1, geo.Point{X: 150, Y: 150})
	w := New(walkerCfg(300, 5))
	h.Use(w)
	h.Boot()

	last := h.Pos()
	moved := false
	for i := 0; i < 600; i++ {
		k.RunUntil(sim.Time(i+1) * sim.Time(time.Second))
		p := h.Pos()
		if !field.Contains(p) {
			t.Fatalf("host left the field: %v", p)
		}
		if p != last {
			// Per-step displacement must respect the speed limit.
			if d := p.Dist(last); d > 5.0+1e-9 {
				t.Fatalf("hop of %.2f m exceeds speed", d)
			}
			moved = true
		}
		last = p
	}
	if !moved {
		t.Fatal("host never moved")
	}
	if w.Traveled() < 100 {
		t.Errorf("traveled only %.1f m in 10 min at 5 m/s", w.Traveled())
	}
}

func TestCrashedHostStopsMoving(t *testing.T) {
	k := sim.New(2)
	m := radio.New(k, radio.Defaults(0))
	h := node.New(k, m, 1, geo.Point{X: 10, Y: 10})
	h.Use(New(walkerCfg(200, 10)))
	h.Boot()
	k.RunUntil(sim.Time(30 * time.Second))
	h.Crash()
	frozen := h.Pos()
	k.RunUntil(sim.Time(90 * time.Second))
	if h.Pos() != frozen {
		t.Error("crashed host kept walking")
	}
}

// TestMobileFieldKeepsDetecting runs the full stack with slowly mobile
// members: clusters must keep re-forming and a real crash must still be
// detected and disseminated, while accuracy damage (transient false
// detections from hosts wandering out of range) is repaired by rescission.
func TestMobileFieldKeepsDetecting(t *testing.T) {
	k := sim.New(3)
	m := radio.New(k, radio.Defaults(0.05))
	timing := cluster.DefaultTiming()
	field := geo.NewRect(320, 320)
	const n = 35
	var hosts []*node.Host
	var fdss []*fds.Protocol
	for i := 0; i < n; i++ {
		h := node.New(k, m, wire.NodeID(i+1), geo.UniformInRect(k.Rand(), field))
		cl := cluster.New(cluster.DefaultConfig())
		f := fds.New(fds.DefaultConfig(timing), cl)
		fw := intercluster.New(intercluster.DefaultConfig(timing), cl, f)
		h.Use(cl)
		h.Use(f)
		h.Use(fw)
		// 1 m/s: a host crosses ~10 m per heartbeat interval — slow
		// migration, the regime the paper's "sound clustering will
		// support cluster stability" remark targets.
		h.Use(New(Config{Field: field, Speed: 1, Pause: sim.Time(5 * time.Second), Step: sim.Time(time.Second)}))
		hosts = append(hosts, h)
		fdss = append(fdss, f)
	}
	for _, h := range hosts {
		h.Boot()
	}

	victim := wire.NodeID(17)
	k.At(timing.EpochStart(4)+timing.Interval/2, func() { hosts[victim-1].Crash() })
	k.RunUntil(timing.EpochStart(16))

	aware, operational := 0, 0
	for i, f := range fdss {
		if hosts[i].Crashed() {
			continue
		}
		operational++
		if f.IsSuspected(victim) {
			aware++
		}
	}
	if aware < operational-2 {
		t.Errorf("only %d/%d mobile hosts learned of the crash", aware, operational)
	}

	// Outstanding false suspicions must be limited to in-flight churn.
	stale := 0
	for i, f := range fdss {
		if hosts[i].Crashed() {
			continue
		}
		for _, s := range f.KnownFailed() {
			if s != victim && !hosts[s-1].Crashed() {
				stale++
			}
		}
	}
	if stale > 3*operational {
		t.Errorf("excessive stale suspicions under slow mobility: %d", stale)
	}
}

func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero":       {},
		"no speed":   {Field: geo.NewRect(10, 10)},
		"zero field": {Speed: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			New(cfg)
		}()
	}
}
