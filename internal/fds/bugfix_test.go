package fds

// Regression tests for the timer-lifecycle and epoch-accounting fixes. Each
// test fails against the pre-fix code it names.

import (
	"testing"
	"time"

	"clusterfds/internal/cluster"
	"clusterfds/internal/geo"
	"clusterfds/internal/node"
	"clusterfds/internal/radio"
	"clusterfds/internal/sim"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

// TestForwardTimerRemovedAfterFire pins the forward-timer lifecycle: once a
// peer's forwarding timer fires and the ForwardedUpdate is sent, its entry
// must leave the forwardTimers map immediately. Pre-fix, the fired entry
// lingered until the next epoch's cancelForwardTimers sweep, so the map
// retained a stale handle to a recycled pooled-event slot and its size no
// longer reflected the number of pending forwards.
func TestForwardTimerRemovedAfterFire(t *testing.T) {
	w := buildWorld(t, worldConfig{seed: 11}, star(6, 60))
	e := wire.Epoch(3)
	start := w.timing.EpochStart(e)
	// Cut only the CH->node3 link across the R-3 update's flight window
	// (update broadcast at exactly R2End = 2*Thop = 40ms; max delivery
	// delay 12ms). Digests are all delivered by ~37ms, so a 38ms..53ms
	// block loses nothing but the health update on that one link.
	w.kernel.At(start+38*sim.Time(time.Millisecond), func() { w.medium.SetLinkLoss(1, 3, 1) })
	w.kernel.At(start+53*sim.Time(time.Millisecond), func() { w.medium.SetLinkLoss(1, 3, -1) })
	// Suppress the requester's acknowledgment (as a lossy channel would):
	// without the ack, every responder's timer fires and transmits, and the
	// fired timer itself is the only thing that can clean up its map entry.
	// (With the ack through, onForwardAck masks the leak by deleting the
	// fired entry a moment later.)
	w.kernel.At(start+w.timing.Thop, func() { w.fds[2].ackedForward = true })
	w.kernel.RunUntil(start + w.midEpoch())

	// The scenario must actually exercise peer forwarding.
	if w.tracer.Count(trace.TypePeerForward) == 0 {
		t.Fatal("no peer forward happened; scenario broken")
	}
	if !w.fds[2].UpdateReceived() {
		t.Fatal("requester never obtained the update")
	}
	// Long after the forward/ack exchange drained, no host may hold a
	// forward-timer entry: answered requests are deleted by the ack, fired
	// timers must delete themselves.
	for i, f := range w.fds {
		if n := f.pendingForwards(); n != 0 {
			t.Errorf("node %d retains %d live forward-timer entries after fire", i+1, n)
		}
	}
}

// lateBootWorld is buildWorld plus one extra host (node n+1, near the
// cluster center) whose Boot is deferred to the given instant.
func lateBootWorld(t *testing.T, seed int64, positions []geo.Point, latePos geo.Point, bootAt sim.Time) (*world, *Protocol) {
	t.Helper()
	k := sim.New(seed)
	tr := trace.NewMemory(trace.TypeDetect, trace.TypeFalseDetect, trace.TypePeerForward)
	m := radio.New(k, radio.Defaults(0))
	w := &world{kernel: k, medium: m, timing: cluster.DefaultTiming(), tracer: tr}
	all := append(append([]geo.Point(nil), positions...), latePos)
	for i, pos := range all {
		h := node.New(k, m, wire.NodeID(i+1), pos, node.WithTrace(tr))
		cl := cluster.New(cluster.DefaultConfig())
		f := New(DefaultConfig(w.timing), cl)
		h.Use(cl)
		h.Use(f)
		w.hosts = append(w.hosts, h)
		w.cls = append(w.cls, cl)
		w.fds = append(w.fds, f)
	}
	for _, h := range w.hosts[:len(positions)] {
		h.Boot()
	}
	late := w.hosts[len(positions)]
	k.At(bootAt, func() { late.Boot() })
	return w, w.fds[len(positions)]
}

// TestHeartbeatEvidenceRequiresActive pins the evidence-gating fix: R-1
// heartbeat evidence, like R-2 digest evidence, is collected only by epoch
// participants (p.active). A host booted mid-epoch waits for the next
// boundary and is not active (not a marked member) when that epoch starts,
// so the heartbeats it overhears must not accumulate in heardHB. Pre-fix,
// onHeartbeat recorded unconditionally while onDigest checked p.active.
func TestHeartbeatEvidenceRequiresActive(t *testing.T) {
	tm := cluster.DefaultTiming()
	bootAt := tm.EpochStart(2) + tm.Interval/2
	w, late := lateBootWorld(t, 21, star(6, 60), geo.Point{X: 30, Y: 10}, bootAt)

	// Run well into epoch 3: every established node has diffused its
	// epoch-3 heartbeat and the late host has overheard them.
	w.kernel.RunUntil(tm.EpochStart(3) + 3*tm.Thop)

	if got := late.Epoch(); got != 3 {
		t.Fatalf("late host epoch = %d, want 3 (booted mid-epoch 2)", got)
	}
	if late.Active() {
		t.Fatal("late host active in its first epoch; evidence gate untestable")
	}
	if n := late.heardHB.Count(); n != 0 {
		t.Errorf("inactive late host accumulated %d heartbeat evidence entries, want 0", n)
	}
	// Established hosts, by contrast, must have full R-1 evidence.
	if n := w.fds[0].heardHB.Count(); n == 0 {
		t.Error("CH heard no heartbeats; world broken")
	}
}

// TestStartEpochBoundary pins Start's boundary decision against
// cluster.Timing: a host booted exactly on an epoch boundary joins that very
// epoch; a host booted any time strictly inside an epoch waits for the next
// boundary — never two.
func TestStartEpochBoundary(t *testing.T) {
	tm := cluster.DefaultTiming()
	cases := []struct {
		name   string
		bootAt sim.Time
		runTo  sim.Time
		want   wire.Epoch
	}{
		{"exact boundary joins current", tm.EpochStart(2), tm.EpochStart(2) + tm.Thop, 2},
		{"one tick late waits one epoch", tm.EpochStart(2) + 1, tm.EpochStart(3) + tm.Thop, 3},
		{"mid-epoch waits for next boundary", tm.EpochStart(2) + tm.Interval/2, tm.EpochStart(3) + tm.Thop, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := sim.New(1)
			m := radio.New(k, radio.Defaults(0))
			h := node.New(k, m, 1, geo.Point{})
			cl := cluster.New(cluster.DefaultConfig())
			f := New(DefaultConfig(tm), cl)
			h.Use(cl)
			h.Use(f)
			k.At(tc.bootAt, func() { h.Boot() })
			k.RunUntil(tc.runTo)
			if got := f.Epoch(); got != tc.want {
				t.Errorf("booted at %v: first epoch = %d, want %d", tc.bootAt, got, tc.want)
			}
		})
	}
}

// TestSleepExcusalPrunedForDeadSleeper pins the epoch-boundary sleep-excusal
// prune: an excusal whose wake epoch has passed must leave sleepUntil at the
// next epoch start on EVERY host that recorded it. Pre-fix, reaping happened
// only lazily inside excused(), which runs solely in the CH's detection loop
// and only for live members — so a node that died during its announced nap
// (skipped via IsFailed / dropped from membership), and every non-CH host
// that recorded the notice (members and deputies never run the detection
// rule), retained the entry forever.
func TestSleepExcusalPrunedForDeadSleeper(t *testing.T) {
	w := buildWorld(t, worldConfig{seed: 7}, star(6, 60))
	// Let the cluster form, then announce: node 3 naps through epoch 5.
	w.runUntilEpoch(3)
	notice := &wire.SleepNotice{NID: 3, Epoch: 3, Until: 5}
	for _, f := range w.fds {
		f.onSleepNotice(notice)
	}
	for _, f := range w.fds {
		if f.SleepExcusals() != 1 {
			t.Fatal("excusal not recorded; scenario broken")
		}
	}
	// The sleeper dies mid-nap: it never wakes, never heartbeats again.
	w.kernel.At(w.timing.EpochStart(4)+w.timing.Interval/2, func() { w.hosts[2].Crash() })
	// Run well past the wake-grace epoch (excused through epoch 5, expired
	// from epoch 6 on) plus one boundary so runEpoch(7)'s prune has run.
	w.runUntilEpoch(7)
	w.kernel.RunUntil(w.timing.EpochStart(7) + w.timing.Thop)

	for i, f := range w.fds {
		if i == 2 {
			continue // the crashed sleeper itself
		}
		if n := f.SleepExcusals(); n != 0 {
			t.Errorf("node %d retains %d expired sleep excusals, want 0", i+1, n)
		}
	}
	// The dead sleeper must still have been detected once its grace ended.
	if !w.fds[0].IsSuspected(3) {
		t.Error("CH never detected the dead sleeper")
	}
}
