package fds

import (
	"testing"

	"clusterfds/internal/cluster"
	"clusterfds/internal/geo"
	"clusterfds/internal/node"
	"clusterfds/internal/radio"
	"clusterfds/internal/sim"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

// world is a field of hosts running the cluster protocol and the FDS.
type world struct {
	kernel *sim.Kernel
	medium *radio.Medium
	hosts  []*node.Host
	cls    []*cluster.Protocol
	fds    []*Protocol
	timing cluster.Timing
	tracer *trace.Memory
}

type worldConfig struct {
	seed     int64
	lossProb float64
	fdsCfg   func(cluster.Timing) Config
}

func buildWorld(t *testing.T, cfg worldConfig, positions []geo.Point) *world {
	t.Helper()
	if cfg.fdsCfg == nil {
		cfg.fdsCfg = DefaultConfig
	}
	k := sim.New(cfg.seed)
	tr := trace.NewMemory(trace.TypeDetect, trace.TypeTakeover, trace.TypeFalseDetect, trace.TypePeerForward)
	m := radio.New(k, radio.Defaults(cfg.lossProb))
	w := &world{kernel: k, medium: m, timing: cluster.DefaultTiming(), tracer: tr}
	for i, pos := range positions {
		h := node.New(k, m, wire.NodeID(i+1), pos, node.WithTrace(tr))
		cl := cluster.New(cluster.DefaultConfig())
		f := New(cfg.fdsCfg(w.timing), cl)
		h.Use(cl)
		h.Use(f)
		w.hosts = append(w.hosts, h)
		w.cls = append(w.cls, cl)
		w.fds = append(w.fds, f)
	}
	for _, h := range w.hosts {
		h.Boot()
	}
	return w
}

// runUntilEpoch advances virtual time to the start of the given epoch.
func (w *world) runUntilEpoch(e wire.Epoch) {
	w.kernel.RunUntil(w.timing.EpochStart(e))
}

// crashAtEpoch crashes host idx just after epoch e begins plus the offset,
// honoring the assumption that hosts do not fail during an FDS execution
// when offset is large.
func (w *world) crashAtEpoch(idx int, e wire.Epoch, offset sim.Time) {
	w.kernel.At(w.timing.EpochStart(e)+offset, func() { w.hosts[idx].Crash() })
}

// midEpoch is an offset well past the FDS execution window.
func (w *world) midEpoch() sim.Time { return w.timing.Interval / 2 }

// star returns positions for one cluster: node 1 in the center, the rest on
// a ring of the given radius.
func star(n int, radius float64) []geo.Point {
	pts := make([]geo.Point, n)
	pts[0] = geo.Point{X: 0, Y: 0}
	for i := 1; i < n; i++ {
		pts[i] = geo.OnCircle(pts[0], radius, float64(i)*2*3.14159/float64(n-1))
	}
	return pts
}

func TestMemberFailureDetectedAndDisseminated(t *testing.T) {
	w := buildWorld(t, worldConfig{seed: 1}, star(8, 60))
	// Let the cluster form and FDS settle, then crash node 5 mid-epoch 2.
	w.crashAtEpoch(4, 2, w.midEpoch())
	w.runUntilEpoch(5)

	for i, f := range w.fds {
		if i == 4 {
			continue
		}
		if !f.IsSuspected(5) {
			t.Errorf("node %d does not know n5 failed", i+1)
		}
	}
	// The CH must not suspect anyone else.
	for _, id := range w.fds[0].KnownFailed() {
		if id != 5 {
			t.Errorf("spurious suspicion of %v", id)
		}
	}
	// Detection must be attributed to epoch 3 (first execution after the
	// crash).
	rec, ok := w.fds[0].View().Record(5)
	if !ok || rec.Epoch != 3 {
		t.Errorf("detection record = %+v, want epoch 3", rec)
	}
}

func TestNoFalseDetectionsWithoutLoss(t *testing.T) {
	w := buildWorld(t, worldConfig{seed: 2}, star(10, 70))
	w.runUntilEpoch(8)
	for i, f := range w.fds {
		if got := f.KnownFailed(); len(got) != 0 {
			t.Errorf("node %d suspects %v with p=0 and no crashes", i+1, got)
		}
	}
	if n := w.tracer.Count(trace.TypeDetect); n != 0 {
		t.Errorf("%d detections traced, want 0", n)
	}
}

func TestCHFailureTriggersDCHTakeover(t *testing.T) {
	w := buildWorld(t, worldConfig{seed: 3}, star(8, 60))
	w.runUntilEpoch(2)
	dchs := w.cls[0].View().DCHs
	if len(dchs) == 0 {
		t.Fatal("no deputies designated")
	}
	primary := dchs[0]

	w.crashAtEpoch(0, 2, w.midEpoch()) // crash the CH (node 1)
	w.runUntilEpoch(5)

	if w.tracer.Count(trace.TypeTakeover) == 0 {
		t.Fatal("no takeover traced")
	}
	// Every surviving member must know n1 failed and follow the new CH.
	for i := 1; i < len(w.fds); i++ {
		if !w.fds[i].IsSuspected(1) {
			t.Errorf("node %d does not know the CH failed", i+1)
		}
		v := w.cls[i].View()
		if v.CH != primary {
			t.Errorf("node %d follows %v, want %v", i+1, v.CH, primary)
		}
	}
	// The new CH must consider itself CH.
	newIdx := int(primary) - 1
	if !w.cls[newIdx].View().IsCH {
		t.Error("promoted deputy does not consider itself CH")
	}
}

func TestCascadedDCHTakeover(t *testing.T) {
	w := buildWorld(t, worldConfig{seed: 4}, star(9, 55))
	w.runUntilEpoch(2)
	dchs := w.cls[0].View().DCHs
	if len(dchs) < 2 {
		t.Fatalf("need two deputies, got %v", dchs)
	}
	// Crash both the CH and the primary deputy in the same inter-epoch gap.
	w.crashAtEpoch(0, 2, w.midEpoch())
	w.crashAtEpoch(int(dchs[0])-1, 2, w.midEpoch())
	w.runUntilEpoch(6)

	second := dchs[1]
	if !w.cls[int(second)-1].View().IsCH {
		t.Fatalf("second deputy %v did not take over", second)
	}
	for i := range w.fds {
		if wire.NodeID(i+1) == 1 || wire.NodeID(i+1) == dchs[0] {
			continue
		}
		if !w.fds[i].IsSuspected(1) {
			t.Errorf("node %d missed the CH failure", i+1)
		}
	}
}

func TestPeerForwardingRecoversLostUpdate(t *testing.T) {
	w := buildWorld(t, worldConfig{seed: 5}, star(8, 60))
	w.runUntilEpoch(2)
	// Sever the direct CH->n5 link so n5 never hears updates directly, and
	// crash n8 so there is something to report.
	w.medium.SetLinkLoss(1, 5, 1.0)
	w.crashAtEpoch(7, 2, w.midEpoch())
	w.runUntilEpoch(5)

	if !w.fds[4].IsSuspected(8) {
		t.Fatal("n5 never learned of the failure despite peer forwarding")
	}
	if w.tracer.Count(trace.TypePeerForward) == 0 {
		t.Error("no peer forwarding traced")
	}
}

func TestPeerForwardingDisabledLeavesGap(t *testing.T) {
	noFwd := func(tm cluster.Timing) Config {
		c := DefaultConfig(tm)
		c.PeerForwarding = false
		return c
	}
	w := buildWorld(t, worldConfig{seed: 6, fdsCfg: noFwd}, star(8, 60))
	w.runUntilEpoch(2)
	w.medium.SetLinkLoss(1, 5, 1.0)
	w.runUntilEpoch(3)
	// Sample just before epoch 4: n5 must have missed the epoch-3 update.
	w.kernel.RunUntil(w.timing.EpochStart(4) - 1)
	if w.fds[4].UpdateReceived() {
		t.Error("update received despite severed link and no peer forwarding")
	}
	if w.tracer.Count(trace.TypePeerForward) != 0 {
		t.Error("peer forwarding happened while disabled")
	}
}

func TestSinglePeerForwardPerRequest(t *testing.T) {
	// All peers hear the request, but after the first forward and ack the
	// rest must stand down: with 7 members and zero loss there must be
	// exactly one ForwardedUpdate per missed update.
	w := buildWorld(t, worldConfig{seed: 7}, star(8, 60))
	w.runUntilEpoch(2)
	w.medium.SetLinkLoss(1, 5, 1.0)
	w.runUntilEpoch(4)
	sent := w.medium.Sent(wire.KindForwardedUpdate)
	// Two epochs with a severed link -> exactly two forwards.
	if sent != 2 {
		t.Errorf("ForwardedUpdate count = %d, want 2 (one per epoch)", sent)
	}
}

func TestDigestRedundancyPreventsFalseDetection(t *testing.T) {
	// Sever both directions between the CH and n5: the CH hears neither
	// n5's heartbeat nor its digest, but other members' digests show n5
	// alive — the detection rule's condition 2 must save it.
	w := buildWorld(t, worldConfig{seed: 8}, star(8, 60))
	w.runUntilEpoch(2)
	w.medium.SetLinkLoss(5, 1, 1.0)
	w.medium.SetLinkLoss(1, 5, 1.0)
	w.runUntilEpoch(6)
	if w.fds[0].IsSuspected(5) {
		t.Error("CH falsely detected n5 despite digest evidence")
	}
	if n := w.tracer.Count(trace.TypeDetect); n != 0 {
		t.Errorf("%d detections, want 0", n)
	}
}

func TestSilencedNodeEventuallyDetected(t *testing.T) {
	// A node whose radio dies entirely is indistinguishable from a crashed
	// node and must be detected (it is partitioned, hence not
	// "operational" in the paper's sense).
	w := buildWorld(t, worldConfig{seed: 9}, star(8, 60))
	w.runUntilEpoch(2)
	w.kernel.At(w.timing.EpochStart(2)+w.midEpoch(), func() { w.medium.Silence(5, true) })
	w.runUntilEpoch(5)
	if !w.fds[0].IsSuspected(5) {
		t.Error("fully partitioned node never detected")
	}
}

func TestRescindAfterTransientSilence(t *testing.T) {
	// Silence n5 for one full epoch, then restore it: the CH should detect
	// it, then rescind the suspicion and re-admit on its next heartbeat.
	w := buildWorld(t, worldConfig{seed: 10}, star(8, 60))
	w.runUntilEpoch(2)
	w.kernel.At(w.timing.EpochStart(2)+w.midEpoch(), func() { w.medium.Silence(5, true) })
	w.kernel.At(w.timing.EpochStart(3)+w.midEpoch(), func() { w.medium.Silence(5, false) })
	w.runUntilEpoch(4)
	if !w.fds[0].IsSuspected(5) {
		t.Fatal("silenced node not detected during outage")
	}
	w.runUntilEpoch(7)
	if w.fds[0].IsSuspected(5) {
		t.Error("CH did not rescind after hearing the node again")
	}
	if !w.cls[0].View().IsMember(5) {
		t.Error("CH did not re-admit the rescinded node")
	}
}

func TestOrphanedMembersReform(t *testing.T) {
	// Tiny cluster: CH plus two members that are deputies. Crash the CH
	// and both deputies; remaining members are orphaned and must demote,
	// then form a fresh cluster.
	w := buildWorld(t, worldConfig{seed: 11}, star(6, 50))
	w.runUntilEpoch(2)
	dchs := w.cls[0].View().DCHs
	if len(dchs) != 2 {
		t.Fatalf("want 2 deputies, got %v", dchs)
	}
	w.crashAtEpoch(0, 2, w.midEpoch())
	w.crashAtEpoch(int(dchs[0])-1, 2, w.midEpoch())
	w.crashAtEpoch(int(dchs[1])-1, 2, w.midEpoch())
	w.runUntilEpoch(12)

	// Survivors must end up in a functioning cluster again.
	for i, cl := range w.cls {
		if w.hosts[i].Crashed() {
			continue
		}
		v := cl.View()
		if !v.Marked {
			t.Errorf("survivor n%d still unmarked after reformation window", i+1)
		}
		if v.CH == 1 || v.CH == dchs[0] || v.CH == dchs[1] {
			t.Errorf("survivor n%d still follows a dead CH %v", i+1, v.CH)
		}
	}
}

func TestModerateLossNoFalseDetections(t *testing.T) {
	// p = 0.1 on a dense single cluster for 10 epochs: the analysis says
	// false detection probability is ~1e-9 per node-epoch at N=20, so a
	// fixed-seed run must see none.
	w := buildWorld(t, worldConfig{seed: 12, lossProb: 0.1}, star(20, 60))
	w.runUntilEpoch(10)
	if n := w.tracer.Count(trace.TypeDetect); n != 0 {
		t.Errorf("%d detections with no crashes at p=0.1", n)
	}
	if n := w.tracer.Count(trace.TypeFalseDetect); n != 0 {
		t.Errorf("%d conflict events", n)
	}
}

func TestDetectionUnderLoss(t *testing.T) {
	// With p = 0.2, a real crash must still be detected and disseminated
	// to every survivor (completeness under loss).
	w := buildWorld(t, worldConfig{seed: 13, lossProb: 0.2}, star(12, 60))
	w.crashAtEpoch(6, 2, w.midEpoch())
	w.runUntilEpoch(8)
	for i, f := range w.fds {
		if i == 6 {
			continue
		}
		if !f.IsSuspected(7) {
			t.Errorf("node %d missed the crash of n7 at p=0.2", i+1)
		}
	}
}

func TestTwoClustersRemoteFailureViaReportMerge(t *testing.T) {
	// Without the intercluster forwarder, failure knowledge still reaches
	// the second cluster only if some host overhears — here clusters are
	// far apart, so the right cluster must NOT learn of the left failure.
	// (The intercluster package's tests verify the positive case.)
	positions := append(star(6, 50),
		geo.Point{X: 400, Y: 0}, geo.Point{X: 430, Y: 20}, geo.Point{X: 430, Y: -20})
	w := buildWorld(t, worldConfig{seed: 14}, positions)
	w.crashAtEpoch(2, 2, w.midEpoch())
	w.runUntilEpoch(6)
	if !w.fds[0].IsSuspected(3) {
		t.Fatal("left cluster missed its own failure")
	}
	for i := 6; i < 9; i++ {
		if w.fds[i].IsSuspected(3) {
			t.Errorf("isolated right cluster learned of a remote failure without a forwarder")
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cl := cluster.New(cluster.DefaultConfig())
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil cluster should panic")
			}
		}()
		New(DefaultConfig(cluster.DefaultTiming()), nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid timing should panic")
			}
		}()
		New(Config{}, cl)
	}()
}

func TestEpochAndActiveQueries(t *testing.T) {
	w := buildWorld(t, worldConfig{seed: 15}, star(5, 50))
	w.runUntilEpoch(3)
	f := w.fds[1]
	if !f.Active() {
		t.Error("member should be active")
	}
	if f.Epoch() != 3 {
		t.Errorf("Epoch = %d, want 3", f.Epoch())
	}
	if f.Conflicts() != 0 {
		t.Error("unexpected conflicts")
	}
}
