// Package fds implements the paper's core contribution: the heartbeat-style,
// cluster-based failure detection service of Section 4.
//
// Every heartbeat interval φ the service executes three rounds, each bounded
// by Thop:
//
//	fds.R-1  Heartbeat exchange. Every node diffuses a heartbeat (emitted by
//	         the co-resident cluster protocol, feature F5); the CH and a
//	         subset of the members hear or overhear each heartbeat.
//	fds.R-2  Digest exchange. Every node reports which in-cluster heartbeats
//	         it heard; the CH broadcasts its own digest.
//	fds.R-3  Health-status update. The CH applies the failure detection rule
//	         and broadcasts the cluster health status.
//
// Failure detection rule (Section 4.2): node v failed iff the CH received
// neither v's heartbeat (R-1) nor v's digest (R-2), and no received digest
// reflects awareness of v's heartbeat. The rule exploits time redundancy
// (two chances per node), spatial redundancy (dense clusters), and the
// inherent message redundancy of promiscuous receiving.
//
// CH-failure rule: the highest-ranked deputy clusterhead applies the same
// logic to the CH, with a third condition — the R-3 update was also missed —
// and takes over at the end of fds.R-3 if the CH is gone.
//
// Completeness enhancement: a member that missed the R-3 update broadcasts a
// forwarding request; peers holding the update answer after unique,
// energy-aware waiting periods (energy-balanced peer forwarding) and stand
// down when they overhear the requester's acknowledgment.
package fds

import (
	"fmt"
	"math"
	"slices"

	"clusterfds/internal/cluster"
	"clusterfds/internal/dense"
	"clusterfds/internal/membership"
	"clusterfds/internal/metrics"
	"clusterfds/internal/node"
	"clusterfds/internal/sim"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

// Config parameterizes the failure detection service.
type Config struct {
	// Timing must equal the cluster protocol's timing (shared epochs).
	Timing cluster.Timing
	// PeerForwarding enables the intra-cluster completeness enhancement.
	// The ablation benchmarks switch it off to quantify its contribution.
	PeerForwarding bool
	// RescindPropagation spreads withdrawn false detections system-wide:
	// when a CH hears a heartbeat from a node it had announced as failed
	// (proof of a false detection, under fail-stop), it lists the node in
	// its next health update's Rescinded field and the gateways carry the
	// rescission across clusters like a failure report. This extension
	// goes beyond the paper, which leaves remote views permanently
	// poisoned by a false detection; DESIGN.md discusses the trade-off.
	RescindPropagation bool
	// StrictModelMode disables the implementation's bonus evidence paths
	// that the paper's analytic model does not credit (currently: adopting
	// an overheard forwarded update addressed to another requester). The
	// Monte-Carlo validation enables it so measured rates match the
	// formulas exactly; production configurations leave it off.
	StrictModelMode bool
	// OrphanEpochs is how many consecutive epochs without a health update
	// or a CH heartbeat a member tolerates before concluding its cluster
	// has dissolved and re-entering formation.
	OrphanEpochs int
	// OrphanTakeover lets the lowest-NID surviving member of an orphaned
	// cluster declare the silent CH failed and take over, instead of the
	// cluster dissolving silently. It is the last line of defense when
	// every deputy's view was desynchronized at the moment the CH died;
	// the multi-epoch silence requirement keeps its false-positive
	// probability around P̂(False detection)^OrphanEpochs.
	OrphanTakeover bool
	// ReferenceEnergy scales the energy-aware forwarding backoff: peers
	// with more remaining energy than this wait less.
	ReferenceEnergy float64
	// Metrics, when non-nil, receives the protocol's per-epoch event series
	// (detections, false detections, rescissions, peer-forward traffic,
	// orphan events) and the update-delivery latency histogram. Instrument
	// handles are resolved once at construction; a nil registry costs
	// nothing on the hot path (nil handles are no-op instruments).
	Metrics *metrics.Registry
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig(t cluster.Timing) Config {
	return Config{
		Timing:             t,
		PeerForwarding:     true,
		RescindPropagation: true,
		OrphanTakeover:     true,
		OrphanEpochs:       3,
		ReferenceEnergy:    100000,
	}
}

// Protocol is the per-host failure detection service. It observes the same
// promiscuous message stream as the cluster protocol and mutates the cluster
// view through the latter's exported methods.
type Protocol struct {
	cfg     Config
	host    *node.Host
	cluster *cluster.Protocol
	view    membership.View

	epoch    wire.Epoch
	snapshot cluster.View // role snapshot taken at epoch start
	active   bool         // participating this epoch (marked at epoch start)

	// ids interns every NodeID this host collects evidence about onto
	// dense, stable indices; all bitset/slice state below is keyed by
	// those indices. Roster-scoped: only IDs actually heard are interned,
	// so the index space tracks neighborhood size, not network size.
	ids dense.Interner

	// R-1 evidence: in-cluster heartbeats heard this epoch. Dense bitset
	// cleared in place at each epoch boundary — the map predecessor was
	// reallocated every epoch and dominated the hot-loop profile.
	heardHB dense.Bitset

	// CH evidence (also collected by DCHs, which overhear everything the
	// CH does thanks to promiscuous receiving).
	digestFrom    dense.Bitset // members whose digest arrived
	aliveInDigest dense.Bitset // nodes some received digest lists

	// heardScratch is sendDigest's reusable member-list buffer.
	heardScratch []wire.NodeID

	// Member evidence.
	updateReceived bool
	update         *wire.HealthUpdate
	// updateStore is the persistent deep-copy buffer behind p.update when
	// the update arrived off the radio. Delivered messages are backed by the
	// receiver's decode scratch and die when the handler returns, but
	// p.update must survive to the end of the epoch (peer forwarding re-sends
	// it; CurrentUpdate exposes it to the inter-cluster layer). The buffer's
	// backing arrays are reused across epochs, so storing allocates nothing
	// in steady state.
	updateStore   wire.HealthUpdate
	missedUpdates int
	ackedForward  bool

	// Peer-forwarding responder state, dense-indexed by requester with
	// epoch-stamped validity: fwdStamp[i] == uint64(epoch)+1 marks
	// fwdTimer[i] as belonging to the current epoch (0 = no entry; the +1
	// keeps epoch 0 distinguishable from "empty"). fwdActive lists the
	// indices touched this epoch so the boundary sweep cancels only them
	// instead of scanning the whole table; duplicates are harmless because
	// Cancel is idempotent.
	fwdTimer  []sim.Timer
	fwdStamp  []uint64
	fwdActive []uint32

	// pendingRescind collects false detections withdrawn since the last
	// health update (CH only; announced in the next update's Rescinded).
	// Each entry keeps the epoch of the withdrawn detection so relayed
	// rescissions cannot cancel later, genuine detections.
	pendingRescind []wire.Rescission

	// conflictSeen counts takeover updates received for a cluster this
	// host heads while operational — the paper's "conflicting reports"
	// scenario (Section 4.2).
	conflictSeen int

	// Persistent phase callbacks and reusable message/scratch values. The
	// epoch schedule re-arms the same func values every epoch, and every
	// transport encodes during Send, so the digest/update/request message
	// structs (and the scratch slices their fields alias) are recyclable the
	// moment Send returns — the steady-state epoch allocates no per-timer
	// closures and no per-send heap messages. updMsg doubles as the buffer
	// behind p.update when this host originates the epoch's update; its
	// fields are only rewritten by the next origination, an epoch later,
	// after every alias (peer-forward copies, CurrentUpdate callers) is dead.
	epochFn, digestFn, detectFn, checkCHFn, reqFwdFn func()
	digestMsg                                        wire.Digest
	updMsg                                           wire.HealthUpdate
	fwdReqMsg                                        wire.ForwardRequest
	fwdUpdMsg                                        wire.ForwardedUpdate
	newFailedScratch                                 []wire.NodeID
	failedScratch                                    []wire.NodeID
	fwdJobFree                                       []*fwdJob

	// readingSource, when set, supplies a sensor measurement to piggyback
	// on each epoch's digest — the Section 6 "message sharing between
	// failure detection and data aggregation". See package aggregate.
	readingSource func(wire.Epoch) (float64, bool)

	// sleepUntil excuses announced sleepers from the detection rule until
	// their declared wake epoch (Section 6: reducing sleep-mode-caused
	// false detections). See package sleep. Dense-indexed; 0 means "no
	// excusal" — a valid sentinel because onSleepNotice requires
	// Until > Epoch, so every recorded wake epoch is >= 1. sleepCount
	// tracks the number of live excusals for O(1) SleepExcusals.
	sleepUntil []wire.Epoch
	sleepCount int

	// Metric handles, resolved once in New. All are valid no-op
	// instruments when cfg.Metrics is nil. The series count per-host
	// events bucketed by epoch: a failure detected by k independent hosts
	// counts k times (the paper's message-count analysis is per-host too).
	mDetect  *metrics.Series    // detections (detectAndAnnounce, CH takeover, orphan takeover)
	mFalse   *metrics.Series    // false detections observed (conflicts, self-listed)
	mRescind *metrics.Series    // fail-stop rescues: suspicions withdrawn on heartbeat
	mFwdReq  *metrics.Series    // forwarding requests broadcast
	mFwdAns  *metrics.Series    // forwarded updates actually transmitted
	mOrphan  *metrics.Series    // orphan events (takeover or demotion after silence)
	mUpdLat  *metrics.Histogram // update-delivery latency beyond R2End, seconds
}

// updateLatencyBounds are the upper bucket edges, in seconds, for the
// update-delivery latency histogram: R-3 direct delivery lands well under
// Thop (20ms default); peer forwarding adds whole slot multiples.
var updateLatencyBounds = []float64{0.02, 0.05, 0.1, 0.2, 0.5, 1, 2, 5}

// New returns an FDS bound to the given co-resident cluster protocol.
func New(cfg Config, cl *cluster.Protocol) *Protocol {
	if cl == nil {
		panic("fds: nil cluster protocol")
	}
	if !cfg.Timing.Valid() {
		panic("fds: invalid timing")
	}
	if cfg.OrphanEpochs < 1 {
		cfg.OrphanEpochs = 1
	}
	if cfg.ReferenceEnergy <= 0 {
		cfg.ReferenceEnergy = 1
	}
	r := cfg.Metrics // nil registry yields nil (no-op) handles
	return &Protocol{
		cfg:      cfg,
		cluster:  cl,
		mDetect:  r.Series("detections"),
		mFalse:   r.Series("false-detections"),
		mRescind: r.Series("rescissions"),
		mFwdReq:  r.Series("forward-requests"),
		mFwdAns:  r.Series("forward-answers"),
		mOrphan:  r.Series("orphan-events"),
		mUpdLat:  r.Histogram("update-delivery-s", updateLatencyBounds),
	}
}

// Start implements node.Protocol: it enters the epoch loop at the next
// epoch boundary — the current epoch if the host boots exactly on its
// start, the following one otherwise.
func (p *Protocol) Start(h *node.Host) {
	p.host = h
	// One closure per callback per lifetime, re-armed every epoch. The
	// boundary callback derives its epoch from the clock (it fires exactly at
	// EpochStart(e)); the in-epoch phase callbacks read p.epoch, which
	// runEpoch set when their epoch began.
	p.epochFn = func() { p.runEpoch(p.cfg.Timing.EpochOf(p.host.Now())) }
	p.digestFn = func() { p.sendDigest(p.epoch) }
	p.detectFn = func() { p.detectAndAnnounce(p.epoch) }
	p.checkCHFn = func() { p.checkCHFailure(p.epoch) }
	p.reqFwdFn = func() { p.maybeRequestForward(p.epoch) }
	e := p.cfg.Timing.EpochOf(h.Now())
	// EpochOf floors, so EpochStart(e) <= Now() whenever the product does
	// not saturate; comparing for exact equality (rather than ordering)
	// keeps the boundary decision correct even when EpochStart is pinned
	// at its saturation ceiling for astronomically late boots.
	if h.Now() != p.cfg.Timing.EpochStart(e) {
		e++
	}
	p.scheduleEpoch(e)
}

func (p *Protocol) scheduleEpoch(e wire.Epoch) {
	at := p.cfg.Timing.EpochStart(e)
	p.host.AfterBatched(at-p.host.Now(), p.epochFn)
}

// runEpoch executes one FDS execution for this host.
func (p *Protocol) runEpoch(e wire.Epoch) {
	p.finishEpoch() // settle orphan accounting for the epoch that just ended
	p.epoch = e
	p.pruneSleepers(e)
	p.snapshot = p.cluster.View()
	p.active = p.snapshot.Marked
	p.heardHB.Clear()
	p.digestFrom.Clear()
	p.aliveInDigest.Clear()
	p.updateReceived = false
	p.update = nil
	p.ackedForward = false
	p.cancelForwardTimers()
	t := p.cfg.Timing

	p.scheduleEpoch(e + 1)
	if !p.active {
		return
	}
	if p.host.Tracing() {
		p.host.Trace(trace.TypeEpochStart, fmt.Sprintf("epoch=%d ch=%v", e, p.snapshot.CH))
	}

	// The R-1 heartbeat itself is emitted by the cluster protocol (F5).

	// fds.R-2: digest exchange.
	jitter := sim.Time(p.host.Rand().Int63n(t.JitterSpan()))
	p.host.After(t.R1End()+jitter, p.digestFn)

	if p.snapshot.IsCH {
		// fds.R-3: apply the detection rule and broadcast the update.
		p.host.AfterBatched(t.R2End(), p.detectFn)
		return
	}

	// Deputy clusterheads watch the CH. The highest-ranked deputy decides
	// at the end of fds.R-3; lower-ranked deputies wait one extra round
	// per rank (longer than any delivery delay) so they only act if their
	// predecessors' takeover updates never appear.
	if rank := p.dchRank(); rank > 0 {
		delay := t.R3End() + sim.Time(rank-1)*t.Thop
		p.host.AfterBatched(delay, p.checkCHFn)
	}

	// Members that reach the end of fds.R-3 without the health update ask
	// peers for it. The request waits out the full deputy cascade so a
	// takeover update still counts as "received".
	if p.cfg.PeerForwarding {
		wait := t.R3End() + sim.Time(len(p.snapshot.DCHs))*t.Thop + t.Thop/2
		p.host.AfterBatched(wait, p.reqFwdFn)
	}
}

// finishEpoch performs end-of-epoch accounting for orphan detection: a
// member that saw neither a health update nor its CH's heartbeat this epoch
// counts a miss; enough consecutive misses demote it back to formation.
func (p *Protocol) finishEpoch() {
	if !p.active || p.snapshot.IsCH {
		return
	}
	if p.updateReceived || p.hbHeard(p.snapshot.CH) {
		p.missedUpdates = 0
		return
	}
	p.missedUpdates++
	if p.missedUpdates < p.cfg.OrphanEpochs {
		return
	}
	p.missedUpdates = 0
	ch := p.snapshot.CH
	if p.cfg.OrphanTakeover && !p.view.IsFailed(ch) && p.lowestSurvivingMember() {
		// Last-resort takeover: several epochs of total CH silence (no
		// heartbeat, no update, epoch after epoch) mean the CH and every
		// functioning deputy are gone; report the failure rather than let
		// the cluster dissolve without a trace.
		p.view.MarkFailed(ch, p.epoch, p.host.Now())
		p.host.Trace(trace.TypeDetect, ch.String())
		p.mDetect.Add(uint64(p.epoch), 1)
		p.mOrphan.Add(uint64(p.epoch), 1)
		p.cluster.TakeOver()
		p.newFailedScratch = append(p.newFailedScratch[:0], ch)
		p.host.Send(p.fillUpdate(ch, p.epoch, p.newFailedScratch, true))
		return
	}
	p.mOrphan.Add(uint64(p.epoch), 1)
	p.cluster.Demote()
	p.host.Trace(trace.TypeViewUpdate, "orphaned: re-entering formation")
}

// lowestSurvivingMember reports whether this host has the lowest NID among
// the members demonstrably alive — those whose heartbeat it heard in the
// epoch that just ended (a silent member may be as dead as the CH, so only
// heard members count as rivals). It is evaluated from finishEpoch, before
// the per-epoch evidence resets.
func (p *Protocol) lowestSurvivingMember() bool {
	me := p.host.ID()
	for _, id := range p.snapshot.Members {
		if id == me || id == p.snapshot.CH || p.view.IsFailed(id) {
			continue
		}
		if id < me && p.hbHeard(id) {
			return false
		}
	}
	return true
}

// hbHeard reports whether id's heartbeat was heard this epoch.
func (p *Protocol) hbHeard(id wire.NodeID) bool {
	i, ok := p.ids.Lookup(id)
	return ok && p.heardHB.Get(i)
}

// anyEvidence reports whether any of the detection rule's three evidence
// sources vouches for id this epoch: its heartbeat was heard (fds.R-1), its
// digest arrived (fds.R-2), or some received digest lists it as heard.
func (p *Protocol) anyEvidence(id wire.NodeID) bool {
	i, ok := p.ids.Lookup(id)
	return ok && (p.heardHB.Get(i) || p.digestFrom.Get(i) || p.aliveInDigest.Get(i))
}

// dchRank returns this host's 1-based rank among the snapshot's deputy
// clusterheads, or 0 if it is not a deputy.
func (p *Protocol) dchRank() int {
	for i, d := range p.snapshot.DCHs {
		if d == p.host.ID() {
			return i + 1
		}
	}
	return 0
}

// sendDigest broadcasts this host's fds.R-2 digest: the in-cluster
// heartbeats heard during fds.R-1.
func (p *Protocol) sendDigest(e wire.Epoch) {
	heard := p.heardScratch[:0]
	p.heardHB.ForEach(func(i uint32) {
		if id := p.ids.NodeID(i); p.snapshot.IsMember(id) {
			heard = append(heard, id)
		}
	})
	// Bitset order is interning order, not NID order; sort so the digest's
	// member list is byte-identical to the map-era output.
	slices.Sort(heard)
	p.heardScratch = heard
	d := &p.digestMsg
	d.NID, d.CH, d.Epoch, d.Heard = p.host.ID(), p.snapshot.CH, e, heard
	d.HasReading, d.Reading = false, 0
	if p.readingSource != nil {
		if v, ok := p.readingSource(e); ok {
			d.HasReading = true
			d.Reading = v
		}
	}
	p.host.Send(d)
}

// SetReadingSource registers a sampler whose value rides each epoch's
// digest (the aggregation service's hook; see package aggregate). Passing
// nil removes the source.
func (p *Protocol) SetReadingSource(src func(wire.Epoch) (float64, bool)) {
	p.readingSource = src
}

// detectAndAnnounce applies the failure detection rule on the CH and
// broadcasts the health-status update (fds.R-3).
//
// Rule: v failed iff (1) the CH received neither v's heartbeat in fds.R-1
// nor v's digest in fds.R-2, and (2) no received digest reflects a member's
// awareness of v's heartbeat.
func (p *Protocol) detectAndAnnounce(e wire.Epoch) {
	newFailed := p.newFailedScratch[:0]
	for _, v := range p.snapshot.Members {
		if v == p.host.ID() || p.view.IsFailed(v) || p.excused(v, e) {
			continue
		}
		if !p.anyEvidence(v) {
			newFailed = append(newFailed, v)
		}
	}
	p.newFailedScratch = newFailed
	for _, v := range newFailed {
		p.view.MarkFailed(v, e, p.host.Now())
		p.host.Trace(trace.TypeDetect, v.String())
	}
	p.mDetect.Add(uint64(e), int64(len(newFailed)))
	if len(newFailed) > 0 {
		p.cluster.NoteFailed(newFailed)
	}
	up := p.fillUpdate(p.host.ID(), e, newFailed, false)
	up.Rescinded = p.pendingRescind
	p.pendingRescind = nil
	// The CH is the update's origin: record it as received so queries and
	// the inter-cluster forwarder see a uniform "this epoch's update".
	p.update = up
	p.updateReceived = true
	p.host.Send(up)
}

// fillUpdate rewrites the reusable health-update buffer as this epoch's
// origination. The caller owns p.updMsg until the next epoch's origination;
// newFailed is aliased, not copied (its backing scratch has the same
// one-epoch lifetime).
func (p *Protocol) fillUpdate(ch wire.NodeID, e wire.Epoch, newFailed []wire.NodeID, takeover bool) *wire.HealthUpdate {
	up := &p.updMsg
	up.From, up.CH, up.Epoch, up.Takeover = p.host.ID(), ch, e, takeover
	up.NewFailed = newFailed
	up.AllFailed = p.view.AppendFailed(up.AllFailed[:0])
	up.Rescinded = nil
	return up
}

// checkCHFailure applies the CH-failure detection rule on a deputy
// clusterhead at (or after, for lower ranks) the end of fds.R-3.
//
// Rule: the CH failed iff (1) the DCH received neither the CH's heartbeat in
// fds.R-1 nor the CH's digest in fds.R-2, (2) no received digest reflects
// awareness of the CH's heartbeat, and (3) the health-status update did not
// arrive in fds.R-3.
func (p *Protocol) checkCHFailure(e wire.Epoch) {
	ch := p.snapshot.CH
	if p.updateReceived || p.anyEvidence(ch) {
		return
	}
	if p.view.IsFailed(ch) {
		return
	}
	// The CH is judged failed: take over and broadcast the update.
	p.view.MarkFailed(ch, e, p.host.Now())
	p.host.Trace(trace.TypeDetect, ch.String())
	p.mDetect.Add(uint64(e), 1)
	p.cluster.TakeOver()
	p.snapshot = p.cluster.View()
	p.updateReceived = true // we originated this epoch's update
	p.newFailedScratch = append(p.newFailedScratch[:0], ch)
	up := p.fillUpdate(ch, e, p.newFailedScratch, true)
	p.update = up
	p.host.Send(up)
}

// maybeRequestForward runs at the member's report-receiving timeout: if the
// health update never arrived, broadcast a forwarding request.
func (p *Protocol) maybeRequestForward(e wire.Epoch) {
	if p.updateReceived {
		return
	}
	p.mFwdReq.Add(uint64(e), 1)
	p.fwdReqMsg = wire.ForwardRequest{NID: p.host.ID(), Epoch: e}
	p.host.Send(&p.fwdReqMsg)
}

// Handle implements node.Protocol.
func (p *Protocol) Handle(h *node.Host, m wire.Message, from wire.NodeID) {
	switch msg := m.(type) {
	case *wire.Heartbeat:
		p.onHeartbeat(msg)
	case *wire.Digest:
		p.onDigest(msg)
	case *wire.HealthUpdate:
		p.onHealthUpdate(msg, false)
	case *wire.ForwardRequest:
		p.onForwardRequest(msg)
	case *wire.ForwardedUpdate:
		p.onForwardedUpdate(msg)
	case *wire.ForwardAck:
		p.onForwardAck(msg)
	case *wire.FailureReport:
		p.onFailureReport(msg)
	case *wire.SleepNotice:
		p.onSleepNotice(msg)
	}
}

// onSleepNotice excuses the announced sleeper from failure detection until
// its declared wake epoch: a silent-by-appointment member is not a failed
// member. Deputies record excusals too (they may take over mid-nap).
func (p *Protocol) onSleepNotice(m *wire.SleepNotice) {
	if m.Until <= m.Epoch {
		return // malformed or already over
	}
	i := p.ids.Index(m.NID)
	if int(i) >= len(p.sleepUntil) {
		p.sleepUntil = append(p.sleepUntil, make([]wire.Epoch, int(i)+1-len(p.sleepUntil))...)
	}
	if cur := p.sleepUntil[i]; cur == 0 || m.Until > cur {
		if cur == 0 {
			p.sleepCount++
		}
		p.sleepUntil[i] = m.Until
	}
}

// pruneSleepers drops expired sleep excusals at the epoch boundary. excused
// only reaps lazily, on lookup — and lookups happen solely inside the CH's
// detection loop, for nodes that are members and not already believed
// failed. An excusal recorded for a node that dies during its nap (removed
// from membership or marked failed before its wake epoch), or recorded on a
// host that never runs the detection rule at all (members, deputies), was
// therefore never deleted and accreted forever. Epoch-boundary pruning
// bounds the structure by the number of currently napping nodes. An entry
// is expired once until < e: excused grants grace through epoch == until,
// so only strictly earlier wake epochs are dead weight.
func (p *Protocol) pruneSleepers(e wire.Epoch) {
	if p.sleepCount == 0 {
		return
	}
	for i, until := range p.sleepUntil {
		if until != 0 && until < e {
			p.sleepUntil[i] = 0
			p.sleepCount--
		}
	}
}

// SleepExcusals returns how many sleep excusals this host currently
// records. Expired entries are pruned at each epoch boundary, so outside a
// nap window this is zero; tests and monitors use it to pin the lifecycle.
func (p *Protocol) SleepExcusals() int { return p.sleepCount }

// excused reports whether v is an announced sleeper for epoch e (with one
// epoch of wake grace, since the sleeper's first heartbeat after waking can
// itself be lost).
func (p *Protocol) excused(v wire.NodeID, e wire.Epoch) bool {
	i, ok := p.ids.Lookup(v)
	if !ok || int(i) >= len(p.sleepUntil) {
		return false
	}
	until := p.sleepUntil[i]
	if until == 0 {
		return false
	}
	if e <= until {
		return true
	}
	p.sleepUntil[i] = 0 // nap over; stop excusing
	p.sleepCount--
	return false
}

func (p *Protocol) onHeartbeat(m *wire.Heartbeat) {
	if m.Epoch != p.epoch {
		return
	}
	// R-1 evidence is only collected by epoch participants, matching
	// onDigest's gate: a host that booted mid-epoch (active=false until the
	// next boundary) must not accumulate heartbeat evidence for an epoch it
	// never entered — finishEpoch and lowestSurvivingMember read heardHB
	// for the epoch that just ended, and pre-boundary strays would skew
	// them. (Before this gate, onHeartbeat recorded unconditionally while
	// onDigest required p.active — an inconsistency, not a design.)
	if p.active {
		p.heardHB.Set(p.ids.Index(m.NID))
	}
	// Fail-stop rescue: any heartbeat from a host this node believed
	// failed proves the belief was a false detection (crashed hosts never
	// transmit). Forget the suspicion; if we are the CH, the sender's
	// unmarked heartbeat re-admits it through the subscription path. The
	// rescue is deliberately NOT gated on p.active: stale failure beliefs
	// deserve correction whether or not this host participates this epoch.
	if rec, failed := p.view.Record(m.NID); failed {
		p.view.Forget(m.NID)
		if p.snapshot.IsCH {
			p.cluster.Readmit(m.NID)
			if p.cfg.RescindPropagation {
				p.pendingRescind = appendUnique(p.pendingRescind,
					wire.Rescission{Node: m.NID, Epoch: rec.Epoch})
			}
		}
		p.mRescind.Add(uint64(p.epoch), 1)
		if p.host.Tracing() {
			p.host.Trace(trace.TypeViewUpdate, fmt.Sprintf("rescind %v", m.NID))
		}
	}
}

func (p *Protocol) onDigest(m *wire.Digest) {
	if !p.active || m.Epoch != p.epoch {
		return
	}
	p.digestFrom.Set(p.ids.Index(m.NID))
	for _, id := range m.Heard {
		p.aliveInDigest.Set(p.ids.Index(id))
	}
}

// onHealthUpdate processes a health-status update, whether received directly
// from the CH/DCH or via peer forwarding (forwarded=true).
func (p *Protocol) onHealthUpdate(m *wire.HealthUpdate, forwarded bool) {
	if !p.active {
		// Still absorb the failure knowledge (see onFailureReport).
		p.view.Merge(m.NewFailed, m.Epoch, p.host.Now())
		p.view.Merge(m.AllFailed, 0, p.host.Now())
		p.applyRescinds(m.Rescinded, m.Epoch)
		p.view.Forget(p.host.ID())
		return
	}
	mine := m.CH == p.snapshot.CH || m.From == p.snapshot.CH
	if m.Takeover && m.CH == p.host.ID() && p.snapshot.IsCH {
		// Conflicting reports: a deputy falsely judged this operational CH
		// failed and announced a takeover. Reassert leadership.
		p.conflictSeen++
		p.mFalse.Add(uint64(m.Epoch), 1)
		p.cluster.NoteNewCH(p.host.ID(), p.host.ID())
		if p.host.Tracing() {
			p.host.Trace(trace.TypeFalseDetect, fmt.Sprintf("takeover by %v while alive", m.From))
		}
		return
	}
	if mine {
		if m.Epoch == p.epoch && !p.updateReceived {
			p.updateReceived = true
			p.update = p.storeUpdate(m)
			// Delivery latency: how long past the start of fds.R-3 (the
			// earliest instant the CH could have broadcast) the update took
			// to arrive, whether directly or via peer forwarding.
			start := p.cfg.Timing.EpochStart(p.epoch) + p.cfg.Timing.R2End()
			if now := p.host.Now(); now >= start {
				p.mUpdLat.Observe((now - start).Seconds())
			}
		}
		if m.Takeover {
			p.cluster.NoteNewCH(m.CH, m.From)
			p.snapshot.CH = m.From
		}
		local := append(append(p.failedScratch[:0], m.NewFailed...), m.AllFailed...)
		p.failedScratch = local
		p.cluster.NoteFailed(local)
	}
	// Merge failure knowledge regardless of origin cluster: overheard
	// foreign updates only improve completeness. Cumulative entries carry
	// no detection epoch, so they are recorded as epoch 0 ("old"): any
	// rescission may cancel them, and a genuine later detection arrives
	// with its own NewFailed epoch through the report flood anyway.
	p.view.Merge(m.NewFailed, m.Epoch, p.host.Now())
	p.view.Merge(m.AllFailed, 0, p.host.Now())
	p.applyRescinds(m.Rescinded, m.Epoch)
	if p.view.IsFailed(p.host.ID()) {
		// We are operational, so any claim of our own failure is a false
		// detection; never believe it. Only when our OWN cluster's update
		// disowns us do we re-enter formation (unmarked) so the next
		// heartbeat diffusion re-admits us by subscription — a foreign
		// cluster's stale list is corrected by rescind propagation, not by
		// us abandoning our cluster.
		p.view.Forget(p.host.ID())
		if mine {
			p.mFalse.Add(uint64(m.Epoch), 1)
			p.cluster.Demote()
			p.active = false
			p.host.Trace(trace.TypeFalseDetect, "self listed as failed")
		}
	}
}

// storeUpdate deep-copies a delivered health update into the protocol's
// persistent buffer and returns a pointer to it. See updateStore for why a
// delivered message cannot be retained directly.
func (p *Protocol) storeUpdate(m *wire.HealthUpdate) *wire.HealthUpdate {
	st := &p.updateStore
	st.From, st.CH, st.Epoch, st.Takeover = m.From, m.CH, m.Epoch, m.Takeover
	st.NewFailed = append(st.NewFailed[:0], m.NewFailed...)
	st.AllFailed = append(st.AllFailed[:0], m.AllFailed...)
	st.Rescinded = append(st.Rescinded[:0], m.Rescinded...)
	return st
}

// onForwardRequest implements the responder side of energy-balanced peer
// forwarding: peers holding the update answer after unique, energy-aware
// waiting periods.
func (p *Protocol) onForwardRequest(m *wire.ForwardRequest) {
	if !p.cfg.PeerForwarding || !p.active || m.Epoch != p.epoch {
		return
	}
	if !p.updateReceived || p.update == nil {
		return
	}
	if p.snapshot.IsCH {
		// The paper prefers peer forwarding over CH retransmission for
		// energy balancing; the CH leaves requests to the members.
		return
	}
	if !p.snapshot.IsMember(m.NID) {
		return
	}
	requester := m.NID
	ri := p.ids.Index(requester)
	if t, ok := p.fwdEntry(ri); ok && t.Active() {
		return
	}
	j := p.takeFwdJob()
	j.ri, j.e, j.requester, j.upd = ri, p.epoch, requester, *p.update
	p.setFwdEntry(ri, p.host.AfterArg(p.forwardWait(), fireForwardFn, j))
}

// fwdJob carries one armed peer-forward through the kernel: the snapshot of
// the update to send plus the requester bookkeeping. Jobs that fire return to
// the per-protocol pool; canceled jobs (ack overheard, epoch boundary) are
// simply dropped with their dead kernel event.
type fwdJob struct {
	p         *Protocol
	ri        uint32
	e         wire.Epoch
	requester wire.NodeID
	upd       wire.HealthUpdate
}

// fireForwardFn transmits an armed peer-forward. The job's entry leaves the
// lifecycle table immediately: a fired timer left in place would pin a stale
// Timer handle per requester served until the next epoch's boundary sweep,
// and the table would stop reflecting the pending-forward count.
var fireForwardFn sim.ArgHandler = func(a any) {
	j := a.(*fwdJob)
	p := j.p
	p.clearFwdEntry(j.ri)
	p.mFwdAns.Add(uint64(j.e), 1)
	if p.host.Tracing() {
		p.host.Trace(trace.TypePeerForward, j.requester.String())
	}
	p.fwdUpdMsg = wire.ForwardedUpdate{
		Forwarder: p.host.ID(),
		Requester: j.requester,
		Update:    j.upd,
	}
	p.host.Send(&p.fwdUpdMsg)
	j.upd = wire.HealthUpdate{} // drop slice refs before pooling
	p.fwdJobFree = append(p.fwdJobFree, j)
}

func (p *Protocol) takeFwdJob() *fwdJob {
	if n := len(p.fwdJobFree); n > 0 {
		j := p.fwdJobFree[n-1]
		p.fwdJobFree[n-1] = nil
		p.fwdJobFree = p.fwdJobFree[:n-1]
		return j
	}
	return &fwdJob{p: p}
}

// fwdEntry returns the live forward timer for dense index i, if one was
// recorded this epoch.
func (p *Protocol) fwdEntry(i uint32) (sim.Timer, bool) {
	if int(i) >= len(p.fwdStamp) || p.fwdStamp[i] != uint64(p.epoch)+1 {
		return sim.Timer{}, false
	}
	return p.fwdTimer[i], true
}

// setFwdEntry records t as index i's forward timer for the current epoch.
func (p *Protocol) setFwdEntry(i uint32, t sim.Timer) {
	if int(i) >= len(p.fwdStamp) {
		n := int(i) + 1 - len(p.fwdStamp)
		p.fwdStamp = append(p.fwdStamp, make([]uint64, n)...)
		p.fwdTimer = append(p.fwdTimer, make([]sim.Timer, n)...)
	}
	p.fwdStamp[i] = uint64(p.epoch) + 1
	p.fwdTimer[i] = t
	p.fwdActive = append(p.fwdActive, i)
}

// clearFwdEntry invalidates index i's forward entry (fired or acked).
func (p *Protocol) clearFwdEntry(i uint32) {
	if int(i) < len(p.fwdStamp) {
		p.fwdStamp[i] = 0
		p.fwdTimer[i] = sim.Timer{}
	}
}

// pendingForwards counts the forward timers still live this epoch (recorded,
// not fired, not canceled). Tests use it to pin the entry lifecycle.
func (p *Protocol) pendingForwards() int {
	n := 0
	for i, s := range p.fwdStamp {
		if s == uint64(p.epoch)+1 && p.fwdTimer[i].Active() {
			n++
		}
	}
	return n
}

// forwardWait computes this peer's waiting period for a requested forward
// (Section 4.2, "Energy Considerations"). The period is unique per node —
// it is staggered by the node's position in the sorted member list, and
// NIDs are globally unique — and within its slot it shrinks as remaining
// energy grows, so among equally-ranked peers across requests the
// energy-rich volunteer sooner.
//
// The slot width (3·Thop) covers a complete forward + acknowledgment round
// trip including delivery-delay skew, so when the first forward succeeds
// every later peer overhears the ack before its own timer fires and stands
// down without transmitting.
func (p *Protocol) forwardWait() sim.Time {
	slot := 3 * p.cfg.Timing.Thop
	index := 1
	for i, id := range p.snapshot.Members {
		if id == p.host.ID() {
			index = i + 1
			break
		}
	}
	// bias in [0, Thop/2): inversely related to remaining energy.
	e := math.Max(p.host.Energy(), 0)
	frac := p.cfg.ReferenceEnergy / (p.cfg.ReferenceEnergy + e) // 1 at E=0, ->0 as E grows
	bias := sim.Time(float64(p.cfg.Timing.Thop) / 2 * frac)
	return sim.Time(index-1)*slot + bias
}

func (p *Protocol) onForwardedUpdate(m *wire.ForwardedUpdate) {
	if !p.active || m.Update.Epoch != p.epoch {
		return
	}
	if m.Requester == p.host.ID() {
		if !p.ackedForward {
			p.ackedForward = true
			p.host.Send(&wire.ForwardAck{NID: p.host.ID(), Epoch: p.epoch})
		}
		p.onHealthUpdate(&m.Update, true)
		return
	}
	// Promiscuous bonus: any member still missing the update adopts an
	// overheard forward (not credited by the analytic model, hence gated).
	if !p.updateReceived && !p.cfg.StrictModelMode {
		p.onHealthUpdate(&m.Update, true)
	}
}

// onForwardAck stands down pending forwards for the acknowledged requester:
// "the other neighbors will quit upon overhearing an acknowledgment".
func (p *Protocol) onForwardAck(m *wire.ForwardAck) {
	if m.Epoch != p.epoch {
		return
	}
	if i, ok := p.ids.Lookup(m.NID); ok {
		if t, live := p.fwdEntry(i); live {
			t.Cancel()
			p.clearFwdEntry(i)
		}
	}
}

// onFailureReport merges inter-cluster failure news. Forwarding of the
// report across the backbone is the intercluster package's concern; here we
// only absorb the knowledge.
func (p *Protocol) onFailureReport(m *wire.FailureReport) {
	// Failure knowledge is merged unconditionally: a host that is still in
	// (or back in) cluster formation when a report flood passes by would
	// otherwise miss it forever, because reports are only re-flooded when
	// new failures occur ("no news is good news").
	p.view.Merge(m.NewFailed, m.Epoch, p.host.Now())
	p.view.Merge(m.AllFailed, 0, p.host.Now())
	p.applyRescinds(m.Rescinded, m.Epoch)
	p.view.Forget(p.host.ID()) // we are alive, whatever the report claims
	if p.active && p.snapshot.IsCH {
		p.failedScratch = append(append(p.failedScratch[:0], m.NewFailed...), m.AllFailed...)
		p.cluster.NoteFailed(p.failedScratch)
	}
}

// applyRescinds withdraws suspicions a rescission proves false. A
// rescission cancels only detections at or before ITS pinned epoch, so a
// failure genuinely detected later survives every relayed echo.
func (p *Protocol) applyRescinds(rs []wire.Rescission, _ wire.Epoch) {
	if !p.cfg.RescindPropagation {
		return
	}
	for _, r := range rs {
		rec, ok := p.view.Record(r.Node)
		if !ok || rec.Epoch > r.Epoch {
			continue
		}
		p.view.Forget(r.Node)
		if p.active && p.snapshot.IsCH {
			// Keep relaying the correction on the CH's next update,
			// preserving the original rescission epoch.
			p.pendingRescind = appendUnique(p.pendingRescind, r)
		}
	}
}

// appendUnique appends r unless its node is already listed (lists are tiny).
func appendUnique(rs []wire.Rescission, r wire.Rescission) []wire.Rescission {
	for _, x := range rs {
		if x.Node == r.Node {
			return rs
		}
	}
	return append(rs, r)
}

func (p *Protocol) cancelForwardTimers() {
	for _, i := range p.fwdActive {
		// Duplicates and already-fired entries are fine: Cancel on a stale
		// generation-stamped handle is inert, and clearing twice is a no-op.
		p.fwdTimer[i].Cancel()
		p.clearFwdEntry(i)
	}
	p.fwdActive = p.fwdActive[:0]
}

// --- queries -----------------------------------------------------------------

// View returns the host's failure knowledge.
func (p *Protocol) View() *membership.View { return &p.view }

// KnownFailed returns the hosts this node believes failed, in NID order.
func (p *Protocol) KnownFailed() []wire.NodeID { return p.view.Failed() }

// IsSuspected reports whether this host believes id failed.
func (p *Protocol) IsSuspected(id wire.NodeID) bool { return p.view.IsFailed(id) }

// Epoch returns the current FDS epoch at this host.
func (p *Protocol) Epoch() wire.Epoch { return p.epoch }

// CurrentUpdate returns this epoch's health-status update as known to this
// host (for the CH: the update it broadcast; for members: the one received),
// and whether one exists yet.
func (p *Protocol) CurrentUpdate() (wire.HealthUpdate, bool) {
	if !p.updateReceived || p.update == nil {
		return wire.HealthUpdate{}, false
	}
	return *p.update, true
}

// UpdateReceived reports whether this host obtained the current epoch's
// health-status update (directly or via peer forwarding). The completeness
// experiments sample it just before the next epoch begins.
func (p *Protocol) UpdateReceived() bool { return p.updateReceived }

// Active reports whether the host participated in the current epoch (it was
// a marked cluster member at the epoch start).
func (p *Protocol) Active() bool { return p.active }

// Conflicts returns how many conflicting takeover announcements this host
// observed for clusters it heads (the Section 4.2 conflicting-reports
// scenario; expected to be extremely rare).
func (p *Protocol) Conflicts() int { return p.conflictSeen }
