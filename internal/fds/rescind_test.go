package fds

import (
	"testing"

	"clusterfds/internal/cluster"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

// These tests cover the extensions layered on the paper's protocol:
// rescind propagation (with epoch pinning), orphan takeover, and the
// self-accusation handling rules. They reuse the world harness from
// fds_test.go.

func TestRescindPropagatesAcrossCluster(t *testing.T) {
	w := buildWorld(t, worldConfig{seed: 30}, star(8, 60))
	w.runUntilEpoch(2)
	// Silence n5 for one epoch: the CH detects it and announces; every
	// member learns of the "failure".
	w.kernel.At(w.timing.EpochStart(2)+w.midEpoch(), func() { w.medium.Silence(5, true) })
	w.runUntilEpoch(4)
	for i := 0; i < 4; i++ {
		if !w.fds[i].IsSuspected(5) {
			t.Fatalf("node %d never learned of the detection", i+1)
		}
	}
	// Restore: the CH hears n5 again, rescinds, and the rescission must
	// reach every member — not just the CH.
	w.kernel.At(w.timing.EpochStart(4)+w.midEpoch(), func() { w.medium.Silence(5, false) })
	w.runUntilEpoch(8)
	for i, f := range w.fds {
		if f.IsSuspected(5) {
			t.Errorf("node %d still suspects the rescinded n5", i+1)
		}
	}
}

func TestRescindDisabledLeavesMembersPoisoned(t *testing.T) {
	noRescind := func(tm cluster.Timing) Config {
		c := DefaultConfig(tm)
		c.RescindPropagation = false
		return c
	}
	w := buildWorld(t, worldConfig{seed: 31, fdsCfg: noRescind}, star(8, 60))
	w.runUntilEpoch(2)
	w.kernel.At(w.timing.EpochStart(2)+w.midEpoch(), func() { w.medium.Silence(5, true) })
	w.kernel.At(w.timing.EpochStart(4)+w.midEpoch(), func() { w.medium.Silence(5, false) })
	w.runUntilEpoch(8)
	// The CH forgets on its own (it hears the heartbeat), paper-faithfully.
	if w.fds[0].IsSuspected(5) {
		t.Error("CH did not locally rescind")
	}
	// But without propagation, members who never hear n5 keep the stale
	// suspicion — the paper's behaviour this extension exists to fix.
	poisoned := 0
	for i := 1; i < len(w.fds); i++ {
		if i != 4 && w.fds[i].IsSuspected(5) {
			poisoned++
		}
	}
	if poisoned == 0 {
		t.Skip("every member heard n5 directly in this topology; nothing to observe")
	}
}

// TestRescissionEpochPinning is the regression test for the echo bug: a
// rescission must never cancel a detection made AFTER it.
func TestRescissionEpochPinning(t *testing.T) {
	w := buildWorld(t, worldConfig{seed: 32}, star(8, 60))
	w.runUntilEpoch(3)
	f := w.fds[1] // an ordinary member
	// The member believes n7 failed, detected at epoch 5.
	f.view.MarkFailed(7, 5, w.kernel.Now())
	// A relayed rescission pinned to epoch 3 (older detection) arrives.
	f.applyRescinds([]wire.Rescission{{Node: 7, Epoch: 3}}, 9)
	if !f.IsSuspected(7) {
		t.Fatal("old rescission cancelled a newer detection")
	}
	// A rescission pinned at (or after) the detection epoch does cancel.
	f.applyRescinds([]wire.Rescission{{Node: 7, Epoch: 5}}, 9)
	if f.IsSuspected(7) {
		t.Fatal("matching rescission did not cancel")
	}
}

func TestGenuineDeathAfterRescindStillReported(t *testing.T) {
	// n5 is falsely detected (transient silence), rescinded... then really
	// crashes. The earlier rescission's echoes must not suppress the real
	// detection.
	w := buildWorld(t, worldConfig{seed: 33}, star(8, 60))
	w.runUntilEpoch(2)
	w.kernel.At(w.timing.EpochStart(2)+w.midEpoch(), func() { w.medium.Silence(5, true) })
	w.kernel.At(w.timing.EpochStart(3)+w.midEpoch(), func() { w.medium.Silence(5, false) })
	w.crashAtEpoch(4, 5, w.midEpoch()) // the real death, one epoch later
	w.runUntilEpoch(10)
	for i, f := range w.fds {
		if i == 4 {
			continue
		}
		if !f.IsSuspected(5) {
			t.Errorf("node %d does not know n5 really died", i+1)
		}
	}
}

func TestOrphanTakeoverReportsDeadCH(t *testing.T) {
	// Kill the CH and both deputies simultaneously: with the orphan
	// takeover the remaining members must still learn the CH failed.
	w := buildWorld(t, worldConfig{seed: 34}, star(7, 55))
	w.runUntilEpoch(2)
	dchs := w.cls[0].View().DCHs
	if len(dchs) != 2 {
		t.Fatalf("deputies = %v", dchs)
	}
	w.crashAtEpoch(0, 2, w.midEpoch())
	w.crashAtEpoch(int(dchs[0])-1, 2, w.midEpoch())
	w.crashAtEpoch(int(dchs[1])-1, 2, w.midEpoch())
	w.runUntilEpoch(12)
	unaware := 0
	for i := range w.fds {
		if w.hosts[i].Crashed() {
			continue
		}
		if !w.fds[i].IsSuspected(1) {
			unaware++
		}
	}
	// This world runs cluster+FDS only: a survivor that ends up outside
	// the orphan-takeover CH's radio range has no inter-cluster forwarder
	// to learn through, so allow at most one such hole here. The
	// full-stack variant in internal/scenario requires zero.
	if unaware > 1 {
		t.Errorf("%d survivors never learned the CH failed", unaware)
	}
	if w.tracer.Count(trace.TypeDetect) == 0 {
		t.Error("no detection traced")
	}
}

func TestOrphanTakeoverDisabledDissolvesSilently(t *testing.T) {
	noOrphan := func(tm cluster.Timing) Config {
		c := DefaultConfig(tm)
		c.OrphanTakeover = false
		return c
	}
	w := buildWorld(t, worldConfig{seed: 35, fdsCfg: noOrphan}, star(7, 55))
	w.runUntilEpoch(2)
	dchs := w.cls[0].View().DCHs
	w.crashAtEpoch(0, 2, w.midEpoch())
	for _, d := range dchs {
		w.crashAtEpoch(int(d)-1, 2, w.midEpoch())
	}
	w.runUntilEpoch(12)
	// Survivors re-form (F4) but, paper-faithfully, never report the CH.
	knows := 0
	reformed := 0
	for i := range w.fds {
		if w.hosts[i].Crashed() {
			continue
		}
		if w.fds[i].IsSuspected(1) {
			knows++
		}
		if w.cls[i].View().Marked {
			reformed++
		}
	}
	if knows != 0 {
		t.Errorf("%d survivors know of the CH failure with orphan takeover off", knows)
	}
	if reformed == 0 {
		t.Error("survivors never re-formed a cluster")
	}
}

func TestForeignAccusationDoesNotDemote(t *testing.T) {
	// A foreign cluster's stale AllFailed listing this host must neither
	// persist in its view nor make it abandon its own cluster.
	w := buildWorld(t, worldConfig{seed: 36}, star(6, 50))
	w.runUntilEpoch(3)
	f := w.fds[2]
	before := w.cls[2].View()
	f.Handle(w.hosts[2], &wire.HealthUpdate{
		From: 99, CH: 99, Epoch: f.Epoch(),
		AllFailed: []wire.NodeID{3}, // lists this host (n3)
	}, 99)
	if f.IsSuspected(3) {
		t.Error("host believes itself failed")
	}
	after := w.cls[2].View()
	if !after.Marked || after.CH != before.CH {
		t.Errorf("foreign accusation demoted the host: %+v", after)
	}
}

func TestOwnClusterAccusationDemotesAndResubscribes(t *testing.T) {
	w := buildWorld(t, worldConfig{seed: 37}, star(6, 50))
	w.runUntilEpoch(2)
	// Silence n4 for one epoch so its own CH disowns it, then restore.
	w.kernel.At(w.timing.EpochStart(2)+w.midEpoch(), func() { w.medium.Silence(4, true) })
	w.kernel.At(w.timing.EpochStart(3)+w.midEpoch(), func() { w.medium.Silence(4, false) })
	w.runUntilEpoch(8)
	v := w.cls[3].View()
	if !v.Marked || v.CH != 1 {
		t.Errorf("n4 never re-subscribed: %+v", v)
	}
	if w.fds[0].IsSuspected(4) {
		t.Error("CH still suspects the re-admitted n4")
	}
}

func TestCurrentUpdate(t *testing.T) {
	w := buildWorld(t, worldConfig{seed: 38}, star(5, 50))
	w.runUntilEpoch(2)
	w.kernel.RunUntil(w.timing.EpochStart(2) + w.timing.R3End())
	up, ok := w.fds[0].CurrentUpdate() // the CH's own update
	if !ok {
		t.Fatal("CH has no current update after R3")
	}
	if up.From != 1 || up.Epoch != 2 {
		t.Errorf("update = %+v", up)
	}
	upM, okM := w.fds[1].CurrentUpdate() // a member's received copy
	if !okM || upM.From != 1 {
		t.Errorf("member update = %+v ok=%v", upM, okM)
	}
}
