package fds

import (
	"math/rand"
	"testing"
	"testing/quick"

	"clusterfds/internal/cluster"
	"clusterfds/internal/geo"
	"clusterfds/internal/node"
	"clusterfds/internal/radio"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// newBenchProtocol builds an isolated FDS on a single silent host with a
// static cluster view, for unit-level rule driving.
func newBenchProtocol(t *testing.T, self wire.NodeID, members []wire.NodeID, dchs []wire.NodeID) (*Protocol, *node.Host, *sim.Kernel) {
	t.Helper()
	k := sim.New(int64(self) + 1000)
	m := radio.New(k, radio.Defaults(0))
	h := node.New(k, m, self, geo.Point{})
	cl := cluster.New(cluster.DefaultConfig())
	cl.InstallStaticView(1, members, dchs, self)
	f := New(DefaultConfig(cluster.DefaultTiming()), cl)
	h.Use(cl)
	h.Use(f)
	h.Boot()
	// Run to the start of epoch 0 so the FDS snapshot is installed.
	k.RunUntil(0)
	return f, h, k
}

// TestDetectionRuleProperty drives the CH's rule with random evidence
// patterns and checks the outcome against a direct transcription of the
// paper's rule: v is failed iff no heartbeat, no digest from v, and no
// digest listing v.
func TestDetectionRuleProperty(t *testing.T) {
	members := []wire.NodeID{1, 2, 3, 4, 5, 6}
	check := func(hbBits, dgBits uint8, listedBits uint8) bool {
		f, h, k := newBenchProtocol(t, 1, members, nil)
		// Synthesize epoch-0 evidence for members 2..6 from the bit masks.
		for i, v := range []wire.NodeID{2, 3, 4, 5, 6} {
			if hbBits&(1<<i) != 0 {
				f.Handle(h, &wire.Heartbeat{NID: v, Epoch: 0, Marked: true}, v)
			}
			if dgBits&(1<<i) != 0 {
				heard := []wire.NodeID{}
				for j, u := range []wire.NodeID{2, 3, 4, 5, 6} {
					if u != v && listedBits&(1<<j) != 0 {
						heard = append(heard, u)
					}
				}
				f.Handle(h, &wire.Digest{NID: v, CH: 1, Epoch: 0, Heard: heard}, v)
			}
		}
		// Run the epoch through R3 so detectAndAnnounce fires.
		k.RunUntil(cluster.DefaultTiming().R3End())

		for i, v := range []wire.NodeID{2, 3, 4, 5, 6} {
			gotHB := hbBits&(1<<i) != 0
			gotDG := dgBits&(1<<i) != 0
			listedByOther := false
			if listedBits&(1<<i) != 0 {
				// v is listed in the digests of every OTHER member that
				// delivered one.
				for j := range []wire.NodeID{2, 3, 4, 5, 6} {
					if j != i && dgBits&(1<<j) != 0 {
						listedByOther = true
					}
				}
			}
			wantFailed := !gotHB && !gotDG && !listedByOther
			if f.IsSuspected(v) != wantFailed {
				t.Logf("v=%v hb=%v dg=%v listed=%v: got %v want %v",
					v, gotHB, gotDG, listedByOther, f.IsSuspected(v), wantFailed)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

// TestForwardWaitUniqueAndOrdered: peers' waiting periods must be unique
// and ordered by member-list position, the paper's requirement for the
// energy-balanced backoff.
func TestForwardWaitUniqueAndOrdered(t *testing.T) {
	members := make([]wire.NodeID, 20)
	for i := range members {
		members[i] = wire.NodeID(i + 1)
	}
	var waits []sim.Time
	for _, self := range members[1:] { // non-CH members
		f, _, _ := newBenchProtocol(t, self, members, nil)
		waits = append(waits, f.forwardWait())
	}
	seen := map[sim.Time]wire.NodeID{}
	prev := sim.Time(-1)
	for i, w := range waits {
		if other, dup := seen[w]; dup {
			t.Fatalf("members %v and %v share waiting period %v", members[i+1], other, w)
		}
		seen[w] = members[i+1]
		if w <= prev {
			t.Fatalf("waiting periods not increasing with member rank: %v after %v", w, prev)
		}
		prev = w
	}
	// Slot spacing must cover a forward+ack round trip.
	minGap := waits[1] - waits[0]
	params := radio.Defaults(0)
	if minGap < 2*(params.MaxDelay)+sim.Time(cluster.DefaultTiming().Thop) {
		t.Errorf("slot gap %v too small to cover forward+ack", minGap)
	}
}

// TestDigestListsOnlyClusterMembers: heard heartbeats from outsiders must
// not leak into the digest.
func TestDigestListsOnlyClusterMembers(t *testing.T) {
	f, h, k := newBenchProtocol(t, 2, []wire.NodeID{1, 2, 3}, nil)
	f.Handle(h, &wire.Heartbeat{NID: 3, Epoch: 0, Marked: true}, 3)
	f.Handle(h, &wire.Heartbeat{NID: 77, Epoch: 0, Marked: true}, 77) // outsider
	_ = k
	heardSet := map[wire.NodeID]bool{}
	f.heardHB.ForEach(func(i uint32) { heardSet[f.ids.NodeID(i)] = true })
	if !heardSet[77] {
		t.Fatal("outsider heartbeat not even recorded (test setup broken)")
	}
	// Build the digest the way sendDigest would.
	var inDigest []wire.NodeID
	f.heardHB.ForEach(func(i uint32) {
		if id := f.ids.NodeID(i); f.snapshot.IsMember(id) {
			inDigest = append(inDigest, id)
		}
	})
	for _, id := range inDigest {
		if id == 77 {
			t.Error("outsider leaked into the digest")
		}
	}
}

// TestStaleEpochEvidenceIgnored: evidence stamped with the wrong epoch must
// not count.
func TestStaleEpochEvidenceIgnored(t *testing.T) {
	f, h, k := newBenchProtocol(t, 1, []wire.NodeID{1, 2, 3}, nil)
	f.Handle(h, &wire.Heartbeat{NID: 2, Epoch: 99, Marked: true}, 2) // wrong epoch
	f.Handle(h, &wire.Digest{NID: 3, CH: 1, Epoch: 99}, 3)           // wrong epoch
	k.RunUntil(cluster.DefaultTiming().R3End())
	if !f.IsSuspected(2) || !f.IsSuspected(3) {
		t.Error("stale-epoch evidence prevented detection")
	}
}

// TestSleepExcusalExpires: an excusal must lapse after the declared wake
// epoch plus grace, after which silence is failure again.
func TestSleepExcusalExpires(t *testing.T) {
	f, h, _ := newBenchProtocol(t, 1, []wire.NodeID{1, 2, 3}, nil)
	f.Handle(h, &wire.SleepNotice{NID: 2, Epoch: 0, Until: 2}, 2)
	if !f.excused(2, 1) || !f.excused(2, 2) {
		t.Error("announced sleeper not excused through its nap + grace")
	}
	if f.excused(2, 3) {
		t.Error("excusal never expired")
	}
	// Malformed notices are ignored.
	f.Handle(h, &wire.SleepNotice{NID: 3, Epoch: 5, Until: 5}, 3)
	if f.excused(3, 5) {
		t.Error("malformed notice granted an excusal")
	}
}
