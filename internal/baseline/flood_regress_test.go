package baseline

import (
	"testing"
	"time"

	"clusterfds/internal/node"
	"clusterfds/internal/radio"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// Regression: the dedup state must stay O(population), not O(heartbeats ever
// heard). The original implementation kept one map entry per (origin, seq)
// forever, so a 6-node clique running 120 intervals held ~600 entries; the
// per-origin window holds exactly one record per peer.
func TestFloodDedupStateBounded(t *testing.T) {
	pts := clique(6)
	w := buildFlood(t, 11, 0, pts)
	w.kernel.RunUntil(sim.Time(120 * time.Second))
	for i, d := range w.dets {
		f := d.(*Flood)
		if got := f.dedupStateSize(); got > len(pts) {
			t.Errorf("node %d dedup state has %d records after 120 intervals; want <= %d (population)",
				i+1, got, len(pts))
		}
		if f.KnownPopulation() != len(pts) {
			t.Errorf("node %d KnownPopulation = %d, want %d", i+1, f.KnownPopulation(), len(pts))
		}
	}
}

// Regression: a node must not process its own heartbeat when a neighbor
// echoes it back. The original implementation re-relayed the echo with TTL-1
// (a third transmission per heartbeat in a 2-node ring) and recorded
// lastSeen[self]. Post-fix a 2-node ring costs exactly 2 transmissions per
// heartbeat: the origin's send and the peer's relay.
func TestFloodSelfEchoNotRelayed(t *testing.T) {
	w := buildFlood(t, 12, 0, clique(2))
	w.kernel.RunUntil(sim.Time(20 * time.Second))
	// Each node originates 20 or 21 heartbeats in 20 s (random first phase),
	// so total originations are in [40, 42] and total sends must be exactly
	// twice that. The buggy self-echo relay pushed this to 3x.
	sent := w.medium.Sent(wire.KindFloodHeartbeat)
	if sent > 2*42 {
		t.Errorf("2-node ring sent %d flood heartbeats in 20 intervals; want <= 84 (2 per heartbeat)", sent)
	}
	if sent < 2*40 {
		t.Errorf("2-node ring sent only %d flood heartbeats; relaying seems broken", sent)
	}
	for i, d := range w.dets {
		if d.IsSuspected(wire.NodeID(i + 1)) {
			t.Errorf("node %d suspects itself", i+1)
		}
	}
}

// Regression: a late relay of a PRE-crash heartbeat must not refresh the
// origin's liveness. The original implementation bumped lastSeen for any
// unseen (origin, seq), so one stale relay masked a crash for another full
// SuspectAfter window.
func TestFloodStaleRelayDoesNotMaskCrash(t *testing.T) {
	k := sim.New(13)
	m := radio.New(k, radio.Defaults(0))
	h := node.New(k, m, 1, clique(1)[0])
	f := NewFlood(floodCfg())
	h.Use(f)
	h.Boot()

	// Hear origin 99's heartbeat seq 5 (TTL 1: no relay side effects).
	f.Handle(h, &wire.FloodHeartbeat{Origin: 99, Seq: 5, TTL: 1, Relay: 50}, 50)

	// Origin 99 then crashes: silence past SuspectAfter.
	k.RunUntil(sim.Time(10 * time.Second))
	if !f.IsSuspected(99) {
		t.Fatal("origin 99 not suspected after SuspectAfter of silence")
	}

	// A straggling relay of the OLDER seq 4 arrives. It is new to this host
	// (dedup would relay it) but it is stale evidence: suspicion must hold.
	f.Handle(h, &wire.FloodHeartbeat{Origin: 99, Seq: 4, TTL: 1, Relay: 51}, 51)
	if !f.IsSuspected(99) {
		t.Error("stale relayed heartbeat (seq 4 < delivered 5) rescinded the suspicion")
	}

	// A strictly newer heartbeat is real evidence and must rescind.
	f.Handle(h, &wire.FloodHeartbeat{Origin: 99, Seq: 6, TTL: 1, Relay: 51}, 51)
	if f.IsSuspected(99) {
		t.Error("strictly newer heartbeat did not rescind the suspicion")
	}
}

// The reorder window itself: duplicates inside the window are dropped, an
// unseen-but-stale seq inside the window is relayed once, and seqs that fall
// off the window are dropped entirely.
func TestFloodReorderWindow(t *testing.T) {
	k := sim.New(14)
	m := radio.New(k, radio.Defaults(0))
	h := node.New(k, m, 1, clique(1)[0])
	// Deliberately not booted: the host's own heartbeat ticks would pollute
	// the send count. Handle is driven directly.
	f := NewFlood(floodCfg())

	send := func(seq uint64) {
		f.Handle(h, &wire.FloodHeartbeat{Origin: 7, Seq: seq, TTL: 4, Relay: 50}, 50)
	}
	relayed := func() int64 { return m.Sent(wire.KindFloodHeartbeat) }
	k.RunUntil(sim.Time(100 * time.Millisecond)) // jittered relays flush below

	send(100)
	send(99) // in-window, unseen: relayed, no liveness credit
	send(99) // duplicate: dropped
	send(20) // 80 behind: outside the window, dropped
	k.RunUntil(sim.Time(300 * time.Millisecond))
	if got := relayed(); got != 2 {
		t.Errorf("relayed %d heartbeats, want 2 (seq 100 and the one in-window stale seq 99)", got)
	}
	if got := f.dedupStateSize(); got != 1 {
		t.Errorf("dedup state has %d origins, want 1", got)
	}
}
