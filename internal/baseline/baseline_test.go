package baseline

import (
	"testing"
	"time"

	"clusterfds/internal/geo"
	"clusterfds/internal/node"
	"clusterfds/internal/radio"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

func gossipCfg() GossipConfig {
	return GossipConfig{
		Interval:     sim.Time(time.Second),
		SuspectAfter: sim.Time(5 * time.Second),
	}
}

func floodCfg() FloodConfig {
	return FloodConfig{
		Interval:     sim.Time(time.Second),
		TTL:          8,
		SuspectAfter: sim.Time(5 * time.Second),
		RelayJitter:  sim.Time(5 * time.Millisecond),
	}
}

// line returns n positions spaced 80 m apart (a multi-hop chain).
func line(n int) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i) * 80}
	}
	return pts
}

// clique returns n mutually-in-range positions.
func clique(n int) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: float64(i%5) * 10, Y: float64(i/5) * 10}
	}
	return pts
}

type gossipWorld struct {
	kernel *sim.Kernel
	medium *radio.Medium
	hosts  []*node.Host
	dets   []Detector
}

func buildGossip(t *testing.T, seed int64, lossProb float64, pts []geo.Point) *gossipWorld {
	t.Helper()
	k := sim.New(seed)
	m := radio.New(k, radio.Defaults(lossProb))
	w := &gossipWorld{kernel: k, medium: m}
	for i, pos := range pts {
		h := node.New(k, m, wire.NodeID(i+1), pos)
		g := NewGossip(gossipCfg())
		h.Use(g)
		w.hosts = append(w.hosts, h)
		w.dets = append(w.dets, g)
		h.Boot()
	}
	return w
}

func buildFlood(t *testing.T, seed int64, lossProb float64, pts []geo.Point) *gossipWorld {
	t.Helper()
	k := sim.New(seed)
	m := radio.New(k, radio.Defaults(lossProb))
	w := &gossipWorld{kernel: k, medium: m}
	for i, pos := range pts {
		h := node.New(k, m, wire.NodeID(i+1), pos)
		f := NewFlood(floodCfg())
		h.Use(f)
		w.hosts = append(w.hosts, h)
		w.dets = append(w.dets, f)
		h.Boot()
	}
	return w
}

func TestGossipDetectsCrash(t *testing.T) {
	w := buildGossip(t, 1, 0, clique(6))
	// Let membership propagate, crash n3, then wait past SuspectAfter.
	w.kernel.RunUntil(sim.Time(3 * time.Second))
	w.hosts[2].Crash()
	w.kernel.RunUntil(sim.Time(12 * time.Second))
	for i, d := range w.dets {
		if i == 2 {
			continue
		}
		if !d.IsSuspected(3) {
			t.Errorf("node %d does not suspect the crashed n3", i+1)
		}
		if got := d.KnownFailed(); len(got) != 1 || got[0] != 3 {
			t.Errorf("node %d KnownFailed = %v", i+1, got)
		}
	}
}

func TestGossipNoFalseSuspicionsWithoutLoss(t *testing.T) {
	w := buildGossip(t, 2, 0, clique(8))
	w.kernel.RunUntil(sim.Time(30 * time.Second))
	for i, d := range w.dets {
		if got := d.KnownFailed(); len(got) != 0 {
			t.Errorf("node %d suspects %v with no crashes", i+1, got)
		}
	}
}

func TestGossipMultiHopPropagation(t *testing.T) {
	// Gossip merges tables, so counters travel multi-hop along a chain.
	w := buildGossip(t, 3, 0, line(6))
	w.kernel.RunUntil(sim.Time(20 * time.Second))
	g := w.dets[5].(*Gossip)
	if g.KnownPopulation() != 6 {
		t.Errorf("chain end knows %d hosts, want 6", g.KnownPopulation())
	}
	if len(w.dets[5].KnownFailed()) != 0 {
		t.Errorf("false suspicions on a healthy chain: %v", w.dets[5].KnownFailed())
	}
}

func TestGossipNeverHeardNotSuspected(t *testing.T) {
	w := buildGossip(t, 4, 0, clique(3))
	w.kernel.RunUntil(sim.Time(2 * time.Second))
	if w.dets[0].IsSuspected(99) {
		t.Error("suspecting a host never heard of")
	}
}

func TestFloodDetectsCrash(t *testing.T) {
	w := buildFlood(t, 5, 0, line(5))
	w.kernel.RunUntil(sim.Time(3 * time.Second))
	w.hosts[0].Crash() // crash one end of the chain
	w.kernel.RunUntil(sim.Time(12 * time.Second))
	// The far end (4 hops away) must suspect it.
	if !w.dets[4].IsSuspected(1) {
		t.Error("far end does not suspect the crashed chain head")
	}
}

func TestFloodReachesWholeChain(t *testing.T) {
	w := buildFlood(t, 6, 0, line(6))
	w.kernel.RunUntil(sim.Time(5 * time.Second))
	for i, d := range w.dets {
		f := d.(*Flood)
		if f.KnownPopulation() < 6 {
			t.Errorf("node %d heard only %d origins, want 6", i+1, f.KnownPopulation())
		}
	}
}

func TestFloodTTLLimitsReach(t *testing.T) {
	cfg := floodCfg()
	cfg.TTL = 2 // origin + one relay: reaches 2 hops
	k := sim.New(7)
	m := radio.New(k, radio.Defaults(0))
	var dets []*Flood
	for i, pos := range line(5) {
		h := node.New(k, m, wire.NodeID(i+1), pos)
		f := NewFlood(cfg)
		h.Use(f)
		dets = append(dets, f)
		h.Boot()
	}
	k.RunUntil(sim.Time(5 * time.Second))
	// Node 4 is 3 hops from node 1: out of TTL reach.
	if dets[3].KnownPopulation() >= 5 {
		t.Error("TTL=2 should not cover a 3-hop spread")
	}
	if dets[1].KnownPopulation() < 3 {
		t.Errorf("2nd node should hear at least its 2-hop vicinity, got %d", dets[1].KnownPopulation())
	}
}

func TestFloodMessageCostScalesWithPopulation(t *testing.T) {
	// The core scalability point: flooding transmissions grow superlinearly
	// with population (every node relays every heartbeat).
	count := func(n int) int64 {
		k := sim.New(8)
		m := radio.New(k, radio.Defaults(0))
		for i, pos := range clique(n) {
			h := node.New(k, m, wire.NodeID(i+1), pos)
			h.Use(NewFlood(floodCfg()))
			h.Boot()
		}
		k.RunUntil(sim.Time(5 * time.Second))
		return m.Sent(wire.KindFloodHeartbeat)
	}
	small, large := count(5), count(20)
	if large < 10*small {
		t.Errorf("flooding cost grew only %dx (%d -> %d) for 4x population; want superlinear",
			large/small, small, large)
	}
}

func TestGossipDetectionUnderLoss(t *testing.T) {
	w := buildGossip(t, 9, 0.2, clique(8))
	w.kernel.RunUntil(sim.Time(3 * time.Second))
	w.hosts[4].Crash()
	w.kernel.RunUntil(sim.Time(20 * time.Second))
	for i, d := range w.dets {
		if i == 4 {
			continue
		}
		if !d.IsSuspected(5) {
			t.Errorf("node %d missed the crash at p=0.2", i+1)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"gossip zero interval": func() { NewGossip(GossipConfig{SuspectAfter: sim.Time(time.Second)}) },
		"gossip tight suspect": func() { NewGossip(GossipConfig{Interval: sim.Time(time.Second), SuspectAfter: sim.Time(time.Second)}) },
		"flood zero ttl": func() {
			NewFlood(FloodConfig{Interval: sim.Time(time.Second), SuspectAfter: sim.Time(5 * time.Second)})
		},
		"flood zero interval": func() { NewFlood(FloodConfig{TTL: 3, SuspectAfter: sim.Time(time.Second)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}
