package baseline

import (
	"sort"

	"clusterfds/internal/node"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// FloodConfig parameterizes the flat-flooding heartbeat detector.
type FloodConfig struct {
	// Interval is each node's heartbeat period.
	Interval sim.Time
	// TTL bounds how many hops a heartbeat is relayed; it must cover the
	// network diameter for system-wide visibility.
	TTL uint8
	// SuspectAfter is how long a node's heartbeat may be absent before it
	// is suspected.
	SuspectAfter sim.Time
	// RelayJitter spreads relays over a short window to avoid synchronized
	// bursts; zero disables jitter.
	RelayJitter sim.Time
}

// Valid reports whether the configuration is usable.
func (c FloodConfig) Valid() bool {
	return c.Interval > 0 && c.TTL >= 1 && c.SuspectAfter >= 2*c.Interval
}

// floodWindow is how many sequence numbers below the highest-seen one the
// per-origin reorder window tracks. Relays arrive within a TTL-bounded number
// of hop delays of the original send, far less than 64 heartbeat intervals,
// so anything older is a duplicate or irrelevant and is dropped.
const floodWindow = 64

// floodOrigin is the bounded per-origin state that replaces the old
// per-(origin, seq) dedup map, which retained one entry per heartbeat ever
// heard and grew without bound over a run. maxSeq is the highest sequence
// delivered; recent is a floodWindow-wide bitmask of sequences at or below it
// (bit i set means seq maxSeq-i was seen); last is when maxSeq was delivered.
type floodOrigin struct {
	maxSeq uint64
	recent uint64
	last   sim.Time
}

// Flood is the per-host flat-flooding failure detector protocol. Every
// heartbeat from every node is relayed once by every other node (up to the
// TTL), which is exactly the O(population) per-message cost the paper's
// two-tier architecture avoids.
type Flood struct {
	cfg  FloodConfig
	host *node.Host

	seq     uint64
	origins map[wire.NodeID]*floodOrigin
}

// NewFlood returns a flooding detector.
func NewFlood(cfg FloodConfig) *Flood {
	if !cfg.Valid() {
		panic("baseline: invalid flood config")
	}
	return &Flood{
		cfg:     cfg,
		origins: make(map[wire.NodeID]*floodOrigin),
	}
}

// Start implements node.Protocol.
func (f *Flood) Start(h *node.Host) {
	f.host = h
	first := sim.Time(h.Rand().Int63n(int64(f.cfg.Interval)))
	h.After(first, f.tick)
}

func (f *Flood) tick() {
	f.seq++
	f.host.Send(&wire.FloodHeartbeat{
		Origin: f.host.ID(),
		Seq:    f.seq,
		TTL:    f.cfg.TTL,
		Relay:  f.host.ID(),
	})
	f.host.After(f.cfg.Interval, f.tick)
}

// Handle implements node.Protocol: record liveness and relay unseen
// heartbeats while TTL remains. Only a strictly newer sequence advances the
// origin's liveness clock — a late relay of an old heartbeat is still
// deduplicated and forwarded for coverage, but must not mask a crash by
// refreshing lastSeen with pre-crash evidence.
func (f *Flood) Handle(h *node.Host, m wire.Message, from wire.NodeID) {
	hb, ok := m.(*wire.FloodHeartbeat)
	if !ok || hb.Origin == h.ID() {
		// Our own heartbeat echoed back by a neighbor: we are not evidence
		// of our own liveness, and re-relaying it would double the flood.
		return
	}
	o, known := f.origins[hb.Origin]
	switch {
	case !known:
		f.origins[hb.Origin] = &floodOrigin{maxSeq: hb.Seq, recent: 1, last: h.Now()}
	case hb.Seq > o.maxSeq:
		if shift := hb.Seq - o.maxSeq; shift >= floodWindow {
			o.recent = 1
		} else {
			o.recent = o.recent<<shift | 1
		}
		o.maxSeq = hb.Seq
		o.last = h.Now()
	default:
		back := o.maxSeq - hb.Seq
		if back >= floodWindow {
			return // far older than anything in flight; drop
		}
		if o.recent&(1<<back) != 0 {
			return // duplicate
		}
		o.recent |= 1 << back // stale but unseen: relay, no liveness credit
	}
	if hb.TTL <= 1 {
		return
	}
	relay := &wire.FloodHeartbeat{Origin: hb.Origin, Seq: hb.Seq, TTL: hb.TTL - 1, Relay: h.ID()}
	if f.cfg.RelayJitter > 0 {
		h.After(sim.Time(h.Rand().Int63n(int64(f.cfg.RelayJitter))), func() { h.Send(relay) })
		return
	}
	h.Send(relay)
}

// IsSuspected implements Detector.
func (f *Flood) IsSuspected(id wire.NodeID) bool {
	o, known := f.origins[id]
	if !known {
		return false
	}
	return f.host.Now()-o.last > f.cfg.SuspectAfter
}

// KnownFailed implements Detector.
func (f *Flood) KnownFailed() []wire.NodeID {
	var out []wire.NodeID
	for id := range f.origins {
		if id != f.host.ID() && f.IsSuspected(id) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KnownPopulation returns how many distinct origins this host has heard,
// plus itself, mirroring Gossip.KnownPopulation.
func (f *Flood) KnownPopulation() int { return len(f.origins) + 1 }

// dedupStateSize reports the number of per-origin dedup records — the
// regression surface for the unbounded (origin, seq) map this replaced. It
// is O(population) by construction now; the test pins that.
func (f *Flood) dedupStateSize() int { return len(f.origins) }
