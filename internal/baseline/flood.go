package baseline

import (
	"sort"

	"clusterfds/internal/node"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// FloodConfig parameterizes the flat-flooding heartbeat detector.
type FloodConfig struct {
	// Interval is each node's heartbeat period.
	Interval sim.Time
	// TTL bounds how many hops a heartbeat is relayed; it must cover the
	// network diameter for system-wide visibility.
	TTL uint8
	// SuspectAfter is how long a node's heartbeat may be absent before it
	// is suspected.
	SuspectAfter sim.Time
	// RelayJitter spreads relays over a short window to avoid synchronized
	// bursts; zero disables jitter.
	RelayJitter sim.Time
}

// Valid reports whether the configuration is usable.
func (c FloodConfig) Valid() bool {
	return c.Interval > 0 && c.TTL >= 1 && c.SuspectAfter >= 2*c.Interval
}

// floodKey identifies one origin heartbeat for duplicate suppression.
type floodKey struct {
	origin wire.NodeID
	seq    uint64
}

// Flood is the per-host flat-flooding failure detector protocol. Every
// heartbeat from every node is relayed once by every other node (up to the
// TTL), which is exactly the O(population) per-message cost the paper's
// two-tier architecture avoids.
type Flood struct {
	cfg  FloodConfig
	host *node.Host

	seq      uint64
	seen     map[floodKey]bool
	lastSeen map[wire.NodeID]sim.Time
}

// NewFlood returns a flooding detector.
func NewFlood(cfg FloodConfig) *Flood {
	if !cfg.Valid() {
		panic("baseline: invalid flood config")
	}
	return &Flood{
		cfg:      cfg,
		seen:     make(map[floodKey]bool),
		lastSeen: make(map[wire.NodeID]sim.Time),
	}
}

// Start implements node.Protocol.
func (f *Flood) Start(h *node.Host) {
	f.host = h
	first := sim.Time(h.Rand().Int63n(int64(f.cfg.Interval)))
	h.After(first, f.tick)
}

func (f *Flood) tick() {
	f.seq++
	f.host.Send(&wire.FloodHeartbeat{
		Origin: f.host.ID(),
		Seq:    f.seq,
		TTL:    f.cfg.TTL,
		Relay:  f.host.ID(),
	})
	f.host.After(f.cfg.Interval, f.tick)
}

// Handle implements node.Protocol: record liveness and relay unseen
// heartbeats while TTL remains.
func (f *Flood) Handle(h *node.Host, m wire.Message, from wire.NodeID) {
	hb, ok := m.(*wire.FloodHeartbeat)
	if !ok {
		return
	}
	k := floodKey{origin: hb.Origin, seq: hb.Seq}
	if f.seen[k] {
		return
	}
	f.seen[k] = true
	if t, known := f.lastSeen[hb.Origin]; !known || h.Now() > t {
		f.lastSeen[hb.Origin] = h.Now()
	}
	if hb.TTL <= 1 {
		return
	}
	relay := &wire.FloodHeartbeat{Origin: hb.Origin, Seq: hb.Seq, TTL: hb.TTL - 1, Relay: h.ID()}
	if f.cfg.RelayJitter > 0 {
		h.After(sim.Time(h.Rand().Int63n(int64(f.cfg.RelayJitter))), func() { h.Send(relay) })
		return
	}
	h.Send(relay)
}

// IsSuspected implements Detector.
func (f *Flood) IsSuspected(id wire.NodeID) bool {
	t, known := f.lastSeen[id]
	if !known {
		return false
	}
	return f.host.Now()-t > f.cfg.SuspectAfter
}

// KnownFailed implements Detector.
func (f *Flood) KnownFailed() []wire.NodeID {
	var out []wire.NodeID
	for id := range f.lastSeen {
		if id != f.host.ID() && f.IsSuspected(id) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KnownPopulation returns how many distinct origins this host has heard.
func (f *Flood) KnownPopulation() int { return len(f.lastSeen) }
