package baseline

import (
	"sort"

	"clusterfds/internal/node"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// SWIMConfig parameterizes the SWIM-style detector (Das, Gupta, Motivala:
// ping / indirect-ping / ack with piggybacked membership rumors).
type SWIMConfig struct {
	// Interval is the protocol period: one probe per period per node.
	Interval sim.Time
	// ProbeTimeout is how long each probe stage (direct ping, then the
	// indirect ping-req) waits for an ack. The two stages must both fit
	// inside one period: 2*ProbeTimeout < Interval.
	ProbeTimeout sim.Time
	// IndirectProbes is how many proxies a ping-req enlists.
	IndirectProbes int
	// Retransmit is how many outgoing messages each rumor rides on before
	// it is retired (SWIM's lambda*log(n) dissemination budget).
	Retransmit int
	// MaxPiggyback caps the rumors carried per message.
	MaxPiggyback int
}

// Valid reports whether the configuration is usable.
func (c SWIMConfig) Valid() bool {
	return c.Interval > 0 && c.ProbeTimeout > 0 && 2*c.ProbeTimeout < c.Interval &&
		c.IndirectProbes >= 1 && c.Retransmit >= 1 && c.MaxPiggyback >= 1
}

// swimAnnounce is one queued rumor with its remaining piggyback budget.
type swimAnnounce struct {
	node   wire.NodeID
	failed bool
	left   int
}

// SWIM is the per-host SWIM-style failure detector. Each period it pings one
// randomly chosen member (the paper's basic random-probe selection, drawn
// from the kernel's seeded stream so runs stay bit-reproducible); a missed
// ack escalates to an indirect probe through IndirectProbes proxies, and
// only a miss there declares the target failed. Random selection matters:
// a deterministic cursor over the sorted member list would march in
// lockstep on every host of a dense field — the lists are near-identical —
// so each member would be probed by everyone in the same period and by
// nobody for a full cycle after, stretching worst-case detection to
// len(members) periods.
type SWIM struct {
	cfg  SWIMConfig
	host *node.Host

	members   []wire.NodeID // sorted, never includes self
	lastAlive map[wire.NodeID]sim.Time
	failed    map[wire.NodeID]bool
	announce  []swimAnnounce

	seq     uint64
	pending struct {
		target wire.NodeID
		seq    uint64
		acked  bool
	}
}

// NewSWIM returns a SWIM-style detector.
func NewSWIM(cfg SWIMConfig) *SWIM {
	if !cfg.Valid() {
		panic("baseline: invalid SWIM config (need 2*ProbeTimeout < Interval)")
	}
	return &SWIM{
		cfg:       cfg,
		lastAlive: make(map[wire.NodeID]sim.Time),
		failed:    make(map[wire.NodeID]bool),
	}
}

// Start implements node.Protocol.
func (s *SWIM) Start(h *node.Host) {
	s.host = h
	first := sim.Time(h.Rand().Int63n(int64(s.cfg.Interval)))
	h.After(first, s.tick)
}

func (s *SWIM) tick() {
	s.host.After(s.cfg.Interval, s.tick)
	target, ok := s.pickTarget()
	if !ok {
		// Nobody to probe yet (or everybody we know is already declared
		// failed). Send an unaddressed ping so neighbors can discover us
		// and rumors keep moving.
		s.seq++
		s.host.Send(&wire.SWIMPing{From: s.host.ID(), Seq: s.seq, Events: s.takeEvents()})
		return
	}
	s.seq++
	s.pending.target = target
	s.pending.seq = s.seq
	s.pending.acked = false
	s.host.Send(&wire.SWIMPing{
		From: s.host.ID(), Target: target, Seq: s.seq, Events: s.takeEvents(),
	})
	seq := s.seq
	s.host.After(s.cfg.ProbeTimeout, func() { s.directTimeout(seq) })
}

// pickTarget returns a uniformly chosen member that is not already declared
// failed, scanning onward from a random start when the first pick is failed.
func (s *SWIM) pickTarget() (wire.NodeID, bool) {
	n := len(s.members)
	if n == 0 {
		return 0, false
	}
	start := s.host.Rand().Intn(n)
	for i := 0; i < n; i++ {
		t := s.members[(start+i)%n]
		if !s.failed[t] {
			return t, true
		}
	}
	return 0, false
}

func (s *SWIM) directTimeout(seq uint64) {
	if s.pending.seq != seq || s.pending.acked {
		return
	}
	via := s.pickProxies(s.pending.target)
	if len(via) == 0 {
		// No proxy available: the direct miss is all the evidence there is.
		s.markFailed(s.pending.target)
		return
	}
	s.host.Send(&wire.SWIMPingReq{
		From: s.host.ID(), Target: s.pending.target, Seq: seq,
		Via: via, Events: s.takeEvents(),
	})
	s.host.After(s.cfg.ProbeTimeout, func() { s.indirectTimeout(seq) })
}

func (s *SWIM) indirectTimeout(seq uint64) {
	if s.pending.seq != seq || s.pending.acked {
		return
	}
	s.markFailed(s.pending.target)
}

// pickProxies returns up to IndirectProbes live members other than the
// probe target, scanning from a random start.
func (s *SWIM) pickProxies(target wire.NodeID) []wire.NodeID {
	n := len(s.members)
	if n == 0 {
		return nil
	}
	var via []wire.NodeID
	start := s.host.Rand().Intn(n)
	for i := 0; i < n; i++ {
		m := s.members[(start+i)%n]
		if m != target && !s.failed[m] {
			via = append(via, m)
			if len(via) == s.cfg.IndirectProbes {
				break
			}
		}
	}
	return via
}

// Handle implements node.Protocol.
func (s *SWIM) Handle(h *node.Host, m wire.Message, from wire.NodeID) {
	now := h.Now()
	switch msg := m.(type) {
	case *wire.SWIMPing:
		s.heard(msg.From, now)
		s.absorbEvents(msg.Events, now)
		if msg.Target == h.ID() {
			s.host.Send(&wire.SWIMAck{
				From: h.ID(), To: msg.From, Seq: msg.Seq,
				OnBehalf: msg.OnBehalf, Events: s.takeEvents(),
			})
		}
	case *wire.SWIMPingReq:
		s.heard(msg.From, now)
		s.absorbEvents(msg.Events, now)
		for _, v := range msg.Via {
			if v == h.ID() {
				// Proxy-probe the target; OnBehalf routes the ack home.
				s.host.Send(&wire.SWIMPing{
					From: h.ID(), Target: msg.Target, Seq: msg.Seq,
					OnBehalf: msg.From, Events: s.takeEvents(),
				})
				break
			}
		}
	case *wire.SWIMAck:
		s.heard(msg.From, now)
		s.absorbEvents(msg.Events, now)
		if msg.To != h.ID() {
			return
		}
		if s.pending.seq == msg.Seq && !s.pending.acked &&
			(msg.From == s.pending.target || msg.OnBehalf == s.pending.target) {
			s.pending.acked = true
			return
		}
		if msg.OnBehalf != 0 && msg.OnBehalf != h.ID() {
			// We are the proxy: relay the target's ack to the requester,
			// moving the target's identity into OnBehalf for matching.
			s.host.Send(&wire.SWIMAck{
				From: h.ID(), To: msg.OnBehalf, Seq: msg.Seq,
				OnBehalf: msg.From, Events: s.takeEvents(),
			})
		}
	}
}

// heard records direct liveness evidence: a transmission from id, which also
// discovers id as a member and rescinds any standing failure verdict.
func (s *SWIM) heard(id wire.NodeID, now sim.Time) {
	if id == 0 || id == s.host.ID() {
		return
	}
	s.addMember(id)
	s.lastAlive[id] = now
	if s.pending.target == id {
		s.pending.acked = true
	}
	if s.failed[id] {
		delete(s.failed, id)
		s.enqueue(id, false)
	}
}

// absorbEvents merges piggybacked rumors. A "failed" rumor is ignored when
// this host heard the accused transmit within the last protocol period —
// that direct evidence is fresher than any rumor, and since the radio is
// promiscuous a live accused node refutes the rumor itself within one
// period anyway. An "alive" rumor rescinds a standing verdict. Accepted
// rumors are re-queued with a fresh budget so they keep spreading.
func (s *SWIM) absorbEvents(evs []wire.SWIMEvent, now sim.Time) {
	for _, e := range evs {
		if e.Node == s.host.ID() {
			if e.Failed {
				// Refute the rumor about ourselves.
				s.enqueue(s.host.ID(), false)
			}
			continue
		}
		if e.Failed {
			if s.failed[e.Node] {
				continue
			}
			if t, known := s.lastAlive[e.Node]; known && now-t <= s.cfg.Interval {
				continue
			}
			s.addMember(e.Node)
			s.failed[e.Node] = true
			s.enqueue(e.Node, true)
		} else if s.failed[e.Node] {
			delete(s.failed, e.Node)
			s.enqueue(e.Node, false)
		}
	}
}

func (s *SWIM) markFailed(id wire.NodeID) {
	if id == 0 || id == s.host.ID() || s.failed[id] {
		return
	}
	s.failed[id] = true
	s.enqueue(id, true)
}

// enqueue adds a rumor with a full piggyback budget, replacing any queued
// rumor about the same node (the newer verdict wins).
func (s *SWIM) enqueue(id wire.NodeID, failedVerdict bool) {
	for i := range s.announce {
		if s.announce[i].node == id {
			s.announce[i].failed = failedVerdict
			s.announce[i].left = s.cfg.Retransmit
			return
		}
	}
	s.announce = append(s.announce, swimAnnounce{node: id, failed: failedVerdict, left: s.cfg.Retransmit})
}

// takeEvents pops up to MaxPiggyback rumors for an outgoing message. Charged
// rumors with budget left rotate to the back of the queue so every rumor
// gets airtime; exhausted ones retire.
func (s *SWIM) takeEvents() []wire.SWIMEvent {
	n := len(s.announce)
	if n == 0 {
		return nil
	}
	if n > s.cfg.MaxPiggyback {
		n = s.cfg.MaxPiggyback
	}
	evs := make([]wire.SWIMEvent, 0, n)
	var requeue []swimAnnounce
	for i := 0; i < n; i++ {
		a := s.announce[i]
		evs = append(evs, wire.SWIMEvent{Node: a.node, Failed: a.failed})
		a.left--
		if a.left > 0 {
			requeue = append(requeue, a)
		}
	}
	s.announce = append(s.announce[:0], s.announce[n:]...)
	s.announce = append(s.announce, requeue...)
	return evs
}

// addMember inserts id into the sorted member list if absent.
func (s *SWIM) addMember(id wire.NodeID) {
	i := sort.Search(len(s.members), func(i int) bool { return s.members[i] >= id })
	if i < len(s.members) && s.members[i] == id {
		return
	}
	s.members = append(s.members, 0)
	copy(s.members[i+1:], s.members[i:])
	s.members[i] = id
}

// IsSuspected implements Detector.
func (s *SWIM) IsSuspected(id wire.NodeID) bool { return s.failed[id] }

// KnownFailed implements Detector.
func (s *SWIM) KnownFailed() []wire.NodeID {
	var out []wire.NodeID
	for id := range s.failed {
		if id != s.host.ID() {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KnownPopulation returns how many hosts this detector has discovered,
// including itself.
func (s *SWIM) KnownPopulation() int { return len(s.members) + 1 }
