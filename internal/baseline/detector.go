package baseline

import (
	"fmt"

	"clusterfds/internal/node"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// Detector is the pluggable failure-detector seam: lifecycle (it is a
// node.Protocol, so it boots and receives messages like any other module on
// the host's radio) plus the query surface every FD in the repository
// answers. The flat baselines here, and structurally the cluster-based
// fds.Protocol, all implement it, so scenarios, metrics, and the head-to-head
// sweep matrix treat every detector uniformly.
type Detector interface {
	node.Protocol
	// IsSuspected reports whether the host suspects id has failed.
	IsSuspected(id wire.NodeID) bool
	// KnownFailed returns all suspected hosts in NID order.
	KnownFailed() []wire.NodeID
}

// Params is the common knob set for the flat detectors: one period, one
// suspicion timeout, and the flood-specific extras. Detector-specific
// constants (SWIM's probe timeout and piggyback budget, query-response's
// reply jitter) are derived from these so that every detector in a study is
// configured from the same two numbers and the comparison stays fair.
type Params struct {
	// Interval is the detector's protocol period (heartbeat, gossip round,
	// probe period, or query period).
	Interval sim.Time
	// SuspectAfter is how long liveness evidence may be absent before a
	// node is suspected. Must be at least 2*Interval.
	SuspectAfter sim.Time
	// TTL bounds flood relaying (flood only).
	TTL uint8
	// RelayJitter spreads flood relays and query responses over a short
	// window to avoid synchronized bursts; zero disables it.
	RelayJitter sim.Time
}

// New constructs a flat detector by name. Names() lists the valid names. The
// cluster-based FDS is not constructible here — it needs the whole
// clustering stack under it — and is composed by internal/scenario, which
// exposes it under the same seam.
func New(name string, p Params) (Detector, error) {
	switch name {
	case "gossip":
		return NewGossip(GossipConfig{Interval: p.Interval, SuspectAfter: p.SuspectAfter}), nil
	case "flood":
		return NewFlood(FloodConfig{
			Interval: p.Interval, TTL: p.TTL,
			SuspectAfter: p.SuspectAfter, RelayJitter: p.RelayJitter,
		}), nil
	case "swim":
		// SWIM's verdicts come from probe timeouts, not a silence timeout,
		// so Params.SuspectAfter does not apply to it.
		return NewSWIM(SWIMConfig{
			Interval:       p.Interval,
			ProbeTimeout:   p.Interval / 8,
			IndirectProbes: 3,
			Retransmit:     3,
			MaxPiggyback:   4,
		}), nil
	case "query-response":
		return NewQueryResponse(QueryResponseConfig{
			Interval: p.Interval, SuspectAfter: p.SuspectAfter,
			ResponseJitter: p.RelayJitter,
		}), nil
	case "all-pairs":
		return NewAllPairs(AllPairsConfig{Interval: p.Interval, SuspectAfter: p.SuspectAfter}), nil
	default:
		return nil, fmt.Errorf("baseline: unknown detector %q (have %v)", name, Names())
	}
}

// Names returns the flat detector names New accepts, sorted.
func Names() []string {
	return []string{"all-pairs", "flood", "gossip", "query-response", "swim"}
}
