// Detector conformance: one suite, every Detector implementation. The
// worlds are assembled by internal/scenario (an external test package, so
// no import cycle), which is also how production experiments compose the
// stacks — the suite exercises the same seam they do.
package baseline_test

import (
	"fmt"
	"testing"
	"time"

	"clusterfds/internal/baseline"
	"clusterfds/internal/scenario"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// conformanceWorld builds a small dense field (everyone in radio range) so
// every detector — including the one-hop-only ones — can see the whole
// population.
func conformanceWorld(seed int64, stack scenario.Stack) *scenario.World {
	return scenario.Build(scenario.Config{
		Seed:      seed,
		Nodes:     8,
		FieldSide: 50,
		Stack:     stack,
	})
}

func forEachStack(t *testing.T, body func(t *testing.T, stack scenario.Stack)) {
	for _, stack := range scenario.Stacks() {
		t.Run(stack.String(), func(t *testing.T) { body(t, stack) })
	}
}

// Eventual detection: after a crash and enough quiet time, every survivor
// suspects the victim and reports it in KnownFailed.
func TestConformanceEventualDetection(t *testing.T) {
	forEachStack(t, func(t *testing.T, stack scenario.Stack) {
		w := conformanceWorld(1, stack)
		timing := w.Config().Timing
		victim := w.CrashRandomAt(timing.EpochStart(3)+timing.Interval/2, 1)[0]
		w.RunEpochs(12)
		for _, id := range w.NodeIDs() {
			if id == victim {
				continue
			}
			if !w.Detector(id).IsSuspected(victim) {
				t.Errorf("node %d does not suspect crashed node %d", id, victim)
			}
			if kf := w.Detector(id).KnownFailed(); len(kf) != 1 || kf[0] != victim {
				t.Errorf("node %d KnownFailed = %v, want [%d]", id, kf, victim)
			}
		}
	})
}

// No self-suspicion, ever — not on a healthy run and not after crashes.
func TestConformanceNoSelfSuspicion(t *testing.T) {
	forEachStack(t, func(t *testing.T, stack scenario.Stack) {
		w := conformanceWorld(2, stack)
		timing := w.Config().Timing
		w.CrashRandomAt(timing.EpochStart(3)+timing.Interval/2, 2)
		w.RunEpochs(10)
		for _, id := range w.NodeIDs() {
			if w.Host(id).Crashed() {
				continue
			}
			if w.Detector(id).IsSuspected(id) {
				t.Errorf("node %d suspects itself", id)
			}
			for _, kf := range w.Detector(id).KnownFailed() {
				if kf == id {
					t.Errorf("node %d lists itself in KnownFailed", id)
				}
			}
		}
	})
}

// KnownFailed is sorted ascending and bit-identical across same-seed
// rebuilds, for several seeds.
func TestConformanceKnownFailedSortedAndDeterministic(t *testing.T) {
	forEachStack(t, func(t *testing.T, stack scenario.Stack) {
		for seed := int64(3); seed <= 5; seed++ {
			run := func() map[wire.NodeID][]wire.NodeID {
				w := conformanceWorld(seed, stack)
				timing := w.Config().Timing
				w.CrashRandomAt(timing.EpochStart(3)+timing.Interval/2, 3)
				w.RunEpochs(12)
				out := make(map[wire.NodeID][]wire.NodeID)
				for _, id := range w.NodeIDs() {
					if !w.Host(id).Crashed() {
						out[id] = w.Detector(id).KnownFailed()
					}
				}
				return out
			}
			a, b := run(), run()
			for _, id := range []wire.NodeID{1, 2, 3, 4, 5, 6, 7, 8} {
				ka, inA := a[id]
				kb, inB := b[id]
				if inA != inB || fmt.Sprint(ka) != fmt.Sprint(kb) {
					t.Errorf("seed %d node %d: KnownFailed differs across rebuilds: %v vs %v",
						seed, id, ka, kb)
				}
				for i := 1; i < len(ka); i++ {
					if ka[i-1] >= ka[i] {
						t.Errorf("seed %d node %d: KnownFailed not strictly ascending: %v", seed, id, ka)
					}
				}
			}
		}
	})
}

// Rescission on recovery: a node silenced longer than the suspicion timeout
// is (rightly) suspected; once it transmits again, every detector clears the
// suspicion. All stacks support this — a muted host's timers keep running,
// so its sequence numbers and counters jump forward on recovery.
func TestConformanceRescissionOnRecovery(t *testing.T) {
	forEachStack(t, func(t *testing.T, stack scenario.Stack) {
		w := conformanceWorld(6, stack)
		timing := w.Config().Timing
		victim := wire.NodeID(8) // high NID: never the cluster stack's CH here
		w.Kernel.At(timing.EpochStart(3), func() { w.Medium.Silence(victim, true) })
		w.RunEpochs(10) // 7 muted epochs > the 4-interval suspicion timeout
		suspectedBy := 0
		for _, id := range w.NodeIDs() {
			if id != victim && w.Detector(id).IsSuspected(victim) {
				suspectedBy++
			}
		}
		if suspectedBy == 0 {
			t.Fatalf("nobody suspected node %d after %s of transmit silence",
				victim, time.Duration(7*timing.Interval))
		}
		w.Medium.Silence(victim, false)
		w.RunEpochs(16) // RunEpochs is absolute: six more intervals
		for _, id := range w.NodeIDs() {
			if id == victim {
				continue
			}
			if w.Detector(id).IsSuspected(victim) {
				t.Errorf("node %d still suspects node %d %s after it recovered",
					id, victim, time.Duration(6*timing.Interval))
			}
			for _, kf := range w.Detector(id).KnownFailed() {
				if kf == victim {
					t.Errorf("node %d still lists recovered node %d in KnownFailed", id, victim)
				}
			}
		}
	})
}

// The registry surface: every published name constructs, unknown names
// error, and the scenario stack names for the flat detectors round-trip
// through it.
func TestConformanceRegistryNames(t *testing.T) {
	params := baseline.Params{
		Interval:     sim.Time(time.Second),
		SuspectAfter: sim.Time(4 * time.Second),
		TTL:          8,
	}
	for _, name := range baseline.Names() {
		d, err := baseline.New(name, params)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
		} else if d == nil {
			t.Errorf("New(%q) returned a nil detector", name)
		}
		if _, err := scenario.ParseStack(name); err != nil {
			t.Errorf("ParseStack(%q): %v", name, err)
		}
	}
	if _, err := baseline.New("no-such-detector", params); err == nil {
		t.Error("New accepted an unknown name")
	}
	if _, err := scenario.ParseStack("no-such-detector"); err == nil {
		t.Error("ParseStack accepted an unknown name")
	}
}
