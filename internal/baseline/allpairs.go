package baseline

import (
	"sort"

	"clusterfds/internal/node"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// AllPairsConfig parameterizes the all-pairs heartbeat strawman.
type AllPairsConfig struct {
	// Interval is the heartbeat period (per node).
	Interval sim.Time
	// SuspectAfter is how long a heartbeat may be absent before its origin
	// is suspected.
	SuspectAfter sim.Time
}

// Valid reports whether the configuration is usable.
func (c AllPairsConfig) Valid() bool {
	return c.Interval > 0 && c.SuspectAfter >= 2*c.Interval
}

// allPairsPeer is the per-origin liveness record.
type allPairsPeer struct {
	maxSeq uint64
	last   sim.Time
}

// AllPairs is the naive all-pairs heartbeat detector: every node broadcasts
// a heartbeat each period and monitors every origin it has ever heard.
// Nothing is relayed, so coverage is limited to the one-hop radio
// neighborhood; within a dense field it is the flat design whose O(n^2)
// monitoring relationships the paper's Section 3 argues against.
type AllPairs struct {
	cfg  AllPairsConfig
	host *node.Host

	seq   uint64
	peers map[wire.NodeID]allPairsPeer
}

// NewAllPairs returns an all-pairs heartbeat detector.
func NewAllPairs(cfg AllPairsConfig) *AllPairs {
	if !cfg.Valid() {
		panic("baseline: invalid all-pairs config (need Interval > 0 and SuspectAfter >= 2*Interval)")
	}
	return &AllPairs{cfg: cfg, peers: make(map[wire.NodeID]allPairsPeer)}
}

// Start implements node.Protocol.
func (a *AllPairs) Start(h *node.Host) {
	a.host = h
	first := sim.Time(h.Rand().Int63n(int64(a.cfg.Interval)))
	h.After(first, a.tick)
}

func (a *AllPairs) tick() {
	a.seq++
	a.host.Send(&wire.AllPairsHeartbeat{Origin: a.host.ID(), Seq: a.seq})
	a.host.After(a.cfg.Interval, a.tick)
}

// Handle implements node.Protocol: only a strictly newer sequence advances an
// origin's liveness clock.
func (a *AllPairs) Handle(h *node.Host, m wire.Message, from wire.NodeID) {
	hb, ok := m.(*wire.AllPairsHeartbeat)
	if !ok || hb.Origin == h.ID() {
		return
	}
	p, known := a.peers[hb.Origin]
	if !known || hb.Seq > p.maxSeq {
		a.peers[hb.Origin] = allPairsPeer{maxSeq: hb.Seq, last: h.Now()}
	}
}

// IsSuspected implements Detector.
func (a *AllPairs) IsSuspected(id wire.NodeID) bool {
	p, known := a.peers[id]
	if !known {
		return false
	}
	return a.host.Now()-p.last > a.cfg.SuspectAfter
}

// KnownFailed implements Detector.
func (a *AllPairs) KnownFailed() []wire.NodeID {
	var out []wire.NodeID
	for id := range a.peers {
		if id != a.host.ID() && a.IsSuspected(id) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KnownPopulation returns how many origins this detector has heard, plus
// itself.
func (a *AllPairs) KnownPopulation() int { return len(a.peers) + 1 }
