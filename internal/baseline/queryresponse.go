package baseline

import (
	"slices"

	"clusterfds/internal/node"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// QueryResponseConfig parameterizes the query-response detector.
type QueryResponseConfig struct {
	// Interval is the query period (per node).
	Interval sim.Time
	// SuspectAfter is how long a neighbor may stay silent before it is
	// suspected.
	SuspectAfter sim.Time
	// ResponseJitter spreads responses to one query over a short window so
	// they do not all land in the same instant; zero disables it.
	ResponseJitter sim.Time
}

// Valid reports whether the configuration is usable.
func (c QueryResponseConfig) Valid() bool {
	return c.Interval > 0 && c.SuspectAfter >= 2*c.Interval
}

// QueryResponse is the Sens et al. style asynchronous query-response
// detector for networks with partial connectivity and unknown membership: a
// node periodically broadcasts "who is alive?", everyone in range answers,
// and the monitor list is whatever set of nodes it has ever heard — query,
// response, or overheard response alike. There is no relaying, so each node
// monitors exactly its radio neighborhood, which is the property that makes
// the design work when no node can see the whole system.
type QueryResponse struct {
	cfg  QueryResponseConfig
	host *node.Host

	seq       uint64
	lastHeard map[wire.NodeID]sim.Time

	// Steady-state scratch: every transport encodes at Send, so one query
	// and one response value are reused for every transmission, the tick
	// closure is bound once, and jittered responses draw pooled jobs
	// dispatched through AfterArg — the per-epoch loop allocates nothing.
	query   wire.FDQuery
	resp    wire.FDResponse
	tickFn  func()
	jobFree []*qrRespJob
}

// qrRespJob carries one jittered response through AfterArg without a
// capturing closure; fired jobs return to the owning detector's free list.
type qrRespJob struct {
	q   *QueryResponse
	to  wire.NodeID
	seq uint64
}

// fireQRRespFn is the shared AfterArg trampoline for jittered responses.
func fireQRRespFn(arg any) {
	j := arg.(*qrRespJob)
	q := j.q
	q.resp.From, q.resp.To, q.resp.Seq = q.host.ID(), j.to, j.seq
	q.host.Send(&q.resp)
	q.jobFree = append(q.jobFree, j)
}

func (q *QueryResponse) takeJob() *qrRespJob {
	if n := len(q.jobFree); n > 0 {
		j := q.jobFree[n-1]
		q.jobFree[n-1] = nil
		q.jobFree = q.jobFree[:n-1]
		return j
	}
	// Grow by blocks: the jittered-response fan-in keeps rising while
	// queries and responses interleave, so amortize the growth.
	blk := make([]qrRespJob, 8)
	for i := range blk {
		blk[i].q = q
		q.jobFree = append(q.jobFree, &blk[i])
	}
	return q.takeJob()
}

// NewQueryResponse returns a query-response detector.
func NewQueryResponse(cfg QueryResponseConfig) *QueryResponse {
	if !cfg.Valid() {
		panic("baseline: invalid query-response config (need Interval > 0 and SuspectAfter >= 2*Interval)")
	}
	return &QueryResponse{cfg: cfg, lastHeard: make(map[wire.NodeID]sim.Time)}
}

// Start implements node.Protocol.
func (q *QueryResponse) Start(h *node.Host) {
	q.host = h
	q.tickFn = q.tick
	first := sim.Time(h.Rand().Int63n(int64(q.cfg.Interval)))
	h.After(first, q.tickFn)
}

func (q *QueryResponse) tick() {
	q.seq++
	q.query.From, q.query.Seq = q.host.ID(), q.seq
	q.host.Send(&q.query)
	q.host.After(q.cfg.Interval, q.tickFn)
}

// Handle implements node.Protocol: any directly heard query or response is
// liveness evidence for its sender, and a query addressed to the air gets a
// response.
func (q *QueryResponse) Handle(h *node.Host, m wire.Message, from wire.NodeID) {
	now := h.Now()
	switch msg := m.(type) {
	case *wire.FDQuery:
		q.lastHeard[msg.From] = now
		// Copy the fields out: the message is scratch-owned and must not
		// outlive Handle.
		to, seq := msg.From, msg.Seq
		if q.cfg.ResponseJitter > 0 {
			j := q.takeJob()
			j.to, j.seq = to, seq
			h.AfterArg(sim.Time(h.Rand().Int63n(int64(q.cfg.ResponseJitter))), fireQRRespFn, j)
			return
		}
		q.resp.From, q.resp.To, q.resp.Seq = q.host.ID(), to, seq
		q.host.Send(&q.resp)
	case *wire.FDResponse:
		q.lastHeard[msg.From] = now
	}
}

// IsSuspected implements Detector.
func (q *QueryResponse) IsSuspected(id wire.NodeID) bool {
	t, known := q.lastHeard[id]
	if !known {
		return false
	}
	return q.host.Now()-t > q.cfg.SuspectAfter
}

// KnownFailed implements Detector.
func (q *QueryResponse) KnownFailed() []wire.NodeID {
	var out []wire.NodeID
	for id := range q.lastHeard {
		if id != q.host.ID() && q.IsSuspected(id) {
			out = append(out, id)
		}
	}
	slices.Sort(out)
	return out
}

// KnownPopulation returns how many hosts this detector has heard, plus
// itself.
func (q *QueryResponse) KnownPopulation() int { return len(q.lastHeard) + 1 }
