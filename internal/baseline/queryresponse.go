package baseline

import (
	"sort"

	"clusterfds/internal/node"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// QueryResponseConfig parameterizes the query-response detector.
type QueryResponseConfig struct {
	// Interval is the query period (per node).
	Interval sim.Time
	// SuspectAfter is how long a neighbor may stay silent before it is
	// suspected.
	SuspectAfter sim.Time
	// ResponseJitter spreads responses to one query over a short window so
	// they do not all land in the same instant; zero disables it.
	ResponseJitter sim.Time
}

// Valid reports whether the configuration is usable.
func (c QueryResponseConfig) Valid() bool {
	return c.Interval > 0 && c.SuspectAfter >= 2*c.Interval
}

// QueryResponse is the Sens et al. style asynchronous query-response
// detector for networks with partial connectivity and unknown membership: a
// node periodically broadcasts "who is alive?", everyone in range answers,
// and the monitor list is whatever set of nodes it has ever heard — query,
// response, or overheard response alike. There is no relaying, so each node
// monitors exactly its radio neighborhood, which is the property that makes
// the design work when no node can see the whole system.
type QueryResponse struct {
	cfg  QueryResponseConfig
	host *node.Host

	seq       uint64
	lastHeard map[wire.NodeID]sim.Time
}

// NewQueryResponse returns a query-response detector.
func NewQueryResponse(cfg QueryResponseConfig) *QueryResponse {
	if !cfg.Valid() {
		panic("baseline: invalid query-response config (need Interval > 0 and SuspectAfter >= 2*Interval)")
	}
	return &QueryResponse{cfg: cfg, lastHeard: make(map[wire.NodeID]sim.Time)}
}

// Start implements node.Protocol.
func (q *QueryResponse) Start(h *node.Host) {
	q.host = h
	first := sim.Time(h.Rand().Int63n(int64(q.cfg.Interval)))
	h.After(first, q.tick)
}

func (q *QueryResponse) tick() {
	q.seq++
	q.host.Send(&wire.FDQuery{From: q.host.ID(), Seq: q.seq})
	q.host.After(q.cfg.Interval, q.tick)
}

// Handle implements node.Protocol: any directly heard query or response is
// liveness evidence for its sender, and a query addressed to the air gets a
// response.
func (q *QueryResponse) Handle(h *node.Host, m wire.Message, from wire.NodeID) {
	now := h.Now()
	switch msg := m.(type) {
	case *wire.FDQuery:
		q.lastHeard[msg.From] = now
		// Copy the fields out: the message is scratch-owned and must not
		// outlive Handle.
		to, seq := msg.From, msg.Seq
		if q.cfg.ResponseJitter > 0 {
			h.After(sim.Time(h.Rand().Int63n(int64(q.cfg.ResponseJitter))), func() {
				q.host.Send(&wire.FDResponse{From: q.host.ID(), To: to, Seq: seq})
			})
			return
		}
		q.host.Send(&wire.FDResponse{From: q.host.ID(), To: to, Seq: seq})
	case *wire.FDResponse:
		q.lastHeard[msg.From] = now
	}
}

// IsSuspected implements Detector.
func (q *QueryResponse) IsSuspected(id wire.NodeID) bool {
	t, known := q.lastHeard[id]
	if !known {
		return false
	}
	return q.host.Now()-t > q.cfg.SuspectAfter
}

// KnownFailed implements Detector.
func (q *QueryResponse) KnownFailed() []wire.NodeID {
	var out []wire.NodeID
	for id := range q.lastHeard {
		if id != q.host.ID() && q.IsSuspected(id) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KnownPopulation returns how many hosts this detector has heard, plus
// itself.
func (q *QueryResponse) KnownPopulation() int { return len(q.lastHeard) + 1 }
