// Package baseline implements the two comparison failure detectors the
// paper positions itself against:
//
//   - a gossip-style failure detector in the spirit of van Renesse, Minsky
//     and Hayden (the paper's reference [11]): every node maintains a table
//     of heartbeat counters and periodically diffuses it to its neighbors;
//     a node is suspected when its counter has not advanced for Tfail;
//   - a flat-flooding heartbeat detector: every node's heartbeat is relayed
//     network-wide with a TTL, the strawman against which Section 3 claims
//     cluster-based dissemination is "far more efficient".
//
// Both run on the same hosts, radio, and kernel as the cluster-based FDS,
// so message counts, bytes, and energy are directly comparable
// (experiment Ext. C in DESIGN.md).
package baseline

import (
	"sort"

	"clusterfds/internal/node"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// Detector is the query surface shared by the baselines and (structurally)
// by the cluster-based FDS: what does this host believe has failed?
type Detector interface {
	// IsSuspected reports whether the host suspects id has failed.
	IsSuspected(id wire.NodeID) bool
	// KnownFailed returns all suspected hosts in NID order.
	KnownFailed() []wire.NodeID
}

// GossipConfig parameterizes the gossip detector.
type GossipConfig struct {
	// Interval is the gossip period (per node).
	Interval sim.Time
	// SuspectAfter is how long a heartbeat counter may stall before its
	// node is suspected. Van Renesse et al. choose it to bound the
	// false-positive probability; several gossip intervals is typical.
	SuspectAfter sim.Time
}

// Valid reports whether the configuration is usable.
func (c GossipConfig) Valid() bool {
	return c.Interval > 0 && c.SuspectAfter >= 2*c.Interval
}

// gossipEntry is one row of the local table.
type gossipEntry struct {
	counter   uint64
	lastRaise sim.Time
}

// Gossip is the per-host gossip failure detector protocol.
type Gossip struct {
	cfg  GossipConfig
	host *node.Host

	counter uint64
	table   map[wire.NodeID]gossipEntry
}

// NewGossip returns a gossip detector.
func NewGossip(cfg GossipConfig) *Gossip {
	if !cfg.Valid() {
		panic("baseline: invalid gossip config (need Interval > 0 and SuspectAfter >= 2*Interval)")
	}
	return &Gossip{cfg: cfg, table: make(map[wire.NodeID]gossipEntry)}
}

// Start implements node.Protocol.
func (g *Gossip) Start(h *node.Host) {
	g.host = h
	g.table[h.ID()] = gossipEntry{counter: 0, lastRaise: h.Now()}
	// Desynchronize the fleet: first tick lands at a random phase.
	first := sim.Time(h.Rand().Int63n(int64(g.cfg.Interval)))
	h.After(first, g.tick)
}

// tick advances the local heartbeat and diffuses the table.
func (g *Gossip) tick() {
	g.counter++
	g.table[g.host.ID()] = gossipEntry{counter: g.counter, lastRaise: g.host.Now()}

	entries := make([]wire.GossipEntry, 0, len(g.table))
	for id, e := range g.table {
		entries = append(entries, wire.GossipEntry{NID: id, Heartbeat: e.counter})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].NID < entries[j].NID })
	g.host.Send(&wire.Gossip{From: g.host.ID(), Entries: entries})
	g.host.After(g.cfg.Interval, g.tick)
}

// Handle implements node.Protocol: merge higher counters.
func (g *Gossip) Handle(h *node.Host, m wire.Message, from wire.NodeID) {
	msg, ok := m.(*wire.Gossip)
	if !ok {
		return
	}
	now := h.Now()
	for _, e := range msg.Entries {
		cur, known := g.table[e.NID]
		if !known || e.Heartbeat > cur.counter {
			g.table[e.NID] = gossipEntry{counter: e.Heartbeat, lastRaise: now}
		}
	}
}

// IsSuspected implements Detector.
func (g *Gossip) IsSuspected(id wire.NodeID) bool {
	e, known := g.table[id]
	if !known {
		return false // never heard of it; cannot suspect
	}
	return g.host.Now()-e.lastRaise > g.cfg.SuspectAfter
}

// KnownFailed implements Detector.
func (g *Gossip) KnownFailed() []wire.NodeID {
	var out []wire.NodeID
	for id := range g.table {
		if id != g.host.ID() && g.IsSuspected(id) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KnownPopulation returns how many hosts this detector has heard of,
// including itself — gossip's membership discovery progress.
func (g *Gossip) KnownPopulation() int { return len(g.table) }
