// Package baseline implements the pluggable failure-detector family the
// cluster FDS is measured against: the Detector seam (lifecycle via
// node.Protocol plus the IsSuspected/KnownFailed verdict surface), the
// New(name, Params) registry, and five flat comparison detectors:
//
//   - a gossip-style failure detector in the spirit of van Renesse, Minsky
//     and Hayden (the paper's reference [11]): every node maintains a table
//     of heartbeat counters and periodically diffuses it to its neighbors;
//     a node is suspected when its counter has not advanced for Tfail;
//   - a flat-flooding heartbeat detector: every node's heartbeat is relayed
//     network-wide with a TTL, the strawman against which Section 3 claims
//     cluster-based dissemination is "far more efficient";
//   - a SWIM-style detector (Das, Gupta, Motivala): randomized
//     ping / indirect-ping / ack probing with piggybacked membership rumors;
//   - a Sens-style query-response detector: periodic interrogation, any
//     response or overheard query is liveness evidence;
//   - an all-pairs heartbeat strawman: unrelayed periodic heartbeats and a
//     per-origin silence timeout, the bytes-on-air floor.
//
// All five run on the same hosts, radio, and kernel as the cluster-based
// FDS, so message counts, bytes, and energy are directly comparable
// (experiments Ext. C and Ext. I in DESIGN.md). A shared conformance suite
// (conformance_test.go) holds every Detector — these and the cluster FDS —
// to the same contract: eventual detection, no self-suspicion, sorted and
// deterministic KnownFailed, rescission on recovery.
package baseline

import (
	"sort"

	"clusterfds/internal/node"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// GossipConfig parameterizes the gossip detector.
type GossipConfig struct {
	// Interval is the gossip period (per node).
	Interval sim.Time
	// SuspectAfter is how long a heartbeat counter may stall before its
	// node is suspected. Van Renesse et al. choose it to bound the
	// false-positive probability; several gossip intervals is typical.
	SuspectAfter sim.Time
}

// Valid reports whether the configuration is usable.
func (c GossipConfig) Valid() bool {
	return c.Interval > 0 && c.SuspectAfter >= 2*c.Interval
}

// gossipEntry is one row of the local table.
type gossipEntry struct {
	counter   uint64
	lastRaise sim.Time
}

// Gossip is the per-host gossip failure detector protocol.
type Gossip struct {
	cfg  GossipConfig
	host *node.Host

	counter uint64
	table   map[wire.NodeID]gossipEntry
}

// NewGossip returns a gossip detector.
func NewGossip(cfg GossipConfig) *Gossip {
	if !cfg.Valid() {
		panic("baseline: invalid gossip config (need Interval > 0 and SuspectAfter >= 2*Interval)")
	}
	return &Gossip{cfg: cfg, table: make(map[wire.NodeID]gossipEntry)}
}

// Start implements node.Protocol.
func (g *Gossip) Start(h *node.Host) {
	g.host = h
	g.table[h.ID()] = gossipEntry{counter: 0, lastRaise: h.Now()}
	// Desynchronize the fleet: first tick lands at a random phase.
	first := sim.Time(h.Rand().Int63n(int64(g.cfg.Interval)))
	h.After(first, g.tick)
}

// tick advances the local heartbeat and diffuses the table.
func (g *Gossip) tick() {
	g.counter++
	g.table[g.host.ID()] = gossipEntry{counter: g.counter, lastRaise: g.host.Now()}

	entries := make([]wire.GossipEntry, 0, len(g.table))
	for id, e := range g.table {
		entries = append(entries, wire.GossipEntry{NID: id, Heartbeat: e.counter})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].NID < entries[j].NID })
	g.host.Send(&wire.Gossip{From: g.host.ID(), Entries: entries})
	g.host.After(g.cfg.Interval, g.tick)
}

// Handle implements node.Protocol: merge higher counters.
func (g *Gossip) Handle(h *node.Host, m wire.Message, from wire.NodeID) {
	msg, ok := m.(*wire.Gossip)
	if !ok {
		return
	}
	now := h.Now()
	for _, e := range msg.Entries {
		cur, known := g.table[e.NID]
		if !known || e.Heartbeat > cur.counter {
			g.table[e.NID] = gossipEntry{counter: e.Heartbeat, lastRaise: now}
		}
	}
}

// IsSuspected implements Detector.
func (g *Gossip) IsSuspected(id wire.NodeID) bool {
	e, known := g.table[id]
	if !known {
		return false // never heard of it; cannot suspect
	}
	return g.host.Now()-e.lastRaise > g.cfg.SuspectAfter
}

// KnownFailed implements Detector.
func (g *Gossip) KnownFailed() []wire.NodeID {
	var out []wire.NodeID
	for id := range g.table {
		if id != g.host.ID() && g.IsSuspected(id) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KnownPopulation returns how many hosts this detector has heard of,
// including itself — gossip's membership discovery progress.
func (g *Gossip) KnownPopulation() int { return len(g.table) }
