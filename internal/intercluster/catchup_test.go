package intercluster

import (
	"strings"
	"testing"

	"clusterfds/internal/cluster"
	"clusterfds/internal/fds"
	"clusterfds/internal/geo"
	"clusterfds/internal/node"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

// TestCatchUpOnNewAdjacency: a cluster that forms AFTER a failure's report
// flood still learns of it when the established neighbors notice the new
// adjacency and share their cumulative failed set.
func TestCatchUpOnNewAdjacency(t *testing.T) {
	// Start with clusters A and B; crash a member of A early; then boot a
	// third population that forms cluster D adjacent to B only.
	positions := []geo.Point{
		{X: 0, Y: 0},     // n1 CH A
		{X: 150, Y: 0},   // n2 CH B
		{X: -20, Y: 10},  // n3 member A
		{X: 20, Y: 30},   // n4 member A (victim)
		{X: 75, Y: 0},    // n5 gateway A-B
		{X: 180, Y: 30},  // n6 member B
		{X: 180, Y: -30}, // n7 member B
	}
	w := buildWorld(t, 21, 0, nil, positions)
	w.crashAtEpoch(3, 2) // crash n4 mid-epoch 2; report floods at epoch 3

	// The late cluster D: three hosts east of B, booted during epoch 5,
	// bridged to B by n8 which hears CH B.
	late := []geo.Point{
		{X: 225, Y: 0},  // n8: hears CH B (75 m) and will bridge to D
		{X: 300, Y: 0},  // n9: CH D
		{X: 320, Y: 30}, // n10: member D
	}
	for i, pos := range late {
		id := wire.NodeID(8 + i)
		h, cl, f, fw := newStackHost(t, w, id, pos)
		_ = cl
		_ = fw
		w.hosts = append(w.hosts, h)
		w.fdss = append(w.fdss, f)
		at := w.timing.EpochStart(5) + w.timing.Interval/4
		w.kernel.At(at, func() { h.Boot() })
	}
	w.runUntilEpoch(14)

	// The late hosts never heard the epoch-3 flood; the catch-up report on
	// the new B<->D adjacency must deliver the old news.
	for i := 7; i < 10; i++ {
		if w.hosts[i].Crashed() {
			continue
		}
		if !w.fdss[i].IsSuspected(4) {
			t.Errorf("late host n%d never learned the pre-formation failure of n4", i+1)
		}
	}
	// And a catch-up transmission must actually have been traced.
	found := false
	for _, e := range w.tracer.OfType(trace.TypeReportForward) {
		if strings.HasPrefix(e.Detail, "catch-up") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no catch-up report traced")
	}
}

// TestNoCatchUpWithoutHistory: new adjacencies in a failure-free network
// must not generate any reports.
func TestNoCatchUpWithoutHistory(t *testing.T) {
	w := buildWorld(t, 22, 0, nil, threeClusterChain())
	w.runUntilEpoch(8)
	if n := w.medium.Sent(wire.KindFailureReport); n != 0 {
		t.Errorf("%d failure reports in a failure-free network", n)
	}
}

// TestReportFromUpdateCanonical: all gateways must derive identical report
// content from the same update, or de-duplication breaks.
func TestReportFromUpdateCanonical(t *testing.T) {
	up := &wire.HealthUpdate{
		From: 3, CH: 3, Epoch: 7,
		NewFailed: []wire.NodeID{9},
		AllFailed: []wire.NodeID{9, 4},
		Rescinded: []wire.Rescission{{Node: 2, Epoch: 5}},
	}
	a, b := reportFromUpdate(up), reportFromUpdate(up)
	if a.OriginCH != 3 || a.Seq != 7 || a.Epoch != 7 {
		t.Errorf("report identity wrong: %+v", a)
	}
	if len(a.NewFailed) != 1 || len(a.AllFailed) != 2 || len(a.Rescinded) != 1 {
		t.Errorf("report content wrong: %+v", a)
	}
	if b.OriginCH != a.OriginCH || b.Seq != a.Seq {
		t.Errorf("reports not canonical: %+v vs %+v", a, b)
	}

	// The deep copy happens at state creation: tracked report content must
	// not alias the (scratch-backed, handler-lifetime) update it derives
	// from. reportFromUpdate itself stays a cheap view.
	p := &Protocol{reports: make(map[key]*reportState)}
	st := p.getState(key{origin: up.From, seq: uint64(up.Epoch)}, reportFromUpdate(up))
	up.AllFailed[0] = 99
	up.NewFailed[0] = 99
	up.Rescinded[0].Node = 99
	if st.content.AllFailed[0] == 99 || st.content.NewFailed[0] == 99 || st.content.Rescinded[0].Node == 99 {
		t.Error("tracked report aliases the update")
	}
}

// newStackHost builds (without booting) a full-stack host in an existing
// test world.
func newStackHost(t *testing.T, w *world, id wire.NodeID, pos geo.Point) (*node.Host, *cluster.Protocol, *fds.Protocol, *Protocol) {
	t.Helper()
	h := node.New(w.kernel, w.medium, id, pos, node.WithTrace(w.tracer))
	cl := cluster.New(cluster.DefaultConfig())
	f := fds.New(fds.DefaultConfig(w.timing), cl)
	fw := New(DefaultConfig(w.timing), cl, f)
	h.Use(cl)
	h.Use(f)
	h.Use(fw)
	return h, cl, f, fw
}
