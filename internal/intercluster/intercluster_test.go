package intercluster

import (
	"testing"

	"clusterfds/internal/cluster"
	"clusterfds/internal/fds"
	"clusterfds/internal/geo"
	"clusterfds/internal/node"
	"clusterfds/internal/radio"
	"clusterfds/internal/sim"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

// world is a field running the full stack: formation + FDS + forwarder.
type world struct {
	kernel *sim.Kernel
	medium *radio.Medium
	hosts  []*node.Host
	cls    []*cluster.Protocol
	fdss   []*fds.Protocol
	fwds   []*Protocol
	timing cluster.Timing
	tracer *trace.Memory
}

func buildWorld(t *testing.T, seed int64, lossProb float64, cfg func(cluster.Timing) Config, positions []geo.Point) *world {
	t.Helper()
	if cfg == nil {
		cfg = DefaultConfig
	}
	k := sim.New(seed)
	tr := trace.NewMemory(trace.TypeReportForward, trace.TypeReportDeliver,
		trace.TypeRetransmit, trace.TypeBGWAssist, trace.TypeDetect)
	m := radio.New(k, radio.Defaults(lossProb))
	w := &world{kernel: k, medium: m, timing: cluster.DefaultTiming(), tracer: tr}
	for i, pos := range positions {
		h := node.New(k, m, wire.NodeID(i+1), pos, node.WithTrace(tr))
		cl := cluster.New(cluster.DefaultConfig())
		f := fds.New(fds.DefaultConfig(w.timing), cl)
		fw := New(cfg(w.timing), cl, f)
		h.Use(cl)
		h.Use(f)
		h.Use(fw)
		w.hosts = append(w.hosts, h)
		w.cls = append(w.cls, cl)
		w.fdss = append(w.fdss, f)
		w.fwds = append(w.fwds, fw)
	}
	for _, h := range w.hosts {
		h.Boot()
	}
	return w
}

func (w *world) runUntilEpoch(e wire.Epoch) { w.kernel.RunUntil(w.timing.EpochStart(e)) }

func (w *world) crashAtEpoch(idx int, e wire.Epoch) {
	w.kernel.At(w.timing.EpochStart(e)+w.timing.Interval/2, func() { w.hosts[idx].Crash() })
}

// threeClusterChain lays out clusters A (around n1), B (around n2), and C
// (around n3), bridged by n6 (A-B) and n7 (B-C).
//
//	A: n1 @ (0,0), members n4 n5 n8 n9
//	B: n2 @ (150,0), members n10 n11
//	C: n3 @ (300,0), members n12 n13
//	bridges: n6 @ (75,0), n7 @ (225,0)
//
// A's members sit where they stay within range of the gateway n6 (the
// paper's high-density assumption: a deputy taking over can still reach the
// gateways).
func threeClusterChain() []geo.Point {
	return []geo.Point{
		{X: 0, Y: 0},     // n1 CH A
		{X: 150, Y: 0},   // n2 CH B
		{X: 300, Y: 0},   // n3 CH C
		{X: -20, Y: 10},  // n4 member A (in range of n6)
		{X: -20, Y: -10}, // n5 member A (in range of n6)
		{X: 75, Y: 0},    // n6 gateway A-B
		{X: 225, Y: 0},   // n7 gateway B-C
		{X: 20, Y: 30},   // n8 member A
		{X: 20, Y: -30},  // n9 member A
		{X: 180, Y: 30},  // n10 member B (out of gateway n6 range)
		{X: 180, Y: -30}, // n11 member B (out of gateway n6 range)
		{X: 300, Y: 30},  // n12 member C
		{X: 300, Y: -30}, // n13 member C
	}
}

func TestReportPropagatesAcrossChain(t *testing.T) {
	w := buildWorld(t, 1, 0, nil, threeClusterChain())
	w.crashAtEpoch(7, 2) // crash n8 (member of A) mid-epoch 2
	w.runUntilEpoch(6)

	// Every operational node in every cluster must know about n8.
	for i, f := range w.fdss {
		if i == 7 {
			continue
		}
		if !f.IsSuspected(8) {
			t.Errorf("node %d (cluster of %v) never learned of n8's failure",
				i+1, w.cls[i].View().CH)
		}
	}
	if w.tracer.Count(trace.TypeReportForward) == 0 {
		t.Error("no report forwarding traced")
	}
}

func TestNoReportWithoutNewFailures(t *testing.T) {
	w := buildWorld(t, 2, 0, nil, threeClusterChain())
	w.runUntilEpoch(6)
	if n := w.medium.Sent(wire.KindFailureReport); n != 0 {
		t.Errorf("%d failure reports sent with no failures (no news must be good news)", n)
	}
}

func TestMessageCostBounded(t *testing.T) {
	// One failure in a three-cluster chain without loss: the flood must
	// stay small — two gateway hops, two CH relays, plus bounded
	// retransmissions from CH watch timers.
	w := buildWorld(t, 3, 0, nil, threeClusterChain())
	w.crashAtEpoch(7, 2)
	w.runUntilEpoch(6)
	sent := w.medium.Sent(wire.KindFailureReport)
	if sent == 0 || sent > 12 {
		t.Errorf("failure-report transmissions = %d, want 1..12", sent)
	}
}

func TestBGWAssistsWhenPrimaryLinkDead(t *testing.T) {
	// Two gateway candidates between A and B (n6, n14). The primary is the
	// lower NID, n6. Kill n6's link toward CH B: the backup must step in.
	positions := append(threeClusterChain(), geo.Point{X: 75, Y: 20}) // n14
	w := buildWorld(t, 4, 0, nil, positions)
	w.runUntilEpoch(2)
	w.medium.SetLinkLoss(6, 2, 1.0) // n6 -> CH B dead
	w.crashAtEpoch(7, 2)
	w.runUntilEpoch(6)

	for _, i := range []int{1, 9, 10} { // CH B and members of B
		if !w.fdss[i].IsSuspected(8) {
			t.Errorf("node %d missed the failure despite backup gateway", i+1)
		}
	}
	if w.tracer.Count(trace.TypeBGWAssist) == 0 {
		t.Error("backup gateway never assisted")
	}
}

func TestBGWTakesOverWhenPrimaryCrashes(t *testing.T) {
	positions := append(threeClusterChain(), geo.Point{X: 75, Y: 20}) // n14 backup GW
	w := buildWorld(t, 5, 0, nil, positions)
	w.runUntilEpoch(2)
	w.crashAtEpoch(5, 2) // crash the primary gateway n6
	w.crashAtEpoch(7, 3) // then a member failure to report
	w.runUntilEpoch(8)

	if !w.fdss[1].IsSuspected(8) {
		t.Error("CH B never learned of n8 after primary gateway crash")
	}
	// n6's own failure must also have been reported across.
	if !w.fdss[1].IsSuspected(6) {
		t.Error("CH B never learned of the gateway's own failure")
	}
}

func TestRetransmitOnLostForward(t *testing.T) {
	// Single gateway: sever the gateway -> CH B link only around the
	// instant of the first forward, so exactly that transmission dies and
	// the implicit-ack machinery must retransmit. (The window must avoid
	// the heartbeat/digest rounds — a longer outage makes cluster B
	// legitimately detect the unreachable gateway as failed.)
	w := buildWorld(t, 6, 0, nil, threeClusterChain())
	w.crashAtEpoch(7, 2)
	detectionEpoch := w.timing.EpochStart(3)
	severAt := detectionEpoch + w.timing.R2End() + w.timing.Thop/2   // after digests
	restoreAt := detectionEpoch + w.timing.R3End() + 2*w.timing.Thop // before the re-forward
	w.kernel.At(severAt, func() { w.medium.SetLinkLoss(6, 2, 1.0) })
	w.kernel.At(restoreAt, func() { w.medium.SetLinkLoss(6, 2, -1) })
	w.runUntilEpoch(7)

	if !w.fdss[1].IsSuspected(8) {
		t.Error("failure never reached cluster B despite retransmissions")
	}
	if w.tracer.Count(trace.TypeRetransmit) == 0 {
		t.Error("no retransmission traced")
	}
}

func TestPropagationUnderLoss(t *testing.T) {
	// p = 0.15 everywhere: the redundancy (implicit acks + retransmit +
	// BGW) must still get the report to every cluster.
	positions := append(threeClusterChain(),
		geo.Point{X: 75, Y: 20}, geo.Point{X: 225, Y: 20}) // extra candidates
	w := buildWorld(t, 7, 0.15, nil, positions)
	w.crashAtEpoch(7, 2)
	w.runUntilEpoch(8)
	for _, i := range []int{1, 2, 9, 10, 11, 12} {
		if !w.fdss[i].IsSuspected(8) {
			t.Errorf("node %d missed the remote failure at p=0.15", i+1)
		}
	}
}

func TestImplicitAcksDisabledStillWorksWithoutLoss(t *testing.T) {
	noAck := func(tm cluster.Timing) Config {
		c := DefaultConfig(tm)
		c.ImplicitAcks = false
		return c
	}
	w := buildWorld(t, 8, 0, noAck, threeClusterChain())
	w.crashAtEpoch(7, 2)
	w.runUntilEpoch(6)
	if !w.fdss[2].IsSuspected(8) {
		t.Error("fire-and-forget forwarding failed even without loss")
	}
	if w.tracer.Count(trace.TypeRetransmit) != 0 {
		t.Error("retransmissions despite implicit acks disabled")
	}
}

func TestCHFailureReportedAcrossClusters(t *testing.T) {
	// Crash CH A: the deputy takes over and the takeover report must reach
	// clusters B and C.
	w := buildWorld(t, 9, 0, nil, threeClusterChain())
	w.runUntilEpoch(2)
	w.crashAtEpoch(0, 2)
	w.runUntilEpoch(8)
	for _, i := range []int{1, 2, 9, 11} {
		if !w.fdss[i].IsSuspected(1) {
			t.Errorf("node %d never learned the CH of A failed", i+1)
		}
	}
}

func TestSeenAndReportCount(t *testing.T) {
	w := buildWorld(t, 10, 0, nil, threeClusterChain())
	w.crashAtEpoch(7, 2)
	w.runUntilEpoch(6)
	fw := w.fwds[1] // CH B's forwarder
	if fw.ReportCount() == 0 {
		t.Error("CH B saw no reports")
	}
	if !fw.Seen(1, 3) {
		t.Errorf("CH B should have seen the report from origin n1 seq 3")
	}
}

func TestConfigValidation(t *testing.T) {
	cl := cluster.New(cluster.DefaultConfig())
	f := fds.New(fds.DefaultConfig(cluster.DefaultTiming()), cl)
	for name, fn := range map[string]func(){
		"nil cluster": func() { New(DefaultConfig(cluster.DefaultTiming()), nil, f) },
		"nil fds":     func() { New(DefaultConfig(cluster.DefaultTiming()), cl, nil) },
		"bad timing":  func() { New(Config{}, cl, f) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}
