// Package intercluster implements Section 4.3: robust, energy-frugal
// forwarding of failure reports across the cluster backbone.
//
// When a cluster's health-status update announces newly detected failures,
// the gateways bridging that cluster to its neighbors forward the update as
// a FailureReport to the neighboring clusterheads. Each receiving
// clusterhead rebroadcasts the report once, which simultaneously (a) relays
// it toward its own gateways for further flooding and (b) serves as the
// *implicit acknowledgment* the upstream forwarders are listening for —
// explicit acknowledgments would double the message count, which the paper
// rules out on energy grounds.
//
// Loss tolerance per hop:
//
//   - A clusterhead that transmitted a report expects to overhear a gateway
//     forwarding it toward each neighboring cluster within 2·Thop and
//     retransmits (a bounded number of times) otherwise.
//   - The primary gateway forwards immediately, waits (n+1)·2·Thop for the
//     downstream CH's implicit ack, and re-forwards once if it never comes.
//   - Backup gateways (rank k = 1..n−1 among the remaining candidates) arm
//     timers of k·2·Thop; if neither the primary nor a lower-ranked backup
//     got the report through by then, they forward it themselves, then
//     release on overhearing the implicit ack.
//
// De-duplication is by (origin CH, sequence); a clusterhead rebroadcasts
// each report at most once (plus bounded retransmissions), so flooding over
// the backbone terminates.
package intercluster

import (
	"fmt"
	"slices"

	"clusterfds/internal/cluster"
	"clusterfds/internal/dense"
	"clusterfds/internal/fds"
	"clusterfds/internal/node"
	"clusterfds/internal/sim"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

// Config parameterizes the forwarder.
type Config struct {
	// Timing must match the co-resident cluster/FDS timing.
	Timing cluster.Timing
	// CHRetries bounds how many times a clusterhead retransmits a report
	// for which it overheard no gateway forwarding.
	CHRetries int
	// BGWAssist enables backup-gateway assisted forwarding; the ablation
	// benchmarks disable it to quantify its contribution.
	BGWAssist bool
	// ImplicitAcks enables the overhear-based retransmission scheme. When
	// disabled, every hop is fire-and-forget (the paper's strawman).
	ImplicitAcks bool
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig(t cluster.Timing) Config {
	return Config{Timing: t, CHRetries: 2, BGWAssist: true, ImplicitAcks: true}
}

// key de-duplicates reports network-wide.
type key struct {
	origin wire.NodeID
	seq    uint64
}

// reportState is everything this host knows about one report. The former
// map-of-maps representation (a senders map and an engaged map per report,
// reallocated on every first sight) is flattened into interned slices:
// reports live for the rest of the run, and both sets stay tiny (a handful of
// transmitters and downstream targets), so linear scans beat hashing and the
// only allocations left are the once-per-report content copy.
type reportState struct {
	p       *Protocol
	content wire.FailureReport // canonical content (Sender/TargetCH cleared)
	// senders records every host overheard transmitting this report, as
	// indices into the protocol's interner; implicit acknowledgments are
	// lookups in this set.
	senders []uint32
	// rebroadcast marks that this host (as CH) already relayed the report.
	rebroadcast bool
	retriesLeft int
	// engaged tracks gateway duty per downstream clusterhead, as an
	// intrusive list threaded through the duty arena (duties are only ever
	// searched by target, never ordered, so list order is irrelevant).
	engaged *gwDuty
}

// sender reports whether id has been overheard transmitting this report.
func (st *reportState) sender(id wire.NodeID) bool {
	i, ok := st.p.ids.Lookup(id)
	return ok && slices.Contains(st.senders, i)
}

func (st *reportState) addSender(id wire.NodeID) {
	i := st.p.ids.Index(id)
	if !slices.Contains(st.senders, i) {
		st.senders = append(st.senders, i)
	}
}

// duty returns the forwarding duty toward target, if one exists.
func (st *reportState) duty(target wire.NodeID) *gwDuty {
	for d := st.engaged; d != nil; d = d.next {
		if d.target == target {
			return d
		}
	}
	return nil
}

// addDuty records a fresh duty toward target, drawn from the block arena and
// pushed onto the report's intrusive duty list — no per-duty allocation.
func (st *reportState) addDuty(target wire.NodeID) *gwDuty {
	d := st.p.newDuty()
	d.st, d.target = st, target
	d.next = st.engaged
	st.engaged = d
	return d
}

// gwDuty kinds: what fireDutyFn does when the duty's timer fires.
const (
	dutyBGW    = iota // backup-gateway standby (engageTarget rank > 1)
	dutyRefwd         // primary's re-forward / release watch (forwardNow)
	dutyTwoHop        // border node's two-hop relay (engageTwoHop)
	dutyInward        // member's inward relay toward its own CH
)

// gwDuty is a gateway candidate's forwarding state toward one target CH. It
// carries everything its timer callback needs, so arming a duty schedules the
// shared fireDutyFn with the duty itself as argument — no per-arming closure.
type gwDuty struct {
	st        *reportState
	next      *gwDuty // intrusive link in the report's engaged list
	target    wire.NodeID
	n         int // candidate count for the re-forward wait
	kind      uint8
	forwarded int
	timer     sim.Timer
	done      bool
}

// fireDutyFn is the one timer callback behind every gateway duty. A plain
// function declaration (not a package var) so its mutual recursion with
// forwardNow is not an initialization cycle; the conversion to sim.ArgHandler
// at the call sites is a static funcval, not an allocation.
func fireDutyFn(a any) {
	d := a.(*gwDuty)
	st := d.st
	p := st.p
	switch d.kind {
	case dutyBGW:
		if d.done || st.sender(d.target) {
			d.done = true
			return
		}
		if p.host.Tracing() {
			p.host.Trace(trace.TypeBGWAssist, fmt.Sprintf("-> %v origin=%v", d.target, st.content.OriginCH))
		}
		p.forwardNow(st, d, d.target, d.n)
	case dutyRefwd:
		if d.done || st.sender(d.target) {
			d.done = true
			return
		}
		if d.forwarded >= 2 {
			return // give up; the next epoch's cumulative report catches up
		}
		if p.host.Tracing() {
			p.host.Trace(trace.TypeRetransmit, fmt.Sprintf("-> %v origin=%v", d.target, st.content.OriginCH))
		}
		p.forwardNow(st, d, d.target, d.n)
	case dutyTwoHop:
		if d.done || p.targetHasReport(st, d.target) {
			d.done = true
			return
		}
		d.forwarded++
		if p.host.Tracing() {
			p.host.Trace(trace.TypeReportForward, fmt.Sprintf("two-hop -> %v origin=%v seq=%d",
				d.target, st.content.OriginCH, st.content.Seq))
		}
		p.transmit(st, d.target)
	case dutyInward:
		if d.done || p.clusterHasReport(st) {
			d.done = true
			return
		}
		d.forwarded++
		if p.host.Tracing() {
			p.host.Trace(trace.TypeReportForward, fmt.Sprintf("inward -> %v origin=%v seq=%d",
				p.cluster.View().CH, st.content.OriginCH, st.content.Seq))
		}
		p.transmit(st, p.cluster.View().CH)
	}
}

// chWatchFn is the shared implicit-ack-watch callback (armCHWatch).
func chWatchFn(a any) {
	st := a.(*reportState)
	st.p.checkCHWatch(st)
}

// Protocol is the per-host inter-cluster forwarder.
type Protocol struct {
	cfg     Config
	host    *node.Host
	cluster *cluster.Protocol
	fds     *fds.Protocol

	reports map[key]*reportState
	epoch   wire.Epoch

	// ids interns every NodeID appearing in sender sets and the adjacency
	// bitset onto dense indices, shared across all report states.
	ids dense.Interner

	// knownNeighbors tracks, on a clusterhead, which adjacent clusters
	// have been seen before: a NEW adjacency (clusters forming or
	// re-forming next door) triggers a catch-up report carrying the
	// cumulative failed set, so knowledge holes left by topology churn
	// heal instead of waiting for the next failure. Dense bitset over ids.
	knownNeighbors dense.Bitset

	// Persistent epoch callbacks, the reusable transmit buffer (safe because
	// every transport encodes during Send), pooled deferred-engage jobs, and
	// reused query scratch.
	epochFn, originFn func()
	txMsg             wire.FailureReport
	updJobFree        []*updJob
	nbScratch         []wire.NodeID
	candScratch       []wire.NodeID
	bridgedScratch    []wire.NodeID
	borderScratch     []wire.NodeID
	oneTarget         [1]wire.NodeID

	// Block arenas for once-per-report state. Reports accrete for the rest of
	// the run (they are never freed), so these are bump arenas, not pools:
	// fresh reportStates and gwDuties come from 32/64-element blocks, and the
	// deep copies of report content are carved as capped sub-slices of shared
	// backing chunks. One allocation per block instead of several per report.
	stateFree []*reportState
	dutyFree  []*gwDuty
	idArena   []wire.NodeID
	resArena  []wire.Rescission
	sndArena  []uint32
}

// newState hands out a zeroed reportState from the block arena.
func (p *Protocol) newState() *reportState {
	if len(p.stateFree) == 0 {
		blk := make([]reportState, 32)
		for i := range blk {
			p.stateFree = append(p.stateFree, &blk[i])
		}
	}
	n := len(p.stateFree)
	st := p.stateFree[n-1]
	p.stateFree = p.stateFree[:n-1]
	return st
}

// newDuty hands out a zeroed gwDuty from the block arena.
func (p *Protocol) newDuty() *gwDuty {
	if len(p.dutyFree) == 0 {
		blk := make([]gwDuty, 64)
		for i := range blk {
			p.dutyFree = append(p.dutyFree, &blk[i])
		}
	}
	n := len(p.dutyFree)
	d := p.dutyFree[n-1]
	p.dutyFree = p.dutyFree[:n-1]
	return d
}

// carveIDs copies src into the NodeID arena and returns a capped sub-slice;
// appends to the result never touch later carves.
func (p *Protocol) carveIDs(src []wire.NodeID) []wire.NodeID {
	if len(src) == 0 {
		return nil
	}
	if cap(p.idArena)-len(p.idArena) < len(src) {
		c := 512
		if len(src) > c {
			c = len(src)
		}
		p.idArena = make([]wire.NodeID, 0, c)
	}
	n := len(p.idArena)
	p.idArena = append(p.idArena, src...)
	return p.idArena[n:len(p.idArena):len(p.idArena)]
}

// carveRes is carveIDs for rescission lists.
func (p *Protocol) carveRes(src []wire.Rescission) []wire.Rescission {
	if len(src) == 0 {
		return nil
	}
	if cap(p.resArena)-len(p.resArena) < len(src) {
		c := 128
		if len(src) > c {
			c = len(src)
		}
		p.resArena = make([]wire.Rescission, 0, c)
	}
	n := len(p.resArena)
	p.resArena = append(p.resArena, src...)
	return p.resArena[n:len(p.resArena):len(p.resArena)]
}

// carveSenders reserves a capped 16-slot sender set in the arena; the rare
// report overheard from more transmitters spills to a heap reallocation.
func (p *Protocol) carveSenders() []uint32 {
	const slot = 16
	if cap(p.sndArena)-len(p.sndArena) < slot {
		p.sndArena = make([]uint32, 0, 512)
	}
	n := len(p.sndArena)
	p.sndArena = p.sndArena[:n+slot]
	return p.sndArena[n : n : n+slot]
}

// New returns a forwarder bound to the co-resident cluster and FDS
// protocols.
func New(cfg Config, cl *cluster.Protocol, f *fds.Protocol) *Protocol {
	if cl == nil || f == nil {
		panic("intercluster: nil cluster or fds protocol")
	}
	if !cfg.Timing.Valid() {
		panic("intercluster: invalid timing")
	}
	if cfg.CHRetries < 0 {
		cfg.CHRetries = 0
	}
	return &Protocol{
		cfg:     cfg,
		cluster: cl,
		fds:     f,
		reports: make(map[key]*reportState),
	}
}

// Start implements node.Protocol.
func (p *Protocol) Start(h *node.Host) {
	p.host = h
	p.epochFn = func() { p.runEpoch(p.cfg.Timing.EpochOf(p.host.Now())) }
	p.originFn = func() { p.maybeOriginate(p.epoch) }
	e := p.cfg.Timing.EpochOf(h.Now())
	if h.Now() > p.cfg.Timing.EpochStart(e) {
		e++
	}
	p.scheduleEpoch(e)
}

func (p *Protocol) scheduleEpoch(e wire.Epoch) {
	at := p.cfg.Timing.EpochStart(e)
	p.host.AfterBatched(at-p.host.Now(), p.epochFn)
}

// runEpoch arms the per-epoch origination check: shortly after the end of
// fds.R-3 (leaving room for the deputy-takeover cascade), a clusterhead
// whose own update announced new failures seeds the backbone flood.
func (p *Protocol) runEpoch(e wire.Epoch) {
	p.epoch = e
	p.scheduleEpoch(e + 1)
	t := p.cfg.Timing
	p.host.AfterBatched(t.R3End()+t.Thop/4, p.originFn)
}

// maybeOriginate runs on every host each epoch; a clusterhead acts when its
// epoch update carried news (origination) or a new neighbor cluster
// appeared (catch-up).
func (p *Protocol) maybeOriginate(e wire.Epoch) {
	v := p.cluster.View()
	if !v.IsCH {
		return
	}
	newNeighbor := false
	p.nbScratch = p.cluster.AppendNeighborCHs(p.nbScratch[:0])
	for _, nb := range p.nbScratch {
		if i := p.ids.Index(nb); !p.knownNeighbors.Get(i) {
			p.knownNeighbors.Set(i)
			newNeighbor = true
		}
	}

	if up, ok := p.fds.CurrentUpdate(); ok && up.Epoch == e &&
		(len(up.NewFailed) > 0 || len(up.Rescinded) > 0) {
		st := p.getState(key{origin: up.From, seq: uint64(up.Epoch)}, reportFromUpdate(&up))
		if !st.rebroadcast {
			st.rebroadcast = true
			st.retriesLeft = p.cfg.CHRetries
			// The cluster's own health update already reached the
			// gateways; this CH now only arms the implicit-ack watch (its
			// update was the hop-0 transmission), retransmitting the
			// report itself if no gateway forwarding is overheard.
			p.armCHWatch(st)
		}
		return
	}

	// Catch-up on new adjacency: share what this cluster knows so a
	// freshly (re)formed neighbor is not left waiting for the next
	// failure to learn old news.
	failed := p.fds.KnownFailed()
	if !newNeighbor || len(failed) == 0 {
		return
	}
	st := p.getState(key{origin: p.host.ID(), seq: uint64(e)}, wire.FailureReport{
		OriginCH:  p.host.ID(),
		Seq:       uint64(e),
		Epoch:     e,
		AllFailed: failed,
	})
	if st.rebroadcast {
		return
	}
	st.rebroadcast = true
	st.retriesLeft = p.cfg.CHRetries
	if p.host.Tracing() {
		p.host.Trace(trace.TypeReportForward, fmt.Sprintf("catch-up seq=%d failed=%d", e, len(failed)))
	}
	p.transmit(st, wire.NoNode)
	p.armCHWatch(st)
}

// reportFromUpdate builds the canonical report a health update gives rise
// to. Every gateway derives the identical key, so de-duplication works
// without coordination.
func reportFromUpdate(up *wire.HealthUpdate) wire.FailureReport {
	return wire.FailureReport{
		OriginCH:  up.From,
		Seq:       uint64(up.Epoch),
		Epoch:     up.Epoch,
		NewFailed: up.NewFailed,
		AllFailed: up.AllFailed,
		Rescinded: up.Rescinded,
	}
}

// getState returns the tracked state for report key k, creating it from
// content on first sight. Creation deep-copies content's slices: content
// usually derives from a delivered message (or a health update aliasing the
// FDS's reusable buffer), whose slices are only valid during the current
// handler, while reportState lives for many epochs of retransmission.
func (p *Protocol) getState(k key, content wire.FailureReport) *reportState {
	st, ok := p.reports[k]
	if !ok {
		content.Sender = wire.NoNode
		content.TargetCH = wire.NoNode
		content.NewFailed = p.carveIDs(content.NewFailed)
		content.AllFailed = p.carveIDs(content.AllFailed)
		content.Rescinded = p.carveRes(content.Rescinded)
		st = p.newState()
		st.p, st.content, st.senders = p, content, p.carveSenders()
		p.reports[k] = st
	}
	return st
}

// transmit broadcasts the report stamped with this host as sender. The
// reusable buffer aliases the report's canonical slices; both are safe
// because Send encodes before returning.
func (p *Protocol) transmit(st *reportState, target wire.NodeID) {
	p.txMsg = st.content
	p.txMsg.Sender = p.host.ID()
	p.txMsg.TargetCH = target
	p.host.Send(&p.txMsg)
}

// --- clusterhead side --------------------------------------------------------

// relay handles a report reaching a clusterhead: rebroadcast once (the
// implicit ack for the upstream hop and the trigger for the downstream
// gateways), then watch for downstream forwarding.
func (p *Protocol) relay(st *reportState) {
	if st.rebroadcast {
		return
	}
	st.rebroadcast = true
	st.retriesLeft = p.cfg.CHRetries
	if p.host.Tracing() {
		p.host.Trace(trace.TypeReportForward, fmt.Sprintf("relay origin=%v seq=%d", st.content.OriginCH, st.content.Seq))
	}
	p.transmit(st, wire.NoNode)
	p.armCHWatch(st)
}

// armCHWatch schedules the 2·Thop implicit-ack check: for every neighboring
// cluster, some gateway candidate (or the neighbor CH itself) must have been
// overheard transmitting the report; otherwise retransmit.
func (p *Protocol) armCHWatch(st *reportState) {
	if !p.cfg.ImplicitAcks {
		return
	}
	p.host.AfterArg(2*p.cfg.Timing.Thop, chWatchFn, st)
}

func (p *Protocol) checkCHWatch(st *reportState) {
	v := p.cluster.View()
	if !v.IsCH {
		return
	}
	if p.neighborsCovered(st) || st.retriesLeft <= 0 {
		return
	}
	st.retriesLeft--
	if p.host.Tracing() {
		p.host.Trace(trace.TypeRetransmit, fmt.Sprintf("origin=%v seq=%d", st.content.OriginCH, st.content.Seq))
	}
	p.transmit(st, wire.NoNode)
	p.armCHWatch(st)
}

// neighborsCovered reports whether, for every known neighboring cluster,
// an implicit acknowledgment has been overheard.
func (p *Protocol) neighborsCovered(st *reportState) bool {
	me := p.host.ID()
	p.nbScratch = p.cluster.AppendNeighborCHs(p.nbScratch[:0])
	for _, nb := range p.nbScratch {
		if nb == st.content.OriginCH || st.sender(nb) {
			continue // the origin already has it; a transmitting CH has it
		}
		covered := false
		p.candScratch = p.cluster.AppendGatewayCandidates(p.candScratch[:0], me, nb)
		for _, cand := range p.candScratch {
			if st.sender(cand) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// --- gateway side -------------------------------------------------------------

// engage puts this gateway candidate on duty for forwarding the report from
// the cluster of viaCH toward every other cluster it bridges with viaCH.
func (p *Protocol) engage(st *reportState, viaCH wire.NodeID) {
	p.bridgedScratch = p.appendBridgedWith(p.bridgedScratch[:0], viaCH)
	for _, target := range p.bridgedScratch {
		if target == st.content.OriginCH || st.sender(target) {
			continue // downstream already has it
		}
		p.engageTarget(st, viaCH, target)
	}
	// Distributed-gateway fallback (Section 3's "node located outside two
	// clusters" option): when the trigger came from this host's own CH and
	// an adjacent cluster is reachable only through a border peer, relay
	// toward it after giving any one-hop gateways priority.
	v := p.cluster.View()
	if viaCH != v.CH {
		return
	}
	p.borderScratch = p.cluster.AppendBorderClusters(p.borderScratch[:0])
	for _, target := range p.borderScratch {
		if target == st.content.OriginCH || st.sender(target) {
			continue
		}
		p.engageTwoHop(st, target)
	}
}

// engageTwoHop arms a border node's relay toward a cluster it cannot reach
// directly: wait out the direct-gateway window, then transmit once unless a
// member of the target cluster has evidently already received the report.
func (p *Protocol) engageTwoHop(st *reportState, target wire.NodeID) {
	duty := st.duty(target)
	if duty != nil && (duty.done || duty.timer.Active() || duty.forwarded > 0) {
		return
	}
	if duty == nil {
		duty = st.addDuty(target)
	}
	// NID-keyed jitter desynchronizes concurrent border forwarders.
	jitter := sim.Time(uint64(p.host.ID()) * uint64(p.cfg.Timing.Thop) / 7 % uint64(p.cfg.Timing.Thop))
	duty.kind = dutyTwoHop
	duty.timer = p.host.AfterArg(2*p.cfg.Timing.Thop+jitter, fireDutyFn, duty)
}

// targetHasReport reports whether the target clusterhead, or any overheard
// member of its cluster, has evidently transmitted the report already.
func (p *Protocol) targetHasReport(st *reportState, target wire.NodeID) bool {
	if st.sender(target) {
		return true
	}
	for _, si := range st.senders {
		if p.cluster.IsBorderPeer(target, p.ids.NodeID(si)) {
			return true
		}
	}
	return false
}

// maybeRelayInward runs on an ordinary member that received a report
// addressed to its own clusterhead from outside the cluster (the second hop
// of a distributed gateway): pass it on to the CH unless someone in the
// cluster evidently has it already.
func (p *Protocol) maybeRelayInward(st *reportState, from wire.NodeID) {
	v := p.cluster.View()
	if v.IsCH || !v.Marked {
		return
	}
	if v.IsMember(from) || from == v.CH {
		return // an insider sent it; normal paths apply
	}
	duty := st.duty(v.CH)
	if duty != nil && (duty.done || duty.timer.Active() || duty.forwarded > 0) {
		return
	}
	if duty == nil {
		duty = st.addDuty(v.CH)
	}
	// Spread relays over two round times so earlier relayers' (or the own
	// CH's) transmissions suppress the rest.
	jitter := sim.Time(uint64(p.host.ID()) * uint64(p.cfg.Timing.Thop) / 5 % uint64(2*p.cfg.Timing.Thop))
	duty.kind = dutyInward
	duty.timer = p.host.AfterArg(jitter, fireDutyFn, duty)
}

// clusterHasReport reports whether this host's own CH or any fellow member
// has been overheard transmitting the report.
func (p *Protocol) clusterHasReport(st *reportState) bool {
	v := p.cluster.View()
	if st.sender(v.CH) {
		return true
	}
	for _, si := range st.senders {
		if sender := p.ids.NodeID(si); sender != p.host.ID() && v.IsMember(sender) {
			return true
		}
	}
	return false
}

// appendBridgedWith appends the clusterheads this host bridges to from viaCH
// (i.e. the partners of every candidate pair involving viaCH that this host
// belongs to) to dst, sorted for determinism.
func (p *Protocol) appendBridgedWith(dst []wire.NodeID, viaCH wire.NodeID) []wire.NodeID {
	v := p.cluster.View()
	if !v.Marked {
		return dst
	}
	start := len(dst)
	switch {
	case v.CH == viaCH:
		dst = append(dst, v.OtherCHs...)
	default:
		// Trigger came from a foreign CH we can hear; we bridge it to our
		// own cluster (and only there — feature F3).
		for _, oc := range v.OtherCHs {
			if oc == viaCH {
				dst = append(dst, v.CH)
				break
			}
		}
	}
	slices.Sort(dst[start:])
	return dst
}

func (p *Protocol) engageTarget(st *reportState, viaCH, target wire.NodeID) {
	duty := st.duty(target)
	if duty != nil && (duty.done || duty.timer.Active() || duty.forwarded > 0) {
		return
	}
	if duty == nil {
		duty = st.addDuty(target)
	}
	rank, n, isCand := p.cluster.GWRank(viaCH, target)
	if !isCand {
		return
	}
	hop := 2 * p.cfg.Timing.Thop
	switch {
	case rank == 1:
		// Primary gateway: forward immediately, then watch for the
		// downstream CH's implicit ack.
		p.forwardNow(st, duty, target, n)
	case p.cfg.BGWAssist:
		// Backup gateway (paper rank k-1): arm the staggered standby
		// timer; only act if nobody got the report through first.
		duty.kind = dutyBGW
		duty.n = n
		duty.timer = p.host.AfterArg(sim.Time(rank-1)*hop, fireDutyFn, duty)
	}
}

// forwardNow transmits toward target and, when implicit acks are on, arms
// the (n+1)·2·Thop re-forward / release timer.
func (p *Protocol) forwardNow(st *reportState, duty *gwDuty, target wire.NodeID, n int) {
	duty.forwarded++
	if p.host.Tracing() {
		p.host.Trace(trace.TypeReportForward, fmt.Sprintf("-> %v origin=%v seq=%d", target, st.content.OriginCH, st.content.Seq))
	}
	p.transmit(st, target)
	if !p.cfg.ImplicitAcks {
		duty.done = true
		return
	}
	duty.kind = dutyRefwd
	duty.n = n
	duty.timer = p.host.AfterArg(sim.Time(n+1)*2*p.cfg.Timing.Thop, fireDutyFn, duty)
}

// --- message handling ---------------------------------------------------------

// Handle implements node.Protocol.
func (p *Protocol) Handle(h *node.Host, m wire.Message, from wire.NodeID) {
	switch msg := m.(type) {
	case *wire.FailureReport:
		p.onReport(msg)
	case *wire.HealthUpdate:
		p.onUpdate(msg)
	}
}

// onReport processes every overheard report transmission: it is evidence
// (an implicit ack), possibly a relay trigger (on a CH), and possibly a
// gateway-duty trigger (when the transmitter is a CH this host bridges).
func (p *Protocol) onReport(m *wire.FailureReport) {
	st := p.getState(key{origin: m.OriginCH, seq: m.Seq}, *m)
	st.addSender(m.Sender)
	// Release any duty toward a CH that evidently has the report.
	if duty := st.duty(m.Sender); duty != nil {
		duty.done = true
		duty.timer.Cancel()
	}

	v := p.cluster.View()
	if v.IsCH {
		if m.TargetCH == p.host.ID() || m.TargetCH == wire.NoNode {
			if p.host.Tracing() {
				p.host.Trace(trace.TypeReportDeliver, fmt.Sprintf("origin=%v seq=%d", m.OriginCH, m.Seq))
			}
			p.relay(st)
		}
		return
	}
	// A clusterhead transmitting a report triggers the gateways bridging
	// it onward (overhearing suffices; no addressing is needed).
	p.engage(st, m.Sender)
	// A report transmission from outside the cluster — addressed to our CH
	// (the second hop of a distributed gateway) or a foreign clusterhead's
	// rebroadcast overheard across the boundary — is relayed inward unless
	// the cluster evidently has it.
	if m.TargetCH == v.CH || m.TargetCH == wire.NoNode {
		p.maybeRelayInward(st, m.Sender)
	}
}

// onUpdate turns a health update announcing new failures into gateway duty:
// this is the origination hop, where the update itself plays the role of
// the CH's hop-0 transmission.
func (p *Protocol) onUpdate(m *wire.HealthUpdate) {
	if len(m.NewFailed) == 0 && len(m.Rescinded) == 0 {
		return
	}
	st := p.getState(key{origin: m.From, seq: uint64(m.Epoch)}, reportFromUpdate(m))
	st.addSender(m.From)
	v := p.cluster.View()
	if v.IsCH {
		// A foreign cluster's update overheard directly by this CH: the
		// report content has effectively arrived; relay it.
		if m.From != p.host.ID() && m.CH != p.host.ID() {
			p.relay(st)
		}
		return
	}
	// Gateways act at the end of fds.R-3 (after the takeover cascade), per
	// the paper; the update may arrive during R-3, so delay until then.
	tEnd := p.cfg.Timing.EpochStart(m.Epoch) + p.cfg.Timing.R3End() + p.cfg.Timing.Thop/8
	delay := tEnd - p.host.Now()
	j := p.takeUpdJob()
	j.st, j.via, j.takeover, j.oldCH = st, m.From, m.Takeover, m.CH
	p.host.AfterArg(delay, fireUpdJobFn, j)
}

// updJob carries one deferred gateway engagement (onUpdate's end-of-R-3
// delay) through the kernel. Jobs return to the per-protocol pool on fire.
type updJob struct {
	p        *Protocol
	st       *reportState
	via      wire.NodeID
	oldCH    wire.NodeID
	takeover bool
}

func fireUpdJobFn(a any) {
	j := a.(*updJob)
	p, st := j.p, j.st
	if j.takeover {
		// Candidate pairs are still keyed by the failed CH until gateways
		// re-register; rank lookups must use the old CH while the targets
		// come from this gateway's current bridging set.
		cv := p.cluster.View()
		targets := cv.OtherCHs
		if cv.CH != j.via { // we bridge the takeover cluster from outside
			p.oneTarget[0] = cv.CH
			targets = p.oneTarget[:]
		}
		for _, target := range targets {
			if target == st.content.OriginCH || st.sender(target) {
				continue
			}
			p.engageTarget(st, j.oldCH, target)
		}
	} else {
		p.engage(st, j.via)
	}
	j.st = nil
	p.updJobFree = append(p.updJobFree, j)
}

func (p *Protocol) takeUpdJob() *updJob {
	if n := len(p.updJobFree); n > 0 {
		j := p.updJobFree[n-1]
		p.updJobFree[n-1] = nil
		p.updJobFree = p.updJobFree[:n-1]
		return j
	}
	return &updJob{p: p}
}

// --- queries -------------------------------------------------------------------

// Seen reports whether this host has processed (or overheard) the report
// identified by origin and seq.
func (p *Protocol) Seen(origin wire.NodeID, seq uint64) bool {
	_, ok := p.reports[key{origin: origin, seq: seq}]
	return ok
}

// ReportCount returns how many distinct reports this host has seen.
func (p *Protocol) ReportCount() int { return len(p.reports) }
