// Package intercluster implements Section 4.3: robust, energy-frugal
// forwarding of failure reports across the cluster backbone.
//
// When a cluster's health-status update announces newly detected failures,
// the gateways bridging that cluster to its neighbors forward the update as
// a FailureReport to the neighboring clusterheads. Each receiving
// clusterhead rebroadcasts the report once, which simultaneously (a) relays
// it toward its own gateways for further flooding and (b) serves as the
// *implicit acknowledgment* the upstream forwarders are listening for —
// explicit acknowledgments would double the message count, which the paper
// rules out on energy grounds.
//
// Loss tolerance per hop:
//
//   - A clusterhead that transmitted a report expects to overhear a gateway
//     forwarding it toward each neighboring cluster within 2·Thop and
//     retransmits (a bounded number of times) otherwise.
//   - The primary gateway forwards immediately, waits (n+1)·2·Thop for the
//     downstream CH's implicit ack, and re-forwards once if it never comes.
//   - Backup gateways (rank k = 1..n−1 among the remaining candidates) arm
//     timers of k·2·Thop; if neither the primary nor a lower-ranked backup
//     got the report through by then, they forward it themselves, then
//     release on overhearing the implicit ack.
//
// De-duplication is by (origin CH, sequence); a clusterhead rebroadcasts
// each report at most once (plus bounded retransmissions), so flooding over
// the backbone terminates.
package intercluster

import (
	"fmt"
	"sort"

	"clusterfds/internal/cluster"
	"clusterfds/internal/fds"
	"clusterfds/internal/node"
	"clusterfds/internal/sim"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

// Config parameterizes the forwarder.
type Config struct {
	// Timing must match the co-resident cluster/FDS timing.
	Timing cluster.Timing
	// CHRetries bounds how many times a clusterhead retransmits a report
	// for which it overheard no gateway forwarding.
	CHRetries int
	// BGWAssist enables backup-gateway assisted forwarding; the ablation
	// benchmarks disable it to quantify its contribution.
	BGWAssist bool
	// ImplicitAcks enables the overhear-based retransmission scheme. When
	// disabled, every hop is fire-and-forget (the paper's strawman).
	ImplicitAcks bool
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig(t cluster.Timing) Config {
	return Config{Timing: t, CHRetries: 2, BGWAssist: true, ImplicitAcks: true}
}

// key de-duplicates reports network-wide.
type key struct {
	origin wire.NodeID
	seq    uint64
}

// reportState is everything this host knows about one report.
type reportState struct {
	content wire.FailureReport // canonical content (Sender/TargetCH cleared)
	// senders records every host overheard transmitting this report;
	// implicit acknowledgments are lookups in this set.
	senders map[wire.NodeID]bool
	// rebroadcast marks that this host (as CH) already relayed the report.
	rebroadcast bool
	retriesLeft int
	// engaged tracks gateway duty per downstream clusterhead.
	engaged map[wire.NodeID]*gwDuty
}

// gwDuty is a gateway candidate's forwarding state toward one target CH.
type gwDuty struct {
	forwarded int
	timer     sim.Timer
	done      bool
}

// Protocol is the per-host inter-cluster forwarder.
type Protocol struct {
	cfg     Config
	host    *node.Host
	cluster *cluster.Protocol
	fds     *fds.Protocol

	reports map[key]*reportState
	epoch   wire.Epoch

	// knownNeighbors tracks, on a clusterhead, which adjacent clusters
	// have been seen before: a NEW adjacency (clusters forming or
	// re-forming next door) triggers a catch-up report carrying the
	// cumulative failed set, so knowledge holes left by topology churn
	// heal instead of waiting for the next failure.
	knownNeighbors map[wire.NodeID]bool
}

// New returns a forwarder bound to the co-resident cluster and FDS
// protocols.
func New(cfg Config, cl *cluster.Protocol, f *fds.Protocol) *Protocol {
	if cl == nil || f == nil {
		panic("intercluster: nil cluster or fds protocol")
	}
	if !cfg.Timing.Valid() {
		panic("intercluster: invalid timing")
	}
	if cfg.CHRetries < 0 {
		cfg.CHRetries = 0
	}
	return &Protocol{
		cfg:            cfg,
		cluster:        cl,
		fds:            f,
		reports:        make(map[key]*reportState),
		knownNeighbors: make(map[wire.NodeID]bool),
	}
}

// Start implements node.Protocol.
func (p *Protocol) Start(h *node.Host) {
	p.host = h
	e := p.cfg.Timing.EpochOf(h.Now())
	if h.Now() > p.cfg.Timing.EpochStart(e) {
		e++
	}
	p.scheduleEpoch(e)
}

func (p *Protocol) scheduleEpoch(e wire.Epoch) {
	at := p.cfg.Timing.EpochStart(e)
	p.host.After(at-p.host.Now(), func() { p.runEpoch(e) })
}

// runEpoch arms the per-epoch origination check: shortly after the end of
// fds.R-3 (leaving room for the deputy-takeover cascade), a clusterhead
// whose own update announced new failures seeds the backbone flood.
func (p *Protocol) runEpoch(e wire.Epoch) {
	p.epoch = e
	p.scheduleEpoch(e + 1)
	t := p.cfg.Timing
	p.host.After(t.R3End()+t.Thop/4, func() { p.maybeOriginate(e) })
}

// maybeOriginate runs on every host each epoch; a clusterhead acts when its
// epoch update carried news (origination) or a new neighbor cluster
// appeared (catch-up).
func (p *Protocol) maybeOriginate(e wire.Epoch) {
	v := p.cluster.View()
	if !v.IsCH {
		return
	}
	newNeighbor := false
	for _, nb := range p.cluster.NeighborCHs() {
		if !p.knownNeighbors[nb] {
			p.knownNeighbors[nb] = true
			newNeighbor = true
		}
	}

	if up, ok := p.fds.CurrentUpdate(); ok && up.Epoch == e &&
		(len(up.NewFailed) > 0 || len(up.Rescinded) > 0) {
		st := p.getState(key{origin: up.From, seq: uint64(up.Epoch)}, reportFromUpdate(&up))
		if !st.rebroadcast {
			st.rebroadcast = true
			st.retriesLeft = p.cfg.CHRetries
			// The cluster's own health update already reached the
			// gateways; this CH now only arms the implicit-ack watch (its
			// update was the hop-0 transmission), retransmitting the
			// report itself if no gateway forwarding is overheard.
			p.armCHWatch(st)
		}
		return
	}

	// Catch-up on new adjacency: share what this cluster knows so a
	// freshly (re)formed neighbor is not left waiting for the next
	// failure to learn old news.
	failed := p.fds.KnownFailed()
	if !newNeighbor || len(failed) == 0 {
		return
	}
	st := p.getState(key{origin: p.host.ID(), seq: uint64(e)}, wire.FailureReport{
		OriginCH:  p.host.ID(),
		Seq:       uint64(e),
		Epoch:     e,
		AllFailed: failed,
	})
	if st.rebroadcast {
		return
	}
	st.rebroadcast = true
	st.retriesLeft = p.cfg.CHRetries
	p.host.Trace(trace.TypeReportForward, fmt.Sprintf("catch-up seq=%d failed=%d", e, len(failed)))
	p.transmit(st, wire.NoNode)
	p.armCHWatch(st)
}

// reportFromUpdate builds the canonical report a health update gives rise
// to. Every gateway derives the identical key, so de-duplication works
// without coordination.
func reportFromUpdate(up *wire.HealthUpdate) wire.FailureReport {
	return wire.FailureReport{
		OriginCH:  up.From,
		Seq:       uint64(up.Epoch),
		Epoch:     up.Epoch,
		NewFailed: up.NewFailed,
		AllFailed: up.AllFailed,
		Rescinded: up.Rescinded,
	}
}

// getState returns the tracked state for report key k, creating it from
// content on first sight. Creation deep-copies content's slices: content
// usually derives from a delivered message (or a health update aliasing the
// FDS's reusable buffer), whose slices are only valid during the current
// handler, while reportState lives for many epochs of retransmission.
func (p *Protocol) getState(k key, content wire.FailureReport) *reportState {
	st, ok := p.reports[k]
	if !ok {
		content.Sender = wire.NoNode
		content.TargetCH = wire.NoNode
		content.NewFailed = append([]wire.NodeID(nil), content.NewFailed...)
		content.AllFailed = append([]wire.NodeID(nil), content.AllFailed...)
		content.Rescinded = append([]wire.Rescission(nil), content.Rescinded...)
		st = &reportState{
			content: content,
			senders: make(map[wire.NodeID]bool),
			engaged: make(map[wire.NodeID]*gwDuty),
		}
		p.reports[k] = st
	}
	return st
}

// transmit broadcasts the report stamped with this host as sender.
func (p *Protocol) transmit(st *reportState, target wire.NodeID) {
	r := st.content // copy
	r.Sender = p.host.ID()
	r.TargetCH = target
	p.host.Send(&r)
}

// --- clusterhead side --------------------------------------------------------

// relay handles a report reaching a clusterhead: rebroadcast once (the
// implicit ack for the upstream hop and the trigger for the downstream
// gateways), then watch for downstream forwarding.
func (p *Protocol) relay(st *reportState) {
	if st.rebroadcast {
		return
	}
	st.rebroadcast = true
	st.retriesLeft = p.cfg.CHRetries
	p.host.Trace(trace.TypeReportForward, fmt.Sprintf("relay origin=%v seq=%d", st.content.OriginCH, st.content.Seq))
	p.transmit(st, wire.NoNode)
	p.armCHWatch(st)
}

// armCHWatch schedules the 2·Thop implicit-ack check: for every neighboring
// cluster, some gateway candidate (or the neighbor CH itself) must have been
// overheard transmitting the report; otherwise retransmit.
func (p *Protocol) armCHWatch(st *reportState) {
	if !p.cfg.ImplicitAcks {
		return
	}
	p.host.After(2*p.cfg.Timing.Thop, func() { p.checkCHWatch(st) })
}

func (p *Protocol) checkCHWatch(st *reportState) {
	v := p.cluster.View()
	if !v.IsCH {
		return
	}
	if p.neighborsCovered(st) || st.retriesLeft <= 0 {
		return
	}
	st.retriesLeft--
	p.host.Trace(trace.TypeRetransmit, fmt.Sprintf("origin=%v seq=%d", st.content.OriginCH, st.content.Seq))
	p.transmit(st, wire.NoNode)
	p.armCHWatch(st)
}

// neighborsCovered reports whether, for every known neighboring cluster,
// an implicit acknowledgment has been overheard.
func (p *Protocol) neighborsCovered(st *reportState) bool {
	me := p.host.ID()
	for _, nb := range p.cluster.NeighborCHs() {
		if nb == st.content.OriginCH || st.senders[nb] {
			continue // the origin already has it; a transmitting CH has it
		}
		covered := false
		for _, cand := range p.cluster.GatewayCandidates(me, nb) {
			if st.senders[cand] {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	return true
}

// --- gateway side -------------------------------------------------------------

// engage puts this gateway candidate on duty for forwarding the report from
// the cluster of viaCH toward every other cluster it bridges with viaCH.
func (p *Protocol) engage(st *reportState, viaCH wire.NodeID) {
	for _, target := range p.bridgedWith(viaCH) {
		if target == st.content.OriginCH || st.senders[target] {
			continue // downstream already has it
		}
		p.engageTarget(st, viaCH, target)
	}
	// Distributed-gateway fallback (Section 3's "node located outside two
	// clusters" option): when the trigger came from this host's own CH and
	// an adjacent cluster is reachable only through a border peer, relay
	// toward it after giving any one-hop gateways priority.
	v := p.cluster.View()
	if viaCH != v.CH {
		return
	}
	for _, target := range p.cluster.BorderClusters() {
		if target == st.content.OriginCH || st.senders[target] {
			continue
		}
		p.engageTwoHop(st, target)
	}
}

// engageTwoHop arms a border node's relay toward a cluster it cannot reach
// directly: wait out the direct-gateway window, then transmit once unless a
// member of the target cluster has evidently already received the report.
func (p *Protocol) engageTwoHop(st *reportState, target wire.NodeID) {
	duty, ok := st.engaged[target]
	if ok && (duty.done || duty.timer.Active() || duty.forwarded > 0) {
		return
	}
	if !ok {
		duty = &gwDuty{}
		st.engaged[target] = duty
	}
	// NID-keyed jitter desynchronizes concurrent border forwarders.
	jitter := sim.Time(uint64(p.host.ID()) * uint64(p.cfg.Timing.Thop) / 7 % uint64(p.cfg.Timing.Thop))
	duty.timer = p.host.After(2*p.cfg.Timing.Thop+jitter, func() {
		if duty.done || p.targetHasReport(st, target) {
			duty.done = true
			return
		}
		duty.forwarded++
		p.host.Trace(trace.TypeReportForward, fmt.Sprintf("two-hop -> %v origin=%v seq=%d",
			target, st.content.OriginCH, st.content.Seq))
		p.transmit(st, target)
	})
}

// targetHasReport reports whether the target clusterhead, or any overheard
// member of its cluster, has evidently transmitted the report already.
func (p *Protocol) targetHasReport(st *reportState, target wire.NodeID) bool {
	if st.senders[target] {
		return true
	}
	for sender := range st.senders {
		if p.cluster.IsBorderPeer(target, sender) {
			return true
		}
	}
	return false
}

// maybeRelayInward runs on an ordinary member that received a report
// addressed to its own clusterhead from outside the cluster (the second hop
// of a distributed gateway): pass it on to the CH unless someone in the
// cluster evidently has it already.
func (p *Protocol) maybeRelayInward(st *reportState, from wire.NodeID) {
	v := p.cluster.View()
	if v.IsCH || !v.Marked {
		return
	}
	if v.IsMember(from) || from == v.CH {
		return // an insider sent it; normal paths apply
	}
	duty, ok := st.engaged[v.CH]
	if ok && (duty.done || duty.timer.Active() || duty.forwarded > 0) {
		return
	}
	if !ok {
		duty = &gwDuty{}
		st.engaged[v.CH] = duty
	}
	// Spread relays over two round times so earlier relayers' (or the own
	// CH's) transmissions suppress the rest.
	jitter := sim.Time(uint64(p.host.ID()) * uint64(p.cfg.Timing.Thop) / 5 % uint64(2*p.cfg.Timing.Thop))
	duty.timer = p.host.After(jitter, func() {
		if duty.done || p.clusterHasReport(st) {
			duty.done = true
			return
		}
		duty.forwarded++
		p.host.Trace(trace.TypeReportForward, fmt.Sprintf("inward -> %v origin=%v seq=%d",
			p.cluster.View().CH, st.content.OriginCH, st.content.Seq))
		p.transmit(st, p.cluster.View().CH)
	})
}

// clusterHasReport reports whether this host's own CH or any fellow member
// has been overheard transmitting the report.
func (p *Protocol) clusterHasReport(st *reportState) bool {
	v := p.cluster.View()
	if st.senders[v.CH] {
		return true
	}
	for sender := range st.senders {
		if sender != p.host.ID() && v.IsMember(sender) {
			return true
		}
	}
	return false
}

// bridgedWith returns the clusterheads this host bridges to from viaCH
// (i.e. the partners of every candidate pair involving viaCH that this host
// belongs to), sorted for determinism.
func (p *Protocol) bridgedWith(viaCH wire.NodeID) []wire.NodeID {
	v := p.cluster.View()
	if !v.Marked {
		return nil
	}
	var chs []wire.NodeID
	switch {
	case v.CH == viaCH:
		chs = v.OtherCHs
	default:
		// Trigger came from a foreign CH we can hear; we bridge it to our
		// own cluster (and only there — feature F3).
		for _, oc := range v.OtherCHs {
			if oc == viaCH {
				chs = []wire.NodeID{v.CH}
				break
			}
		}
	}
	sort.Slice(chs, func(i, j int) bool { return chs[i] < chs[j] })
	return chs
}

func (p *Protocol) engageTarget(st *reportState, viaCH, target wire.NodeID) {
	duty, ok := st.engaged[target]
	if ok && (duty.done || duty.timer.Active() || duty.forwarded > 0) {
		return
	}
	if !ok {
		duty = &gwDuty{}
		st.engaged[target] = duty
	}
	rank, n, isCand := p.cluster.GWRank(viaCH, target)
	if !isCand {
		return
	}
	hop := 2 * p.cfg.Timing.Thop
	switch {
	case rank == 1:
		// Primary gateway: forward immediately, then watch for the
		// downstream CH's implicit ack.
		p.forwardNow(st, duty, target, n)
	case p.cfg.BGWAssist:
		// Backup gateway (paper rank k-1): arm the staggered standby
		// timer; only act if nobody got the report through first.
		wait := sim.Time(rank-1) * hop
		duty.timer = p.host.After(wait, func() {
			if duty.done || st.senders[target] {
				duty.done = true
				return
			}
			p.host.Trace(trace.TypeBGWAssist, fmt.Sprintf("-> %v origin=%v", target, st.content.OriginCH))
			p.forwardNow(st, duty, target, n)
		})
	}
}

// forwardNow transmits toward target and, when implicit acks are on, arms
// the (n+1)·2·Thop re-forward / release timer.
func (p *Protocol) forwardNow(st *reportState, duty *gwDuty, target wire.NodeID, n int) {
	duty.forwarded++
	p.host.Trace(trace.TypeReportForward, fmt.Sprintf("-> %v origin=%v seq=%d", target, st.content.OriginCH, st.content.Seq))
	p.transmit(st, target)
	if !p.cfg.ImplicitAcks {
		duty.done = true
		return
	}
	wait := sim.Time(n+1) * 2 * p.cfg.Timing.Thop
	duty.timer = p.host.After(wait, func() {
		if duty.done || st.senders[target] {
			duty.done = true
			return
		}
		if duty.forwarded >= 2 {
			return // give up; the next epoch's cumulative report catches up
		}
		p.host.Trace(trace.TypeRetransmit, fmt.Sprintf("-> %v origin=%v", target, st.content.OriginCH))
		p.forwardNow(st, duty, target, n)
	})
}

// --- message handling ---------------------------------------------------------

// Handle implements node.Protocol.
func (p *Protocol) Handle(h *node.Host, m wire.Message, from wire.NodeID) {
	switch msg := m.(type) {
	case *wire.FailureReport:
		p.onReport(msg)
	case *wire.HealthUpdate:
		p.onUpdate(msg)
	}
}

// onReport processes every overheard report transmission: it is evidence
// (an implicit ack), possibly a relay trigger (on a CH), and possibly a
// gateway-duty trigger (when the transmitter is a CH this host bridges).
func (p *Protocol) onReport(m *wire.FailureReport) {
	st := p.getState(key{origin: m.OriginCH, seq: m.Seq}, *m)
	st.senders[m.Sender] = true
	// Release any duty toward a CH that evidently has the report.
	if duty, ok := st.engaged[m.Sender]; ok {
		duty.done = true
		duty.timer.Cancel()
	}

	v := p.cluster.View()
	if v.IsCH {
		if m.TargetCH == p.host.ID() || m.TargetCH == wire.NoNode {
			p.host.Trace(trace.TypeReportDeliver, fmt.Sprintf("origin=%v seq=%d", m.OriginCH, m.Seq))
			p.relay(st)
		}
		return
	}
	// A clusterhead transmitting a report triggers the gateways bridging
	// it onward (overhearing suffices; no addressing is needed).
	p.engage(st, m.Sender)
	// A report transmission from outside the cluster — addressed to our CH
	// (the second hop of a distributed gateway) or a foreign clusterhead's
	// rebroadcast overheard across the boundary — is relayed inward unless
	// the cluster evidently has it.
	if m.TargetCH == v.CH || m.TargetCH == wire.NoNode {
		p.maybeRelayInward(st, m.Sender)
	}
}

// onUpdate turns a health update announcing new failures into gateway duty:
// this is the origination hop, where the update itself plays the role of
// the CH's hop-0 transmission.
func (p *Protocol) onUpdate(m *wire.HealthUpdate) {
	if len(m.NewFailed) == 0 && len(m.Rescinded) == 0 {
		return
	}
	st := p.getState(key{origin: m.From, seq: uint64(m.Epoch)}, reportFromUpdate(m))
	st.senders[m.From] = true
	v := p.cluster.View()
	if v.IsCH {
		// A foreign cluster's update overheard directly by this CH: the
		// report content has effectively arrived; relay it.
		if m.From != p.host.ID() && m.CH != p.host.ID() {
			p.relay(st)
		}
		return
	}
	// Gateways act at the end of fds.R-3 (after the takeover cascade), per
	// the paper; the update may arrive during R-3, so delay until then.
	tEnd := p.cfg.Timing.EpochStart(m.Epoch) + p.cfg.Timing.R3End() + p.cfg.Timing.Thop/8
	delay := tEnd - p.host.Now()
	via := m.From
	if m.Takeover {
		// Candidate pairs are still keyed by the failed CH until gateways
		// re-register; rank lookups must use the old CH while the targets
		// come from this gateway's current bridging set.
		oldCH := m.CH
		p.host.After(delay, func() {
			cv := p.cluster.View()
			targets := cv.OtherCHs
			if cv.CH != via { // we bridge the takeover cluster from outside
				targets = []wire.NodeID{cv.CH}
			}
			for _, target := range targets {
				if target == st.content.OriginCH || st.senders[target] {
					continue
				}
				p.engageTarget(st, oldCH, target)
			}
		})
		return
	}
	p.host.After(delay, func() { p.engage(st, via) })
}

// --- queries -------------------------------------------------------------------

// Seen reports whether this host has processed (or overheard) the report
// identified by origin and seq.
func (p *Protocol) Seen(origin wire.NodeID, seq uint64) bool {
	_, ok := p.reports[key{origin: origin, seq: seq}]
	return ok
}

// ReportCount returns how many distinct reports this host has seen.
func (p *Protocol) ReportCount() int { return len(p.reports) }
