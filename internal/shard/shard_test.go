package shard

import (
	"testing"
	"time"

	"clusterfds/internal/cluster"
	"clusterfds/internal/radio"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// goldenConfig mirrors the repository's 100-host golden scenario (seed
// 20260806, 500 m field, p = 0.1, two crash waves, 12 epochs) on the
// sharded engine. The legacy kernel's golden trace hash in golden_test.go
// is untouched by this engine — the two kernels draw from different RNG
// disciplines by design — so the sharded engine pins its OWN trace hash
// here, with the same discipline: committed once, bit-identical at every
// shard and worker count.
func goldenConfig() Config {
	iv := sim.Time(10 * time.Second)
	ms := sim.Time(time.Millisecond)
	return Config{
		Seed:   20260806,
		N:      100,
		Side:   500,
		Epochs: 12,
		Timing: cluster.DefaultTiming(),
		Radio:  radio.Defaults(0.1),
		Crashes: []Crash{
			{ID: 7, At: 3*iv + 200*ms},
			{ID: 23, At: 3*iv + 200*ms},
			{ID: 55, At: 3*iv + 200*ms},
			{ID: 12, At: 6*iv + 700*ms},
			{ID: 81, At: 6*iv + 700*ms},
		},
	}
}

// Committed hashes for goldenConfig(). If a deliberate protocol or RNG
// change moves them, re-pin BOTH from a -shards 1 -workers 1 run and say so
// in the commit; if they move without such a change, determinism broke.
const (
	goldenTraceHash = 0x678b62fa35871ff1
	goldenStateHash = 0x1ab6276f5f3b0a98
)

// TestShardedGoldenHashAcrossPartitions is the engine's core contract: the
// trace and state hashes are bit-identical for every shard count in
// {1, 2, 4, 8} and every worker count in {1, 2, 4}, and equal to the
// committed constants.
func TestShardedGoldenHashAcrossPartitions(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8} {
		for _, w := range []int{1, 2, 4} {
			cfg := goldenConfig()
			cfg.Shards, cfg.Workers = k, w
			res := Build(cfg).Run()
			if res.TraceHash != goldenTraceHash {
				t.Errorf("shards=%d workers=%d: trace hash %#016x, want %#016x",
					k, w, res.TraceHash, goldenTraceHash)
			}
			if res.StateHash != goldenStateHash {
				t.Errorf("shards=%d workers=%d: state hash %#016x, want %#016x",
					k, w, res.StateHash, goldenStateHash)
			}
		}
	}
}

// TestShardedGoldenBehavior sanity-checks the protocol outcome on the
// golden scenario: all five victims are eventually detected by their cells
// and the epidemic relay spreads awareness to (almost) the whole live
// population.
func TestShardedGoldenBehavior(t *testing.T) {
	cfg := goldenConfig()
	cfg.Shards = 4
	res := Build(cfg).Run()
	if len(res.Victims) != 5 {
		t.Fatalf("victims = %d, want 5", len(res.Victims))
	}
	for _, v := range res.Victims {
		if v.DetectedAt < 0 {
			// A victim alone in its cell is undetectable by design; the
			// golden seed places all five in populated cells.
			t.Errorf("victim %d never detected", v.ID)
			continue
		}
		if v.DetectedAt <= v.CrashedAt {
			t.Errorf("victim %d detected at %d, before its crash at %d", v.ID, v.DetectedAt, v.CrashedAt)
		}
		if v.Aware < 90 {
			t.Errorf("victim %d known to only %d hosts", v.ID, v.Aware)
		}
	}
	if res.Sends == 0 || res.Deliveries == 0 || res.TxBytes == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	if res.EnergySpent <= 0 {
		t.Fatalf("energy accounting inert: %v", res.EnergySpent)
	}
}

// TestShardedSeedSensitivity guards against a hash that ignores its inputs:
// a different seed must move both hashes.
func TestShardedSeedSensitivity(t *testing.T) {
	cfg := goldenConfig()
	cfg.Seed++
	res := Build(cfg).Run()
	if res.TraceHash == goldenTraceHash || res.StateHash == goldenStateHash {
		t.Fatalf("hashes did not move with the seed: trace=%#x state=%#x", res.TraceHash, res.StateHash)
	}
}

// TestWireSizeFormulas pins the engine's closed-form byte accounting to the
// authoritative WireSize implementations in internal/wire.
func TestWireSizeFormulas(t *testing.T) {
	if got := (&wire.Heartbeat{}).WireSize(); got != hbBytes {
		t.Errorf("heartbeat: closed form %d, wire %d", hbBytes, got)
	}
	for _, n := range []int{0, 1, 7, 200} {
		d := &wire.Digest{Heard: make([]wire.NodeID, n)}
		if got, want := d.WireSize(), digestFixed+perIDBytes*n; got != want {
			t.Errorf("digest(%d heard): closed form %d, wire %d", n, want, got)
		}
	}
	for _, c := range []struct{ nNew, nAll, nResc int }{
		{0, 0, 0}, {1, 1, 0}, {3, 10, 2}, {0, 5, 1},
	} {
		h := &wire.HealthUpdate{
			NewFailed: make([]wire.NodeID, c.nNew),
			AllFailed: make([]wire.NodeID, c.nAll),
			Rescinded: make([]wire.Rescission, c.nResc),
		}
		want := healthFixed + perIDBytes*c.nNew + perIDBytes*c.nAll + perRescindSize*c.nResc
		if got := h.WireSize(); got != want {
			t.Errorf("health%+v: closed form %d, wire %d", c, want, got)
		}
		r := &wire.FailureReport{
			NewFailed: make([]wire.NodeID, c.nNew),
			AllFailed: make([]wire.NodeID, c.nAll),
			Rescinded: make([]wire.Rescission, c.nResc),
		}
		want = reportFixed + perIDBytes*c.nNew + perIDBytes*c.nAll + perRescindSize*c.nResc
		if got := r.WireSize(); got != want {
			t.Errorf("report%+v: closed form %d, wire %d", c, want, got)
		}
	}
}

// TestWindowInvariant verifies the conservative lookahead directly: with
// shards > 1, every cross-shard event lands strictly after the window it
// was created in (Run panics otherwise), and the window width equals the
// radio's MinDelay — NOT Thop, which is the paper's upper bound on one-hop
// delay and would be an unsound lookahead.
func TestWindowInvariant(t *testing.T) {
	cfg := goldenConfig()
	cfg.Shards = 8
	e := Build(cfg)
	if e.w != cfg.Radio.MinDelay {
		t.Fatalf("window width %d, want MinDelay %d", e.w, cfg.Radio.MinDelay)
	}
	if e.w >= cfg.Timing.Thop {
		t.Fatalf("window width %d not below Thop %d", e.w, cfg.Timing.Thop)
	}
	e.Run() // panics on any invariant violation
}

// TestShardClamping: more requested shards than cell columns must clamp,
// not crash or leave empty strips.
func TestShardClamping(t *testing.T) {
	cfg := goldenConfig()
	cfg.Shards = 1000
	e := Build(cfg)
	if e.nShards != e.cols {
		t.Fatalf("shards = %d, want clamped to %d columns", e.nShards, e.cols)
	}
	res := e.Run()
	if res.TraceHash != goldenTraceHash {
		t.Fatalf("clamped run diverged: %#016x", res.TraceHash)
	}
}

// TestCellsNeverSpanShards pins the layout property the race-freedom
// argument rests on: every member of a cell maps to the same shard.
func TestCellsNeverSpanShards(t *testing.T) {
	cfg := goldenConfig()
	cfg.Shards = 4
	e := Build(cfg)
	for c := int32(0); c < int32(e.cols*e.rows); c++ {
		ros := e.roster(c)
		for _, m := range ros {
			if e.shardOf(m) != e.shardOf(ros[0]) {
				t.Fatalf("cell %d spans shards %d and %d", c, e.shardOf(ros[0]), e.shardOf(m))
			}
		}
	}
}
