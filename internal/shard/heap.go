package shard

import "clusterfds/internal/sim"

// ev is one scheduled occurrence in a shard's heap. Unlike the pointer-based
// pooled events of sim.Kernel, ev is a plain value moved inside the heap
// slice: at a million hosts the heap holds tens of millions of in-flight
// deliveries, and value events cost one 40-byte slot with zero per-event
// allocation or pointer chasing.
//
// Ordering is by the globally stable key (at, owner, seq) — owner is the
// scheduling host's NodeID (0 for shard-control events) and seq its private
// send counter. The key is assigned where the event is CREATED, from state
// owned by one host, so it is identical at every shard and worker count;
// kernel-local tie-break counters (what sim.Kernel uses) would not be.
type ev struct {
	at    sim.Time
	owner uint32 // NodeID of the scheduling host; 0 = shard-control
	seq   uint32 // owner's private event counter (shard-local for control)
	kind  uint8
	aux   uint32 // receiver idx (deliveries), victim idx (crash), epoch (epoch tick)
	off   uint32 // payload span into the shard's victim-slot arena
	n     uint32
	bytes uint32 // wire size, for rx energy/byte accounting at delivery
}

// Event kinds. ek* fire on the owning host (sends and control), d* are
// per-receiver deliveries.
const (
	ekEpoch  uint8 = iota // control: per-shard epoch tick; aux = epoch
	ekCrash               // control: fail-stop a host; aux = host idx
	ekHB                  // host broadcasts its round-1 heartbeat
	ekDigest              // host broadcasts its round-2 digest
	ekHealth              // CH runs detection + broadcasts the health update
	ekCheck               // deputy CH takeover check at R3End+Thop
	ekRelay               // host relays a failure report (epidemic hop)
	dHB                   // deliveries of the above
	dDigest
	dHealth
	dReport
)

// less orders events by the stable key (at, owner, seq).
func (e *ev) less(o *ev) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.owner != o.owner {
		return e.owner < o.owner
	}
	return e.seq < o.seq
}

// evHeap is a 4-ary min-heap of value events, the same shape sim.Kernel
// uses: half the depth of a binary heap means half the sift-down swaps,
// which dominate the engine's profile when tens of millions of deliveries
// are in flight. Hand-rolled rather than container/heap to avoid interface
// boxing on every push/pop.
type evHeap struct {
	a []ev
}

func (h *evHeap) len() int { return len(h.a) }

// minTime returns the earliest scheduled instant, or ok=false when empty.
func (h *evHeap) minTime() (sim.Time, bool) {
	if len(h.a) == 0 {
		return 0, false
	}
	return h.a[0].at, true
}

func (h *evHeap) push(e ev) {
	h.a = append(h.a, e)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !h.a[i].less(&h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *evHeap) pop() ev {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		first := i<<2 + 1
		if first >= last {
			break
		}
		m := first
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if h.a[c].less(&h.a[m]) {
				m = c
			}
		}
		if !h.a[m].less(&h.a[i]) {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return top
}
