package shard

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"slices"
	"sync"

	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// Wire sizes, closed-form from internal/wire's WireSize methods (pinned by
// TestWireSizeFormulas): the engine never materializes message structs, it
// just accounts the bytes they would occupy.
const (
	hbBytes        = 14                        // (*wire.Heartbeat).WireSize()
	digestFixed    = 1 + 4 + 4 + 8 + 2 + 1 + 8 // + 4 per heard ID
	healthFixed    = 1 + 4 + 4 + 8 + 2 + 2 + 2 + 1
	reportFixed    = 1 + 4 + 8 + 8 + 2 + 2 + 2 + 4 + 4
	perIDBytes     = 4
	perRescindSize = 12
)

// Run executes the built world to the horizon and returns the summary.
// Results are bit-identical for every cfg.Shards and cfg.Workers value;
// only wall-clock time changes. Run consumes the engine.
func (e *Engine) Run() Result {
	k := e.nShards
	workers := e.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > k {
		workers = k
	}

	progEvery := e.cfg.ProgressEvery
	if progEvery < 1 {
		progEvery = 5000
	}
	windows := 0

	var traceBuf []rec
	var wg sync.WaitGroup
	for {
		// Serial phase: find the next instant with work anywhere, and
		// recycle payload arenas of fully drained shards (an empty heap
		// means no in-flight event references the arena).
		var t sim.Time
		found := false
		for s := range e.shards {
			sh := &e.shards[s]
			if sh.heap.len() == 0 {
				sh.arena = sh.arena[:0]
				continue
			}
			if mt, _ := sh.heap.minTime(); !found || mt < t {
				t, found = mt, true
			}
		}
		if !found || t >= e.horizon {
			break
		}
		wEnd := t + e.w
		if wEnd > e.horizon {
			wEnd = e.horizon
		}

		// Parallel phase: every shard drains its events in [t, wEnd).
		// Shards touch only host rows they own, their own outboxes, and
		// their own trace buffer, so this is race-free by layout.
		if workers == 1 {
			for s := range e.shards {
				e.drain(int32(s), wEnd)
			}
		} else {
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for s := w; s < k; s += workers {
						e.drain(int32(s), wEnd)
					}
				}(w)
			}
			wg.Wait()
		}

		// Barrier phase 1: merge outboxes in (dst, src) order. Heap order
		// is by the global event key, so insertion order cannot matter —
		// the fixed iteration order just keeps arena layouts canonical.
		for d := 0; d < k; d++ {
			dst := &e.shards[d]
			for s := 0; s < k; s++ {
				ob := &e.shards[s].out[d]
				if len(ob.evs) == 0 {
					continue
				}
				base := uint32(len(dst.arena))
				dst.arena = append(dst.arena, ob.payload...)
				for _, evt := range ob.evs {
					if evt.at < wEnd {
						panic(fmt.Sprintf("shard: conservative window invariant violated: cross-shard event at %d inside window ending %d", evt.at, wEnd))
					}
					evt.off += base
					dst.heap.push(evt)
				}
				ob.evs = ob.evs[:0]
				ob.payload = ob.payload[:0]
			}
		}

		// Barrier phase 2: fold this window's trace records into the run
		// hash in global key order. Within a shard, records are already
		// nearly sorted (heap pop order), but an event created mid-window
		// at its creator's own instant pops after later-keyed events, so a
		// full sort of the window is required for partition independence.
		traceBuf = traceBuf[:0]
		for s := range e.shards {
			sh := &e.shards[s]
			traceBuf = append(traceBuf, sh.trace...)
			sh.trace = sh.trace[:0]
		}
		slices.SortFunc(traceBuf, func(x, y rec) int {
			if x.at != y.at {
				if x.at < y.at {
					return -1
				}
				return 1
			}
			if x.owner != y.owner {
				if x.owner < y.owner {
					return -1
				}
				return 1
			}
			if x.seq != y.seq {
				if x.seq < y.seq {
					return -1
				}
				return 1
			}
			return 0
		})
		for i := range traceBuf {
			r := &traceBuf[i]
			e.traceHash = fold(e.traceHash, uint64(r.at))
			e.traceHash = fold(e.traceHash, uint64(r.owner)<<32|uint64(r.seq))
			e.traceHash = fold(e.traceHash, uint64(r.kind)<<40|uint64(r.aux)<<8|uint64(r.bytes)<<44)
		}

		// Liveness reporting only — reads counters at the barrier, touches
		// nothing the simulation or its hashes depend on.
		if windows++; e.cfg.Progress != nil && windows%progEvery == 0 {
			var events uint64
			for s := range e.shards {
				events += e.shards[s].c.events
			}
			e.cfg.Progress(wEnd, events)
		}
	}
	return e.summarize(workers)
}

// drain processes every event of shard s scheduled before wEnd.
func (e *Engine) drain(s int32, wEnd sim.Time) {
	sh := &e.shards[s]
	for {
		mt, ok := sh.heap.minTime()
		if !ok || mt >= wEnd {
			return
		}
		v := sh.heap.pop()
		switch v.kind {
		case ekEpoch:
			e.epochTick(s, sh, v)
		case ekCrash:
			slot := int(v.aux)
			e.crashed[e.victims[slot].idx] = true
			e.victims[slot].crashed = true
		case ekHB:
			e.sendHB(s, sh, v)
		case ekDigest:
			e.sendDigest(s, sh, v)
		case ekHealth, ekCheck:
			e.round3(s, sh, v)
		case ekRelay:
			e.sendRelay(s, sh, v)
		case dHB, dDigest, dHealth, dReport:
			e.deliver(s, sh, v)
		default:
			panic("shard: unknown event kind")
		}
	}
}

// epochTick starts epoch v.aux for shard s: per cell, elect the epoch's CH
// and deputy (lowest and second-lowest live NID), reset per-epoch evidence,
// and schedule each live host's jittered heartbeat plus the deputy's
// takeover check at R3End + Thop.
func (e *Engine) epochTick(s int32, sh *shardState, v ev) {
	start := v.at
	span := e.cfg.Timing.JitterSpan()
	for col := e.colStart[s]; col < e.colStart[s+1]; col++ {
		for row := 0; row < e.rows; row++ {
			c := int32(int(col)*e.rows + row)
			ros := e.roster(c)
			if len(ros) == 0 {
				continue
			}
			ch, dep := int32(-1), int32(-1)
			for _, i := range ros {
				if e.crashed[i] {
					continue
				}
				if ch < 0 {
					ch = int32(i)
				} else if dep < 0 {
					dep = int32(i)
					break
				}
			}
			e.cellCH[c], e.cellDeputy[c] = ch, dep
			for _, i := range ros {
				if e.crashed[i] {
					continue
				}
				row := i * uint32(e.evWords)
				for w := uint32(0); w < uint32(e.evWords); w++ {
					e.heard[row+w] = 0
					e.alive[row+w] = 0
				}
				e.healthSeen[i] = false
				j := sim.Time(e.rng[i].Int63n(span))
				sh.heap.push(ev{at: start + j, owner: i + 1, seq: e.nextSeq(i), kind: ekHB})
			}
			if dep >= 0 {
				i := uint32(dep)
				at := start + e.cfg.Timing.R3End() + e.cfg.Timing.Thop
				sh.heap.push(ev{at: at, owner: i + 1, seq: e.nextSeq(i), kind: ekCheck})
			}
		}
	}
}

func (e *Engine) nextSeq(i uint32) uint32 {
	q := e.seq[i]
	e.seq[i]++
	return q
}

// sendHB is fds.R-1: broadcast the heartbeat to the cell, then schedule the
// host's own round-2 digest.
func (e *Engine) sendHB(s int32, sh *shardState, v ev) {
	i := v.owner - 1
	if e.crashed[i] {
		return
	}
	sh.c.events++
	setBit(e.heard, i*uint32(e.evWords), e.memberPos[i]) // "I know I'm alive"
	e.spendTx(sh, i, hbBytes)
	sh.trace = append(sh.trace, rec{v.at, v.owner, v.seq, ekHB, 0, hbBytes})
	e.bcastCell(sh, i, v.at, dHB, hbBytes, 0, 0)

	t := &e.cfg.Timing
	j := sim.Time(e.rng[i].Int63n(t.JitterSpan()))
	at := t.EpochStart(t.EpochOf(v.at)) + t.R1End() + j
	sh.heap.push(ev{at: at, owner: v.owner, seq: e.nextSeq(i), kind: ekDigest})
}

// sendDigest is fds.R-2: broadcast the heard-set digest; the epoch's CH
// additionally schedules its round-3 detection pass.
func (e *Engine) sendDigest(s int32, sh *shardState, v ev) {
	i := v.owner - 1
	if e.crashed[i] {
		return
	}
	sh.c.events++
	nHeard := popRow(e.heard, i, e.evWords)
	size := uint32(digestFixed + perIDBytes*nHeard)
	e.spendTx(sh, i, size)
	sh.trace = append(sh.trace, rec{v.at, v.owner, v.seq, ekDigest, uint32(nHeard), size})
	e.bcastCell(sh, i, v.at, dDigest, size, 0, 0)

	if e.cellCH[e.cellOf[i]] == int32(i) {
		t := &e.cfg.Timing
		j := sim.Time(e.rng[i].Int63n(t.JitterSpan()))
		at := t.EpochStart(t.EpochOf(v.at)) + t.R2End() + j
		sh.heap.push(ev{at: at, owner: v.owner, seq: e.nextSeq(i), kind: ekHealth})
	}
}

// round3 is the detection pass, run by the CH (ekHealth) or — when no
// health update arrived by R3End+Thop — by the deputy (ekCheck, the paper's
// DCH takeover). A roster member is newly failed when neither the
// detector's own heard set nor any digest lists it; a previously failed
// member heard again is rescued (rescind propagation). The detector then
// broadcasts the health update in-cell and feeds newly detected true
// victims into its own epidemic relay path.
func (e *Engine) round3(s int32, sh *shardState, v ev) {
	i := v.owner - 1
	if e.crashed[i] {
		return
	}
	if v.kind == ekCheck && e.healthSeen[i] {
		return // the CH's update arrived; no takeover
	}
	sh.c.events++

	cell := e.cellOf[i]
	ros := e.roster(cell)
	hb := i * uint32(e.evWords)
	newStart := uint32(len(sh.arena))
	nNew, nResc := 0, 0
	for p, m := range ros {
		if m == i {
			continue
		}
		seen := getBit(e.heard, hb, uint32(p)) || getBit(e.alive, hb, uint32(p))
		believedFailed := getBit(e.cellFailed, hb, uint32(p))
		switch {
		case !seen && !believedFailed:
			setBit(e.cellFailed, hb, uint32(p))
			nNew++
			if slot, ok := e.victimSlot[m]; ok {
				if e.victims[slot].detect < 0 {
					e.victims[slot].detect = v.at
				}
				sh.arena = append(sh.arena, uint32(slot))
			} else {
				sh.c.falsePos++
			}
		case seen && believedFailed:
			clearBit(e.cellFailed, hb, uint32(p))
			nResc++
			sh.c.rescues++
		}
	}
	nSlots := uint32(len(sh.arena)) - newStart
	nAll := popRow(e.cellFailed, i, e.evWords)
	size := uint32(healthFixed + perIDBytes*nNew + perIDBytes*nAll + perRescindSize*nResc)
	e.spendTx(sh, i, size)
	sh.trace = append(sh.trace, rec{v.at, v.owner, v.seq, v.kind, uint32(nNew), size})
	e.bcastCell(sh, i, v.at, dHealth, size, newStart, nSlots)
	e.learn(sh, i, sh.arena[newStart:newStart+nSlots], v.at)
}

// sendRelay is one epidemic hop: broadcast every victim learned since the
// host's last relay to all hosts within radio range, crossing cell and
// shard boundaries.
func (e *Engine) sendRelay(s int32, sh *shardState, v ev) {
	i := v.owner - 1
	e.relayPend[i] = false
	if e.crashed[i] {
		return
	}
	off := uint32(len(sh.arena))
	pr := i * uint32(e.vWords)
	for w := uint32(0); w < uint32(e.vWords); w++ {
		word := e.pending[pr+w]
		e.pending[pr+w] = 0
		for word != 0 {
			sh.arena = append(sh.arena, w<<6+uint32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	n := uint32(len(sh.arena)) - off
	if n == 0 {
		return
	}
	sh.c.events++
	nAll := popRow(e.known, i, e.vWords)
	size := uint32(reportFixed + perIDBytes*int(n) + perIDBytes*nAll)
	e.spendTx(sh, i, size)
	sh.trace = append(sh.trace, rec{v.at, v.owner, v.seq, ekRelay, n, size})
	e.bcastRadio(s, sh, i, v.at, off, n, size)
}

// deliver handles all per-receiver arrivals. Aliveness is checked here, in
// the receiver's shard — never at send time — so a sender's random-stream
// consumption cannot depend on remote state.
func (e *Engine) deliver(s int32, sh *shardState, v ev) {
	sh.c.events++
	sh.trace = append(sh.trace, rec{v.at, v.owner, v.seq, v.kind, v.aux, v.bytes})
	r := v.aux
	if e.crashed[r] {
		sh.c.dropDead++
		return
	}
	sh.c.deliveries++
	sh.c.rxBytes += uint64(v.bytes)
	e.energy[r] -= e.cfg.Radio.RxByteCost * float64(v.bytes)
	si := v.owner - 1
	switch v.kind {
	case dHB:
		setBit(e.heard, r*uint32(e.evWords), e.memberPos[si])
	case dDigest:
		// The sender's heard set is frozen for the whole digest round
		// (every round-1 delivery lands before the earliest digest send),
		// so unioning the live row is exact — and sender and receiver
		// share a cell, hence a shard, so the read is race-free.
		rr, sr := r*uint32(e.evWords), si*uint32(e.evWords)
		for w := uint32(0); w < uint32(e.evWords); w++ {
			e.alive[rr+w] |= e.heard[sr+w]
		}
	case dHealth:
		e.healthSeen[r] = true
		// Adopt the detector's cumulative failed set (the paper's
		// AllFailed catch-up), then learn the newly detected victims.
		rr, sr := r*uint32(e.evWords), si*uint32(e.evWords)
		copy(e.cellFailed[rr:rr+uint32(e.evWords)], e.cellFailed[sr:sr+uint32(e.evWords)])
		e.learn(sh, r, sh.arena[v.off:v.off+v.n], v.at)
	case dReport:
		e.learn(sh, r, sh.arena[v.off:v.off+v.n], v.at)
	}
}

// learn records victim slots at host i; on first news since the host's
// last relay, it schedules one jittered epidemic rebroadcast. Per-host
// dedup (the known bitset) is what keeps the flood linear instead of
// exponential.
func (e *Engine) learn(sh *shardState, i uint32, slots []uint32, t sim.Time) {
	kr := i * uint32(e.vWords)
	news := false
	for _, slot := range slots {
		if !getBit(e.known, kr, slot) {
			setBit(e.known, kr, slot)
			setBit(e.pending, kr, slot)
			news = true
		}
	}
	if !news || e.relayPend[i] {
		return
	}
	e.relayPend[i] = true
	j := sim.Time(e.rng[i].Int63n(e.cfg.Timing.JitterSpan()))
	shOwn := &e.shards[e.shardOf(i)]
	shOwn.heap.push(ev{at: t + j, owner: i + 1, seq: e.nextSeq(i), kind: ekRelay})
}

// bcastCell schedules per-receiver deliveries of an in-cell broadcast. The
// loss and delay draws come from the sender's stream in fixed roster order
// for every member — including crashed ones (dropped on arrival) — so the
// stream advances identically at every partition.
func (e *Engine) bcastCell(sh *shardState, i uint32, t sim.Time, kind uint8, size, off, n uint32) {
	span := int64(e.cfg.Radio.MaxDelay - e.cfg.Radio.MinDelay)
	for _, m := range e.roster(e.cellOf[i]) {
		if m == i {
			continue
		}
		if e.rng[i].Float64() < e.cfg.Radio.LossProb {
			sh.c.dropLoss++
			continue
		}
		delay := e.cfg.Radio.MinDelay
		if span > 0 {
			delay += sim.Time(e.rng[i].Int63n(span + 1))
		}
		sh.heap.push(ev{at: t + delay, owner: i + 1, seq: e.nextSeq(i), kind: kind, aux: m, off: off, n: n, bytes: size})
	}
}

// bcastRadio schedules per-receiver deliveries of a radio-range broadcast:
// all hosts within Range, found via the cell grid (reach cells out in each
// direction). Receivers in other strips go to the per-destination outbox
// with the payload copied once per destination shard.
func (e *Engine) bcastRadio(s int32, sh *shardState, i uint32, t sim.Time, off, n, size uint32) {
	if sh.dstOff == nil {
		sh.dstOff = make([]int32, e.nShards)
	}
	for d := range sh.dstOff {
		sh.dstOff[d] = -1
	}
	payload := sh.arena[off : off+n]
	cell := int(e.cellOf[i])
	col, row := cell/e.rows, cell%e.rows
	r2 := e.cfg.Radio.Range * e.cfg.Radio.Range
	span := int64(e.cfg.Radio.MaxDelay - e.cfg.Radio.MinDelay)
	for dc := -e.reach; dc <= e.reach; dc++ {
		c2 := col + dc
		if c2 < 0 || c2 >= e.cols {
			continue
		}
		dstShard := e.shardOfCol[c2]
		for dr := -e.reach; dr <= e.reach; dr++ {
			rw := row + dr
			if rw < 0 || rw >= e.rows {
				continue
			}
			for _, m := range e.roster(int32(c2*e.rows + rw)) {
				if m == i {
					continue
				}
				dx, dy := e.posX[m]-e.posX[i], e.posY[m]-e.posY[i]
				if dx*dx+dy*dy > r2 {
					continue
				}
				if e.rng[i].Float64() < e.cfg.Radio.LossProb {
					sh.c.dropLoss++
					continue
				}
				delay := e.cfg.Radio.MinDelay
				if span > 0 {
					delay += sim.Time(e.rng[i].Int63n(span + 1))
				}
				evt := ev{at: t + delay, owner: i + 1, seq: e.nextSeq(i), kind: dReport, aux: m, off: off, n: n, bytes: size}
				if dstShard == s {
					sh.heap.push(evt)
					continue
				}
				ob := &sh.out[dstShard]
				if sh.dstOff[dstShard] < 0 {
					sh.dstOff[dstShard] = int32(len(ob.payload))
					ob.payload = append(ob.payload, payload...)
				}
				evt.off = uint32(sh.dstOff[dstShard])
				ob.evs = append(ob.evs, evt)
			}
		}
	}
}

func (e *Engine) spendTx(sh *shardState, i uint32, size uint32) {
	e.energy[i] -= e.cfg.Radio.TxBaseCost + e.cfg.Radio.TxByteCost*float64(size)
	sh.c.txBytes += uint64(size)
	sh.c.sends++
}

// --- bit helpers over packed per-host rows -------------------------------

func setBit(a []uint64, base, bit uint32)   { a[base+bit>>6] |= 1 << (bit & 63) }
func clearBit(a []uint64, base, bit uint32) { a[base+bit>>6] &^= 1 << (bit & 63) }
func getBit(a []uint64, base, bit uint32) bool {
	return a[base+bit>>6]&(1<<(bit&63)) != 0
}

func popRow(a []uint64, i uint32, words int) int {
	row := a[i*uint32(words) : (i+1)*uint32(words)]
	n := 0
	for _, w := range row {
		n += bits.OnesCount64(w)
	}
	return n
}

// --- results -------------------------------------------------------------

// VictimStat summarizes one scheduled crash.
type VictimStat struct {
	ID         wire.NodeID
	CrashedAt  sim.Time
	DetectedAt sim.Time // first cell-level detection, -1 if never
	Aware      int      // hosts that learned of the failure (any channel)
}

// Result is a run summary. Every field except Workers is a pure function
// of the Config with Workers and Shards excluded — the determinism tests
// pin TraceHash and StateHash across both.
type Result struct {
	Shards, Workers int

	Events     uint64 // host-owned events processed
	Sends      uint64
	Deliveries uint64
	DropLoss   uint64
	DropDead   uint64
	TxBytes    uint64
	RxBytes    uint64

	FalsePositives uint64
	Rescues        uint64
	Victims        []VictimStat
	Detected       int // victims with a cell-level detection

	EnergySpent float64

	TraceHash uint64 // send+delivery trace folded in global key order
	StateHash uint64 // final per-host state + victim metrics + counters

	BuildHeapBytes uint64 // live heap after Build (approximate; see fdsim)
}

func (e *Engine) summarize(workers int) Result {
	res := Result{
		Shards:         e.nShards,
		Workers:        workers,
		TraceHash:      e.traceHash,
		BuildHeapBytes: e.builtHeapBytes,
	}
	var c counters
	for s := range e.shards {
		c.add(&e.shards[s].c)
	}
	res.Events = c.events
	res.Sends = c.sends
	res.Deliveries = c.deliveries
	res.DropLoss = c.dropLoss
	res.DropDead = c.dropDead
	res.TxBytes = c.txBytes
	res.RxBytes = c.rxBytes
	res.FalsePositives = c.falsePos
	res.Rescues = c.rescues

	// Serial folds in host-index order: float accumulation order is part
	// of the bit-exactness contract.
	spent := 0.0
	for i := 0; i < e.cfg.N; i++ {
		spent += e.cfg.Radio.InitialEnergy - e.energy[i]
	}
	res.EnergySpent = spent

	for slot := range e.victims {
		v := &e.victims[slot]
		aware := 0
		for i := 0; i < e.cfg.N; i++ {
			if getBit(e.known, uint32(i)*uint32(e.vWords), uint32(slot)) {
				aware++
			}
		}
		res.Victims = append(res.Victims, VictimStat{
			ID:         wire.NodeID(v.idx + 1),
			CrashedAt:  v.at,
			DetectedAt: v.detect,
			Aware:      aware,
		})
		if v.detect >= 0 {
			res.Detected++
		}
	}

	res.StateHash = e.stateHash(&c)
	return res
}

// stateHash folds the final mutable world — per-host counters, energy,
// crash flags, victim knowledge — plus the victim metrics and tallies.
func (e *Engine) stateHash(c *counters) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < e.cfg.N; i++ {
		h = fold(h, uint64(e.seq[i]))
		h = fold(h, floatBits(e.energy[i]))
		if e.crashed[i] {
			h = fold(h, 1)
		}
		kr := uint32(i) * uint32(e.vWords)
		for w := uint32(0); w < uint32(e.vWords); w++ {
			h = fold(h, e.known[kr+w])
		}
	}
	for slot := range e.victims {
		h = fold(h, uint64(e.victims[slot].detect))
	}
	for _, v := range []uint64{c.events, c.sends, c.deliveries, c.dropLoss,
		c.dropDead, c.txBytes, c.rxBytes, c.falsePos, c.rescues} {
		h = fold(h, v)
	}
	return h
}

// --- hashing -------------------------------------------------------------

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fold(h, v uint64) uint64 {
	for b := 0; b < 64; b += 8 {
		h ^= (v >> b) & 0xFF
		h *= fnvPrime
	}
	return h
}

func floatBits(f float64) uint64 {
	return math.Float64bits(f)
}

// liveHeapBytes samples the live heap after a collection; used only for the
// approximate bytes-per-node figure, never for anything determinism-checked.
func liveHeapBytes() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}
