// Package shard is the large-scale simulation engine: a conservatively
// synchronized, spatially sharded discrete-event kernel that runs the
// paper's clustered failure detection service over fields of 10^5–10^6
// hosts, where the single-heap sim.Kernel and per-host object graph of
// internal/node cannot fit or keep up.
//
// # Architecture
//
// The field is cut into K vertical strips of cluster-cell columns. Each
// shard owns the hosts of its strip: their event heap, their struct-of-array
// state, and every event that touches them. Cluster cells have side R/√2
// (all in-cell pairs are within radio range R), and because strips are whole
// columns of cells, a cluster never spans shards — all round traffic
// (heartbeats, digests, health updates) is shard-local. Only epidemic
// failure-report relays, which travel up to R, cross strip boundaries.
//
// Shards advance in lockstep conservative windows of width W = MinDelay,
// the lower bound on message delivery latency. (ROADMAP item 1 speaks of
// Thop as the bound; Thop = 20 ms is the paper's upper bound on one-hop
// delay — the sound lookahead for a conservative engine is the LOWER bound,
// radio MinDelay = 1 ms, and that is what the engine uses.) An event
// processed at time t inside window [t0, t0+W) can only schedule into
// another shard via a delivery, which lands at t+delay ≥ t+MinDelay ≥
// t0+W — strictly after the window. Shards therefore process a window in
// parallel with no communication, and cross-shard sends are batched into
// per-(src,dst) outboxes merged at the window barrier.
//
// # Determinism at every shard and worker count
//
// The engine's contract is the repository-wide golden-trace discipline:
// results are a pure function of Config, bit-identical for every Shards and
// Workers value. That holds by construction:
//
//   - Events are keyed (at, owner NodeID, seq), with seq drawn from the
//     owning host's private counter at creation time — never from a
//     kernel-local tie-break, which would vary with the partition. Heaps
//     pop in key order, so a shard's processing order for any one host's
//     events is partition-independent.
//   - Every random draw comes from the consuming host's private sim.Stream
//     (8 bytes of SplitMix64 state), advanced only by that host's own
//     events. Senders draw loss and delay for every static roster
//     neighbor regardless of the neighbor's aliveness — aliveness is
//     checked at arrival in the receiver's shard — so stream consumption
//     never depends on remote state.
//   - Control events (epoch ticks, crashes) have owner 0 and touch only
//     disjoint shard-local state, so their shard-local seq is harmless.
//   - The trace hash folds each window's records after sorting by the
//     global key, and outboxes merge in (src shard, key) order.
//   - Energy totals and the state hash are folded serially in host-index
//     order after the run (float addition is not associative).
//
// # Protocol model
//
// The engine runs a compact, static-topology rendering of the paper's
// service (the full-fidelity per-host runtime remains internal/node):
// clusters are grid cells, the clusterhead is the lowest live NID per cell,
// and each epoch executes heartbeat (fds.R-1), digest (fds.R-2), and
// CH detection + health update (fds.R-3), with deputy takeover at
// R3End+Thop and network-wide epidemic relay of failure reports. Message
// byte counts follow internal/wire's WireSize formulas exactly (pinned by
// test). Mobility and duty-cycling are out of scope here.
package shard

import (
	"fmt"
	"math"
	"sort"

	"clusterfds/internal/cluster"
	"clusterfds/internal/radio"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// Crash schedules a fail-stop of one host.
type Crash struct {
	ID wire.NodeID
	At sim.Time
}

// Config describes a sharded run. Results are a pure function of every
// field except Workers (which changes wall-clock only).
type Config struct {
	// Seed drives all randomness: placement and per-host streams.
	Seed int64
	// N is the host population, numbered 1..N.
	N int
	// Side is the deployment square's edge length in meters.
	Side float64
	// Shards is the requested strip count K; it is clamped to the number
	// of cell columns. Values < 1 mean 1.
	Shards int
	// Workers is the pool draining shards within a window; < 1 means 1.
	// Any value produces bit-identical results.
	Workers int
	// Epochs is how many heartbeat intervals to simulate; the run stops at
	// EpochStart(Epochs), exactly like the legacy scenarios.
	Epochs int
	// Timing is the protocol schedule (Thop, φ).
	Timing cluster.Timing
	// Radio is the propagation and energy model. Range must be > 0 and
	// MinDelay > 0 (it is the conservative window width).
	Radio radio.Params
	// Crashes lists the fail-stop schedule. Crashed hosts stop sending and
	// receiving; detection metrics are tracked per victim.
	Crashes []Crash
	// Progress, when non-nil, is called from the serial barrier every
	// ProgressEvery windows (default 5000) with the simulated instant and
	// the cumulative event count, so long runs can report liveness. It has
	// no effect on the simulation or its hashes.
	Progress func(at sim.Time, events uint64)
	// ProgressEvery is the callback period in windows; < 1 means 5000.
	ProgressEvery int
}

// victim is the metrics record for one scheduled crash.
type victim struct {
	idx     uint32 // host index
	at      sim.Time
	detect  sim.Time // first cell-level detection; -1 if never
	crashed bool     // At was within the simulated horizon
}

// shardState is the per-shard mutable world: heap, outboxes, counters, and
// scratch. Host state lives in the Engine's SoA arrays; a shard only ever
// touches rows it owns, which is what makes window parallelism race-free.
type shardState struct {
	heap    evHeap
	ctrlSeq uint32 // seq counter for owner-0 control events

	// arena holds victim-slot payloads referenced by in-flight report and
	// health events via (off, n). It is reset whenever the heap drains.
	arena []uint32

	// out[d] accumulates this window's cross-shard sends to shard d; its
	// payloads are copied into d's arena at the barrier.
	out []outbox

	// trace is this window's processed-event records, in pop order.
	trace []rec

	// dstOff is radio-broadcast scratch: per destination shard, the offset
	// of the current send's payload in that outbox (-1 = not yet copied).
	dstOff []int32

	c counters
}

// outbox is one (src,dst) batch: fixed-size events plus a payload arena the
// events reference, so a batch is two appends and no per-send allocation.
type outbox struct {
	evs     []ev
	payload []uint32
}

// counters are per-shard tallies, summed (exactly — they are integers) into
// the Result after the run.
type counters struct {
	events     uint64 // host-owned events processed
	sends      uint64
	deliveries uint64
	dropLoss   uint64 // loss draws that failed at send time
	dropDead   uint64 // deliveries to already-crashed hosts
	txBytes    uint64
	rxBytes    uint64
	falsePos   uint64 // detections of hosts that never crashed
	rescues    uint64 // false detections withdrawn on later evidence
}

func (c *counters) add(o *counters) {
	c.events += o.events
	c.sends += o.sends
	c.deliveries += o.deliveries
	c.dropLoss += o.dropLoss
	c.dropDead += o.dropDead
	c.txBytes += o.txBytes
	c.rxBytes += o.rxBytes
	c.falsePos += o.falsePos
	c.rescues += o.rescues
}

// rec is one trace record: the event key plus what happened, folded into
// the run's trace hash in global key order at every window barrier.
type rec struct {
	at    sim.Time
	owner uint32
	seq   uint32
	kind  uint8
	aux   uint32
	bytes uint32
}

// Engine is a built, runnable sharded world. Build constructs it; Run
// executes it once. An Engine is single-use.
type Engine struct {
	cfg Config

	// Geometry: cells of side R/√2 in a cols×rows grid; shard s owns cell
	// columns [colStart[s], colStart[s+1]).
	cellSide   float64
	cols, rows int
	nShards    int
	colStart   []int32
	shardOfCol []int32
	reach      int // cell radius covering radio range: ceil(R/cellSide)

	// Struct-of-arrays host state, indexed by idx = NodeID-1. Flat arrays
	// instead of per-host objects: a host costs ~90 bytes plus its share
	// of the evidence arenas, against several KB for a node.Host graph.
	posX, posY []float64
	cellOf     []int32
	memberPos  []uint32 // index within the cell roster (evidence bit position)
	rng        []sim.Stream
	seq        []uint32
	energy     []float64
	crashed    []bool
	healthSeen []bool // received this epoch's health update
	relayPend  []bool // an ekRelay is scheduled and pending

	// Cell CSR: byCell lists host idxs sorted by (cell, idx);
	// cellStart[c]..cellStart[c+1] spans cell c's roster.
	cellStart []int32
	byCell    []uint32

	// Per-cell, per-epoch leadership (lowest / second-lowest live NID),
	// recomputed by the owning shard at each epoch tick.
	cellCH     []int32 // host idx, -1 when the cell is empty
	cellDeputy []int32

	// Evidence arenas: evWords 64-bit words per host, bit b = roster
	// position b of the host's own cell.
	evWords    int
	heard      []uint64 // heartbeats heard this epoch (own bit set at send)
	alive      []uint64 // union of roster bits listed alive in digests
	cellFailed []uint64 // persistent believed-failed set for the cell

	// Victim-slot arenas: vWords words per host over the static victim
	// table; known = victims this host has learned of, pending = learned
	// but not yet relayed.
	vWords  int
	known   []uint64
	pending []uint64

	victims    []victim
	victimSlot map[uint32]int32 // host idx -> slot

	shards []shardState

	traceHash uint64
	horizon   sim.Time
	w         sim.Time // conservative window width = Radio.MinDelay

	builtHeapBytes uint64 // live heap after Build, for bytes-per-node
}

// Build validates cfg, lays out the field, and schedules the initial
// control events. It is strictly serial; Run does the parallel part.
func Build(cfg Config) *Engine {
	if cfg.N <= 0 {
		panic("shard: N must be positive")
	}
	if cfg.Side <= 0 {
		panic("shard: Side must be positive")
	}
	if cfg.Epochs <= 0 {
		panic("shard: Epochs must be positive")
	}
	if !cfg.Timing.Valid() {
		panic("shard: invalid Timing")
	}
	if cfg.Radio.Range <= 0 || cfg.Radio.MinDelay <= 0 || cfg.Radio.MaxDelay < cfg.Radio.MinDelay {
		panic("shard: invalid Radio params (need Range > 0, 0 < MinDelay <= MaxDelay)")
	}
	if cfg.Radio.LossProb < 0 || cfg.Radio.LossProb > 1 {
		panic(fmt.Sprintf("shard: loss probability %v outside [0,1]", cfg.Radio.LossProb))
	}

	e := &Engine{cfg: cfg}
	e.w = cfg.Radio.MinDelay
	e.horizon = cfg.Timing.EpochStart(wire.Epoch(cfg.Epochs))

	// Cells of side R/√2: any two hosts in one cell are within R, so a
	// cell is a valid cluster by construction (paper §2.1's connectivity
	// requirement).
	e.cellSide = cfg.Radio.Range / math.Sqrt2
	e.cols = int(math.Ceil(cfg.Side / e.cellSide))
	if e.cols < 1 {
		e.cols = 1
	}
	e.rows = e.cols
	e.reach = int(math.Ceil(cfg.Radio.Range / e.cellSide))

	k := cfg.Shards
	if k < 1 {
		k = 1
	}
	if k > e.cols {
		k = e.cols // a strip must hold at least one column
	}
	e.nShards = k
	e.colStart = make([]int32, k+1)
	for s := 0; s <= k; s++ {
		e.colStart[s] = int32(s * e.cols / k)
	}
	e.shardOfCol = make([]int32, e.cols)
	for s := 0; s < k; s++ {
		for c := e.colStart[s]; c < e.colStart[s+1]; c++ {
			e.shardOfCol[c] = int32(s)
		}
	}

	n := cfg.N
	e.posX = make([]float64, n)
	e.posY = make([]float64, n)
	e.cellOf = make([]int32, n)
	e.memberPos = make([]uint32, n)
	e.rng = make([]sim.Stream, n)
	e.seq = make([]uint32, n)
	e.energy = make([]float64, n)
	e.crashed = make([]bool, n)
	e.healthSeen = make([]bool, n)
	e.relayPend = make([]bool, n)

	// Placement comes from a dedicated stream, one (x, y) pair per host in
	// id order — a pure function of Seed, independent of K.
	place := sim.NewStream(sim.SplitMix64(uint64(cfg.Seed)) ^ 0x9E3779B97F4A7C15)
	for i := 0; i < n; i++ {
		e.posX[i] = place.Float64() * cfg.Side
		e.posY[i] = place.Float64() * cfg.Side
		e.cellOf[i] = e.cellAt(e.posX[i], e.posY[i])
		e.rng[i] = sim.NewStream(sim.SplitMix64(uint64(cfg.Seed)) + uint64(i) + 1)
		e.energy[i] = cfg.Radio.InitialEnergy
	}

	// Cell CSR by counting sort; rosters come out in ascending host idx,
	// which doubles as ascending NID — the CH election order.
	nCells := e.cols * e.rows
	e.cellStart = make([]int32, nCells+1)
	for i := 0; i < n; i++ {
		e.cellStart[e.cellOf[i]+1]++
	}
	maxRoster := int32(0)
	for c := 0; c < nCells; c++ {
		if e.cellStart[c+1] > maxRoster {
			maxRoster = e.cellStart[c+1]
		}
		e.cellStart[c+1] += e.cellStart[c]
	}
	e.byCell = make([]uint32, n)
	fill := make([]int32, nCells)
	for i := 0; i < n; i++ {
		c := e.cellOf[i]
		pos := e.cellStart[c] + fill[c]
		e.byCell[pos] = uint32(i)
		e.memberPos[i] = uint32(fill[c])
		fill[c]++
	}
	e.cellCH = make([]int32, nCells)
	e.cellDeputy = make([]int32, nCells)

	e.evWords = (int(maxRoster) + 63) / 64
	if e.evWords == 0 {
		e.evWords = 1
	}
	e.heard = make([]uint64, n*e.evWords)
	e.alive = make([]uint64, n*e.evWords)
	e.cellFailed = make([]uint64, n*e.evWords)

	// Victim table: sorted by (At, ID) so slot numbering is canonical.
	crashes := append([]Crash(nil), cfg.Crashes...)
	sort.Slice(crashes, func(a, b int) bool {
		if crashes[a].At != crashes[b].At {
			return crashes[a].At < crashes[b].At
		}
		return crashes[a].ID < crashes[b].ID
	})
	e.victimSlot = make(map[uint32]int32, len(crashes))
	for _, cr := range crashes {
		if cr.ID < 1 || int(cr.ID) > n {
			panic(fmt.Sprintf("shard: crash of unknown host %d", cr.ID))
		}
		idx := uint32(cr.ID - 1)
		if _, dup := e.victimSlot[idx]; dup {
			panic(fmt.Sprintf("shard: host %d crashed twice", cr.ID))
		}
		e.victimSlot[idx] = int32(len(e.victims))
		e.victims = append(e.victims, victim{idx: idx, at: cr.At, detect: -1})
	}
	e.vWords = (len(e.victims) + 63) / 64
	if e.vWords == 0 {
		e.vWords = 1
	}
	e.known = make([]uint64, n*e.vWords)
	e.pending = make([]uint64, n*e.vWords)

	// Shards: heaps seeded with the epoch ticks and crash events.
	e.shards = make([]shardState, k)
	for s := range e.shards {
		e.shards[s].out = make([]outbox, k)
	}
	for ep := 0; ep < cfg.Epochs; ep++ {
		at := cfg.Timing.EpochStart(wire.Epoch(ep))
		for s := 0; s < k; s++ {
			sh := &e.shards[s]
			sh.heap.push(ev{at: at, owner: 0, seq: sh.ctrlSeq, kind: ekEpoch, aux: uint32(ep)})
			sh.ctrlSeq++
		}
	}
	for slot, v := range e.victims {
		if v.at >= e.horizon {
			continue
		}
		s := e.shardOf(v.idx)
		sh := &e.shards[s]
		sh.heap.push(ev{at: v.at, owner: 0, seq: sh.ctrlSeq, kind: ekCrash, aux: uint32(slot)})
		sh.ctrlSeq++
	}

	e.traceHash = fnvOffset
	e.builtHeapBytes = liveHeapBytes()
	return e
}

// cellAt maps a coordinate to its cell index, clamping the boundary so a
// host placed exactly at Side stays in the last cell.
func (e *Engine) cellAt(x, y float64) int32 {
	c := int(x / e.cellSide)
	if c >= e.cols {
		c = e.cols - 1
	}
	r := int(y / e.cellSide)
	if r >= e.rows {
		r = e.rows - 1
	}
	return int32(c*e.rows + r)
}

func (e *Engine) shardOf(idx uint32) int32 {
	return e.shardOfCol[int(e.cellOf[idx])/e.rows]
}

// roster returns cell c's member idxs in ascending NID order.
func (e *Engine) roster(c int32) []uint32 {
	return e.byCell[e.cellStart[c]:e.cellStart[c+1]]
}
