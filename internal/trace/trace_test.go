package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestMemorySink(t *testing.T) {
	m := NewMemory()
	m.Emit(Event{At: time.Second, Type: TypeSend, Node: 1})
	m.Emit(Event{At: 2 * time.Second, Type: TypeDrop, Node: 2})
	m.Emit(Event{At: 3 * time.Second, Type: TypeSend, Node: 3})

	if got := len(m.Events()); got != 3 {
		t.Fatalf("Events len = %d, want 3", got)
	}
	if got := m.Count(TypeSend); got != 2 {
		t.Errorf("Count(send) = %d, want 2", got)
	}
	sends := m.OfType(TypeSend)
	if len(sends) != 2 || sends[0].Node != 1 || sends[1].Node != 3 {
		t.Errorf("OfType(send) = %v", sends)
	}

	// Events returns a copy.
	evs := m.Events()
	evs[0].Node = 99
	if m.Events()[0].Node != 1 {
		t.Error("Events aliases internal state")
	}

	m.Reset()
	if len(m.Events()) != 0 {
		t.Error("Reset did not clear events")
	}
}

func TestMemoryFilter(t *testing.T) {
	m := NewMemory(TypeDetect, TypeFalseDetect)
	m.Emit(Event{Type: TypeSend})
	m.Emit(Event{Type: TypeDetect, Node: 5})
	m.Emit(Event{Type: TypeFalseDetect, Node: 6})
	m.Emit(Event{Type: TypeDeliver})
	if got := len(m.Events()); got != 2 {
		t.Fatalf("filtered sink kept %d events, want 2", got)
	}
}

func TestNop(t *testing.T) {
	var n Nop
	n.Emit(Event{Type: TypeSend}) // must not panic
}

func TestJSONL(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Emit(Event{At: time.Millisecond, Type: TypeDetect, Node: 7, Detail: "n9 failed"})
	j.Emit(Event{At: 2 * time.Millisecond, Type: TypeCrash, Node: 9})

	sc := bufio.NewScanner(&buf)
	var lines []Event
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line not valid JSON: %v", err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if lines[0].Type != TypeDetect || lines[0].Node != 7 || lines[0].Detail != "n9 failed" {
		t.Errorf("first line = %+v", lines[0])
	}
}

func TestTee(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	tee := Tee{a, b, Nop{}}
	tee.Emit(Event{Type: TypeSend})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Error("tee did not fan out")
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: time.Second, Type: TypeDetect, Node: 3, Detail: "x"}
	s := e.String()
	for _, want := range []string{"1s", "detect", "n3", "x"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
