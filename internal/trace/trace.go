// Package trace provides structured event tracing for simulation runs.
// Protocol code emits typed events; sinks either discard them (the default,
// zero-cost for benchmarks), retain them in memory (for tests and example
// programs), or stream them as JSON lines (for cmd/fdstrace).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EventType classifies trace events.
type EventType string

// Event types emitted across the stack. Kept as a flat namespace so sinks
// can filter with simple string matching.
const (
	TypeSend          EventType = "send"
	TypeDeliver       EventType = "deliver"
	TypeDrop          EventType = "drop"
	TypeCrash         EventType = "crash"
	TypeClusterFormed EventType = "cluster-formed"
	TypeCHElected     EventType = "ch-elected"
	TypeGWElected     EventType = "gw-elected"
	TypeDetect        EventType = "detect"
	TypeFalseDetect   EventType = "false-detect"
	TypeTakeover      EventType = "takeover"
	TypePeerForward   EventType = "peer-forward"
	TypeReportForward EventType = "report-forward"
	TypeReportDeliver EventType = "report-deliver"
	TypeRetransmit    EventType = "retransmit"
	TypeBGWAssist     EventType = "bgw-assist"
	TypeEpochStart    EventType = "epoch-start"
	TypeViewUpdate    EventType = "view-update"
)

// Event is one trace record. Node is the acting host (0 for medium-level
// events); Detail is free-form, kept small.
type Event struct {
	At     time.Duration `json:"at"`
	Type   EventType     `json:"type"`
	Node   uint32        `json:"node,omitempty"`
	Detail string        `json:"detail,omitempty"`
}

// String renders the event for human consumption.
func (e Event) String() string {
	return fmt.Sprintf("%12v %-16s n%-5d %s", e.At, e.Type, e.Node, e.Detail)
}

// Sink consumes trace events. Implementations must tolerate a high event
// rate; Emit is on the simulator's hot path.
type Sink interface {
	Emit(Event)
}

// Nop is a Sink that discards everything.
type Nop struct{}

// Emit implements Sink.
func (Nop) Emit(Event) {}

// Memory retains events in order. It is safe for concurrent use so tests
// can inspect it while a background run proceeds (the kernel itself is
// single-threaded, but test helpers may not be).
type Memory struct {
	mu     sync.Mutex
	events []Event
	filter map[EventType]bool // nil = keep everything
}

// NewMemory returns a memory sink keeping only the given types (all types
// when none are given).
func NewMemory(types ...EventType) *Memory {
	m := &Memory{}
	if len(types) > 0 {
		m.filter = make(map[EventType]bool, len(types))
		for _, t := range types {
			m.filter[t] = true
		}
	}
	return m
}

// Emit implements Sink.
func (m *Memory) Emit(e Event) {
	if m.filter != nil && !m.filter[e.Type] {
		return
	}
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

// Events returns a copy of the retained events.
func (m *Memory) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// OfType returns the retained events of the given type, in order.
func (m *Memory) OfType(t EventType) []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Event
	for _, e := range m.events {
		if e.Type == t {
			out = append(out, e)
		}
	}
	return out
}

// Count returns how many retained events have the given type.
func (m *Memory) Count(t EventType) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, e := range m.events {
		if e.Type == t {
			n++
		}
	}
	return n
}

// Reset discards all retained events.
func (m *Memory) Reset() {
	m.mu.Lock()
	m.events = nil
	m.mu.Unlock()
}

// JSONL streams each event as one JSON object per line, suitable for jq.
type JSONL struct {
	enc *json.Encoder
}

// NewJSONL returns a sink writing JSON lines to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Emit implements Sink. Encoding errors are deliberately swallowed: tracing
// must never abort a simulation, and a broken pipe will surface at the
// consumer end.
func (j *JSONL) Emit(e Event) {
	_ = j.enc.Encode(e)
}

// Tee fans events out to several sinks.
type Tee []Sink

// Emit implements Sink.
func (t Tee) Emit(e Event) {
	for _, s := range t {
		s.Emit(e)
	}
}
