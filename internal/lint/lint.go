// Package lint is the first-party static-analysis framework behind
// cmd/fdslint. It mirrors the shape of golang.org/x/tools/go/analysis —
// Analyzer / Pass / Diagnostic and an analysistest-style fixture runner
// (package lintest) — but is implemented entirely on the standard library
// (go/ast, go/parser, go/types), because this repository builds hermetically
// with no module downloads. The API is kept deliberately close to
// go/analysis so the analyzers could be ported onto the upstream framework
// mechanically if a vendored x/tools ever becomes available.
//
// The analyzers in the sub-packages machine-check the simulator's
// determinism and message-lifetime invariants:
//
//   - walltime: no wall-clock time or global math/rand inside the
//     deterministic (kernel-driven) packages.
//   - detmap: no observable effects ordered by map iteration in the
//     deterministic packages.
//   - deliverretain: a message handed to radio.Receiver.Deliver (and to the
//     node.Protocol.Handle fan-out under it) is valid only during the call;
//     nothing reachable from it may be stored anywhere that outlives the
//     call without a deep copy.
//   - scratchalias: wire.DecodeScratch-backed values die at the next decode
//     and sync.Pool values die at Put; neither may be used past that point.
//
// Every analyzer honors a single suppression form:
//
//	//lint:allow <analyzer> -- <justification>
//
// placed on the flagged line or the line directly above it. The
// justification is mandatory; a bare //lint:allow is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow comments. It must be a valid identifier.
	Name string
	// Doc is the one-paragraph description printed by `fdslint help`.
	Doc string
	// Run applies the analyzer to a single type-checked package,
	// reporting findings through pass.Report*.
	Run func(*Pass) error
}

// A Pass is one analyzer applied to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Unit is the input shared by every analyzer run on one package: the parsed
// files plus full type information.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult
// allocated. Callers type-check with it and then hand it to Run.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// Run applies one analyzer to one unit, applies //lint:allow suppression,
// and returns the surviving findings sorted by position.
func Run(a *Analyzer, u *Unit) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      u.Fset,
		Files:     u.Files,
		Pkg:       u.Pkg,
		TypesInfo: u.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	diags := suppress(a.Name, u, pass.diags)
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos       token.Pos
	analyzer  string
	justified bool // has a non-empty "-- reason" suffix
}

const allowPrefix = "//lint:allow"

// parseAllows scans a file's comments for //lint:allow directives.
func parseAllows(f *ast.File) []allowDirective {
	var out []allowDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, allowPrefix) {
				continue
			}
			rest := strings.TrimSpace(text[len(allowPrefix):])
			name, reason, found := strings.Cut(rest, "--")
			// The analyzer name is the first token, so trailing commentary
			// on an unjustified directive doesn't change what it names.
			if fields := strings.Fields(name); len(fields) > 0 {
				name = fields[0]
			} else {
				name = ""
			}
			d := allowDirective{pos: c.Pos(), analyzer: name}
			if found && strings.TrimSpace(reason) != "" {
				d.justified = true
			}
			out = append(out, d)
		}
	}
	return out
}

// suppress drops diagnostics covered by a justified //lint:allow <name>
// directive on the same line or the line directly above, and reports
// directives for this analyzer that lack a justification.
func suppress(name string, u *Unit, diags []Diagnostic) []Diagnostic {
	type fileLine struct {
		file string
		line int
	}
	allowed := make(map[fileLine]bool)
	var extra []Diagnostic
	for _, f := range u.Files {
		for _, d := range parseAllows(f) {
			if d.analyzer != name {
				continue
			}
			if !d.justified {
				extra = append(extra, Diagnostic{
					Pos: d.pos,
					Message: fmt.Sprintf(
						"//lint:allow %s needs a justification: write %q",
						name, allowPrefix+" "+name+" -- reason"),
				})
				continue
			}
			p := u.Fset.Position(d.pos)
			// A directive covers its own line and the next one, so it
			// works both as a trailing comment and on its own line above
			// the flagged statement.
			allowed[fileLine{p.Filename, p.Line}] = true
			allowed[fileLine{p.Filename, p.Line + 1}] = true
		}
	}
	var out []Diagnostic
	for _, d := range diags {
		p := u.Fset.Position(d.Pos)
		if allowed[fileLine{p.Filename, p.Line}] {
			continue
		}
		out = append(out, d)
	}
	return append(out, extra...)
}

// deterministicDirs are the kernel-driven packages in which simulated time
// and seeded RNGs are the only legal sources of time and randomness, and in
// which map iteration must not order observable events. The list mirrors
// DESIGN.md §"Determinism & lifetime invariants".
var deterministicDirs = []string{
	"sim", "fds", "radio", "cluster", "intercluster",
	"membership", "sleep", "mobility", "scenario", "montecarlo", "shard",
	"transport", "daemon", "conformance", "baseline",
	"par", "dense", "node", "wire", "aggregate",
}

// DeterministicPackage reports whether the import path names one of the
// deterministic simulator packages (clusterfds/internal/<dir> or a
// sub-package of one).
func DeterministicPackage(path string) bool {
	for _, d := range deterministicDirs {
		p := "clusterfds/internal/" + d
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// TestFile reports whether pos lies in a _test.go file. walltime and detmap
// guard the simulator's own event order, so they skip test files; the
// lifetime analyzers (deliverretain, scratchalias) do not.
func TestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// PkgFunc returns the *types.Func for a package-level function or method
// selector expression callee, or nil.
func PkgFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// RetainsMemory reports whether values of type t can keep foreign backing
// memory alive: pointers, slices, maps, channels, funcs, interfaces, and
// aggregates containing any of those. Strings are immutable and safe;
// pure-scalar structs copy fully by value.
func RetainsMemory(t types.Type) bool {
	seen := make(map[types.Type]bool)
	var walk func(types.Type) bool
	walk = func(t types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		switch u := t.Underlying().(type) {
		case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
			*types.Signature, *types.Interface:
			return true
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if walk(u.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return walk(u.Elem())
		}
		return false
	}
	return walk(t)
}

// WirePackage reports whether the package path is the wire message package
// (matched by suffix so testdata fixtures can provide a stub under the same
// tail path).
func WirePackage(path string) bool {
	return path == "clusterfds/internal/wire" || strings.HasSuffix(path, "/internal/wire")
}

// WireMessageType reports whether t is the wire.Message interface or a
// (pointer to a) named message struct from the wire package.
func WireMessageType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || !WirePackage(n.Obj().Pkg().Path()) {
		return false
	}
	switch n.Underlying().(type) {
	case *types.Interface:
		return n.Obj().Name() == "Message"
	case *types.Struct:
		// Every exported struct in wire is a message or message payload
		// (Rescission, GossipEntry, ...). Payload structs matter too:
		// retaining a []Rescission from a delivered digest is the same bug.
		return n.Obj().Exported()
	}
	return false
}
