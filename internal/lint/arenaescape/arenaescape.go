// Package arenaescape machine-checks the arena-ownership rules of
// DESIGN.md §12: values carved from bump arenas and block free lists are
// only valid until the arena's next generation reset (the epoch flip that
// recycles `prev` into `cur`, or the free-list append that hands the block
// to the next taker). Retaining such a value anywhere that outlives the
// generation is a use-after-recycle bug that only bites when the arena
// wraps, far from the store.
//
// What counts as arena memory:
//
//   - the result of any call whose callee name starts with "carve"
//     (carveIDs, carveRes, carveSenders — the repository's bump-allocation
//     verbs);
//   - any read through a field or variable named `arena` or `*Arena`
//     (sh.arena, p.idArena), the backing stores themselves.
//
// What the analyzer allows:
//
//   - stores rooted at the arena's owner — the object at the base of the
//     source's selector chain (`p` for p.idArena / p.carveIDs(...)) and
//     anything derived from it (`st := p.newState()`). Owners retain their
//     own storage by construction: the two-generation flip is exactly the
//     owner promising carved values one full generation of validity.
//   - returns of carved values: `View()` hands carved slices to callers
//     under the documented two-generation contract; the caller's side of
//     that contract is package-external and policed by the §12 epoch
//     tests, not by this analyzer.
//   - the encode-copies-bytes-out pattern (§12 rule 5): passing carved
//     memory to a synchronous call such as Send is fine — the transport
//     encodes before returning — unless the callee's interprocedural
//     summary says it retains the argument.
//
// The interprocedural layer closes the helper-call hole: a store hidden
// behind `keep(v)` or `sink.retain(v)` is judged at the call site against
// the callee's per-input retention summary, so a PR-4-shaped bug moved one
// function away still fires.
//
// A second, flow-sensitive check guards the block free lists (stateFree,
// dutyFree, updJobFree, ...): after `p.fooFree = append(p.fooFree, v)` the
// block belongs to the pool, so any later use of v in the same function is
// a use-after-free race with the next taker.
//
// Suppressions use `//lint:allow arenaescape -- reason`.
package arenaescape

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"clusterfds/internal/lint"
)

// Analyzer is the arena/free-list lifetime check.
var Analyzer = newAnalyzer(true)

// newAnalyzer builds the analyzer; interproc toggles the summary layer so
// tests can demonstrate what the old intra-procedural semantics miss.
func newAnalyzer(interproc bool) *lint.Analyzer {
	return &lint.Analyzer{
		Name: "arenaescape",
		Doc: "flag retention of bump-arena / free-list memory past the " +
			"generation boundary, including leaks hidden behind package-local calls",
		Run: func(pass *lint.Pass) error { return run(pass, interproc) },
	}
}

func run(pass *lint.Pass, interproc bool) error {
	if !lint.DeterministicPackage(pass.Pkg.Path()) {
		return nil
	}
	var sums *lint.Summaries
	if interproc {
		sums = lint.Summarize(pass)
	}
	for _, f := range pass.Files {
		if lint.TestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, sums, fd)
			checkFreeList(pass, fd)
		}
	}
	return nil
}

// arenaName reports whether name denotes an arena backing store.
func arenaName(name string) bool {
	return name == "arena" || strings.HasSuffix(name, "Arena")
}

// carveCall reports whether call invokes a carve* bump-allocation helper.
func carveCall(info *types.Info, call *ast.CallExpr) bool {
	fn := lint.PkgFunc(info, call)
	return fn != nil && strings.HasPrefix(strings.ToLower(fn.Name()), "carve")
}

// sourceExpr reports whether x reads arena memory directly (by name).
func sourceExpr(x ast.Expr) bool {
	switch e := ast.Unparen(x).(type) {
	case *ast.Ident:
		return arenaName(e.Name)
	case *ast.SelectorExpr:
		return arenaName(e.Sel.Name)
	}
	return false
}

// owners collects the objects that own arena memory used in fd: the chain
// root of every carve call and arena-named read (p for p.idArena and
// p.carveIDs(...)), closed over derivation (`st := p.newState()` makes st
// part of p's graph, so stores through st stay inside the owner).
func owners(pass *lint.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	info := pass.TypesInfo
	own := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if carveCall(info, n) {
				if root := lint.ChainRoot(info, n); root != nil {
					own[root] = true
				}
			}
		case *ast.Ident:
			if arenaName(n.Name) {
				if root := lint.ChainRoot(info, n); root != nil {
					own[root] = true
				}
			}
		case *ast.SelectorExpr:
			if arenaName(n.Sel.Name) {
				if root := lint.ChainRoot(info, n.X); root != nil {
					own[root] = true
				}
			}
		}
		return true
	})
	// Close over derivation: x := <chain rooted at an owner> makes x an
	// owner too. Two passes so chained derivations converge regardless of
	// statement order.
	record := func(l, r ast.Expr) {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		root := lint.ChainRoot(info, r)
		if root == nil || !own[root] {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			own[obj] = true
		}
	}
	for i := 0; i < 2; i++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == len(as.Rhs) {
				for i := range as.Lhs {
					record(as.Lhs[i], as.Rhs[i])
				}
			}
			return true
		})
	}
	return own
}

// checkFunc runs the retention engine over one function with arena sources
// seeded and owner-rooted stores admitted.
func checkFunc(pass *lint.Pass, sums *lint.Summaries, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	own := owners(pass, fd)
	reported := make(map[token.Pos]bool)
	reportf := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	eng := &lint.TaintEngine{
		Pass:     pass,
		What:     "arena-carved value",
		Lifetime: "until the arena's next generation reset",
		TaintedCall: func(call *ast.CallExpr) bool {
			return carveCall(info, call)
		},
		TaintedSource: sourceExpr,
		OnEscape: func(kind lint.EscapeKind, pos token.Pos, target ast.Expr, root types.Object) bool {
			switch kind {
			case lint.EscapeStore, lint.EscapePkgVar:
				// The owner retains its own storage by construction.
				return root == nil || !own[root]
			}
			// Channel sends, goroutines, and escaping closures detach the
			// value from the generation discipline entirely.
			return true
		},
		Report: reportf,
	}
	if sums != nil {
		eng.ReturnsTaintCall = sums.ReturnsTaintFor(info)
		eng.OnCallTaint = func(call *ast.CallExpr, callee *types.Func, input int, arg ast.Expr) {
			cs := sums.Input(callee, input)
			if cs == nil {
				return // cross-package or summary-less: synchronous, retains nothing
			}
			if cs.Global {
				reportf(arg.Pos(), "arena-carved value passed to %s, which retains it beyond the call; "+
					"it is only valid until the arena's next generation reset — copy it first", callee.Name())
			}
			for j := range cs.Into {
				e := lint.InputExpr(call, callee, j)
				if e == nil {
					reportf(arg.Pos(), "arena-carved value passed to %s, which retains it; "+
						"it is only valid until the arena's next generation reset — copy it first", callee.Name())
					continue
				}
				root := lint.ChainRoot(info, e)
				if root != nil && own[root] {
					continue // stored back into the owner's graph
				}
				if lint.FrameLocal(root) {
					continue // stored into a by-value local of this frame
				}
				reportf(e.Pos(), "arena-carved value stored into %s's object graph by %s; "+
					"it is only valid until the arena's next generation reset — copy it first",
					lint.ExprString(e), callee.Name())
			}
		}
	}
	// Returns of carved values are deliberately not flagged: View()-style
	// APIs hand carved slices out under the two-generation contract.
	eng.CheckFunc(fd, nil)
}

// checkFreeList flags uses of a block after it was appended to a free list:
// in `x.fooFree = append(x.fooFree, v)` the ident v belongs to the pool
// from the append on, so later uses in the same function race with the
// next taker. A rebinding assignment to v resets the window (the
// take-from-pool pattern reuses the variable).
func checkFreeList(pass *lint.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	type freeSite struct {
		obj  types.Object
		list string
		end  token.Pos
	}
	var frees []freeSite
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhsName := ""
		switch l := ast.Unparen(as.Lhs[0]).(type) {
		case *ast.Ident:
			lhsName = l.Name
		case *ast.SelectorExpr:
			lhsName = l.Sel.Name
		}
		if !strings.HasSuffix(lhsName, "Free") {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
			return true
		} else if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		v, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Uses[v]; obj != nil {
			frees = append(frees, freeSite{obj, lhsName, as.End()})
		}
		return true
	})
	for _, fs := range frees {
		// A rebinding assignment after the free makes later uses fine.
		rebound := token.Pos(-1)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Pos() <= fs.end {
				return true
			}
			for _, l := range as.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok {
					if o := info.Uses[id]; o == fs.obj {
						if rebound == token.Pos(-1) || as.Pos() < rebound {
							rebound = as.Pos()
						}
					}
				}
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || id.Pos() <= fs.end {
				return true
			}
			if rebound != token.Pos(-1) && id.Pos() >= rebound {
				return true
			}
			if info.Uses[id] == fs.obj {
				pass.Reportf(id.Pos(), "use of %s after it was returned to %s; "+
					"the block belongs to the pool once appended — release it last", id.Name, fs.list)
			}
			return true
		})
	}
}
