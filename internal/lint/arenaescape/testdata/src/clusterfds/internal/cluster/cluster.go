// Package cluster is the arenaescape fixture: carved values must stay
// inside their owner's object graph, and free-listed blocks must not be
// touched after release.
package cluster

type NodeID uint32

// Protocol owns a bump arena and a block free list, mirroring the real
// cluster/intercluster allocators.
type Protocol struct {
	idArena  []NodeID
	view     View
	stash    []NodeID
	jobFree  []*job
	reports  map[NodeID]*state
	oldViews []View
}

type View struct {
	Members []NodeID
}

type state struct {
	ids []NodeID
}

type job struct {
	step int
}

// Sink is a non-owner: it has no stake in the arena's generations.
type Sink struct {
	slots []NodeID
}

var lastCarved []NodeID

// carveIDs is the bump-allocation verb the analyzer keys on.
func (p *Protocol) carveIDs(src []NodeID) []NodeID {
	n := len(p.idArena)
	p.idArena = append(p.idArena, src...)
	return p.idArena[n:len(p.idArena):len(p.idArena)]
}

// --- firing -----------------------------------------------------------------

// badDirect stores a carved slice into a non-owner's field.
func (p *Protocol) badDirect(sink *Sink, src []NodeID) {
	v := p.carveIDs(src)
	sink.slots = v // want `arena-carved value stored in field sink\.slots`
}

// badArenaRead retains the backing store itself.
func (p *Protocol) badArenaRead(sink *Sink) {
	sink.slots = p.idArena // want `arena-carved value stored in field sink\.slots`
}

// badSend detaches a carved slice from the generation discipline entirely.
func (p *Protocol) badSend(ch chan []NodeID, src []NodeID) {
	ch <- p.carveIDs(src) // want `arena-carved value .* sent on a channel`
}

// badClosure hands a carved slice to a closure that outlives the call.
func (p *Protocol) badClosure(src []NodeID) func() int {
	v := p.carveIDs(src)
	return func() int { return len(v) } // want `arena-carved value captured by a closure`
}

// badHelper is the cross-function retention bug: the store is hidden one
// call away, invisible to a purely intra-procedural engine, and caught at
// the call site by the callee's summary.
func (p *Protocol) badHelper(sink *Sink, src []NodeID) {
	v := p.carveIDs(src)
	sink.keep(v) // want `arena-carved value stored into sink's object graph by keep`
}

func (s *Sink) keep(ids []NodeID) {
	s.slots = ids
}

// badGlobalHelper leaks through a helper into a package variable.
func (p *Protocol) badGlobalHelper(src []NodeID) {
	v := p.carveIDs(src)
	publish(v) // want `arena-carved value passed to publish, which retains it beyond the call`
}

func publish(ids []NodeID) {
	lastCarved = ids
}

// badUseAfterFree touches a block after appending it to the free list.
func (p *Protocol) badUseAfterFree(j *job) {
	p.jobFree = append(p.jobFree, j)
	j.step = 0 // want `use of j after it was returned to jobFree`
}

// --- non-firing -------------------------------------------------------------

// goodOwnerStore: the owner retains its own storage by construction.
func (p *Protocol) goodOwnerStore(src []NodeID) {
	p.view.Members = p.carveIDs(src)
}

// goodDerived: storage handed out by the owner is still the owner's graph.
func (p *Protocol) goodDerived(id NodeID, src []NodeID) {
	st := p.newState()
	st.ids = p.carveIDs(src)
	p.reports[id] = st
}

func (p *Protocol) newState() *state {
	if n := len(p.jobFree); n > 0 {
		_ = n
	}
	return &state{}
}

// goodCopy: the encode-copies-bytes-out pattern (§12 rule 5) — copying
// elements of a non-retaining element type launders the taint.
func (p *Protocol) goodCopy(sink *Sink, src []NodeID) {
	v := p.carveIDs(src)
	sink.slots = append([]NodeID(nil), v...)
}

// goodReturn: View()-style handout under the two-generation contract.
func (p *Protocol) goodReturn(src []NodeID) []NodeID {
	return p.carveIDs(src)
}

// goodSend: passing carved memory to a synchronous callee that retains
// nothing (the transport encodes before returning).
func (p *Protocol) goodSend(src []NodeID) int {
	v := p.carveIDs(src)
	return encode(v)
}

func encode(ids []NodeID) int {
	n := 0
	for range ids {
		n++
	}
	return n
}

// goodFreeLast: release-last ordering is the legal free-list discipline.
func (p *Protocol) goodFreeLast(j *job) {
	j.step = 0
	p.jobFree = append(p.jobFree, j)
}

// goodRebind: taking a fresh block after the release ends the hazard.
func (p *Protocol) goodRebind(j *job) int {
	p.jobFree = append(p.jobFree, j)
	j = &job{}
	return j.step
}

// --- suppression ------------------------------------------------------------

// allowedEscape demonstrates the justified escape hatch.
func (p *Protocol) allowedEscape(sink *Sink, src []NodeID) {
	v := p.carveIDs(src)
	sink.slots = v //lint:allow arenaescape -- fixture: sink is drained before the generation flip
}
