package arenaescape

// NewAnalyzer exposes the interproc toggle so the tests can demonstrate the
// cross-function retention bug the old intra-procedural semantics miss.
var NewAnalyzer = newAnalyzer
