package arenaescape_test

import (
	"strings"
	"testing"

	"clusterfds/internal/lint"
	"clusterfds/internal/lint/arenaescape"
	"clusterfds/internal/lint/lintest"
)

func TestArenaEscape(t *testing.T) {
	lintest.Run(t, "testdata", arenaescape.Analyzer,
		"clusterfds/internal/cluster",
	)
}

// TestInterprocCatchesCrossFunctionRetention pins the tentpole property:
// the cross-function retention fixtures (a store hidden behind one helper
// call) are invisible to the old intra-procedural semantics and caught by
// the interprocedural summary layer at the call site.
func TestInterprocCatchesCrossFunctionRetention(t *testing.T) {
	u := lintest.Load(t, "testdata", "clusterfds/internal/cluster")

	crossFunction := func(diags []lint.Diagnostic) (byKeep, byPublish bool) {
		for _, d := range diags {
			if strings.Contains(d.Message, "by keep") {
				byKeep = true
			}
			if strings.Contains(d.Message, "passed to publish") {
				byPublish = true
			}
		}
		return
	}

	old, err := lint.Run(arenaescape.NewAnalyzer(false), u)
	if err != nil {
		t.Fatalf("intra-procedural run: %v", err)
	}
	if k, p := crossFunction(old); k || p {
		t.Errorf("intra-procedural engine unexpectedly caught the cross-function fixtures (keep=%v publish=%v); the fixtures no longer demonstrate the summary layer", k, p)
	}

	cur, err := lint.Run(arenaescape.NewAnalyzer(true), u)
	if err != nil {
		t.Fatalf("interprocedural run: %v", err)
	}
	if k, p := crossFunction(cur); !k || !p {
		t.Errorf("interprocedural engine missed a cross-function retention fixture (keep=%v publish=%v)", k, p)
	}
}
