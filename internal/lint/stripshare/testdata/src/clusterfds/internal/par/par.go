// Package par is the stripshare fixture: worker goroutines may touch only
// their own strip's state; everything else goes through the merge barrier.
package par

import "sync/atomic"

type stripState struct {
	sends int
	buf   []int
}

type engine struct {
	strips []stripState
	crash  []bool
	heard  []uint64
	tick   int64
}

var lastTick int64

// --- firing -----------------------------------------------------------------

// badShared: a worker writes engine-level state every worker can see.
func (e *engine) badShared(w int) {
	go func() {
		e.tick = int64(w) // want `worker writes shared state e\.tick outside the merge barrier`
	}()
}

// badCaptured: a captured pointer is shared across workers too.
func (e *engine) badCaptured(total *int) {
	go func() {
		*total = 1 // want `worker writes shared state \*total outside the merge barrier`
	}()
}

// badPkgVar: package state is the most shared state of all.
func (e *engine) badPkgVar() {
	go func() {
		lastTick = 0 // want `worker writes shared state lastTick outside the merge barrier`
	}()
}

// badCrossStrip: neighbor-strip arithmetic reaches another worker's state.
func (e *engine) badCrossStrip(w int) {
	go func() {
		e.strips[w+1].sends = 0 // want `cross-strip index arithmetic e\.strips\[\.\.\.\] inside a worker region`
	}()
}

// badCrossStripRead: reads bypass the barrier just as much as writes.
func (e *engine) badCrossStripRead(w int, out chan int) {
	go func() {
		out <- e.strips[w-1].sends // want `cross-strip index arithmetic e\.strips\[\.\.\.\] inside a worker region`
	}()
}

// badSharedInWorkerDecl: the rule follows calls out of the closure.
func (e *engine) badSharedInWorkerDecl(w int) {
	go e.worker(w)
}

func (e *engine) worker(w int) {
	e.strips[w].sends++
	e.tick++ // want `worker writes shared state e\.tick outside the merge barrier`
}

// --- non-firing -------------------------------------------------------------

// goodOwnStrip: indexed per-strip and per-host slots are the sanctioned
// shape, including through a local handle.
func (e *engine) goodOwnStrip(w int, hosts []int) {
	go func() {
		e.strips[w].sends++
		st := &e.strips[w]
		st.sends++
		for _, i := range hosts {
			e.crash[i] = true
		}
	}()
}

// goodBitset: flat per-host rows are addressed with row+bit arithmetic —
// the element type is not strip state.
func (e *engine) goodBitset(row, w int) {
	go func() {
		e.heard[row+w] = 0
	}()
}

// goodCallIndex: a computed-by-call index is the shard routing pattern
// (e.shards[e.shardOf(i)]), not neighbor arithmetic.
func (e *engine) stripOf(i int) int { return i % len(e.strips) }

func (e *engine) goodCallIndex(i int) {
	go func() {
		e.strips[e.stripOf(i)].sends++
	}()
}

// goodHelperReceiver: a method reached through a call from the worker
// operates on caller-owned storage — the worker hands push its own strip's
// heap, so the receiver write is not shared state. Contrast with worker
// above, whose receiver is the engine because it is a direct go target.
type miniHeap struct{ a []int }

func (h *miniHeap) push(v int) {
	h.a = append(h.a, v)
	h.a[0] = v
}

func (e *engine) goodHelperReceiver(w int, hp *miniHeap) {
	go func() {
		hp.push(w)
	}()
}

// goodComms: channels and atomics are the sanctioned cross-worker paths.
func (e *engine) goodComms(ctr *int64, out chan int) {
	go func() {
		n := atomic.AddInt64(ctr, 1)
		local := int(n)
		local++
		out <- local
	}()
}

// goodSerial: the merge barrier itself runs with no workers live.
func (e *engine) goodSerial() {
	e.tick++
	for w := 1; w < len(e.strips); w++ {
		e.strips[0].sends += e.strips[w].sends
	}
}

// --- suppression ------------------------------------------------------------

// allowedShared demonstrates the justified escape hatch.
func (e *engine) allowedShared(flag *bool) {
	go func() {
		*flag = true //lint:allow stripshare -- fixture: set-once flag, read only after the barrier
	}()
}
