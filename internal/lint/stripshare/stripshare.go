// Package stripshare machine-checks the strip-isolation invariant behind
// the intra-replica parallelism (DESIGN.md §12): worker goroutines in
// internal/par and internal/shard may touch only their own strip's state.
// Everything cross-strip flows through the serial merge barrier, which is
// what makes the parallel engines bit-identical to the serial kernel.
//
// Inside every goroutine-reachable region (lint.GoReachable) the analyzer
// flags:
//
//   - writes to shared mutables: a store whose target is rooted at the
//     receiver, a captured variable, or a package variable — state visible
//     to other workers — unless the lvalue path goes through an index
//     (e.strips[w].sends++, e.crashed[i] = true: per-strip and per-host
//     slots are owned by exactly one worker under the decomposition).
//     Region-locals and the region's own parameters (the worker's strip
//     handle) are private. Channel sends and sync/atomic calls are the
//     sanctioned communication paths and are not stores.
//
//     A method reached transitively from a worker — a heap push, a strip
//     helper — treats its receiver as caller-owned storage: the worker
//     hands the helper its own strip's object (§12: owners hand out storage
//     they own), and it is the call site, not the helper body, where the
//     cross-strip rule applies. Only a direct `go e.worker(...)` target
//     keeps its receiver shared: there the receiver is the whole engine,
//     spawned once per worker.
//
//   - cross-strip index arithmetic: indexing a strip/shard-state container
//     with a computed neighbor index (e.strips[w+1]) reaches another
//     worker's state without the merge barrier. Only containers whose
//     element type is a named strip/shard struct are held to this rule —
//     flat per-host rows like the []uint64 liveness bitsets are addressed
//     as row+bit arithmetic legitimately.
//
// Suppressions use `//lint:allow stripshare -- reason`.
package stripshare

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"clusterfds/internal/lint"
)

// Analyzer is the strip-isolation check.
var Analyzer = &lint.Analyzer{
	Name: "stripshare",
	Doc: "flag worker-goroutine writes to shared state and cross-strip " +
		"index arithmetic that bypass the merge barrier in internal/par and internal/shard",
	Run: run,
}

// stripPackage reports whether path is one of the parallel-engine packages
// the strip discipline applies to.
func stripPackage(path string) bool {
	for _, d := range []string{"par", "shard"} {
		p := "clusterfds/internal/" + d
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *lint.Pass) error {
	if !stripPackage(pass.Pkg.Path()) {
		return nil
	}
	info := pass.TypesInfo
	reach := lint.GoReachable(pass)
	spawned := goTargets(pass)
	for _, f := range pass.Files {
		if lint.TestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if reach[fd] {
				locals := lint.RegionLocals(info, fd.Body, fd.Type)
				if fd.Recv != nil && !spawned[fd] {
					// Transitively reached helper: the receiver is the
					// caller's own strip object, handed in at the call site.
					for _, field := range fd.Recv.List {
						for _, name := range field.Names {
							if obj := info.Defs[name]; obj != nil {
								locals[obj] = true
							}
						}
					}
				}
				checkRegion(pass, fd.Body, locals)
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && reach[lit] {
					checkRegion(pass, lit.Body, lint.RegionLocals(info, lit.Body, lit.Type))
				}
				return true
			})
		}
	}
	return nil
}

// goTargets maps each FuncDecl that is the direct callee of a go statement
// in a non-test file — the worker entry points whose receiver is the shared
// engine, not a caller-owned strip object.
func goTargets(pass *lint.Pass) map[*ast.FuncDecl]bool {
	info := pass.TypesInfo
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	out := make(map[*ast.FuncDecl]bool)
	for _, f := range pass.Files {
		if lint.TestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if fn := lint.PkgFunc(info, g.Call); fn != nil {
				if fd := decls[fn]; fd != nil {
					out[fd] = true
				}
			}
			return true
		})
	}
	return out
}

// checkRegion enforces the strip discipline over one worker region. Nested
// function literals are regions of their own.
func checkRegion(pass *lint.Pass, body *ast.BlockStmt, locals map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				checkStore(pass, l, n.Tok, locals)
			}
		case *ast.IncDecStmt:
			checkStore(pass, n.X, token.ASSIGN, locals)
		case *ast.IndexExpr:
			checkCrossStrip(pass, n)
		}
		return true
	})
}

// checkStore flags a store to shared, non-indexed state.
func checkStore(pass *lint.Pass, l ast.Expr, tok token.Token, locals map[types.Object]bool) {
	info := pass.TypesInfo
	if tok == token.DEFINE {
		return // := declares region-locals
	}
	if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name == "_" {
		return
	}
	if hasIndex(l) {
		return // per-strip / per-host slot, owned by this worker
	}
	root := lint.ChainRoot(info, l)
	if root != nil && locals[root] {
		return
	}
	pass.Reportf(l.Pos(), "worker writes shared state %s outside the merge barrier; workers may touch only their own strip's slots", lint.ExprString(l))
}

// hasIndex reports whether the lvalue path contains an index step.
func hasIndex(x ast.Expr) bool {
	for {
		switch e := ast.Unparen(x).(type) {
		case *ast.IndexExpr:
			return true
		case *ast.SelectorExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		default:
			return false
		}
	}
}

// checkCrossStrip flags strip/shard-state containers indexed with +/-
// arithmetic — a computed neighbor index that reaches another worker's
// state without the merge barrier.
func checkCrossStrip(pass *lint.Pass, idx *ast.IndexExpr) {
	info := pass.TypesInfo
	b, ok := ast.Unparen(idx.Index).(*ast.BinaryExpr)
	if !ok || (b.Op != token.ADD && b.Op != token.SUB) {
		return
	}
	if !stripElem(info.TypeOf(idx)) {
		return
	}
	pass.Reportf(idx.Pos(), "cross-strip index arithmetic %s inside a worker region bypasses the merge barrier; workers may touch only their own strip", lint.ExprString(idx))
}

// stripElem reports whether t (possibly behind a pointer) is a named
// struct whose name marks it as per-strip/per-shard worker state.
func stripElem(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return false
	}
	name := strings.ToLower(named.Obj().Name())
	return strings.Contains(name, "strip") || strings.Contains(name, "shard")
}
