package stripshare_test

import (
	"testing"

	"clusterfds/internal/lint/lintest"
	"clusterfds/internal/lint/stripshare"
)

func TestStripShare(t *testing.T) {
	lintest.Run(t, "testdata", stripshare.Analyzer,
		"clusterfds/internal/par",
	)
}
