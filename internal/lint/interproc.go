package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the interprocedural layer under the PR's four
// ownership/determinism analyzers. The base TaintEngine is intra-procedural:
// it follows a tainted value through one function body and reports stores
// that outlive the value's window, but a store hidden behind one helper call
// is invisible to it — `p.cache.keep(p.arena.carve(n))` looks like a
// harmless synchronous call. The layer closes that hole with three pieces:
//
//   - Summarize: per-function, per-input retention summaries ({escapes
//     globally, stored into another input's object graph, flows to a
//     return}) computed over the package-local call graph to a fixpoint.
//     Analyzers consult the summary at the call site (via the engine's
//     OnCallTaint/ReturnsTaintCall hooks) and report there, where the
//     arena value actually leaks.
//   - GoReachable: the set of function bodies that may execute on a
//     spawned goroutine — `go` statement operands, closed over direct
//     in-package calls and referenced function values/closures.
//   - PropagateCalls: transitive closure of a per-function boolean
//     property (e.g. "accumulates floating-point state") over the same
//     call graph.
//
// Everything is package-local: cross-package callees have no summary and
// are treated as synchronous calls that retain nothing, which matches the
// repository's layering (arena memory never crosses a package boundary
// except as encode-at-Send bytes, DESIGN.md §12 rule 5).

// Inputs returns fn's receiver (if any) followed by its parameters — the
// index space used by InputSummary and the engine's OnCallTaint hook.
func Inputs(fn *types.Func) []*types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

// InputExpr returns the call-site expression feeding input idx of callee in
// call — the receiver expression for a method's input 0, otherwise the
// matching argument — or nil when the call shape doesn't provide one.
func InputExpr(call *ast.CallExpr, callee *types.Func, idx int) ast.Expr {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if sig.Recv() != nil {
		if idx == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		idx--
	}
	if idx < len(call.Args) {
		return call.Args[idx]
	}
	return nil
}

// ChainRoot resolves the object at the base of a selector / index / slice /
// call / address chain: p for p.arena.carve(n), sh for sh.arena[a:b], and
// st for st.p.newDuty(). A method-call link attributes the result to the
// receiver chain — the repository's ownership convention (§12): owners hand
// out storage they own.
func ChainRoot(info *types.Info, x ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(x).(type) {
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				return obj
			}
			return info.Defs[e]
		case *ast.SelectorExpr:
			x = e.X
		case *ast.IndexExpr:
			x = e.X
		case *ast.SliceExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		case *ast.UnaryExpr:
			if e.Op != token.AND {
				return nil
			}
			x = e.X
		case *ast.CallExpr:
			x = e.Fun
		default:
			return nil
		}
	}
}

// InputSummary describes what one function does with memory reachable from
// one of its inputs.
type InputSummary struct {
	// Global: the input escapes the function's frame for good — a package
	// variable, channel, goroutine, escaping closure, or a store whose
	// base the analysis cannot attribute.
	Global bool
	// Into: the input is stored into the object graph rooted at another
	// input (by input index). The caller decides whether that root is
	// legal retention (the arena owner) or a leak.
	Into map[int]bool
	// Returns: the input flows to a return value.
	Returns bool
	// GlobalPos remembers one site behind Global, for diagnostics that
	// want to point into the callee.
	GlobalPos token.Pos
}

// FuncSummary holds the per-input summaries of one function declaration.
type FuncSummary struct {
	Decl    *ast.FuncDecl
	Inputs  []*types.Var
	ByInput []*InputSummary
}

// Summaries is the package-wide summary table produced by Summarize.
type Summaries struct {
	Funcs map[*types.Func]*FuncSummary
}

// For returns the summary for fn, or nil for functions without a body in
// this package (cross-package callees, declarations-only).
func (s *Summaries) For(fn *types.Func) *FuncSummary {
	if s == nil {
		return nil
	}
	return s.Funcs[fn]
}

// Input returns the summary of input idx of fn, or nil.
func (s *Summaries) Input(fn *types.Func, idx int) *InputSummary {
	fs := s.For(fn)
	if fs == nil || idx < 0 || idx >= len(fs.ByInput) {
		return nil
	}
	return fs.ByInput[idx]
}

// ReturnsTaintFor adapts the table to the engine's ReturnsTaintCall hook: a
// call's result is tainted when a tainted call-site expression feeds an
// input that flows to the callee's return value.
func (s *Summaries) ReturnsTaintFor(info *types.Info) func(call *ast.CallExpr, tainted func(ast.Expr) bool) bool {
	return func(call *ast.CallExpr, tainted func(ast.Expr) bool) bool {
		fn := PkgFunc(info, call)
		fs := s.For(fn)
		if fs == nil {
			return false
		}
		for i, sum := range fs.ByInput {
			if sum == nil || !sum.Returns {
				continue
			}
			if e := InputExpr(call, fn, i); e != nil && tainted(e) {
				return true
			}
		}
		return false
	}
}

// Summarize computes per-function, per-input retention summaries for every
// function declared in the package, propagated across the package-local
// call graph to a fixpoint. Seeding is bottom-up in effect: each round
// re-analyzes every function with every summary learned so far, and rounds
// repeat until no summary bit changes (the flags are monotone, so this
// terminates).
func Summarize(pass *Pass) *Summaries {
	type fnDecl struct {
		fn   *types.Func
		decl *ast.FuncDecl
	}
	var order []fnDecl
	sums := &Summaries{Funcs: make(map[*types.Func]*FuncSummary)}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			inputs := Inputs(fn)
			fs := &FuncSummary{Decl: fd, Inputs: inputs, ByInput: make([]*InputSummary, len(inputs))}
			for i, v := range inputs {
				if RetainsMemory(v.Type()) {
					fs.ByInput[i] = &InputSummary{Into: make(map[int]bool)}
				}
			}
			order = append(order, fnDecl{fn, fd})
			sums.Funcs[fn] = fs
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range order {
			fs := sums.Funcs[fd.fn]
			for i := range fs.ByInput {
				if fs.ByInput[i] == nil {
					continue
				}
				if summarizeInput(pass, sums, fs, i) {
					changed = true
				}
			}
		}
	}
	return sums
}

// summarizeInput (re)analyzes one (function, input) pair against the
// current table and reports whether its summary grew.
func summarizeInput(pass *Pass, sums *Summaries, fs *FuncSummary, idx int) bool {
	info := pass.TypesInfo
	sum := fs.ByInput[idx]
	derived := derivedLocals(info, fs.Decl, fs.Inputs)
	inputIdxOf := func(root types.Object) int {
		if root == nil {
			return -1
		}
		for j, v := range fs.Inputs {
			if root == v {
				return j
			}
		}
		if j, ok := derived[root]; ok {
			return j
		}
		return -1
	}
	changed := false
	setGlobal := func(pos token.Pos) {
		if !sum.Global {
			sum.Global = true
			sum.GlobalPos = pos
			changed = true
		}
	}
	setInto := func(j int) {
		if !sum.Into[j] {
			sum.Into[j] = true
			changed = true
		}
	}
	eng := &TaintEngine{
		Pass: pass,
		OnEscape: func(kind EscapeKind, pos token.Pos, target ast.Expr, root types.Object) bool {
			if kind == EscapeStore {
				if j := inputIdxOf(root); j >= 0 {
					setInto(j)
					return false
				}
			}
			setGlobal(pos)
			return false
		},
		OnCallTaint: func(call *ast.CallExpr, callee *types.Func, input int, arg ast.Expr) {
			cs := sums.Input(callee, input)
			if cs == nil {
				return // cross-package or body-less: synchronous, retains nothing
			}
			if cs.Global {
				setGlobal(arg.Pos())
			}
			for j := range cs.Into {
				e := InputExpr(call, callee, j)
				if e == nil {
					setGlobal(arg.Pos())
					continue
				}
				root := ChainRoot(info, e)
				if jj := inputIdxOf(root); jj >= 0 {
					setInto(jj)
					continue
				}
				if FrameLocal(root) {
					continue // stored into a frame-local object: dies here
				}
				setGlobal(e.Pos())
			}
		},
		ReturnsTaintCall: sums.ReturnsTaintFor(info),
	}
	if eng.CheckFunc(fs.Decl, []*types.Var{fs.Inputs[idx]}) && !sum.Returns {
		sum.Returns = true
		changed = true
	}
	return changed
}

// FrameLocal reports whether obj is a non-pointer local variable — a
// by-value object on the current frame, so storing into its fields keeps
// the value function-local.
func FrameLocal(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return false
	}
	switch v.Type().Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return false
	}
	return true
}

// derivedLocals maps locals obtained from an input's object graph back to
// that input's index: after `st := p.newState()` every store through st is
// a store into p's graph, and after `d := st.p.newDuty()` a store through d
// lands in the graph of whatever input st came from. Two passes make
// chained derivations converge regardless of statement order.
func derivedLocals(info *types.Info, decl *ast.FuncDecl, inputs []*types.Var) map[types.Object]int {
	out := make(map[types.Object]int)
	idxOf := func(root types.Object) int {
		if root == nil {
			return -1
		}
		for j, v := range inputs {
			if root == v {
				return j
			}
		}
		if j, ok := out[root]; ok {
			return j
		}
		return -1
	}
	record := func(l, r ast.Expr) {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if j := idxOf(ChainRoot(info, r)); j >= 0 {
			out[obj] = j
		}
	}
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						record(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.DeclStmt:
				if gd, ok := n.Decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Names) == len(vs.Values) {
							for i := range vs.Names {
								record(vs.Names[i], vs.Values[i])
							}
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// GoReachable returns the set of function bodies that may execute on a
// spawned goroutine: the operands of every `go` statement in non-test
// files, closed over direct in-package calls, references to in-package
// functions as values, function literals bound to variables, and literals
// nested in already-reachable code. The keys are *ast.FuncDecl and
// *ast.FuncLit nodes.
//
// The closure is syntactic: a handler registered with a cross-package API
// (a kernel callback) and only invoked from there is not discovered. The
// worker loops in internal/par and internal/shard call their drain paths
// directly, so the repository's parallel sections are fully covered.
func GoReachable(pass *Pass) map[ast.Node]bool {
	info := pass.TypesInfo
	decls := make(map[*types.Func]*ast.FuncDecl)
	varLits := make(map[types.Object][]*ast.FuncLit)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			bind := func(l ast.Expr, r ast.Expr) {
				lit, ok := ast.Unparen(r).(*ast.FuncLit)
				if !ok {
					return
				}
				id, ok := ast.Unparen(l).(*ast.Ident)
				if !ok {
					return
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil {
					varLits[obj] = append(varLits[obj], lit)
				}
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						bind(n.Lhs[i], n.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i := range n.Names {
						bind(n.Names[i], n.Values[i])
					}
				}
			}
			return true
		})
	}

	reach := make(map[ast.Node]bool)
	var frontier []ast.Node
	add := func(n ast.Node) {
		if n != nil && !reach[n] {
			reach[n] = true
			frontier = append(frontier, n)
		}
	}
	addObj := func(obj types.Object) {
		switch o := obj.(type) {
		case *types.Func:
			if d := decls[o]; d != nil {
				add(d)
			}
		case *types.Var:
			for _, lit := range varLits[o] {
				add(lit)
			}
		}
	}
	addExpr := func(x ast.Expr) {
		switch e := ast.Unparen(x).(type) {
		case *ast.FuncLit:
			add(e)
		case *ast.Ident:
			addObj(info.Uses[e])
		case *ast.SelectorExpr:
			addObj(info.Uses[e.Sel])
		}
	}
	for _, f := range pass.Files {
		if TestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				addExpr(g.Call.Fun)
				for _, a := range g.Call.Args {
					addExpr(a)
				}
			}
			return true
		})
	}
	for len(frontier) > 0 {
		region := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		var body *ast.BlockStmt
		switch r := region.(type) {
		case *ast.FuncDecl:
			body = r.Body
		case *ast.FuncLit:
			body = r.Body
		}
		if body == nil {
			continue
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				add(n)
			case *ast.Ident:
				addObj(info.Uses[n])
			}
			return true
		})
	}
	return reach
}

// DeclaredObjects returns every object defined inside body — the
// variables (and labels, named results of nested literals, ...) private to
// that block.
func DeclaredObjects(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// RegionLocals is the set of objects private to a worker region: variables
// declared in the body plus the declaration's non-receiver parameters
// (strip/shard state is handed to each worker by value or by dedicated
// pointer; the receiver is the shared engine).
func RegionLocals(info *types.Info, body *ast.BlockStmt, ft *ast.FuncType) map[types.Object]bool {
	locals := DeclaredObjects(info, body)
	if ft != nil && ft.Params != nil {
		for _, fld := range ft.Params.List {
			for _, name := range fld.Names {
				if obj := info.Defs[name]; obj != nil {
					locals[obj] = true
				}
			}
		}
	}
	return locals
}

// PropagateCalls computes the transitive closure of a per-function boolean
// property over the package-local call graph: the result holds fn when
// base is true of fn's declaration or fn directly or transitively calls an
// in-package function with the property. Calls through function values are
// not followed.
func PropagateCalls(pass *Pass, base func(*ast.FuncDecl) bool) map[*types.Func]bool {
	info := pass.TypesInfo
	type fnDecl struct {
		fn   *types.Func
		decl *ast.FuncDecl
	}
	var order []fnDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					order = append(order, fnDecl{fn, fd})
				}
			}
		}
	}
	prop := make(map[*types.Func]bool)
	callees := make(map[*types.Func][]*types.Func)
	known := make(map[*types.Func]bool)
	for _, fd := range order {
		known[fd.fn] = true
	}
	for _, fd := range order {
		if base(fd.decl) {
			prop[fd.fn] = true
		}
		ast.Inspect(fd.decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := PkgFunc(info, call); callee != nil && known[callee] {
					callees[fd.fn] = append(callees[fd.fn], callee)
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range order {
			if prop[fd.fn] {
				continue
			}
			for _, c := range callees[fd.fn] {
				if prop[c] {
					prop[fd.fn] = true
					changed = true
					break
				}
			}
		}
	}
	return prop
}
