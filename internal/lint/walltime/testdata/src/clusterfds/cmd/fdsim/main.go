// Package main is the non-firing walltime fixture: wall-clock reads and the
// global rand source are fine outside the deterministic simulator packages
// (CLIs time their own runs, tests seed from the clock, etc.).
package main

import (
	"fmt"
	"math/rand"
	"time"
)

func main() {
	start := time.Now()
	rand.Seed(time.Now().UnixNano())
	n := rand.Intn(100)
	time.Sleep(time.Duration(n) * time.Microsecond)
	fmt.Println(time.Since(start))
}
