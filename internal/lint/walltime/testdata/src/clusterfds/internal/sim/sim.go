// Package sim is a walltime fixture standing in for the deterministic
// kernel package: every wall-clock read and global-rand draw must fire.
package sim

import (
	"math/rand"
	"time"
)

// Time is simulated nanoseconds, as in the real kernel.
type Time int64

func badClock() Time {
	t := time.Now()                // want `time\.Now in deterministic package`
	time.Sleep(time.Millisecond)   // want `time\.Sleep in deterministic package`
	d := time.Since(t)             // want `time\.Since in deterministic package`
	<-time.After(time.Second)      // want `time\.After in deterministic package`
	tm := time.NewTimer(time.Hour) // want `time\.NewTimer in deterministic package`
	_ = tm
	return Time(d)
}

func badRand() float64 {
	n := rand.Intn(10)                 // want `global math/rand\.Intn in deterministic package`
	rand.Seed(42)                      // want `global math/rand\.Seed in deterministic package`
	rand.Shuffle(n, func(i, j int) {}) // want `global math/rand\.Shuffle in deterministic package`
	return rand.Float64()              // want `global math/rand\.Float64 in deterministic package`
}

// goodRand draws from an explicit, seeded source: the legal pattern.
func goodRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64() + float64(rng.Intn(3))
}

// goodTime only manipulates durations and zero Times as plain values.
func goodTime() time.Duration {
	var t0 time.Time
	_ = t0
	return 3 * time.Second
}

// allowed shows the escape hatch: a justified //lint:allow suppresses.
func allowed() {
	time.Sleep(time.Millisecond) //lint:allow walltime -- fixture: demonstrating the suppression path
}

// unjustified shows a bare allow being itself reported.
func unjustified() {
	//lint:allow walltime  // want `needs a justification`
	time.Sleep(time.Millisecond) // want `time\.Sleep in deterministic package`
}
