// Package walltime forbids wall-clock time and the global math/rand source
// inside the deterministic simulator packages.
//
// The reproduction's claims rest on bit-identical traces at every worker
// count: every run is a pure function of (scenario, seed). A single
// time.Now or global rand.Intn breaks that silently — the run still
// completes, the figures just stop being reproducible. Inside the
// kernel-driven packages (internal/{sim,fds,radio,cluster,intercluster,
// membership,sleep,mobility,scenario,montecarlo}) the only legal clocks are
// sim.Time values from the kernel, and the only legal randomness is a
// *rand.Rand seeded from the scenario (rand.New(rand.NewSource(seed)) and
// the SplitMix64 derivation in internal/replicate).
//
// Flagged: calls to time.Now, time.Since, time.Until, time.Sleep,
// time.After, time.Tick, time.NewTimer, time.NewTicker, time.AfterFunc,
// and every package-level math/rand or math/rand/v2 function that draws
// from the global source (rand.Int, rand.Intn, rand.Float64, rand.Seed,
// rand.Shuffle, rand.Perm, ...). Constructors (rand.New, rand.NewSource,
// rand.NewZipf, rand.NewPCG, rand.NewChaCha8) and everything on an
// explicit *rand.Rand receiver stay legal, as do time.Duration/time.Time
// used as plain values.
//
// _test.go files are exempt: the invariant guards the simulator's own
// event order, not the test harness around it.
package walltime

import (
	"go/ast"
	"go/types"
	"strings"

	"clusterfds/internal/lint"
)

// Analyzer is the walltime invariant check.
var Analyzer = &lint.Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock time and the global math/rand source in the " +
		"deterministic simulator packages (simulated time and seeded RNGs only)",
	Run: run,
}

// forbiddenTime lists the time package functions that read or act on the
// wall clock or the runtime timer heap.
var forbiddenTime = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

func run(pass *lint.Pass) error {
	if !lint.DeterministicPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if lint.TestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.PkgFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			// Only package-level functions draw on global state; methods
			// (e.g. (*rand.Rand).Intn, (time.Time).Sub) are explicit about
			// their source and stay legal.
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if forbiddenTime[fn.Name()] {
					pass.Reportf(call.Pos(),
						"time.%s in deterministic package %s: simulated time only (use the sim kernel's clock and timers)",
						fn.Name(), pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if strings.HasPrefix(fn.Name(), "New") {
					return true // rand.New, rand.NewSource, rand.NewZipf, ...
				}
				pass.Reportf(call.Pos(),
					"global %s.%s in deterministic package %s: seeded *rand.Rand only (rand.New(rand.NewSource(seed)))",
					fn.Pkg().Path(), fn.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
