package walltime_test

import (
	"testing"

	"clusterfds/internal/lint/lintest"
	"clusterfds/internal/lint/walltime"
)

func TestWalltime(t *testing.T) {
	lintest.Run(t, "testdata", walltime.Analyzer,
		"clusterfds/internal/sim", // firing: deterministic package
		"clusterfds/cmd/fdsim",    // non-firing: outside the deterministic set
	)
}
