package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// TaintEngine is the shared value-retention analysis behind deliverretain
// and scratchalias. Both invariants have the same shape: some values (a
// delivered wire message, a scratch-backed decode result) are only valid
// for a bounded window, so nothing reachable from them may be stored into a
// location that outlives the window — a struct field behind a pointer, a
// package variable, an escaping closure, a channel — unless the memory-
// carrying parts are deep-copied first.
//
// The engine walks one function body in source order tracking a tainted
// object set. It is deliberately a cheap, mostly flow-insensitive analysis
// with three refinements that the real code in this repository needs:
//
//   - field cleansing: assigning a clean value over a memory-carrying field
//     of a tainted by-value struct local (the intercluster.getState pattern
//     `content.NewFailed = append([]wire.NodeID(nil), content.NewFailed...)`)
//     removes that field from the taint, so a fully-copied struct can be
//     stored freely;
//   - element copies: `append(dst, src...)` and `copy(dst, src)` copy
//     elements, so they propagate taint only when the element type itself
//     retains memory (a []wire.NodeID copy is clean; a [][]byte copy isn't);
//   - local sinks: stores into by-value locals, fields of by-value locals,
//     and pointers provably aimed at by-value locals are propagation, not
//     escapes.
type TaintEngine struct {
	Pass *Pass

	// What is the noun used in diagnostics, e.g. "delivered message".
	What string

	// Lifetime describes the validity window in diagnostics; it defaults
	// to "during the call" (the Deliver/decode window). arenaescape sets
	// "until the arena's next generation flip".
	Lifetime string

	// TaintedCall, if non-nil, reports whether a call's results are tainted
	// regardless of argument taint (e.g. wire.DecodeInto).
	TaintedCall func(call *ast.CallExpr) bool

	// TaintedSource, if non-nil, marks expressions that are taint sources
	// wherever they are read (e.g. a bump-arena field: sh.arena). It is
	// consulted before the engine's own expression rules.
	TaintedSource func(x ast.Expr) bool

	// ReturnsTaint, if non-nil, reports whether calls to fn yield tainted
	// results (fed back from a previous fixpoint iteration).
	ReturnsTaint func(fn *types.Func) bool

	// ReturnsTaintCall, if non-nil, reports whether one specific call
	// yields a tainted result, given a predicate for call-site expression
	// taint — so a per-function summary can be consulted per argument
	// (context-sensitively), unlike the coarser ReturnsTaint.
	ReturnsTaintCall func(call *ast.CallExpr, tainted func(ast.Expr) bool) bool

	// OnArgTaint, if non-nil, is invoked when a tainted value is passed as
	// an argument (or receiver) of a statically resolved call, so the
	// analyzer can propagate taint interprocedurally. It is NOT invoked for
	// calls the engine already understands (append, copy, delete, len...).
	OnArgTaint func(callee *types.Func, param *types.Var, arg ast.Expr)

	// OnCallTaint, if non-nil, is invoked alongside OnArgTaint with the
	// full call expression and the callee input index (receiver first, see
	// Inputs), so analyzers can judge the call site against an
	// interprocedural summary of the callee.
	OnCallTaint func(call *ast.CallExpr, callee *types.Func, input int, arg ast.Expr)

	// OnEscape, if non-nil, observes every escape before it is reported:
	// target is the store target / sent value / captured identifier, and
	// root is the resolved base object of a store target (nil otherwise).
	// Returning false accepts the escape as proved safe — nothing is
	// reported — which is how arenaescape admits owner-rooted stores and
	// how Summarize classifies escapes without reporting them.
	OnEscape func(kind EscapeKind, pos token.Pos, target ast.Expr, root types.Object) bool

	// Report, if non-nil, receives escape findings. When nil, findings go
	// to Pass.Reportf.
	Report func(pos token.Pos, format string, args ...any)
}

// EscapeKind classifies how a tainted value leaves its validity window.
type EscapeKind int

const (
	// EscapeStore is a store into a non-local lvalue (field, element, or
	// pointer dereference whose base is not provably frame-local).
	EscapeStore EscapeKind = iota
	// EscapePkgVar is a store into a package-level variable.
	EscapePkgVar
	// EscapeSend is a channel send.
	EscapeSend
	// EscapeGo is a value passed to (or captured by) a goroutine.
	EscapeGo
	// EscapeClosure is a capture by a closure that may outlive the window.
	EscapeClosure
)

func (e *TaintEngine) lifetime() string {
	if e.Lifetime != "" {
		return e.Lifetime
	}
	return "during the call"
}

// escapes consults OnEscape; true means the escape must be reported.
func (s *funcState) escapes(kind EscapeKind, pos token.Pos, target ast.Expr, root types.Object) bool {
	if s.e.OnEscape == nil {
		return true
	}
	return s.e.OnEscape(kind, pos, target, root)
}

func (e *TaintEngine) reportf(pos token.Pos, format string, args ...any) {
	if e.Report != nil {
		e.Report(pos, format, args...)
		return
	}
	e.Pass.Reportf(pos, format, args...)
}

// funcState is the per-function taint state.
type funcState struct {
	e *TaintEngine
	// tainted objects (params and locals holding window-bounded memory).
	tainted map[types.Object]bool
	// cleansed[obj][field] marks memory-carrying fields of a tainted
	// by-value struct local that were overwritten with clean values.
	cleansed map[types.Object]map[string]bool
	// pointee maps a local pointer to the by-value local it provably
	// addresses (p := &localStruct), so stores through it stay local.
	pointee map[types.Object]types.Object
	// returnsTaint records whether any return statement returns taint.
	returnsTaint bool
}

// CheckFunc analyzes one function with the given initially-tainted
// parameters (and/or receiver) and reports escapes. It returns whether the
// function can return a tainted value to its caller.
func (e *TaintEngine) CheckFunc(decl *ast.FuncDecl, seed []*types.Var) (returnsTaint bool) {
	st := &funcState{
		e:        e,
		tainted:  make(map[types.Object]bool),
		cleansed: make(map[types.Object]map[string]bool),
		pointee:  make(map[types.Object]types.Object),
	}
	for _, v := range seed {
		st.tainted[v] = true
	}
	if decl.Body == nil {
		return false
	}
	// Two passes over the body so taint introduced late in a loop body
	// still reaches uses earlier in the same body; escapes are reported
	// only on the second pass (reports are deduplicated by position).
	reported := make(map[token.Pos]bool)
	st.walkBody(decl.Body, func(pos token.Pos, format string, args ...any) {
		_ = reported // first pass: propagate only
	})
	st.walkBody(decl.Body, func(pos token.Pos, format string, args ...any) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		e.reportf(pos, format, args...)
	})
	return st.returnsTaint
}

type reportFn func(pos token.Pos, format string, args ...any)

// walkBody processes the statements of a function body in source order.
func (s *funcState) walkBody(body *ast.BlockStmt, report reportFn) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			s.assign(n, report)
			// Still descend: RHS may contain func literals / calls.
			for _, r := range n.Rhs {
				s.expr(r, report)
			}
			return false
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) && s.taintedExpr(vs.Values[i]) {
							if obj := s.e.Pass.TypesInfo.Defs[name]; obj != nil {
								s.tainted[obj] = true
							}
						}
					}
					for _, v := range vs.Values {
						s.expr(v, report)
					}
				}
			}
			return false
		case *ast.SendStmt:
			if s.taintedExpr(n.Value) && s.escapes(EscapeSend, n.Value.Pos(), n.Value, nil) {
				report(n.Value.Pos(), "%s (or memory reachable from it) sent on a channel; it is only valid %s — copy it first", s.e.What, s.e.lifetime())
			}
			s.expr(n.Value, report)
			return false
		case *ast.GoStmt:
			s.callArgs(n.Call, report, true)
			return false
		case *ast.DeferStmt:
			// A deferred call still runs before the function returns, so
			// the window is respected; treat like a synchronous call.
			s.callArgs(n.Call, report, false)
			return false
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if s.taintedExpr(r) {
					s.returnsTaint = true
				}
				s.expr(r, report)
			}
			return false
		case *ast.TypeSwitchStmt:
			// switch msg := m.(type): each case clause binds its own
			// implicit object; taint the memory-carrying ones.
			var subject ast.Expr
			switch a := n.Assign.(type) {
			case *ast.AssignStmt:
				if len(a.Rhs) == 1 {
					if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
						subject = ta.X
					}
				}
			case *ast.ExprStmt:
				if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
					subject = ta.X
				}
			}
			if subject != nil && s.taintedExpr(subject) {
				for _, cl := range n.Body.List {
					cc, ok := cl.(*ast.CaseClause)
					if !ok {
						continue
					}
					obj := s.e.Pass.TypesInfo.Implicits[cc]
					if obj != nil && RetainsMemory(obj.Type()) {
						s.tainted[obj] = true
					}
				}
			}
			return true
		case *ast.RangeStmt:
			if n.X != nil && s.taintedExpr(n.X) {
				for _, v := range []ast.Expr{n.Key, n.Value} {
					id, ok := v.(*ast.Ident)
					if !ok {
						continue
					}
					obj := s.e.Pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = s.e.Pass.TypesInfo.Uses[id]
					}
					if obj != nil && RetainsMemory(obj.Type()) {
						s.tainted[obj] = true
					}
				}
			}
			return true
		case *ast.ExprStmt:
			s.expr(n.X, report)
			return false
		case *ast.IncDecStmt:
			return false
		}
		return true
	})
}

// expr scans an expression for calls (argument escapes, closures) without
// treating it as a store target.
func (s *funcState) expr(x ast.Expr, report reportFn) {
	ast.Inspect(x, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			s.callArgs(n, report, false)
			return false
		case *ast.FuncLit:
			s.funcLit(n, report, false)
			return false
		}
		return true
	})
}

// funcLit flags closures that capture tainted objects unless they are
// invoked before the window closes (immediately called, or deferred).
func (s *funcState) funcLit(lit *ast.FuncLit, report reportFn, invokedNow bool) {
	if invokedNow {
		// Body runs inside the window; analyze it inline.
		s.walkBody(lit.Body, report)
		return
	}
	info := s.e.Pass.TypesInfo
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj != nil && s.tainted[obj] && s.objTainted(obj) && s.escapes(EscapeClosure, id.Pos(), id, obj) {
			report(id.Pos(), "%s captured by a closure that may outlive the call; it is only valid %s — copy what the closure needs", s.e.What, s.e.lifetime())
		}
		return true
	})
}

// callArgs handles a call expression: builtin semantics, interprocedural
// propagation, and closure arguments.
func (s *funcState) callArgs(call *ast.CallExpr, report reportFn, isGo bool) {
	info := s.e.Pass.TypesInfo
	// Builtins with element-copy or non-retaining semantics.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "copy":
				// copy(dst, src): element copy; taints dst only when the
				// element type itself retains memory.
				if len(call.Args) == 2 && s.taintedExpr(call.Args[1]) {
					if elem := sliceElem(info.TypeOf(call.Args[0])); elem != nil && RetainsMemory(elem) {
						s.taintLValue(call.Args[0], call.Args[1], report)
					}
				}
				return
			case "len", "cap", "delete", "print", "println", "clear", "min", "max":
				return
			}
			// append is handled as a value in taintedExpr; panic etc. fall
			// through to generic scanning below.
		}
	}
	// Immediately-invoked closure: body runs inside the window.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		s.funcLit(lit, report, !isGo)
		for _, a := range call.Args {
			if s.taintedExpr(a) && isGo && s.escapes(EscapeGo, a.Pos(), a, nil) {
				report(a.Pos(), "%s passed to a goroutine; it is only valid %s — copy it first", s.e.What, s.e.lifetime())
			}
			s.expr(a, report)
		}
		return
	}

	callee := PkgFunc(info, call)
	sig, _ := info.TypeOf(call.Fun).(*types.Signature)

	// Receiver of a resolved method call. The call-site signature is the
	// method-value form (Recv() == nil), so receiver presence comes from
	// the callee's own declared signature.
	recvOff := 0
	if callee != nil {
		if csig, ok := callee.Type().(*types.Signature); ok && csig.Recv() != nil {
			recvOff = 1
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && s.taintedExpr(sel.X) {
				s.argTaint(call, callee, csig.Recv(), 0, sel.X, report, isGo)
			}
		}
	}
	for i, a := range call.Args {
		if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
			// A closure passed to another function: assume it may be stored
			// and run later (timers do exactly that).
			s.funcLit(lit, report, false)
			continue
		}
		if s.taintedExpr(a) {
			var param *types.Var
			input := i + recvOff
			if sig != nil && sig.Params() != nil {
				if i < sig.Params().Len() {
					param = sig.Params().At(i)
				} else if sig.Variadic() && sig.Params().Len() > 0 {
					param = sig.Params().At(sig.Params().Len() - 1)
					input = sig.Params().Len() - 1 + recvOff
				}
			}
			s.argTaint(call, callee, param, input, a, report, isGo)
		}
		s.expr(a, report)
	}
}

func (s *funcState) argTaint(call *ast.CallExpr, callee *types.Func, param *types.Var, input int, arg ast.Expr, report reportFn, isGo bool) {
	if isGo {
		if s.escapes(EscapeGo, arg.Pos(), arg, nil) {
			report(arg.Pos(), "%s passed to a goroutine; it is only valid %s — copy it first", s.e.What, s.e.lifetime())
		}
		return
	}
	if callee != nil && param != nil && RetainsMemory(param.Type()) {
		if s.e.OnArgTaint != nil {
			s.e.OnArgTaint(callee, param, arg)
		}
		if s.e.OnCallTaint != nil {
			s.e.OnCallTaint(call, callee, input, arg)
		}
	}
	// A synchronous call finishes inside the window, so passing taint down
	// is fine by itself; the callee is analyzed separately via OnArgTaint
	// or judged at the call site against its summary via OnCallTaint.
}

// assign classifies each lhs/rhs pair of an assignment.
func (s *funcState) assign(n *ast.AssignStmt, report reportFn) {
	info := s.e.Pass.TypesInfo
	// Multi-value form: a, b := f().
	if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
		tainted := s.taintedExpr(n.Rhs[0])
		for _, l := range n.Lhs {
			if tainted {
				s.taintLValue(l, n.Rhs[0], report)
			} else {
				s.cleanLValue(l)
			}
		}
		return
	}
	for i, l := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		r := n.Rhs[i]
		rhsTainted := s.taintedExpr(r)
		// x op= y never rebinds memory except += on... it can for strings
		// only (immutable) — treat op= as read-only unless it is = or :=.
		if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
			continue
		}
		if rhsTainted {
			s.taintLValue(l, r, report)
		} else {
			s.cleanLValue(l)
		}
	}
	_ = info
}

// cleanLValue records that lhs now holds a clean value: reassigned locals
// lose their taint; clean stores over fields of tainted by-value structs
// cleanse those fields.
func (s *funcState) cleanLValue(l ast.Expr) {
	info := s.e.Pass.TypesInfo
	switch l := ast.Unparen(l).(type) {
	case *ast.Ident:
		var obj types.Object
		if d := info.Defs[l]; d != nil {
			obj = d
		} else {
			obj = info.Uses[l]
		}
		if obj != nil {
			delete(s.tainted, obj)
			delete(s.cleansed, obj)
		}
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
			obj := info.Uses[id]
			if obj != nil && s.tainted[obj] && !isPointer(obj.Type()) {
				m := s.cleansed[obj]
				if m == nil {
					m = make(map[string]bool)
					s.cleansed[obj] = m
				}
				m[l.Sel.Name] = true
			}
		}
	}
}

// taintLValue handles a store of a tainted value into l: propagation when l
// is local storage, a report when l outlives the call window.
func (s *funcState) taintLValue(l ast.Expr, r ast.Expr, report reportFn) {
	info := s.e.Pass.TypesInfo
	switch l := ast.Unparen(l).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		var obj types.Object
		if d := info.Defs[l]; d != nil {
			obj = d
		} else {
			obj = info.Uses[l]
		}
		if obj == nil {
			return
		}
		if obj.Parent() == obj.Pkg().Scope() {
			if s.escapes(EscapePkgVar, l.Pos(), l, obj) {
				report(l.Pos(), "%s stored in package variable %s; it is only valid %s — copy it first", s.e.What, l.Name, s.e.lifetime())
			}
			return
		}
		s.tainted[obj] = true
		delete(s.cleansed, obj)
		// p := &localStruct tracking: a pointer to a by-value local is
		// itself local storage.
		if ue, ok := ast.Unparen(r).(*ast.UnaryExpr); ok && ue.Op == token.AND {
			if tid, ok := ast.Unparen(ue.X).(*ast.Ident); ok {
				if tobj := info.Uses[tid]; tobj != nil && s.isLocalValue(tobj) {
					s.pointee[obj] = tobj
				}
			}
		}
	case *ast.SelectorExpr:
		root, local := s.localRoot(l.X)
		if local {
			if root != nil {
				s.tainted[root] = true
				if m := s.cleansed[root]; m != nil {
					delete(m, l.Sel.Name)
				}
			}
			return
		}
		if s.escapes(EscapeStore, l.Pos(), l, root) {
			report(l.Pos(), "%s stored in %s; it is only valid %s — copy the retained parts (see radio.Medium's delivery contract)", s.e.What, lvalueDesc(l), s.e.lifetime())
		}
	case *ast.IndexExpr:
		root, local := s.localRoot(l.X)
		if local {
			if root != nil {
				s.tainted[root] = true
			}
			return
		}
		if s.escapes(EscapeStore, l.Pos(), l, root) {
			report(l.Pos(), "%s stored in %s; it is only valid %s — copy it first", s.e.What, lvalueDesc(l), s.e.lifetime())
		}
	case *ast.StarExpr:
		root, local := s.localRoot(l.X)
		if local {
			if root != nil {
				s.tainted[root] = true
			}
			return
		}
		if s.escapes(EscapeStore, l.Pos(), l, root) {
			report(l.Pos(), "%s stored through pointer %s; it is only valid %s — copy it first", s.e.What, lvalueDesc(l), s.e.lifetime())
		}
	}
}

// localRoot resolves the base expression of a store target. It returns
// (rootObject, true) when the target is provably function-local storage:
// a by-value local (or a pointer known to address one). A false result
// means the store escapes the call window.
func (s *funcState) localRoot(x ast.Expr) (types.Object, bool) {
	info := s.e.Pass.TypesInfo
	for {
		switch e := ast.Unparen(x).(type) {
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			if obj == nil {
				return nil, false
			}
			if obj.Parent() == obj.Pkg().Scope() {
				return obj, false // package variable
			}
			if s.isLocalValue(obj) {
				return obj, true
			}
			if p, ok := s.pointee[obj]; ok {
				return p, true
			}
			return obj, false // pointer/slice/map local of unknown origin
		case *ast.SelectorExpr:
			x = e.X
		case *ast.IndexExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		default:
			return nil, false
		}
	}
}

// isLocalValue reports whether obj is a non-pointer local variable or
// parameter (a true by-value copy on this frame).
func (s *funcState) isLocalValue(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return false
	}
	switch v.Type().Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return false
	}
	return true
}

// objTainted reports whether the object still carries taint, accounting
// for field cleansing on by-value structs.
func (s *funcState) objTainted(obj types.Object) bool {
	if !s.tainted[obj] {
		return false
	}
	if !RetainsMemory(obj.Type()) {
		return false
	}
	str, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return true
	}
	m := s.cleansed[obj]
	for i := 0; i < str.NumFields(); i++ {
		f := str.Field(i)
		if RetainsMemory(f.Type()) && !m[f.Name()] {
			return true
		}
	}
	return false
}

// taintedExpr reports whether evaluating x yields a value that can keep
// window-bounded memory alive.
func (s *funcState) taintedExpr(x ast.Expr) bool {
	info := s.e.Pass.TypesInfo
	if s.e.TaintedSource != nil && s.e.TaintedSource(x) {
		return true
	}
	switch e := ast.Unparen(x).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		return obj != nil && s.objTainted(obj)
	case *ast.SelectorExpr:
		// Field selection on a tainted base: tainted when the field can
		// retain memory and hasn't been cleansed.
		if !s.taintedExpr(e.X) {
			return false
		}
		t := info.TypeOf(e)
		if t == nil || !RetainsMemory(t) {
			return false
		}
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			obj := info.Uses[id]
			if obj != nil && s.cleansed[obj][e.Sel.Name] {
				return false
			}
		}
		return true
	case *ast.IndexExpr:
		if !s.taintedExpr(e.X) {
			return false
		}
		t := info.TypeOf(e)
		return t != nil && RetainsMemory(t)
	case *ast.SliceExpr:
		return s.taintedExpr(e.X)
	case *ast.StarExpr:
		return s.taintedExpr(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return s.taintedExpr(e.X)
		}
		return false
	case *ast.TypeAssertExpr:
		return s.taintedExpr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if s.taintedExpr(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return s.taintedCall(e)
	case *ast.FuncLit:
		// Handled separately by funcLit; as a value it is clean here.
		return false
	}
	return false
}

// taintedCall evaluates taint of a call result.
func (s *funcState) taintedCall(call *ast.CallExpr) bool {
	info := s.e.Pass.TypesInfo
	if s.e.TaintedCall != nil && s.e.TaintedCall(call) {
		return true
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				// append(dst, xs...) copies elements: the result aliases
				// dst's backing array plus, for memory-carrying element
				// types, whatever the elements reference.
				if len(call.Args) == 0 {
					return false
				}
				if s.taintedExpr(call.Args[0]) {
					return true
				}
				elem := sliceElem(info.TypeOf(call.Args[0]))
				retainingElems := elem != nil && RetainsMemory(elem)
				for _, a := range call.Args[1:] {
					if s.taintedExpr(a) && retainingElems {
						return true
					}
				}
				return false
			case "len", "cap", "copy", "min", "max", "make", "new":
				return false
			}
		}
	}
	// Conversions: T(x) keeps x's memory for reference types.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return s.taintedExpr(call.Args[0]) && RetainsMemory(tv.Type)
		}
		return false
	}
	if s.e.ReturnsTaint != nil {
		if fn := PkgFunc(info, call); fn != nil && s.e.ReturnsTaint(fn) {
			return true
		}
	}
	if s.e.ReturnsTaintCall != nil && s.e.ReturnsTaintCall(call, s.taintedExpr) {
		return true
	}
	return false
}

// isPointer reports whether t's underlying type is a pointer.
func isPointer(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// sliceElem returns the element type if t is a slice (or pointer to
// array), else nil.
func sliceElem(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return u.Elem()
	case *types.Pointer:
		if a, ok := u.Elem().Underlying().(*types.Array); ok {
			return a.Elem()
		}
	}
	return nil
}

// lvalueDesc renders a store target for diagnostics.
func lvalueDesc(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		return fmt.Sprintf("field %s", exprString(e))
	default:
		return exprString(e)
	}
}

// ExprString renders an expression chain for diagnostics (p.arena.cur,
// sh.out[...]). Analyzer packages use it to name call-site expressions.
func ExprString(e ast.Expr) string { return exprString(e) }

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return "expression"
	}
}
