// Package analysis is the non-firing detmap fixture: clusterfds/internal/
// analysis is not in the deterministic set (it post-processes results), so
// even blatantly order-dependent ranges are fine here.
package analysis

func LastKey(m map[uint32]bool) uint32 {
	var last uint32
	for k := range m {
		last = k
	}
	return last
}
