// Package fds is a detmap fixture standing in for a deterministic protocol
// package: order-sensitive map ranges must fire, order-insensitive and
// sort-before-use patterns must not.
package fds

import "sort"

type NodeID uint32

type bitset struct{ bits []uint64 }

func (b *bitset) Set(i uint32)      { b.bits[i/64] |= 1 << (i % 64) }
func (b *bitset) Remove(i uint32)   { b.bits[i/64] &^= 1 << (i % 64) }
func (b *bitset) Mix(i, j uint32)   {}
func (b *bitset) Observe(v float64) {}

type proto struct {
	members map[NodeID]bool
	seen    map[NodeID]int
	order   []NodeID
	last    NodeID
	total   int
	ids     bitset
}

// badLastWins leaks iteration order into state that outlives the loop.
func (p *proto) badLastWins() {
	for id := range p.members {
		p.last = id // want `loop-dependent value assigned to p\.last`
	}
}

// badEmit calls an effectful function per iteration in map order.
func (p *proto) badEmit(emit func(NodeID)) {
	for id := range p.members {
		emit(id) // want `call whose effect the analyzer cannot prove order-insensitive`
	}
}

// badFloatSum: FP addition is not associative.
func (p *proto) badFloatSum(w map[NodeID]float64) float64 {
	var sum float64
	for _, v := range w {
		sum += v // want `non-integer`
	}
	return sum
}

// badUnsorted collects keys but never sorts them.
func (p *proto) badUnsorted() []NodeID {
	var out []NodeID
	for id := range p.members {
		out = append(out, id) // want `never sorted in this block`
	}
	return out
}

// badEarlyValue returns an iteration-dependent value from a predicate that
// several keys can satisfy.
func (p *proto) badEarlyValue(min NodeID) NodeID {
	for id := range p.members {
		if id > min {
			return id // want `early exit returns an iteration-dependent value`
		}
	}
	return 0
}

// badCondition branches on state the loop itself accumulates.
func (p *proto) badCondition() int {
	n := 0
	for range p.members {
		n++
		if n > 3 { // want `branch condition reads loop-carried state`
			break // want `early exit from a loop that also accumulates state`
		}
	}
	return n
}

// goodCount: commutative integer accumulation.
func (p *proto) goodCount() int {
	n := 0
	for _, v := range p.seen {
		n += v
		n++
	}
	return n
}

// goodSetOps: writes into maps/bitsets keyed by the iteration key.
func (p *proto) goodSetOps(dst map[NodeID]int) {
	for id, v := range p.seen {
		dst[id] = v + 1
		dst[id] = dst[id] + 1 // reading the element being written is fine
		p.ids.Set(uint32(id))
		delete(p.members, id)
	}
}

// goodSorted collects keys and sorts before use.
func (p *proto) goodSorted() []NodeID {
	keys := make([]NodeID, 0, len(p.members))
	for id := range p.members {
		keys = append(keys, id)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// goodExistence: single key-equality early exit with no other effects.
func (p *proto) goodExistence(want NodeID) bool {
	for id := range p.members {
		if id == want {
			return true
		}
	}
	return false
}

// goodConstExit: single exit returning constants under any pure predicate.
func (p *proto) goodConstExit(min NodeID) bool {
	for id := range p.members {
		if id > min {
			return true
		}
	}
	return false
}

// goodFlag: the same constant from every site — idempotent.
func (p *proto) goodFlag(min NodeID) bool {
	any := false
	for id := range p.members {
		if id > min {
			any = true
		}
	}
	return any
}

// goodMinMax: commutative min/max reduction.
func (p *proto) goodMinMax() NodeID {
	var lo NodeID
	for id := range p.members {
		lo = min(lo, id)
	}
	return lo
}

// badSelfInsert grows the map being ranged: the spec leaves it unspecified
// whether the new entries are visited.
func (p *proto) badSelfInsert() {
	for id := range p.members {
		p.members[id+1] = true // want `insert into the map being ranged`
	}
}

// badCollide writes an iteration-dependent value under a key that does not
// mention the range key: two iterations can race into the same slot.
func (p *proto) badCollide(dst map[NodeID]NodeID) {
	for id := range p.members {
		dst[0] = id // want `map write to a possibly colliding key with an iteration-dependent value`
	}
}

// goodSelectorBase: the written map may be reached through a selector, not
// just a bare identifier.
func (p *proto) goodSelectorBase(other *proto) {
	for id := range p.members {
		other.seen[id] = 1
	}
}

// goodCommaOK: comma-ok reads from pure sources define pure body-locals.
func (p *proto) goodCommaOK(dst map[NodeID]int, boxed map[NodeID]any) int {
	n := 0
	for id := range p.members {
		if _, ok := dst[id]; ok {
			continue
		}
		v, ok := boxed[id]
		if !ok {
			continue
		}
		if _, isNode := v.(NodeID); isNode {
			n++
		}
	}
	return n
}

// allowed demonstrates the escape hatch with a mandatory justification on
// the flagged statement.
func (p *proto) allowed(emit func(NodeID)) {
	for id := range p.members {
		emit(id) //lint:allow detmap -- fixture: emit is order-insensitive by construction
	}
}
