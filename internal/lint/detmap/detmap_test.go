package detmap_test

import (
	"testing"

	"clusterfds/internal/lint/detmap"
	"clusterfds/internal/lint/lintest"
)

func TestDetmap(t *testing.T) {
	lintest.Run(t, "testdata", detmap.Analyzer,
		"clusterfds/internal/fds",      // firing + non-firing patterns
		"clusterfds/internal/analysis", // outside the deterministic set: never fires
	)
}
