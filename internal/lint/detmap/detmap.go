// Package detmap flags range-over-map loops in the deterministic simulator
// packages whose effects can depend on Go's randomized map iteration order.
//
// The golden-trace determinism test catches an order leak only after the
// fact, and only on the one scenario it pins. This analyzer catches the
// bug class at compile time: inside internal/{sim,fds,radio,cluster,
// intercluster,membership,sleep,mobility,scenario,montecarlo}, a `for k :=
// range m` over a map must be provably order-insensitive, sort its keys
// before acting on them, or carry an explicit justification.
//
// A loop body is accepted as order-insensitive when every statement is one
// of:
//
//   - a commutative accumulation into an integer: x++, x--, x += e,
//     x -= e, x |= e, x &= e, x ^= e, x = x + e, or x = max(x, e) /
//     min(x, e) with an iteration-pure e (float accumulation is rejected:
//     FP addition is not associative);
//   - an idempotent flag: x = <constant>, provided every assignment to x in
//     the loop stores the same constant;
//   - a write to another map or set keyed by iteration-pure expressions
//     with an iteration-pure value: m2[k] = e, delete(m2, k), or a call to
//     a method named Set/Unset/Add/Insert/Delete/Remove/Clear with
//     iteration-pure arguments (bitset/counter-style commutative ops). A
//     write whose key does not mention the range key while its value does
//     mention a loop variable is rejected (distinct iterations could race
//     into one colliding key), as is any insert into the map being ranged
//     (the spec leaves it unspecified whether new entries are visited);
//   - a comma-ok read — v, ok := m2[k] or v, ok := x.(T) — from an
//     iteration-pure source into body-local variables, which then count as
//     iteration-pure themselves;
//   - collecting keys into a slice — xs = append(xs, k) — provided xs is
//     passed to a sort (sort.*, slices.Sort*, or any function whose name
//     contains "sort") later in the same enclosing block;
//   - an if statement with an iteration-pure condition whose branches are
//     themselves order-insensitive; a nested loop whose body is
//     order-insensitive; continue; panic.
//
// An expression is iteration-pure when it reads only loop variables,
// loop-invariant state, and constants — never a variable the loop itself
// assigns. Early exits (break / return) are accepted only for pure
// existence checks: a body with no other effects that exits from a single
// site, either returning constants or guarded by an equality test on the
// range key (at most one key can match, so iteration order cannot pick a
// different winner).
//
// Everything else is reported, at the statement that leaks the order.
// Deliberate, justified exceptions put `//lint:allow detmap -- reason` on
// (or directly above) that statement.
//
// _test.go files are exempt: the invariant guards the simulator's own
// event order, not the assertions around it.
package detmap

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"clusterfds/internal/lint"
)

// Analyzer is the detmap invariant check.
var Analyzer = &lint.Analyzer{
	Name: "detmap",
	Doc: "flag range-over-map loops in the deterministic simulator packages " +
		"whose observable effects can depend on map iteration order",
	Run: run,
}

func run(pass *lint.Pass) error {
	if !lint.DeterministicPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if lint.TestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			c := &checker{pass: pass, rng: rng}
			c.check()
			return true
		})
	}
	return nil
}

// checker analyzes one range-over-map loop.
type checker struct {
	pass *lint.Pass
	rng  *ast.RangeStmt

	// loopVars are the range key/value variables plus nested loop
	// variables: reading them is iteration-pure.
	loopVars map[types.Object]bool
	// assigned are objects written anywhere in the body (accumulators,
	// flags, collectors, locals): reading them is NOT iteration-pure.
	assigned map[types.Object]bool
	// pureLocals are body-declared variables whose initializer was pure
	// when processed; reading them is pure.
	pureLocals map[types.Object]bool
	// constVals tracks the constant each flag variable stores, to reject
	// two different constants racing into the same variable; constFieldVals
	// does the same for field/pointer targets, keyed by rendered path.
	constVals      map[types.Object]string
	constFieldVals map[string]string
	// collectors are append targets that must be sorted after the loop.
	collectors map[types.Object]token.Pos
	// sameKeyMap allows `m2[k]` to appear in the RHS of `m2[k] = ...`.
	sameKeyExempt string

	hasWrites bool
	exits     []exitSite
	problems  []problem
}

type problem struct {
	pos    token.Pos
	reason string
}

type exitSite struct {
	pos token.Pos
	// constant results (or none) — safe from any single exit site.
	constResults bool
	// pure results guarded by a key-equality test — at most one match.
	keyGuarded bool
}

func (c *checker) check() {
	info := c.pass.TypesInfo
	c.loopVars = make(map[types.Object]bool)
	c.assigned = make(map[types.Object]bool)
	c.pureLocals = make(map[types.Object]bool)
	c.constVals = make(map[types.Object]string)
	c.constFieldVals = make(map[string]string)
	c.collectors = make(map[types.Object]token.Pos)
	for _, v := range []ast.Expr{c.rng.Key, c.rng.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				c.loopVars[obj] = true
			}
		}
	}
	// Pass 1: collect every assigned object so purity checks in pass 2 see
	// writes that occur later in the body.
	c.collectAssigned(c.rng.Body)
	// Pass 2: classify statements.
	c.block(c.rng.Body, false)
	// Early-exit policy.
	if len(c.exits) > 0 {
		if c.hasWrites {
			for _, e := range c.exits {
				c.problems = append(c.problems, problem{e.pos,
					"early exit from a loop that also accumulates state: which iterations ran depends on map order"})
			}
		} else if len(c.exits) == 1 {
			e := c.exits[0]
			if !e.constResults && !e.keyGuarded {
				c.problems = append(c.problems, problem{e.pos,
					"early exit returns an iteration-dependent value: a different map order picks a different result"})
			}
		} else {
			allGuarded := true
			for _, e := range c.exits {
				if !e.keyGuarded {
					allGuarded = false
				}
			}
			if !allGuarded {
				for _, e := range c.exits {
					c.problems = append(c.problems, problem{e.pos,
						"multiple early exits: map order decides which one fires"})
				}
			}
		}
	}
	// Collector policy: appended key slices must be sorted afterwards.
	for obj, at := range c.collectors {
		if !c.sortedLater(obj) {
			c.problems = append(c.problems, problem{at,
				"keys collected from the map range into " + obj.Name() + " are never sorted in this block"})
		}
	}
	for _, p := range c.problems {
		c.pass.Reportf(p.pos,
			"map iteration order is observable here (%s); make the loop order-insensitive, sort the keys first, or add //lint:allow detmap -- reason",
			p.reason)
	}
}

// collectAssigned records every object assigned (or ++/--) in the body.
func (c *checker) collectAssigned(body ast.Node) {
	info := c.pass.TypesInfo
	record := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			obj := info.Uses[id]
			if obj == nil {
				obj = info.Defs[id]
			}
			if obj != nil {
				c.assigned[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				record(l)
			}
		case *ast.IncDecStmt:
			record(n.X)
		}
		return true
	})
}

// block classifies each statement of a block (or branch).
func (c *checker) block(b *ast.BlockStmt, guardedByKeyEq bool) {
	for _, st := range b.List {
		c.stmt(st, guardedByKeyEq)
	}
}

func (c *checker) stmt(st ast.Stmt, guardedByKeyEq bool) {
	switch st := st.(type) {
	case *ast.AssignStmt:
		c.assignStmt(st)
	case *ast.IncDecStmt:
		c.incDec(st)
	case *ast.ExprStmt:
		c.exprStmt(st)
	case *ast.BranchStmt:
		switch st.Tok {
		case token.CONTINUE:
			// harmless
		case token.BREAK:
			c.exits = append(c.exits, exitSite{pos: st.Pos(), constResults: true, keyGuarded: guardedByKeyEq})
		default: // goto, labeled break
			c.problems = append(c.problems, problem{st.Pos(), "control transfer out of the loop"})
		}
	case *ast.ReturnStmt:
		e := exitSite{pos: st.Pos(), constResults: true, keyGuarded: guardedByKeyEq}
		for _, r := range st.Results {
			if c.pass.TypesInfo.Types[r].Value == nil {
				e.constResults = false
				if !c.pure(r) {
					e.keyGuarded = false
				}
			}
		}
		c.exits = append(c.exits, e)
	case *ast.IfStmt:
		c.ifStmt(st, guardedByKeyEq)
	case *ast.BlockStmt:
		c.block(st, guardedByKeyEq)
	case *ast.RangeStmt:
		c.nestedLoop(st.Key, st.Value, st.X, st.Body, guardedByKeyEq)
	case *ast.ForStmt:
		if st.Init != nil {
			c.stmt(st.Init, guardedByKeyEq)
		}
		if st.Cond != nil && !c.pure(st.Cond) {
			// Loop conditions over accumulated state are fine only when the
			// accumulation itself is order-insensitive AND the loop runs to
			// completion; keep it simple and treat the inner for like a
			// guarded block.
		}
		if st.Post != nil {
			c.stmt(st.Post, guardedByKeyEq)
		}
		c.block(st.Body, guardedByKeyEq)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.declVars(vs)
				}
			}
		}
	case *ast.EmptyStmt:
	default:
		c.problems = append(c.problems, problem{st.Pos(), "statement of a kind the analyzer cannot prove order-insensitive"})
	}
}

// nestedLoop handles an inner for/range: its loop variables become pure and
// its body is classified under the same rules.
func (c *checker) nestedLoop(key, value, x ast.Expr, body *ast.BlockStmt, guarded bool) {
	info := c.pass.TypesInfo
	if x != nil && !c.pure(x) {
		c.problems = append(c.problems, problem{x.Pos(), "inner loop ranges over loop-carried state"})
	}
	for _, v := range []ast.Expr{key, value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				c.loopVars[obj] = true
			}
		}
	}
	c.block(body, guarded)
}

func (c *checker) declVars(vs *ast.ValueSpec) {
	info := c.pass.TypesInfo
	for i, name := range vs.Names {
		obj := info.Defs[name]
		if obj == nil {
			continue
		}
		pure := true
		if i < len(vs.Values) && !c.pure(vs.Values[i]) {
			pure = false
		}
		if pure {
			c.pureLocals[obj] = true
		}
	}
}

func (c *checker) incDec(st *ast.IncDecStmt) {
	if !c.integerAccumulator(st.X) {
		c.problems = append(c.problems, problem{st.Pos(), "non-integer increment"})
		return
	}
	c.hasWrites = true
}

func (c *checker) exprStmt(st *ast.ExprStmt) {
	call, ok := ast.Unparen(st.X).(*ast.CallExpr)
	if !ok {
		c.problems = append(c.problems, problem{st.Pos(), "expression statement with possible effects"})
		return
	}
	info := c.pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "delete":
				if c.allPure(call.Args) {
					c.hasWrites = true
					return
				}
				c.problems = append(c.problems, problem{st.Pos(), "delete with loop-carried arguments"})
				return
			case "panic", "print", "println", "clear":
				return
			}
		}
	}
	// Commutative set/counter method calls: Set, Add, Insert, ... with
	// iteration-pure arguments. These are the bitset/metrics idioms the
	// dense-state rewrite introduced.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Set", "Unset", "Add", "Insert", "Delete", "Remove", "Clear", "Observe":
			if c.pure(sel.X) && c.allPure(call.Args) {
				c.hasWrites = true
				return
			}
		}
	}
	c.problems = append(c.problems, problem{st.Pos(), "call whose effect the analyzer cannot prove order-insensitive"})
}

func (c *checker) ifStmt(st *ast.IfStmt, guarded bool) {
	if st.Init != nil {
		c.stmt(st.Init, guarded)
	}
	if !c.pure(st.Cond) {
		c.problems = append(c.problems, problem{st.Cond.Pos(), "branch condition reads loop-carried state"})
	}
	keyEq := guarded || c.keyEquality(st.Cond)
	c.block(st.Body, keyEq)
	switch e := st.Else.(type) {
	case *ast.BlockStmt:
		c.block(e, guarded)
	case *ast.IfStmt:
		c.ifStmt(e, guarded)
	}
}

// keyEquality reports whether cond is `key == pure` or `pure == key` for the
// range key variable: at most one iteration can satisfy it.
func (c *checker) keyEquality(cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return false
	}
	keyObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		obj := c.pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = c.pass.TypesInfo.Defs[id]
		}
		if obj == nil || !c.loopVars[obj] {
			return false
		}
		// Must be THE range key (first var) — value equality can match many.
		if id2, ok := c.rng.Key.(*ast.Ident); ok {
			kobj := c.pass.TypesInfo.Defs[id2]
			return kobj == obj
		}
		return false
	}
	return (keyObj(be.X) && c.pure(be.Y)) || (keyObj(be.Y) && c.pure(be.X))
}

func (c *checker) assignStmt(st *ast.AssignStmt) {
	// x op= e forms.
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
		token.AND_ASSIGN, token.XOR_ASSIGN:
		l := st.Lhs[0]
		if !c.integerAccumulator(l) {
			c.problems = append(c.problems, problem{st.Pos(),
				"accumulation into a non-integer (float addition is not associative; string/slice concat is ordered)"})
			return
		}
		if !c.pure(st.Rhs[0]) {
			c.problems = append(c.problems, problem{st.Pos(), "accumulation of a loop-carried value"})
			return
		}
		c.hasWrites = true
		return
	case token.ASSIGN, token.DEFINE:
	default:
		c.problems = append(c.problems, problem{st.Pos(), "assignment operator the analyzer cannot prove commutative"})
		return
	}
	if len(st.Lhs) != len(st.Rhs) {
		if c.commaOK(st) {
			return
		}
		c.problems = append(c.problems, problem{st.Pos(), "multi-value assignment the analyzer cannot prove order-insensitive"})
		return
	}
	for i, l := range st.Lhs {
		r := st.Rhs[i]
		c.onePlainAssign(st, l, r)
	}
}

func (c *checker) onePlainAssign(st *ast.AssignStmt, l, r ast.Expr) {
	info := c.pass.TypesInfo
	l = ast.Unparen(l)

	// Blank: pure discard.
	if id, ok := l.(*ast.Ident); ok && id.Name == "_" {
		if !c.pure(r) {
			c.problems = append(c.problems, problem{st.Pos(), "discard of a loop-carried value"})
		}
		return
	}

	// m2[idx] = e — map/set write with pure key and value. Reading the same
	// element (m2[idx]) inside e is fine: each key is visited once.
	if ix, ok := l.(*ast.IndexExpr); ok {
		if _, isMap := info.TypeOf(ix.X).Underlying().(*types.Map); isMap {
			if exprKey(ix.X) == exprKey(c.rng.X) {
				c.problems = append(c.problems, problem{st.Pos(),
					"insert into the map being ranged: the spec leaves it unspecified whether new entries are visited"})
				return
			}
			c.sameKeyExempt = exprKey(ix)
			pureIdx := c.pure(ix.Index)
			pureRHS := c.pure(r)
			c.sameKeyExempt = ""
			if !c.pure(ix.X) || !pureIdx || !pureRHS {
				c.problems = append(c.problems, problem{st.Pos(), "map write with loop-carried key or value"})
				return
			}
			// Injectivity heuristic: a key that mentions the range key is
			// (typically) distinct per iteration; a key that does not, paired
			// with a value that reads a loop variable, lets two iterations
			// race different values into one colliding slot.
			if !c.mentionsRangeKey(ix.Index) && c.mentionsLoopVar(r) {
				c.problems = append(c.problems, problem{st.Pos(),
					"map write to a possibly colliding key with an iteration-dependent value: the last iteration in map order wins"})
				return
			}
			c.hasWrites = true
			return
		}
		c.problems = append(c.problems, problem{st.Pos(), "indexed write the analyzer cannot prove order-insensitive"})
		return
	}

	// Field / pointer targets outlive the loop: only an idempotent
	// same-constant store is order-insensitive.
	if _, isSel := l.(*ast.SelectorExpr); isSel {
		c.fieldAssign(st, l, r)
		return
	}
	if _, isStar := l.(*ast.StarExpr); isStar {
		c.fieldAssign(st, l, r)
		return
	}

	id, ok := l.(*ast.Ident)
	if !ok {
		c.problems = append(c.problems, problem{st.Pos(), "write through " + exprKey(l) + " the analyzer cannot prove order-insensitive"})
		return
	}
	obj := info.Defs[id]
	defined := st.Tok == token.DEFINE && obj != nil
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil {
		return
	}

	// xs = append(xs, pure...) — key collection; must be sorted later.
	if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
		if bid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && bid.Name == "append" {
			if _, isBuiltin := info.Uses[bid].(*types.Builtin); isBuiltin && len(call.Args) >= 1 {
				if first, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && sameObj(info, first, id) && c.allPure(call.Args[1:]) {
					c.collectors[obj] = st.Pos()
					c.hasWrites = true
					return
				}
			}
		}
		// x = max(x, pure) / min(x, pure): commutative, associative.
		if bid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (bid.Name == "max" || bid.Name == "min") {
			if _, isBuiltin := info.Uses[bid].(*types.Builtin); isBuiltin && len(call.Args) == 2 {
				if first, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && sameObj(info, first, id) && c.pure(call.Args[1]) {
					c.hasWrites = true
					return
				}
			}
		}
	}

	// x = x + pure (and |, &, ^): spelled-out accumulation.
	if be, ok := ast.Unparen(r).(*ast.BinaryExpr); ok {
		switch be.Op {
		case token.ADD, token.SUB, token.OR, token.AND, token.XOR:
			if lid, ok := ast.Unparen(be.X).(*ast.Ident); ok && sameObj(info, lid, id) && c.pure(be.Y) && c.integerAccumulator(l) {
				c.hasWrites = true
				return
			}
		}
	}

	// Constant flag: x = <const>, same constant at every assignment site.
	if tv := info.Types[r]; tv.Value != nil {
		val := tv.Value.ExactString()
		if prev, ok := c.constVals[obj]; ok && prev != val {
			c.problems = append(c.problems, problem{st.Pos(),
				"two different constants race into " + id.Name + ": the last iteration in map order wins"})
			return
		}
		c.constVals[obj] = val
		c.hasWrites = true
		return
	}

	// Body-local temp with a pure initializer: reading it stays pure.
	if defined || c.bodyLocal(obj) {
		if c.pure(r) {
			c.pureLocals[obj] = true
			return
		}
		c.problems = append(c.problems, problem{st.Pos(), "local accumulates a loop-carried value"})
		return
	}

	c.problems = append(c.problems, problem{st.Pos(),
		"loop-dependent value assigned to " + id.Name + ", which outlives the loop: the last iteration in map order wins"})
}

// fieldAssign classifies `x.f = e` / `*p = e` inside the loop: allowed only
// as an idempotent flag (the same constant from every site).
func (c *checker) fieldAssign(st *ast.AssignStmt, l, r ast.Expr) {
	info := c.pass.TypesInfo
	key := exprKey(l)
	if tv := info.Types[r]; tv.Value != nil {
		val := tv.Value.ExactString()
		if prev, ok := c.constFieldVals[key]; ok && prev != val {
			c.problems = append(c.problems, problem{st.Pos(),
				"two different constants race into " + key + ": the last iteration in map order wins"})
			return
		}
		c.constFieldVals[key] = val
		c.hasWrites = true
		return
	}
	c.problems = append(c.problems, problem{st.Pos(),
		"loop-dependent value assigned to " + key + ", which outlives the loop: the last iteration in map order wins"})
}

// commaOK accepts `v, ok := m2[k]` and `v, ok := x.(T)` with an
// iteration-pure source and body-local targets, which then count as
// iteration-pure reads themselves. Channel receives and function calls are
// deliberately excluded: their results can depend on visit order.
func (c *checker) commaOK(st *ast.AssignStmt) bool {
	if len(st.Rhs) != 1 {
		return false
	}
	switch r := ast.Unparen(st.Rhs[0]).(type) {
	case *ast.IndexExpr:
		if !c.pure(r.X) || !c.pure(r.Index) {
			return false
		}
	case *ast.TypeAssertExpr:
		if !c.pure(r.X) {
			return false
		}
	default:
		return false
	}
	info := c.pass.TypesInfo
	var targets []types.Object
	for _, l := range st.Lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok {
			return false
		}
		if id.Name == "_" {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil || !c.bodyLocal(obj) {
			return false
		}
		targets = append(targets, obj)
	}
	for _, obj := range targets {
		c.pureLocals[obj] = true
	}
	return true
}

// mentionsRangeKey reports whether e reads the loop's range-key variable.
func (c *checker) mentionsRangeKey(e ast.Expr) bool {
	kid, ok := c.rng.Key.(*ast.Ident)
	if !ok || kid.Name == "_" {
		return false
	}
	kobj := c.pass.TypesInfo.Defs[kid]
	if kobj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == kobj {
			found = true
		}
		return !found
	})
	return found
}

// mentionsLoopVar reports whether e reads any loop variable (range key,
// range value, or a nested loop's variables).
func (c *checker) mentionsLoopVar(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Uses[id]; obj != nil && c.loopVars[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// bodyLocal reports whether obj is declared inside the range body.
func (c *checker) bodyLocal(obj types.Object) bool {
	return obj.Pos() >= c.rng.Body.Pos() && obj.Pos() <= c.rng.Body.End()
}

// integerAccumulator reports whether l is an addressable integer-typed
// expression with an iteration-pure path.
func (c *checker) integerAccumulator(l ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(l)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 {
		return false
	}
	// The accumulator location itself must be iteration-pure (e.g. not
	// indexed by an accumulated counter).
	switch e := ast.Unparen(l).(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return c.pure(e.X)
	case *ast.IndexExpr:
		return c.pure(e.X) && c.pure(e.Index)
	}
	return false
}

func (c *checker) allPure(exprs []ast.Expr) bool {
	for _, e := range exprs {
		if !c.pure(e) {
			return false
		}
	}
	return true
}

// pure reports whether e reads only loop variables, loop-invariant state,
// and constants — never an object the loop assigns.
func (c *checker) pure(e ast.Expr) bool {
	if e == nil {
		return true
	}
	info := c.pass.TypesInfo
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		if !pure {
			return false
		}
		switch n := n.(type) {
		case *ast.IndexExpr:
			if c.sameKeyExempt != "" && exprKey(n) == c.sameKeyExempt {
				return false // reading the element being written: same key
			}
		case *ast.Ident:
			obj := info.Uses[n]
			if obj == nil {
				obj = info.Defs[n]
			}
			if obj == nil {
				return true
			}
			if c.loopVars[obj] || c.pureLocals[obj] {
				return true
			}
			if c.assigned[obj] {
				pure = false
			}
		}
		return true
	})
	return pure
}

// sortedLater reports whether the collector object is passed to a sort call
// in a statement after the range loop within the enclosing blocks.
func (c *checker) sortedLater(obj types.Object) bool {
	found := false
	for _, f := range c.pass.Files {
		if f.Pos() <= c.rng.Pos() && c.rng.End() <= f.End() {
			ast.Inspect(f, func(n ast.Node) bool {
				if found {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok || call.Pos() < c.rng.End() {
					return true
				}
				if !isSortCall(c.pass.TypesInfo, call) {
					return true
				}
				mentions := false
				for _, a := range call.Args {
					ast.Inspect(a, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							if o := c.pass.TypesInfo.Uses[id]; o == obj {
								mentions = true
							}
						}
						return !mentions
					})
				}
				if !mentions {
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						ast.Inspect(sel.X, func(m ast.Node) bool {
							if id, ok := m.(*ast.Ident); ok {
								if o := c.pass.TypesInfo.Uses[id]; o == obj {
									mentions = true
								}
							}
							return !mentions
						})
					}
				}
				if mentions {
					found = true
				}
				return !found
			})
		}
	}
	return found
}

// isSortCall recognizes sort.*, slices.Sort*, methods named Sort, and any
// function whose name mentions sorting.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	fn := lint.PkgFunc(info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "sort", "slices":
			return true
		}
	}
	return strings.Contains(strings.ToLower(fn.Name()), "sort")
}

func sameObj(info *types.Info, a, b *ast.Ident) bool {
	oa := info.Uses[a]
	if oa == nil {
		oa = info.Defs[a]
	}
	ob := info.Uses[b]
	if ob == nil {
		ob = info.Defs[b]
	}
	return oa != nil && oa == ob
}

// exprKey renders an expression for same-key comparison and diagnostics.
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprKey(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprKey(e.X) + "[" + exprKey(e.Index) + "]"
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.StarExpr:
		return "*" + exprKey(e.X)
	case *ast.CallExpr:
		return exprKey(e.Fun) + "(...)"
	case *ast.BasicLit:
		return e.Value
	default:
		return "?"
	}
}
