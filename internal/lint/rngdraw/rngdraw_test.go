package rngdraw_test

import (
	"testing"

	"clusterfds/internal/lint/lintest"
	"clusterfds/internal/lint/rngdraw"
)

func TestRngDraw(t *testing.T) {
	lintest.Run(t, "testdata", rngdraw.Analyzer,
		"clusterfds/internal/shard",
	)
}
