// Package shard is the rngdraw fixture: randomness comes from the sending
// host's own stream, in pinned order, guarded only by the sender's state.
package shard

import (
	"math/rand"

	"clusterfds/internal/sim"
)

type engine struct {
	rng     []sim.Stream
	rands   []*rand.Rand
	crashed []bool
	relay   []bool
	posX    []float64
}

// --- firing -----------------------------------------------------------------

// badMapDraw draws in map iteration order: which host draws first varies
// run to run, so every stream diverges.
func (e *engine) badMapDraw(pend map[int]bool) uint64 {
	var last uint64
	for i := range pend {
		last = e.rng[i].Uint64() // want `randomness drawn inside a range over a map`
	}
	return last
}

// badReceiverExit: an early-exit guard on another host's state makes host
// i's draw count depend on the receiver.
func (e *engine) badReceiverExit(i, m int) int64 {
	if e.crashed[m] {
		return 0
	}
	return e.rng[i].Int63n(10) // want `draw from e\.rng\[i\] conditioned on receiver state \(e\.crashed\[m\]\)`
}

// badReceiverIf: the enclosing-if form of the same bug.
func (e *engine) badReceiverIf(i, m int) {
	if !e.relay[m] {
		e.rng[i].Uint64() // want `draw from e\.rng\[i\] conditioned on receiver state \(e\.relay\[m\]\)`
	}
}

// badLocalRand: the subject follows a local stream binding.
func (e *engine) badLocalRand(idx, m int) float64 {
	rng := e.rands[idx]
	if e.crashed[m] {
		return 0
	}
	return rng.Float64() // want `draw from rng conditioned on receiver state \(e\.crashed\[m\]\)`
}

// --- non-firing -------------------------------------------------------------

// goodOwnGuard: the sender may consult its own state before drawing.
func (e *engine) goodOwnGuard(i int) uint64 {
	if e.crashed[i] {
		return 0
	}
	return e.rng[i].Uint64()
}

// goodOwnGuardMixed: several own-state guards compose (the learn pattern:
// `if !news || e.relayPend[i] { return }` then draw).
func (e *engine) goodOwnGuardMixed(i int, news bool) int64 {
	if !news || e.relay[i] {
		return 0
	}
	return e.rng[i].Int63n(100)
}

// goodGeometry: geometry compares and identity tests are functions of the
// deterministic field, not receiver liveness.
func (e *engine) goodGeometry(i, m int) uint64 {
	if m == i {
		return 0
	}
	if e.posX[m]-e.posX[i] > 5 {
		return 0
	}
	return e.rng[i].Uint64()
}

// goodOwnCond: the draw inside its own short-circuit condition is the
// sanctioned loss-draw shape.
func (e *engine) goodOwnCond(i int, p float64) bool {
	if p > 0 && e.rng[i].Float64() < p {
		return true
	}
	return false
}

// goodPinnedLoop: slice iteration is pinned; per-neighbor draws are fine.
func (e *engine) goodPinnedLoop(i int, nbs []int) {
	for range nbs {
		e.rng[i].Uint64()
	}
}

// goodSubjectless: a bare stream parameter has no per-host subject; only
// the map-order rule applies to it.
func (e *engine) goodSubjectless(r *rand.Rand, m int) float64 {
	if e.crashed[m] {
		return 0
	}
	return r.Float64()
}

// --- suppression ------------------------------------------------------------

// allowedMapDraw demonstrates the justified escape hatch.
func (e *engine) allowedMapDraw(pend map[int]bool) {
	for i := range pend {
		e.rng[i].Uint64() //lint:allow rngdraw -- fixture: draws feed a statistic, not event order
	}
}
