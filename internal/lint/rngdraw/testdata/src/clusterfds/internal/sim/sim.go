// Package sim is the rngdraw fixture stub for the per-host stream type;
// the analyzer matches Stream by name and import-path suffix.
package sim

type Stream struct{ s uint64 }

func (s *Stream) Uint64() uint64 {
	s.s = s.s*6364136223846793005 + 1442695040888963407
	return s.s
}

func (s *Stream) Int63n(n int64) int64 {
	return int64(s.Uint64()>>1) % n
}

func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}
