// Package rngdraw machine-checks the sender-side randomness invariant
// (DESIGN.md §12): every random draw in the deterministic packages must
// come from the consuming host's private sim.Stream, in an order pinned by
// the simulation itself. Two ways a draw's order or count can come loose
// are policed:
//
//   - draws inside a range over a map: iteration order is unpinned, so
//     which host draws first — and therefore every stream's contents —
//     varies run to run;
//
//   - draws conditioned on receiver state: a guard like `if e.crashed[m]`
//     (m another host) in front of a draw from host i's stream makes host
//     i's draw count depend on what a *different* host's state looks like
//     under the current decomposition — the classic source of serial vs.
//     sharded divergence. Guards on the drawing host's own state
//     (`if e.crashed[i]` before `e.rng[i]`) are the sanctioned shape, as
//     are geometry comparisons and identity tests, which are functions of
//     the deterministic field, not of execution order.
//
// A draw is a call to one of the math/rand-style methods (Uint64, Intn,
// Float64, ...) on a sim.Stream or *math/rand.Rand receiver. The drawing
// host — the draw's subject — is the innermost index in the receiver
// chain (`i` for e.rng[i].Int63n(...), `idx` for rng := e.rands[idx]).
// Receiver-state guards are recognized as indexing a bool-element
// container with anything other than the subject. Draws with no subject
// (a bare *rand.Rand parameter) are only held to the map-order rule.
//
// Suppressions use `//lint:allow rngdraw -- reason`.
package rngdraw

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"clusterfds/internal/lint"
)

// Analyzer is the sender-side randomness check.
var Analyzer = &lint.Analyzer{
	Name: "rngdraw",
	Doc: "flag random draws made in map iteration order or conditioned on " +
		"receiver state; randomness must be drawn sender-side from per-host streams",
	Run: run,
}

// drawMethods are the draw verbs of math/rand.Rand and sim.Stream.
var drawMethods = map[string]bool{
	"Uint32": true, "Uint64": true, "Int63": true, "Int63n": true,
	"Int31": true, "Int31n": true, "Intn": true, "Int": true,
	"Float64": true, "Float32": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true,
}

func run(pass *lint.Pass) error {
	if !lint.DeterministicPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if lint.TestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{
				pass:      pass,
				info:      pass.TypesInfo,
				subjectOf: subjects(pass.TypesInfo, fd.Body),
			}
			w.block(fd.Body, ctx{})
		}
	}
	return nil
}

// ctx carries what governs the statement being walked: the conditions of
// enclosing (and preceding early-exit) if statements, and whether a map
// range encloses it.
type ctx struct {
	conds      []ast.Expr
	inMapRange bool
}

// with returns cx extended by one governing condition, copying so sibling
// branches don't see each other's conditions.
func (cx ctx) with(cond ast.Expr) ctx {
	conds := make([]ast.Expr, len(cx.conds), len(cx.conds)+1)
	copy(conds, cx.conds)
	return ctx{conds: append(conds, cond), inMapRange: cx.inMapRange}
}

type walker struct {
	pass      *lint.Pass
	info      *types.Info
	subjectOf map[types.Object]string
}

// block walks a statement list: each early-exit if (a body ending in
// return/continue/break and no else) adds its condition to what governs
// every later statement in the block.
func (w *walker) block(b *ast.BlockStmt, cx ctx) {
	for _, st := range b.List {
		w.stmt(st, cx)
		if ifs, ok := st.(*ast.IfStmt); ok && ifs.Else == nil && endsInExit(ifs.Body) {
			cx = cx.with(ifs.Cond)
		}
	}
}

func (w *walker) stmt(s ast.Stmt, cx ctx) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.block(s, cx)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, cx)
		}
		// Draws inside the condition itself are governed only by the
		// enclosing context (`if p > 0 && rng.Float64() < p` is the
		// sanctioned short-circuit draw).
		w.exprs(s.Cond, cx)
		inner := cx.with(s.Cond)
		w.block(s.Body, inner)
		if s.Else != nil {
			w.stmt(s.Else, inner)
		}
	case *ast.RangeStmt:
		w.exprs(s.X, cx)
		body := cx
		if t := w.info.TypeOf(s.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				body.inMapRange = true
			}
		}
		w.block(s.Body, body)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, cx)
		}
		if s.Cond != nil {
			w.exprs(s.Cond, cx)
		}
		if s.Post != nil {
			w.stmt(s.Post, cx)
		}
		w.block(s.Body, cx)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, cx)
		}
		if s.Tag != nil {
			w.exprs(s.Tag, cx)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.exprs(e, cx)
				}
				for _, st := range cc.Body {
					w.stmt(st, cx)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, st := range cc.Body {
					w.stmt(st, cx)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				if cc.Comm != nil {
					w.stmt(cc.Comm, cx)
				}
				for _, st := range cc.Body {
					w.stmt(st, cx)
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, cx)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.exprs(r, cx)
		}
		for _, l := range s.Lhs {
			w.exprs(l, cx)
		}
	case *ast.ExprStmt:
		w.exprs(s.X, cx)
	case *ast.SendStmt:
		w.exprs(s.Chan, cx)
		w.exprs(s.Value, cx)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.exprs(r, cx)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.exprs(v, cx)
					}
				}
			}
		}
	case *ast.GoStmt:
		w.exprs(s.Call, cx)
	case *ast.DeferStmt:
		w.exprs(s.Call, cx)
	case *ast.IncDecStmt:
		w.exprs(s.X, cx)
	}
}

// exprs scans an expression for draw calls under the current context.
// Function literals get a fresh context: their body runs under whatever
// governs their *call* site, which this syntactic pass does not track.
func (w *walker) exprs(x ast.Expr, cx ctx) {
	ast.Inspect(x, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.block(n.Body, ctx{})
			return false
		case *ast.CallExpr:
			if recv, ok := w.drawCall(n); ok {
				w.checkDraw(n, recv, cx)
			}
		}
		return true
	})
}

// drawCall reports whether call is a random draw and returns its receiver
// expression.
func (w *walker) drawCall(call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !drawMethods[sel.Sel.Name] {
		return nil, false
	}
	fn, ok := w.info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false
	}
	if !streamType(sig.Recv().Type()) {
		return nil, false
	}
	return sel.X, true
}

// streamType reports whether t (possibly behind a pointer) is sim.Stream
// or math/rand.Rand.
func streamType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	name, path := named.Obj().Name(), named.Obj().Pkg().Path()
	if name == "Stream" && (path == "sim" || strings.HasSuffix(path, "/sim")) {
		return true
	}
	return name == "Rand" && path == "math/rand"
}

// checkDraw applies the two rules to one draw site.
func (w *walker) checkDraw(call *ast.CallExpr, recv ast.Expr, cx ctx) {
	if cx.inMapRange {
		w.pass.Reportf(call.Pos(), "randomness drawn inside a range over a map; iteration order is unpinned — draw in pinned sender order")
		return
	}
	subject := w.subject(recv)
	if subject == "" {
		return // no per-host subject: the map-order rule is all we can hold it to
	}
	for _, cond := range cx.conds {
		if guard, bad := w.receiverGuard(cond, subject); bad {
			w.pass.Reportf(call.Pos(), "draw from %s conditioned on receiver state (%s); randomness must be drawn sender-side from the host's own stream",
				render(recv), render(guard))
			return
		}
	}
}

// subject resolves which host's stream a draw consumes: the innermost
// index in the receiver chain, following one level of local binding
// (rng := e.rands[idx]).
func (w *walker) subject(recv ast.Expr) string {
	x := recv
	for {
		switch e := ast.Unparen(x).(type) {
		case *ast.IndexExpr:
			return lint.ExprString(e.Index)
		case *ast.SelectorExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		case *ast.UnaryExpr:
			x = e.X
		case *ast.Ident:
			if obj := w.info.Uses[e]; obj != nil {
				return w.subjectOf[obj]
			}
			return ""
		default:
			return ""
		}
	}
}

// render names an expression for a diagnostic, spelling out the index of an
// indexed chain (lint.ExprString elides it) so the subject/guard mismatch is
// visible in the message.
func render(e ast.Expr) string {
	if ix, ok := ast.Unparen(e).(*ast.IndexExpr); ok {
		return lint.ExprString(ix.X) + "[" + lint.ExprString(ix.Index) + "]"
	}
	return lint.ExprString(e)
}

// receiverGuard scans a governing condition for a bool-element container
// indexed by something other than the draw's subject — receiver state.
func (w *walker) receiverGuard(cond ast.Expr, subject string) (*ast.IndexExpr, bool) {
	var guard *ast.IndexExpr
	ast.Inspect(cond, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok || guard != nil {
			return guard == nil
		}
		t := w.info.TypeOf(ix)
		if t == nil {
			return true
		}
		b, ok := t.Underlying().(*types.Basic)
		if !ok || b.Kind() != types.Bool {
			return true
		}
		if lint.ExprString(ix.Index) != subject {
			guard = ix
		}
		return true
	})
	return guard, guard != nil
}

// endsInExit reports whether the block's last statement leaves the
// enclosing flow — the early-exit guard shape whose condition governs
// everything after the if.
func endsInExit(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch s := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK || s.Tok == token.GOTO
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// subjects maps locals bound to an indexed stream back to the index:
// `rng := e.rands[idx]` gives rng the subject "idx".
func subjects(info *types.Info, body *ast.BlockStmt) map[types.Object]string {
	out := make(map[types.Object]string)
	record := func(l, r ast.Expr) {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		x := r
	chain:
		for {
			switch e := ast.Unparen(x).(type) {
			case *ast.IndexExpr:
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil {
					out[obj] = lint.ExprString(e.Index)
				}
				return
			case *ast.SelectorExpr:
				x = e.X
			case *ast.StarExpr:
				x = e.X
			case *ast.UnaryExpr:
				x = e.X
			default:
				break chain
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}
