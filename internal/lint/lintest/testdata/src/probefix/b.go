package probefix

func fileB() int {
	m := 0
	m-- // want `increment or decrement of m`
	m++
	// want `increment or decrement of m`
	q := 0
	q++ // want "increment or decrement of q"
	return m + q
}
