// Package probefix is the lintest self-test fixture, spread over two files
// to prove wants and diagnostics pair up per file.
package probefix

func fileA() int {
	n := 0
	n++ // want `increment or decrement of n`
	return n
}
