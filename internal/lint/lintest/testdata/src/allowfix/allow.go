// Package allowfix exercises //lint:allow placement: a justified directive
// trailing the flagged line, a justified directive on the preceding line,
// and the bare form — which suppresses nothing and is itself a diagnostic.
package allowfix

func trailing() int {
	n := 0
	n++ //lint:allow probe -- fixture: suppressed on the same line
	return n
}

func preceding() int {
	n := 0
	//lint:allow probe -- fixture: suppressed from the line above
	n++
	return n
}

func bare() int {
	n := 0
	n++ //lint:allow probe // want `increment or decrement of n` `needs a justification`
	return n
}
