package lintest_test

import (
	"go/ast"
	"testing"

	"clusterfds/internal/lint"
	"clusterfds/internal/lint/lintest"
)

// probe flags every ++/-- statement: a minimal analyzer for exercising the
// runner itself — multi-file fixtures, want-comment placement, and the
// //lint:allow edge cases — independent of any real invariant.
var probe = &lint.Analyzer{
	Name: "probe",
	Doc:  "flag every increment/decrement statement (lintest self-test)",
	Run: func(pass *lint.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if inc, ok := n.(*ast.IncDecStmt); ok {
					pass.Reportf(inc.Pos(), "increment or decrement of %s", lint.ExprString(inc.X))
				}
				return true
			})
		}
		return nil
	},
}

// TestMultiFileFixture proves wants and diagnostics pair up per file when a
// fixture package spans several files, and that a want comment alone on
// its line attaches to the line above.
func TestMultiFileFixture(t *testing.T) {
	lintest.Run(t, "testdata", probe, "probefix")
}

// TestAllowPlacement covers the suppression edge cases: a justified
// directive trailing the flagged line, a justified directive on the
// preceding line, and the bare form — which suppresses nothing and is
// itself reported.
func TestAllowPlacement(t *testing.T) {
	lintest.Run(t, "testdata", probe, "allowfix")
}
