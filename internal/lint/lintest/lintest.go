// Package lintest is the analysistest-style fixture runner for the fdslint
// analyzers. Fixtures live under <analyzer>/testdata/src/<importpath>/ and
// annotate lines that must be flagged with trailing comments of the form
//
//	x = m // want `regexp`
//
// (backquoted or double-quoted Go strings; several per line allowed). A
// want comment alone on its line attaches to the line above it — for
// flagged lines too long to carry a trailing comment:
//
//	x = someVeryLongExpression(a, b, c)
//	// want `regexp`
//
// Run type-checks the fixture package — resolving imports first against
// the fixture tree, then against the compiled standard library — runs the
// analyzer through the framework's suppression filter, and fails the test
// on any mismatch in either direction.
package lintest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"clusterfds/internal/lint"
)

// Run loads each fixture package below dir (conventionally "testdata") and
// applies the analyzer, comparing diagnostics against // want comments.
func Run(t *testing.T, dir string, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := &loader{
		root: filepath.Join(dir, "src"),
		fset: token.NewFileSet(),
		pkgs: make(map[string]*pkgUnit),
		std:  importer.Default(),
	}
	for _, path := range pkgPaths {
		path := path
		t.Run(path, func(t *testing.T) {
			t.Helper()
			u, err := ld.load(path)
			if err != nil {
				t.Fatalf("loading fixture %s: %v", path, err)
			}
			diags, err := lint.Run(a, u.unit())
			if err != nil {
				t.Fatalf("running %s on %s: %v", a.Name, path, err)
			}
			check(t, ld.fset, u, diags)
		})
	}
}

// Load type-checks one fixture package below dir (conventionally
// "testdata") and returns its unit, for tests that drive an analyzer — or
// an analyzer variant — through lint.Run directly instead of comparing
// against // want comments.
func Load(t *testing.T, dir, pkgPath string) *lint.Unit {
	t.Helper()
	ld := &loader{
		root: filepath.Join(dir, "src"),
		fset: token.NewFileSet(),
		pkgs: make(map[string]*pkgUnit),
		std:  importer.Default(),
	}
	u, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}
	return u.unit()
}

type pkgUnit struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

func (u *pkgUnit) unit() *lint.Unit {
	return &lint.Unit{Fset: u.fset, Files: u.files, Pkg: u.pkg, Info: u.info}
}

// loader type-checks fixture packages, resolving imports against the
// fixture tree first and the standard library second.
type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*pkgUnit
	std  types.Importer
	src  types.Importer
}

func (l *loader) load(path string) (*pkgUnit, error) {
	if u, ok := l.pkgs[path]; ok {
		return u, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := lint.NewInfo()
	conf := &types.Config{Importer: (*fixtureImporter)(l)}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	u := &pkgUnit{fset: l.fset, files: files, pkg: pkg, info: info}
	l.pkgs[path] = u
	return u, nil
}

type fixtureImporter loader

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	l := (*loader)(fi)
	if _, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil {
		u, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return u.pkg, nil
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		// Toolchains without pre-compiled stdlib export data: fall back to
		// type-checking the standard library from source.
		if l.src == nil {
			l.src = importer.ForCompiler(l.fset, "source", nil)
		}
		return l.src.Import(path)
	}
	return pkg, nil
}

// wantRe extracts the quoted patterns of a // want comment.
var wantRe = regexp.MustCompile("//\\s*want\\s+((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)")

var patRe = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

func check(t *testing.T, fset *token.FileSet, u *pkgUnit, diags []lint.Diagnostic) {
	t.Helper()
	srcLines := make(map[string][]string)
	// wantLine resolves which source line a want comment annotates: its own
	// line for a trailing comment, the line above for a pure `// want ...`
	// comment that is the only thing on its line. Comments that merely embed
	// a want after other text (a //lint:allow directive under test) stay on
	// their own line — the directive itself is what gets diagnosed there.
	wantLine := func(pos token.Position, text string) int {
		if !strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), "want") {
			return pos.Line
		}
		lines, ok := srcLines[pos.Filename]
		if !ok {
			data, err := os.ReadFile(pos.Filename)
			if err != nil {
				t.Fatalf("reading fixture %s: %v", pos.Filename, err)
			}
			lines = strings.Split(string(data), "\n")
			srcLines[pos.Filename] = lines
		}
		if pos.Line > 1 && pos.Line-1 < len(lines) {
			line := lines[pos.Line-1]
			if pos.Column-1 <= len(line) && strings.TrimSpace(line[:pos.Column-1]) == "" {
				return pos.Line - 1
			}
		}
		return pos.Line
	}
	var wants []*expectation
	for _, f := range u.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range patRe.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{
						file: pos.Filename, line: wantLine(pos, c.Text), re: re, raw: pat,
					})
				}
			}
		}
	}
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.hit || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
