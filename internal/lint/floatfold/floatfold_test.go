package floatfold_test

import (
	"testing"

	"clusterfds/internal/lint/floatfold"
	"clusterfds/internal/lint/lintest"
)

func TestFloatFold(t *testing.T) {
	lintest.Run(t, "testdata", floatfold.Analyzer,
		"clusterfds/internal/par",
	)
}
