// Package floatfold machine-checks the serial-fold invariant behind the
// engines' bit-identical parallelism (DESIGN.md §12): floating-point
// addition is not associative, so any float accumulation whose order is
// not pinned — inside a parallel worker region, or inside a range over a
// map — can produce run-to-run different bits. Folds must happen in the
// serial barrier, in pinned order (sorted keys, strip index order).
//
// Two unpinned contexts are policed:
//
//   - parallel worker regions: every function body reachable from a `go`
//     statement (lint.GoReachable). Accumulating into state shared beyond
//     the region — a receiver or captured variable — races the fold
//     across workers. Accumulation into region-locals (a private partial
//     handed through the merge barrier) and into indexed per-element
//     slots (e.spent[to], e.energy[r] — each element is owned by exactly
//     one worker under the strip decomposition) is the sanctioned shape.
//   - range-over-map bodies: map iteration order is deliberately random,
//     so even a single-threaded fold over map values is unpinned. Only
//     per-key indexed slots (out[k] += v) are order-independent; folds
//     into anything else — including frame-locals — must collect keys,
//     sort, and fold serially (the aggregate.Origins pattern).
//
// Accumulation hidden behind a call is caught transitively: a call inside
// either context to a function that (directly or through further calls)
// accumulates floating-point state into shared storage is flagged at the
// call site (lint.PropagateCalls) — this is how `total.Combine(s)` inside
// a range over partials fires without Combine itself being in a worker.
//
// Suppressions use `//lint:allow floatfold -- reason`.
package floatfold

import (
	"go/ast"
	"go/token"
	"go/types"

	"clusterfds/internal/lint"
)

// Analyzer is the serial-float-fold check.
var Analyzer = &lint.Analyzer{
	Name: "floatfold",
	Doc: "flag floating-point accumulation inside parallel worker regions " +
		"and range-over-map bodies; folds must be serial in pinned order",
	Run: run,
}

func run(pass *lint.Pass) error {
	if !lint.DeterministicPackage(pass.Pkg.Path()) {
		return nil
	}
	info := pass.TypesInfo
	reach := lint.GoReachable(pass)
	prop := lint.PropagateCalls(pass, func(fd *ast.FuncDecl) bool {
		return accumulatesShared(info, fd)
	})
	for _, f := range pass.Files {
		if lint.TestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if reach[fd] {
				checkRegion(pass, fd.Body, lint.RegionLocals(info, fd.Body, fd.Type), prop)
			}
			checkMapRanges(pass, fd.Body, prop)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok && reach[lit] {
					checkRegion(pass, lit.Body, lint.RegionLocals(info, lit.Body, lit.Type), prop)
				}
				return true
			})
		}
	}
	return nil
}

// floatAccum reports whether n accumulates a floating-point value and
// returns the accumulation target: x op= y, the self-form x = x + y, and
// ++/-- on a float.
func floatAccum(info *types.Info, n ast.Node) (ast.Expr, bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
			return nil, false
		}
		switch n.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if floatType(info.TypeOf(n.Lhs[0])) {
				return n.Lhs[0], true
			}
		case token.ASSIGN:
			b, ok := ast.Unparen(n.Rhs[0]).(*ast.BinaryExpr)
			if !ok || !floatType(info.TypeOf(n.Lhs[0])) {
				return nil, false
			}
			switch b.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
				l := lint.ExprString(n.Lhs[0])
				if lint.ExprString(b.X) == l || lint.ExprString(b.Y) == l {
					return n.Lhs[0], true
				}
			}
		}
	case *ast.IncDecStmt:
		if floatType(info.TypeOf(n.X)) {
			return n.X, true
		}
	}
	return nil, false
}

func floatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// hasIndex reports whether the lvalue path contains an index step — a
// per-element slot, pinned by the data decomposition rather than by
// arrival order.
func hasIndex(x ast.Expr) bool {
	for {
		switch e := ast.Unparen(x).(type) {
		case *ast.IndexExpr:
			return true
		case *ast.SelectorExpr:
			x = e.X
		case *ast.StarExpr:
			x = e.X
		default:
			return false
		}
	}
}

// accumulatesShared reports whether fd's own body accumulates floats into
// a non-indexed target that is not one of its frame's locals — the base
// property PropagateCalls spreads over the call graph (Stat.Combine's
// `s.Sum += o.Sum`).
func accumulatesShared(info *types.Info, fd *ast.FuncDecl) bool {
	locals := lint.DeclaredObjects(info, fd.Body)
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if lv, ok := floatAccum(info, n); ok && !hasIndex(lv) {
			if root := lint.ChainRoot(info, lv); root == nil || !locals[root] {
				found = true
			}
		}
		return true
	})
	return found
}

// checkRegion flags unpinned float folds in one worker region. Nested
// function literals are regions of their own (GoReachable closes over
// them), and map-range bodies are left to checkMapRanges so each site gets
// exactly one diagnostic.
func checkRegion(pass *lint.Pass, body *ast.BlockStmt, locals map[types.Object]bool, prop map[*types.Func]bool) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.RangeStmt:
			if n.X != nil {
				if t := info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
		case *ast.CallExpr:
			if fn := lint.PkgFunc(info, n); fn != nil && prop[fn] {
				pass.Reportf(n.Pos(), "call to %s, which accumulates floating-point state, inside a parallel worker region; fold in the serial barrier in pinned order", fn.Name())
			}
		default:
			if lv, ok := floatAccum(info, n); ok && !hasIndex(lv) {
				if root := lint.ChainRoot(info, lv); root == nil || !locals[root] {
					pass.Reportf(lv.Pos(), "floating-point accumulation into %s inside a parallel worker region; fold in the serial barrier in pinned order", lint.ExprString(lv))
				}
			}
		}
		return true
	})
}

// checkMapRanges flags unpinned float folds inside range-over-map bodies,
// wherever they appear (worker or serial code).
func checkMapRanges(pass *lint.Pass, body *ast.BlockStmt, prop map[*types.Func]bool) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || rs.X == nil {
			return true
		}
		t := info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		iterVars := make(map[types.Object]bool)
		for _, v := range []ast.Expr{rs.Key, rs.Value} {
			if id, ok := v.(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					iterVars[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					iterVars[obj] = true
				}
			}
		}
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if fn := lint.PkgFunc(info, n); fn != nil && prop[fn] {
					pass.Reportf(n.Pos(), "call to %s, which accumulates floating-point state, inside a range over a map; iteration order is unpinned — collect keys, sort, and fold serially", fn.Name())
				}
			default:
				if lv, ok := floatAccum(info, n); ok && !perKeySlot(info, lv, iterVars) {
					pass.Reportf(lv.Pos(), "floating-point accumulation into %s inside a range over a map; iteration order is unpinned — collect keys, sort, and fold serially", lint.ExprString(lv))
				}
			}
			return true
		})
		return true
	})
}

// perKeySlot reports whether lv indexes per iteration key/value — a slot
// per map entry, so the fold order cannot change any element's bits.
func perKeySlot(info *types.Info, lv ast.Expr, iterVars map[types.Object]bool) bool {
	for {
		switch e := ast.Unparen(lv).(type) {
		case *ast.IndexExpr:
			uses := false
			ast.Inspect(e.Index, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && iterVars[info.Uses[id]] {
					uses = true
				}
				return true
			})
			if uses {
				return true
			}
			lv = e.X
		case *ast.SelectorExpr:
			lv = e.X
		case *ast.StarExpr:
			lv = e.X
		default:
			return false
		}
	}
}
