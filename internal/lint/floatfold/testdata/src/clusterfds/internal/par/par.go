// Package par is the floatfold fixture: float folds must be serial and
// pinned — never inside worker goroutines, never in map iteration order.
package par

import "sort"

type engine struct {
	sum   float64
	spent []float64
	count int
}

type stat struct {
	sum float64
	n   int
}

// combine accumulates floating-point state into its receiver — the base
// property the call-site rule propagates.
func (s *stat) combine(o stat) {
	s.sum += o.sum
	s.n += o.n
}

// --- firing -----------------------------------------------------------------

// badWorker folds into shared engine state from a goroutine.
func (e *engine) badWorker(vals []float64) {
	done := make(chan struct{})
	go func() {
		for _, v := range vals {
			e.sum += v // want `floating-point accumulation into e\.sum inside a parallel worker region`
		}
		done <- struct{}{}
	}()
	<-done
}

// badWorkerSelfForm: the x = x + y spelling is the same fold.
func (e *engine) badWorkerSelfForm(vals []float64) {
	go func() {
		for _, v := range vals {
			e.sum = e.sum + v // want `floating-point accumulation into e\.sum inside a parallel worker region`
		}
	}()
}

// badWorkerCall hides the fold behind a helper; both the call site and the
// helper body (reachable from the goroutine) fire.
func (e *engine) badWorkerCall(vals []float64) {
	go func() {
		for _, v := range vals {
			e.addSample(v) // want `call to addSample, which accumulates floating-point state, inside a parallel worker region`
		}
	}()
}

func (e *engine) addSample(v float64) {
	e.sum += v // want `floating-point accumulation into e\.sum inside a parallel worker region`
}

// badMapFold folds float values in map iteration order.
func (e *engine) badMapFold(parts map[int]float64) {
	for _, v := range parts {
		e.sum += v // want `floating-point accumulation into e\.sum inside a range over a map`
	}
}

// badMapLocal: even a frame-local fold is unpinned in map order.
func mapLocal(parts map[int]float64) float64 {
	t := 0.0
	for _, v := range parts {
		t += v // want `floating-point accumulation into t inside a range over a map`
	}
	return t
}

// badMapCombine is the aggregate.Global shape: the fold hides inside a
// method called in map order.
func badMapCombine(parts map[int]stat) stat {
	var total stat
	for _, s := range parts {
		total.combine(s) // want `call to combine, which accumulates floating-point state, inside a range over a map`
	}
	return total
}

// --- non-firing -------------------------------------------------------------

// goodLocalFold: a worker folds its own partial and hands it through the
// barrier; the serial side merges in pinned order.
func (e *engine) goodLocalFold(vals []float64, out chan float64) {
	go func() {
		t := 0.0
		for _, v := range vals {
			t += v
		}
		out <- t
	}()
}

// goodIndexed: per-element slots are owned by exactly one worker under the
// strip decomposition.
func (e *engine) goodIndexed(idx []int, cost float64) {
	go func() {
		for _, i := range idx {
			e.spent[i] += cost
		}
	}()
}

// goodSerial: the same fold outside any worker region is the sanctioned
// barrier-side merge.
func (e *engine) goodSerial(vals []float64) {
	for _, v := range vals {
		e.sum += v
	}
}

// goodIntWorker: integer accumulation is exact in any order.
func (e *engine) goodIntWorker(n int) {
	go func() {
		for i := 0; i < n; i++ {
			e.count++
		}
	}()
}

// goodPerKey: one slot per map entry cannot observe iteration order.
func goodPerKey(parts map[int]float64, out []float64) {
	for k, v := range parts {
		out[k] += v
	}
}

// goodSortedFold collects keys, sorts, and folds serially — the pattern
// the diagnostics point at.
func goodSortedFold(parts map[int]stat) stat {
	keys := make([]int, 0, len(parts))
	for k := range parts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var total stat
	for _, k := range keys {
		total.combine(parts[k])
	}
	return total
}

// --- suppression ------------------------------------------------------------

// allowedMapFold demonstrates the justified escape hatch.
func (e *engine) allowedMapFold(parts map[int]float64) {
	for _, v := range parts {
		e.sum += v //lint:allow floatfold -- fixture: values are exact powers of two, the fold is order-exact
	}
}
