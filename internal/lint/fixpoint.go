package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CheckRetention is the package-level driver shared by deliverretain and
// scratchalias. It collects every function declaration, seeds taint (from
// handler parameters and/or taint-producing calls), propagates taint
// through same-package calls and returns to a fixpoint, and then runs one
// reporting pass.
//
// seeds maps a function to its initially-tainted parameters. taintedCall,
// if non-nil, marks calls whose results are tainted wherever they appear
// (and forces every function to be analyzed, since any of them may contain
// such a call).
func CheckRetention(pass *Pass, seeds func(fn *types.Func, decl *ast.FuncDecl) []*types.Var,
	taintedCall func(*ast.CallExpr) bool, what string) {

	// Collect declarations in file order so the fixpoint is deterministic.
	type fnDecl struct {
		fn   *types.Func
		decl *ast.FuncDecl
	}
	var order []fnDecl
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			order = append(order, fnDecl{fn, fd})
			decls[fn] = fd
		}
	}

	tainted := make(map[*types.Func]map[*types.Var]bool)
	addTaint := func(fn *types.Func, v *types.Var) bool {
		m := tainted[fn]
		if m == nil {
			m = make(map[*types.Var]bool)
			tainted[fn] = m
		}
		if m[v] {
			return false
		}
		m[v] = true
		return true
	}
	if seeds != nil {
		for _, fd := range order {
			for _, v := range seeds(fd.fn, fd.decl) {
				addTaint(fd.fn, v)
			}
		}
	}

	returns := make(map[*types.Func]bool)
	seedVars := func(fn *types.Func, decl *ast.FuncDecl) []*types.Var {
		// Deterministic order: signature order.
		var out []*types.Var
		sig := fn.Type().(*types.Signature)
		if r := sig.Recv(); r != nil && tainted[fn][r] {
			out = append(out, r)
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if p := sig.Params().At(i); tainted[fn][p] {
				out = append(out, p)
			}
		}
		return out
	}
	analyze := func(fd fnDecl, report func(pos token.Pos, format string, args ...any)) bool {
		eng := &TaintEngine{
			Pass:        pass,
			What:        what,
			TaintedCall: taintedCall,
			ReturnsTaint: func(f *types.Func) bool {
				return returns[f]
			},
			Report: report,
		}
		var changed bool
		eng.OnArgTaint = func(callee *types.Func, param *types.Var, arg ast.Expr) {
			if _, known := decls[callee]; !known {
				return
			}
			if addTaint(callee, param) {
				changed = true
			}
		}
		rt := eng.CheckFunc(fd.decl, seedVars(fd.fn, fd.decl))
		if rt && !returns[fd.fn] {
			returns[fd.fn] = true
			changed = true
		}
		return changed
	}

	discard := func(token.Pos, string, ...any) {}
	relevant := func(fd fnDecl) bool {
		return taintedCall != nil || len(tainted[fd.fn]) > 0
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range order {
			if !relevant(fd) {
				continue
			}
			if analyze(fd, discard) {
				changed = true
			}
		}
	}
	for _, fd := range order {
		if !relevant(fd) {
			continue
		}
		analyze(fd, func(pos token.Pos, format string, args ...any) {
			pass.Reportf(pos, format, args...)
		})
	}
}
