package scratchalias_test

import (
	"testing"

	"clusterfds/internal/lint/lintest"
	"clusterfds/internal/lint/scratchalias"
)

func TestScratchAlias(t *testing.T) {
	lintest.Run(t, "testdata", scratchalias.Analyzer,
		"clusterfds/internal/radio",
	)
}
