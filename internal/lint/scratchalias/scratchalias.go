// Package scratchalias guards the two recycled-memory contracts the PR-4
// allocation work introduced:
//
//  1. wire.DecodeInto parses into a reusable DecodeScratch: the returned
//     message and every slice it carries are overwritten by the next
//     DecodeInto on the same scratch. A decode result may be read, handed
//     to Deliver, or copied — but storing it (or memory reachable from it)
//     into a field, package variable, map/slice element, channel, or
//     escaping closure is a latent aliasing bug that only bites when the
//     arena is reused, far from the store.
//
//  2. A value handed to (*sync.Pool).Put belongs to the pool: any use of
//     the same variable after the Put races with whoever gets the value
//     next. (The repository's own free lists are plain slices today, but
//     the gate is in place for when a pool shows up — and the fixture
//     proves it fires.)
//
// The retention analysis is shared with deliverretain (see the lint
// package's TaintEngine): taint starts at DecodeInto results instead of
// handler parameters, and follows the same aliasing, copying, and
// cleansing rules. Suppressions use `//lint:allow scratchalias -- reason`.
package scratchalias

import (
	"go/ast"
	"go/token"
	"go/types"

	"clusterfds/internal/lint"
)

// Analyzer is the scratch/pool lifetime check.
var Analyzer = &lint.Analyzer{
	Name: "scratchalias",
	Doc: "flag retention of wire.DecodeScratch-backed decode results past " +
		"the decode, and uses of a value after it was Put back in a sync.Pool",
	Run: run,
}

func run(pass *lint.Pass) error {
	lint.CheckRetention(pass,
		nil,
		func(call *ast.CallExpr) bool {
			fn := lint.PkgFunc(pass.TypesInfo, call)
			return fn != nil && fn.Name() == "DecodeInto" &&
				fn.Pkg() != nil && lint.WirePackage(fn.Pkg().Path())
		},
		"scratch-backed decode result")
	checkPoolPut(pass)
	return nil
}

// checkPoolPut flags uses of a variable after it was handed to
// (*sync.Pool).Put in the same function.
func checkPoolPut(pass *lint.Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolPutFunc(pass, fd)
		}
	}
}

func checkPoolPutFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	// Collect Put sites: object -> position of the Put call's end.
	type putSite struct {
		obj types.Object
		end token.Pos
	}
	var puts []putSite
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lint.PkgFunc(info, call)
		if fn == nil || fn.Name() != "Put" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		if len(call.Args) != 1 {
			return true
		}
		id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Uses[id]; obj != nil {
			puts = append(puts, putSite{obj, call.End()})
		}
		return true
	})
	if len(puts) == 0 {
		return
	}
	for _, p := range puts {
		// A rebinding assignment after the Put makes later uses fine.
		rebound := token.Pos(-1)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Pos() <= p.end {
				return true
			}
			for _, l := range as.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok {
					if o := info.Uses[id]; o == p.obj {
						if rebound == token.Pos(-1) || as.Pos() < rebound {
							rebound = as.Pos()
						}
					}
				}
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if o := info.Uses[id]; o != p.obj || id.Pos() <= p.end {
				return true
			}
			if rebound != token.Pos(-1) && id.Pos() >= rebound {
				return true
			}
			// Skip the ident when it is the LHS of the rebinding itself.
			pass.Reportf(id.Pos(),
				"%s used after it was returned to a sync.Pool; the pool may already have handed it to another taker",
				p.obj.Name())
			return true
		})
	}
}
