// Package radio is the scratchalias fixture: scratch-backed decode results
// must die with the delivery, and pooled values must not be touched after
// Put.
package radio

import (
	"sync"

	"clusterfds/internal/wire"
)

type Receiver interface {
	Deliver(m wire.Message, from wire.NodeID)
}

type Medium struct {
	scratch  *wire.DecodeScratch
	lastMsg  wire.Message
	lastSeen []wire.NodeID
	pool     sync.Pool
}

// badRetain stores the scratch-backed result (and a slice reached through
// it) into fields that outlive the decode.
func (m *Medium) badRetain(buf []byte) {
	decoded, err := wire.DecodeInto(m.scratch, buf)
	if err != nil {
		return
	}
	m.lastMsg = decoded // want `scratch-backed decode result stored in field m\.lastMsg`
	if hb, ok := decoded.(*wire.Heartbeat); ok {
		m.lastSeen = hb.NewFailed // want `scratch-backed decode result stored in field m\.lastSeen`
	}
}

// goodDeliver hands the result to the receiver synchronously — the
// contract Deliver implementations are checked against separately.
func (m *Medium) goodDeliver(rcv Receiver, buf []byte, from wire.NodeID) {
	decoded, err := wire.DecodeInto(m.scratch, buf)
	if err != nil {
		return
	}
	rcv.Deliver(decoded, from)
}

// goodCopy keeps an owned deep copy.
func (m *Medium) goodCopy(buf []byte) {
	decoded, err := wire.DecodeInto(m.scratch, buf)
	if err != nil {
		return
	}
	if hb, ok := decoded.(*wire.Heartbeat); ok {
		m.lastSeen = append(m.lastSeen[:0], hb.NewFailed...)
	}
}

// helperChain shows taint following a same-package helper: decode here,
// retain two calls away.
func (m *Medium) helperChain(buf []byte) {
	decoded, _ := wire.DecodeInto(m.scratch, buf)
	m.stash(decoded)
}

func (m *Medium) stash(msg wire.Message) {
	m.lastMsg = msg // want `scratch-backed decode result stored in field m\.lastMsg`
}

// badUseAfterPut touches a pooled buffer after giving it back.
func (m *Medium) badUseAfterPut(b *[]byte) int {
	m.pool.Put(b)
	return len(*b) // want `b used after it was returned to a sync\.Pool`
}

// goodPut takes a fresh value after the Put: rebinding ends the hazard.
func (m *Medium) goodPut(b *[]byte) int {
	m.pool.Put(b)
	b = m.pool.Get().(*[]byte)
	return len(*b)
}

// allowedRetain demonstrates the justified escape hatch.
func (m *Medium) allowedRetain(buf []byte) {
	decoded, _ := wire.DecodeInto(m.scratch, buf)
	m.lastMsg = decoded //lint:allow scratchalias -- fixture: cleared before the next decode on this scratch
}
