// Package wire is a fixture stub for the scratch decode API; the analyzer
// matches DecodeInto by name and import-path suffix.
package wire

type NodeID uint32

type Kind uint8

type Message interface {
	MsgKind() Kind
}

type Heartbeat struct {
	From      NodeID
	NewFailed []NodeID
}

func (*Heartbeat) MsgKind() Kind { return 1 }

type DecodeScratch struct{ ids []NodeID }

// DecodeInto parses b into s; the result is valid only until the next
// DecodeInto call on the same scratch.
func DecodeInto(s *DecodeScratch, b []byte) (Message, error) {
	return &Heartbeat{}, nil
}
