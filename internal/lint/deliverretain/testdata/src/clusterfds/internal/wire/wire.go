// Package wire is a fixture stub mirroring the shape of the real wire
// package: the Message interface plus the message structs the lifetime
// fixtures retain. The analyzer matches it by import-path suffix.
package wire

type NodeID uint32

type Epoch uint64

type Kind uint8

type Rescission struct {
	Node  NodeID
	Epoch Epoch
}

type Message interface {
	MsgKind() Kind
}

type Heartbeat struct {
	From  NodeID
	Epoch Epoch
}

func (*Heartbeat) MsgKind() Kind { return 1 }

type HealthUpdate struct {
	From      NodeID
	CH        NodeID
	Epoch     Epoch
	Takeover  bool
	NewFailed []NodeID
	AllFailed []NodeID
	Rescinded []Rescission
}

func (*HealthUpdate) MsgKind() Kind { return 3 }

type FailureReport struct {
	OriginCH  NodeID
	Sender    NodeID
	TargetCH  NodeID
	Seq       uint64
	NewFailed []NodeID
	AllFailed []NodeID
	Rescinded []Rescission
}

func (*FailureReport) MsgKind() Kind { return 7 }
