// Package fds is the deliverretain fixture. badHandle reproduces the exact
// pre-PR-4 fds update-retention bug shape (p.update = m on a delivered
// message); the good functions reproduce the PR-4 fixes (deep copy into a
// persistent buffer; per-field copy with slice reallocation).
package fds

import "clusterfds/internal/wire"

type key struct {
	origin wire.NodeID
	seq    uint64
}

type reportState struct {
	content wire.FailureReport
	senders map[wire.NodeID]bool
}

type Protocol struct {
	update      *wire.HealthUpdate
	updateStore wire.HealthUpdate
	lastFailed  []wire.NodeID
	lastEpoch   wire.Epoch
	reports     map[key]*reportState
	deferred    func()
	inbox       chan wire.Message
}

var lastSeen *wire.HealthUpdate

// Handle is the node.Protocol entry point: m is scratch-backed and valid
// only during this call.
func (p *Protocol) Handle(m wire.Message, from wire.NodeID) {
	switch msg := m.(type) {
	case *wire.HealthUpdate:
		p.badUpdate(msg)
		p.goodUpdate(msg)
		p.badReport(nil, msg)
		p.goodLocalWork(msg)
		p.allowedRetain(msg)
	case *wire.FailureReport:
		p.goodReport(msg)
		p.badClosure(msg)
		p.badGlobal(msg)
	}
}

// badUpdate is the pre-PR-4 bug: retaining the delivered pointer directly.
func (p *Protocol) badUpdate(m *wire.HealthUpdate) {
	p.update = m // want `delivered message stored in field p\.update`
	p.lastEpoch = m.Epoch
	p.lastFailed = m.NewFailed // want `delivered message stored in field p\.lastFailed`
}

// goodUpdate is the PR-4 fix: deep-copy into the persistent buffer; scalar
// fields copy freely; element copies of scalar slices launder the taint.
func (p *Protocol) goodUpdate(m *wire.HealthUpdate) {
	st := &p.updateStore
	st.From, st.CH, st.Epoch, st.Takeover = m.From, m.CH, m.Epoch, m.Takeover
	st.NewFailed = append(st.NewFailed[:0], m.NewFailed...)
	st.AllFailed = append(st.AllFailed[:0], m.AllFailed...)
	st.Rescinded = append(st.Rescinded[:0], m.Rescinded...)
	p.update = st
	p.lastEpoch = m.Epoch
}

// badReport stores a struct copy whose slices still alias the scratch.
func (p *Protocol) badReport(st *reportState, m *wire.HealthUpdate) {
	st.content = wire.FailureReport{ // want `delivered message stored in field st\.content`
		OriginCH:  m.From,
		Seq:       uint64(m.Epoch),
		NewFailed: m.NewFailed,
	}
}

// goodReport is the intercluster.getState pattern: a by-value parameter
// whose memory-carrying fields are all reassigned to owned copies before
// the struct is stored.
func (p *Protocol) goodReport(m *wire.FailureReport) {
	p.getState(key{origin: m.OriginCH, seq: m.Seq}, *m)
}

func (p *Protocol) getState(k key, content wire.FailureReport) *reportState {
	st, ok := p.reports[k]
	if !ok {
		content.Sender = 0
		content.TargetCH = 0
		content.NewFailed = append([]wire.NodeID(nil), content.NewFailed...)
		content.AllFailed = append([]wire.NodeID(nil), content.AllFailed...)
		content.Rescinded = append([]wire.Rescission(nil), content.Rescinded...)
		st = &reportState{content: content, senders: make(map[wire.NodeID]bool)}
		p.reports[k] = st
	}
	return st
}

// badClosure captures the delivered message in a callback that outlives the
// call (a timer firing later would read a recycled scratch).
func (p *Protocol) badClosure(m *wire.FailureReport) {
	p.deferred = func() {
		use(m.NewFailed) // want `delivered message captured by a closure`
	}
}

// badGlobal stores into a package variable and sends on a channel.
func (p *Protocol) badGlobal(m *wire.FailureReport) {
	p.inbox <- m // want `delivered message \(or memory reachable from it\) sent on a channel`
}

// badSecondHop shows taint following a same-package helper call chain out
// of Handle: keepRescissions is not named Deliver/Handle, but receives the
// delivered slice.
func (p *Protocol) Deliver(m wire.Message, from wire.NodeID) {
	if up, ok := m.(*wire.HealthUpdate); ok {
		p.keepRescissions(up.Rescinded)
	}
}

func (p *Protocol) keepRescissions(rs []wire.Rescission) {
	p.updateStore.Rescinded = rs // want `delivered message stored in field p\.updateStore\.Rescinded`
}

// goodLocalWork: purely local use of the message is fine.
func (p *Protocol) goodLocalWork(m *wire.HealthUpdate) int {
	n := 0
	for _, id := range m.NewFailed {
		if id != 0 {
			n++
		}
	}
	tmp := m.AllFailed
	n += len(tmp)
	return n
}

// allowedRetain demonstrates the justified escape hatch.
func (p *Protocol) allowedRetain(m *wire.HealthUpdate) {
	p.lastFailed = m.NewFailed //lint:allow deliverretain -- fixture: consumed synchronously before return
}

func use(ids []wire.NodeID) {}
