// Package deliverretain enforces the radio delivery lifetime contract
// introduced in PR 4: a message passed to radio.Receiver.Deliver (and to
// the node.Protocol.Handle fan-out beneath it) is backed by the receiver's
// wire.DecodeScratch and is valid ONLY for the duration of the call.
// Anything the handler wants to keep — the message, a pointer into it, or
// any slice it carries — must be deep-copied first.
//
// This is exactly the bug class PR 4 fixed by hand: fds.Protocol kept
// p.update pointing at a delivered *wire.HealthUpdate (now deep-copied via
// storeUpdate into a persistent buffer), and intercluster stored a
// FailureReport whose slices aliased the scratch (now copied at
// reportState creation). The analyzer turns that one-time audit into a
// standing gate.
//
// Mechanics: every function or method named Deliver or Handle with a
// parameter of a wire message type starts with that parameter tainted.
// Taint propagates through local aliases, field selections, slicing,
// type switches, and same-package calls (so the per-kind onHeartbeat /
// onDigest / onFailureReport handlers are covered), and a store of tainted
// memory into anything that outlives the call — a field behind a pointer,
// a package variable, a map or slice element, a channel, a goroutine, or a
// closure that is not invoked before the handler returns — is reported.
//
// Element-copying operations launder taint: append(dst[:0], m.NewFailed...)
// and copy(dst, src) over scalar element types produce owned memory, and a
// by-value struct whose memory-carrying fields have all been reassigned to
// owned values (the intercluster.getState pattern) is clean. Scalar reads
// (m.From, m.Epoch) never taint.
//
// Suppressions use `//lint:allow deliverretain -- reason` on the flagged
// store.
package deliverretain

import (
	"go/ast"
	"go/types"

	"clusterfds/internal/lint"
)

// Analyzer is the message-lifetime invariant check.
var Analyzer = &lint.Analyzer{
	Name: "deliverretain",
	Doc: "flag handlers that retain a delivered wire message (or memory " +
		"reachable from it) past the Deliver/Handle call that received it",
	Run: run,
}

// handlerNames are the entry points of the delivery fan-out. Deliver is the
// radio.Receiver method; Handle is the node.Protocol method every protocol
// implements.
var handlerNames = map[string]bool{
	"Deliver": true,
	"Handle":  true,
}

func run(pass *lint.Pass) error {
	lint.CheckRetention(pass,
		func(fn *types.Func, decl *ast.FuncDecl) []*types.Var {
			if !handlerNames[fn.Name()] {
				return nil
			}
			sig := fn.Type().(*types.Signature)
			var out []*types.Var
			for i := 0; i < sig.Params().Len(); i++ {
				if p := sig.Params().At(i); lint.WireMessageType(p.Type()) {
					out = append(out, p)
				}
			}
			return out
		},
		nil,
		"delivered message")
	return nil
}
