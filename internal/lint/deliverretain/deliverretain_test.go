package deliverretain_test

import (
	"testing"

	"clusterfds/internal/lint/deliverretain"
	"clusterfds/internal/lint/lintest"
)

func TestDeliverRetain(t *testing.T) {
	lintest.Run(t, "testdata", deliverretain.Analyzer,
		"clusterfds/internal/fds", // pre-PR-4 bug shapes fire; PR-4 fix shapes don't
	)
}
