package sim

import "testing"

// TestStreamDeterminism pins that draws are a pure function of the seed.
func TestStreamDeterminism(t *testing.T) {
	a := NewStream(42)
	b := NewStream(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}

// TestStreamAdjacentSeedsDecorrelated checks the seed mix: streams seeded
// with consecutive integers must not share their first draws.
func TestStreamAdjacentSeedsDecorrelated(t *testing.T) {
	seen := make(map[uint64]uint64)
	for seed := uint64(0); seed < 1000; seed++ {
		s := NewStream(seed)
		v := s.Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("seeds %d and %d share first draw %d", prev, seed, v)
		}
		seen[v] = seed
	}
}

// TestStreamFloat64Range checks Float64 stays in [0,1) and is not constant.
func TestStreamFloat64Range(t *testing.T) {
	s := NewStream(7)
	var sum float64
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", v)
		}
		sum += v
	}
	if mean := sum / 10000; mean < 0.45 || mean > 0.55 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

// TestStreamInt63n checks the bound and a rough uniformity.
func TestStreamInt63n(t *testing.T) {
	s := NewStream(9)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := s.Int63n(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Int63n(10) = %d", v)
		}
		counts[v]++
	}
	for d, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("digit %d drawn %d times out of 100000, want ~10000", d, c)
		}
	}
}

func TestStreamInt63nPanicsOnBadBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int63n(0) did not panic")
		}
	}()
	s := NewStream(1)
	s.Int63n(0)
}
