// Package sim implements the discrete-event simulation kernel on which the
// wireless medium, the host runtime, and every protocol in this repository
// run. It provides a virtual clock, an ordered event queue, cancellable
// timers, and a deterministic random-number source.
//
// The kernel is deliberately single-threaded: protocol handlers execute one
// at a time in virtual-time order, so no protocol code needs locks and every
// run with the same seed is bit-for-bit reproducible. This mirrors how the
// paper's analysis treats a round: a bounded window (Thop) within which all
// deliveries either happen or are lost.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured from the start of the run.
// It reuses time.Duration so protocol code can write 20*time.Millisecond.
type Time = time.Duration

// Handler is a callback executed when an event fires.
type Handler func()

// ArgHandler is a callback executed with the argument it was scheduled with.
// It exists so hot paths can schedule a shared (often pooled) handler plus a
// pointer argument instead of allocating a fresh closure per event; see
// Kernel.ScheduleArg.
type ArgHandler func(arg any)

// event is a scheduled callback. seq breaks ties so that events scheduled
// for the same instant fire in scheduling order (FIFO), which keeps runs
// deterministic.
//
// Events are pooled: the kernel keeps a free list and recycles an event
// once it has fired or its cancellation has been collected. gen counts
// reuses so that a stale Timer handle (pointing at a recycled event) can
// detect that its event is gone and stay inert instead of touching the new
// occupant.
//
// Exactly one of fn and argFn is set. argFn+arg is the closure-free variant:
// arg is typically a pointer, and storing a pointer in an interface does not
// allocate, so ScheduleArg events cost zero heap beyond the pooled event.
type event struct {
	at       Time
	seq      uint64
	fn       Handler
	argFn    ArgHandler
	arg      any
	canceled bool
	index    int    // heap index, maintained by eventQueue; -1 once popped
	gen      uint64 // incremented on every release to the pool
}

// less orders events by (at, seq). seq is unique, so this is a strict total
// order: ANY correct min-heap pops events in exactly this order, which is
// why swapping heap arity cannot change simulation output.
func less(x, y *event) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	return x.seq < y.seq
}

// eventQueue is a hand-rolled 4-ary min-heap over *event ordered by
// (at, seq). It replaces container/heap, whose interface-based API boxed
// every Push/Pop argument in an `any` and paid dynamic dispatch on each
// Less/Swap — measurable overhead at the millions-of-events scale of the
// 2000-node runs. A 4-ary layout also halves the tree depth versus binary,
// trading slightly more comparisons per level for far fewer cache-missing
// levels; event keys are hot, so this wins on the sift-down path that
// dominates pops. Sift operations hole-copy (shift parents/children into the
// hole, then place the saved event once) instead of swapping pairwise.
type eventQueue struct {
	a []*event
}

func (q *eventQueue) len() int { return len(q.a) }

func (q *eventQueue) push(ev *event) {
	i := len(q.a)
	q.a = append(q.a, ev)
	// Sift up: move the hole toward the root past larger parents.
	a := q.a
	for i > 0 {
		p := (i - 1) >> 2
		if !less(ev, a[p]) {
			break
		}
		a[i] = a[p]
		a[i].index = i
		i = p
	}
	a[i] = ev
	ev.index = i
}

func (q *eventQueue) pop() *event {
	a := q.a
	ev := a[0]
	n := len(a) - 1
	last := a[n]
	a[n] = nil
	q.a = a[:n]
	ev.index = -1
	if n == 0 {
		return ev
	}
	// Sift the old tail down from the root: move the hole toward the
	// leaves past smaller children.
	a = q.a
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(a[j], a[m]) {
				m = j
			}
		}
		if !less(a[m], last) {
			break
		}
		a[i] = a[m]
		a[i].index = i
		i = m
	}
	a[i] = last
	last.index = i
	return ev
}

// Timer is a handle to a scheduled event that can be canceled. The zero
// value is an inert timer: Cancel and Active are safe to call on it.
// The generation stamp keeps a handle inert once its event has fired and
// been recycled for a later Schedule call.
type Timer struct {
	ev  *event
	gen uint64
}

// Cancel prevents the timer's handler from running if it has not fired yet.
// Canceling an already-fired or already-canceled timer is a no-op.
func (t Timer) Cancel() {
	if t.ev != nil && t.ev.gen == t.gen {
		t.ev.canceled = true
	}
}

// Active reports whether the timer is still pending (scheduled, not fired,
// not canceled).
func (t Timer) Active() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.canceled && t.ev.index >= 0
}

// Kernel is the discrete-event scheduler. Create one with New; the zero
// value is not usable because it lacks a random source.
type Kernel struct {
	now     Time
	queue   eventQueue
	seq     uint64
	rng     *rand.Rand
	stopped bool
	steps   uint64
	free    []*event // recycled events (the #1 allocation site otherwise)

	// Same-instant batching (AtBatched): one kernel event per distinct
	// timestamp, carrying every callback registered for it in FIFO order.
	batches   map[Time]*batch
	batchFree []*batch
	batchFn   ArgHandler
}

// batch is the pooled callback list behind AtBatched. Entries are
// (handler, arg) pairs like ScheduleArg events, so registrants can thread
// pooled records through without a closure per callback.
type batch struct {
	at  Time
	fns []batchEntry
}

type batchEntry struct {
	fn  ArgHandler
	arg any
}

// New returns a kernel whose random source is seeded with seed. Two kernels
// created with the same seed and driven by the same protocol code produce
// identical runs.
func New(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source. All randomness in
// a simulation (placement, loss, jitter, crash times) must come from here so
// runs are reproducible from the seed alone.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Steps returns the number of events executed so far. Useful for progress
// accounting and for benchmarks.
func (k *Kernel) Steps() uint64 { return k.steps }

// Pending returns the number of events currently scheduled (including
// canceled events that have not yet been popped).
func (k *Kernel) Pending() int { return k.queue.len() }

// Schedule runs fn after the given delay of virtual time and returns a
// cancellable handle. A negative delay is treated as zero: the event fires
// at the current instant, after all events already scheduled for it.
func (k *Kernel) Schedule(delay Time, fn Handler) Timer {
	if fn == nil {
		panic("sim: Schedule called with nil handler")
	}
	ev := k.schedule(delay)
	ev.fn = fn
	return Timer{ev: ev, gen: ev.gen}
}

// ScheduleArg runs fn(arg) after the given delay. It behaves exactly like
// Schedule with respect to ordering and cancellation, but lets hot paths
// reuse one long-lived fn for many events and thread per-event state through
// arg, avoiding a heap-allocated closure per event. Pass a pointer (or other
// non-allocating interface payload) as arg to keep the call allocation-free.
func (k *Kernel) ScheduleArg(delay Time, fn ArgHandler, arg any) Timer {
	if fn == nil {
		panic("sim: ScheduleArg called with nil handler")
	}
	ev := k.schedule(delay)
	ev.argFn = fn
	ev.arg = arg
	return Timer{ev: ev, gen: ev.gen}
}

// schedule allocates, stamps, and enqueues an event with no handler set.
func (k *Kernel) schedule(delay Time) *event {
	if delay < 0 {
		delay = 0
	}
	ev := k.alloc()
	ev.at = k.now + delay
	ev.seq = k.seq
	k.seq++
	k.queue.push(ev)
	return ev
}

// alloc takes an event from the free list. An empty list grows by a block of
// 64 events in one allocation: under sustained traffic growth the pool never
// reaches a steady high-water mark, so per-event allocation would recur every
// epoch; block growth amortizes it 64×.
func (k *Kernel) alloc() *event {
	if len(k.free) == 0 {
		blk := make([]event, 64)
		for i := range blk {
			k.free = append(k.free, &blk[i])
		}
	}
	n := len(k.free)
	ev := k.free[n-1]
	k.free[n-1] = nil
	k.free = k.free[:n-1]
	return ev
}

// release recycles a popped event. Bumping the generation invalidates every
// outstanding Timer handle to it; clearing the handler fields drops the
// closure and argument so the pool retains no protocol state.
func (k *Kernel) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.argFn = nil
	ev.arg = nil
	ev.canceled = false
	k.free = append(k.free, ev)
}

// At runs fn at the given absolute virtual time, which must not be in the
// past. It returns a cancellable handle.
func (k *Kernel) At(at Time, fn Handler) Timer {
	if at < k.now {
		panic(fmt.Sprintf("sim: At(%v) is in the past (now %v)", at, k.now))
	}
	return k.Schedule(at-k.now, fn)
}

// AtBatched runs fn(arg) at the given absolute virtual time, coalescing every
// callback registered for the same instant into ONE kernel event. Within a
// batch, callbacks run in registration order — exactly the (at, seq) order
// individual At calls would have produced — and the batch event itself takes
// the queue position (seq) of the first registration, so callbacks that would
// have fired consecutively anyway are unchanged while the event count drops.
//
// The trade-offs versus At: no cancellation handle (callbacks must guard
// themselves, as crash-aware host timers already do), and a callback
// registered between two other same-instant events fires with the batch, not
// between them. The protocol phase schedule (epoch boundaries, round ends)
// satisfies both constraints: phase events for one instant are registered
// back-to-back by the previous epoch's handlers and nothing else lands on
// those exact nanoseconds.
func (k *Kernel) AtBatched(at Time, fn ArgHandler, arg any) {
	if fn == nil {
		panic("sim: AtBatched called with nil handler")
	}
	if at < k.now {
		panic(fmt.Sprintf("sim: AtBatched(%v) is in the past (now %v)", at, k.now))
	}
	if b, ok := k.batches[at]; ok {
		b.fns = append(b.fns, batchEntry{fn: fn, arg: arg})
		return
	}
	if k.batches == nil {
		k.batches = make(map[Time]*batch)
		k.batchFn = k.runBatch
	}
	var b *batch
	if n := len(k.batchFree); n > 0 {
		b = k.batchFree[n-1]
		k.batchFree[n-1] = nil
		k.batchFree = k.batchFree[:n-1]
	} else {
		b = &batch{}
	}
	b.at = at
	b.fns = append(b.fns, batchEntry{fn: fn, arg: arg})
	k.batches[at] = b
	k.ScheduleArg(at-k.now, k.batchFn, b)
}

// runBatch fires one batch: the map entry is removed first, so a callback
// re-registering for the current instant starts a fresh batch that fires
// after this event, preserving At's same-instant FIFO semantics.
func (k *Kernel) runBatch(arg any) {
	b := arg.(*batch)
	delete(k.batches, b.at)
	for i := range b.fns {
		e := b.fns[i]
		b.fns[i] = batchEntry{}
		e.fn(e.arg)
	}
	b.fns = b.fns[:0]
	k.batchFree = append(k.batchFree, b)
}

// Stop makes the currently running Run/RunUntil return after the event being
// executed completes. Pending events remain queued.
func (k *Kernel) Stop() { k.stopped = true }

// step pops and executes the next live event. It reports whether an event
// was executed.
func (k *Kernel) step() bool {
	for k.queue.len() > 0 {
		ev := k.queue.pop()
		if ev.canceled {
			k.release(ev)
			continue
		}
		k.now = ev.at
		k.steps++
		fn, argFn, arg := ev.fn, ev.argFn, ev.arg
		// Recycle before running: the handler may immediately schedule a
		// follow-up, which then reuses this slot instead of allocating.
		// Outstanding Timer handles are invalidated by the generation bump.
		k.release(ev)
		if fn != nil {
			fn()
		} else {
			argFn(arg)
		}
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called. It returns
// the virtual time at which the run ended.
func (k *Kernel) Run() Time {
	k.stopped = false
	for !k.stopped && k.step() {
	}
	return k.now
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events scheduled after the deadline stay queued, so
// simulations can be resumed by calling RunUntil again with a later deadline.
func (k *Kernel) RunUntil(deadline Time) Time {
	k.stopped = false
	for !k.stopped {
		next, ok := k.peekTime()
		if !ok || next > deadline {
			break
		}
		k.step()
	}
	if !k.stopped && k.now < deadline {
		k.now = deadline
	}
	return k.now
}

// NextEventAt returns the timestamp of the next live (non-canceled) event,
// if any. Live drivers (cmd/fdsd's wall-clock pump) use it to sleep exactly
// until the protocol core next needs to run instead of polling.
func (k *Kernel) NextEventAt() (Time, bool) { return k.peekTime() }

// peekTime returns the timestamp of the next live event.
func (k *Kernel) peekTime() (Time, bool) {
	for k.queue.len() > 0 {
		if k.queue.a[0].canceled {
			k.release(k.queue.pop())
			continue
		}
		return k.queue.a[0].at, true
	}
	return 0, false
}
