package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	k := New(1)
	var got []int
	k.Schedule(30*time.Millisecond, func() { got = append(got, 3) })
	k.Schedule(10*time.Millisecond, func() { got = append(got, 1) })
	k.Schedule(20*time.Millisecond, func() { got = append(got, 2) })
	k.Run()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if k.Now() != 30*time.Millisecond {
		t.Errorf("Now = %v, want 30ms", k.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	k := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5*time.Millisecond, func() { got = append(got, i) })
	}
	k.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("events at same instant fired out of scheduling order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	k := New(1)
	var fired []Time
	k.Schedule(time.Second, func() {
		fired = append(fired, k.Now())
		k.Schedule(time.Second, func() {
			fired = append(fired, k.Now())
		})
	})
	k.Run()
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Fatalf("fired = %v, want [1s 2s]", fired)
	}
}

func TestZeroAndNegativeDelay(t *testing.T) {
	k := New(1)
	ran := 0
	k.Schedule(0, func() { ran++ })
	k.Schedule(-5*time.Second, func() { ran++ })
	k.Run()
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if k.Now() != 0 {
		t.Fatalf("Now = %v, want 0", k.Now())
	}
}

func TestTimerCancel(t *testing.T) {
	k := New(1)
	ran := false
	tm := k.Schedule(time.Second, func() { ran = true })
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	tm.Cancel()
	if tm.Active() {
		t.Fatal("timer should be inactive after cancel")
	}
	k.Run()
	if ran {
		t.Fatal("canceled timer fired")
	}
	// Cancel after run is a no-op.
	tm.Cancel()
}

func TestZeroTimerIsInert(t *testing.T) {
	var tm Timer
	tm.Cancel()
	if tm.Active() {
		t.Fatal("zero timer should be inactive")
	}
}

func TestTimerActiveLifecycle(t *testing.T) {
	k := New(1)
	var tm Timer
	tm = k.Schedule(time.Second, func() {
		if tm.Active() {
			t.Error("timer should not be active while firing")
		}
	})
	k.Run()
	if tm.Active() {
		t.Error("timer should be inactive after firing")
	}
}

func TestRunUntil(t *testing.T) {
	k := New(1)
	var fired []int
	k.Schedule(1*time.Second, func() { fired = append(fired, 1) })
	k.Schedule(2*time.Second, func() { fired = append(fired, 2) })
	k.Schedule(3*time.Second, func() { fired = append(fired, 3) })

	k.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("after RunUntil(2s): fired = %v, want [1 2]", fired)
	}
	if k.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", k.Pending())
	}

	// Resume.
	k.RunUntil(10 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("after resume: fired = %v, want [1 2 3]", fired)
	}
	if k.Now() != 10*time.Second {
		t.Fatalf("Now = %v, want 10s (clock advances to deadline)", k.Now())
	}
}

func TestRunUntilEmptyQueueAdvancesClock(t *testing.T) {
	k := New(1)
	k.RunUntil(5 * time.Second)
	if k.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", k.Now())
	}
}

func TestStop(t *testing.T) {
	k := New(1)
	var fired []int
	k.Schedule(1*time.Second, func() {
		fired = append(fired, 1)
		k.Stop()
	})
	k.Schedule(2*time.Second, func() { fired = append(fired, 2) })
	k.Run()
	if len(fired) != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
	// The stopped flag resets on the next Run.
	k.Run()
	if len(fired) != 2 {
		t.Fatalf("fired = %v, want [1 2]", fired)
	}
}

func TestAt(t *testing.T) {
	k := New(1)
	var at Time
	k.Schedule(time.Second, func() {
		k.At(5*time.Second, func() { at = k.Now() })
	})
	k.Run()
	if at != 5*time.Second {
		t.Fatalf("At fired at %v, want 5s", at)
	}
}

func TestAtPastPanics(t *testing.T) {
	k := New(1)
	k.Schedule(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past should panic")
			}
		}()
		k.At(500*time.Millisecond, func() {})
	})
	k.Run()
}

func TestScheduleNilPanics(t *testing.T) {
	k := New(1)
	defer func() {
		if recover() == nil {
			t.Error("Schedule(nil) should panic")
		}
	}()
	k.Schedule(time.Second, nil)
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		k := New(seed)
		var out []int64
		var tick func()
		n := 0
		tick = func() {
			out = append(out, int64(k.Now()), k.Rand().Int63n(1000))
			n++
			if n < 50 {
				k.Schedule(Time(k.Rand().Int63n(int64(time.Second))), tick)
			}
		}
		k.Schedule(0, tick)
		k.Run()
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical runs")
	}
}

func TestSteps(t *testing.T) {
	k := New(1)
	for i := 0; i < 7; i++ {
		k.Schedule(Time(i)*time.Second, func() {})
	}
	canceled := k.Schedule(8*time.Second, func() {})
	canceled.Cancel()
	k.Run()
	if k.Steps() != 7 {
		t.Fatalf("Steps = %d, want 7 (canceled events do not count)", k.Steps())
	}
}

// TestQueueOrderProperty drives the kernel with random delays and checks
// events always fire in nondecreasing time order.
func TestQueueOrderProperty(t *testing.T) {
	f := func(seed int64, raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 200 {
			raw = raw[:200]
		}
		k := New(seed)
		var times []Time
		for _, r := range raw {
			d := Time(r % 1e9)
			k.Schedule(d, func() { times = append(times, k.Now()) })
		}
		k.Run()
		if len(times) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] })
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestEventPoolStaleHandles checks the free-list recycler: a Timer handle
// whose event has fired (and been recycled into a NEW event) must stay
// inert — Cancel on it must not touch the recycled occupant, and Active
// must report false.
func TestEventPoolStaleHandles(t *testing.T) {
	k := New(1)
	fired := 0
	tm1 := k.Schedule(1, func() { fired++ })
	k.Run()
	if tm1.Active() {
		t.Error("fired timer still active")
	}
	// The pool guarantees this Schedule reuses tm1's event object.
	tm2 := k.Schedule(1, func() { fired += 10 })
	tm1.Cancel() // stale handle: must be a no-op
	if !tm2.Active() {
		t.Fatal("stale Cancel killed a recycled event")
	}
	k.Run()
	if fired != 11 {
		t.Errorf("fired = %d, want 11", fired)
	}
}

// TestEventPoolCanceledRelease checks canceled events are recycled through
// both the step() and peekTime() collection paths without disturbing
// later events.
func TestEventPoolCanceledRelease(t *testing.T) {
	k := New(1)
	ran := 0
	c1 := k.Schedule(1, func() { ran += 100 })
	k.Schedule(2, func() { ran++ })
	c1.Cancel()
	k.RunUntil(5) // collects the canceled event via peekTime
	c2 := k.Schedule(1, func() { ran += 100 })
	k.Schedule(2, func() { ran++ })
	c2.Cancel()
	k.Run() // collects via step
	if ran != 2 {
		t.Errorf("ran = %d, want 2 (canceled handlers must not fire)", ran)
	}
	if c1.Active() || c2.Active() {
		t.Error("canceled timers report active")
	}
}

// TestEventPoolReusePreservesOrder floods the kernel with self-rescheduling
// chains (the heartbeat pattern) and checks FIFO tie-breaking survives
// event reuse.
func TestEventPoolReusePreservesOrder(t *testing.T) {
	k := New(1)
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		var tick func()
		rounds := 0
		tick = func() {
			order = append(order, i)
			rounds++
			if rounds < 50 {
				k.Schedule(10, tick)
			}
		}
		k.Schedule(10, tick)
	}
	k.Run()
	if len(order) != 8*50 {
		t.Fatalf("fired %d events, want %d", len(order), 8*50)
	}
	for r := 0; r < 50; r++ {
		for i := 0; i < 8; i++ {
			if order[r*8+i] != i {
				t.Fatalf("round %d: position %d fired chain %d (FIFO broken by pooling)", r, i, order[r*8+i])
			}
		}
	}
}

// TestQuadHeapStressWithCancels hammers the hand-rolled 4-ary heap with a
// mixed workload — random delays (many duplicates to exercise seq
// tie-breaks), interleaved cancellations, and nested rescheduling — and
// checks every surviving event fires in nondecreasing time with FIFO order
// inside each instant. This is the direct regression net for the
// container/heap -> 4-ary rewrite: (at, seq) is a strict total order, so any
// correct heap must pop in exactly this order.
func TestQuadHeapStressWithCancels(t *testing.T) {
	k := New(99)
	rng := rand.New(rand.NewSource(99))
	type fired struct {
		at  Time
		seq int
	}
	var got []fired
	var timers []Timer
	n := 0
	for i := 0; i < 3000; i++ {
		d := Time(rng.Intn(50)) * time.Millisecond // heavy tie density
		seq := n
		n++
		tm := k.Schedule(d, func() { got = append(got, fired{k.Now(), seq}) })
		timers = append(timers, tm)
	}
	// Cancel a third of them, including some already-popped edge positions.
	canceled := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		j := rng.Intn(len(timers))
		timers[j].Cancel()
		canceled[j] = true
	}
	k.Run()
	if want := 3000 - len(canceled); len(got) != want {
		t.Fatalf("fired %d events, want %d", len(got), want)
	}
	for i := 1; i < len(got); i++ {
		if got[i].at < got[i-1].at {
			t.Fatalf("event %d fired at %v before %v", i, got[i].at, got[i-1].at)
		}
		if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
			t.Fatalf("same-instant events out of FIFO order: seq %d after %d",
				got[i].seq, got[i-1].seq)
		}
	}
	for i, f := range got {
		if canceled[f.seq] {
			t.Fatalf("canceled event %d fired (position %d)", f.seq, i)
		}
	}
}

// TestScheduleArg checks the closure-free scheduling variant: ordering is
// identical to Schedule, the argument round-trips, and Cancel works.
func TestScheduleArg(t *testing.T) {
	k := New(1)
	var order []int
	record := func(arg any) { order = append(order, *arg.(*int)) }
	vals := []int{10, 20, 30, 40}
	k.Schedule(2*time.Millisecond, func() { order = append(order, 99) })
	k.ScheduleArg(1*time.Millisecond, record, &vals[0])
	k.ScheduleArg(2*time.Millisecond, record, &vals[1]) // ties with the closure above, later seq
	tm := k.ScheduleArg(3*time.Millisecond, record, &vals[2])
	k.ScheduleArg(4*time.Millisecond, record, &vals[3])
	tm.Cancel()
	if tm.Active() {
		t.Fatal("canceled ScheduleArg timer still active")
	}
	k.Run()
	want := []int{10, 99, 20, 40}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestScheduleArgNilPanics pins the nil-handler guard on the arg variant.
func TestScheduleArgNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleArg(nil) did not panic")
		}
	}()
	New(1).ScheduleArg(time.Millisecond, nil, 7)
}
