package sim

// SplitMix64 is the finalizer from Steele et al.'s SplitMix64 generator — a
// strong 64-bit mixer. It is the repository's one seed-derivation primitive:
// internal/replicate derives per-replica seeds from it, and internal/shard
// derives per-host random streams, so adjacent indices yield uncorrelated
// state in both.
func SplitMix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Stream is a tiny deterministic random stream: 8 bytes of state advanced by
// SplitMix64 per draw. It exists for simulations that keep one independent
// stream PER HOST — a *rand.Rand costs ~5 KB of state (the runtime's lagged
// Fibonacci table), which at a million hosts is gigabytes; a Stream costs one
// word. Statistical quality is far below math/rand's generator but entirely
// adequate for Bernoulli loss draws and delay jitter, and every draw is a
// pure function of (seed, draw index): stream consumption can never depend
// on scheduling, which is what makes sharded runs reproducible at any
// shard or worker count.
//
// The zero value is a valid stream (seeded with 0); NewStream mixes the seed
// once so that adjacent seeds do not produce adjacent first draws.
type Stream struct {
	state uint64
}

// NewStream returns a stream whose draws are a pure function of seed.
func NewStream(seed uint64) Stream {
	return Stream{state: SplitMix64(seed)}
}

// Uint64 returns the next 64 random bits.
func (s *Stream) Uint64() uint64 {
	s.state = SplitMix64(s.state)
	return s.state
}

// Float64 returns the next draw in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Int63n returns the next draw in [0, n). It panics if n <= 0. The simple
// modulo reduction carries a bias below 2^-40 for the millisecond-scale
// bounds the simulator uses — negligible against the loss probabilities
// being modeled, and branch-free on the hot path.
func (s *Stream) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive bound")
	}
	return int64(s.Uint64()>>1) % n
}
