// Package membership maintains a host's view of system-wide failures: the
// set of nodes it believes have failed, with the epoch and time at which it
// learned of each failure. The failure detection service feeds this view
// from local detections, health-status updates, and inter-cluster failure
// reports; applications query it ("which hosts are gone?") and maintenance
// logic uses its size to decide when to replenish the field (Section 2.1).
package membership

import (
	"slices"
	"sort"

	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// Record describes one believed failure.
type Record struct {
	// Node is the failed host.
	Node wire.NodeID
	// Epoch is the FDS epoch attributed to the failure report.
	Epoch wire.Epoch
	// LearnedAt is the local virtual time at which this host first learned
	// of the failure. The detection-latency experiments read it.
	LearnedAt sim.Time
}

// View is one host's failure knowledge. The zero value is ready to use.
type View struct {
	failed map[wire.NodeID]Record
}

// MarkFailed records that node failed, attributed to the given epoch.
// It reports whether the fact was new to this view. Later reports about an
// already-known failure never overwrite the original record, so LearnedAt
// always reflects first knowledge.
func (v *View) MarkFailed(node wire.NodeID, epoch wire.Epoch, at sim.Time) bool {
	if node == wire.NoNode {
		return false
	}
	if v.failed == nil {
		v.failed = make(map[wire.NodeID]Record)
	}
	if _, known := v.failed[node]; known {
		return false
	}
	v.failed[node] = Record{Node: node, Epoch: epoch, LearnedAt: at}
	return true
}

// Merge marks every listed node failed, returning how many were new.
func (v *View) Merge(nodes []wire.NodeID, epoch wire.Epoch, at sim.Time) int {
	added := 0
	for _, n := range nodes {
		if v.MarkFailed(n, epoch, at) {
			added++
		}
	}
	return added
}

// Forget removes a node from the failed set (local re-admission after a
// false detection is recognized: under fail-stop, a heartbeat from an
// allegedly failed node proves it never failed).
func (v *View) Forget(node wire.NodeID) bool {
	if _, known := v.failed[node]; !known {
		return false
	}
	delete(v.failed, node)
	return true
}

// IsFailed reports whether the view believes node has failed.
func (v *View) IsFailed(node wire.NodeID) bool {
	_, known := v.failed[node]
	return known
}

// Record returns the failure record for node, if any.
func (v *View) Record(node wire.NodeID) (Record, bool) {
	r, ok := v.failed[node]
	return r, ok
}

// Len returns the number of believed failures.
func (v *View) Len() int { return len(v.failed) }

// Failed returns the believed-failed nodes in NID order.
func (v *View) Failed() []wire.NodeID {
	return v.AppendFailed(make([]wire.NodeID, 0, len(v.failed)))
}

// AppendFailed appends the believed-failed nodes to dst in NID order; only
// the appended tail is sorted. Hot paths pass a reused scratch slice so the
// per-epoch health update carries the cumulative set without reallocating it.
func (v *View) AppendFailed(dst []wire.NodeID) []wire.NodeID {
	start := len(dst)
	for n := range v.failed {
		dst = append(dst, n)
	}
	slices.Sort(dst[start:])
	return dst
}

// Records returns all failure records in NID order.
func (v *View) Records() []Record {
	out := make([]Record, 0, len(v.failed))
	for _, r := range v.failed {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}
