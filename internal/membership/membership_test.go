package membership

import (
	"testing"
	"time"

	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

func TestMarkFailed(t *testing.T) {
	var v View
	if v.IsFailed(1) || v.Len() != 0 {
		t.Fatal("zero view should be empty")
	}
	if !v.MarkFailed(1, 3, sim.Time(time.Second)) {
		t.Fatal("first mark should be new")
	}
	if v.MarkFailed(1, 9, sim.Time(5*time.Second)) {
		t.Fatal("second mark should not be new")
	}
	r, ok := v.Record(1)
	if !ok || r.Epoch != 3 || r.LearnedAt != sim.Time(time.Second) {
		t.Errorf("record = %+v; first knowledge must be preserved", r)
	}
	if !v.IsFailed(1) || v.Len() != 1 {
		t.Error("view inconsistent after mark")
	}
}

func TestMarkFailedNoNode(t *testing.T) {
	var v View
	if v.MarkFailed(wire.NoNode, 1, 0) {
		t.Error("NoNode should never be recorded")
	}
}

func TestMerge(t *testing.T) {
	var v View
	added := v.Merge([]wire.NodeID{5, 3, 5, 7}, 2, 0)
	if added != 3 {
		t.Errorf("Merge added %d, want 3 (duplicate collapses)", added)
	}
	if got := v.Failed(); len(got) != 3 || got[0] != 3 || got[1] != 5 || got[2] != 7 {
		t.Errorf("Failed = %v, want [3 5 7]", got)
	}
	if added := v.Merge([]wire.NodeID{3, 9}, 4, 0); added != 1 {
		t.Errorf("second Merge added %d, want 1", added)
	}
}

func TestForget(t *testing.T) {
	var v View
	v.MarkFailed(4, 1, 0)
	if !v.Forget(4) {
		t.Error("Forget of known failure should return true")
	}
	if v.Forget(4) {
		t.Error("Forget of unknown failure should return false")
	}
	if v.IsFailed(4) {
		t.Error("node still failed after Forget")
	}
}

func TestRecordsSorted(t *testing.T) {
	var v View
	for _, n := range []wire.NodeID{9, 2, 5} {
		v.MarkFailed(n, 1, 0)
	}
	rs := v.Records()
	if len(rs) != 3 || rs[0].Node != 2 || rs[1].Node != 5 || rs[2].Node != 9 {
		t.Errorf("Records = %v", rs)
	}
}

func TestRecordMissing(t *testing.T) {
	var v View
	if _, ok := v.Record(1); ok {
		t.Error("Record on empty view should report !ok")
	}
}
