package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	denom := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b)/denom <= tol
}

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 2}, Point{1, 2}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-3, -4}, Point{0, 0}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
			if got := tt.p.Dist2(tt.q); !almostEqual(got, tt.want*tt.want, 1e-9) {
				t.Errorf("Dist2(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want*tt.want)
			}
		})
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		s := func(x float64) float64 { return math.Mod(x, 1e6) }
		p, q := Point{s(ax), s(ay)}, Point{s(bx), s(by)}
		return almostEqual(p.Dist(q), q.Dist(p), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Scale inputs into a sane range to avoid overflow-driven noise.
		s := func(x float64) float64 { return math.Mod(x, 1e6) }
		a, b, c := Point{s(ax), s(ay)}, Point{s(bx), s(by)}, Point{s(cx), s(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWithinRange(t *testing.T) {
	p := Point{0, 0}
	tests := []struct {
		name string
		q    Point
		r    float64
		want bool
	}{
		{"inside", Point{50, 0}, 100, true},
		{"exactly on boundary", Point{100, 0}, 100, true},
		{"outside", Point{100.001, 0}, 100, false},
		{"diagonal inside", Point{70, 70}, 100, true},
		{"diagonal outside", Point{71, 71}, 100, false},
		{"zero range same point", Point{0, 0}, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := p.WithinRange(tt.q, tt.r); got != tt.want {
				t.Errorf("WithinRange(%v, %v) = %v, want %v", tt.q, tt.r, got, tt.want)
			}
		})
	}
}

func TestRect(t *testing.T) {
	r := NewRect(300, 200)
	if r.Width() != 300 || r.Height() != 200 {
		t.Fatalf("Width/Height = %v/%v, want 300/200", r.Width(), r.Height())
	}
	if r.Area() != 60000 {
		t.Fatalf("Area = %v, want 60000", r.Area())
	}
	if got := r.Center(); got != (Point{150, 100}) {
		t.Fatalf("Center = %v, want (150,100)", got)
	}
	if !r.Contains(Point{0, 0}) || !r.Contains(Point{300, 200}) {
		t.Error("corners should be contained")
	}
	if r.Contains(Point{-1, 0}) || r.Contains(Point{0, 201}) {
		t.Error("points outside should not be contained")
	}
}

func TestUniformInRectStaysInside(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := Rect{MinX: -10, MinY: 5, MaxX: 20, MaxY: 45}
	for i := 0; i < 1000; i++ {
		if p := UniformInRect(rng, r); !r.Contains(p) {
			t.Fatalf("point %v outside rect %v", p, r)
		}
	}
}

func TestUniformInDiskStaysInside(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := Point{10, -3}
	for i := 0; i < 1000; i++ {
		if p := UniformInDisk(rng, c, 7); !p.WithinRange(c, 7+1e-9) {
			t.Fatalf("point %v outside disk", p)
		}
	}
}

// TestUniformInDiskIsAreaUniform checks that the fraction of samples landing
// within half the radius is ~1/4 (area-uniform), not ~1/2 (radius-uniform).
func TestUniformInDiskIsAreaUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := Point{0, 0}
	const n = 200000
	inner := 0
	for i := 0; i < n; i++ {
		if UniformInDisk(rng, c, 1).WithinRange(c, 0.5) {
			inner++
		}
	}
	frac := float64(inner) / n
	if !almostEqual(frac, 0.25, 0.01) {
		t.Errorf("fraction within r/2 = %v, want ~0.25", frac)
	}
}

func TestPlaceUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	field := NewRect(1000, 1000)
	pts := PlaceUniformRect(rng, field, 250)
	if len(pts) != 250 {
		t.Fatalf("got %d points, want 250", len(pts))
	}
	for _, p := range pts {
		if !field.Contains(p) {
			t.Fatalf("point %v outside field", p)
		}
	}
	disk := PlaceUniformDisk(rng, Point{50, 50}, 100, 75)
	if len(disk) != 75 {
		t.Fatalf("got %d points, want 75", len(disk))
	}
}

func TestOnCircle(t *testing.T) {
	c := Point{5, 5}
	for _, angle := range []float64{0, math.Pi / 3, math.Pi, 4.2} {
		p := OnCircle(c, 100, angle)
		if !almostEqual(p.Dist(c), 100, 1e-9) {
			t.Errorf("OnCircle(angle=%v) at distance %v, want 100", angle, p.Dist(c))
		}
	}
}

func TestLensAreaSpecialCases(t *testing.T) {
	tests := []struct {
		name      string
		r1, r2, d float64
		want      float64
		approx    bool
		approxTol float64
	}{
		{name: "disjoint", r1: 1, r2: 1, d: 3, want: 0},
		{name: "touching externally", r1: 1, r2: 1, d: 2, want: 0},
		{name: "concentric equal", r1: 2, r2: 2, d: 0, want: DiskArea(2)},
		{name: "contained", r1: 5, r2: 1, d: 1, want: DiskArea(1)},
		{name: "contained reversed", r1: 1, r2: 5, d: 1, want: DiskArea(1)},
		{name: "negative distance", r1: 1, r2: 1, d: -1, want: 0},
		{name: "unit disks at distance 1", r1: 1, r2: 1, d: 1,
			want: 2 * (math.Pi/3 - math.Sqrt(3)/4), approx: true, approxTol: 1e-12},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := LensArea(tt.r1, tt.r2, tt.d)
			tol := 1e-12
			if tt.approx {
				tol = tt.approxTol
			}
			if !almostEqual(got, tt.want, tol) {
				t.Errorf("LensArea(%v,%v,%v) = %v, want %v", tt.r1, tt.r2, tt.d, got, tt.want)
			}
		})
	}
}

func TestLensAreaSymmetricInRadii(t *testing.T) {
	f := func(r1, r2, d float64) bool {
		r1, r2, d = math.Abs(math.Mod(r1, 100)), math.Abs(math.Mod(r2, 100)), math.Abs(math.Mod(d, 300))
		return relClose(LensArea(r1, r2, d), LensArea(r2, r1, d), 1e-9) ||
			almostEqual(LensArea(r1, r2, d), LensArea(r2, r1, d), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLensAreaMonotoneInDistance(t *testing.T) {
	prev := math.Inf(1)
	for d := 0.0; d <= 2.05; d += 0.05 {
		a := LensArea(1, 1, d)
		if a > prev+1e-12 {
			t.Fatalf("LensArea increased at d=%v: %v > %v", d, a, prev)
		}
		prev = a
	}
}

// TestNeighborhoodAreaAgreement is the keystone geometry test: the paper's
// integral, the lens closed form, and Monte Carlo sampling must all agree.
func TestNeighborhoodAreaAgreement(t *testing.T) {
	const r = 100.0
	integral := NeighborhoodAreaIntegral(r)
	closed := NeighborhoodArea(r)
	if !relClose(integral, closed, 1e-8) {
		t.Errorf("integral %v vs closed form %v", integral, closed)
	}
	lens := LensArea(r, r, r)
	if !relClose(closed, lens, 1e-9) {
		t.Errorf("closed form %v vs LensArea %v", closed, lens)
	}
	rng := rand.New(rand.NewSource(5))
	center := Point{0, 0}
	onEdge := OnCircle(center, r, 1.234)
	mc := IntersectionAreaMonteCarlo(rng, center, r, onEdge, r, 400000)
	if !relClose(closed, mc, 0.02) {
		t.Errorf("closed form %v vs Monte Carlo %v", closed, mc)
	}
}

func TestNeighborhoodFraction(t *testing.T) {
	a := NeighborhoodFraction()
	// The paper-critical constant: ~0.3910.
	if !almostEqual(a, 0.39100, 5e-4) {
		t.Errorf("NeighborhoodFraction = %v, want ~0.391", a)
	}
	// Scale invariance.
	for _, r := range []float64{1, 10, 100, 12345} {
		if got := NeighborhoodArea(r) / DiskArea(r); !relClose(got, a, 1e-12) {
			t.Errorf("fraction at r=%v is %v, want %v", r, got, a)
		}
	}
}

func TestIntersectionAreaMonteCarloDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if got := IntersectionAreaMonteCarlo(rng, Point{}, 1, Point{10, 0}, 1, 0); got != 0 {
		t.Errorf("zero samples should give 0, got %v", got)
	}
	if got := IntersectionAreaMonteCarlo(rng, Point{}, 1, Point{10, 0}, 1, 1000); got != 0 {
		t.Errorf("disjoint disks should give 0, got %v", got)
	}
}

func TestAdaptiveSimpsonKnownIntegrals(t *testing.T) {
	tests := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"constant", func(x float64) float64 { return 2 }, 0, 3, 6},
		{"linear", func(x float64) float64 { return x }, 0, 4, 8},
		{"quadratic", func(x float64) float64 { return x * x }, 0, 1, 1.0 / 3},
		{"sine over period", math.Sin, 0, 2 * math.Pi, 0},
		{"quarter circle", func(x float64) float64 { return math.Sqrt(math.Max(0, 1-x*x)) }, 0, 1, math.Pi / 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := adaptiveSimpson(tt.f, tt.a, tt.b, 1e-10, 30)
			if !almostEqual(got, tt.want, 1e-7) {
				t.Errorf("integral = %v, want %v", got, tt.want)
			}
		})
	}
}
