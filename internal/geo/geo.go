// Package geo provides the 2-D geometry primitives used throughout the
// simulator and the analytic models: points and distances, uniform random
// placement of hosts in rectangular and circular fields, unit-disk
// intersection areas, and the specific neighborhood-area integral used by
// the paper's probabilistic analysis (Section 5, Figure 4(b)).
//
// All lengths are in meters and all areas in square meters, matching the
// paper's assumption of a 100 m transmission range.
package geo

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a location in the 2-D deployment field.
type Point struct {
	X, Y float64
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point {
	return Point{X: p.X + dx, Y: p.Y + dy}
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root for range comparisons on the hot path of the radio medium.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// WithinRange reports whether q lies within transmission range r of p
// (inclusive, matching the paper's definition of a one-hop neighbor: "at a
// distance from v less than or equal to R").
func (p Point) WithinRange(q Point, r float64) bool {
	return p.Dist2(q) <= r*r
}

// String implements fmt.Stringer for debugging and traces.
func (p Point) String() string {
	return fmt.Sprintf("(%.1f, %.1f)", p.X, p.Y)
}

// Rect is an axis-aligned rectangular deployment field.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanning [0,w] x [0,h].
func NewRect(w, h float64) Rect {
	return Rect{MaxX: w, MaxY: h}
}

// Width returns the horizontal extent of the rectangle.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of the rectangle.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Contains reports whether p lies inside the rectangle (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Center returns the rectangle's center point.
func (r Rect) Center() Point {
	return Point{X: (r.MinX + r.MaxX) / 2, Y: (r.MinY + r.MaxY) / 2}
}

// UniformInRect draws a point uniformly at random inside r.
func UniformInRect(rng *rand.Rand, r Rect) Point {
	return Point{
		X: r.MinX + rng.Float64()*r.Width(),
		Y: r.MinY + rng.Float64()*r.Height(),
	}
}

// UniformInDisk draws a point uniformly at random inside the disk of radius
// radius centered at c, using the inverse-CDF method so the distribution is
// uniform over area rather than over radius.
func UniformInDisk(rng *rand.Rand, c Point, radius float64) Point {
	r := radius * math.Sqrt(rng.Float64())
	theta := 2 * math.Pi * rng.Float64()
	return Point{X: c.X + r*math.Cos(theta), Y: c.Y + r*math.Sin(theta)}
}

// PlaceUniformRect places n points uniformly at random in the rectangle.
// It is the standard deployment model for air-dropped sensor fields.
func PlaceUniformRect(rng *rand.Rand, field Rect, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = UniformInRect(rng, field)
	}
	return pts
}

// PlaceUniformDisk places n points uniformly at random in the disk of the
// given radius around c. The paper's per-cluster analysis assumes cluster
// members are "statistically uniformly distributed" over the cluster disk.
func PlaceUniformDisk(rng *rand.Rand, c Point, radius float64, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = UniformInDisk(rng, c, radius)
	}
	return pts
}

// OnCircle returns the point at the given angle (radians) on the circle of
// the given radius around c. Used to place worst-case nodes on a cluster's
// circumference, as in the paper's upper-bound analysis.
func OnCircle(c Point, radius, angle float64) Point {
	return Point{X: c.X + radius*math.Cos(angle), Y: c.Y + radius*math.Sin(angle)}
}

// DiskArea returns the area of a disk with the given radius.
func DiskArea(radius float64) float64 {
	return math.Pi * radius * radius
}

// LensArea returns the area of the intersection of two disks of radii r1 and
// r2 whose centers are distance d apart. It handles the degenerate cases of
// disjoint disks (0) and containment (area of the smaller disk).
func LensArea(r1, r2, d float64) float64 {
	if r1 < 0 || r2 < 0 || d < 0 {
		return 0
	}
	if d >= r1+r2 {
		return 0
	}
	small, big := math.Min(r1, r2), math.Max(r1, r2)
	if d <= big-small {
		return DiskArea(small)
	}
	// Standard circular-segment decomposition.
	d1 := (d*d + r1*r1 - r2*r2) / (2 * d)
	d2 := d - d1
	a1 := r1*r1*math.Acos(clamp(d1/r1, -1, 1)) - d1*math.Sqrt(math.Max(0, r1*r1-d1*d1))
	a2 := r2*r2*math.Acos(clamp(d2/r2, -1, 1)) - d2*math.Sqrt(math.Max(0, r2*r2-d2*d2))
	return a1 + a2
}

// clamp bounds x to [lo, hi], guarding Acos against floating-point drift.
func clamp(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}

// NeighborhoodAreaIntegral evaluates the paper's integral for the in-cluster
// neighborhood area An of a node located on the circumference of a cluster
// of radius R:
//
//	An = 4 * Integral[0, c] (sqrt(R^2 - x^2) - R/2) dx,  c = sqrt(R^2 - (R/2)^2)
//
// (Section 5.1, Figure 4(b)). It integrates numerically with adaptive
// Simpson quadrature; NeighborhoodArea gives the closed form. Both are
// exported so tests can verify they agree.
func NeighborhoodAreaIntegral(radius float64) float64 {
	c := math.Sqrt(radius*radius - (radius/2)*(radius/2))
	f := func(x float64) float64 {
		return math.Sqrt(math.Max(0, radius*radius-x*x)) - radius/2
	}
	return 4 * adaptiveSimpson(f, 0, c, 1e-10, 30)
}

// NeighborhoodArea returns the closed-form value of the same area: it is the
// lens of two radius-R disks at center distance R, 2R^2(pi/3 - sqrt(3)/4).
func NeighborhoodArea(radius float64) float64 {
	return 2 * radius * radius * (math.Pi/3 - math.Sqrt(3)/4)
}

// NeighborhoodFraction returns a = An/Au, the fraction of the cluster disk
// covered by the neighborhood of a node on the circumference (~0.391). This
// constant is scale-free: it does not depend on the radius.
func NeighborhoodFraction() float64 {
	const r = 1.0
	return NeighborhoodArea(r) / DiskArea(r)
}

// adaptiveSimpson integrates f over [a,b] with tolerance eps, recursing at
// most depth levels.
func adaptiveSimpson(f func(float64) float64, a, b, eps float64, depth int) float64 {
	c := (a + b) / 2
	fa, fb, fc := f(a), f(b), f(c)
	s := simpson(fa, fc, fb, a, b)
	return adaptiveSimpsonRec(f, a, b, eps, s, fa, fb, fc, depth)
}

func simpson(fa, fc, fb, a, b float64) float64 {
	return (b - a) / 6 * (fa + 4*fc + fb)
}

func adaptiveSimpsonRec(f func(float64) float64, a, b, eps, whole, fa, fb, fc float64, depth int) float64 {
	c := (a + b) / 2
	lm, rm := (a+c)/2, (c+b)/2
	flm, frm := f(lm), f(rm)
	left := simpson(fa, flm, fc, a, c)
	right := simpson(fc, frm, fb, c, b)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*eps {
		return left + right + (left+right-whole)/15
	}
	return adaptiveSimpsonRec(f, a, c, eps/2, left, fa, fc, flm, depth-1) +
		adaptiveSimpsonRec(f, c, b, eps/2, right, fc, fb, frm, depth-1)
}

// IntersectionAreaMonteCarlo estimates, by rejection sampling with the given
// number of samples, the area of the region inside the disk (c1, r1) that is
// also inside the disk (c2, r2). It exists to cross-validate the closed
// forms in tests and in the DCH-reachability study.
func IntersectionAreaMonteCarlo(rng *rand.Rand, c1 Point, r1 float64, c2 Point, r2 float64, samples int) float64 {
	if samples <= 0 {
		return 0
	}
	hit := 0
	for i := 0; i < samples; i++ {
		p := UniformInDisk(rng, c1, r1)
		if p.WithinRange(c2, r2) {
			hit++
		}
	}
	return DiskArea(r1) * float64(hit) / float64(samples)
}
