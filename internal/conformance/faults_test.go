package conformance

import (
	"testing"

	"clusterfds/internal/cluster"
	"clusterfds/internal/fds"
	"clusterfds/internal/geo"
	"clusterfds/internal/intercluster"
	"clusterfds/internal/node"
	"clusterfds/internal/sim"
	"clusterfds/internal/transport"
	"clusterfds/internal/wire"
)

// faultRun assembles a full stack over a mesh with the given fault
// parameters, crashes one host, and returns the per-host FDS protocols for
// assertions. Deterministic: everything derives from the seed.
func faultRun(t *testing.T, seed int64, params transport.MeshParams, nodes int, crash wire.NodeID, crashAt sim.Time, epochs int) map[wire.NodeID]*fds.Protocol {
	t.Helper()
	k := sim.New(seed)
	mesh := transport.NewMesh(k, params)
	timing := cluster.DefaultTiming()
	fdss := make(map[wire.NodeID]*fds.Protocol, nodes)
	hosts := make([]*node.Host, 0, nodes)
	for i := 1; i <= nodes; i++ {
		id := wire.NodeID(i)
		h := node.New(k, mesh, id, geo.Point{})
		cl := cluster.New(cluster.DefaultConfig())
		f := fds.New(fds.DefaultConfig(timing), cl)
		ic := intercluster.New(intercluster.DefaultConfig(timing), cl, f)
		h.Use(cl)
		h.Use(f)
		h.Use(ic)
		fdss[id] = f
		hosts = append(hosts, h)
	}
	for _, h := range hosts {
		h.Boot()
	}
	k.At(crashAt, hosts[crash-1].Crash)
	k.RunUntil(sim.Time(epochs)*timing.Interval + timing.Interval/2)
	return fdss
}

// TestFaultyTransportDoesNotWedgeProtocol drives the stack through a mesh
// that drops, duplicates, AND reorders datagrams (high loss, 20% dup, a
// delay window wider than a round, so a dup or straggler can land after
// later messages) and asserts the paper's guarantees still hold:
//
//   - liveness: every survivor's FDS keeps executing epochs to the end;
//   - detection: every survivor learns of the crashed host;
//   - bounded inaccuracy: false suspicions are allowed (the paper's
//     accuracy is probabilistic, and at 20% loss a rescission can itself
//     be lost), but they must stay within bounds — at most one live host
//     may end the run suspected, and that host must itself remain live
//     (a false detection ejects it from the cluster; it must not wedge it).
func TestFaultyTransportDoesNotWedgeProtocol(t *testing.T) {
	const (
		nodes    = 8
		epochs   = 6
		crashed  = wire.NodeID(5)
		phi      = sim.Time(10 * 1e9)
		finalMin = wire.Epoch(epochs - 1)
	)
	params := transport.DefaultMeshParams(0.20)
	params.DupProb = 0.20
	params.MaxDelay = 30e6 // 30 ms > Thop: stragglers cross round boundaries
	for _, seed := range []int64{1, 3, 11} {
		fdss := faultRun(t, seed, params, nodes, crashed, sim.Time(2*phi+phi/3), epochs)
		victims := make(map[wire.NodeID]bool)
		for id, f := range fdss {
			if id == crashed {
				continue
			}
			if f.Epoch() < finalMin {
				t.Errorf("seed %d: node %v wedged at epoch %v (want >= %v)", seed, id, f.Epoch(), finalMin)
			}
			if !f.IsSuspected(crashed) {
				t.Errorf("seed %d: node %v never detected crashed node %v", seed, id, crashed)
			}
			for other := wire.NodeID(1); other <= nodes; other++ {
				if other != id && other != crashed && f.IsSuspected(other) {
					victims[other] = true
				}
			}
		}
		if len(victims) > 1 {
			t.Errorf("seed %d: %d live hosts end the run falsely suspected (want <= 1): %v", seed, len(victims), victims)
		}
		for v := range victims {
			if fdss[v].Epoch() < finalMin {
				t.Errorf("seed %d: falsely suspected node %v wedged at epoch %v", seed, v, fdss[v].Epoch())
			}
		}
	}
}

// TestDuplicatedDeliveriesAreIdempotent pins that duplication alone (no
// loss at all, so every message arrives exactly twice) leaves the protocol
// in a correct state — received-twice must be indistinguishable from
// received-once at the state-machine level.
func TestDuplicatedDeliveriesAreIdempotent(t *testing.T) {
	const nodes, epochs = 6, 4
	params := transport.DefaultMeshParams(0)
	params.DupProb = 1.0
	fdss := faultRun(t, 5, params, nodes, 2, sim.Time(15*1e9), epochs)
	for id, f := range fdss {
		if id == 2 {
			continue
		}
		if f.Epoch() < wire.Epoch(epochs-1) {
			t.Errorf("node %v wedged at epoch %v under duplication", id, f.Epoch())
		}
		if !f.IsSuspected(2) {
			t.Errorf("node %v missed the crash under duplication", id)
		}
		for other := wire.NodeID(1); other <= nodes; other++ {
			if other != id && other != 2 && f.IsSuspected(other) {
				t.Errorf("node %v falsely suspects %v under duplication", id, other)
			}
		}
	}
}

// TestExtremeLossStillLive pins liveness (epochs keep executing) even when
// the channel drops half of all datagrams: the FDS may suspect and rescind,
// but the epoch schedule is clock-driven and must never stall.
func TestExtremeLossStillLive(t *testing.T) {
	const nodes, epochs = 6, 5
	params := transport.DefaultMeshParams(0.50)
	fdss := faultRun(t, 9, params, nodes, 3, sim.Time(25*1e9), epochs)
	for id, f := range fdss {
		if id == 3 {
			continue
		}
		if f.Epoch() < wire.Epoch(epochs-1) {
			t.Errorf("node %v wedged at epoch %v under 50%% loss", id, f.Epoch())
		}
	}
}
