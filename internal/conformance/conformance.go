// Package conformance is the differential sim-vs-live harness: it replays
// one scripted scenario through two independent Transport backends — the
// simulated radio medium (internal/radio) and the in-process mesh
// (internal/transport.Mesh, the deterministic core of the live channel/UDP
// path) — and asserts that the protocol stack behaved identically.
//
// "Identically" is checked at three levels, strongest first:
//
//  1. the full trace event sequence (every send, delivery, loss, crash,
//     election, detection, takeover — with timestamps), which pins the
//     per-host state-machine transition order;
//  2. the global sequence of emitted messages as wire bytes, which pins
//     that both backends carried byte-identical traffic;
//  3. the final protocol state of every host (FDS epoch and failed set,
//     cluster role and membership) plus its exact energy spend.
//
// The comparison is exact, not statistical: both backends consume the same
// seeded kernel, and the mesh mirrors the radio's per-receiver randomness
// draw order (see transport.Mesh). The scenario keeps every host inside one
// radio grid cell of a 100 m-range medium, so the radio's receiver
// iteration order (grid insertion order) coincides with the mesh's join
// order and the unit-disk geometry never filters anyone out — making the
// two backends' observable behaviour equal by construction, which is
// exactly the property this suite turns into a machine check for every
// future PR.
package conformance

import (
	"fmt"
	"math/rand"
	"slices"

	"clusterfds/internal/cluster"
	"clusterfds/internal/fds"
	"clusterfds/internal/geo"
	"clusterfds/internal/intercluster"
	"clusterfds/internal/node"
	"clusterfds/internal/radio"
	"clusterfds/internal/sim"
	"clusterfds/internal/trace"
	"clusterfds/internal/transport"
	"clusterfds/internal/wire"
)

// fieldSide bounds host placement. 60 m with a 100 m radio range keeps
// every pair within range (diagonal ~85 m) and every host inside the radio
// grid's origin cell, so receiver order matches mesh join order.
const fieldSide = 60.0

// Crash schedules one fail-stop.
type Crash struct {
	Node wire.NodeID
	At   sim.Time
}

// Scenario is one scripted run, replayable on either backend.
type Scenario struct {
	// Seed seeds the kernel (and, xored, the placement source).
	Seed int64
	// Nodes is the host count; NIDs are 1..Nodes, attached in order.
	Nodes int
	// Loss is the per-receiver loss probability on both backends.
	Loss float64
	// Epochs is how many heartbeat intervals to run (plus half an interval
	// of drain).
	Epochs int
	// Crashes are the scripted fail-stops.
	Crashes []Crash
	// DupProb, if nonzero, enables datagram duplication on the mesh
	// backend. Conformance scenarios leave it zero (the radio cannot
	// duplicate); the transport-fault tests set it.
	DupProb float64
	// MaxDelay, if nonzero, overrides the delivery-delay upper bound on
	// both backends (fault tests widen it to force reordering).
	MaxDelay sim.Time
}

// SendRecord is one emitted message: who sent it and the exact wire bytes.
type SendRecord struct {
	From  wire.NodeID
	Bytes []byte
}

// Result is everything a run exposes for comparison.
type Result struct {
	// Trace is the full event sequence (hosts and transport share one sink).
	Trace []trace.Event
	// Sends is the global emitted-message sequence as wire bytes.
	Sends []SendRecord
	// States holds one rendered protocol-state snapshot per host, NID order.
	States []string
	// Energy is each host's exact cumulative energy spend, NID order.
	Energy []float64
}

// recordingTransport interposes on Send to capture the wire bytes of every
// emitted message before handing it to the real backend. It works on any
// backend — that it can is the point of the Transport seam.
type recordingTransport struct {
	transport.Transport
	sends *[]SendRecord
}

func (r *recordingTransport) Send(from wire.NodeID, m wire.Message) {
	*r.sends = append(*r.sends, SendRecord{From: from, Bytes: wire.Encode(m)})
	r.Transport.Send(from, m)
}

// RunSim replays the scenario on the simulated radio medium.
func RunSim(sc Scenario) *Result {
	k := sim.New(sc.Seed)
	mem := trace.NewMemory()
	params := radio.Defaults(sc.Loss)
	if sc.MaxDelay > 0 {
		params.MaxDelay = sc.MaxDelay
	}
	m := radio.New(k, params, radio.WithTrace(mem))
	return run(sc, k, m, mem, m.EnergySpent)
}

// RunMesh replays the scenario on the in-process mesh.
func RunMesh(sc Scenario) *Result {
	k := sim.New(sc.Seed)
	mem := trace.NewMemory()
	params := transport.DefaultMeshParams(sc.Loss)
	params.DupProb = sc.DupProb
	if sc.MaxDelay > 0 {
		params.MaxDelay = sc.MaxDelay
	}
	m := transport.NewMesh(k, params, transport.WithMeshTrace(mem))
	return run(sc, k, m, mem, func(id wire.NodeID) float64 { return m.Meter().Spent(id) })
}

// run assembles the identical host stack over the given backend and
// executes the script.
func run(sc Scenario, k *sim.Kernel, backend transport.Transport, mem *trace.Memory, spent func(wire.NodeID) float64) *Result {
	res := &Result{}
	rt := &recordingTransport{Transport: backend, sends: &res.Sends}

	// Placement draws from a private source so both backends consume the
	// kernel's stream identically; positions are still seed-dependent.
	placer := rand.New(rand.NewSource(sc.Seed ^ 0x51eDe7ec7))
	field := geo.NewRect(fieldSide, fieldSide)
	timing := cluster.DefaultTiming()

	hosts := make(map[wire.NodeID]*node.Host, sc.Nodes)
	cls := make(map[wire.NodeID]*cluster.Protocol, sc.Nodes)
	fdss := make(map[wire.NodeID]*fds.Protocol, sc.Nodes)
	for i := 1; i <= sc.Nodes; i++ {
		id := wire.NodeID(i)
		h := node.New(k, rt, id, geo.UniformInRect(placer, field), node.WithTrace(mem))
		cl := cluster.New(cluster.DefaultConfig())
		f := fds.New(fds.DefaultConfig(timing), cl)
		ic := intercluster.New(intercluster.DefaultConfig(timing), cl, f)
		h.Use(cl)
		h.Use(f)
		h.Use(ic)
		hosts[id], cls[id], fdss[id] = h, cl, f
	}
	for _, h := range sortedHosts(hosts) {
		h.Boot()
	}
	for _, c := range sc.Crashes {
		h, ok := hosts[c.Node]
		if !ok {
			panic(fmt.Sprintf("conformance: crash of unknown node %v", c.Node))
		}
		k.At(c.At, h.Crash)
	}

	k.RunUntil(sim.Time(sc.Epochs)*timing.Interval + timing.Interval/2)

	res.Trace = mem.Events()
	for i := 1; i <= sc.Nodes; i++ {
		id := wire.NodeID(i)
		res.States = append(res.States, renderState(id, fdss[id], cls[id]))
		res.Energy = append(res.Energy, spent(id))
	}
	return res
}

// sortedHosts returns the hosts in NID order (boot order must match on
// both backends).
func sortedHosts(hosts map[wire.NodeID]*node.Host) []*node.Host {
	ids := make([]wire.NodeID, 0, len(hosts))
	for id := range hosts {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	out := make([]*node.Host, len(ids))
	for i, id := range ids {
		out[i] = hosts[id]
	}
	return out
}

// renderState snapshots one host's protocol state as a canonical string.
func renderState(id wire.NodeID, f *fds.Protocol, cl *cluster.Protocol) string {
	v := cl.View()
	failed := append([]wire.NodeID(nil), f.KnownFailed()...)
	slices.Sort(failed)
	return fmt.Sprintf(
		"n%v epoch=%v active=%v updateReceived=%v failed=%v marked=%v ch=%v isCH=%v members=%v dchs=%v",
		id, f.Epoch(), f.Active(), f.UpdateReceived(), failed,
		v.Marked, v.CH, v.IsCH, v.Members, v.DCHs)
}

// Diff compares two results and returns "" if identical, otherwise a
// description of the first divergence at the strongest differing level.
func Diff(a, b *Result) string {
	if d := diffTrace(a.Trace, b.Trace); d != "" {
		return d
	}
	if d := diffSends(a.Sends, b.Sends); d != "" {
		return d
	}
	for i := range a.States {
		if i >= len(b.States) || a.States[i] != b.States[i] {
			return fmt.Sprintf("state[%d] differs:\n  a: %s\n  b: %s", i, a.States[i], at(b.States, i))
		}
	}
	if len(b.States) > len(a.States) {
		return fmt.Sprintf("b has %d extra host states", len(b.States)-len(a.States))
	}
	for i := range a.Energy {
		if i >= len(b.Energy) || a.Energy[i] != b.Energy[i] {
			return fmt.Sprintf("energy[n%d] differs: a=%v b=%v", i+1, a.Energy[i], b.Energy[i])
		}
	}
	return ""
}

func diffTrace(a, b []trace.Event) string {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("trace[%d] differs:\n  a: %v\n  b: %v", i, a[i], b[i])
		}
	}
	if len(a) != len(b) {
		return fmt.Sprintf("trace length differs: a=%d b=%d (first extra: %v)",
			len(a), len(b), firstExtra(a, b, n))
	}
	return ""
}

func diffSends(a, b []SendRecord) string {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i].From != b[i].From || !slices.Equal(a[i].Bytes, b[i].Bytes) {
			return fmt.Sprintf("send[%d] differs: a={from %v, %d bytes % x} b={from %v, %d bytes % x}",
				i, a[i].From, len(a[i].Bytes), a[i].Bytes, b[i].From, len(b[i].Bytes), b[i].Bytes)
		}
	}
	if len(a) != len(b) {
		return fmt.Sprintf("send count differs: a=%d b=%d", len(a), len(b))
	}
	return ""
}

func at(s []string, i int) string {
	if i < len(s) {
		return s[i]
	}
	return "<missing>"
}

func firstExtra(a, b []trace.Event, n int) trace.Event {
	if len(a) > n {
		return a[n]
	}
	return b[n]
}
