package conformance

import (
	"strings"
	"testing"

	"clusterfds/internal/sim"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

// base is the scripted scenario the differential suite replays: a dozen
// hosts, realistic loss, five epochs, and two fail-stops — one mid-epoch,
// one exactly on an epoch boundary (the boot/crash alignment the paper's
// fail-stop assumption singles out).
func base(seed int64) Scenario {
	const phi = 10 * 1e9 // DefaultTiming Interval in sim.Time units
	return Scenario{
		Seed:   seed,
		Nodes:  12,
		Loss:   0.05,
		Epochs: 5,
		Crashes: []Crash{
			{Node: 3, At: sim.Time(2*phi + phi/2)},
			{Node: 7, At: sim.Time(3 * phi)},
		},
	}
}

// TestSimAndMeshAreEquivalent is the headline differential check: the
// simulator backend and the mesh backend must produce the identical trace
// event sequence, the identical global wire-byte message sequence, the
// identical final protocol state on every host, and the identical energy
// spend — for several seeds.
func TestSimAndMeshAreEquivalent(t *testing.T) {
	for _, seed := range []int64{1, 2, 7, 42} {
		sc := base(seed)
		simRes := RunSim(sc)
		meshRes := RunMesh(sc)
		if d := Diff(simRes, meshRes); d != "" {
			t.Fatalf("seed %d: sim and mesh diverge:\n%s", seed, d)
		}
	}
}

// TestScenarioIsNonTrivial guards the harness against vacuity: the scripted
// scenario must actually exercise the stack — traffic flows, losses happen,
// clusters form, and the crashed hosts are detected.
func TestScenarioIsNonTrivial(t *testing.T) {
	res := RunSim(base(1))
	if len(res.Sends) == 0 {
		t.Fatal("scenario produced no traffic")
	}
	counts := map[trace.EventType]int{}
	for _, e := range res.Trace {
		counts[e.Type]++
	}
	for _, want := range []trace.EventType{
		trace.TypeSend, trace.TypeDeliver, trace.TypeDrop, trace.TypeCrash,
		trace.TypeCHElected, trace.TypeDetect,
	} {
		if counts[want] == 0 {
			t.Errorf("scenario produced no %q events", want)
		}
	}
	// Both crashed hosts must end up in some survivor's failed set.
	for _, crashed := range []string{"3", "7"} {
		found := false
		for i, st := range res.States {
			if i == 2 || i == 6 { // the crashed hosts themselves
				continue
			}
			if strings.Contains(st, crashed) && strings.Contains(st, "failed=[") &&
				strings.Contains(failedList(st), crashed) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no survivor detected crashed node %s; states:\n%s",
				crashed, strings.Join(res.States, "\n"))
		}
	}
}

// failedList extracts the "failed=[...]" list from a rendered state.
func failedList(st string) string {
	_, rest, ok := strings.Cut(st, "failed=[")
	if !ok {
		return ""
	}
	list, _, _ := strings.Cut(rest, "]")
	return list
}

// TestDiffDetectsDivergence is the negative control: the comparator must
// actually fire when the two runs differ, otherwise the equivalence test
// proves nothing.
func TestDiffDetectsDivergence(t *testing.T) {
	sc := base(1)
	ref := RunSim(sc)

	diffLoss := sc
	diffLoss.Loss = 0.10
	if d := Diff(ref, RunMesh(diffLoss)); d == "" {
		t.Error("comparator missed a loss-probability divergence")
	}

	diffSeed := sc
	diffSeed.Seed = 99
	if d := Diff(ref, RunMesh(diffSeed)); d == "" {
		t.Error("comparator missed a seed divergence")
	}

	diffCrash := sc
	diffCrash.Crashes = diffCrash.Crashes[:1]
	if d := Diff(ref, RunMesh(diffCrash)); d == "" {
		t.Error("comparator missed a crash-script divergence")
	}
}

// TestRecorderCapturesDecodableBytes pins that the recorded send stream is
// real wire traffic: every recorded payload decodes, and round-trips.
func TestRecorderCapturesDecodableBytes(t *testing.T) {
	res := RunSim(base(2))
	for i, s := range res.Sends {
		m, err := wire.Decode(s.Bytes)
		if err != nil {
			t.Fatalf("send[%d] from %v does not decode: %v", i, s.From, err)
		}
		if got := wire.Encode(m); string(got) != string(s.Bytes) {
			t.Fatalf("send[%d] does not round-trip", i)
		}
	}
}
