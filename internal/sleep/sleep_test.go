package sleep

import (
	"testing"

	"clusterfds/internal/cluster"
	"clusterfds/internal/fds"
	"clusterfds/internal/geo"
	"clusterfds/internal/node"
	"clusterfds/internal/radio"
	"clusterfds/internal/sim"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

type world struct {
	kernel *sim.Kernel
	medium *radio.Medium
	hosts  []*node.Host
	fdss   []*fds.Protocol
	sleeps []*Protocol
	timing cluster.Timing
	tracer *trace.Memory
}

func buildWorld(t *testing.T, seed int64, announce bool, positions []geo.Point) *world {
	t.Helper()
	k := sim.New(seed)
	tr := trace.NewMemory(trace.TypeDetect, trace.TypeViewUpdate)
	m := radio.New(k, radio.Defaults(0))
	w := &world{kernel: k, medium: m, timing: cluster.DefaultTiming(), tracer: tr}
	for i, pos := range positions {
		h := node.New(k, m, wire.NodeID(i+1), pos, node.WithTrace(tr))
		cl := cluster.New(cluster.DefaultConfig())
		f := fds.New(fds.DefaultConfig(w.timing), cl)
		scfg := DefaultConfig(w.timing)
		scfg.Announce = announce
		sl := New(scfg, cl)
		h.Use(cl)
		h.Use(f)
		h.Use(sl)
		w.hosts = append(w.hosts, h)
		w.fdss = append(w.fdss, f)
		w.sleeps = append(w.sleeps, sl)
		h.Boot()
	}
	return w
}

// star returns one cluster: node 1 center, rest on a ring.
func star(n int, radius float64) []geo.Point {
	pts := make([]geo.Point, n)
	for i := 1; i < n; i++ {
		pts[i] = geo.OnCircle(pts[0], radius, float64(i)*2*3.14159/float64(n-1))
	}
	return pts
}

func totalNaps(w *world) int {
	n := 0
	for _, s := range w.sleeps {
		n += s.Naps()
	}
	return n
}

func TestAnnouncedSleepCausesNoFalseDetections(t *testing.T) {
	w := buildWorld(t, 1, true, star(10, 60))
	w.kernel.RunUntil(w.timing.EpochStart(16))
	if totalNaps(w) == 0 {
		t.Fatal("nobody ever napped")
	}
	if n := w.tracer.Count(trace.TypeDetect); n != 0 {
		t.Errorf("%d detections with announced sleeping and p=0", n)
	}
	for i, f := range w.fdss {
		if got := f.KnownFailed(); len(got) != 0 {
			t.Errorf("node %d suspects %v", i+1, got)
		}
	}
}

func TestNaiveSleepCausesFalseDetections(t *testing.T) {
	w := buildWorld(t, 2, false, star(10, 60))
	w.kernel.RunUntil(w.timing.EpochStart(16))
	if totalNaps(w) == 0 {
		t.Fatal("nobody ever napped")
	}
	// The paper's warning, reproduced: naive sleepers get falsely
	// detected (and then rescinded on waking — churn, not permanence).
	if n := w.tracer.Count(trace.TypeDetect); n == 0 {
		t.Error("naive sleeping caused no false detections; the hazard is not being modeled")
	}
}

func TestSleepersSaveEnergy(t *testing.T) {
	run := func(announce bool, sleepAtAll bool) float64 {
		k := sim.New(3)
		m := radio.New(k, radio.Defaults(0))
		timing := cluster.DefaultTiming()
		for i, pos := range star(10, 60) {
			h := node.New(k, m, wire.NodeID(i+1), pos)
			cl := cluster.New(cluster.DefaultConfig())
			f := fds.New(fds.DefaultConfig(timing), cl)
			h.Use(cl)
			h.Use(f)
			if sleepAtAll {
				scfg := DefaultConfig(timing)
				scfg.Announce = announce
				h.Use(New(scfg, cl))
			}
			h.Boot()
		}
		k.RunUntil(timing.EpochStart(16))
		return m.TotalEnergySpent()
	}
	withSleep := run(true, true)
	without := run(true, false)
	if withSleep >= without {
		t.Errorf("duty cycling saved no energy: %v vs %v", withSleep, without)
	}
}

func TestStructuralRolesNeverNap(t *testing.T) {
	w := buildWorld(t, 4, true, star(10, 60))
	w.kernel.RunUntil(w.timing.EpochStart(16))
	// The CH must never have napped; host 1 is the CH by lowest NID.
	if w.sleeps[0].Naps() != 0 {
		t.Error("the clusterhead napped")
	}
	if w.hosts[0].Asleep() {
		t.Error("CH asleep at the end")
	}
}

func TestSleeperCatchesUpAfterWaking(t *testing.T) {
	// A member crashes while another naps; the napper must learn of the
	// failure after waking (cumulative updates).
	w := buildWorld(t, 5, true, star(10, 60))
	// Find a host that naps early; with phase = NID mod 4 and period 4,
	// host h naps at epochs where (e + h) % 4 == 3.
	w.kernel.At(w.timing.EpochStart(5)+w.timing.Interval/2, func() { w.hosts[4].Crash() })
	w.kernel.RunUntil(w.timing.EpochStart(14))
	for i, f := range w.fdss {
		if i == 4 || w.hosts[i].Crashed() {
			continue
		}
		if !f.IsSuspected(5) {
			t.Errorf("node %d (napper or not) never learned of the crash", i+1)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cl := cluster.New(cluster.DefaultConfig())
	for name, cfg := range map[string]Config{
		"zero":          {},
		"nap >= period": {Timing: cluster.DefaultTiming(), Period: 2, NapEpochs: 2},
		"period 1":      {Timing: cluster.DefaultTiming(), Period: 1, NapEpochs: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			New(cfg, cl)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil cluster: want panic")
			}
		}()
		New(DefaultConfig(cluster.DefaultTiming()), nil)
	}()
}
