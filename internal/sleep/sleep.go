// Package sleep implements radio duty-cycling on top of the cluster
// architecture — the power-management direction the paper's Section 6
// sketches: "a cluster-based architecture may support sleep/wakeup power
// management strategies ... since clustering may naturally help circumvent
// connectivity problems caused by node sleeping. On the other hand, sleep
// mode may cause false detections."
//
// The policy follows the paper's hint: only ordinary members nap — hosts
// with structural duties (clusterheads, deputies, gateway candidates, and
// border nodes) stay awake, so the cluster skeleton keeps functioning.
// Members sleep on a fixed duty cycle, phase-shifted by NID so the cluster
// never naps all at once.
//
// Two modes:
//
//   - Announced (default): before napping, the member broadcasts a
//     SleepNotice; the FDS excuses announced sleepers from the detection
//     rule, so duty-cycling causes no false detections.
//   - Naive (Announce=false): the member just goes silent. The FDS then
//     detects it as failed — the problem the paper warns about, kept
//     reproducible for the ablation benchmarks.
package sleep

import (
	"fmt"

	"clusterfds/internal/cluster"
	"clusterfds/internal/node"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

// Config parameterizes the duty cycle.
type Config struct {
	// Timing must match the co-resident cluster/FDS timing.
	Timing cluster.Timing
	// Period is the duty-cycle length in epochs.
	Period wire.Epoch
	// NapEpochs is how many consecutive epochs of each period the radio is
	// off. Must be < Period.
	NapEpochs wire.Epoch
	// Announce selects sleep-aware behaviour (send a SleepNotice and be
	// excused) versus the naive silence the paper warns about.
	Announce bool
}

// DefaultConfig naps one epoch in four, announced.
func DefaultConfig(t cluster.Timing) Config {
	return Config{Timing: t, Period: 4, NapEpochs: 1, Announce: true}
}

// Valid reports whether the configuration is coherent.
func (c Config) Valid() bool {
	return c.Timing.Valid() && c.Period >= 2 && c.NapEpochs >= 1 && c.NapEpochs < c.Period
}

// Protocol is the per-host duty-cycling policy.
type Protocol struct {
	cfg     Config
	host    *node.Host
	cluster *cluster.Protocol

	naps int
}

// New returns a sleep policy bound to the co-resident cluster protocol.
func New(cfg Config, cl *cluster.Protocol) *Protocol {
	if cl == nil {
		panic("sleep: nil cluster protocol")
	}
	if !cfg.Valid() {
		panic("sleep: invalid config")
	}
	return &Protocol{cfg: cfg, cluster: cl}
}

// Start implements node.Protocol.
func (p *Protocol) Start(h *node.Host) {
	p.host = h
	e := p.cfg.Timing.EpochOf(h.Now())
	if h.Now() > p.cfg.Timing.EpochStart(e) {
		e++
	}
	p.scheduleEpoch(e)
}

func (p *Protocol) scheduleEpoch(e wire.Epoch) {
	at := p.cfg.Timing.EpochStart(e)
	p.host.After(at-p.host.Now(), func() { p.runEpoch(e) })
}

// runEpoch decides, near the end of epoch e, whether to nap through the
// following epochs of this host's duty-cycle slot.
func (p *Protocol) runEpoch(e wire.Epoch) {
	p.scheduleEpoch(e + 1)
	// Decide after the FDS execution settles, before the epoch ends.
	t := p.cfg.Timing
	p.host.After(t.R3End()+4*t.Thop, func() { p.maybeNap(e) })
}

// maybeNap checks the duty-cycle phase and structural duties.
func (p *Protocol) maybeNap(e wire.Epoch) {
	// Phase-shift by NID so a cluster's members nap in staggered slots.
	phase := wire.Epoch(uint64(p.host.ID())) % p.cfg.Period
	if (e+phase)%p.cfg.Period != p.cfg.Period-1 {
		return // not our slot
	}
	v := p.cluster.View()
	if !v.Marked || v.IsCH || v.IsGW() {
		return // structural duty: stay awake
	}
	for _, d := range v.DCHs {
		if d == p.host.ID() {
			return // deputies stay awake
		}
	}
	if len(p.cluster.BorderClusters()) > 0 {
		return // border relays stay awake
	}

	firstNap := e + 1
	wakeEpoch := firstNap + p.cfg.NapEpochs
	if p.cfg.Announce {
		// The notice is sent twice — at decision time and again just
		// before the radio goes off — because a single lost notice would
		// silently void the excusal and cost a false detection. Two
		// independent transmissions drop that risk from p to p².
		notice := &wire.SleepNotice{NID: p.host.ID(), Epoch: e, Until: wakeEpoch}
		p.host.Send(notice)
		resendAt := p.cfg.Timing.EpochStart(firstNap) - p.cfg.Timing.Thop
		p.host.After(resendAt-p.host.Now(), func() { p.host.Send(notice) })
	}
	p.naps++
	p.host.Trace(trace.TypeViewUpdate, fmt.Sprintf("nap until epoch %d", wakeEpoch))
	// The radio goes off exactly at the nap's first epoch boundary — the
	// sleeper still participates in the remainder of the current epoch
	// (including the notice resend above).
	napStart := p.cfg.Timing.EpochStart(firstNap)
	wake := p.cfg.Timing.EpochStart(wakeEpoch)
	p.host.After(napStart-p.host.Now(), func() { p.host.SleepRadio(wake) })
}

// Handle implements node.Protocol (the policy only transmits).
func (p *Protocol) Handle(h *node.Host, m wire.Message, from wire.NodeID) {}

// Naps returns how many naps this host has taken.
func (p *Protocol) Naps() int { return p.naps }
