package daemon

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"clusterfds/internal/cluster"
	"clusterfds/internal/sim"
	"clusterfds/internal/transport"
	"clusterfds/internal/wire"
)

// buildCluster assembles n daemons on one in-process channel mesh, each
// with a full roster of the others.
func buildCluster(n int, timing cluster.Timing) (*transport.ChanMesh, []*Daemon) {
	cm := transport.NewChanMesh()
	daemons := make([]*Daemon, 0, n)
	for i := 1; i <= n; i++ {
		id := wire.NodeID(i)
		var peers []wire.NodeID
		for j := 1; j <= n; j++ {
			if j != i {
				peers = append(peers, wire.NodeID(j))
			}
		}
		link := cm.Join(id)
		daemons = append(daemons, New(Config{
			ID:     id,
			Seed:   int64(100 + i),
			Timing: timing,
			Peers:  peers,
		}, link))
	}
	return cm, daemons
}

// drive advances every daemon in lockstep steps of the given size until
// virtual time end, draining each daemon's inbound queue between steps.
// This emulates n concurrent processes deterministically: no goroutines,
// no wall time.
func drive(daemons []*Daemon, end, step sim.Time) {
	for t := step; t <= end; t += step {
		for _, d := range daemons {
			d.Poll()
			d.AdvanceTo(t)
		}
	}
}

// TestLiveSmokeCrashDetection is the live-smoke gate: a 3-node channel-mesh
// cluster forms, one node is crashed, and both survivors must detect the
// failure within the FDS's detection horizon. Deterministic: fixed seeds,
// fixed step schedule.
func TestLiveSmokeCrashDetection(t *testing.T) {
	timing := cluster.DefaultTiming()
	_, daemons := buildCluster(3, timing)
	const crashNID = wire.NodeID(3)
	step := timing.Thop / 4

	// Let the cluster form and run two full epochs.
	drive(daemons, 2*timing.Interval+timing.Interval/2, step)
	for _, d := range daemons {
		if v := d.Cluster().View(); !v.Marked {
			t.Fatalf("node %v never joined a cluster", d.ID())
		}
	}

	// Fail-stop node 3 and keep the survivors running.
	daemons[2].Crash()
	drive(daemons, 6*timing.Interval, step)

	for _, d := range daemons[:2] {
		if !d.FDS().IsSuspected(crashNID) {
			t.Errorf("survivor %v never detected crashed node %v (epoch %v, failed %v)",
				d.ID(), crashNID, d.FDS().Epoch(), d.FDS().KnownFailed())
		}
		if d.FDS().IsSuspected(daemons[0].ID()) || d.FDS().IsSuspected(daemons[1].ID()) {
			t.Errorf("survivor %v suspects a live node: %v", d.ID(), d.FDS().KnownFailed())
		}
		if d.FDS().Epoch() < wire.Epoch(5) {
			t.Errorf("survivor %v wedged at epoch %v", d.ID(), d.FDS().Epoch())
		}
	}
}

// TestVanishedPeerIsDetected models a process that dies rather than a host
// that crashes in place: the port leaves the mesh entirely (its daemon is
// neither polled nor advanced again), which is what a killed fdsd process
// looks like to the survivors.
func TestVanishedPeerIsDetected(t *testing.T) {
	timing := cluster.DefaultTiming()
	_, daemons := buildCluster(3, timing)
	step := timing.Thop / 4

	drive(daemons, 2*timing.Interval+timing.Interval/2, step)
	// Kill node 2: its port leaves the mesh and its daemon is never
	// polled or advanced again.
	daemons[1].link.Close()
	survivors := []*Daemon{daemons[0], daemons[2]}
	drive(survivors, 6*timing.Interval, step)

	for _, d := range survivors {
		if !d.FDS().IsSuspected(2) {
			t.Errorf("survivor %v never detected vanished node 2 (failed %v)", d.ID(), d.FDS().KnownFailed())
		}
	}
}

// TestGracefulShutdownDumpIsDeterministic runs a daemon's wall-clock loop
// (the exact loop cmd/fdsd uses) against a FakeWall, stops it, and pins
// that two identical runs produce byte-identical final state dumps —
// the graceful-shutdown contract of satellite 6. Nothing sleeps on wall
// time: the fake wall is advanced from the test.
func TestGracefulShutdownDumpIsDeterministic(t *testing.T) {
	timing := cluster.Timing{Thop: 20 * time.Millisecond, Interval: 200 * time.Millisecond}
	runOnce := func() string {
		cm := transport.NewChanMesh()
		link := cm.Join(1)
		d := New(Config{ID: 1, Seed: 7, Timing: timing, Peers: []wire.NodeID{2, 3}}, link)
		wall := transport.NewFakeWall()
		var out bytes.Buffer
		stop := make(chan struct{})
		done := make(chan error, 1)
		go func() { done <- d.Run(wall, stop, &out) }()

		// Walk wall time across several epochs in uneven steps, then stop.
		for _, step := range []sim.Time{
			30 * time.Millisecond, 250 * time.Millisecond, 170 * time.Millisecond,
			410 * time.Millisecond, 90 * time.Millisecond,
		} {
			wall.Advance(step)
		}
		close(stop)
		if err := <-done; err != nil {
			t.Fatalf("Run: %v", err)
		}
		return out.String()
	}

	a, b := runOnce(), runOnce()
	if a != b {
		t.Errorf("two identical runs dumped different state:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	for _, want := range []string{"fdsd node n1", "epoch:", "role:", "suspected: []", "bad-datagrams: 0"} {
		if !strings.Contains(a, want) {
			t.Errorf("dump missing %q:\n%s", want, a)
		}
	}
	// The daemon must actually have advanced to the stop instant: the five
	// steps above sum to 950ms = epoch 4 under a 200ms interval.
	if !strings.Contains(a, "vtime: 950ms") {
		t.Errorf("dump did not advance to the stop instant:\n%s", a)
	}
}

// TestRunExitsWhenLinkCloses pins the second shutdown path: a daemon whose
// link dies dumps state and returns instead of spinning.
func TestRunExitsWhenLinkCloses(t *testing.T) {
	cm := transport.NewChanMesh()
	link := cm.Join(1)
	d := New(Config{ID: 1, Seed: 1, Peers: []wire.NodeID{2}}, link)
	wall := transport.NewFakeWall()
	var out bytes.Buffer
	done := make(chan error, 1)
	go func() { done <- d.Run(wall, nil, &out) }()
	link.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not exit after link close")
	}
	if !strings.Contains(out.String(), "fdsd node n1") {
		t.Errorf("no final dump on link close:\n%s", out.String())
	}
}

// TestBootBoundaryEpochs is the boot-boundary table test of satellite 2,
// driven through the daemon's BootAt (no wall sleeping anywhere): a daemon
// booted exactly at EpochStart(e) joins epoch e; one tick later it waits
// for e+1.
func TestBootBoundaryEpochs(t *testing.T) {
	timing := cluster.DefaultTiming()
	cases := []struct {
		name      string
		bootAt    sim.Time
		runTo     sim.Time
		wantEpoch wire.Epoch
	}{
		{"at-zero", 0, timing.Interval / 2, 0},
		{"mid-epoch-0", timing.Interval / 3, timing.Interval - 1, 0},
		{"exactly-epoch-1", timing.EpochStart(1), timing.EpochStart(1) + timing.Interval/2, 1},
		// One tick past the boundary the host must wait out the rest of
		// epoch 1 and join at epoch 2 (the PR 3 off-by-one regression).
		{"tick-after-epoch-1", timing.EpochStart(1) + 1, timing.EpochStart(2) + timing.Interval/2, 2},
		{"exactly-epoch-3", timing.EpochStart(3), timing.EpochStart(3) + timing.Interval/2, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cm := transport.NewChanMesh()
			d := New(Config{ID: 1, Seed: 2, Timing: timing, Peers: []wire.NodeID{2}, BootAt: tc.bootAt}, cm.Join(1))
			d.AdvanceTo(tc.runTo)
			if got := d.FDS().Epoch(); got != tc.wantEpoch {
				t.Errorf("boot at %v, run to %v: epoch = %v, want %v", tc.bootAt, tc.runTo, got, tc.wantEpoch)
			}
		})
	}
}

// TestMalformedDatagramsAreSurvivable floods a live daemon with garbage
// between legitimate protocol steps; the daemon must count and drop the
// garbage and keep executing epochs.
func TestMalformedDatagramsAreSurvivable(t *testing.T) {
	timing := cluster.DefaultTiming()
	cm := transport.NewChanMesh()
	link := cm.Join(1)
	hostile := cm.Join(99)
	d := New(Config{ID: 1, Seed: 3, Timing: timing, Peers: []wire.NodeID{99}}, link)

	step := timing.Thop / 2
	garbage := [][]byte{
		{},
		{0xFF},
		{0x00, 0x01},
		bytes.Repeat([]byte{0xA5}, 512),
	}
	for t := step; t <= 3*timing.Interval; t += step {
		hostile.Broadcast(99, garbage[int(t/step)%len(garbage)])
		d.Poll()
		d.AdvanceTo(t)
	}
	if d.FDS().Epoch() < 2 {
		t.Errorf("daemon wedged at epoch %v under garbage flood", d.FDS().Epoch())
	}
	if d.Transport().BadDatagrams() == 0 {
		t.Error("no malformed datagrams were counted")
	}
}
