// Package daemon is the engine of cmd/fdsd: one live host of the
// cluster-based failure detection service, assembled from the same protocol
// stack the simulator runs (cluster formation, FDS, inter-cluster
// forwarding) bound to a transport.Link instead of the simulated radio.
//
// The daemon keeps the sans-I/O discipline: protocol code runs on a private
// virtual-time sim.Kernel that the driver advances to track either the wall
// clock (Run, used by cmd/fdsd) or a test's schedule (AdvanceTo/Poll, used
// by the in-process mesh tests). Wall time and sockets never reach the
// protocol core, so a daemon's state after a given message history is a
// pure function of (history, seed) — which is what makes the final state
// dump on shutdown, and the tests that assert on it, deterministic.
package daemon

import (
	"fmt"
	"io"
	"slices"

	"clusterfds/internal/cluster"
	"clusterfds/internal/fds"
	"clusterfds/internal/geo"
	"clusterfds/internal/intercluster"
	"clusterfds/internal/node"
	"clusterfds/internal/sim"
	"clusterfds/internal/trace"
	"clusterfds/internal/transport"
	"clusterfds/internal/wire"
)

// Config parameterizes one daemon.
type Config struct {
	// ID is this node's NID. Required, nonzero.
	ID wire.NodeID
	// Seed seeds the daemon's private kernel (jitter, backoff draws).
	Seed int64
	// Timing is the shared protocol schedule. Zero means DefaultTiming.
	Timing cluster.Timing
	// Peers is the static roster of remote NIDs expected on the link; it
	// plays the role of the radio neighborhood.
	Peers []wire.NodeID
	// Energy is the energy model. Zero means DefaultEnergy.
	Energy transport.EnergyParams
	// Trace receives host and transport events (nil for none).
	Trace trace.Sink
	// BootAt delays Boot to the given virtual time (0 boots immediately),
	// so tests can pin the epoch-boundary boot semantics.
	BootAt sim.Time
}

// Daemon is one live FDS host.
type Daemon struct {
	cfg    Config
	kernel *sim.Kernel
	link   transport.Link
	lt     *transport.LinkTransport
	host   *node.Host
	cl     *cluster.Protocol
	fds    *fds.Protocol
	ic     *intercluster.Protocol
}

// New assembles a daemon over the given link. The full stack is wired and
// (unless BootAt is set) booted at virtual time zero; no traffic flows
// until the driver advances the kernel.
func New(cfg Config, link transport.Link) *Daemon {
	if cfg.ID == wire.NoNode {
		panic("daemon: config needs a nonzero ID")
	}
	if cfg.Timing == (cluster.Timing{}) {
		cfg.Timing = cluster.DefaultTiming()
	}
	if cfg.Energy == (transport.EnergyParams{}) {
		cfg.Energy = transport.DefaultEnergy()
	}
	k := sim.New(cfg.Seed)
	var ltOpts []transport.LinkOption
	var hostOpts []node.Option
	if cfg.Trace != nil {
		ltOpts = append(ltOpts, transport.WithLinkTrace(cfg.Trace))
		hostOpts = append(hostOpts, node.WithTrace(cfg.Trace))
	}
	lt := transport.NewLinkTransport(k, link, cfg.Energy, cfg.Peers, ltOpts...)
	h := node.New(k, lt, cfg.ID, geo.Point{}, hostOpts...)

	ccfg := cluster.DefaultConfig()
	ccfg.Timing = cfg.Timing
	cl := cluster.New(ccfg)
	f := fds.New(fds.DefaultConfig(cfg.Timing), cl)
	ic := intercluster.New(intercluster.DefaultConfig(cfg.Timing), cl, f)
	h.Use(cl)
	h.Use(f)
	h.Use(ic)

	d := &Daemon{cfg: cfg, kernel: k, link: link, lt: lt, host: h, cl: cl, fds: f, ic: ic}
	if cfg.BootAt > 0 {
		k.At(cfg.BootAt, h.Boot)
	} else {
		h.Boot()
	}
	return d
}

// ID returns the daemon's NID.
func (d *Daemon) ID() wire.NodeID { return d.cfg.ID }

// Kernel returns the daemon's virtual-time kernel.
func (d *Daemon) Kernel() *sim.Kernel { return d.kernel }

// FDS returns the daemon's failure detection service.
func (d *Daemon) FDS() *fds.Protocol { return d.fds }

// Cluster returns the daemon's cluster-formation protocol.
func (d *Daemon) Cluster() *cluster.Protocol { return d.cl }

// Transport returns the daemon's link transport.
func (d *Daemon) Transport() *transport.LinkTransport { return d.lt }

// Crash fail-stops the daemon's host: it goes silent and deaf but its
// driver can keep advancing the kernel. Tests use this to induce the
// failure the surviving daemons must detect.
func (d *Daemon) Crash() { d.host.Crash() }

// Poll drains every currently queued inbound datagram without blocking and
// delivers each to the protocol stack at the current virtual time.
// Malformed datagrams are counted by the transport and dropped.
func (d *Daemon) Poll() {
	for {
		select {
		case p, ok := <-d.link.Packets():
			if !ok {
				return
			}
			_ = d.lt.Inject(p)
		default:
			return
		}
	}
}

// AdvanceTo runs the protocol stack up to virtual time t. Cooperative
// drivers (tests) interleave Poll and AdvanceTo across a fleet of daemons
// to emulate concurrent execution with no goroutines and no wall time.
func (d *Daemon) AdvanceTo(t sim.Time) { d.kernel.RunUntil(t) }

// Now returns the daemon's current virtual time.
func (d *Daemon) Now() sim.Time { return d.kernel.Now() }

// Run drives the daemon against a wall clock until stop is closed (or the
// link's packet channel closes), then writes the final deterministic state
// dump to out and returns. This is cmd/fdsd's main loop; tests run it
// against a FakeWall so nothing sleeps on real time.
//
// The loop keeps the kernel's virtual clock tracking wall.Elapsed(): it
// sleeps exactly until the next protocol timer is due (sim.Kernel.
// NextEventAt) or a datagram arrives, whichever is first.
func (d *Daemon) Run(wall transport.WallClock, stop <-chan struct{}, out io.Writer) error {
	for {
		var timer <-chan struct{}
		if next, ok := d.kernel.NextEventAt(); ok {
			timer = wall.After(next - wall.Elapsed())
		}
		select {
		case <-stop:
			d.kernel.RunUntil(wall.Elapsed())
			return d.DumpState(out)
		case p, ok := <-d.link.Packets():
			if !ok {
				d.kernel.RunUntil(wall.Elapsed())
				return d.DumpState(out)
			}
			d.kernel.RunUntil(wall.Elapsed())
			_ = d.lt.Inject(p)
		case <-timer:
			d.kernel.RunUntil(wall.Elapsed())
		}
	}
}

// DumpState writes a deterministic snapshot of the daemon's protocol state:
// every list sorted, every field a pure function of the message history and
// seed. Two daemons fed the same history dump identical bytes, which the
// graceful-shutdown test pins.
func (d *Daemon) DumpState(w io.Writer) error {
	v := d.cl.View()
	role := "unclustered"
	if v.IsCH {
		role = "clusterhead"
	} else if v.Marked {
		role = fmt.Sprintf("member of %v", v.CH)
	}
	suspected := append([]wire.NodeID(nil), d.fds.KnownFailed()...)
	slices.Sort(suspected)
	members := append([]wire.NodeID(nil), v.Members...)
	slices.Sort(members)
	_, err := fmt.Fprintf(w,
		"fdsd node %v\n  vtime: %v\n  epoch: %v\n  role: %s\n  members: %v\n  dchs: %v\n  suspected: %v\n  update-received: %v\n  bad-datagrams: %v\n",
		d.cfg.ID, d.kernel.Now(), d.fds.Epoch(), role, members, v.DCHs, suspected,
		d.fds.UpdateReceived(), d.lt.BadDatagrams())
	return err
}
