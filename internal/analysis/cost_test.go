package analysis

import (
	"math"
	"testing"
)

func TestClusterCostBreakdown(t *testing.T) {
	c := ClusterCost{Nodes: 100, Clusters: 10, Gateways: 30, LossProb: 0.1}
	b := c.PerEpoch()
	if b.Heartbeats != 100 || b.Digests != 100 {
		t.Errorf("per-node rounds wrong: %+v", b)
	}
	if b.Updates != 10 || b.Announces != 10 {
		t.Errorf("per-cluster broadcasts wrong: %+v", b)
	}
	if b.GWRegisters != 30 {
		t.Errorf("registrations wrong: %+v", b)
	}
	if math.Abs(b.PeerRecovery-90*0.1*3) > 1e-9 {
		t.Errorf("peer recovery wrong: %+v", b)
	}
	if math.Abs(b.Total()-(100+100+10+10+30+27)) > 1e-9 {
		t.Errorf("total = %v", b.Total())
	}
}

func TestClusterCostLossless(t *testing.T) {
	c := ClusterCost{Nodes: 50, Clusters: 5, Gateways: 10, LossProb: 0}
	if got := c.PerEpoch().PeerRecovery; got != 0 {
		t.Errorf("recovery traffic at p=0: %v", got)
	}
}

func TestFloodingQuadratic(t *testing.T) {
	small := FloodingPerInterval(50, 0)
	large := FloodingPerInterval(500, 0)
	// 10x population must cost ~100x messages.
	if ratio := large / small; ratio < 80 || ratio > 120 {
		t.Errorf("flooding scaling ratio = %v, want ~100", ratio)
	}
	if FloodingPerInterval(100, 0.3) >= FloodingPerInterval(100, 0) {
		t.Error("loss should reduce flood relays")
	}
}

func TestGossipBytesQuadratic(t *testing.T) {
	if GossipPerInterval(100) != 100 {
		t.Error("gossip sends one message per node")
	}
	small, large := GossipBytesPerInterval(50), GossipBytesPerInterval(500)
	if ratio := large / small; ratio < 80 || ratio > 120 {
		t.Errorf("gossip byte scaling = %v, want ~100", ratio)
	}
}

func TestScalingAdvantageGrowsWithPopulation(t *testing.T) {
	prev := 0.0
	for _, n := range []int{100, 300, 1000} {
		adv := ScalingAdvantage(n, 0.1, 0.1, 0.4)
		if adv <= prev {
			t.Errorf("advantage did not grow at n=%d: %v <= %v", n, adv, prev)
		}
		prev = adv
	}
	if prev < 50 {
		t.Errorf("advantage at n=1000 only %.1fx; the paper's claim expects large factors", prev)
	}
}
