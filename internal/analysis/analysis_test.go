package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Max(math.Abs(a), math.Abs(b))
	if d == 0 {
		return true
	}
	return math.Abs(a-b)/d <= tol
}

func TestNeighborhoodFractionValue(t *testing.T) {
	a := NeighborhoodFraction()
	want := 2 * (math.Pi/3 - math.Sqrt(3)/4) / math.Pi
	if !relClose(a, want, 1e-12) {
		t.Errorf("a = %v, want %v", a, want)
	}
	if a < 0.39 || a > 0.392 {
		t.Errorf("a = %v, want ~0.391", a)
	}
}

// TestClosedFormMatchesPaperSum is the central fidelity test: the compact
// closed form must equal the paper's literal double summation.
func TestClosedFormMatchesPaperSum(t *testing.T) {
	for _, n := range []int{3, 10, 50, 75, 100} {
		for _, p := range DefaultLossSweep() {
			closed := FalseDetection(n, p)
			sum := FalseDetectionPaperSum(n, p)
			if !relClose(closed, sum, 1e-9) {
				t.Errorf("N=%d p=%v: closed %v vs paper sum %v", n, p, closed, sum)
			}
		}
	}
}

func TestIncompletenessClosedFormMatchesSum(t *testing.T) {
	for _, n := range []int{3, 10, 50, 75, 100} {
		for _, p := range DefaultLossSweep() {
			if !relClose(Incompleteness(n, p), IncompletenessSum(n, p), 1e-9) {
				t.Errorf("N=%d p=%v mismatch", n, p)
			}
		}
	}
}

func TestClosedFormMatchesSumProperty(t *testing.T) {
	f := func(rawN uint8, rawP float64) bool {
		n := 3 + int(rawN)%120
		p := math.Abs(math.Mod(rawP, 1))
		return relClose(FalseDetection(n, p), FalseDetectionPaperSum(n, p), 1e-8) &&
			relClose(Incompleteness(n, p), IncompletenessSum(n, p), 1e-8)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestPaperFigureMagnitudes pins the curves to the levels readable off the
// published figures (order-of-magnitude agreement is the acceptance bar;
// exact values follow from the formulas).
func TestPaperFigureMagnitudes(t *testing.T) {
	tests := []struct {
		name   string
		got    float64
		lo, hi float64
	}{
		// Figure 5: N=100 at p=0.05 is ~1e-21 (deep below 1e-15); N=50 at
		// p=0.5 is "still very reasonable", in the 1e-3 range.
		{"fig5 N=100 p=0.05", FalseDetection(100, 0.05), 1e-25, 1e-18},
		{"fig5 N=50 p=0.5", FalseDetection(50, 0.5), 1e-4, 1e-2},
		// Figure 6: "practically negligible" below p=0.25 for N=100, and
		// "below 1e-6 even when N drops to 50" at p=0.5.
		{"fig6 N=100 p=0.05", FalseDetectionOnCH(100, 0.05), 1e-110, 1e-90},
		{"fig6 N=50 p=0.5", FalseDetectionOnCH(50, 0.5), 1e-9, 1e-6},
		// Figure 7: robust completeness; N=100 at p=0.05 many orders below
		// any practical concern, N=50 at p=0.5 around a few percent.
		{"fig7 N=100 p=0.05", Incompleteness(100, 0.05), 1e-22, 1e-16},
		{"fig7 N=50 p=0.5", Incompleteness(50, 0.5), 1e-3, 1e-1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.got < tt.lo || tt.got > tt.hi {
				t.Errorf("value %v outside paper-consistent band [%v, %v]", tt.got, tt.lo, tt.hi)
			}
		})
	}
}

// TestCurveOrdering checks the qualitative structure of the figures: denser
// clusters are uniformly better, and all measures worsen with loss.
func TestCurveOrdering(t *testing.T) {
	measures := []Measure{MeasureFalseDetection, MeasureFalseDetectionOnCH, MeasureIncompleteness}
	for _, m := range measures {
		// N=100 strictly below N=75 strictly below N=50 at every p.
		for _, p := range DefaultLossSweep() {
			v50, v75, v100 := m.Eval(50, p), m.Eval(75, p), m.Eval(100, p)
			if !(v100 < v75 && v75 < v50) {
				t.Errorf("%v at p=%v: ordering broken (%v, %v, %v)", m, p, v50, v75, v100)
			}
		}
		// Monotone nondecreasing in p for each N.
		for _, n := range PaperPopulations() {
			prev := -1.0
			for _, p := range DefaultLossSweep() {
				v := m.Eval(n, p)
				if v < prev {
					t.Errorf("%v N=%d: value decreased at p=%v", m, n, p)
				}
				prev = v
			}
		}
	}
}

// TestCHBetterProtectedThanMember reproduces the paper's Section 5.1
// observation: the DCH is far less likely to falsely detect the CH than the
// CH is to falsely detect an edge member, because the CH's broadcast reaches
// everyone while an edge member reaches only ~39% of the cluster.
func TestCHBetterProtectedThanMember(t *testing.T) {
	for _, n := range PaperPopulations() {
		for _, p := range DefaultLossSweep() {
			if FalseDetectionOnCH(n, p) >= FalseDetection(n, p) {
				t.Errorf("N=%d p=%v: CH not better protected", n, p)
			}
		}
	}
}

func TestBoundaryValues(t *testing.T) {
	// p = 0: perfect channel, no false detections, no incompleteness.
	for _, n := range PaperPopulations() {
		if FalseDetection(n, 0) != 0 || FalseDetectionOnCH(n, 0) != 0 || Incompleteness(n, 0) != 0 {
			t.Errorf("N=%d: nonzero measure at p=0", n)
		}
	}
	// p = 1: everything lost; false detection certain (p²·1), update never
	// arrives (incompleteness = 1·1).
	if got := FalseDetection(50, 1); got != 1 {
		t.Errorf("FalseDetection(50,1) = %v, want 1", got)
	}
	if got := Incompleteness(50, 1); got != 1 {
		t.Errorf("Incompleteness(50,1) = %v, want 1", got)
	}
	if got := FalseDetectionOnCH(50, 1); got != 1 {
		t.Errorf("FalseDetectionOnCH(50,1) = %v, want 1", got)
	}
}

func TestValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"n too small": func() { FalseDetection(2, 0.1) },
		"p negative":  func() { FalseDetection(50, -0.1) },
		"p above 1":   func() { Incompleteness(50, 1.1) },
		"bad measure": func() { Measure(99).Eval(50, 0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSweepHelpers(t *testing.T) {
	ps := DefaultLossSweep()
	if len(ps) != 10 || ps[0] != 0.05 || ps[9] != 0.5 {
		t.Errorf("DefaultLossSweep = %v", ps)
	}
	series := Series(MeasureFalseDetection, 75, ps)
	if len(series) != 10 {
		t.Fatalf("series length %d", len(series))
	}
	for i, pt := range series {
		if pt.P != ps[i] {
			t.Errorf("series[%d].P = %v", i, pt.P)
		}
		if pt.Value != FalseDetection(75, ps[i]) {
			t.Errorf("series[%d] value mismatch", i)
		}
	}
	if MeasureFalseDetection.String() == MeasureIncompleteness.String() {
		t.Error("measure names collide")
	}
}

func TestDCHReachOutOfRangeFraction(t *testing.T) {
	c := DCHReach{R: 100, N: 75, P: 0.1}
	if got := c.OutOfRangeFraction(0); got != 0 {
		t.Errorf("d=0: fraction %v, want 0 (DCH at CH covers everything)", got)
	}
	// d = R: overlap is the lens 2(π/3−√3/4)R², so out-of-range = 1−0.391·π/π...
	want := 1 - NeighborhoodFraction()
	if got := c.OutOfRangeFraction(100); !relClose(got, want, 1e-9) {
		t.Errorf("d=R: fraction %v, want %v", got, want)
	}
	// Monotone in d.
	prev := -1.0
	for d := 0.0; d <= 100; d += 10 {
		f := c.OutOfRangeFraction(d)
		if f < prev {
			t.Errorf("fraction decreased at d=%v", d)
		}
		prev = f
	}
}

func TestDCHReachEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := DCHReach{R: 100, N: 75, P: 0.1}

	// DCH at the CH's position: nothing is out of range.
	r0 := c.Evaluate(rng, 0, 100)
	if r0.Unobserved != 0 || r0.ReachGivenOut != 1 {
		t.Errorf("d=0: %+v", r0)
	}

	// Moderate displacement, dense cluster: the paper's claim — reach
	// probability is high.
	r := c.Evaluate(rng, 40, 300)
	if r.ReachGivenOut < 0.95 {
		t.Errorf("d=40 N=75: ReachGivenOut = %v, want > 0.95", r.ReachGivenOut)
	}
	if r.Unobserved > 0.01 {
		t.Errorf("d=40 N=75: Unobserved = %v, want < 0.01", r.Unobserved)
	}

	// Sparse cluster, large displacement: reach degrades — the caveat the
	// paper states ("unless the population density is low and the distance
	// is big").
	sparse := DCHReach{R: 100, N: 10, P: 0.3}
	rs := sparse.Evaluate(rng, 90, 300)
	if rs.ReachGivenOut >= r.ReachGivenOut {
		t.Errorf("sparse/far (%v) should be worse than dense/near (%v)",
			rs.ReachGivenOut, r.ReachGivenOut)
	}
}

func TestDCHReachSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := DCHReach{R: 100, N: 50, P: 0.1}
	ds := []float64{0, 25, 50, 75, 100}
	rs := c.Sweep(rng, ds, 120)
	if len(rs) != len(ds) {
		t.Fatalf("sweep length %d", len(rs))
	}
	// Unobserved probability grows with distance (within MC noise, checked
	// loosely end-to-end).
	if rs[len(rs)-1].Unobserved < rs[0].Unobserved {
		t.Errorf("unobserved should grow with d: %v", rs)
	}
}

func TestDCHReachValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on zero samples")
		}
	}()
	c := DCHReach{R: 100, N: 50, P: 0.1}
	c.Evaluate(rand.New(rand.NewSource(1)), 50, 0)
}
