package analysis

import (
	"math"
	"math/rand"

	"clusterfds/internal/geo"
	"clusterfds/internal/replicate"
)

// This file implements the DCH reachability study the paper describes but
// omits "due to space limitations" (Section 4.2, Figure 2(a)): after a DCH
// takes over from a failed CH, some members may lie outside the DCH's
// transmission range (region Av). The digest round rescues them: a member v
// in Av is still observable by the DCH if some node v' lies in Ag — the
// region covered by both the DCH and v — hears v's heartbeat, and delivers
// its digest to the DCH.
//
// The paper's qualitative finding: "unless the node population density is
// low and the DCH's distance from the original CH is big, with high
// probability a DCH will be able to hear from an out-of-range cluster
// member through the round of digest diffusion."

// DCHReach quantifies that study for a cluster of radius R with n members,
// DCH at distance d from the failed CH, and loss probability p.
type DCHReach struct {
	// R is the transmission range / cluster radius.
	R float64
	// N is the cluster population.
	N int
	// P is the per-receiver message loss probability.
	P float64
}

// OutOfRangeFraction returns the expected fraction of the cluster disk that
// the DCH at distance d cannot reach directly: area(Av)/area(Au).
func (c DCHReach) OutOfRangeFraction(d float64) float64 {
	if d < 0 {
		d = 0
	}
	overlap := geo.LensArea(c.R, c.R, d)
	return 1 - overlap/geo.DiskArea(c.R)
}

// Result is the outcome of a reachability evaluation at one DCH distance.
type Result struct {
	// D is the CH–DCH distance.
	D float64
	// OutOfRange is the probability a uniformly placed member lies outside
	// the DCH's range.
	OutOfRange float64
	// ReachGivenOut is the probability that an out-of-range member is
	// nevertheless observed by the DCH through some digest.
	ReachGivenOut float64
	// Unobserved is the overall probability a member is both out of range
	// and unobserved — the residual accuracy exposure after a takeover.
	Unobserved float64
}

// Evaluate estimates reachability by Monte Carlo with the given number of
// member-placement samples. For each sampled out-of-range member position v,
// the helper region Ag(v) (triple intersection of the cluster disk, the
// DCH's disk, and v's disk) is measured by nested sampling, and the
// probability that none of the other N−3 uniformly placed nodes rescues v is
//
//	(1 − (Ag/Au)·(1−p)²)^(N−3)
//
// — a node rescues v iff it falls in Ag (hears both v and the DCH... it
// must hear v's heartbeat, probability 1−p, and its digest must reach the
// DCH, probability 1−p).
func (c DCHReach) Evaluate(rng *rand.Rand, d float64, samples int) Result {
	if samples <= 0 {
		panic("analysis: non-positive sample count")
	}
	ch := geo.Point{X: 0, Y: 0}
	dch := geo.Point{X: d, Y: 0}
	au := geo.DiskArea(c.R)

	outOfRange := c.OutOfRangeFraction(d)
	if outOfRange <= 0 {
		return Result{D: d, OutOfRange: 0, ReachGivenOut: 1, Unobserved: 0}
	}

	const areaSamples = 2000
	reached, total := 0.0, 0
	for total < samples {
		v := geo.UniformInDisk(rng, ch, c.R)
		if v.WithinRange(dch, c.R) {
			continue // only out-of-range members are at issue
		}
		total++
		ag := c.tripleIntersection(rng, ch, dch, v, areaSamples)
		perNode := (ag / au) * (1 - c.P) * (1 - c.P)
		reached += 1 - math.Pow(1-perNode, float64(c.N-3))
	}
	reachGivenOut := reached / float64(total)
	return Result{
		D:             d,
		OutOfRange:    outOfRange,
		ReachGivenOut: reachGivenOut,
		Unobserved:    outOfRange * (1 - reachGivenOut),
	}
}

// tripleIntersection estimates the area inside all three disks of radius R
// centered at a, b, and v, by sampling within the lens of a and v (the
// smallest enclosing pair available cheaply).
func (c DCHReach) tripleIntersection(rng *rand.Rand, a, b, v geo.Point, samples int) float64 {
	hits := 0
	for i := 0; i < samples; i++ {
		p := geo.UniformInDisk(rng, a, c.R)
		if p.WithinRange(b, c.R) && p.WithinRange(v, c.R) {
			hits++
		}
	}
	return geo.DiskArea(c.R) * float64(hits) / float64(samples)
}

// Sweep evaluates reachability over a range of CH–DCH distances, serially,
// sharing the caller's random stream. Kept for compatibility; SweepParallel
// is the engine-backed form with per-distance random streams.
func (c DCHReach) Sweep(rng *rand.Rand, ds []float64, samples int) []Result {
	out := make([]Result, len(ds))
	for i, d := range ds {
		out[i] = c.Evaluate(rng, d, samples)
	}
	return out
}

// SweepParallel evaluates the distances concurrently on the replication
// engine. Each distance gets a private random stream derived from (seed,
// index), so the result is a pure function of the arguments: identical for
// every worker count (0 = GOMAXPROCS) and across runs.
func (c DCHReach) SweepParallel(seed int64, ds []float64, samples, workers int) []Result {
	out, _ := replicate.Map(replicate.Opts{Workers: workers}, ds, seed,
		func(i int, d float64, rng *rand.Rand) Result {
			return c.Evaluate(rng, d, samples)
		})
	return out
}
