package analysis

// This file models the steady-state communication cost of the three
// detector architectures — the quantitative backing for the paper's
// Section 3 scalability argument ("system-wide information dissemination
// can be done far more efficiently than with flat flooding"). The models
// are validated against the simulator's transmission counters in
// cost_test.go and exercised by the Ext. C benchmarks.

// ClusterCost predicts the cluster-based FDS's transmissions per heartbeat
// interval in a failure-free steady state.
type ClusterCost struct {
	// Nodes is the operational population.
	Nodes int
	// Clusters is the number of clusterheads.
	Clusters int
	// Gateways is the number of gateway candidates (hosts that hear a
	// foreign clusterhead and therefore send a registration each epoch).
	Gateways int
	// LossProb is the per-receiver message loss probability p, which
	// drives the peer-forwarding recovery traffic.
	LossProb float64
}

// CostBreakdown itemizes expected transmissions per heartbeat interval.
type CostBreakdown struct {
	Heartbeats   float64
	Digests      float64
	Updates      float64
	Announces    float64
	GWRegisters  float64
	PeerRecovery float64
}

// Total sums the breakdown.
func (b CostBreakdown) Total() float64 {
	return b.Heartbeats + b.Digests + b.Updates + b.Announces + b.GWRegisters + b.PeerRecovery
}

// PerEpoch returns the expected transmissions per heartbeat interval.
//
// Derivation: every node diffuses one heartbeat and one digest (F5 and
// fds.R-2); each cluster broadcasts one health update and one organization
// announcement; each gateway candidate re-registers once; and each ordinary
// member misses the direct update with probability p, triggering one
// forwarding request, ~one peer forward, and one acknowledgment (the
// energy-balanced backoff suppresses duplicates).
func (c ClusterCost) PerEpoch() CostBreakdown {
	n := float64(c.Nodes)
	cl := float64(c.Clusters)
	members := n - cl
	if members < 0 {
		members = 0
	}
	return CostBreakdown{
		Heartbeats:   n,
		Digests:      n,
		Updates:      cl,
		Announces:    cl,
		GWRegisters:  float64(c.Gateways),
		PeerRecovery: members * c.LossProb * 3,
	}
}

// FloodingPerInterval predicts the flat-flooding baseline's transmissions
// per heartbeat interval: every node originates one heartbeat and, in a
// connected network with adequate TTL, every other node relays each
// heartbeat exactly once (duplicate suppression), giving n + n(n-1) ≈ n²
// transmissions. reach discounts for per-receiver loss p cutting relays off
// (a relay only happens at nodes the flood actually reached): with loss p
// the expected relay count shrinks roughly by the fraction of nodes
// reached, which for a dense network is ≈ (1-p) at each of ~2 effective
// hops.
func FloodingPerInterval(n int, p float64) float64 {
	nn := float64(n)
	reach := (1 - p) * (1 - p)
	return nn + nn*(nn-1)*reach
}

// GossipPerInterval predicts the gossip baseline's transmissions per gossip
// period: exactly one per node. The interesting cost is bytes, not
// messages.
func GossipPerInterval(n int) float64 { return float64(n) }

// GossipBytesPerInterval predicts the gossip baseline's transmitted bytes
// per period once membership knowledge has converged: each of the n nodes
// sends a table of n entries (12 bytes each: NID + counter) plus the 7-byte
// header (kind + sender + count).
func GossipBytesPerInterval(n int) float64 {
	return float64(n) * (7 + 12*float64(n))
}

// ScalingAdvantage returns the predicted message-count ratio
// flooding / cluster-FDS at population n — the headline of the paper's
// scalability claim. clustersPerNode is the empirical cluster density
// (clusters ≈ clustersPerNode·n); gatewaysPerNode likewise.
func ScalingAdvantage(n int, p, clustersPerNode, gatewaysPerNode float64) float64 {
	c := ClusterCost{
		Nodes:    n,
		Clusters: int(clustersPerNode * float64(n)),
		Gateways: int(gatewaysPerNode * float64(n)),
		LossProb: p,
	}
	return FloodingPerInterval(n, p) / c.PerEpoch().Total()
}
