// Package analysis implements the paper's probabilistic evaluation
// (Section 5): closed-form measures of the FDS's accuracy and completeness
// properties as functions of the per-receiver message-loss probability p and
// the cluster population N.
//
// Setting, per the paper: transmission range R = 100 m; each cluster holds
// N ∈ [50, 100] operational hosts uniformly distributed over the cluster
// disk; messages are lost independently with probability p ∈ [0.05, 0.5].
// All measures are worst-case ("upper bound") with the subject node on the
// cluster circumference, where its in-cluster neighborhood area An is
// smallest: An/Au = 2(π/3 − √3/4)/π ≈ 0.391.
//
// Figure 5's formula appears in the paper; the Figure 6 and Figure 7
// formulas were omitted for space and are re-derived in DESIGN.md §5. All
// three have compact closed forms because the paper's inner sums telescope:
//
//	Σ_j C(k,j)((1−p)p)^j p^(k−j) = (p(2−p))^k = (1 − (1−p)²)^k
package analysis

import (
	"math"

	"clusterfds/internal/geo"
	"clusterfds/internal/stats"
)

// NeighborhoodFraction is a = An/Au, the fraction of the cluster disk
// covered by the neighborhood of a node on the circumference (~0.391).
func NeighborhoodFraction() float64 { return geo.NeighborhoodFraction() }

// DefaultLossSweep returns the paper's sweep of message-loss probabilities:
// 0.05 to 0.50 in steps of 0.05.
func DefaultLossSweep() []float64 {
	ps := make([]float64, 0, 10)
	for i := 1; i <= 10; i++ {
		ps = append(ps, float64(i)*0.05)
	}
	return ps
}

// PaperPopulations returns the cluster sizes the paper plots: 50, 75, 100.
func PaperPopulations() []int { return []int{50, 75, 100} }

// validate panics on out-of-domain arguments; the measures are meaningless
// outside these ranges and a silent wrong answer would corrupt experiments.
func validate(n int, p float64) {
	if n < 3 {
		panic("analysis: cluster population must be at least 3 (CH, DCH, member)")
	}
	if p < 0 || p > 1 {
		panic("analysis: loss probability outside [0,1]")
	}
}

// FalseDetection returns P̂(False detection): the probability that an
// operational member on the cluster circumference is mistakenly judged
// failed in one FDS execution (Figure 5), in closed form:
//
//	P̂ = p² · (1 − a(1−p)²)^(N−2),  a = An/Au
//
// Derivation: the member's heartbeat and digest must both miss the CH (p²);
// each of the other N−2 nodes defeats the detection iff it lies in the
// member's neighborhood (a), heard the heartbeat (1−p), and its digest
// reached the CH (1−p).
func FalseDetection(n int, p float64) float64 {
	validate(n, p)
	a := NeighborhoodFraction()
	return p * p * math.Pow(1-a*(1-p)*(1-p), float64(n-2))
}

// FalseDetectionPaperSum evaluates the paper's literal double-summation
// formula for P̂(False detection). It must agree with FalseDetection to
// floating-point accuracy; tests enforce this. Exposed so the equivalence
// is part of the public record rather than a private belief.
func FalseDetectionPaperSum(n int, p float64) float64 {
	validate(n, p)
	a := NeighborhoodFraction()
	total := 0.0
	for k := 0; k <= n-2; k++ {
		outer := stats.BinomialPMF(n-2, k, a)
		inner := 0.0
		for j := 0; j <= k; j++ {
			// j neighbors overheard the heartbeat ((1-p)^j), k-j did not
			// (p^(k-j)), and none of the j digests reached the CH (p^j).
			inner += stats.BinomialPMF(k, j, 1-p) * math.Pow(p, float64(j))
		}
		total += outer * inner
	}
	return p * p * total
}

// FalseDetectionOnCH returns P(False detection on CH): the probability that
// the deputy clusterhead mistakenly judges an operational CH failed in one
// FDS execution (Figure 6), in closed form:
//
//	P = p³ · (1 − (1−p)²)^(N−2)
//
// Derivation (the paper omitted the formula for space): the DCH must miss
// the CH's R-1 heartbeat, R-2 digest, and R-3 health update (p³, the rule's
// three conditions of time redundancy); every other member heard the CH's
// broadcast heartbeat with probability 1−p — the CH reaches the whole
// cluster by construction — and its digest reached the DCH with probability
// 1−p, so each of the N−2 members independently fails to defeat the false
// detection with probability 1 − (1−p)². The absent geometric factor is why
// the CH is far better protected than an edge member (compare Figure 5),
// matching the paper's observation that the CH's heartbeat "may be heard by
// everyone else in the cluster".
func FalseDetectionOnCH(n int, p float64) float64 {
	validate(n, p)
	return p * p * p * math.Pow(1-(1-p)*(1-p), float64(n-2))
}

// Incompleteness returns P̂(Incompleteness): the probability that a member
// on the cluster circumference fails to receive a health-status update
// broadcast by the CH, despite progressive peer forwarding (Figure 7), in
// closed form:
//
//	P̂ = p · (1 − a(1−p)³)^(N−2)
//
// Derivation (omitted by the paper for space): the direct broadcast is lost
// (p); a peer rescues the member iff it lies in the member's in-cluster
// neighborhood (a), itself received the update (1−p), heard the member's
// forwarding request (1−p), and the forwarded copy arrived (1−p). Because
// peer forwarding is progressive — peers fire one at a time until the
// requester acknowledges — recovery fails only if every neighbor fails.
func Incompleteness(n int, p float64) float64 {
	validate(n, p)
	a := NeighborhoodFraction()
	return p * math.Pow(1-a*math.Pow(1-p, 3), float64(n-2))
}

// IncompletenessSum evaluates the incompleteness measure as an explicit
// binomial expectation over the number of in-cluster neighbors, mirroring
// the structure of the paper's Figure 5 formula. Agreement with the closed
// form is test-enforced.
func IncompletenessSum(n int, p float64) float64 {
	validate(n, p)
	a := NeighborhoodFraction()
	perNeighbor := math.Pow(1-p, 3)
	total := 0.0
	for k := 0; k <= n-2; k++ {
		total += stats.BinomialPMF(n-2, k, a) * math.Pow(1-perNeighbor, float64(k))
	}
	return p * total
}

// Measure identifies one of the paper's evaluation measures.
type Measure int

// The paper's three results figures.
const (
	MeasureFalseDetection     Measure = iota + 1 // Figure 5
	MeasureFalseDetectionOnCH                    // Figure 6
	MeasureIncompleteness                        // Figure 7
)

// String implements fmt.Stringer.
func (m Measure) String() string {
	switch m {
	case MeasureFalseDetection:
		return "P(False detection)"
	case MeasureFalseDetectionOnCH:
		return "P(False detection on CH)"
	case MeasureIncompleteness:
		return "P(Incompleteness)"
	default:
		return "unknown measure"
	}
}

// Eval evaluates the measure at the given cluster population and loss
// probability.
func (m Measure) Eval(n int, p float64) float64 {
	switch m {
	case MeasureFalseDetection:
		return FalseDetection(n, p)
	case MeasureFalseDetectionOnCH:
		return FalseDetectionOnCH(n, p)
	case MeasureIncompleteness:
		return Incompleteness(n, p)
	default:
		panic("analysis: unknown measure")
	}
}

// SeriesPoint is one (p, value) sample of a measure.
type SeriesPoint struct {
	P     float64
	Value float64
}

// Series evaluates the measure over the loss sweep for a fixed population,
// producing one curve of the corresponding paper figure.
func Series(m Measure, n int, ps []float64) []SeriesPoint {
	out := make([]SeriesPoint, len(ps))
	for i, p := range ps {
		out[i] = SeriesPoint{P: p, Value: m.Eval(n, p)}
	}
	return out
}
