// Package scenario assembles full-system simulations: a random field of
// hosts running one of the detector stacks (the paper's cluster-based FDS or
// any flat competitor from internal/baseline — gossip, flooding, SWIM,
// query-response, all-pairs), a crash and replenishment schedule, and
// uniform metric collection — completeness, detection latency, false
// suspicions, message and energy costs.
//
// The command-line tools, the examples, and the benchmark harness all build
// on this package, so every experiment measures the same way.
package scenario

import (
	"fmt"
	"sort"
	"time"

	"clusterfds/internal/aggregate"
	"clusterfds/internal/baseline"
	"clusterfds/internal/cluster"
	"clusterfds/internal/fds"
	"clusterfds/internal/geo"
	"clusterfds/internal/intercluster"
	"clusterfds/internal/metrics"
	"clusterfds/internal/mobility"
	"clusterfds/internal/node"
	"clusterfds/internal/radio"
	"clusterfds/internal/sim"
	"clusterfds/internal/sleep"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

// Stack selects the detector stack a world runs.
type Stack int

// Available stacks.
const (
	// StackClusterFDS is the paper's system: cluster formation, the
	// three-round FDS, and inter-cluster failure-report forwarding.
	StackClusterFDS Stack = iota + 1
	// StackGossip is the gossip-style baseline (van Renesse et al.).
	StackGossip
	// StackFlood is the flat-flooding heartbeat baseline.
	StackFlood
	// StackSWIM is the SWIM-style ping/indirect-ping detector.
	StackSWIM
	// StackQueryResponse is the Sens et al. query-response detector.
	StackQueryResponse
	// StackAllPairs is the all-pairs heartbeat strawman.
	StackAllPairs
)

// String implements fmt.Stringer.
func (s Stack) String() string {
	switch s {
	case StackClusterFDS:
		return "cluster-fds"
	case StackGossip:
		return "gossip"
	case StackFlood:
		return "flood"
	case StackSWIM:
		return "swim"
	case StackQueryResponse:
		return "query-response"
	case StackAllPairs:
		return "all-pairs"
	default:
		return fmt.Sprintf("stack(%d)", int(s))
	}
}

// Stacks returns every available stack in declaration order.
func Stacks() []Stack {
	return []Stack{
		StackClusterFDS, StackGossip, StackFlood,
		StackSWIM, StackQueryResponse, StackAllPairs,
	}
}

// ParseStack resolves a stack by its String name.
func ParseStack(name string) (Stack, error) {
	for _, s := range Stacks() {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown detector stack %q", name)
}

// Config describes a scenario.
type Config struct {
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// Nodes is the initial population.
	Nodes int
	// FieldSide is the deployment square's edge length in meters.
	FieldSide float64
	// LossProb is the medium's per-receiver loss probability p.
	LossProb float64
	// Stack selects the detector.
	Stack Stack
	// Timing is the cluster/FDS schedule (cluster stack only); zero means
	// cluster.DefaultTiming().
	Timing cluster.Timing
	// PeerForwarding, BGWAssist, ImplicitAcks gate the robustness
	// mechanisms for ablation studies; Build turns all three on unless
	// DisablePeerForwarding etc. are set.
	DisablePeerForwarding bool
	DisableBGWAssist      bool
	DisableImplicitAcks   bool
	// BaselinePeriod is the heartbeat/gossip period for the baselines;
	// zero means the cluster timing's interval (fair comparison).
	BaselinePeriod sim.Time
	// FloodTTL bounds flood relaying; zero means 16.
	FloodTTL uint8
	// Trace receives structured events; nil means discard.
	Trace trace.Sink
	// MonitorPeriod is how often detection latency is sampled; zero means
	// 500 ms.
	MonitorPeriod sim.Time
	// AggregateSampler, when set, attaches the in-network aggregation
	// service (cluster stack only) with the given per-host sensor model.
	AggregateSampler func(wire.NodeID, wire.Epoch) (float64, bool)
	// Sleep, when set, attaches the duty-cycling policy (cluster stack
	// only).
	Sleep *sleep.Config
	// Mobility, when set, attaches random-waypoint movement to every host
	// (any stack). A zero Field is defaulted to the deployment field.
	Mobility *mobility.Config
	// EpochWorkers selects the intra-replica parallel engine (BuildParallel):
	// the field is cut into fixed strips advanced by this many workers in
	// conservative windows, bit-identical at every worker count. Zero keeps
	// the serial engine; Build ignores this field.
	EpochWorkers int
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 100
	}
	if c.FieldSide <= 0 {
		c.FieldSide = 500
	}
	if c.Stack == 0 {
		c.Stack = StackClusterFDS
	}
	if !c.Timing.Valid() {
		c.Timing = cluster.DefaultTiming()
	}
	if c.BaselinePeriod <= 0 {
		c.BaselinePeriod = c.Timing.Interval
	}
	if c.FloodTTL == 0 {
		c.FloodTTL = 16
	}
	if c.Trace == nil {
		c.Trace = trace.Nop{}
	}
	if c.MonitorPeriod <= 0 {
		c.MonitorPeriod = sim.Time(500 * time.Millisecond)
	}
	return c
}

// World is a built scenario ready to run.
type World struct {
	cfg    Config
	Kernel *sim.Kernel
	Medium *radio.Medium

	hosts   map[wire.NodeID]*node.Host
	order   []wire.NodeID // insertion order, for deterministic iteration
	dets    map[wire.NodeID]baseline.Detector
	cls     map[wire.NodeID]*cluster.Protocol
	fdss    map[wire.NodeID]*fds.Protocol
	aggs    map[wire.NodeID]*aggregate.Protocol
	nextNID wire.NodeID

	crashedAt      map[wire.NodeID]sim.Time
	firstSuspected map[wire.NodeID]map[wire.NodeID]sim.Time // subject -> observer -> time

	// metrics is the world's registry, shared with the medium (per-kind
	// counters) and every FDS instance (per-epoch event series). The
	// epoch sampler turns the medium's cumulative per-kind counters into
	// per-epoch tx:/rx: series; detLat collects detection latencies.
	metrics        *metrics.Registry
	txSeries       [int(wire.KindEnd)]*metrics.Series
	rxSeries       [int(wire.KindEnd)]*metrics.Series
	prevTx, prevRx [int(wire.KindEnd)]int64
	detLat         *metrics.Histogram
}

// detectionLatencyBounds are the upper bucket edges, in seconds, of the
// detection-latency histogram. With φ = 10 s, in-cluster detection lands
// within one to two intervals; dissemination tails stretch further.
var detectionLatencyBounds = []float64{0.5, 1, 2, 5, 10, 15, 20, 30, 60}

// Build constructs the world: hosts placed uniformly at random over the
// field, all booted at time zero.
func Build(cfg Config) *World {
	cfg = cfg.withDefaults()
	k := sim.New(cfg.Seed)
	reg := metrics.NewRegistry()
	m := radio.New(k, radio.Defaults(cfg.LossProb), radio.WithTrace(cfg.Trace), radio.WithMetrics(reg))
	w := &World{
		cfg:            cfg,
		Kernel:         k,
		Medium:         m,
		metrics:        reg,
		detLat:         reg.Histogram("detection-latency-s", detectionLatencyBounds),
		hosts:          make(map[wire.NodeID]*node.Host),
		dets:           make(map[wire.NodeID]baseline.Detector),
		cls:            make(map[wire.NodeID]*cluster.Protocol),
		fdss:           make(map[wire.NodeID]*fds.Protocol),
		aggs:           make(map[wire.NodeID]*aggregate.Protocol),
		nextNID:        1,
		crashedAt:      make(map[wire.NodeID]sim.Time),
		firstSuspected: make(map[wire.NodeID]map[wire.NodeID]sim.Time),
	}
	field := geo.NewRect(cfg.FieldSide, cfg.FieldSide)
	for i := 0; i < cfg.Nodes; i++ {
		w.addHost(geo.UniformInRect(k.Rand(), field))
	}
	w.scheduleMonitor()
	w.scheduleEpochSampler()
	return w
}

// addHost creates, equips, and boots one host at pos.
func (w *World) addHost(pos geo.Point) wire.NodeID {
	id := w.nextNID
	w.nextNID++
	w.addHostWithID(id, pos)
	return id
}

// addHostWithID creates, equips, and boots one host with a pre-reserved NID.
func (w *World) addHostWithID(id wire.NodeID, pos geo.Point) {
	h := node.New(w.Kernel, w.Medium, id, pos, node.WithTrace(w.cfg.Trace))
	switch w.cfg.Stack {
	case StackClusterFDS:
		cl := cluster.New(cluster.DefaultConfig())
		fcfg := fds.DefaultConfig(w.cfg.Timing)
		fcfg.PeerForwarding = !w.cfg.DisablePeerForwarding
		fcfg.Metrics = w.metrics
		f := fds.New(fcfg, cl)
		icfg := intercluster.DefaultConfig(w.cfg.Timing)
		icfg.BGWAssist = !w.cfg.DisableBGWAssist
		icfg.ImplicitAcks = !w.cfg.DisableImplicitAcks
		fw := intercluster.New(icfg, cl, f)
		h.Use(cl)
		h.Use(f)
		h.Use(fw)
		if w.cfg.AggregateSampler != nil {
			sampler := w.cfg.AggregateSampler
			ag := aggregate.New(aggregate.DefaultConfig(w.cfg.Timing), cl, f,
				func(e wire.Epoch) (float64, bool) { return sampler(id, e) })
			h.Use(ag)
			w.aggs[id] = ag
		}
		if w.cfg.Sleep != nil {
			h.Use(sleep.New(*w.cfg.Sleep, cl))
		}
		w.cls[id] = cl
		w.fdss[id] = f
		w.dets[id] = f
	case StackGossip, StackFlood, StackSWIM, StackQueryResponse, StackAllPairs:
		// All flat detectors come from the baseline registry, configured
		// from the same period and suspicion timeout for a fair comparison.
		d, err := baseline.New(w.cfg.Stack.String(), baseline.Params{
			Interval:     w.cfg.BaselinePeriod,
			SuspectAfter: 4 * w.cfg.BaselinePeriod,
			TTL:          w.cfg.FloodTTL,
			RelayJitter:  sim.Time(5 * time.Millisecond),
		})
		if err != nil {
			panic(err)
		}
		h.Use(d)
		w.dets[id] = d
	default:
		panic(fmt.Sprintf("scenario: unknown stack %v", w.cfg.Stack))
	}
	if w.cfg.Mobility != nil {
		mcfg := *w.cfg.Mobility
		if mcfg.Field.Area() <= 0 {
			mcfg.Field = geo.NewRect(w.cfg.FieldSide, w.cfg.FieldSide)
		}
		h.Use(mobility.New(mcfg))
	}
	w.hosts[id] = h
	w.order = append(w.order, id)
	h.Boot()
}

// scheduleMonitor samples, at the monitor period, which observers have
// begun suspecting each crashed subject — a stack-agnostic way to measure
// detection and dissemination latency.
func (w *World) scheduleMonitor() {
	var tick func()
	tick = func() {
		now := w.Kernel.Now()
		for subject := range w.crashedAt {
			obs := w.firstSuspected[subject]
			if obs == nil {
				obs = make(map[wire.NodeID]sim.Time)
				w.firstSuspected[subject] = obs
			}
			for _, id := range w.order {
				if id == subject || w.hosts[id].Crashed() {
					continue
				}
				if _, done := obs[id]; done {
					continue
				}
				if w.dets[id].IsSuspected(subject) {
					obs[id] = now
					w.detLat.Observe(time.Duration(now - w.crashedAt[subject]).Seconds())
				}
			}
		}
		w.Kernel.Schedule(w.cfg.MonitorPeriod, tick)
	}
	w.Kernel.Schedule(w.cfg.MonitorPeriod, tick)
}

// scheduleEpochSampler ticks at every heartbeat-interval boundary and turns
// the medium's cumulative per-kind counters into per-epoch series: the delta
// accumulated between the boundaries of epoch e is attributed to epoch e.
// Series share the counters' names (tx:<kind>, rx:<kind>); the namespaces
// are distinct, so exports carry both the running total and its epoch
// profile.
func (w *World) scheduleEpochSampler() {
	var tick func()
	tick = func() {
		if e := w.cfg.Timing.EpochOf(w.Kernel.Now()); e > 0 {
			w.flushEpochDeltas(uint64(e) - 1)
		}
		w.Kernel.Schedule(w.cfg.Timing.Interval, tick)
	}
	w.Kernel.Schedule(w.cfg.Timing.Interval, tick)
}

// flushEpochDeltas attributes per-kind counter growth since the previous
// flush to epoch e. Idempotent between counter changes; handles are
// resolved lazily so only kinds that actually flowed appear in snapshots.
func (w *World) flushEpochDeltas(e uint64) {
	for k := wire.Kind(1); k < wire.KindEnd; k++ {
		if tx := w.Medium.Sent(k); tx != w.prevTx[k] {
			if w.txSeries[k] == nil {
				w.txSeries[k] = w.metrics.Series("tx:" + k.String())
			}
			w.txSeries[k].Add(e, tx-w.prevTx[k])
			w.prevTx[k] = tx
		}
		if rx := w.Medium.Received(k); rx != w.prevRx[k] {
			if w.rxSeries[k] == nil {
				w.rxSeries[k] = w.metrics.Series("rx:" + k.String())
			}
			w.rxSeries[k].Add(e, rx-w.prevRx[k])
			w.prevRx[k] = rx
		}
	}
}

// Metrics returns the world's registry (shared by the medium and every FDS
// instance). Single-threaded like the kernel; snapshot before crossing
// goroutines.
func (w *World) Metrics() *metrics.Registry { return w.metrics }

// MetricsSnapshot flushes the in-progress epoch's per-kind deltas, records
// the summary gauges (operational host count, fleet energy spent), and
// returns the registry's state as plain mergeable data.
func (w *World) MetricsSnapshot() metrics.Snapshot {
	w.flushEpochDeltas(uint64(w.cfg.Timing.EpochOf(w.Kernel.Now())))
	w.metrics.Gauge("operational").Set(float64(len(w.Operational())))
	w.metrics.Gauge("energy-spent").Set(w.TotalEnergySpent())
	return w.metrics.Snapshot()
}

// Run advances the world to the given absolute virtual time.
func (w *World) Run(until sim.Time) { w.Kernel.RunUntil(until) }

// RunEpochs advances the world through n heartbeat intervals.
func (w *World) RunEpochs(n int) {
	w.Run(sim.Time(uint64(w.cfg.Timing.Interval) * uint64(n)))
}

// CrashAt schedules a fail-stop crash of id at the given absolute time.
func (w *World) CrashAt(at sim.Time, id wire.NodeID) {
	h, ok := w.hosts[id]
	if !ok {
		panic(fmt.Sprintf("scenario: no host %v", id))
	}
	w.Kernel.At(at, func() {
		if !h.Crashed() {
			h.Crash()
			w.crashedAt[id] = w.Kernel.Now()
		}
	})
}

// CrashRandomAt schedules count crashes of distinct, currently scheduled-
// alive hosts at the given time, chosen deterministically from the seed.
func (w *World) CrashRandomAt(at sim.Time, count int) []wire.NodeID {
	candidates := make([]wire.NodeID, 0, len(w.order))
	scheduled := make(map[wire.NodeID]bool, len(w.crashedAt))
	for id := range w.crashedAt {
		scheduled[id] = true
	}
	for _, id := range w.order {
		if !scheduled[id] && !w.hosts[id].Crashed() {
			candidates = append(candidates, id)
		}
	}
	w.Kernel.Rand().Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	if count > len(candidates) {
		count = len(candidates)
	}
	picked := candidates[:count]
	for _, id := range picked {
		w.CrashAt(at, id)
	}
	sorted := append([]wire.NodeID(nil), picked...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted
}

// DeployAt schedules a replenishment host to appear at pos at the given
// time (Section 2.1: "additional resources will be deployed to replenish
// the system"). It returns the new host's NID, reserved immediately.
func (w *World) DeployAt(at sim.Time, pos geo.Point) wire.NodeID {
	id := w.nextNID
	w.nextNID++
	w.Kernel.At(at, func() { w.addHostWithID(id, pos) })
	return id
}

// --- metrics -------------------------------------------------------------------

// Operational returns the NIDs of hosts that are alive right now, sorted.
func (w *World) Operational() []wire.NodeID {
	var out []wire.NodeID
	for _, id := range w.order {
		if !w.hosts[id].Crashed() {
			out = append(out, id)
		}
	}
	return out
}

// Completeness returns, for the given crashed subject, how many operational
// hosts currently suspect it and how many operational hosts there are.
func (w *World) Completeness(subject wire.NodeID) (aware, operational int) {
	for _, id := range w.order {
		if id == subject || w.hosts[id].Crashed() {
			continue
		}
		operational++
		if w.dets[id].IsSuspected(subject) {
			aware++
		}
	}
	return aware, operational
}

// FalseSuspicions returns every (observer, subject) pair where an
// operational observer currently suspects an operational subject — the
// accuracy property's violations.
func (w *World) FalseSuspicions() [][2]wire.NodeID {
	var out [][2]wire.NodeID
	for _, obs := range w.order {
		if w.hosts[obs].Crashed() {
			continue
		}
		for _, subject := range w.dets[obs].KnownFailed() {
			if h, ok := w.hosts[subject]; ok && !h.Crashed() {
				out = append(out, [2]wire.NodeID{obs, subject})
			}
		}
	}
	return out
}

// DetectionLatencies returns, for the subject, the per-observer latency
// from the crash instant to the first sample at which the observer
// suspected it (resolution = the monitor period). Observers that never
// noticed are absent.
func (w *World) DetectionLatencies(subject wire.NodeID) []sim.Time {
	crash, crashed := w.crashedAt[subject]
	if !crashed {
		return nil
	}
	obs := w.firstSuspected[subject]
	out := make([]sim.Time, 0, len(obs))
	for _, at := range obs {
		out = append(out, at-crash)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ClusterCensus summarizes the cluster structure (cluster stack only):
// the number of clusterheads, admitted members, gateways, and unmarked
// hosts among operational hosts.
type ClusterCensus struct {
	Clusterheads int
	Members      int
	Gateways     int
	Unmarked     int
}

// Census computes the current cluster census. It panics for baseline
// stacks, which have no cluster structure.
func (w *World) Census() ClusterCensus {
	if w.cfg.Stack != StackClusterFDS {
		panic("scenario: census requires the cluster stack")
	}
	var c ClusterCensus
	for _, id := range w.order {
		if w.hosts[id].Crashed() {
			continue
		}
		v := w.cls[id].View()
		switch {
		case !v.Marked:
			c.Unmarked++
		case v.IsCH:
			c.Clusterheads++
		default:
			c.Members++
			if v.IsGW() {
				c.Gateways++
			}
		}
	}
	return c
}

// MessageCounts returns the medium's per-kind transmission tallies.
func (w *World) MessageCounts() map[string]int64 { return w.Medium.Counters() }

// TotalEnergySpent returns the fleet's cumulative energy expenditure.
func (w *World) TotalEnergySpent() float64 { return w.Medium.TotalEnergySpent() }

// Host returns the host with the given NID (nil if unknown).
func (w *World) Host(id wire.NodeID) *node.Host { return w.hosts[id] }

// Detector returns the detector running on the given host.
func (w *World) Detector(id wire.NodeID) baseline.Detector { return w.dets[id] }

// FDS returns the cluster-based FDS on the given host (nil for baselines).
func (w *World) FDS(id wire.NodeID) *fds.Protocol { return w.fdss[id] }

// Cluster returns the cluster protocol on the given host (nil for
// baselines).
func (w *World) Cluster(id wire.NodeID) *cluster.Protocol { return w.cls[id] }

// Aggregate returns the aggregation service on the given host (nil when
// aggregation is not enabled).
func (w *World) Aggregate(id wire.NodeID) *aggregate.Protocol { return w.aggs[id] }

// Config returns the (defaulted) configuration the world was built with.
func (w *World) Config() Config { return w.cfg }

// NodeIDs returns all host NIDs in insertion order.
func (w *World) NodeIDs() []wire.NodeID { return append([]wire.NodeID(nil), w.order...) }
