// Replica sweeps: every scenario experiment in this repository boils down
// to "build the same world under many seeds, run it, measure". These
// helpers put that pattern on the replication engine so sweeps use every
// core while staying bit-reproducible: replica i always runs on a world
// seeded with replicate.Seed(cfg.Seed, i), regardless of worker count.
package scenario

import (
	"math/rand"
	"time"

	"clusterfds/internal/metrics"
	"clusterfds/internal/replicate"
	"clusterfds/internal/sim"
	"clusterfds/internal/stats"
	"clusterfds/internal/wire"
)

// Replicas builds and measures trials independent copies of the scenario in
// parallel. Replica i gets cfg with Seed = replicate.Seed(cfg.Seed, i) and a
// freshly built world; body runs the world and extracts a result. Results
// come back in replica order, identical for every worker count (0 =
// GOMAXPROCS, 1 = serial).
//
// Each replica owns its whole simulation — kernel, medium, hosts — so
// bodies need no locks. The one shared object is cfg.Trace: leave it nil
// (or use a concurrency-safe sink such as trace.Memory) when workers != 1.
func Replicas[R any](cfg Config, trials, workers int, body func(i int, w *World) R) []R {
	out, _ := replicate.RunOpts(replicate.Opts{Workers: workers}, trials, cfg.Seed,
		func(i int, _ *rand.Rand) R {
			c := cfg
			c.Seed = replicate.Seed(cfg.Seed, i)
			return body(i, Build(c))
		})
	return out
}

// CrashStudy is the canonical sweep: crash a few hosts mid-run and measure
// detection quality and cost over many seeded replicas.
type CrashStudy struct {
	// Config is the per-replica scenario; Config.Seed is the experiment
	// seed from which replica seeds are derived.
	Config Config
	// Crashes is how many hosts fail per replica (default 1).
	Crashes int
	// CrashEpoch is the epoch at whose midpoint the crashes occur
	// (default 3).
	CrashEpoch int
	// Epochs is how long each replica runs (default 8).
	Epochs int
	// Trials is the number of replicas (default 20).
	Trials int
	// Workers is the fan-out (0 = GOMAXPROCS, 1 = serial).
	Workers int
}

// CrashOutcome is one replica's measurements.
type CrashOutcome struct {
	// Victims are the crashed hosts, ascending.
	Victims []wire.NodeID
	// Aware and Operational sum, over the victims, how many operational
	// hosts knew of the crash and how many could have.
	Aware, Operational int
	// DetectionLatencies collects every observer's first-detection latency
	// across all victims, ascending.
	DetectionLatencies []sim.Time
	// FalseSuspicions counts operational-suspects-operational pairs at the
	// end of the run.
	FalseSuspicions int
	// TxMessages and TxBytes total the fleet's transmissions.
	TxMessages, TxBytes int64
	// Energy is the fleet's cumulative energy expenditure.
	Energy float64
	// Metrics is the replica's full registry snapshot: per-kind counters,
	// per-epoch series, latency histograms, summary gauges.
	Metrics metrics.Snapshot
}

// Completeness returns the fraction of operational hosts aware of the
// victims (1 when nothing crashed).
func (o CrashOutcome) Completeness() float64 {
	if o.Operational == 0 {
		return 1
	}
	return float64(o.Aware) / float64(o.Operational)
}

func (s CrashStudy) defaults() CrashStudy {
	if s.Crashes == 0 {
		s.Crashes = 1
	}
	if s.CrashEpoch == 0 {
		s.CrashEpoch = 3
	}
	if s.Epochs == 0 {
		s.Epochs = 8
	}
	if s.Trials == 0 {
		s.Trials = 20
	}
	return s
}

// Run executes the study and returns per-replica outcomes in replica order.
func (s CrashStudy) Run() []CrashOutcome {
	s = s.defaults()
	return Replicas(s.Config, s.Trials, s.Workers, func(i int, w *World) CrashOutcome {
		timing := w.Config().Timing
		crashAt := timing.EpochStart(wire.Epoch(s.CrashEpoch)) + timing.Interval/2
		victims := w.CrashRandomAt(crashAt, s.Crashes)
		w.RunEpochs(s.Epochs)
		return measureCrash(w, victims)
	})
}

// StudySummary aggregates outcomes for reporting.
type StudySummary struct {
	// Trials is how many replicas contributed.
	Trials int
	// Completeness summarizes the per-replica completeness fractions.
	Completeness *stats.Summary
	// LatencySeconds summarizes every detection latency across replicas.
	LatencySeconds *stats.Summary
	// TxMessages, TxBytes, Energy are per-replica means.
	TxMessages, TxBytes, Energy float64
	// FalseSuspicions is the total across replicas.
	FalseSuspicions int
	// Metrics merges every replica's snapshot in replica order: counters
	// and series sum, gauges sum (divide by Trials for a mean), histograms
	// combine. Identical for every worker count.
	Metrics metrics.Snapshot
}

// Summarize folds per-replica outcomes, in replica order, into one report.
func Summarize(outcomes []CrashOutcome) StudySummary {
	s := StudySummary{
		Trials:         len(outcomes),
		Completeness:   stats.NewSummary(true),
		LatencySeconds: stats.NewSummary(true),
	}
	for _, o := range outcomes {
		s.Completeness.Add(o.Completeness())
		for _, l := range o.DetectionLatencies {
			s.LatencySeconds.Add(time.Duration(l).Seconds())
		}
		s.TxMessages += float64(o.TxMessages)
		s.TxBytes += float64(o.TxBytes)
		s.Energy += float64(o.Energy)
		s.FalseSuspicions += o.FalseSuspicions
		s.Metrics.Merge(o.Metrics)
	}
	if n := float64(len(outcomes)); n > 0 {
		s.TxMessages /= n
		s.TxBytes /= n
		s.Energy /= n
	}
	return s
}
