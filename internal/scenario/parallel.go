package scenario

import (
	"fmt"

	"clusterfds/internal/par"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// Parallel is a built intra-replica parallel scenario: the production
// cluster/fds/intercluster stack on internal/par's strip-partitioned worker
// engine. It exposes the subset of World's surface the parallel engine
// supports — static topology, cluster stack, no monitor — plus the engine's
// trace-hash fingerprint, which is bit-identical at every EpochWorkers value.
type Parallel struct {
	cfg Config
	eng *par.Engine
}

// BuildParallel constructs the parallel replica described by cfg. Only the
// cluster stack with a static field is supported: mobility, sleep,
// aggregation, and the flat baselines stay on the serial Build path.
func BuildParallel(cfg Config) *Parallel {
	cfg = cfg.withDefaults()
	if cfg.Stack != StackClusterFDS {
		panic(fmt.Sprintf("scenario: BuildParallel supports only the cluster stack, not %v", cfg.Stack))
	}
	if cfg.Mobility != nil || cfg.Sleep != nil || cfg.AggregateSampler != nil {
		panic("scenario: BuildParallel does not support mobility, sleep, or aggregation")
	}
	workers := cfg.EpochWorkers
	if workers < 1 {
		workers = 1
	}
	eng := par.Build(par.Config{
		Seed:         cfg.Seed,
		Nodes:        cfg.Nodes,
		FieldSide:    cfg.FieldSide,
		LossProb:     cfg.LossProb,
		Timing:       cfg.Timing,
		Workers:      workers,
		CollectTrace: true,
	})
	return &Parallel{cfg: cfg, eng: eng}
}

// Engine returns the underlying strip engine.
func (p *Parallel) Engine() *par.Engine { return p.eng }

// RunEpochs advances the replica through n heartbeat intervals.
func (p *Parallel) RunEpochs(n int) { p.eng.RunEpochs(n) }

// Now returns the last barrier time.
func (p *Parallel) Now() sim.Time { return p.eng.Now() }

// CrashRandomAt schedules count crashes at the given absolute time, chosen
// deterministically from the seed (sorted NIDs returned).
func (p *Parallel) CrashRandomAt(at sim.Time, count int) []wire.NodeID {
	return p.eng.CrashRandomAt(at, count)
}

// Completeness reports how many operational hosts suspect the crashed
// subject, and how many operational hosts there are.
func (p *Parallel) Completeness(subject wire.NodeID) (aware, operational int) {
	return p.eng.Completeness(subject)
}

// TraceHash returns the replica's deterministic fingerprint: per-strip trace
// streams plus every host's final failure knowledge.
func (p *Parallel) TraceHash() string { return p.eng.TraceHash() }

// Config returns the (defaulted) configuration.
func (p *Parallel) Config() Config { return p.cfg }
