package scenario

import (
	"bytes"
	"testing"

	"clusterfds/internal/metrics"
	"clusterfds/internal/wire"
)

// TestMetricsSnapshotConsistency cross-checks the epoch sampler against the
// medium's cumulative counters: every per-kind series must sum exactly to
// its counter, the FDS event series must reflect the staged crash, and the
// detection-latency histogram must mirror the monitor's records.
func TestMetricsSnapshotConsistency(t *testing.T) {
	w := Build(Config{Seed: 5, Nodes: 30, FieldSide: 200})
	timing := w.Config().Timing
	w.CrashAt(timing.EpochStart(3)+timing.Interval/2, 7)
	w.RunEpochs(6)
	s := w.MetricsSnapshot()

	for _, kind := range []wire.Kind{wire.KindHeartbeat, wire.KindDigest, wire.KindHealthUpdate} {
		name := "tx:" + kind.String()
		sr, ok := s.Series[name]
		if !ok {
			t.Fatalf("series %q missing", name)
		}
		var total int64
		for _, v := range sr.Epochs {
			total += v
		}
		if total != s.Counters[name] {
			t.Errorf("series %q sums to %d, counter says %d", name, total, s.Counters[name])
		}
		if total == 0 {
			t.Errorf("series %q carries no traffic", name)
		}
	}
	// Heartbeats flow from the very first epoch (formation probe = fds.R-1);
	// digests and updates only start once clusters exist.
	if hb := s.Series["tx:heartbeat"]; len(hb.Epochs) == 0 || hb.Epochs[0] == 0 {
		t.Errorf("no epoch-0 heartbeat traffic: %v", hb.Epochs)
	}

	det, ok := s.Series["detections"]
	if !ok {
		t.Fatal("detections series missing")
	}
	var dets int64
	preCrash := int64(0)
	for e, v := range det.Epochs {
		dets += v
		if e < 4 { // crash mid-epoch 3: no detection can precede epoch 4
			preCrash += v
		}
	}
	if dets == 0 {
		t.Error("crash produced no detection events")
	}
	if preCrash != 0 {
		t.Errorf("detections attributed before the crash epoch: %v", det.Epochs)
	}

	h, ok := s.Histograms["detection-latency-s"]
	if !ok || h.Count == 0 {
		t.Fatal("detection-latency histogram empty")
	}
	if want := int64(len(w.DetectionLatencies(7))); h.Count != want {
		t.Errorf("latency observations = %d, monitor recorded %d", h.Count, want)
	}
	if s.Gauges["operational"] != float64(len(w.Operational())) {
		t.Errorf("operational gauge = %v, want %d", s.Gauges["operational"], len(w.Operational()))
	}
}

// TestStudyMetricsWorkerCountInvariant is the acceptance check for the
// parallel sweep: the merged metrics snapshot must be byte-identical for
// every worker count, because replicas are seeded by index and merged in
// replica order.
func TestStudyMetricsWorkerCountInvariant(t *testing.T) {
	study := CrashStudy{
		Config: Config{Seed: 42, Nodes: 25, FieldSide: 200},
		Trials: 6,
		Epochs: 6,
	}
	var snaps []metrics.Snapshot
	var jsons [][]byte
	for _, workers := range []int{1, 4} {
		study.Workers = workers
		sum := Summarize(study.Run())
		var buf bytes.Buffer
		if err := sum.Metrics.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, sum.Metrics)
		jsons = append(jsons, buf.Bytes())
	}
	if !snaps[0].Equal(snaps[1]) {
		t.Error("merged snapshots differ between worker counts")
	}
	if !bytes.Equal(jsons[0], jsons[1]) {
		t.Error("JSON export differs between worker counts")
	}
	if len(snaps[0].Counters) == 0 || len(snaps[0].Series) == 0 {
		t.Error("merged snapshot suspiciously empty")
	}
}
