package scenario

import (
	"strings"
	"testing"

	"clusterfds/internal/cluster"
	"clusterfds/internal/sleep"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

// TestBackboneConnected checks that on a moderately dense random field the
// cluster backbone links every cluster to at least one neighbor (directly
// or through border peers), so failure reports can reach everywhere.
func TestBackboneConnected(t *testing.T) {
	w := Build(Config{Seed: 2, Nodes: 70, FieldSide: 350})
	w.RunEpochs(5)
	chCount := 0
	for _, id := range w.NodeIDs() {
		v := w.Cluster(id).View()
		if !v.IsCH {
			continue
		}
		chCount++
		direct := len(w.Cluster(id).NeighborCHs())
		// A CH with no direct neighbors must at least be reachable via
		// border peers of its members (checked indirectly by the
		// dissemination test); here we only require the census to be sane.
		_ = direct
	}
	if chCount < 2 {
		t.Fatalf("only %d clusters on a 350 m field; expected several", chCount)
	}
}

// TestPeripheralClustersLearnRemoteFailures is the regression test for the
// distributed-gateway path: clusters that form late at the field edges and
// have no one-hop gateway to the main backbone must still learn of remote
// failures through border-peer relaying, and members must still learn even
// when their cluster was mid-formation when the report flood passed.
func TestPeripheralClustersLearnRemoteFailures(t *testing.T) {
	tr := trace.NewMemory(trace.TypeReportForward)
	w := Build(Config{Seed: 2, Nodes: 70, FieldSide: 350, Trace: tr})
	victims := w.CrashRandomAt(w.Config().Timing.EpochStart(3)+w.Config().Timing.Interval/2, 2)
	w.RunEpochs(9)

	for _, v := range victims {
		aware, operational := w.Completeness(v)
		if aware != operational {
			t.Errorf("victim %v: %d/%d operational hosts aware", v, aware, operational)
		}
	}
	// The run must actually have exercised the two-hop path.
	twoHop := 0
	for _, e := range tr.OfType(trace.TypeReportForward) {
		if strings.HasPrefix(e.Detail, "two-hop") || strings.HasPrefix(e.Detail, "inward") {
			twoHop++
		}
	}
	if twoHop == 0 {
		t.Error("distributed-gateway path never used on a sparse field")
	}
}

// TestInactiveHostsAbsorbReports: a host still in formation when a report
// passes by must absorb the knowledge (regression for the merge guard).
func TestInactiveHostsAbsorbReports(t *testing.T) {
	w := Build(Config{Seed: 11, Nodes: 30, FieldSide: 250})
	w.RunEpochs(2)
	f := w.FDS(5)
	f.Handle(w.Host(5), &wire.FailureReport{
		OriginCH: 99, Seq: 1, Epoch: 2, NewFailed: []wire.NodeID{77},
	}, 6)
	if !f.IsSuspected(77) {
		t.Error("report knowledge not absorbed")
	}
}

// TestOrphanTakeoverFullStack kills a cluster's CH and both deputies on a
// full protocol stack: the orphan takeover plus the inter-cluster catch-up
// reports must make every survivor aware of the CH's failure, even those
// that end up re-forming in a different cluster.
func TestOrphanTakeoverFullStack(t *testing.T) {
	w := Build(Config{Seed: 41, Nodes: 40, FieldSide: 280})
	w.RunEpochs(2)
	// Find the lowest-NID clusterhead and its deputies.
	var ch wire.NodeID
	for _, id := range w.NodeIDs() {
		if w.Cluster(id).View().IsCH {
			ch = id
			break
		}
	}
	if ch == wire.NoNode {
		t.Fatal("no clusterhead")
	}
	dchs := w.Cluster(ch).View().DCHs
	at := w.Config().Timing.EpochStart(2) + w.Config().Timing.Interval/2
	w.CrashAt(at, ch)
	for _, d := range dchs {
		w.CrashAt(at, d)
	}
	w.RunEpochs(14)
	aware, operational := w.Completeness(ch)
	if aware != operational {
		t.Errorf("CH %v known by %d/%d survivors", ch, aware, operational)
	}
}

// TestAggregationIntegration attaches the aggregation service on a random
// field and checks a clusterhead can assemble a full global aggregate.
func TestAggregationIntegration(t *testing.T) {
	w := Build(Config{
		Seed: 42, Nodes: 50, FieldSide: 300,
		AggregateSampler: func(id wire.NodeID, e wire.Epoch) (float64, bool) {
			return float64(id), true
		},
	})
	w.RunEpochs(6)
	var ch wire.NodeID
	for _, id := range w.NodeIDs() {
		if w.Cluster(id).View().IsCH {
			ch = id
			break
		}
	}
	best, bestClusters := 0, 0
	for e := wire.Epoch(3); e <= 5; e++ {
		g, clusters := w.Aggregate(ch).Global(e)
		if int(g.Count) > best {
			best = int(g.Count)
		}
		if clusters > bestClusters {
			bestClusters = clusters
		}
	}
	if best < 48 {
		t.Errorf("best global aggregate covered %d/50 readings", best)
	}
	if bestClusters < 2 {
		t.Errorf("only %d cluster partials combined", bestClusters)
	}
}

// TestSleepIntegration runs duty-cycling on a random field: no false
// suspicions (announced sleep) and real crashes still disseminate.
func TestSleepIntegration(t *testing.T) {
	scfg := sleep.DefaultConfig(cluster.DefaultTiming())
	w := Build(Config{Seed: 43, Nodes: 50, FieldSide: 300, Sleep: &scfg})
	timing := w.Config().Timing
	victim := w.CrashRandomAt(timing.EpochStart(4)+timing.Interval/2, 1)[0]
	w.RunEpochs(14)
	aware, operational := w.Completeness(victim)
	if aware != operational {
		t.Errorf("victim %v: %d/%d aware with duty cycling", victim, aware, operational)
	}
	if fs := w.FalseSuspicions(); len(fs) != 0 {
		t.Errorf("announced sleeping caused %d false suspicions", len(fs))
	}
}
