package scenario

import (
	"math/rand"
	"testing"

	"clusterfds/internal/mobility"
	"clusterfds/internal/replicate"
	"clusterfds/internal/sim"
)

// runParallelReplica builds one parallel replica of the canonical crash-wave
// scenario at the given seed and worker count and returns its trace hash.
func runParallelReplica(seed int64, workers int) string {
	p := BuildParallel(Config{
		Seed: seed, Nodes: 120, FieldSide: 500, LossProb: 0.1,
		EpochWorkers: workers,
	})
	timing := p.Config().Timing
	p.CrashRandomAt(timing.EpochStart(2)+timing.Interval/2, 3)
	p.RunEpochs(6)
	return p.TraceHash()
}

// TestBuildParallelMatchesWorkerCounts is the scenario-level worker-count
// invariance gate: the same replica hashes identically at 1, 2, and 4
// epoch workers.
func TestBuildParallelMatchesWorkerCounts(t *testing.T) {
	want := runParallelReplica(7, 1)
	for _, workers := range []int{2, 4} {
		if got := runParallelReplica(7, workers); got != want {
			t.Fatalf("EpochWorkers=%d hash %s != EpochWorkers=1 hash %s", workers, got, want)
		}
	}
}

// TestParallelNestedInReplicas nests the intra-replica epoch pool inside the
// replication engine's worker pool — the two layers of parallelism the
// repository composes (fdsim -trials N -workers W with parallel replicas).
// Each replica spins its own strip-drain goroutines while three replicate
// workers run replicas concurrently; `make race` runs this under the race
// detector. Results must be bit-identical to the fully serial nesting.
func TestParallelNestedInReplicas(t *testing.T) {
	const seed, trials = 7, 4
	body := func(workers int) func(int, *rand.Rand) string {
		return func(i int, _ *rand.Rand) string {
			return runParallelReplica(replicate.Seed(seed, i), workers)
		}
	}
	serial, err := replicate.RunOpts(replicate.Opts{Workers: 1}, trials, seed, body(1))
	if err != nil {
		t.Fatal(err)
	}
	nested, err := replicate.RunOpts(replicate.Opts{Workers: 3}, trials, seed, body(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != nested[i] {
			t.Fatalf("replica %d: nested hash %s != serial hash %s", i, nested[i], serial[i])
		}
	}
}

// TestBuildParallelRejectsUnsupported documents the parallel path's explicit
// scope: only the static-field cluster stack.
func TestBuildParallelRejectsUnsupported(t *testing.T) {
	mustPanic := func(name string, cfg Config) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: BuildParallel did not panic", name)
			}
		}()
		BuildParallel(cfg)
	}
	mustPanic("gossip stack", Config{Stack: StackGossip, EpochWorkers: 2})
	mustPanic("mobility", Config{
		EpochWorkers: 2,
		Mobility:     &mobility.Config{Speed: 1, Pause: sim.Time(1e9)},
	})
}
