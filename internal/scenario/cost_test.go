package scenario

import (
	"math"
	"testing"

	"clusterfds/internal/analysis"
)

// TestCostModelMatchesSimulator validates the analytic steady-state message
// model (analysis.ClusterCost) against the simulator's actual transmission
// counters over several failure-free epochs.
func TestCostModelMatchesSimulator(t *testing.T) {
	w := Build(Config{Seed: 71, Nodes: 100, FieldSide: 400, LossProb: 0.1})
	// Let the structure settle, then measure epochs 4..9.
	w.RunEpochs(4)
	before := w.MessageCounts()
	w.RunEpochs(10)
	after := w.MessageCounts()
	const epochs = 6

	delta := func(k string) float64 {
		return float64(after[k]-before[k]) / epochs
	}

	c := w.Census()
	model := analysis.ClusterCost{
		Nodes:    len(w.Operational()),
		Clusters: c.Clusterheads,
		Gateways: c.Gateways,
		LossProb: w.Config().LossProb,
	}.PerEpoch()

	checks := []struct {
		name      string
		measured  float64
		predicted float64
		tolerance float64 // relative
	}{
		{"heartbeats", delta("tx:heartbeat"), model.Heartbeats, 0.05},
		{"digests", delta("tx:digest"), model.Digests, 0.05},
		{"updates", delta("tx:health-update"), model.Updates, 0.1},
		{"announces", delta("tx:cluster-announce"), model.Announces, 0.1},
		{"gw registrations", delta("tx:gw-register"), model.GWRegisters, 0.25},
		{"peer recovery", delta("tx:forward-request") + delta("tx:forwarded-update") + delta("tx:forward-ack"),
			model.PeerRecovery, 0.45},
	}
	for _, ck := range checks {
		if ck.predicted == 0 {
			if ck.measured != 0 {
				t.Errorf("%s: measured %.1f, predicted 0", ck.name, ck.measured)
			}
			continue
		}
		rel := math.Abs(ck.measured-ck.predicted) / ck.predicted
		if rel > ck.tolerance {
			t.Errorf("%s: measured %.1f vs predicted %.1f (%.0f%% off, tolerance %.0f%%)",
				ck.name, ck.measured, ck.predicted, rel*100, ck.tolerance*100)
		}
	}
}

// TestGossipByteModelMatchesSimulator validates the gossip byte model.
func TestGossipByteModelMatchesSimulator(t *testing.T) {
	w := Build(Config{Seed: 72, Nodes: 40, FieldSide: 200, Stack: StackGossip})
	// Let membership converge (clique-ish field), then measure.
	w.RunEpochs(4)
	b0 := w.MessageCounts()["tx-bytes"]
	w.RunEpochs(8)
	b1 := w.MessageCounts()["tx-bytes"]
	measured := float64(b1-b0) / 4 // per gossip period (== heartbeat interval)

	predicted := analysis.GossipBytesPerInterval(40)
	rel := math.Abs(measured-predicted) / predicted
	if rel > 0.15 {
		t.Errorf("gossip bytes per period: measured %.0f vs predicted %.0f (%.0f%% off)",
			measured, predicted, rel*100)
	}
}
