package scenario

import (
	"testing"
	"time"

	"clusterfds/internal/geo"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

func TestBuildClusterStack(t *testing.T) {
	w := Build(Config{Seed: 1, Nodes: 60, FieldSide: 500})
	w.RunEpochs(4)
	c := w.Census()
	if c.Clusterheads == 0 {
		t.Fatal("no clusters formed")
	}
	if c.Unmarked != 0 {
		t.Errorf("%d hosts unadmitted after 4 epochs with p=0", c.Unmarked)
	}
	if c.Members == 0 {
		t.Error("no ordinary members")
	}
	if len(w.NodeIDs()) != 60 {
		t.Errorf("NodeIDs = %d, want 60", len(w.NodeIDs()))
	}
}

func TestCrashDetectedAndDisseminated(t *testing.T) {
	w := Build(Config{Seed: 2, Nodes: 70, FieldSide: 350})
	victims := w.CrashRandomAt(w.Config().Timing.EpochStart(3)+w.Config().Timing.Interval/2, 2)
	if len(victims) != 2 {
		t.Fatalf("victims = %v", victims)
	}
	w.RunEpochs(9)
	for _, v := range victims {
		aware, operational := w.Completeness(v)
		if operational == 0 {
			t.Fatal("no operational hosts")
		}
		if aware != operational {
			t.Errorf("victim %v: only %d/%d operational hosts aware", v, aware, operational)
		}
		lats := w.DetectionLatencies(v)
		if len(lats) == 0 {
			t.Errorf("victim %v: no latency samples", v)
		}
		for _, l := range lats {
			if l <= 0 || l > 6*w.Config().Timing.Interval {
				t.Errorf("victim %v: implausible latency %v", v, l)
			}
		}
	}
	if fs := w.FalseSuspicions(); len(fs) != 0 {
		t.Errorf("false suspicions with p=0: %v", fs)
	}
}

func TestGossipStack(t *testing.T) {
	w := Build(Config{
		Seed: 3, Nodes: 30, FieldSide: 300, Stack: StackGossip,
		BaselinePeriod: sim.Time(time.Second),
	})
	w.CrashAt(sim.Time(5*time.Second), 7)
	w.Run(sim.Time(30 * time.Second))
	aware, operational := w.Completeness(7)
	if aware != operational {
		t.Errorf("gossip: %d/%d aware", aware, operational)
	}
	if len(w.DetectionLatencies(7)) == 0 {
		t.Error("no latencies recorded")
	}
}

func TestFloodStack(t *testing.T) {
	w := Build(Config{
		Seed: 4, Nodes: 30, FieldSide: 300, Stack: StackFlood,
		BaselinePeriod: sim.Time(time.Second),
	})
	w.CrashAt(sim.Time(5*time.Second), 9)
	w.Run(sim.Time(30 * time.Second))
	aware, operational := w.Completeness(9)
	if aware != operational {
		t.Errorf("flood: %d/%d aware", aware, operational)
	}
	if w.MessageCounts()["tx:flood-heartbeat"] == 0 {
		t.Error("no flood heartbeats counted")
	}
}

func TestDeployAtReplenishes(t *testing.T) {
	w := Build(Config{Seed: 5, Nodes: 20, FieldSide: 250})
	tm := w.Config().Timing
	id := w.DeployAt(tm.EpochStart(3), geo.Point{X: 125, Y: 125})
	w.RunEpochs(7)
	h := w.Host(id)
	if h == nil {
		t.Fatal("deployed host missing")
	}
	v := w.Cluster(id).View()
	if !v.Marked {
		t.Error("replenishment host never admitted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, float64) {
		w := Build(Config{Seed: 77, Nodes: 40, FieldSide: 400, LossProb: 0.2})
		w.CrashRandomAt(w.Config().Timing.EpochStart(2), 3)
		w.RunEpochs(6)
		var total int64
		for _, v := range w.MessageCounts() {
			total += v
		}
		return total, w.TotalEnergySpent()
	}
	m1, e1 := run()
	m2, e2 := run()
	if m1 != m2 || e1 != e2 {
		t.Errorf("runs differ: (%d, %v) vs (%d, %v)", m1, e1, m2, e2)
	}
}

func TestAblationFlagsPropagate(t *testing.T) {
	w := Build(Config{
		Seed: 6, Nodes: 30, FieldSide: 300,
		DisablePeerForwarding: true,
		DisableBGWAssist:      true,
		DisableImplicitAcks:   true,
	})
	w.RunEpochs(3)
	// Smoke: the world still functions with all enhancements off.
	if c := w.Census(); c.Clusterheads == 0 {
		t.Error("no clusters with ablations enabled")
	}
}

func TestCensusPanicsForBaseline(t *testing.T) {
	w := Build(Config{Seed: 7, Nodes: 10, FieldSide: 200, Stack: StackGossip})
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	w.Census()
}

func TestCrashAtUnknownHostPanics(t *testing.T) {
	w := Build(Config{Seed: 8, Nodes: 5, FieldSide: 100})
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	w.CrashAt(sim.Time(time.Second), 999)
}

func TestStackString(t *testing.T) {
	if StackClusterFDS.String() != "cluster-fds" || StackGossip.String() != "gossip" || StackFlood.String() != "flood" {
		t.Error("stack names wrong")
	}
}

func TestOperationalTracksCrashes(t *testing.T) {
	w := Build(Config{Seed: 9, Nodes: 10, FieldSide: 200})
	w.CrashAt(w.Config().Timing.EpochStart(1), 4)
	w.RunEpochs(2)
	ops := w.Operational()
	if len(ops) != 9 {
		t.Errorf("operational = %d, want 9", len(ops))
	}
	for _, id := range ops {
		if id == wire.NodeID(4) {
			t.Error("crashed host listed as operational")
		}
	}
}
