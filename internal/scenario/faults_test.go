package scenario

import (
	"testing"

	"clusterfds/internal/geo"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// Fault-injection suite: scenarios nastier than the happy path, checking
// that the stack degrades the way the paper's analysis predicts and always
// recovers structurally.

// TestLossBurst hits the whole network with a 90%-loss burst for two full
// epochs, then restores a clean channel. The FDS may mis-detect during the
// burst (the analysis says it will: p=0.9 is off the paper's charts), but
// after restoration every false suspicion must be rescinded and every real
// crash known.
func TestLossBurst(t *testing.T) {
	w := Build(Config{Seed: 51, Nodes: 60, FieldSide: 280, LossProb: 0})
	timing := w.Config().Timing
	w.RunEpochs(3)
	victim := w.CrashRandomAt(timing.EpochStart(3)+timing.Interval/2, 1)[0]

	// The burst is injected by swapping per-link loss on every pair via
	// the medium's global silence of... simplest: use per-link overrides
	// on the victim era is not available, so emulate with Silence toggling
	// is per-host. Instead rebuild: the medium's LossProb is fixed at
	// build time, so the burst is modeled by silencing a random third of
	// hosts for two epochs — a correlated outage.
	var muted []wire.NodeID
	for i, id := range w.NodeIDs() {
		if i%3 == 0 && id != victim {
			muted = append(muted, id)
		}
	}
	w.Kernel.At(timing.EpochStart(4), func() {
		for _, id := range muted {
			w.Medium.Silence(id, true)
		}
	})
	w.Kernel.At(timing.EpochStart(6), func() {
		for _, id := range muted {
			w.Medium.Silence(id, false)
		}
	})
	w.RunEpochs(14)

	aware, operational := w.Completeness(victim)
	if aware != operational {
		t.Errorf("victim %v: %d/%d aware after the burst cleared", victim, aware, operational)
	}
	if fs := w.FalseSuspicions(); len(fs) != 0 {
		t.Errorf("%d false suspicions never rescinded after the burst", len(fs))
	}
}

// TestMassCrash kills a third of the field at once. A victim whose entire
// cluster died with it is fundamentally unobservable by the paper's design
// (only a node's own cluster monitors it), so the completeness requirement
// applies exactly to victims with at least one surviving co-member.
func TestMassCrash(t *testing.T) {
	w := Build(Config{Seed: 52, Nodes: 60, FieldSide: 280, LossProb: 0.1})
	timing := w.Config().Timing
	victims := w.CrashRandomAt(timing.EpochStart(3)+timing.Interval/2, 20)

	// Record each victim's cluster co-members just before the crash wave.
	coMembers := make(map[wire.NodeID][]wire.NodeID)
	w.Kernel.At(timing.EpochStart(3)+timing.Interval/2-1, func() {
		for _, v := range victims {
			vv := w.Cluster(v).View()
			ms := append([]wire.NodeID(nil), vv.Members...)
			if !vv.IsMember(vv.CH) {
				ms = append(ms, vv.CH)
			}
			coMembers[v] = ms
		}
	})
	w.RunEpochs(14)

	for _, v := range victims {
		survivingWitness := false
		for _, m := range coMembers[v] {
			if m != v && w.Host(m) != nil && !w.Host(m).Crashed() {
				survivingWitness = true
				break
			}
		}
		aware, operational := w.Completeness(v)
		if survivingWitness && aware != operational {
			t.Errorf("victim %v (witnessed): %d/%d aware", v, aware, operational)
		}
		if !survivingWitness && aware != 0 {
			t.Logf("victim %v: whole cluster died, yet %d hosts know (harmless)", v, aware)
		}
	}
	// The surviving structure must be functional.
	c := w.Census()
	if c.Clusterheads == 0 {
		t.Error("no clusters left")
	}
	if c.Unmarked > 2 {
		t.Errorf("%d survivors still unadmitted", c.Unmarked)
	}
}

// TestRollingCrashes kills one host per epoch for ten epochs.
func TestRollingCrashes(t *testing.T) {
	w := Build(Config{Seed: 53, Nodes: 50, FieldSide: 250, LossProb: 0.1})
	timing := w.Config().Timing
	var victims []wire.NodeID
	for e := 3; e < 13; e++ {
		victims = append(victims, w.CrashRandomAt(timing.EpochStart(wire.Epoch(e))+timing.Interval/2, 1)...)
	}
	w.RunEpochs(17)
	for _, v := range victims {
		aware, operational := w.Completeness(v)
		if aware != operational {
			t.Errorf("victim %v: %d/%d aware", v, aware, operational)
		}
	}
}

// TestReplenishmentUnderFire deploys fresh hosts while crashes are ongoing;
// newcomers must be admitted and must learn the full failure history.
func TestReplenishmentUnderFire(t *testing.T) {
	w := Build(Config{Seed: 54, Nodes: 40, FieldSide: 240, LossProb: 0.1})
	timing := w.Config().Timing
	victims := w.CrashRandomAt(timing.EpochStart(3)+timing.Interval/2, 5)
	var fresh []wire.NodeID
	for i := 0; i < 5; i++ {
		pos := geo.Point{X: 40 + 40*float64(i), Y: 120}
		fresh = append(fresh, w.DeployAt(timing.EpochStart(5)+sim.Time(i+1), pos))
	}
	w.RunEpochs(16)

	for _, id := range fresh {
		if !w.Cluster(id).View().Marked {
			t.Errorf("replenishment host %v never admitted", id)
			continue
		}
		for _, v := range victims {
			if !w.Detector(id).IsSuspected(v) {
				t.Errorf("newcomer %v never learned of pre-deployment failure %v", id, v)
			}
		}
	}
}

// TestGatewayAttrition repeatedly kills exactly the gateway nodes and checks
// the backbone keeps healing (backup gateways, re-registration, border
// relays).
func TestGatewayAttrition(t *testing.T) {
	w := Build(Config{Seed: 55, Nodes: 70, FieldSide: 350, LossProb: 0.05})
	timing := w.Config().Timing
	w.RunEpochs(3)

	// Kill up to three current gateways.
	killed := 0
	for _, id := range w.NodeIDs() {
		v := w.Cluster(id).View()
		if v.Marked && !v.IsCH && v.IsGW() && killed < 3 {
			w.CrashAt(timing.EpochStart(3)+timing.Interval/2, id)
			killed++
		}
	}
	if killed == 0 {
		t.Skip("no gateways in this layout")
	}
	// Then a regular member crash whose report must still traverse.
	victim := w.CrashRandomAt(timing.EpochStart(5)+timing.Interval/2, 1)[0]
	w.RunEpochs(12)
	aware, operational := w.Completeness(victim)
	if aware != operational {
		t.Errorf("victim %v: %d/%d aware after gateway attrition", victim, aware, operational)
	}
}

// TestAsymmetricOutage severs one direction of a CH's links to half its
// cluster for several epochs: detection rule condition 2 (digest evidence)
// must prevent false detections while the members still hear the CH.
func TestAsymmetricOutage(t *testing.T) {
	w := Build(Config{Seed: 56, Nodes: 30, FieldSide: 200, LossProb: 0})
	w.RunEpochs(2)
	var ch wire.NodeID
	for _, id := range w.NodeIDs() {
		if w.Cluster(id).View().IsCH {
			ch = id
			break
		}
	}
	members := w.Cluster(ch).View().Members
	cut := 0
	for _, m := range members {
		if m != ch && cut < len(members)/2 {
			w.Medium.SetLinkLoss(m, ch, 1.0) // member -> CH dead, CH -> member fine
			cut++
		}
	}
	w.RunEpochs(8)
	if fs := w.FalseSuspicions(); len(fs) != 0 {
		t.Errorf("asymmetric outage produced false suspicions: %v", fs)
	}
}

// TestDeterministicUnderFaults re-runs a heavy scenario twice and demands
// bit-identical message statistics.
func TestDeterministicUnderFaults(t *testing.T) {
	run := func() (int64, int) {
		w := Build(Config{Seed: 57, Nodes: 50, FieldSide: 260, LossProb: 0.25})
		timing := w.Config().Timing
		w.CrashRandomAt(timing.EpochStart(2)+timing.Interval/2, 6)
		w.RunEpochs(10)
		var tx int64
		for k, v := range w.MessageCounts() {
			if len(k) > 3 && k[:3] == "tx:" {
				tx += v
			}
		}
		return tx, len(w.FalseSuspicions())
	}
	tx1, fs1 := run()
	tx2, fs2 := run()
	if tx1 != tx2 || fs1 != fs2 {
		t.Errorf("runs diverged: (%d,%d) vs (%d,%d)", tx1, fs1, tx2, fs2)
	}
}
