// The head-to-head sweep matrix: every detector stack crossed with a set of
// fault scenarios, all cells sharing the same experiment seed so each
// detector faces bit-identical deployments, crash picks, and loss draws —
// a paired comparison, not independent samples. Results export as a TSV
// whose FNV-64a hash is the determinism fingerprint checked by
// `make baseline-smoke` at different worker counts.
package scenario

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
	"time"

	"clusterfds/internal/mobility"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// ScenarioKind selects a fault schedule for one matrix cell.
type ScenarioKind int

// Available scenarios. Every cell also crashes Matrix.Crashes hosts at the
// crash epoch's midpoint, so detection quality is measured under each
// disruption, not instead of it.
const (
	// ScenarioCrashWave is the plain crash study: no extra disruption.
	ScenarioCrashWave ScenarioKind = iota + 1
	// ScenarioPartition mutes a third of the hosts (transmit-side silence:
	// they still hear, their timers still run) for the disruption window —
	// a one-way partition that should be rescinded after it heals.
	ScenarioPartition
	// ScenarioDutySleep puts every fourth host's radio to sleep for the
	// disruption window, longer than the suspicion timeout — the paper's
	// Section 6 concern that sleep mode causes false detections.
	ScenarioDutySleep
	// ScenarioMobility runs random-waypoint movement on every host.
	ScenarioMobility
)

// String implements fmt.Stringer.
func (k ScenarioKind) String() string {
	switch k {
	case ScenarioCrashWave:
		return "crash-wave"
	case ScenarioPartition:
		return "partition"
	case ScenarioDutySleep:
		return "duty-sleep"
	case ScenarioMobility:
		return "mobility"
	default:
		return fmt.Sprintf("scenario(%d)", int(k))
	}
}

// ScenarioKinds returns every scenario in declaration order.
func ScenarioKinds() []ScenarioKind {
	return []ScenarioKind{ScenarioCrashWave, ScenarioPartition, ScenarioDutySleep, ScenarioMobility}
}

// ParseScenarioKind resolves a scenario by its String name.
func ParseScenarioKind(name string) (ScenarioKind, error) {
	for _, k := range ScenarioKinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("scenario: unknown scenario %q", name)
}

// Matrix is the head-to-head study: Stacks x Scenarios, each cell a seeded
// replica sweep. All cells reuse Config.Seed, so replica i of every cell
// sees the same field layout and the same crash victims (for stacks sharing
// a build order) — differences in the measurements come from the detectors,
// not the draw.
type Matrix struct {
	// Config is the base scenario; its Stack field is overridden per cell.
	Config Config
	// Stacks to compare; nil means every stack.
	Stacks []Stack
	// Scenarios to run; nil means every scenario.
	Scenarios []ScenarioKind
	// Crashes is how many hosts fail per replica (default 2).
	Crashes int
	// CrashEpoch is the epoch at whose midpoint the crashes occur
	// (default 3).
	CrashEpoch int
	// DisruptFrom/DisruptUntil bound the partition and sleep windows in
	// epochs (defaults 4 and 9 — five intervals, exceeding the baselines'
	// 4-interval suspicion timeout so the disruption must cause false
	// suspicions that a sound detector later rescinds).
	DisruptFrom, DisruptUntil int
	// Epochs is how long each replica runs (default 12, leaving three
	// post-disruption epochs for rescission).
	Epochs int
	// Trials is the number of replicas per cell (default 5).
	Trials int
	// Workers is the per-cell fan-out (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// MobilitySpeed is the random-waypoint speed in m/s for the mobility
	// scenario (default 5).
	MobilitySpeed float64
}

func (m Matrix) defaults() Matrix {
	if m.Stacks == nil {
		m.Stacks = Stacks()
	}
	if m.Scenarios == nil {
		m.Scenarios = ScenarioKinds()
	}
	if m.Crashes == 0 {
		m.Crashes = 2
	}
	if m.CrashEpoch == 0 {
		m.CrashEpoch = 3
	}
	if m.DisruptFrom == 0 {
		m.DisruptFrom = 4
	}
	if m.DisruptUntil == 0 {
		m.DisruptUntil = 9
	}
	if m.Epochs == 0 {
		m.Epochs = 12
	}
	if m.Trials == 0 {
		m.Trials = 5
	}
	if m.MobilitySpeed == 0 {
		m.MobilitySpeed = 5
	}
	return m
}

// MatrixOutcome is one replica's measurements: the crash study's plus the
// false-suspicion count sampled mid-disruption, when partitions and sleep
// are at their most confusing.
type MatrixOutcome struct {
	CrashOutcome
	MidFalseSuspicions int
}

// MatrixCell is one (stack, scenario) cell's aggregate.
type MatrixCell struct {
	Stack    Stack
	Scenario ScenarioKind
	Summary  StudySummary
	// MidFalseSuspicions totals the mid-disruption false-suspicion counts
	// across replicas.
	MidFalseSuspicions int
}

// MatrixResult is the whole study, cells in (scenario-major, stack-minor)
// order.
type MatrixResult struct {
	Cells []MatrixCell
}

// Run executes every cell and returns the result. Cell order, replica
// seeding, and all measurements are independent of Workers.
func (m Matrix) Run() MatrixResult {
	m = m.defaults()
	var r MatrixResult
	for _, kind := range m.Scenarios {
		for _, stack := range m.Stacks {
			r.Cells = append(r.Cells, m.runCell(stack, kind))
		}
	}
	return r
}

func (m Matrix) runCell(stack Stack, kind ScenarioKind) MatrixCell {
	cfg := m.Config
	cfg.Stack = stack
	if kind == ScenarioMobility {
		cfg.Mobility = &mobility.Config{Speed: m.MobilitySpeed, Pause: sim.Time(2 * time.Second)}
	}
	outs := Replicas(cfg, m.Trials, m.Workers, func(i int, w *World) MatrixOutcome {
		timing := w.Config().Timing
		crashAt := timing.EpochStart(wire.Epoch(m.CrashEpoch)) + timing.Interval/2
		victims := w.CrashRandomAt(crashAt, m.Crashes)
		m.scheduleDisruption(w, kind)

		var out MatrixOutcome
		// Sample false suspicions just before the disruption heals: the
		// partition/sleep window exceeds the suspicion timeout, so this is
		// where disruption-induced suspicions peak.
		midAt := timing.EpochStart(wire.Epoch(m.DisruptUntil)) - timing.Interval/4
		w.Kernel.At(midAt, func() { out.MidFalseSuspicions = len(w.FalseSuspicions()) })

		w.RunEpochs(m.Epochs)
		out.CrashOutcome = measureCrash(w, victims)
		return out
	})
	cell := MatrixCell{Stack: stack, Scenario: kind}
	crash := make([]CrashOutcome, len(outs))
	for i, o := range outs {
		crash[i] = o.CrashOutcome
		cell.MidFalseSuspicions += o.MidFalseSuspicions
	}
	cell.Summary = Summarize(crash)
	return cell
}

// scheduleDisruption installs the cell's fault schedule on a fresh world.
func (m Matrix) scheduleDisruption(w *World, kind ScenarioKind) {
	timing := w.Config().Timing
	from := timing.EpochStart(wire.Epoch(m.DisruptFrom))
	until := timing.EpochStart(wire.Epoch(m.DisruptUntil))
	ids := w.NodeIDs()
	switch kind {
	case ScenarioPartition:
		w.Kernel.At(from, func() {
			for j := 0; j < len(ids); j += 3 {
				w.Medium.Silence(ids[j], true)
			}
		})
		w.Kernel.At(until, func() {
			for j := 0; j < len(ids); j += 3 {
				w.Medium.Silence(ids[j], false)
			}
		})
	case ScenarioDutySleep:
		w.Kernel.At(from, func() {
			for j := 0; j < len(ids); j += 4 {
				w.Host(ids[j]).SleepRadio(until)
			}
		})
	}
}

// measureCrash extracts the standard crash-study measurements from a run
// world. CrashStudy.Run and the matrix share it so a matrix crash-wave cell
// and a plain study measure identically.
func measureCrash(w *World, victims []wire.NodeID) CrashOutcome {
	var o CrashOutcome
	o.Victims = victims
	for _, v := range victims {
		aware, operational := w.Completeness(v)
		o.Aware += aware
		o.Operational += operational
		o.DetectionLatencies = append(o.DetectionLatencies, w.DetectionLatencies(v)...)
	}
	sort.Slice(o.DetectionLatencies, func(a, b int) bool {
		return o.DetectionLatencies[a] < o.DetectionLatencies[b]
	})
	o.FalseSuspicions = len(w.FalseSuspicions())
	counts := w.MessageCounts()
	for k, v := range counts {
		if strings.HasPrefix(k, "tx:") {
			o.TxMessages += v
		}
	}
	o.TxBytes = counts["tx-bytes"]
	o.Energy = w.TotalEnergySpent()
	o.Metrics = w.MetricsSnapshot()
	return o
}

// WriteTSV writes the matrix as a fixed-format table, one row per cell. The
// byte stream is deterministic (same seed, any worker count), so its hash
// doubles as the study's replication fingerprint.
func (r MatrixResult) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "scenario\tstack\ttrials\tcompleteness\tlat_mean_s\tlat_p95_s\tfp_end\tfp_mid\ttx_msgs\ttx_bytes\tenergy"); err != nil {
		return err
	}
	for _, c := range r.Cells {
		latMean, latP95 := 0.0, 0.0
		if c.Summary.LatencySeconds.N() > 0 {
			latMean = c.Summary.LatencySeconds.Mean()
			latP95 = c.Summary.LatencySeconds.Percentile(0.95)
		}
		if _, err := fmt.Fprintf(w, "%s\t%s\t%d\t%.4f\t%.2f\t%.2f\t%d\t%d\t%.0f\t%.0f\t%.3f\n",
			c.Scenario, c.Stack, c.Summary.Trials,
			c.Summary.Completeness.Mean(), latMean, latP95,
			c.Summary.FalseSuspicions, c.MidFalseSuspicions,
			c.Summary.TxMessages, c.Summary.TxBytes, c.Summary.Energy); err != nil {
			return err
		}
	}
	return nil
}

// Hash returns the FNV-64a hash of the TSV export — the value two runs (or
// two worker counts) must agree on bit-for-bit.
func (r MatrixResult) Hash() uint64 {
	h := fnv.New64a()
	if err := r.WriteTSV(h); err != nil {
		panic(err) // hash.Hash Write never errors
	}
	return h.Sum64()
}
