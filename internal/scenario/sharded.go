package scenario

import (
	"clusterfds/internal/radio"
	"clusterfds/internal/shard"
	"clusterfds/internal/sim"
	"clusterfds/internal/wire"
)

// ShardedCrashWave maps the legacy scenario vocabulary — the same knobs
// fdsim exposes for the per-host runtime — onto a shard.Config for the
// large-scale engine: a uniform field of cfg.Nodes hosts with a wave of
// `crashes` distinct victims at the midpoint of `crashEpoch`, chosen
// deterministically from the seed (a Fisher–Yates prefix over a dedicated
// stream, the shard-engine analogue of World.CrashRandomAt).
//
// Only the population, field, loss, seed, and timing knobs carry over; the
// robustness-ablation and attachment options (peer forwarding, aggregation,
// sleep, baselines) belong to the per-host runtime and have no sharded
// counterpart.
func ShardedCrashWave(cfg Config, shards, workers, epochs, crashes, crashEpoch int) shard.Config {
	cfg = cfg.withDefaults()
	sc := shard.Config{
		Seed:    cfg.Seed,
		N:       cfg.Nodes,
		Side:    cfg.FieldSide,
		Shards:  shards,
		Workers: workers,
		Epochs:  epochs,
		Timing:  cfg.Timing,
		Radio:   radio.Defaults(cfg.LossProb),
	}
	if crashes <= 0 {
		return sc
	}
	if crashes > cfg.Nodes {
		crashes = cfg.Nodes
	}
	if crashEpoch < 0 {
		crashEpoch = 0
	}
	at := cfg.Timing.EpochStart(wire.Epoch(crashEpoch)) + cfg.Timing.Interval/2
	// Partial Fisher–Yates over 1..Nodes: draw the first `crashes` entries
	// of a seeded permutation without materializing swaps beyond a map of
	// displaced slots, so a 1000-victim wave over 10^6 hosts stays O(V).
	pick := sim.NewStream(sim.SplitMix64(uint64(cfg.Seed)) ^ 0xC2B2AE3D27D4EB4F)
	displaced := make(map[int64]int64, crashes)
	n := int64(cfg.Nodes)
	for i := int64(0); i < int64(crashes); i++ {
		j := i + pick.Int63n(n-i)
		vi, vj := i, j
		if d, ok := displaced[i]; ok {
			vi = d
		}
		if d, ok := displaced[j]; ok {
			vj = d
		}
		displaced[j] = vi
		sc.Crashes = append(sc.Crashes, shard.Crash{ID: wire.NodeID(vj + 1), At: at})
	}
	return sc
}
