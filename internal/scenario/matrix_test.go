package scenario

import (
	"strings"
	"testing"
)

func smallMatrix() Matrix {
	return Matrix{
		Config:    Config{Seed: 42, Nodes: 16, FieldSide: 60},
		Stacks:    []Stack{StackGossip, StackSWIM},
		Scenarios: []ScenarioKind{ScenarioCrashWave, ScenarioPartition},
		Trials:    2,
	}
}

// The matrix's determinism contract: bit-identical TSV (hence hash) at any
// worker count.
func TestMatrixDeterministicAcrossWorkers(t *testing.T) {
	m := smallMatrix()
	m.Workers = 1
	serial := m.Run()
	m.Workers = 4
	parallel := m.Run()
	var a, b strings.Builder
	if err := serial.WriteTSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := parallel.WriteTSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("TSV differs between workers=1 and workers=4:\n%s\nvs\n%s", a.String(), b.String())
	}
	if serial.Hash() != parallel.Hash() {
		t.Errorf("hash differs: %016x vs %016x", serial.Hash(), parallel.Hash())
	}
}

// Every cell of a dense small field must actually detect the crashes: the
// matrix is useless as a comparison if a detector scores zero because the
// harness never wired it up.
func TestMatrixCellsDetect(t *testing.T) {
	m := Matrix{
		Config:    Config{Seed: 7, Nodes: 12, FieldSide: 60},
		Scenarios: []ScenarioKind{ScenarioCrashWave},
		Trials:    2,
		Workers:   1,
	}
	r := m.Run()
	if len(r.Cells) != len(Stacks()) {
		t.Fatalf("got %d cells, want %d", len(r.Cells), len(Stacks()))
	}
	for _, c := range r.Cells {
		if got := c.Summary.Completeness.Mean(); got < 0.9 {
			t.Errorf("%s/%s completeness %.3f, want >= 0.9 on a 60 m clique",
				c.Scenario, c.Stack, got)
		}
		if c.Summary.LatencySeconds.N() == 0 {
			t.Errorf("%s/%s recorded no detection latencies", c.Scenario, c.Stack)
		}
	}
}

// Disruption scenarios must provoke mid-run false suspicions in the timeout
// baselines (the window exceeds SuspectAfter) and the detectors must rescind
// them once the disruption heals.
func TestMatrixDutySleepProvokesAndRescindsFalseSuspicions(t *testing.T) {
	m := Matrix{
		Config:    Config{Seed: 11, Nodes: 12, FieldSide: 60},
		Stacks:    []Stack{StackGossip, StackAllPairs},
		Scenarios: []ScenarioKind{ScenarioDutySleep},
		Crashes:   1,
		Trials:    2,
		Workers:   1,
	}
	r := m.Run()
	for _, c := range r.Cells {
		if c.MidFalseSuspicions == 0 {
			t.Errorf("%s/%s: sleep window longer than SuspectAfter provoked no mid-run false suspicions",
				c.Scenario, c.Stack)
		}
		if c.Summary.FalseSuspicions != 0 {
			t.Errorf("%s/%s: %d false suspicions persist after the sleepers woke; want rescission",
				c.Scenario, c.Stack, c.Summary.FalseSuspicions)
		}
	}
}
