package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasics(t *testing.T) {
	s := NewSummary(false)
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 || s.StdErr() != 0 {
		t.Fatal("zero summary should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
	if !close(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Population variance of this classic set is 4; sample variance is 32/7.
	if !close(s.Variance(), 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", s.Variance(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummarySingleValue(t *testing.T) {
	s := NewSummary(false)
	s.Add(-3.5)
	if s.Mean() != -3.5 || s.Min() != -3.5 || s.Max() != -3.5 {
		t.Error("single-value summary wrong")
	}
	if s.Variance() != 0 {
		t.Errorf("Variance = %v, want 0", s.Variance())
	}
}

func TestSummaryMatchesNaiveComputation(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			xs = append(xs, math.Mod(x, 1e6))
		}
		if len(xs) < 2 {
			return true
		}
		s := NewSummary(false)
		var sum float64
		for _, x := range xs {
			s.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		wantVar := ss / float64(len(xs)-1)
		tol := 1e-6 * math.Max(1, math.Abs(wantVar))
		return close(s.Mean(), mean, 1e-6*math.Max(1, math.Abs(mean))) && close(s.Variance(), wantVar, tol)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	s := NewSummary(true)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.25, 25.75}, {0.99, 99.01},
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.q); !close(got, tt.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestPercentileWithoutValuesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	s := NewSummary(false)
	s.Add(1)
	s.Percentile(0.5)
}

func TestPercentileEmpty(t *testing.T) {
	s := NewSummary(true)
	if got := s.Percentile(0.5); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

func TestProportion(t *testing.T) {
	var p Proportion
	if lo, hi := p.Wilson(1.96); lo != 0 || hi != 1 {
		t.Errorf("empty Wilson = [%v,%v], want [0,1]", lo, hi)
	}
	for i := 0; i < 100; i++ {
		p.AddOutcome(i < 30)
	}
	if !close(p.Estimate(), 0.3, 1e-12) {
		t.Errorf("Estimate = %v, want 0.3", p.Estimate())
	}
	lo, hi := p.Wilson(1.96)
	if lo >= 0.3 || hi <= 0.3 {
		t.Errorf("interval [%v,%v] should contain the point estimate", lo, hi)
	}
	// Known Wilson interval for 30/100 at 95%: approximately [0.219, 0.396].
	if !close(lo, 0.2189, 0.005) || !close(hi, 0.3961, 0.005) {
		t.Errorf("interval [%v,%v], want ~[0.219, 0.396]", lo, hi)
	}
	if !p.Contains(0.3, 1.96) || p.Contains(0.9, 1.96) {
		t.Error("Contains misbehaves")
	}
}

func TestProportionZeroSuccesses(t *testing.T) {
	p := Proportion{Successes: 0, Trials: 50}
	lo, hi := p.Wilson(1.96)
	if lo != 0 {
		t.Errorf("lo = %v, want 0", lo)
	}
	if hi <= 0 || hi > 0.1 {
		t.Errorf("hi = %v, want small positive", hi)
	}
}

func TestProportionCoverageProperty(t *testing.T) {
	// With many trials at a known p, the 95% Wilson interval should cover
	// the truth in the vast majority of replications.
	rng := rand.New(rand.NewSource(7))
	const reps, trials = 300, 400
	truth := 0.12
	covered := 0
	for r := 0; r < reps; r++ {
		var p Proportion
		for i := 0; i < trials; i++ {
			p.AddOutcome(rng.Float64() < truth)
		}
		if p.Contains(truth, 1.96) {
			covered++
		}
	}
	if frac := float64(covered) / reps; frac < 0.90 {
		t.Errorf("coverage %.3f, want >= 0.90", frac)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Get("x") != 0 || c.Total() != 0 {
		t.Fatal("zero counter should read zero")
	}
	c.Inc("heartbeat", 3)
	c.Inc("digest", 2)
	c.Inc("heartbeat", 1)
	if c.Get("heartbeat") != 4 || c.Get("digest") != 2 {
		t.Errorf("tallies wrong: %v", c.Snapshot())
	}
	if c.Total() != 6 {
		t.Errorf("Total = %d, want 6", c.Total())
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "digest" || names[1] != "heartbeat" {
		t.Errorf("Names = %v", names)
	}
	snap := c.Snapshot()
	snap["heartbeat"] = 999
	if c.Get("heartbeat") != 4 {
		t.Error("snapshot aliases counter state")
	}
}

func TestBinomialPMF(t *testing.T) {
	tests := []struct {
		n, k int
		p    float64
		want float64
	}{
		{10, 0, 0.5, math.Pow(0.5, 10)},
		{10, 10, 0.5, math.Pow(0.5, 10)},
		{10, 5, 0.5, 252 * math.Pow(0.5, 10)},
		{5, 2, 0.3, 10 * 0.09 * 0.343},
		{3, 0, 0, 1},
		{3, 1, 0, 0},
		{3, 3, 1, 1},
		{3, 2, 1, 0},
	}
	for _, tt := range tests {
		if got := BinomialPMF(tt.n, tt.k, tt.p); !close(got, tt.want, 1e-12) {
			t.Errorf("BinomialPMF(%d,%d,%v) = %v, want %v", tt.n, tt.k, tt.p, got, tt.want)
		}
	}
	if got := BinomialPMF(5, -1, 0.5); got != 0 {
		t.Errorf("k<0 should give 0, got %v", got)
	}
	if got := BinomialPMF(5, 6, 0.5); got != 0 {
		t.Errorf("k>n should give 0, got %v", got)
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 10, 100} {
		for _, p := range []float64{0.05, 0.391, 0.5, 0.99} {
			var sum float64
			for k := 0; k <= n; k++ {
				sum += BinomialPMF(n, k, p)
			}
			if !close(sum, 1, 1e-9) {
				t.Errorf("sum over k of PMF(n=%d,p=%v) = %v, want 1", n, p, sum)
			}
		}
	}
}

func TestLogSumExp(t *testing.T) {
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Error("empty LogSumExp should be -Inf")
	}
	got := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if !close(got, math.Log(6), 1e-12) {
		t.Errorf("LogSumExp = %v, want log 6", got)
	}
	// Extreme range: must not underflow.
	got = LogSumExp([]float64{-1000, -1000})
	if !close(got, -1000+math.Log(2), 1e-9) {
		t.Errorf("LogSumExp extreme = %v", got)
	}
	if !math.IsInf(LogSumExp([]float64{math.Inf(-1), math.Inf(-1)}), -1) {
		t.Error("all -Inf should stay -Inf")
	}
}
