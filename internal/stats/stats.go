// Package stats provides the small statistical toolkit the experiment
// harnesses need: streaming summaries, proportion estimates with confidence
// intervals, and histogram-style tallies. Nothing here is protocol-specific.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of float64 observations and reports moments
// and extrema. The zero value is ready to use.
type Summary struct {
	n          int
	mean, m2   float64
	min, max   float64
	everyValue []float64 // retained only when percentiles are requested
	keepValues bool
}

// NewSummary returns a summary; if keepValues is true, observations are
// retained so Percentile can be answered (at O(n) memory).
func NewSummary(keepValues bool) *Summary {
	return &Summary{keepValues: keepValues}
}

// Add records one observation using Welford's online algorithm.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		s.min = math.Min(s.min, x)
		s.max = math.Max(s.max, x)
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
	if s.keepValues {
		s.everyValue = append(s.everyValue, x)
	}
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 with no observations).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 with no observations).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 with no observations).
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance (0 with fewer than two
// observations).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// Percentile returns the q-th percentile (q in [0,1]) by linear
// interpolation. It panics unless the summary was created with
// keepValues=true; it returns 0 with no observations.
func (s *Summary) Percentile(q float64) float64 {
	if !s.keepValues {
		panic("stats: Percentile requires NewSummary(true)")
	}
	if s.n == 0 {
		return 0
	}
	vals := append([]float64(nil), s.everyValue...)
	sort.Float64s(vals)
	if q <= 0 {
		return vals[0]
	}
	if q >= 1 {
		return vals[len(vals)-1]
	}
	pos := q * float64(len(vals)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(vals) {
		return vals[len(vals)-1]
	}
	return vals[lo]*(1-frac) + vals[lo+1]*frac
}

// String renders a one-line digest for logs and example output.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g min=%.6g max=%.6g",
		s.n, s.Mean(), s.StdDev(), s.Min(), s.Max())
}

// Proportion estimates a Bernoulli success probability from counts and
// provides a Wilson score interval, which behaves sensibly when successes
// are zero or near the boundary — exactly the regime of rare false
// detections.
type Proportion struct {
	Successes int
	Trials    int
}

// AddOutcome records one Bernoulli trial.
func (p *Proportion) AddOutcome(success bool) {
	p.Trials++
	if success {
		p.Successes++
	}
}

// Estimate returns the point estimate successes/trials (0 when empty).
func (p Proportion) Estimate() float64 {
	if p.Trials == 0 {
		return 0
	}
	return float64(p.Successes) / float64(p.Trials)
}

// Wilson returns the Wilson score interval at the given z (e.g. 1.96 for
// 95%). With zero trials it returns (0, 1): total ignorance.
func (p Proportion) Wilson(z float64) (lo, hi float64) {
	if p.Trials == 0 {
		return 0, 1
	}
	n := float64(p.Trials)
	phat := p.Estimate()
	z2 := z * z
	denom := 1 + z2/n
	center := (phat + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(phat*(1-phat)/n+z2/(4*n*n))
	lo = math.Max(0, center-half)
	hi = math.Min(1, center+half)
	return lo, hi
}

// Contains reports whether the Wilson interval at z contains q.
func (p Proportion) Contains(q, z float64) bool {
	lo, hi := p.Wilson(z)
	return q >= lo && q <= hi
}

// String renders the estimate with its 95% interval.
func (p Proportion) String() string {
	lo, hi := p.Wilson(1.96)
	return fmt.Sprintf("%d/%d = %.4g [%.4g, %.4g]", p.Successes, p.Trials, p.Estimate(), lo, hi)
}

// Counter is a string-keyed tally, used for message counts by kind and for
// event accounting. The zero value is ready to use.
type Counter struct {
	m map[string]int64
}

// Inc adds delta to the named tally.
func (c *Counter) Inc(name string, delta int64) {
	if c.m == nil {
		c.m = make(map[string]int64)
	}
	c.m[name] += delta
}

// Get returns the named tally (0 if never incremented).
func (c *Counter) Get(name string) int64 { return c.m[name] }

// Total returns the sum over all names.
func (c *Counter) Total() int64 {
	var t int64
	for _, v := range c.m {
		t += v
	}
	return t
}

// Names returns the tally names in sorted order.
func (c *Counter) Names() []string {
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of the tallies.
func (c *Counter) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// BinomialLogPMF returns log P[X = k] for X ~ Binomial(n, p). Computed in
// log space so the analytic cross-checks can handle the paper's 1e-100-scale
// probabilities without underflow.
func BinomialLogPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if p <= 0 {
		if k == 0 {
			return 0
		}
		return math.Inf(-1)
	}
	if p >= 1 {
		if k == n {
			return 0
		}
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
}

// BinomialPMF returns P[X = k] for X ~ Binomial(n, p).
func BinomialPMF(n, k int, p float64) float64 {
	return math.Exp(BinomialLogPMF(n, k, p))
}

// LogSumExp returns log(sum(exp(xs))) stably; empty input yields -Inf.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - m)
	}
	return m + math.Log(sum)
}
