// Package wire defines the messages exchanged by the cluster-formation
// algorithm, the failure detection service, the inter-cluster forwarding
// machinery, and the baseline detectors, together with a compact binary
// codec.
//
// Messages are encoded explicitly (rather than passed as Go pointers)
// because encoded size is an input to the radio medium's energy model and
// because a lost/duplicated message must not alias state between hosts. The
// paper assumes messages are never created or altered in transit
// (Section 2.2); the codec's round-trip property tests pin that down.
package wire

import (
	"fmt"
	"math"
)

// NodeID identifies a host. The paper calls this the NID and assumes it is
// globally unique in the network. IDs participate in clusterhead election
// (lowest NID wins) and in the energy-balanced peer-forwarding backoff.
type NodeID uint32

// NoNode is the zero NodeID, used as an explicit "no such node" sentinel.
// Valid node IDs start at 1, per the style rule that enums/IDs start at one
// so the zero value is detectably unset.
const NoNode NodeID = 0

// String implements fmt.Stringer.
func (id NodeID) String() string {
	if id == NoNode {
		return "n∅"
	}
	return fmt.Sprintf("n%d", uint32(id))
}

// Epoch numbers an execution of the FDS: the k-th heartbeat interval since
// deployment. All FDS messages carry the epoch so stragglers from a previous
// execution are never confused with the current one.
type Epoch uint64

// Kind discriminates message types on the wire.
type Kind uint8

// Message kinds. They start at 1 so a zero byte is never a valid message.
const (
	KindHeartbeat Kind = iota + 1
	KindDigest
	KindHealthUpdate
	KindForwardRequest
	KindForwardedUpdate
	KindForwardAck
	KindFailureReport
	KindCHDeclare
	KindClusterAnnounce
	KindGWRegister
	KindGossip
	KindFloodHeartbeat
	KindAggregate
	KindSleepNotice
	KindSWIMPing
	KindSWIMPingReq
	KindSWIMAck
	KindFDQuery
	KindFDResponse
	KindAllPairsHeartbeat

	kindEnd // one past the last valid kind
)

// KindEnd is one past the last valid message kind, for callers that iterate
// the kind space (per-kind counters, epoch series).
const KindEnd = kindEnd

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindHeartbeat:
		return "heartbeat"
	case KindDigest:
		return "digest"
	case KindHealthUpdate:
		return "health-update"
	case KindForwardRequest:
		return "forward-request"
	case KindForwardedUpdate:
		return "forwarded-update"
	case KindForwardAck:
		return "forward-ack"
	case KindFailureReport:
		return "failure-report"
	case KindCHDeclare:
		return "ch-declare"
	case KindClusterAnnounce:
		return "cluster-announce"
	case KindGWRegister:
		return "gw-register"
	case KindGossip:
		return "gossip"
	case KindFloodHeartbeat:
		return "flood-heartbeat"
	case KindAggregate:
		return "aggregate"
	case KindSleepNotice:
		return "sleep-notice"
	case KindSWIMPing:
		return "swim-ping"
	case KindSWIMPingReq:
		return "swim-ping-req"
	case KindSWIMAck:
		return "swim-ack"
	case KindFDQuery:
		return "fd-query"
	case KindFDResponse:
		return "fd-response"
	case KindAllPairsHeartbeat:
		return "allpairs-heartbeat"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Rescission withdraws a previously announced failure detection: Node was
// announced failed in (or before) Epoch, and its clusterhead has since heard
// it alive. The epoch is pinned to the withdrawn detection so a relayed
// rescission can never cancel a LATER, genuine detection of the same node.
type Rescission struct {
	Node  NodeID
	Epoch Epoch
}

func appendRescissions(b []byte, rs []Rescission) []byte {
	if len(rs) > math.MaxUint16 {
		panic("wire: rescission list too long")
	}
	b = appendU16(b, uint16(len(rs)))
	for _, r := range rs {
		b = appendU32(b, uint32(r.Node))
		b = appendU64(b, uint64(r.Epoch))
	}
	return b
}

func readRescissions(b []byte, s *DecodeScratch) ([]Rescission, []byte, error) {
	n, b, err := readU16(b)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, b, nil
	}
	if len(b) < int(n)*12 {
		return nil, nil, errShort
	}
	var rs []Rescission
	if s != nil {
		rs = s.rescissions.take(int(n))
	} else {
		rs = make([]Rescission, n)
	}
	for i := range rs {
		var u32 uint32
		var u64 uint64
		u32, b, _ = readU32(b)
		u64, b, _ = readU64(b)
		rs[i] = Rescission{Node: NodeID(u32), Epoch: Epoch(u64)}
	}
	return rs, b, nil
}

// Message is the interface implemented by everything that can cross the
// radio medium.
type Message interface {
	// Kind returns the wire discriminator for the message.
	Kind() Kind
	// WireSize returns the encoded length in bytes, including the kind
	// byte. The radio's energy model charges per byte.
	WireSize() int
	// append encodes the body (everything after the kind byte) onto b.
	append(b []byte) []byte
	// decode parses the body from b, returning the remaining bytes. When s
	// is non-nil, variable-length fields are carved from s's arenas instead
	// of freshly allocated; the decoded message then aliases s and is valid
	// only until s's next DecodeInto call.
	decode(b []byte, s *DecodeScratch) ([]byte, error)
}

// --- FDS round 1: heartbeat exchange -----------------------------------

// Heartbeat is the fds.R-1 message: "a heartbeat message which contains the
// sender's NID and a one-bit mark indicator". Marked indicates the sender
// has been admitted to a cluster; unmarked heartbeats drive further
// cluster-formation iterations and membership subscription (feature F5).
type Heartbeat struct {
	NID    NodeID
	Epoch  Epoch
	Marked bool
}

// Kind implements Message.
func (*Heartbeat) Kind() Kind { return KindHeartbeat }

// WireSize implements Message.
func (*Heartbeat) WireSize() int { return 1 + 4 + 8 + 1 }

func (m *Heartbeat) append(b []byte) []byte {
	b = appendU32(b, uint32(m.NID))
	b = appendU64(b, uint64(m.Epoch))
	return appendBool(b, m.Marked)
}

func (m *Heartbeat) decode(b []byte, s *DecodeScratch) ([]byte, error) {
	var u32 uint32
	var u64 uint64
	var err error
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.NID = NodeID(u32)
	if u64, b, err = readU64(b); err != nil {
		return nil, err
	}
	m.Epoch = Epoch(u64)
	if m.Marked, b, err = readBool(b); err != nil {
		return nil, err
	}
	return b, nil
}

// --- FDS round 2: digest exchange ---------------------------------------

// Digest is the fds.R-2 message: the set of cluster members from which the
// sender heard (or overheard) heartbeats during fds.R-1. The sender's own
// liveness is implied by the digest's existence. CH names the sender's
// cluster affiliation; overhearing a digest from a foreign cluster is how a
// border node learns it can serve as a distributed (two-hop) gateway when
// no single node hears both clusterheads — the fallback gateway form the
// paper describes in Section 3.
type Digest struct {
	NID   NodeID
	CH    NodeID
	Epoch Epoch
	Heard []NodeID
	// HasReading/Reading piggyback a sensor measurement on the digest —
	// the "message sharing between failure detection and data
	// aggregation" the paper's Section 6 anticipates: the aggregation
	// service rides the FDS's round-2 traffic for free.
	HasReading bool
	Reading    float64
}

// Kind implements Message.
func (*Digest) Kind() Kind { return KindDigest }

// WireSize implements Message.
func (m *Digest) WireSize() int { return 1 + 4 + 4 + 8 + 2 + 4*len(m.Heard) + 1 + 8 }

func (m *Digest) append(b []byte) []byte {
	b = appendU32(b, uint32(m.NID))
	b = appendU32(b, uint32(m.CH))
	b = appendU64(b, uint64(m.Epoch))
	b = appendIDs(b, m.Heard)
	b = appendBool(b, m.HasReading)
	return appendU64(b, math.Float64bits(m.Reading))
}

func (m *Digest) decode(b []byte, s *DecodeScratch) ([]byte, error) {
	var u32 uint32
	var u64 uint64
	var err error
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.NID = NodeID(u32)
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.CH = NodeID(u32)
	if u64, b, err = readU64(b); err != nil {
		return nil, err
	}
	m.Epoch = Epoch(u64)
	if m.Heard, b, err = readIDs(b, s); err != nil {
		return nil, err
	}
	if m.HasReading, b, err = readBool(b); err != nil {
		return nil, err
	}
	if u64, b, err = readU64(b); err != nil {
		return nil, err
	}
	m.Reading = math.Float64frombits(u64)
	return b, nil
}

// --- FDS round 3: health-status update ----------------------------------

// HealthUpdate is the fds.R-3 broadcast from the CH (or, on CH failure, from
// the highest-ranked DCH): the cluster health status listing newly detected
// failed nodes this epoch. AllFailed carries the cluster's cumulative failed
// set so late joiners and message-loss victims can catch up.
type HealthUpdate struct {
	From      NodeID // CH, or the DCH that took over
	CH        NodeID // the clusterhead this update speaks for
	Epoch     Epoch
	NewFailed []NodeID
	AllFailed []NodeID
	// Rescinded lists previously announced failures the CH has withdrawn:
	// under fail-stop, hearing a heartbeat from an allegedly failed node
	// proves the detection was false. Rescind propagation is this
	// implementation's extension beyond the paper (see DESIGN.md).
	Rescinded []Rescission
	Takeover  bool // set when a DCH announces a CH failure and takes over
}

// Kind implements Message.
func (*HealthUpdate) Kind() Kind { return KindHealthUpdate }

// WireSize implements Message.
func (m *HealthUpdate) WireSize() int {
	return 1 + 4 + 4 + 8 + (2 + 4*len(m.NewFailed)) + (2 + 4*len(m.AllFailed)) +
		(2 + 12*len(m.Rescinded)) + 1
}

func (m *HealthUpdate) append(b []byte) []byte {
	b = appendU32(b, uint32(m.From))
	b = appendU32(b, uint32(m.CH))
	b = appendU64(b, uint64(m.Epoch))
	b = appendIDs(b, m.NewFailed)
	b = appendIDs(b, m.AllFailed)
	b = appendRescissions(b, m.Rescinded)
	return appendBool(b, m.Takeover)
}

func (m *HealthUpdate) decode(b []byte, s *DecodeScratch) ([]byte, error) {
	var u32 uint32
	var u64 uint64
	var err error
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.From = NodeID(u32)
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.CH = NodeID(u32)
	if u64, b, err = readU64(b); err != nil {
		return nil, err
	}
	m.Epoch = Epoch(u64)
	if m.NewFailed, b, err = readIDs(b, s); err != nil {
		return nil, err
	}
	if m.AllFailed, b, err = readIDs(b, s); err != nil {
		return nil, err
	}
	if m.Rescinded, b, err = readRescissions(b, s); err != nil {
		return nil, err
	}
	if m.Takeover, b, err = readBool(b); err != nil {
		return nil, err
	}
	return b, nil
}

// --- Intra-cluster peer forwarding (completeness enhancement) ------------

// ForwardRequest is broadcast by a node that reached the end of fds.R-3
// without receiving the CH's health update, asking in-cluster neighbors to
// forward it (Section 4.2, "Intra-Cluster Completeness Enhancement").
type ForwardRequest struct {
	NID   NodeID
	Epoch Epoch
}

// Kind implements Message.
func (*ForwardRequest) Kind() Kind { return KindForwardRequest }

// WireSize implements Message.
func (*ForwardRequest) WireSize() int { return 1 + 4 + 8 }

func (m *ForwardRequest) append(b []byte) []byte {
	b = appendU32(b, uint32(m.NID))
	return appendU64(b, uint64(m.Epoch))
}

func (m *ForwardRequest) decode(b []byte, s *DecodeScratch) ([]byte, error) {
	var u32 uint32
	var u64 uint64
	var err error
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.NID = NodeID(u32)
	if u64, b, err = readU64(b); err != nil {
		return nil, err
	}
	m.Epoch = Epoch(u64)
	return b, nil
}

// ForwardedUpdate is a peer's retransmission of the CH's health update in
// response to a ForwardRequest (or proactively, when a DCH's digest showed
// it cannot reach the requester).
type ForwardedUpdate struct {
	Forwarder NodeID
	Requester NodeID
	Update    HealthUpdate
}

// Kind implements Message.
func (*ForwardedUpdate) Kind() Kind { return KindForwardedUpdate }

// WireSize implements Message.
func (m *ForwardedUpdate) WireSize() int { return 1 + 4 + 4 + m.Update.WireSize() - 1 }

func (m *ForwardedUpdate) append(b []byte) []byte {
	b = appendU32(b, uint32(m.Forwarder))
	b = appendU32(b, uint32(m.Requester))
	return m.Update.append(b)
}

func (m *ForwardedUpdate) decode(b []byte, s *DecodeScratch) ([]byte, error) {
	var u32 uint32
	var err error
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.Forwarder = NodeID(u32)
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.Requester = NodeID(u32)
	return m.Update.decode(b, s)
}

// ForwardAck is the requester's acknowledgment of a ForwardedUpdate; peers
// still waiting out their backoff quit upon overhearing it.
type ForwardAck struct {
	NID   NodeID
	Epoch Epoch
}

// Kind implements Message.
func (*ForwardAck) Kind() Kind { return KindForwardAck }

// WireSize implements Message.
func (*ForwardAck) WireSize() int { return 1 + 4 + 8 }

func (m *ForwardAck) append(b []byte) []byte {
	b = appendU32(b, uint32(m.NID))
	return appendU64(b, uint64(m.Epoch))
}

func (m *ForwardAck) decode(b []byte, s *DecodeScratch) ([]byte, error) {
	var u32 uint32
	var u64 uint64
	var err error
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.NID = NodeID(u32)
	if u64, b, err = readU64(b); err != nil {
		return nil, err
	}
	m.Epoch = Epoch(u64)
	return b, nil
}

// --- Inter-cluster failure report forwarding ------------------------------

// FailureReport carries locally detected failures across clusters over the
// CH–GW–CH backbone (Section 4.3). In addition to the newly detected failed
// nodes it "may also include the NIDs of the previously detected failed
// nodes" to improve completeness. Seq is assigned by the origin CH;
// (OriginCH, Seq) de-duplicates flooding. Sender names the hop's
// transmitter so implicit acknowledgments can be recognized by overhearing.
type FailureReport struct {
	OriginCH  NodeID
	Seq       uint64
	Epoch     Epoch
	NewFailed []NodeID
	AllFailed []NodeID
	// Rescinded carries withdrawn detections across clusters (the rescind
	// propagation extension; see HealthUpdate.Rescinded).
	Rescinded []Rescission
	Sender    NodeID
	TargetCH  NodeID // next-hop cluster head (NoNode = any)
}

// Kind implements Message.
func (*FailureReport) Kind() Kind { return KindFailureReport }

// WireSize implements Message.
func (m *FailureReport) WireSize() int {
	return 1 + 4 + 8 + 8 + (2 + 4*len(m.NewFailed)) + (2 + 4*len(m.AllFailed)) +
		(2 + 12*len(m.Rescinded)) + 4 + 4
}

func (m *FailureReport) append(b []byte) []byte {
	b = appendU32(b, uint32(m.OriginCH))
	b = appendU64(b, m.Seq)
	b = appendU64(b, uint64(m.Epoch))
	b = appendIDs(b, m.NewFailed)
	b = appendIDs(b, m.AllFailed)
	b = appendRescissions(b, m.Rescinded)
	b = appendU32(b, uint32(m.Sender))
	return appendU32(b, uint32(m.TargetCH))
}

func (m *FailureReport) decode(b []byte, s *DecodeScratch) ([]byte, error) {
	var u32 uint32
	var u64 uint64
	var err error
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.OriginCH = NodeID(u32)
	if u64, b, err = readU64(b); err != nil {
		return nil, err
	}
	m.Seq = u64
	if u64, b, err = readU64(b); err != nil {
		return nil, err
	}
	m.Epoch = Epoch(u64)
	if m.NewFailed, b, err = readIDs(b, s); err != nil {
		return nil, err
	}
	if m.AllFailed, b, err = readIDs(b, s); err != nil {
		return nil, err
	}
	if m.Rescinded, b, err = readRescissions(b, s); err != nil {
		return nil, err
	}
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.Sender = NodeID(u32)
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.TargetCH = NodeID(u32)
	return b, nil
}

// --- Cluster formation ----------------------------------------------------

// CHDeclare announces that the sender has elected itself clusterhead
// (lowest NID in its unmarked one-hop neighborhood, possibly after
// RCC-style random-competition backoff).
type CHDeclare struct {
	CH        NodeID
	Iteration uint32
}

// Kind implements Message.
func (*CHDeclare) Kind() Kind { return KindCHDeclare }

// WireSize implements Message.
func (*CHDeclare) WireSize() int { return 1 + 4 + 4 }

func (m *CHDeclare) append(b []byte) []byte {
	b = appendU32(b, uint32(m.CH))
	return appendU32(b, m.Iteration)
}

func (m *CHDeclare) decode(b []byte, s *DecodeScratch) ([]byte, error) {
	var u32 uint32
	var err error
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.CH = NodeID(u32)
	if m.Iteration, b, err = readU32(b); err != nil {
		return nil, err
	}
	return b, nil
}

// ClusterAnnounce is the CH's cluster-organization announcement: the member
// list and the ranked deputy clusterheads (feature F2). Every member learns
// its initial local-membership view from this message (Section 4.2).
type ClusterAnnounce struct {
	CH      NodeID
	Epoch   Epoch
	Members []NodeID
	DCHs    []NodeID // ranked best-first
}

// Kind implements Message.
func (*ClusterAnnounce) Kind() Kind { return KindClusterAnnounce }

// WireSize implements Message.
func (m *ClusterAnnounce) WireSize() int {
	return 1 + 4 + 8 + (2 + 4*len(m.Members)) + (2 + 4*len(m.DCHs))
}

func (m *ClusterAnnounce) append(b []byte) []byte {
	b = appendU32(b, uint32(m.CH))
	b = appendU64(b, uint64(m.Epoch))
	b = appendIDs(b, m.Members)
	return appendIDs(b, m.DCHs)
}

func (m *ClusterAnnounce) decode(b []byte, s *DecodeScratch) ([]byte, error) {
	var u32 uint32
	var u64 uint64
	var err error
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.CH = NodeID(u32)
	if u64, b, err = readU64(b); err != nil {
		return nil, err
	}
	m.Epoch = Epoch(u64)
	if m.Members, b, err = readIDs(b, s); err != nil {
		return nil, err
	}
	if m.DCHs, b, err = readIDs(b, s); err != nil {
		return nil, err
	}
	return b, nil
}

// GWRegister is sent by a node that hears the CHs of two or more clusters to
// its affiliated CH (the lowest-NID CH it hears — feature F3 requires each
// gateway to affiliate with exactly one cluster). The CH uses these to rank
// the gateway and backup gateways toward each neighboring cluster.
type GWRegister struct {
	GW          NodeID
	AffiliateCH NodeID
	OtherCHs    []NodeID
}

// Kind implements Message.
func (*GWRegister) Kind() Kind { return KindGWRegister }

// WireSize implements Message.
func (m *GWRegister) WireSize() int { return 1 + 4 + 4 + 2 + 4*len(m.OtherCHs) }

func (m *GWRegister) append(b []byte) []byte {
	b = appendU32(b, uint32(m.GW))
	b = appendU32(b, uint32(m.AffiliateCH))
	return appendIDs(b, m.OtherCHs)
}

func (m *GWRegister) decode(b []byte, s *DecodeScratch) ([]byte, error) {
	var u32 uint32
	var err error
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.GW = NodeID(u32)
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.AffiliateCH = NodeID(u32)
	if m.OtherCHs, b, err = readIDs(b, s); err != nil {
		return nil, err
	}
	return b, nil
}

// --- Baseline detectors -----------------------------------------------------

// GossipEntry is one row of a gossip-style failure detector's table: the
// highest heartbeat counter the sender has seen for NID (van Renesse et al.,
// cited as [11] by the paper).
type GossipEntry struct {
	NID       NodeID
	Heartbeat uint64
}

// Gossip is the baseline gossip detector's state exchange.
type Gossip struct {
	From    NodeID
	Entries []GossipEntry
}

// Kind implements Message.
func (*Gossip) Kind() Kind { return KindGossip }

// WireSize implements Message.
func (m *Gossip) WireSize() int { return 1 + 4 + 2 + 12*len(m.Entries) }

func (m *Gossip) append(b []byte) []byte {
	b = appendU32(b, uint32(m.From))
	if len(m.Entries) > math.MaxUint16 {
		panic("wire: gossip entry list too long")
	}
	b = appendU16(b, uint16(len(m.Entries)))
	for _, e := range m.Entries {
		b = appendU32(b, uint32(e.NID))
		b = appendU64(b, e.Heartbeat)
	}
	return b
}

func (m *Gossip) decode(b []byte, s *DecodeScratch) ([]byte, error) {
	var u16 uint16
	var u32 uint32
	var u64 uint64
	var err error
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.From = NodeID(u32)
	if u16, b, err = readU16(b); err != nil {
		return nil, err
	}
	if len(b) < int(u16)*12 {
		return nil, errShort
	}
	if s != nil {
		m.Entries = s.entries.take(int(u16))
	} else {
		m.Entries = make([]GossipEntry, u16)
	}
	for i := range m.Entries {
		if u32, b, err = readU32(b); err != nil {
			return nil, err
		}
		if u64, b, err = readU64(b); err != nil {
			return nil, err
		}
		m.Entries[i] = GossipEntry{NID: NodeID(u32), Heartbeat: u64}
	}
	return b, nil
}

// FloodHeartbeat is the baseline flat-flooding detector's heartbeat, relayed
// network-wide with a TTL. It exists to measure the message cost the paper's
// Section 3 argues clustering avoids.
type FloodHeartbeat struct {
	Origin NodeID
	Seq    uint64
	TTL    uint8
	Relay  NodeID
}

// Kind implements Message.
func (*FloodHeartbeat) Kind() Kind { return KindFloodHeartbeat }

// WireSize implements Message.
func (*FloodHeartbeat) WireSize() int { return 1 + 4 + 8 + 1 + 4 }

func (m *FloodHeartbeat) append(b []byte) []byte {
	b = appendU32(b, uint32(m.Origin))
	b = appendU64(b, m.Seq)
	b = append(b, m.TTL)
	return appendU32(b, uint32(m.Relay))
}

func (m *FloodHeartbeat) decode(b []byte, s *DecodeScratch) ([]byte, error) {
	var u32 uint32
	var u64 uint64
	var err error
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.Origin = NodeID(u32)
	if u64, b, err = readU64(b); err != nil {
		return nil, err
	}
	m.Seq = u64
	if len(b) < 1 {
		return nil, errShort
	}
	m.TTL = b[0]
	b = b[1:]
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.Relay = NodeID(u32)
	return b, nil
}

// Aggregate is a cluster's partial aggregate of its members' sensor
// readings for one epoch, flooded across the backbone so every clusterhead
// can assemble the global min/max/mean — the in-network aggregation use the
// paper's Section 6 sketches on top of the cluster architecture. Sender
// names the transmitting hop (for de-duplication and gateway triggering),
// OriginCH the cluster the partial describes.
type Aggregate struct {
	OriginCH NodeID
	Epoch    Epoch
	Count    uint32
	Sum      float64
	Min      float64
	Max      float64
	Sender   NodeID
}

// Kind implements Message.
func (*Aggregate) Kind() Kind { return KindAggregate }

// WireSize implements Message.
func (*Aggregate) WireSize() int { return 1 + 4 + 8 + 4 + 8 + 8 + 8 + 4 }

func (m *Aggregate) append(b []byte) []byte {
	b = appendU32(b, uint32(m.OriginCH))
	b = appendU64(b, uint64(m.Epoch))
	b = appendU32(b, m.Count)
	b = appendU64(b, math.Float64bits(m.Sum))
	b = appendU64(b, math.Float64bits(m.Min))
	b = appendU64(b, math.Float64bits(m.Max))
	return appendU32(b, uint32(m.Sender))
}

func (m *Aggregate) decode(b []byte, s *DecodeScratch) ([]byte, error) {
	var u32 uint32
	var u64 uint64
	var err error
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.OriginCH = NodeID(u32)
	if u64, b, err = readU64(b); err != nil {
		return nil, err
	}
	m.Epoch = Epoch(u64)
	if m.Count, b, err = readU32(b); err != nil {
		return nil, err
	}
	if u64, b, err = readU64(b); err != nil {
		return nil, err
	}
	m.Sum = math.Float64frombits(u64)
	if u64, b, err = readU64(b); err != nil {
		return nil, err
	}
	m.Min = math.Float64frombits(u64)
	if u64, b, err = readU64(b); err != nil {
		return nil, err
	}
	m.Max = math.Float64frombits(u64)
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.Sender = NodeID(u32)
	return b, nil
}

// SleepNotice announces a member's intent to duty-cycle its radio: it will
// be silent from the next epoch until (and excluding) epoch Until. The
// clusterhead excuses announced sleepers from the failure detection rule —
// the paper's Section 6 concern that "sleep mode may cause false
// detections" and its plan to derive "algorithms to reduce the likelihood
// of sleep-mode-caused false detection".
type SleepNotice struct {
	NID   NodeID
	Epoch Epoch // the epoch in which the notice was issued
	Until Epoch // first epoch the sender will be awake again
}

// Kind implements Message.
func (*SleepNotice) Kind() Kind { return KindSleepNotice }

// WireSize implements Message.
func (*SleepNotice) WireSize() int { return 1 + 4 + 8 + 8 }

func (m *SleepNotice) append(b []byte) []byte {
	b = appendU32(b, uint32(m.NID))
	b = appendU64(b, uint64(m.Epoch))
	return appendU64(b, uint64(m.Until))
}

func (m *SleepNotice) decode(b []byte, s *DecodeScratch) ([]byte, error) {
	var u32 uint32
	var u64 uint64
	var err error
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.NID = NodeID(u32)
	if u64, b, err = readU64(b); err != nil {
		return nil, err
	}
	m.Epoch = Epoch(u64)
	if u64, b, err = readU64(b); err != nil {
		return nil, err
	}
	m.Until = Epoch(u64)
	return b, nil
}

// --- Competing failure detectors (SWIM, query-response, all-pairs) ----------

// SWIMEvent is one piggybacked membership rumor: Node is suspected failed
// (Failed=true) or known alive again (Failed=false). SWIM disseminates these
// on the backs of its probe traffic instead of flooding them.
type SWIMEvent struct {
	Node   NodeID
	Failed bool
}

const swimEventSize = 4 + 1

func appendEvents(b []byte, evs []SWIMEvent) []byte {
	if len(evs) > math.MaxUint16 {
		panic("wire: SWIM event list too long")
	}
	b = appendU16(b, uint16(len(evs)))
	for _, e := range evs {
		b = appendU32(b, uint32(e.Node))
		b = appendBool(b, e.Failed)
	}
	return b
}

func readEvents(b []byte, s *DecodeScratch) ([]SWIMEvent, []byte, error) {
	u16, b, err := readU16(b)
	if err != nil {
		return nil, nil, err
	}
	if len(b) < int(u16)*swimEventSize {
		return nil, nil, errShort
	}
	var evs []SWIMEvent
	if s != nil {
		evs = s.events.take(int(u16))
	} else {
		evs = make([]SWIMEvent, u16)
	}
	for i := range evs {
		var u32 uint32
		var fl bool
		if u32, b, err = readU32(b); err != nil {
			return nil, nil, err
		}
		if fl, b, err = readBool(b); err != nil {
			return nil, nil, err
		}
		evs[i] = SWIMEvent{Node: NodeID(u32), Failed: fl}
	}
	return evs, b, nil
}

// SWIMPing is SWIM's direct probe. When OnBehalf is non-zero the ping is a
// proxy probe issued by an intermediary for the indirect-probe path, and the
// ack must be routed back to OnBehalf.
type SWIMPing struct {
	From     NodeID
	Target   NodeID
	Seq      uint64
	OnBehalf NodeID
	Events   []SWIMEvent
}

// Kind implements Message.
func (*SWIMPing) Kind() Kind { return KindSWIMPing }

// WireSize implements Message.
func (m *SWIMPing) WireSize() int { return 1 + 4 + 4 + 8 + 4 + 2 + swimEventSize*len(m.Events) }

func (m *SWIMPing) append(b []byte) []byte {
	b = appendU32(b, uint32(m.From))
	b = appendU32(b, uint32(m.Target))
	b = appendU64(b, m.Seq)
	b = appendU32(b, uint32(m.OnBehalf))
	return appendEvents(b, m.Events)
}

func (m *SWIMPing) decode(b []byte, s *DecodeScratch) ([]byte, error) {
	var u32 uint32
	var err error
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.From = NodeID(u32)
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.Target = NodeID(u32)
	if m.Seq, b, err = readU64(b); err != nil {
		return nil, err
	}
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.OnBehalf = NodeID(u32)
	if m.Events, b, err = readEvents(b, s); err != nil {
		return nil, err
	}
	return b, nil
}

// SWIMPingReq asks the Via members to probe Target on the sender's behalf
// after a direct probe timed out (SWIM's indirect-probe stage, which filters
// out local link asymmetry before declaring a failure).
type SWIMPingReq struct {
	From   NodeID
	Target NodeID
	Seq    uint64
	Via    []NodeID
	Events []SWIMEvent
}

// Kind implements Message.
func (*SWIMPingReq) Kind() Kind { return KindSWIMPingReq }

// WireSize implements Message.
func (m *SWIMPingReq) WireSize() int {
	return 1 + 4 + 4 + 8 + 2 + 4*len(m.Via) + 2 + swimEventSize*len(m.Events)
}

func (m *SWIMPingReq) append(b []byte) []byte {
	b = appendU32(b, uint32(m.From))
	b = appendU32(b, uint32(m.Target))
	b = appendU64(b, m.Seq)
	b = appendIDs(b, m.Via)
	return appendEvents(b, m.Events)
}

func (m *SWIMPingReq) decode(b []byte, s *DecodeScratch) ([]byte, error) {
	var u32 uint32
	var err error
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.From = NodeID(u32)
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.Target = NodeID(u32)
	if m.Seq, b, err = readU64(b); err != nil {
		return nil, err
	}
	if m.Via, b, err = readIDs(b, s); err != nil {
		return nil, err
	}
	if m.Events, b, err = readEvents(b, s); err != nil {
		return nil, err
	}
	return b, nil
}

// SWIMAck answers a SWIMPing. To names the node the ack is addressed to (the
// prober or a proxy); OnBehalf, when non-zero, carries the identity of the
// indirectly-probed target so the original requester can match the ack.
type SWIMAck struct {
	From     NodeID
	To       NodeID
	Seq      uint64
	OnBehalf NodeID
	Events   []SWIMEvent
}

// Kind implements Message.
func (*SWIMAck) Kind() Kind { return KindSWIMAck }

// WireSize implements Message.
func (m *SWIMAck) WireSize() int { return 1 + 4 + 4 + 8 + 4 + 2 + swimEventSize*len(m.Events) }

func (m *SWIMAck) append(b []byte) []byte {
	b = appendU32(b, uint32(m.From))
	b = appendU32(b, uint32(m.To))
	b = appendU64(b, m.Seq)
	b = appendU32(b, uint32(m.OnBehalf))
	return appendEvents(b, m.Events)
}

func (m *SWIMAck) decode(b []byte, s *DecodeScratch) ([]byte, error) {
	var u32 uint32
	var err error
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.From = NodeID(u32)
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.To = NodeID(u32)
	if m.Seq, b, err = readU64(b); err != nil {
		return nil, err
	}
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.OnBehalf = NodeID(u32)
	if m.Events, b, err = readEvents(b, s); err != nil {
		return nil, err
	}
	return b, nil
}

// FDQuery is the Sens et al. query-response detector's probe: a broadcast
// "who is alive around me?" that needs no a-priori membership list — the
// detector discovers participants from whoever answers (or whose traffic it
// overhears), which is what makes it work under partial connectivity.
type FDQuery struct {
	From NodeID
	Seq  uint64
}

// Kind implements Message.
func (*FDQuery) Kind() Kind { return KindFDQuery }

// WireSize implements Message.
func (*FDQuery) WireSize() int { return 1 + 4 + 8 }

func (m *FDQuery) append(b []byte) []byte {
	b = appendU32(b, uint32(m.From))
	return appendU64(b, m.Seq)
}

func (m *FDQuery) decode(b []byte, s *DecodeScratch) ([]byte, error) {
	var u32 uint32
	var err error
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.From = NodeID(u32)
	if m.Seq, b, err = readU64(b); err != nil {
		return nil, err
	}
	return b, nil
}

// FDResponse answers an FDQuery. To echoes the querier so overhearers can
// attribute the response; Seq echoes the query's sequence number.
type FDResponse struct {
	From NodeID
	To   NodeID
	Seq  uint64
}

// Kind implements Message.
func (*FDResponse) Kind() Kind { return KindFDResponse }

// WireSize implements Message.
func (*FDResponse) WireSize() int { return 1 + 4 + 4 + 8 }

func (m *FDResponse) append(b []byte) []byte {
	b = appendU32(b, uint32(m.From))
	b = appendU32(b, uint32(m.To))
	return appendU64(b, m.Seq)
}

func (m *FDResponse) decode(b []byte, s *DecodeScratch) ([]byte, error) {
	var u32 uint32
	var err error
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.From = NodeID(u32)
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.To = NodeID(u32)
	if m.Seq, b, err = readU64(b); err != nil {
		return nil, err
	}
	return b, nil
}

// AllPairsHeartbeat is the all-pairs strawman's one-hop heartbeat: every node
// broadcasts, every node within range monitors everyone it has ever heard.
// No relaying — the naive flat design the paper's Section 3 costs out.
type AllPairsHeartbeat struct {
	Origin NodeID
	Seq    uint64
}

// Kind implements Message.
func (*AllPairsHeartbeat) Kind() Kind { return KindAllPairsHeartbeat }

// WireSize implements Message.
func (*AllPairsHeartbeat) WireSize() int { return 1 + 4 + 8 }

func (m *AllPairsHeartbeat) append(b []byte) []byte {
	b = appendU32(b, uint32(m.Origin))
	return appendU64(b, m.Seq)
}

func (m *AllPairsHeartbeat) decode(b []byte, s *DecodeScratch) ([]byte, error) {
	var u32 uint32
	var err error
	if u32, b, err = readU32(b); err != nil {
		return nil, err
	}
	m.Origin = NodeID(u32)
	if m.Seq, b, err = readU64(b); err != nil {
		return nil, err
	}
	return b, nil
}
