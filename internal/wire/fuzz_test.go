package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// TestAllMessagesRoundTripFuzz generates random values for EVERY message
// kind via reflection and round-trips them through the codec: decoded ==
// encoded (up to nil/empty slice equivalence) and encoded length ==
// WireSize. This covers future message types automatically as long as they
// are registered in newMessage.
func TestAllMessagesRoundTripFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for k := Kind(1); k < kindEnd; k++ {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			proto := newMessage(k)
			if proto == nil {
				t.Fatalf("no constructor for kind %v", k)
			}
			typ := reflect.TypeOf(proto).Elem()
			for i := 0; i < 100; i++ {
				v, ok := quick.Value(typ, rng)
				if !ok {
					t.Fatalf("cannot generate %v", typ)
				}
				msg := v.Addr().Interface().(Message)
				clampSlices(v)
				enc := Encode(msg)
				if len(enc) != msg.WireSize() {
					t.Fatalf("encoded %d bytes, WireSize %d for %#v", len(enc), msg.WireSize(), msg)
				}
				dec, err := Decode(enc)
				if err != nil {
					t.Fatalf("decode: %v (%#v)", err, msg)
				}
				if !equivalent(msg, dec) {
					t.Fatalf("round trip mismatch:\n sent %#v\n got  %#v", msg, dec)
				}
			}
		})
	}
}

// clampSlices bounds generated slices so encodings stay under the uint16
// length limits (quick can generate up to 50 elements by default, so this
// is defensive rather than routinely active).
func clampSlices(v reflect.Value) {
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Slice:
			if f.Len() > 1000 {
				f.Set(f.Slice(0, 1000))
			}
		case reflect.Struct:
			clampSlices(f)
		}
	}
}

// TestDecodeNeverPanicsOnGarbage hammers Decode with random byte soup: it
// must return errors, never panic (the medium never corrupts messages, but
// the codec is a public API).
func TestDecodeNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		n := rng.Intn(64)
		b := make([]byte, n)
		rng.Read(b)
		_, _ = Decode(b) // must not panic
	}
}

// TestDecodeBitFlips flips single bits in valid encodings: every outcome
// must be a clean decode or a clean error, never a panic, and a successful
// decode must still satisfy the size contract.
func TestDecodeBitFlips(t *testing.T) {
	for _, m := range sampleMessages() {
		enc := Encode(m)
		for pos := 0; pos < len(enc); pos++ {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), enc...)
				mut[pos] ^= 1 << bit
				dec, err := Decode(mut)
				if err != nil {
					continue
				}
				if got := dec.WireSize(); got != len(mut) {
					t.Fatalf("%v: bit flip at %d.%d decoded to wrong size %d != %d",
						m.Kind(), pos, bit, got, len(mut))
				}
			}
		}
	}
}
