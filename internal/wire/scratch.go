package wire

import "fmt"

// DecodeScratch is a reusable decode workspace: one long-lived message value
// per kind plus growable arenas for the variable-length fields (node-ID
// lists, rescission lists, gossip tables). DecodeInto parses into the
// workspace instead of the heap, so a receiver that decodes millions of
// messages over a run allocates only while the arenas grow to the working-set
// size and nothing afterwards.
//
// The price is aliasing: a message returned by DecodeInto, including every
// slice it carries, is owned by the scratch and is overwritten by the next
// DecodeInto call on the same scratch. Handlers must either finish with the
// message before returning or copy the parts they keep (see radio.Medium's
// delivery contract). Handlers that need a heap-owned message can still use
// Decode, which is unchanged.
//
// A DecodeScratch must not be shared between hosts that can hold messages
// concurrently; in this repository each attached receiver gets its own.
type DecodeScratch struct {
	msgs        [kindEnd]Message
	ids         arena[NodeID]
	rescissions arena[Rescission]
	entries     arena[GossipEntry]
	events      arena[SWIMEvent]
}

// NewDecodeScratch returns a workspace with every per-kind message value
// preallocated.
func NewDecodeScratch() *DecodeScratch {
	s := &DecodeScratch{}
	for k := KindHeartbeat; k < kindEnd; k++ {
		s.msgs[k] = newMessage(k)
	}
	return s
}

// DecodeInto parses one message from b into s, performing exactly the same
// validation as Decode (unknown kind, truncation, trailing bytes are hard
// errors). The returned message and its slices are valid only until the next
// DecodeInto call on s; callers that outlive the call must copy. A nil
// scratch falls back to Decode, so code can be written against DecodeInto
// unconditionally.
func DecodeInto(s *DecodeScratch, b []byte) (Message, error) {
	if s == nil {
		return Decode(b)
	}
	if len(b) == 0 {
		return nil, errShort
	}
	kind := Kind(b[0])
	if kind < KindHeartbeat || kind >= kindEnd {
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, b[0])
	}
	m := s.msgs[kind]
	s.ids.reset()
	s.rescissions.reset()
	s.entries.reset()
	s.events.reset()
	rest, err := m.decode(b[1:], s)
	if err != nil {
		return nil, fmt.Errorf("wire: decoding %v: %w", kind, err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after %v", len(rest), kind)
	}
	return m, nil
}

// arena hands out sub-slices of one reused backing buffer. reset rewinds it;
// take carves the next n elements. When the current chunk is too small, take
// allocates a fresh, larger chunk and abandons the old one — slices already
// carved from the old chunk stay valid (the message referencing them keeps it
// alive), and once the chunk has grown to the peak per-message demand the
// arena never allocates again.
type arena[T any] struct {
	buf []T
}

func (a *arena[T]) take(n int) []T {
	if cap(a.buf)-len(a.buf) < n || a.buf == nil {
		c := 2 * cap(a.buf)
		if c < n {
			c = n
		}
		if c < 64 {
			c = 64
		}
		a.buf = make([]T, 0, c)
	}
	end := len(a.buf) + n
	s := a.buf[len(a.buf):end:end]
	a.buf = a.buf[:end]
	return s
}

func (a *arena[T]) reset() { a.buf = a.buf[:0] }
