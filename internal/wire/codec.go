package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

var (
	// errShort reports a truncated message body.
	errShort = errors.New("wire: message truncated")
	// ErrUnknownKind reports an unrecognized kind byte.
	ErrUnknownKind = errors.New("wire: unknown message kind")
)

// Encode serializes m, prefixing the kind byte. The result's length always
// equals m.WireSize(); a test enforces this for every message type.
func Encode(m Message) []byte {
	return EncodeAppend(make([]byte, 0, m.WireSize()), m)
}

// EncodeAppend appends m's encoding (kind byte plus body) to b and returns
// the extended slice. Hot paths reuse one buffer across messages with
// EncodeAppend(buf[:0], m), eliminating the per-message allocation Encode
// pays; the appended region always spans exactly m.WireSize() bytes.
func EncodeAppend(b []byte, m Message) []byte {
	b = append(b, byte(m.Kind()))
	return m.append(b)
}

// Decode parses one message from b. It returns an error if the kind byte is
// unknown, the body is truncated, or trailing bytes remain — transmission
// must neither create nor alter message content (paper Section 2.2), so any
// mismatch is a hard error rather than a best-effort parse.
func Decode(b []byte) (Message, error) {
	if len(b) == 0 {
		return nil, errShort
	}
	kind := Kind(b[0])
	m := newMessage(kind)
	if m == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, b[0])
	}
	rest, err := m.decode(b[1:], nil)
	if err != nil {
		return nil, fmt.Errorf("wire: decoding %v: %w", kind, err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after %v", len(rest), kind)
	}
	return m, nil
}

// newMessage returns a zero message of the given kind, or nil for an
// unknown kind.
func newMessage(k Kind) Message {
	switch k {
	case KindHeartbeat:
		return &Heartbeat{}
	case KindDigest:
		return &Digest{}
	case KindHealthUpdate:
		return &HealthUpdate{}
	case KindForwardRequest:
		return &ForwardRequest{}
	case KindForwardedUpdate:
		return &ForwardedUpdate{}
	case KindForwardAck:
		return &ForwardAck{}
	case KindFailureReport:
		return &FailureReport{}
	case KindCHDeclare:
		return &CHDeclare{}
	case KindClusterAnnounce:
		return &ClusterAnnounce{}
	case KindGWRegister:
		return &GWRegister{}
	case KindGossip:
		return &Gossip{}
	case KindFloodHeartbeat:
		return &FloodHeartbeat{}
	case KindAggregate:
		return &Aggregate{}
	case KindSleepNotice:
		return &SleepNotice{}
	case KindSWIMPing:
		return &SWIMPing{}
	case KindSWIMPingReq:
		return &SWIMPingReq{}
	case KindSWIMAck:
		return &SWIMAck{}
	case KindFDQuery:
		return &FDQuery{}
	case KindFDResponse:
		return &FDResponse{}
	case KindAllPairsHeartbeat:
		return &AllPairsHeartbeat{}
	default:
		return nil
	}
}

// Clone round-trips m through the codec, producing an independent copy with
// no shared slices. The radio medium clones every delivery so receivers can
// never mutate a sender's message.
func Clone(m Message) Message {
	c, err := Decode(Encode(m))
	if err != nil {
		// Encode/Decode of a well-formed message cannot fail; a failure
		// here is a codec bug, not a runtime condition.
		panic(fmt.Sprintf("wire: clone of %v failed: %v", m.Kind(), err))
	}
	return c
}

// --- primitive field helpers ------------------------------------------------

func appendU16(b []byte, v uint16) []byte {
	return binary.LittleEndian.AppendUint16(b, v)
}

func appendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

func appendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// appendIDs writes a uint16 length followed by the IDs. Node-ID lists in
// this system are bounded by cluster sizes (tens to low hundreds), far below
// the uint16 limit; exceeding it indicates corrupted state.
func appendIDs(b []byte, ids []NodeID) []byte {
	if len(ids) > math.MaxUint16 {
		panic("wire: node ID list too long")
	}
	b = appendU16(b, uint16(len(ids)))
	for _, id := range ids {
		b = appendU32(b, uint32(id))
	}
	return b
}

func readU16(b []byte) (uint16, []byte, error) {
	if len(b) < 2 {
		return 0, nil, errShort
	}
	return binary.LittleEndian.Uint16(b), b[2:], nil
}

func readU32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, errShort
	}
	return binary.LittleEndian.Uint32(b), b[4:], nil
}

func readU64(b []byte) (uint64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, errShort
	}
	return binary.LittleEndian.Uint64(b), b[8:], nil
}

func readBool(b []byte) (bool, []byte, error) {
	if len(b) < 1 {
		return false, nil, errShort
	}
	return b[0] != 0, b[1:], nil
}

func readIDs(b []byte, s *DecodeScratch) ([]NodeID, []byte, error) {
	n, b, err := readU16(b)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		return nil, b, nil
	}
	if len(b) < int(n)*4 {
		return nil, nil, errShort
	}
	var ids []NodeID
	if s != nil {
		ids = s.ids.take(int(n))
	} else {
		ids = make([]NodeID, n)
	}
	for i := range ids {
		var u uint32
		u, b, _ = readU32(b)
		ids[i] = NodeID(u)
	}
	return ids, b, nil
}
