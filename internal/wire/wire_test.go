package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// sampleMessages returns one representative populated value per message kind.
func sampleMessages() []Message {
	return []Message{
		&Heartbeat{NID: 7, Epoch: 3, Marked: true},
		&Heartbeat{NID: 1, Epoch: 0, Marked: false},
		&Digest{NID: 9, CH: 1, Epoch: 12, Heard: []NodeID{1, 2, 3, 4}},
		&Digest{NID: 9, Epoch: 12, Heard: nil},
		&HealthUpdate{From: 2, CH: 2, Epoch: 4, NewFailed: []NodeID{11}, AllFailed: []NodeID{11, 5}, Takeover: false},
		&HealthUpdate{From: 3, CH: 2, Epoch: 4, Takeover: true},
		&HealthUpdate{From: 2, CH: 2, Epoch: 6, Rescinded: []Rescission{{Node: 11, Epoch: 4}}},
		&ForwardRequest{NID: 42, Epoch: 8},
		&ForwardedUpdate{Forwarder: 6, Requester: 42,
			Update: HealthUpdate{From: 2, CH: 2, Epoch: 8, NewFailed: []NodeID{13}}},
		&ForwardAck{NID: 42, Epoch: 8},
		&FailureReport{OriginCH: 2, Seq: 77, Epoch: 8, NewFailed: []NodeID{13},
			AllFailed: []NodeID{13, 5, 11}, Rescinded: []Rescission{{Node: 4, Epoch: 7}}, Sender: 19, TargetCH: 31},
		&CHDeclare{CH: 1, Iteration: 2},
		&ClusterAnnounce{CH: 1, Epoch: 1, Members: []NodeID{1, 4, 9, 16}, DCHs: []NodeID{4, 9}},
		&GWRegister{GW: 16, AffiliateCH: 1, OtherCHs: []NodeID{31, 77}},
		&Gossip{From: 5, Entries: []GossipEntry{{NID: 1, Heartbeat: 100}, {NID: 2, Heartbeat: 99}}},
		&FloodHeartbeat{Origin: 3, Seq: 1000, TTL: 12, Relay: 55},
		&Aggregate{OriginCH: 4, Epoch: 9, Count: 12, Sum: 274.5, Min: -3.25, Max: 99.75, Sender: 6},
		&Digest{NID: 8, CH: 1, Epoch: 3, Heard: []NodeID{1}, HasReading: true, Reading: 21.125},
		&SleepNotice{NID: 14, Epoch: 6, Until: 8},
		&SWIMPing{From: 2, Target: 9, Seq: 41, OnBehalf: 7,
			Events: []SWIMEvent{{Node: 3, Failed: true}, {Node: 8, Failed: false}}},
		&SWIMPingReq{From: 2, Target: 9, Seq: 41, Via: []NodeID{4, 11, 17},
			Events: []SWIMEvent{{Node: 3, Failed: true}}},
		&SWIMAck{From: 9, To: 2, Seq: 41, OnBehalf: 9,
			Events: []SWIMEvent{{Node: 5, Failed: false}}},
		&FDQuery{From: 6, Seq: 12},
		&FDResponse{From: 9, To: 6, Seq: 12},
		&AllPairsHeartbeat{Origin: 21, Seq: 300},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, m := range sampleMessages() {
		t.Run(m.Kind().String(), func(t *testing.T) {
			enc := Encode(m)
			got, err := Decode(enc)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !equivalent(m, got) {
				t.Errorf("round trip mismatch:\n sent %#v\n got  %#v", m, got)
			}
		})
	}
}

// equivalent compares messages treating nil and empty ID slices as equal
// (the codec does not distinguish them).
func equivalent(a, b Message) bool {
	na, nb := normalize(a), normalize(b)
	return reflect.DeepEqual(na, nb)
}

func normalize(m Message) Message {
	c := Clone(m) // fresh copy so we can mutate
	v := reflect.ValueOf(c).Elem()
	normalizeStruct(v)
	return c
}

func normalizeStruct(v reflect.Value) {
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Slice:
			if f.Len() == 0 && !f.IsNil() {
				f.Set(reflect.Zero(f.Type()))
			}
		case reflect.Struct:
			normalizeStruct(f)
		}
	}
}

func TestWireSizeMatchesEncoding(t *testing.T) {
	for _, m := range sampleMessages() {
		if got, want := len(Encode(m)), m.WireSize(); got != want {
			t.Errorf("%v: encoded %d bytes, WireSize says %d", m.Kind(), got, want)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"unknown kind", []byte{0xFF, 1, 2, 3}},
		{"zero kind", []byte{0}},
		{"truncated heartbeat", []byte{byte(KindHeartbeat), 1, 2}},
		{"truncated digest count", []byte{byte(KindDigest), 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 9}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Decode(tt.b); err == nil {
				t.Error("Decode succeeded, want error")
			}
		})
	}
}

func TestDecodeUnknownKindError(t *testing.T) {
	_, err := Decode([]byte{0xEE})
	if !errors.Is(err, ErrUnknownKind) {
		t.Errorf("err = %v, want ErrUnknownKind", err)
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	enc := Encode(&Heartbeat{NID: 1, Epoch: 1})
	enc = append(enc, 0xAB)
	if _, err := Decode(enc); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("err = %v, want trailing-bytes error", err)
	}
}

func TestDecodeTruncationsExhaustive(t *testing.T) {
	// Every strict prefix of every sample encoding must fail to decode
	// (with an error, never a panic), except prefixes that happen to be
	// empty ID lists... there are none: sizes are fixed per content.
	for _, m := range sampleMessages() {
		enc := Encode(m)
		for cut := 0; cut < len(enc); cut++ {
			if _, err := Decode(enc[:cut]); err == nil {
				t.Errorf("%v: prefix of %d/%d bytes decoded without error", m.Kind(), cut, len(enc))
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	orig := &Digest{NID: 1, Epoch: 2, Heard: []NodeID{10, 20, 30}}
	c := Clone(orig).(*Digest)
	c.Heard[0] = 999
	if orig.Heard[0] != 10 {
		t.Error("mutating the clone changed the original")
	}
	if c.NID != orig.NID || c.Epoch != orig.Epoch {
		t.Error("clone lost scalar fields")
	}
}

func TestKindString(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(1); k < kindEnd; k++ {
		s := k.String()
		if strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestNodeIDString(t *testing.T) {
	if got := NodeID(17).String(); got != "n17" {
		t.Errorf("NodeID(17).String() = %q, want n17", got)
	}
	if got := NoNode.String(); got != "n∅" {
		t.Errorf("NoNode.String() = %q", got)
	}
}

// TestDigestRoundTripProperty fuzzes digest contents through the codec.
func TestDigestRoundTripProperty(t *testing.T) {
	f := func(nid uint32, epoch uint64, heard []uint32) bool {
		if len(heard) > 1000 {
			heard = heard[:1000]
		}
		ids := make([]NodeID, len(heard))
		for i, h := range heard {
			ids[i] = NodeID(h)
		}
		m := &Digest{NID: NodeID(nid), Epoch: Epoch(epoch), Heard: ids}
		got, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		return equivalent(m, got)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestFailureReportRoundTripProperty fuzzes the most complex message.
func TestFailureReportRoundTripProperty(t *testing.T) {
	f := func(origin, sender, target uint32, seq, epoch uint64, nf, af []uint32) bool {
		toIDs := func(u []uint32) []NodeID {
			if len(u) > 500 {
				u = u[:500]
			}
			ids := make([]NodeID, len(u))
			for i, x := range u {
				ids[i] = NodeID(x)
			}
			return ids
		}
		m := &FailureReport{
			OriginCH: NodeID(origin), Seq: seq, Epoch: Epoch(epoch),
			NewFailed: toIDs(nf), AllFailed: toIDs(af),
			Sender: NodeID(sender), TargetCH: NodeID(target),
		}
		got, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		return equivalent(m, got) && len(Encode(m)) == m.WireSize()
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	for _, m := range sampleMessages() {
		if !bytes.Equal(Encode(m), Encode(m)) {
			t.Errorf("%v: encoding not deterministic", m.Kind())
		}
	}
}

func TestAllKindsCovered(t *testing.T) {
	covered := map[Kind]bool{}
	for _, m := range sampleMessages() {
		covered[m.Kind()] = true
	}
	for k := Kind(1); k < kindEnd; k++ {
		if !covered[k] {
			t.Errorf("no sample message for kind %v", k)
		}
		if newMessage(k) == nil {
			t.Errorf("newMessage(%v) returned nil", k)
		}
	}
}

// TestEncodeAppendReuse checks EncodeAppend matches Encode byte for byte and
// is allocation-free into a warm buffer.
func TestEncodeAppendReuse(t *testing.T) {
	msgs := []Message{
		&Heartbeat{NID: 3, Epoch: 9},
		&Digest{NID: 4, CH: 1, Epoch: 9, Heard: []NodeID{1, 2, 3, 4, 5}},
		&FailureReport{OriginCH: 2, Seq: 1, Epoch: 9, NewFailed: []NodeID{7}, AllFailed: []NodeID{7}, Sender: 2},
	}
	buf := make([]byte, 0, 256)
	for _, m := range msgs {
		want := Encode(m)
		buf = EncodeAppend(buf[:0], m)
		if !bytes.Equal(want, buf) {
			t.Errorf("%v: EncodeAppend %x != Encode %x", m.Kind(), buf, want)
		}
		if len(buf) != m.WireSize() {
			t.Errorf("%v: appended %d bytes, WireSize %d", m.Kind(), len(buf), m.WireSize())
		}
	}
	// Appending after existing content preserves the prefix.
	buf = append(buf[:0], 0xAA, 0xBB)
	buf = EncodeAppend(buf, msgs[0])
	if buf[0] != 0xAA || buf[1] != 0xBB || !bytes.Equal(buf[2:], Encode(msgs[0])) {
		t.Error("EncodeAppend disturbed existing buffer content")
	}

	hb := &Heartbeat{NID: 1, Epoch: 2}
	allocs := testing.AllocsPerRun(200, func() { buf = EncodeAppend(buf[:0], hb) })
	if allocs != 0 {
		t.Errorf("EncodeAppend into warm buffer allocates %.1f/op, want 0", allocs)
	}
}
