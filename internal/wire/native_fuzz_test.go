package wire

import (
	"bytes"
	"testing"
)

// FuzzDecode is the hostile-bytes differential target: Decode (heap path)
// and DecodeInto (scratch path) must agree on every input — both fail, or
// both succeed with equivalent messages satisfying the size contract.
// Neither may ever panic or overread. The seed corpus under
// testdata/fuzz/FuzzDecode covers every message kind plus known-tricky
// malformed prefixes.
func FuzzDecode(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(Encode(m))
	}
	// Hostile shapes: empty, unknown kinds, truncations, oversized counts.
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF, 1, 2, 3})
	f.Add([]byte{byte(KindHeartbeat), 1, 2})
	f.Add([]byte{byte(KindDigest), 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF})
	f.Add(bytes.Repeat([]byte{0xA5}, 64))

	scratch := NewDecodeScratch()
	f.Fuzz(func(t *testing.T, b []byte) {
		heap, heapErr := Decode(b)
		reused, reusedErr := DecodeInto(scratch, b)
		if (heapErr == nil) != (reusedErr == nil) {
			t.Fatalf("Decode and DecodeInto disagree on % x:\n  Decode err:     %v\n  DecodeInto err: %v",
				b, heapErr, reusedErr)
		}
		if heapErr != nil {
			return
		}
		// Compare through re-encoding, not DeepEqual: hostile float bits can
		// decode to NaN, which compares unequal to itself structurally but
		// re-encodes to the identical bytes.
		if !bytes.Equal(Encode(heap), Encode(reused)) {
			t.Fatalf("Decode and DecodeInto disagree on % x:\n  Decode:     %#v\n  DecodeInto: %#v",
				b, heap, reused)
		}
		if heap.Kind() != reused.Kind() {
			t.Fatalf("kind mismatch on % x: Decode %v, DecodeInto %v", b, heap.Kind(), reused.Kind())
		}
		if got := heap.WireSize(); got != len(b) {
			t.Fatalf("accepted %d bytes but WireSize reports %d: %#v", len(b), got, heap)
		}
	})
}

// FuzzRoundTrip pins re-encode stability on every input the decoder accepts:
// decode → encode must honor WireSize, decode again, and reach a fixed point
// (the second encoding equals the first). Comparing encodings rather than
// raw input tolerates the one lossy decode step — booleans normalize any
// nonzero wire byte to 1 — while still catching any field the codec drops,
// duplicates, or reorders.
func FuzzRoundTrip(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(Encode(m))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		first, err := Decode(b)
		if err != nil {
			return
		}
		enc := Encode(first)
		if len(enc) != first.WireSize() {
			t.Fatalf("encoded %d bytes, WireSize says %d: %#v", len(enc), first.WireSize(), first)
		}
		second, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v\n  input: % x\n  re-encoded: % x", err, b, enc)
		}
		if reenc := Encode(second); !bytes.Equal(reenc, enc) {
			t.Fatalf("encoding is not a fixed point:\n  first:  % x\n  second: % x", enc, reenc)
		}
	})
}
