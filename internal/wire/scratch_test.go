package wire

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestDecodeIntoMatchesDecode pins the core equivalence: for every message
// kind, DecodeInto produces a value identical to Decode's.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	s := NewDecodeScratch()
	for _, m := range sampleMessages() {
		enc := Encode(m)
		want, err := Decode(enc)
		if err != nil {
			t.Fatalf("%v: Decode: %v", m.Kind(), err)
		}
		got, err := DecodeInto(s, enc)
		if err != nil {
			t.Fatalf("%v: DecodeInto: %v", m.Kind(), err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: DecodeInto = %+v, want %+v", m.Kind(), got, want)
		}
	}
}

// TestDecodeIntoReuseOverwrites exercises the single-message-live contract:
// the scratch reuses its arenas, so each DecodeInto yields a correct message
// even after thousands of decodes of varying shapes on the same scratch.
func TestDecodeIntoReuseOverwrites(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := NewDecodeScratch()
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(40)
		m := &HealthUpdate{From: NodeID(rng.Uint32()), CH: NodeID(rng.Uint32()), Epoch: Epoch(trial)}
		for i := 0; i < n; i++ {
			m.NewFailed = append(m.NewFailed, NodeID(rng.Uint32()))
			m.AllFailed = append(m.AllFailed, NodeID(rng.Uint32()))
			m.Rescinded = append(m.Rescinded, Rescission{Node: NodeID(rng.Uint32()), Epoch: Epoch(rng.Uint32())})
		}
		got, err := DecodeInto(s, Encode(m))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, _ := Decode(Encode(m))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: DecodeInto = %+v, want %+v", trial, got, want)
		}
	}
}

// TestDecodeIntoErrorsMatchDecode pins that the two entry points reject the
// same inputs with the same error text.
func TestDecodeIntoErrorsMatchDecode(t *testing.T) {
	s := NewDecodeScratch()
	bad := [][]byte{
		nil,
		{},
		{0},                // zero kind byte
		{byte(kindEnd)},    // one past the last kind
		{200},              // far out of range
		{byte(KindDigest)}, // empty body
		{byte(KindDigest), 1},
	}
	for _, m := range sampleMessages() {
		enc := Encode(m)
		bad = append(bad, enc[:len(enc)-1], append(append([]byte(nil), enc...), 0xFF))
	}
	for i, b := range bad {
		_, errWant := Decode(b)
		_, errGot := DecodeInto(s, b)
		if errWant == nil || errGot == nil {
			t.Fatalf("case %d: expected errors, got %v / %v", i, errWant, errGot)
		}
		if errWant.Error() != errGot.Error() {
			t.Errorf("case %d: DecodeInto error %q, Decode error %q", i, errGot, errWant)
		}
	}
}

// TestDecodeIntoNilScratchFallsBack lets callers pass a nil scratch and get
// Decode semantics (a heap-owned message).
func TestDecodeIntoNilScratchFallsBack(t *testing.T) {
	m := &Heartbeat{NID: 3, Epoch: 9, Marked: true}
	got, err := DecodeInto(nil, Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("got %+v, want %+v", got, m)
	}
}

// TestDecodeIntoSteadyStateAllocFree is the point of the scratch: once the
// arenas have grown, decoding allocates nothing.
func TestDecodeIntoSteadyStateAllocFree(t *testing.T) {
	s := NewDecodeScratch()
	var encs [][]byte
	for _, m := range sampleMessages() {
		encs = append(encs, Encode(m))
	}
	// Warm the arenas past the corpus's demand.
	for _, e := range encs {
		if _, err := DecodeInto(s, e); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		for _, e := range encs {
			if _, err := DecodeInto(s, e); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state DecodeInto allocates %.1f times per corpus pass, want 0", allocs)
	}
}

// TestArenaGrowthKeepsEarlierSlicesValid verifies the chunk-abandonment
// property take documents: growth mid-message must not corrupt slices already
// handed out for the same message.
func TestArenaGrowthKeepsEarlierSlicesValid(t *testing.T) {
	var a arena[NodeID]
	first := a.take(10)
	for i := range first {
		first[i] = NodeID(i + 1)
	}
	// Force growth well past the initial chunk.
	second := a.take(4096)
	for i := range second {
		second[i] = 999
	}
	for i := range first {
		if first[i] != NodeID(i+1) {
			t.Fatalf("earlier slice corrupted at %d: %v", i, first[i])
		}
	}
}
