package montecarlo

import (
	"reflect"
	"testing"
)

// TestParallelDeterminism is the acceptance test for the replication
// engine's reproducibility guarantee: for all three measures, workers=1
// (serial) and workers=8 produce identical Outcome values, and two runs
// with the same seed are bit-identical.
func TestParallelDeterminism(t *testing.T) {
	base := ClusterExperiment{N: 8, LossProb: 0.5, Trials: 200, Seed: 31}

	measures := []struct {
		name string
		run  func(ClusterExperiment) Outcome
	}{
		{"FalseDetection", ClusterExperiment.FalseDetection},
		{"FalseDetectionOnCH", ClusterExperiment.FalseDetectionOnCH},
		{"Incompleteness", ClusterExperiment.Incompleteness},
	}
	for _, m := range measures {
		serial := base
		serial.Workers = 1
		parallel := base
		parallel.Workers = 8

		s1 := m.run(serial)
		p1 := m.run(parallel)
		if !reflect.DeepEqual(s1, p1) {
			t.Errorf("%s: workers=1 and workers=8 diverge:\n  serial:   %+v\n  parallel: %+v",
				m.name, s1, p1)
		}
		// Same seed, same worker count: bit-identical repeat.
		p2 := m.run(parallel)
		if !reflect.DeepEqual(p1, p2) {
			t.Errorf("%s: two identical parallel runs diverge:\n  first:  %+v\n  second: %+v",
				m.name, p1, p2)
		}
		// And the rendered summary line matches byte for byte.
		if s1.String() != p1.String() {
			t.Errorf("%s: summary text diverges:\n  serial:   %s\n  parallel: %s",
				m.name, s1, p1)
		}
	}
}

// TestWorkerCountSweep drives the same experiment at several worker counts
// and requires identical empirical counts from each.
func TestWorkerCountSweep(t *testing.T) {
	ref := ClusterExperiment{N: 6, LossProb: 0.6, Trials: 120, Seed: 77, Workers: 1}.FalseDetection()
	for _, w := range []int{0, 2, 3, 5, 16} {
		e := ClusterExperiment{N: 6, LossProb: 0.6, Trials: 120, Seed: 77, Workers: w}
		got := e.FalseDetection()
		if got.Empirical != ref.Empirical {
			t.Errorf("workers=%d: empirical %+v, want %+v", w, got.Empirical, ref.Empirical)
		}
	}
}
