package montecarlo

import (
	"testing"
)

// These tests ARE experiment Ext. B in miniature: the protocol
// implementation must reproduce the analytic curves where the rates are
// measurable. They use modest trial counts to stay fast; the benchmark
// harness runs the full-size version.

func TestFalseDetectionMatchesAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical validation")
	}
	for _, tc := range []ClusterExperiment{
		{N: 8, LossProb: 0.5, Trials: 600, Seed: 100},
		{N: 12, LossProb: 0.6, Trials: 600, Seed: 200},
	} {
		out := tc.FalseDetection()
		if out.Analytic < 0.01 {
			t.Fatalf("test parameters give unmeasurable rate %v; pick heavier loss", out.Analytic)
		}
		if !out.Consistent(2.6) { // ~99% interval: keep flake risk low
			t.Errorf("inconsistent: %v", out)
		}
	}
}

func TestFalseDetectionOnCHMatchesAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical validation")
	}
	for _, tc := range []ClusterExperiment{
		{N: 6, LossProb: 0.6, Trials: 800, Seed: 300},
		{N: 8, LossProb: 0.7, Trials: 800, Seed: 400},
	} {
		out := tc.FalseDetectionOnCH()
		if out.Analytic < 0.01 {
			t.Fatalf("unmeasurable analytic rate %v", out.Analytic)
		}
		if !out.Consistent(2.6) {
			t.Errorf("inconsistent: %v", out)
		}
	}
}

func TestIncompletenessMatchesAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical validation")
	}
	for _, tc := range []ClusterExperiment{
		{N: 8, LossProb: 0.5, Trials: 600, Seed: 500},
		{N: 15, LossProb: 0.6, Trials: 600, Seed: 600},
	} {
		out := tc.Incompleteness()
		if out.Analytic < 0.01 {
			t.Fatalf("unmeasurable analytic rate %v", out.Analytic)
		}
		if !out.Consistent(2.6) {
			t.Errorf("inconsistent: %v", out)
		}
	}
}

func TestDensityImprovesMeasures(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical validation")
	}
	// The headline qualitative claim: growing N drives both false
	// detection and incompleteness down, at fixed heavy loss.
	small := ClusterExperiment{N: 6, LossProb: 0.6, Trials: 400, Seed: 700}
	large := ClusterExperiment{N: 20, LossProb: 0.6, Trials: 400, Seed: 800}
	if s, l := small.FalseDetection(), large.FalseDetection(); s.Empirical.Estimate() <= l.Empirical.Estimate() {
		t.Errorf("false detection did not drop with density: N=6 %v vs N=20 %v", s, l)
	}
	if s, l := small.Incompleteness(), large.Incompleteness(); s.Empirical.Estimate() <= l.Empirical.Estimate() {
		t.Errorf("incompleteness did not drop with density: N=6 %v vs N=20 %v", s, l)
	}
}

func TestZeroLossZeroEvents(t *testing.T) {
	e := ClusterExperiment{N: 10, LossProb: 0, Trials: 30, Seed: 900}
	for _, out := range e.AllMeasures() {
		if out.Empirical.Successes != 0 {
			t.Errorf("%v: events at p=0", out)
		}
		if out.Analytic != 0 {
			t.Errorf("%v: analytic nonzero at p=0", out)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	e := ClusterExperiment{N: 6, LossProb: 0.5, Trials: 10, Seed: 1}
	out := e.FalseDetection()
	if out.String() == "" {
		t.Error("empty outcome string")
	}
}

func TestExperimentValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for tiny N")
		}
	}()
	e := ClusterExperiment{N: 3, LossProb: 0.5, Trials: 1}
	e.FalseDetection()
}
