package montecarlo

import (
	"fmt"
	"testing"

	"clusterfds/internal/cluster"
	"clusterfds/internal/fds"
	"clusterfds/internal/geo"
	"clusterfds/internal/node"
	"clusterfds/internal/radio"
	"clusterfds/internal/sim"
	"clusterfds/internal/trace"
	"clusterfds/internal/wire"
)

// TestRuleMatchesEventLevel rebuilds the trial with medium-level tracing
// and checks that the FDS's decision agrees, trial by trial, with the
// paper's detection rule applied directly to the raw delivery events — the
// strongest available statement that the implementation computes exactly
// the rule the analysis models.
func TestRuleMatchesEventLevel(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical validation")
	}
	const N, p = 8, 0.5
	mismatch, modelDetect, fdsDetect := 0, 0, 0
	var hbOK, dgOK, evOK, bothMiss, noEvGivenMiss int
	const trials = 2000
	for i := 0; i < trials; i++ {
		k := sim.New(1000 + int64(i))
		tr := trace.NewMemory(trace.TypeDeliver)
		params := radio.Defaults(p)
		m := radio.New(k, params, radio.WithTrace(tr))
		timing := cluster.DefaultTiming()
		center := geo.Point{X: 0, Y: 0}
		positions := make([]geo.Point, N)
		positions[0] = center
		positions[1] = geo.UniformInDisk(k.Rand(), center, 100)
		positions[2] = geo.OnCircle(center, 100-1e-6, k.Rand().Float64()*6.28)
		for j := 3; j < N; j++ {
			positions[j] = geo.UniformInDisk(k.Rand(), center, 100)
		}
		members := make([]wire.NodeID, N)
		for j := range members {
			members[j] = wire.NodeID(j + 1)
		}
		var fdss []*fds.Protocol
		var hosts []*node.Host
		for j, pos := range positions {
			h := node.New(k, m, wire.NodeID(j+1), pos)
			cl := cluster.New(cluster.DefaultConfig())
			cl.InstallStaticView(1, members, []wire.NodeID{2}, wire.NodeID(j+1))
			cfg := fds.DefaultConfig(timing)
			cfg.StrictModelMode = true
			f := fds.New(cfg, cl)
			h.Use(cl)
			h.Use(f)
			hosts = append(hosts, h)
			fdss = append(fdss, f)
		}
		for _, h := range hosts {
			h.Boot()
		}
		k.RunUntil(timing.Interval - 1)

		// Reconstruct from delivery events.
		subj := wire.NodeID(3)
		chGotHB, chGotDigest := false, false
		heardSubjHB := map[uint32]bool{}     // receiver -> heard subject's heartbeat
		chGotDigestFrom := map[uint32]bool{} // CH received digest from node X
		for _, e := range tr.Events() {
			switch e.Detail {
			case fmt.Sprintf("heartbeat from %v", subj):
				if e.Node == 1 {
					chGotHB = true
				}
				heardSubjHB[e.Node] = true
			case fmt.Sprintf("digest from %v", subj):
				if e.Node == 1 {
					chGotDigest = true
				}
			}
			if e.Node == 1 && len(e.Detail) > 12 && e.Detail[:11] == "digest from" {
				var from uint32
				fmt.Sscanf(e.Detail, "digest from n%d", &from)
				chGotDigestFrom[from] = true
			}
		}
		evidence := false
		for from := range chGotDigestFrom {
			if from != uint32(subj) && heardSubjHB[from] {
				evidence = true
			}
		}
		model := !chGotHB && !chGotDigest && !evidence
		actual := fdss[0].IsSuspected(subj)
		if model {
			modelDetect++
		}
		if actual {
			fdsDetect++
		}
		if model != actual {
			mismatch++
		}
		if chGotHB {
			hbOK++
		}
		if chGotDigest {
			dgOK++
		}
		if evidence {
			evOK++
		}
		if !chGotHB && !chGotDigest {
			bothMiss++
			if !evidence {
				noEvGivenMiss++
			}
		}
	}
	if mismatch != 0 {
		t.Errorf("FDS decision diverged from the event-level rule in %d/%d trials", mismatch, trials)
	}
	t.Logf("trials=%d modelDetect=%d fdsDetect=%d mismatch=%d", trials, modelDetect, fdsDetect, mismatch)
	t.Logf("P(ch got HB)=%.3f (want .5)  P(ch got digest)=%.3f (want .5)  P(evidence)=%.3f (want %.3f)",
		float64(hbOK)/trials, float64(dgOK)/trials, float64(evOK)/trials, 1-0.5399)
	t.Logf("P(bothMiss)=%.3f (want .25)  P(noEvidence|bothMiss)=%.3f (want .5399)",
		float64(bothMiss)/trials, float64(noEvGivenMiss)/float64(bothMiss))
}

// TestEvidenceGeometry measures the average
// number of in-range cluster neighbors of the circumference subject and the
// conditional evidence rate.
func TestEvidenceGeometry(t *testing.T) {
	e := ClusterExperiment{N: 8, LossProb: 0.5, Trials: 300, Seed: 100}
	e = e.defaults()
	totalNbrs := 0
	detected := 0
	digestsSentTotal := int64(0)
	for i := 0; i < e.Trials; i++ {
		tr := newTrial(e, e.Seed+int64(i), false, nil)
		// Count neighbors of the subject before running.
		subjPos := tr.hosts[tr.subject].Pos()
		n := 0
		for j, h := range tr.hosts {
			if j == tr.subject || j == 0 {
				continue
			}
			if subjPos.WithinRange(h.Pos(), 100) {
				n++
			}
		}
		totalNbrs += n
		tr.runOneExecution()
		if tr.fdss[0].IsSuspected(wire.NodeID(tr.subject + 1)) {
			detected++
		}
		digestsSentTotal += tr.medium.Sent(wire.KindDigest)
	}
	t.Logf("avg in-range neighbors of subject (excl CH): %.3f (model: %.3f)",
		float64(totalNbrs)/float64(e.Trials), 0.391*float64(e.N-2))
	t.Logf("detected: %d/%d = %.3f (model %.3f)", detected, e.Trials,
		float64(detected)/float64(e.Trials), 0.1349)
	t.Logf("avg digests sent per trial: %.2f (expect %d)", float64(digestsSentTotal)/float64(e.Trials), e.N)
}

// TestEvidenceChainPerfect severs only the subject->CH link (p=0 elsewhere):
// detection then requires zero effective neighbors, so P(detect) should
// equal P(no in-range neighbor) ~ (1-0.391)^6 = 0.052.
func TestEvidenceChainPerfect(t *testing.T) {
	e := ClusterExperiment{N: 8, LossProb: 0, Trials: 400, Seed: 42}
	e = e.defaults()
	detected, zeroNbr, detectedWithNbr := 0, 0, 0
	for i := 0; i < e.Trials; i++ {
		tr := newTrial(e, e.Seed+int64(i), false, nil)
		subj := wire.NodeID(tr.subject + 1)
		tr.medium.SetLinkLoss(subj, 1, 1.0)
		subjPos := tr.hosts[tr.subject].Pos()
		n := 0
		for j, h := range tr.hosts {
			if j != tr.subject && j != 0 && subjPos.WithinRange(h.Pos(), 100) {
				n++
			}
		}
		if n == 0 {
			zeroNbr++
		}
		tr.runOneExecution()
		if tr.fdss[0].IsSuspected(subj) {
			detected++
			if n > 0 {
				detectedWithNbr++
			}
		}
	}
	t.Logf("detected=%d zeroNbr=%d detectedDespiteNeighbors=%d / %d",
		detected, zeroNbr, detectedWithNbr, e.Trials)
	if detectedWithNbr > 0 {
		t.Errorf("%d detections despite perfect evidence chain — evidence path broken", detectedWithNbr)
	}
}
