// Package montecarlo cross-validates the analytic measures of package
// analysis against the actual protocol implementation. Each experiment
// replays the paper's per-cluster setting (Section 5) many times on the
// simulator: a cluster of N hosts uniformly distributed over a disk of
// radius R with the subject node in the worst-case position on the
// circumference, one FDS execution per trial, independent Bernoulli message
// loss with probability p.
//
// The analytic probabilities at the paper's parameters (N ≥ 50, small p)
// are far below anything sampleable, so validation runs where the formulas
// predict measurable rates — small clusters and heavy loss — and checks the
// empirical Wilson interval against the prediction. Agreement there, plus
// the formula equivalences proven in package analysis, carries the curves
// into the unmeasurable regime.
package montecarlo

import (
	"fmt"
	"math/rand"

	"clusterfds/internal/analysis"
	"clusterfds/internal/cluster"
	"clusterfds/internal/fds"
	"clusterfds/internal/geo"
	"clusterfds/internal/metrics"
	"clusterfds/internal/node"
	"clusterfds/internal/radio"
	"clusterfds/internal/replicate"
	"clusterfds/internal/sim"
	"clusterfds/internal/stats"
	"clusterfds/internal/wire"
)

// ClusterExperiment describes a repeated single-cluster, single-execution
// trial.
type ClusterExperiment struct {
	// N is the cluster population including the CH and the subject.
	N int
	// LossProb is the per-receiver message loss probability p.
	LossProb float64
	// Radius is the transmission range / cluster radius (default 100).
	Radius float64
	// Trials is the number of independent replications.
	Trials int
	// Seed makes the experiment reproducible. Trial i runs on a kernel
	// seeded with replicate.Seed(Seed, i), so the result is a pure function
	// of (Seed, Trials) — Workers never changes the statistics.
	Seed int64
	// Workers is the replication fan-out (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// CollectMetrics attaches a per-trial metrics registry (radio counters
	// plus FDS event series) and merges the snapshots in trial order into
	// Outcome.Metrics. Off by default: the validation's hot loop runs
	// thousands of trials and needs no observability.
	CollectMetrics bool
}

// Outcome pairs an empirical estimate with its analytic prediction.
type Outcome struct {
	// Name identifies the measure.
	Name string
	// Empirical is the measured proportion over the trials.
	Empirical stats.Proportion
	// Analytic is the closed-form prediction at the same parameters.
	Analytic float64
	// Metrics merges the per-trial registry snapshots in trial order
	// (empty unless the experiment sets CollectMetrics).
	Metrics metrics.Snapshot
}

// Consistent reports whether the analytic prediction lies within the
// empirical Wilson interval at the given z (1.96 ≈ 95%).
func (o Outcome) Consistent(z float64) bool {
	return o.Empirical.Contains(o.Analytic, z)
}

// String renders the comparison for experiment logs.
func (o Outcome) String() string {
	lo, hi := o.Empirical.Wilson(1.96)
	return fmt.Sprintf("%s: analytic=%.4g empirical=%.4g [%.4g, %.4g] (%d/%d)",
		o.Name, o.Analytic, o.Empirical.Estimate(), lo, hi,
		o.Empirical.Successes, o.Empirical.Trials)
}

func (e ClusterExperiment) defaults() ClusterExperiment {
	if e.Radius == 0 {
		e.Radius = 100
	}
	if e.Trials == 0 {
		e.Trials = 1000
	}
	if e.N < 4 {
		panic("montecarlo: need at least 4 hosts (CH, DCH, subject, helper)")
	}
	return e
}

// trial holds one simulated cluster ready for a single FDS execution.
type trial struct {
	kernel  *sim.Kernel
	medium  *radio.Medium
	hosts   []*node.Host
	fdss    []*fds.Protocol
	cls     []*cluster.Protocol
	timing  cluster.Timing
	subject int // index of the worst-case node on the circumference
	dchIdx  int // index of the deputy, placed adjacent to the CH
}

// newTrial builds the paper's analysis cluster: host 1 is the CH at the
// center and host 3 the subject on the circumference. Host 2 is the deputy;
// for the Figure 6 validation (dchAdjacent) it sits right next to the CH so
// it hears the whole cluster, as that model assumes — otherwise it is
// uniform like everyone else so it contributes the same evidence as any
// member. Views are installed statically: the experiment studies one FDS
// execution, not formation. StrictModelMode disables evidence paths the
// formulas do not credit.
func newTrial(e ClusterExperiment, seed int64, dchAdjacent bool, reg *metrics.Registry) *trial {
	k := sim.New(seed)
	params := radio.Defaults(e.LossProb)
	params.Range = e.Radius
	m := radio.New(k, params, radio.WithMetrics(reg))
	timing := cluster.DefaultTiming()

	center := geo.Point{X: 0, Y: 0}
	positions := make([]geo.Point, e.N)
	positions[0] = center
	if dchAdjacent {
		positions[1] = geo.Point{X: 1, Y: 0}
	} else {
		positions[1] = geo.UniformInDisk(k.Rand(), center, e.Radius)
	}
	if dchAdjacent {
		// Figure 6's model has no worst-case member: every non-DCH member
		// is uniform (and therefore within the DCH's range).
		positions[2] = geo.UniformInDisk(k.Rand(), center, e.Radius)
	} else {
		// Worst case for Figures 5/7: the subject on the circumference
		// (1 µm inside so floating-point noise never pushes it out of
		// range).
		angle := k.Rand().Float64() * 2 * 3.141592653589793
		positions[2] = geo.OnCircle(center, e.Radius-1e-6, angle)
	}
	for i := 3; i < e.N; i++ {
		positions[i] = geo.UniformInDisk(k.Rand(), center, e.Radius)
	}

	members := make([]wire.NodeID, e.N)
	for i := range members {
		members[i] = wire.NodeID(i + 1)
	}

	t := &trial{kernel: k, medium: m, timing: timing, subject: 2, dchIdx: 1}
	for i, pos := range positions {
		h := node.New(k, m, wire.NodeID(i+1), pos)
		cl := cluster.New(cluster.DefaultConfig())
		cl.InstallStaticView(1, members, []wire.NodeID{2}, wire.NodeID(i+1))
		cfg := fds.DefaultConfig(timing)
		cfg.StrictModelMode = true
		cfg.Metrics = reg
		f := fds.New(cfg, cl)
		h.Use(cl)
		h.Use(f)
		t.hosts = append(t.hosts, h)
		t.cls = append(t.cls, cl)
		t.fdss = append(t.fdss, f)
	}
	for _, h := range t.hosts {
		h.Boot()
	}
	return t
}

// runOneExecution advances through (almost) one full heartbeat interval:
// the FDS execution plus the peer-forwarding drain.
func (t *trial) runOneExecution() {
	t.kernel.RunUntil(t.timing.Interval - 1)
}

// trialResult carries one trial's verdict and (optionally) its metrics.
type trialResult struct {
	verdict bool
	metrics metrics.Snapshot
}

// runTrials fans e.Trials independent trials out over the replication
// engine, each on a kernel seeded deterministically from (e.Seed, i), and
// folds the per-trial verdicts into a proportion — and, when CollectMetrics
// is set, the per-trial snapshots into one merged snapshot — in trial
// order. Per-trial kernels share no mutable state, so any worker count
// yields bit-identical results.
func (e ClusterExperiment) runTrials(dchAdjacent bool, verdict func(*trial) bool) (stats.Proportion, metrics.Snapshot) {
	results, _ := replicate.RunOpts(replicate.Opts{Workers: e.Workers}, e.Trials, e.Seed,
		func(i int, _ *rand.Rand) trialResult {
			var reg *metrics.Registry // nil: instruments are no-ops
			if e.CollectMetrics {
				reg = metrics.NewRegistry()
			}
			t := newTrial(e, replicate.Seed(e.Seed, i), dchAdjacent, reg)
			t.runOneExecution()
			return trialResult{verdict: verdict(t), metrics: reg.Snapshot()}
		})
	var p stats.Proportion
	var snap metrics.Snapshot
	for _, r := range results {
		p.AddOutcome(r.verdict)
		snap.Merge(r.metrics)
	}
	return p, snap
}

// FalseDetection measures P̂(False detection): the probability the CH
// falsely judges the operational circumference subject failed in one
// execution (Figure 5 cross-validation).
func (e ClusterExperiment) FalseDetection() Outcome {
	e = e.defaults()
	emp, snap := e.runTrials(false, func(t *trial) bool {
		return t.fdss[0].IsSuspected(wire.NodeID(t.subject + 1))
	})
	return Outcome{
		Name:      fmt.Sprintf("P(False detection) N=%d p=%.2f", e.N, e.LossProb),
		Analytic:  analysis.FalseDetection(e.N, e.LossProb),
		Empirical: emp,
		Metrics:   snap,
	}
}

// FalseDetectionOnCH measures P(False detection on CH): the probability the
// deputy falsely takes over from an operational CH (Figure 6
// cross-validation).
func (e ClusterExperiment) FalseDetectionOnCH() Outcome {
	e = e.defaults()
	emp, snap := e.runTrials(true, func(t *trial) bool {
		return t.cls[t.dchIdx].View().IsCH
	})
	return Outcome{
		Name:      fmt.Sprintf("P(False detection on CH) N=%d p=%.2f", e.N, e.LossProb),
		Analytic:  analysis.FalseDetectionOnCH(e.N, e.LossProb),
		Empirical: emp,
		Metrics:   snap,
	}
}

// Incompleteness measures P̂(Incompleteness): the probability the
// circumference subject ends the execution without the health-status
// update despite peer forwarding (Figure 7 cross-validation).
func (e ClusterExperiment) Incompleteness() Outcome {
	e = e.defaults()
	emp, snap := e.runTrials(false, func(t *trial) bool {
		return !t.fdss[t.subject].UpdateReceived()
	})
	return Outcome{
		Name:      fmt.Sprintf("P(Incompleteness) N=%d p=%.2f", e.N, e.LossProb),
		Analytic:  analysis.Incompleteness(e.N, e.LossProb),
		Empirical: emp,
		Metrics:   snap,
	}
}

// AllMeasures runs the three validations at the experiment's parameters.
func (e ClusterExperiment) AllMeasures() []Outcome {
	return []Outcome{e.FalseDetection(), e.FalseDetectionOnCH(), e.Incompleteness()}
}
