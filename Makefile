GO ?= go

.PHONY: check vet build test race benchsmoke benchcmp bench fmt

## check: the pre-PR gate. Run this before sending any change for review.
check: vet build test race benchsmoke benchcmp
	@echo "check: all gates passed"

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the concurrency-sensitive packages (the replication engine and
## everything ported onto it) under the race detector.
race:
	$(GO) test -race ./internal/replicate/ ./internal/montecarlo/

## benchsmoke: one iteration of the serial/parallel Monte-Carlo benchmark
## pair — verifies the parallel path produces the same empirical rate and
## that the benchmarks still compile and run.
benchsmoke:
	$(GO) test -run '^$$' -bench 'MonteCarlo' -benchtime 1x -benchmem .

## benchcmp: the allocation-regression gate. Runs the alloc-sensitive
## benchmarks (FDSEpoch, RadioBroadcast, Codec) and fails if any allocs/op
## figure regresses more than 10% against the committed baseline
## (bench_baseline.json). When an optimization lowers a count, tighten the
## baseline in the same PR so the gate keeps biting.
benchcmp:
	$(GO) test -run '^$$' -bench 'BenchmarkFDSEpoch$$|BenchmarkRadioBroadcast$$|BenchmarkCodec$$' \
		-benchtime 20x -benchmem . | $(GO) run ./cmd/benchcmp -baseline bench_baseline.json

## bench: the full evaluation harness (slow; regenerates every figure).
bench:
	$(GO) test -bench=. -benchmem .

fmt:
	gofmt -l -w .
